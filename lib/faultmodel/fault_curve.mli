(** Fault curves: per-node, time-dependent failure probability.

    The paper's central abstraction (its §2): instead of a binary
    correct/faulty classification, every node [u] carries a curve
    [p_u(t)] — the probability that [u] is faulty during the mission
    window ending at time [t]. Curves come from telemetry, hardware
    ageing models, or trust judgements; this module provides the shapes
    those sources produce.

    Time is measured in hours throughout. *)

type t =
  | Constant of float
      (** Time-invariant fault probability — the setting of the paper's
          §3 analysis. *)
  | Exponential of { rate : float }
      (** Memoryless lifetime with failure rate [rate] per hour;
          [p(t) = 1 - exp (-rate * t)]. *)
  | Weibull of { shape : float; scale : float }
      (** Ageing lifetime; [shape < 1] infant mortality, [> 1]
          wear-out. *)
  | Bathtub of { infant : t; useful : t; wearout : t; t1 : float; t2 : float }
      (** Piecewise curve: [infant] before [t1], [useful] in the middle,
          [wearout] after [t2] — the canonical disk-reliability shape. *)
  | Empirical of (float * float) array
      (** Sorted [(time, p)] telemetry points, linearly interpolated and
          clamped at the ends. *)
  | Scaled of { factor : float; curve : t }
      (** Multiply another curve's fault probability by [factor]
          (clamped to 1): models software-rollout or geopolitical risk
          spikes on top of a hardware baseline. *)
  | Shifted of { offset : float; curve : t }
      (** Restart the curve's clock at [offset]: a node installed at
          mission time [offset] evaluates its curve at [t - offset].
          Before [offset] the probability is 0. *)
  | Markov_onoff of { fail_rate : float; recover_rate : float }
      (** Two-state on/off Markov process started Up: the node fails at
          rate [fail_rate] per hour and recovers at rate [recover_rate].
          [eval] is the exact transient probability of being Down at
          time [t], converging to the stationary unavailability
          [fail_rate / (fail_rate + recover_rate)] — the dynamic-failure
          model of "Bernoulli Meets PBFT". *)

val eval : t -> float -> float
(** [eval curve t] is the fault probability at mission time [t],
    always in [0, 1]. *)

val constant : float -> t
(** [constant p] with [p] clamped to [0, 1]. *)

val of_afr : float -> t
(** [of_afr afr] converts an Annual Failure Rate (e.g. [0.04] for the
    4% AFR the paper quotes for servers) into the exponential curve
    with that one-year failure probability. *)

val afr : t -> float
(** Fault probability over one year (8766 h) — the storage community's
    AFR metric, recovered from any curve. *)

val hazard_rate : t -> float -> float
(** Instantaneous failure rate at time [t] (numerically differentiated
    for shapes without a closed form). *)

val window_probability : t -> start:float -> duration:float -> float
(** Probability of failing during [start, start+duration] conditioned
    on being alive at [start]: drives preemptive reconfiguration. *)

val pp : Format.formatter -> t -> unit
