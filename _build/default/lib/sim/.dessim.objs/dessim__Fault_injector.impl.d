lib/sim/fault_injector.ml: Array Engine List Prob
