(** Resilient client for the reliability-query wire protocol.

    One socket, one framing chosen at {!connect}: wire/3 length-prefixed
    binary frames (the default) or newline-delimited wire/1–2 lines —
    either way the {e body} bytes are identical, and the server detects
    the client's framing from its first byte. Engineered for the fault
    model the chaos proxy injects, not for healthy sockets only:

    - {b Per-call deadlines.} {!call} and {!call_line} bound every
      socket operation with [select]; a stalled, black-holed or
      half-dead server yields a typed [Wire.Timeout] error instead of
      parking the caller in an unbounded [Unix.read].
    - {b Jittered exponential backoff.} Connection attempts (initial
      and reconnects) sleep [initial * multiplier^k] capped at
      [max_sleep], each draw jittered from the client's own seeded
      {!Prob.Rng} stream — deterministic per client, decorrelated
      across a fleet retrying against a recovering server.
    - {b Safe automatic retry.} Every wire query is pure and the
      server's reply cache re-answers byte-identically, so when a
      connection drops (reset, EOF, corrupted framing — torn line or
      bad frame alike — foreign reply id) mid-call, the client
      reconnects and re-sends — at-least-once delivery with
      exactly-once-equivalent results. A timed-out call is {e not}
      retried: its budget is spent, and the poisoned connection is
      dropped so a late reply can never answer a later call.

    {!send_line}/{!recv_line} expose the raw blocking body transport
    (framed or newline-terminated per the connection) so tests and the
    load generator can pipeline many requests before collecting
    replies, or send deliberately malformed bodies. Not thread-safe —
    use one client per thread. *)

type target = Unix_path of string | Tcp of int
(** [Tcp port] connects to 127.0.0.1. *)

type backoff = {
  seed : int;  (** Jitter stream; equal seeds give equal schedules. *)
  initial : float;  (** First sleep, seconds. *)
  multiplier : float;  (** Growth per attempt. *)
  max_sleep : float;  (** Cap on a single sleep. *)
  jitter : float;
      (** Fraction of each sleep randomized away, in [0,1]: a draw
          sleeps [s * (1 - jitter * u)] for uniform [u]. *)
}

val default_backoff : backoff
(** 5 ms doubling to a 500 ms cap, 50% jitter, seed 0. *)

type t

val connect :
  ?wire:int ->
  ?retry_for:float ->
  ?backoff:backoff ->
  ?timeout:float ->
  target ->
  t
(** [wire] (default {!Wire.protocol_version}) selects the framing: 3
    speaks binary frames, 1 and 2 speak newline-delimited lines and
    stamp that version on encoded requests — the downlevel modes the
    compatibility tests exercise. Raises [Invalid_argument] outside
    [{!Wire.min_protocol_version}..{!Wire.protocol_version}].
    [retry_for] (seconds, default 0): keep retrying refused/absent
    endpoints for that long before re-raising — lets tests connect to
    a server that is still binding its socket. Retries sleep according
    to [backoff] (default {!default_backoff}). [timeout] sets the
    default per-call budget for {!call}/{!call_line}; omitted, calls
    block until the server answers or the connection dies. Ignores
    SIGPIPE process-wide (same audit as the server side). *)

val wire_version : t -> int
(** The wire version this connection speaks. *)

val send_line : t -> string -> unit
(** Send one request body under the connection's framing (a frame, or
    [body ^ "\n"]). Blocking; raises on a dead connection. *)

val send_lines : t -> string list -> unit
(** Send many request bodies as one framed batch with (usually) one
    syscall — the pipelined send path. Blocking; raises on a dead
    connection. *)

val recv_line : t -> string option
(** Next response body (frame payload or newline-stripped line), or
    [None] on EOF/reset/corrupted framing. Blocking. *)

val call_raw : t -> string -> string option
(** [send_line] then [recv_line]. Blocking, no retries — the raw
    transport for tests that pipeline or corrupt on purpose. *)

val recv_line_timeout : t -> timeout:float -> string option
(** {!recv_line} bounded by a deadline [timeout] seconds out: [None]
    on expiry as well as on EOF/reset/corrupted framing. The raw
    receive for pipelining loops that must never hang. *)

val call_line :
  ?timeout:float ->
  ?max_attempts:int ->
  t ->
  id:int ->
  string ->
  (string, Wire.error_code * string) result
(** [call_line t ~id body] sends [body] and returns the full validated
    response body for request [id] — the byte-identity unit the load
    generator checks (identical across framings: a wire/3 frame
    payload is the wire/2 line minus its newline). [timeout] (default:
    the client's) bounds the whole call including reconnects and
    retries ([max_attempts], default 3). Errors are always typed:
    [Timeout] when the budget expires, [Connection_lost] when the link
    died and the retry budget ran out. Only send requests whose [id]
    matches: replies are validated against it and anything else
    poisons the connection. *)

val call :
  ?timeout:float ->
  ?max_attempts:int ->
  t ->
  id:int ->
  Wire.query ->
  (Obs.Json.t, Wire.error_code * string) result
(** Encode (stamping the connection's wire version), {!call_line},
    decode. Transport failures surface as [Error (Timeout, _)] /
    [Error (Connection_lost, _)]; server-sent errors keep their own
    codes. *)

val close : t -> unit

(** Multi-endpoint failover over a replicated deployment.

    One logical client across a ring of replica endpoints (index =
    replica id). Each call is tried against a {e pinned} endpoint and
    fails over on transport errors, [not_leader] redirects (following
    the reply's leader [hint] when present), and per-replica pressure
    ([overloaded]/[shutting_down]/[deadline_exceeded]) — with the
    jittered-backoff pause schedule growing per full rotation, and the
    whole dance bounded by the per-call deadline plus an attempt cap.

    Framing is negotiated {e per endpoint}: a failover to a replica
    that has never confirmed the preferred binary framing re-validates
    it (a goodbye from a [--wire 2] replica reads as corrupted
    framing) by renegotiating that endpoint down to newline framing
    and retrying it, instead of assuming the previous endpoint's
    framing — so mixed [--wire 2]/[--wire 3] deployments serve every
    client.

    Retrying writes is safe: a [Scenario_put] retried onto a new
    leader re-encodes to the same canonical bytes, which are the
    replicated command id, and replicas apply each command id at most
    once. Not thread-safe — one [Multi.t] per thread. *)
module Multi : sig
  type t

  val create :
    ?wire:int ->
    ?backoff:backoff ->
    ?timeout:float ->
    ?max_attempts:int ->
    target list ->
    t
  (** [wire] (default {!Wire.protocol_version}) is the {e preferred}
      framing; endpoints negotiate down individually. [timeout] is the
      default per-call budget. [max_attempts] caps attempts per call
      (default [6 * endpoints]). Raises [Invalid_argument] on an empty
      endpoint list or an unsupported wire version. Connections are
      opened lazily on first call. *)

  val endpoints : t -> int
  val current : t -> int
  (** Index of the endpoint calls are currently pinned to. *)

  val negotiated_wire : t -> int -> int
  (** The framing endpoint [i] currently speaks (downgraded from the
      preferred version once a goodbye is observed). *)

  val call :
    ?timeout:float ->
    t ->
    id:int ->
    Wire.query ->
    (Obs.Json.t, Wire.error_code * string) result
  (** Like {!Client.call}, across the deployment: returns the first
      replica answer (success or semantic error); transport-level
      outcomes are [Error (Timeout, _)] when the budget expires and
      the last typed failure when the attempt cap runs out (e.g.
      [Not_leader] while the deployment is leaderless,
      [Connection_lost] when nothing is reachable). *)

  val close : t -> unit
end
