type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let is_empty t = t.len = 0
let size t = t.len

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && precedes t.heap.(left) t.heap.(!smallest) then smallest := left;
  if right < t.len && precedes t.heap.(right) t.heap.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t cell =
  if t.len = Array.length t.heap then begin
    let capacity = max 16 (2 * Array.length t.heap) in
    let fresh = Array.make capacity cell in
    Array.blit t.heap 0 fresh 0 t.len;
    t.heap <- fresh
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let cell = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t cell;
  t.heap.(t.len) <- cell;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time

let clear t =
  t.len <- 0;
  t.heap <- [||]
