test/test_raft_reconfig.ml: Alcotest Dessim Fun List Raft_checker Raft_cluster Raft_node Raft_sim
