(** "Nines" notation for reliability probabilities.

    Storage systems express guarantees as nines of availability or
    durability (S3: 99.999999999% durable). The paper argues consensus
    guarantees should be quoted the same way; this module converts
    between probabilities, nines counts, and the percent strings printed
    in the paper's tables. *)

val of_prob : float -> float
(** [of_prob p] is the (fractional) number of nines of [p]:
    [-log10 (1 - p)]. [infinity] when [p = 1.]. *)

val to_prob : float -> float
(** Inverse of {!of_prob}: [to_prob k = 1 - 10^(-k)]. *)

val pp_percent : ?sig_nines:int -> Format.formatter -> float -> unit
(** Print a probability the way the paper's tables do: as a percentage
    whose leading nines are kept and whose first non-nine digit block is
    rounded, e.g. [0.999702 -> "99.97%"], [0.9999899 -> "99.9990%"]
    with [sig_nines] controlling digits after the nines run (default 2). *)

val percent_string : ?sig_nines:int -> float -> string

val pp_nines : Format.formatter -> float -> unit
(** Print as e.g. ["3.5 nines"]. *)

val parse_percent : string -> float option
(** Parse strings like ["99.97%"] (trailing [%] optional) back into a
    probability. Returns [None] on malformed input. *)
