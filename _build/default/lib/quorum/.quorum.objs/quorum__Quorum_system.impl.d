lib/quorum/quorum_system.ml: Array Format List Prob Subset
