lib/prob/montecarlo.mli: Format Rng
