(** The deterministic-simulation test builder.

    A DST test is declared in a few lines as a {!system}: how to
    generate a test case from a seeded RNG, how to execute it
    deterministically and check its invariants, and how to propose
    smaller candidate cases. The harness then provides the three
    operations every system gets for free:

    - {!soak}: run seeded episodes until one fails an invariant;
    - {!shrink}: greedily minimize the failing case — drop faults,
      shorten op sequences, narrow latency windows — re-executing
      after every candidate reduction and keeping it only when the
      {e same} invariant still fails;
    - {!to_repro}/{!replay}: round-trip the minimal case through the
      versioned [probcons-repro/1] artifact so
      [dune exec tools/replay.exe] re-runs it bit-for-bit.

    Shrinking is monotone by construction: a candidate is accepted
    only when its {!measure} is lexicographically smaller — strictly
    fewer faults+ops, or equal count with a smaller numeric weight
    (narrowed windows, zeroed probabilities) — so every accepted step
    shrinks the case and the loop terminates. Both properties are
    qcheck-tested in [test/test_dst.ml]. *)

type outcome =
  | Pass
  | Fail of { invariant : string; detail : string }
      (** [invariant] is a stable name ("agreement",
          "typed_errors_only", ...) — the unit of sameness the
          shrinker preserves; [detail] is human context. *)

type measure = { units : int; weight : float }
(** Case size. [units] counts discrete structure (faults + ops);
    [weight] orders same-unit cases (sum of fault probabilities,
    latency windows). Compared lexicographically by {!smaller}. *)

val smaller : measure -> measure -> bool
(** [smaller a b]: is [a] strictly smaller than [b]? *)

type 'case system = {
  name : string;  (** Artifact [system] tag; stable across versions. *)
  generate : Prob.Rng.t -> 'case;
      (** Draw one episode's case — fault plan and op sequence — from
          the episode's derived RNG stream. *)
  run : 'case -> outcome;
      (** Execute deterministically and check every invariant. *)
  candidates : 'case -> 'case list;
      (** Strictly-smaller reduction candidates, most aggressive
          first. The harness re-checks {!smaller} itself, so a sloppy
          candidate list cannot break monotonicity. *)
  size : 'case -> measure;
  encode : 'case -> Repro.parts;
  decode : Repro.parts -> ('case, string) result;
}

type 'case failure = {
  episode : int;
  episode_seed : int;  (** Derived stream: [Rng.of_pair seed episode]. *)
  case : 'case;
  invariant : string;
  detail : string;
}

type 'case shrunk = {
  final : 'case;
  final_detail : string;  (** Detail from the last failing re-run. *)
  steps : 'case list;
      (** Accepted reductions in order, ending with [final]; empty
          when the original case was already minimal. *)
  attempts : int;  (** Candidate executions, accepted or not. *)
}

type 'case soak_outcome =
  | All_passed of { episodes : int }
  | Found of { failure : 'case failure; shrunk : 'case shrunk option }

val episode_seed : seed:int -> episode:int -> int
(** The per-episode seed: deterministic in [(seed, episode)] so a
    soak's episode [k] can be replayed alone. *)

val run_episode : 'case system -> seed:int -> episode:int -> 'case * outcome

val soak :
  ?shrink:bool ->
  ?max_attempts:int ->
  ?log:(string -> unit) ->
  'case system ->
  seed:int ->
  episodes:int ->
  'case soak_outcome
(** Run up to [episodes] seeded episodes, stopping at the first
    invariant violation. [shrink] (default true) minimizes it;
    [max_attempts] (default 2000) bounds total candidate executions;
    [log] receives progress lines. *)

val shrink :
  ?max_attempts:int ->
  ?log:(string -> unit) ->
  'case system ->
  'case failure ->
  'case shrunk
(** Greedy fixpoint: repeatedly try [candidates], accept the first
    strictly-{!smaller} one that still fails the {e same} invariant,
    restart from it; stop when no candidate is accepted or the
    attempt budget runs out. *)

val to_repro :
  'case system -> seed:int -> elapsed_seconds:float ->
  'case failure -> 'case shrunk option -> Repro.t
(** Build the [probcons-repro/1] artifact for a (possibly shrunk)
    failure; [expect] is [`Fail] — the case reproduces a violation. *)

val replay : 'case system -> Repro.t -> (string, string) result
(** Decode the artifact's case and re-run it, checking the recorded
    expectation: an [expect = `Fail] artifact must fail the {e same}
    invariant again, an [expect = `Pass] artifact (a fixed bug kept as
    a regression test) must pass. [Ok msg] describes the confirmed
    outcome, [Error msg] the divergence. *)
