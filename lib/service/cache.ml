(* Classic LRU: hash table to intrusive doubly-linked list nodes, most
   recently used at the head. *)

type node = {
  key : string;
  value : string;
  (* Memo of the last fully rendered reply per framing: (id, bytes).
     Replies differ only by request id around an identical payload, so
     an id-stable client (the common case — loadgen and pipelining
     clients key ids by query) gets its whole reply as one slice.
     Reactor-thread only; see the .mli. *)
  mutable line_reply : (int * string) option;
  mutable frame_reply : (int * string) option;
  mutable prev : node option;
  mutable next : node option;
}

type entry = node

type t = {
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;  (* MRU *)
  mutable tail : node option;  (* LRU *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  m_hits : Obs.Metrics.counter;
  m_misses : Obs.Metrics.counter;
  m_evictions : Obs.Metrics.counter;
  m_entries : Obs.Metrics.gauge;
}

let create ?registry ~capacity () =
  {
    capacity = max 0 capacity;
    table = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    mutex = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
    m_hits = Obs.Metrics.counter ?registry ~family:"service" "cache_hits";
    m_misses = Obs.Metrics.counter ?registry ~family:"service" "cache_misses";
    m_evictions = Obs.Metrics.counter ?registry ~family:"service" "cache_evictions";
    m_entries = Obs.Metrics.gauge ?registry ~family:"service" "cache_entries";
  }

let capacity t = t.capacity

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  if t.capacity = 0 then begin
    Obs.Metrics.incr t.m_misses;
    locked t (fun () -> t.misses <- t.misses + 1);
    None
  end
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some node ->
            unlink t node;
            push_front t node;
            t.hits <- t.hits + 1;
            Obs.Metrics.incr t.m_hits;
            Some node
        | None ->
            t.misses <- t.misses + 1;
            Obs.Metrics.incr t.m_misses;
            None)

let payload (e : entry) = e.value

let rendered (e : entry) ~binary ~id ~render =
  let memo = if binary then e.frame_reply else e.line_reply in
  match memo with
  | Some (memo_id, bytes) when memo_id = id -> bytes
  | _ ->
      let bytes = render () in
      if binary then e.frame_reply <- Some (id, bytes)
      else e.line_reply <- Some (id, bytes);
      bytes

let add t key value =
  if t.capacity > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some node ->
            (* Concurrent miss already admitted this key; values are
               identical by construction, so only refresh recency. *)
            unlink t node;
            push_front t node
        | None ->
            if Hashtbl.length t.table >= t.capacity then begin
              match t.tail with
              | Some lru ->
                  unlink t lru;
                  Hashtbl.remove t.table lru.key;
                  t.evictions <- t.evictions + 1;
                  Obs.Metrics.incr t.m_evictions
              | None -> ()
            end;
            let node =
              { key; value; line_reply = None; frame_reply = None;
                prev = None; next = None }
            in
            Hashtbl.replace t.table key node;
            push_front t node);
        Obs.Metrics.set t.m_entries (Hashtbl.length t.table))

let count_hit t =
  Obs.Metrics.incr t.m_hits;
  locked t (fun () -> t.hits <- t.hits + 1)

let length t = locked t (fun () -> Hashtbl.length t.table)
let stats t = locked t (fun () -> (t.hits, t.misses, t.evictions))
