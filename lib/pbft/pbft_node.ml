open Pbft_types
module IntSet = Set.Make (Int)

(* Typed run telemetry; [Trace] stays the source of truth for checkers. *)
let m_commits = Obs.Metrics.counter ~family:"protocol" "pbft.commits"
let m_view_changes = Obs.Metrics.counter ~family:"protocol" "pbft.view_changes"
let m_new_views = Obs.Metrics.counter ~family:"protocol" "pbft.new_views"
let m_byz_actions = Obs.Metrics.counter ~family:"protocol" "pbft.byzantine_actions"

type config = {
  id : int;
  n : int;
  q_eq : int;
  q_per : int;
  q_vc : int;
  q_vc_t : int;
  request_timeout : float;
  byz_spam_interval : float;
  status_interval : float;
}

let default_config ~id ~n =
  let f = (n - 1) / 3 in
  {
    id;
    n;
    q_eq = n - f;
    q_per = n - f;
    q_vc = n - f;
    q_vc_t = f + 1;
    request_timeout = 500.;
    byz_spam_interval = 400.;
    status_interval = 1000.;
  }

(* Per-(view, seq) slot. Votes are tallied per candidate command so a
   Byzantine replica voting for a corrupted command cannot pollute the
   count of the accepted one. *)
type slot = {
  mutable accepted : int option;
  prepares : (int, IntSet.t ref) Hashtbl.t;
  commits : (int, IntSet.t ref) Hashtbl.t;
  mutable sent_commit : bool;
}

let noop_command = -1

type t = {
  config : config;
  engine : Dessim.Engine.t;
  net : msg Dessim.Network.t;
  trace : Dessim.Trace.t;
  mutable view : int;
  mutable in_view_change : bool;
  mutable target_view : int;
  mutable next_seq : int;
  slots : (int * int, slot) Hashtbl.t;
  prepared_certs : (int, prepared_cert) Hashtbl.t;  (* seq -> best cert *)
  committed : (int, int) Hashtbl.t;  (* seq -> command *)
  mutable exec_next : int;
  executed : int Dessim.Vec.t;
  pending : (int, unit) Hashtbl.t;
  executed_set : (int, unit) Hashtbl.t;
  assigned : (int, unit) Hashtbl.t;  (* commands given a seq in the current view *)
  view_change_votes : (int, IntSet.t ref) Hashtbl.t;
  view_change_certs : (int, prepared_cert list ref) Hashtbl.t;
  transfer_claims : (int * int, IntSet.t ref) Hashtbl.t;
      (* (seq, command) -> vouching replicas, for state transfer. *)
  mutable new_view_sent : IntSet.t;  (* views for which we already sent New_view *)
  mutable vc_timer : Dessim.Engine.cancel option;
  mutable status_timer : Dessim.Engine.cancel option;
  mutable byz : bool;
  mutable byz_spam_timer : Dessim.Engine.cancel option;
  mutable down : bool;
}

let id t = t.config.id
let view t = t.view
let primary_of t v = ((v mod t.config.n) + t.config.n) mod t.config.n
let is_primary t = primary_of t t.view = t.config.id && not t.down
let executed_commands t =
  List.filter (fun c -> c <> noop_command) (Dessim.Vec.to_list t.executed)
let alive t = not t.down

let record t tag detail =
  Dessim.Trace.record t.trace ~time:(Dessim.Engine.now t.engine) ~node:t.config.id
    ~tag ~detail

let corrupted command = command + 1_000_000

let slot_for t ~view ~seq =
  match Hashtbl.find_opt t.slots (view, seq) with
  | Some s -> s
  | None ->
      let s =
        { accepted = None; prepares = Hashtbl.create 4; commits = Hashtbl.create 4;
          sent_commit = false }
      in
      Hashtbl.add t.slots (view, seq) s;
      s

let vote_set table command =
  match Hashtbl.find_opt table command with
  | Some set -> set
  | None ->
      let set = ref IntSet.empty in
      Hashtbl.add table command set;
      set

let add_vote table command replica =
  let set = vote_set table command in
  set := IntSet.add replica !set;
  IntSet.cardinal !set

let cancel_vc_timer t =
  (match t.vc_timer with Some c -> Dessim.Engine.cancel c | None -> ());
  t.vc_timer <- None

(* --- Execution --------------------------------------------------- *)

let rec try_execute t =
  match Hashtbl.find_opt t.committed t.exec_next with
  | None -> ()
  | Some command ->
      if command <> noop_command && not (Hashtbl.mem t.executed_set command) then begin
        Dessim.Vec.push t.executed command;
        Hashtbl.replace t.executed_set command ();
        record t "execute" (Printf.sprintf "seq=%d cmd=%d" t.exec_next command)
      end
      else if command = noop_command then
        record t "execute" (Printf.sprintf "seq=%d noop" t.exec_next);
      Hashtbl.remove t.pending command;
      t.exec_next <- t.exec_next + 1;
      try_execute t

(* --- Normal case -------------------------------------------------- *)

let rec restart_vc_timer t =
  cancel_vc_timer t;
  if Hashtbl.length t.pending > 0 && not t.down then
    t.vc_timer <-
      Some
        (Dessim.Engine.schedule t.engine ~delay:t.config.request_timeout (fun () ->
             initiate_view_change t))

and initiate_view_change t =
  if not t.down then begin
    let v' = max t.view t.target_view + 1 in
    join_view_change t v'
  end

and join_view_change t v' =
  if v' > t.target_view || not t.in_view_change then begin
    t.in_view_change <- true;
    t.target_view <- max v' t.target_view;
    let prepared = Hashtbl.fold (fun _ cert acc -> cert :: acc) t.prepared_certs [] in
    record t "view-change" (Printf.sprintf "target=%d" t.target_view);
    Obs.Metrics.incr m_view_changes;
    let message =
      View_change { new_view = t.target_view; replica = t.config.id; prepared }
    in
    Dessim.Network.broadcast t.net ~src:t.config.id message;
    (* Count our own vote and certificates locally. *)
    note_view_change_vote t ~new_view:t.target_view ~replica:t.config.id ~prepared;
    restart_vc_timer t
  end

and note_view_change_vote t ~new_view ~replica ~prepared =
  let votes =
    match Hashtbl.find_opt t.view_change_votes new_view with
    | Some v -> v
    | None ->
        let v = ref IntSet.empty in
        Hashtbl.add t.view_change_votes new_view v;
        v
  in
  votes := IntSet.add replica !votes;
  let certs =
    match Hashtbl.find_opt t.view_change_certs new_view with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.add t.view_change_certs new_view c;
        c
  in
  certs := prepared @ !certs;
  check_view_change_progress t new_view

and check_view_change_progress t new_view =
  if new_view > t.view then begin
    let votes =
      match Hashtbl.find_opt t.view_change_votes new_view with
      | Some v -> IntSet.cardinal !v
      | None -> 0
    in
    (* Trigger rule: join once q_vc_t replicas are asking. *)
    if votes >= t.config.q_vc_t && t.target_view < new_view then
      join_view_change t new_view;
    (* New-primary rule: with q_vc votes, install the view. *)
    if
      votes >= t.config.q_vc
      && primary_of t new_view = t.config.id
      && not (IntSet.mem new_view t.new_view_sent)
    then begin
      t.new_view_sent <- IntSet.add new_view t.new_view_sent;
      become_primary t new_view
    end
  end

and become_primary t new_view =
  (* Choose, per sequence number, the highest-view prepared certificate
     among those carried by the view-change quorum; fill gaps with
     no-ops. *)
  let certs =
    match Hashtbl.find_opt t.view_change_certs new_view with Some c -> !c | None -> []
  in
  let best = Hashtbl.create 16 in
  List.iter
    (fun (cert : prepared_cert) ->
      match Hashtbl.find_opt best cert.seq with
      | Some (existing : prepared_cert) when existing.view >= cert.view -> ()
      | Some _ | None -> Hashtbl.replace best cert.seq cert)
    certs;
  let max_seq = Hashtbl.fold (fun seq _ acc -> max seq acc) best 0 in
  let pre_prepares = ref [] in
  for seq = max_seq downto 1 do
    match Hashtbl.find_opt best seq with
    | Some cert -> pre_prepares := (seq, cert.command) :: !pre_prepares
    | None -> pre_prepares := (seq, noop_command) :: !pre_prepares
  done;
  record t "new-view" (Printf.sprintf "view=%d slots=%d" new_view max_seq);
  Obs.Metrics.incr m_new_views;
  Dessim.Network.broadcast t.net ~src:t.config.id
    (New_view { view = new_view; pre_prepares = !pre_prepares });
  enter_view t new_view;
  t.next_seq <- max t.next_seq (max_seq + 1);
  List.iter (fun (seq, command) -> accept_pre_prepare t ~view:new_view ~seq ~command)
    !pre_prepares;
  (* Re-propose pending client commands that did not survive. *)
  Hashtbl.iter (fun command () -> assign_seq t command) (Hashtbl.copy t.pending)

and enter_view t new_view =
  if new_view > t.view then record t "enter-view" (Printf.sprintf "view=%d" new_view);
  t.view <- max t.view new_view;
  t.in_view_change <- false;
  t.target_view <- t.view;
  Hashtbl.reset t.assigned;
  restart_vc_timer t

and assign_seq t command =
  if
    is_primary t && (not t.in_view_change)
    && (not (Hashtbl.mem t.assigned command))
    && (not (Hashtbl.mem t.executed_set command))
  then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.assigned command ();
    record t "pre-prepare" (Printf.sprintf "seq=%d cmd=%d" seq command);
    if t.byz then begin
      Obs.Metrics.incr m_byz_actions;
      (* Equivocating primary: half the replicas see a corrupted
         command for the same slot. *)
      for dst = 0 to t.config.n - 1 do
        if dst <> t.config.id then begin
          let sent = if dst mod 2 = 0 then command else corrupted command in
          Dessim.Network.send t.net ~src:t.config.id ~dst
            (Pre_prepare { view = t.view; seq; command = sent })
        end
      done
    end
    else
      Dessim.Network.broadcast t.net ~src:t.config.id
        (Pre_prepare { view = t.view; seq; command });
    accept_pre_prepare t ~view:t.view ~seq ~command
  end

(* Accept a pre-prepare (as backup, or the primary's own): record the
   command and count the primary's implicit prepare plus our own. *)
and accept_pre_prepare t ~view ~seq ~command =
  let slot = slot_for t ~view ~seq in
  match slot.accepted with
  | Some existing when existing <> command ->
      (* Equivocation observed; refuse the second command. *)
      record t "equivocation-detected" (Printf.sprintf "seq=%d" seq)
  | Some _ -> ()
  | None ->
      slot.accepted <- Some command;
      ignore (add_vote slot.prepares command (primary_of t view));
      let my_command = if t.byz && not (is_primary t) then corrupted command else command in
      if t.config.id <> primary_of t view then
        Dessim.Network.broadcast t.net ~src:t.config.id
          (Prepare { view; seq; command = my_command; replica = t.config.id });
      ignore (add_vote slot.prepares my_command t.config.id);
      check_prepared t ~view ~seq

and check_prepared t ~view ~seq =
  let slot = slot_for t ~view ~seq in
  match slot.accepted with
  | None -> ()
  | Some command ->
      let votes = IntSet.cardinal !(vote_set slot.prepares command) in
      if votes >= t.config.q_eq && not slot.sent_commit then begin
        slot.sent_commit <- true;
        (* Remember the strongest certificate per sequence number. *)
        (match Hashtbl.find_opt t.prepared_certs seq with
        | Some cert when cert.view >= view -> ()
        | Some _ | None ->
            Hashtbl.replace t.prepared_certs seq { seq; view; command });
        record t "prepared" (Printf.sprintf "view=%d seq=%d cmd=%d" view seq command);
        if t.byz then Obs.Metrics.incr m_byz_actions;
        let my_command = if t.byz then corrupted command else command in
        Dessim.Network.broadcast t.net ~src:t.config.id
          (Commit { view; seq; command = my_command; replica = t.config.id });
        ignore (add_vote slot.commits my_command t.config.id);
        check_committed t ~view ~seq
      end

and check_committed t ~view ~seq =
  let slot = slot_for t ~view ~seq in
  match slot.accepted with
  | None -> ()
  | Some command ->
      let votes = IntSet.cardinal !(vote_set slot.commits command) in
      if votes >= t.config.q_per && not (Hashtbl.mem t.committed seq) then begin
        Hashtbl.replace t.committed seq command;
        record t "commit" (Printf.sprintf "view=%d seq=%d cmd=%d" view seq command);
        Obs.Metrics.incr m_commits;
        try_execute t;
        if Hashtbl.length t.pending = 0 then cancel_vc_timer t else restart_vc_timer t
      end

(* --- State transfer ------------------------------------------------ *)

let handle_status t ~exec_next ~replica =
  (* Answer a lagging peer with the committed entries it is missing
     (bounded batch). *)
  if exec_next < t.exec_next then begin
    let entries = ref [] in
    let upper = min (t.exec_next - 1) (exec_next + 49) in
    for seq = upper downto exec_next do
      match Hashtbl.find_opt t.committed seq with
      | Some command -> entries := (seq, command) :: !entries
      | None -> ()
    done;
    if !entries <> [] then
      Dessim.Network.send t.net ~src:t.config.id ~dst:replica
        (State_transfer { entries = !entries; replica = t.config.id })
  end

let handle_state_transfer t ~entries ~replica =
  List.iter
    (fun (seq, command) ->
      if seq >= t.exec_next && not (Hashtbl.mem t.committed seq) then begin
        let claims =
          match Hashtbl.find_opt t.transfer_claims (seq, command) with
          | Some c -> c
          | None ->
              let c = ref IntSet.empty in
              Hashtbl.add t.transfer_claims (seq, command) c;
              c
        in
        claims := IntSet.add replica !claims;
        (* q_vc_t vouchers guarantee one correct voucher (the
           checkpoint-certificate analogue). *)
        if IntSet.cardinal !claims >= t.config.q_vc_t then begin
          Hashtbl.replace t.committed seq command;
          record t "state-transfer" (Printf.sprintf "seq=%d cmd=%d" seq command);
          try_execute t;
          if Hashtbl.length t.pending = 0 then cancel_vc_timer t
        end
      end)
    entries

let cancel_status_timer t =
  (match t.status_timer with Some c -> Dessim.Engine.cancel c | None -> ());
  t.status_timer <- None

let rec schedule_status t =
  cancel_status_timer t;
  if not t.down then
    t.status_timer <-
      Some
        (Dessim.Engine.schedule t.engine ~delay:t.config.status_interval (fun () ->
             if not t.down then begin
               Dessim.Network.broadcast t.net ~src:t.config.id
                 (Status { exec_next = t.exec_next; replica = t.config.id });
               schedule_status t
             end))

(* --- Message dispatch --------------------------------------------- *)

let handle_request t command =
  if not (Hashtbl.mem t.executed_set command) then begin
    if not (Hashtbl.mem t.pending command) then begin
      Hashtbl.replace t.pending command ();
      if t.vc_timer = None then restart_vc_timer t
    end;
    assign_seq t command
  end

let handle_pre_prepare t ~src ~view ~seq ~command =
  if
    (not t.in_view_change) && view = t.view
    && src = primary_of t view
    && src <> t.config.id
  then accept_pre_prepare t ~view ~seq ~command

let handle_prepare t ~view ~seq ~command ~replica =
  if (not t.in_view_change) && view = t.view then begin
    let slot = slot_for t ~view ~seq in
    ignore (add_vote slot.prepares command replica);
    check_prepared t ~view ~seq
  end

let handle_commit t ~view ~seq ~command ~replica =
  if (not t.in_view_change) && view = t.view then begin
    let slot = slot_for t ~view ~seq in
    ignore (add_vote slot.commits command replica);
    check_committed t ~view ~seq
  end

let handle_view_change t ~new_view ~replica ~prepared =
  if new_view > t.view then note_view_change_vote t ~new_view ~replica ~prepared

let handle_new_view t ~src ~view ~pre_prepares =
  if view >= t.view && src = primary_of t view && src <> t.config.id then begin
    enter_view t view;
    List.iter
      (fun (seq, command) -> accept_pre_prepare t ~view ~seq ~command)
      pre_prepares
  end

let handle_message t ~src msg =
  if not t.down then begin
    match msg with
    | Request { command } -> handle_request t command
    | Pre_prepare { view; seq; command } -> handle_pre_prepare t ~src ~view ~seq ~command
    | Prepare { view; seq; command; replica } -> handle_prepare t ~view ~seq ~command ~replica
    | Commit { view; seq; command; replica } -> handle_commit t ~view ~seq ~command ~replica
    | View_change { new_view; replica; prepared } ->
        handle_view_change t ~new_view ~replica ~prepared
    | New_view { view; pre_prepares } -> handle_new_view t ~src ~view ~pre_prepares
    | Status { exec_next; replica } -> handle_status t ~exec_next ~replica
    | State_transfer { entries; replica } -> handle_state_transfer t ~entries ~replica
  end

(* --- Fault control ------------------------------------------------ *)

let cancel_spam_timer t =
  (match t.byz_spam_timer with Some c -> Dessim.Engine.cancel c | None -> ());
  t.byz_spam_timer <- None

let rec schedule_spam t =
  cancel_spam_timer t;
  if t.byz && not t.down then
    t.byz_spam_timer <-
      Some
        (Dessim.Engine.schedule t.engine ~delay:t.config.byz_spam_interval (fun () ->
             if t.byz && not t.down then begin
               Obs.Metrics.incr m_byz_actions;
               (* Vote stuffing: lobby for an unnecessary view change. *)
               Dessim.Network.broadcast t.net ~src:t.config.id
                 (View_change
                    { new_view = t.view + 1; replica = t.config.id; prepared = [] });
               schedule_spam t
             end))

let set_byzantine t flag =
  t.byz <- flag;
  if flag then begin
    record t "byzantine" "";
    schedule_spam t
  end
  else cancel_spam_timer t

let set_down t down =
  if down && not t.down then begin
    t.down <- true;
    Dessim.Network.set_down t.net t.config.id true;
    cancel_vc_timer t;
    cancel_spam_timer t;
    cancel_status_timer t;
    record t "crash" ""
  end
  else if (not down) && t.down then begin
    t.down <- false;
    Dessim.Network.set_down t.net t.config.id false;
    record t "restart" "";
    restart_vc_timer t;
    schedule_status t;
    if t.byz then schedule_spam t
  end

let create config ~engine ~net ~trace =
  if config.n <= 0 then invalid_arg "Pbft_node.create: n must be positive";
  List.iter
    (fun (label, q) ->
      if q < 1 || q > config.n then
        invalid_arg (Printf.sprintf "Pbft_node.create: %s out of range" label))
    [ ("q_eq", config.q_eq); ("q_per", config.q_per); ("q_vc", config.q_vc);
      ("q_vc_t", config.q_vc_t) ];
  let t =
    {
      config;
      engine;
      net;
      trace;
      view = 0;
      in_view_change = false;
      target_view = 0;
      next_seq = 1;
      slots = Hashtbl.create 64;
      prepared_certs = Hashtbl.create 64;
      committed = Hashtbl.create 64;
      exec_next = 1;
      executed = Dessim.Vec.create ();
      pending = Hashtbl.create 16;
      executed_set = Hashtbl.create 64;
      assigned = Hashtbl.create 16;
      view_change_votes = Hashtbl.create 8;
      view_change_certs = Hashtbl.create 8;
      transfer_claims = Hashtbl.create 16;
      new_view_sent = IntSet.empty;
      vc_timer = None;
      status_timer = None;
      byz = false;
      byz_spam_timer = None;
      down = false;
    }
  in
  Dessim.Network.set_handler net config.id (fun ~src msg -> handle_message t ~src msg);
  schedule_status t;
  t
