(* Tests for the Rabia-style leaderless SMR: proposal exchange +
   null-biased binary agreement per slot. *)

open Rabia_sim

let all n = List.init n Fun.id

let run ?(n = 5) ?(seed = 7) ?(crash = []) ?(drop = 0.) ?(until = 60_000.)
    ?(commands = 10) () =
  let cluster = Rabia_cluster.create ~n ~seed ~drop_probability:drop () in
  let cmds = List.init commands (fun i -> 100 + i) in
  Rabia_cluster.inject cluster (Dessim.Fault_injector.of_failed_nodes ~at:50. crash);
  Rabia_cluster.submit_workload cluster ~commands:cmds ~start:100. ~interval:80.;
  Rabia_cluster.run cluster ~until;
  let correct = List.filter (fun i -> not (List.mem i crash)) (all n) in
  (cluster, Rabia_cluster.check cluster ~expected:cmds ~correct)

let test_healthy_cluster () =
  let cluster, report = run () in
  Alcotest.(check bool) "agreement" true report.Rabia_cluster.agreement_ok;
  Alcotest.(check bool) "live" true report.Rabia_cluster.live;
  (* Identical committed sequences everywhere. *)
  let reference = Rabia_cluster.node cluster 0 |> Rabia_node.committed in
  for i = 1 to 4 do
    Alcotest.(check (list int)) "same order" reference
      (Rabia_node.committed (Rabia_cluster.node cluster i))
  done;
  (* No command committed twice. *)
  Alcotest.(check int) "no duplicates" (List.length reference)
    (List.length (List.sort_uniq compare reference))

let test_tolerates_minority_crashes () =
  let _, report = run ~crash:[ 0; 1 ] ~seed:8 () in
  Alcotest.(check bool) "agreement" true report.Rabia_cluster.agreement_ok;
  Alcotest.(check bool) "live" true report.Rabia_cluster.live

let test_majority_crash_stalls_safely () =
  let _, report = run ~crash:[ 0; 1; 2 ] ~seed:9 ~until:20_000. () in
  Alcotest.(check bool) "agreement" true report.Rabia_cluster.agreement_ok;
  Alcotest.(check bool) "not live" false report.Rabia_cluster.live

let test_resilient_to_message_loss () =
  let _, report = run ~drop:0.05 ~seed:10 ~until:120_000. () in
  Alcotest.(check bool) "agreement" true report.Rabia_cluster.agreement_ok;
  Alcotest.(check bool) "live under 5% loss" true report.Rabia_cluster.live

let test_determinism () =
  let committed seed =
    let cluster, _ = run ~seed () in
    List.init 5 (fun i -> Rabia_node.committed (Rabia_cluster.node cluster i))
  in
  Alcotest.(check bool) "same seed same run" true (committed 21 = committed 21)

let test_submit_dedup () =
  let cluster = Rabia_cluster.create ~n:3 ~seed:11 () in
  ignore
    (Dessim.Engine.schedule_at (Rabia_cluster.engine cluster) ~time:10. (fun () ->
         Array.iter
           (fun i ->
             let node = Rabia_cluster.node cluster i in
             Rabia_node.submit node 42;
             Rabia_node.submit node 42)
           [| 0; 1; 2 |]));
  Rabia_cluster.run cluster ~until:20_000.;
  Alcotest.(check (list int)) "committed once" [ 42 ]
    (Rabia_node.committed (Rabia_cluster.node cluster 0))

let test_majority_submission_commits () =
  (* A command enqueued at a strict majority (3 of 5) can win its slot
     even though two replicas propose null. *)
  let cluster = Rabia_cluster.create ~n:5 ~seed:12 () in
  ignore
    (Dessim.Engine.schedule_at (Rabia_cluster.engine cluster) ~time:10. (fun () ->
         List.iter
           (fun i -> Rabia_node.submit (Rabia_cluster.node cluster i) 7)
           [ 0; 1; 2 ]));
  Rabia_cluster.run cluster ~until:30_000.;
  let report = Rabia_cluster.check cluster ~expected:[ 7 ] ~correct:(all 5) in
  Alcotest.(check bool) "agreement" true report.Rabia_cluster.agreement_ok;
  Alcotest.(check bool) "committed everywhere" true report.Rabia_cluster.live

let test_byzantine_rejected () =
  let cluster = Rabia_cluster.create ~n:3 ~seed:13 () in
  Rabia_cluster.inject cluster [ (0, Dessim.Fault_injector.Byzantine_from 0.) ];
  Alcotest.check_raises "crash-only"
    (Invalid_argument "Rabia (this variant) is crash-fault tolerant only") (fun () ->
      Rabia_cluster.run cluster ~until:10.)

let test_mid_run_crash () =
  let cluster = Rabia_cluster.create ~n:5 ~seed:14 () in
  let cmds = List.init 10 (fun i -> 100 + i) in
  Rabia_cluster.inject cluster [ (0, Dessim.Fault_injector.Crash_at 400.) ];
  Rabia_cluster.submit_workload cluster ~commands:cmds ~start:100. ~interval:80.;
  Rabia_cluster.run cluster ~until:60_000.;
  let report = Rabia_cluster.check cluster ~expected:cmds ~correct:[ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "agreement incl. crashed prefix" true
    report.Rabia_cluster.agreement_ok;
  Alcotest.(check bool) "survivors live" true report.Rabia_cluster.live

let prop_agreement_under_random_crashes =
  QCheck.Test.make ~count:8 ~name:"random crashes: agreement always, live iff minority"
    QCheck.(pair (int_range 0 2) (int_range 0 1000))
    (fun (k, seed) ->
      let rng = Prob.Rng.create seed in
      let crash = Prob.Rng.sample_without_replacement rng k 5 in
      let _, report = run ~crash ~seed ~commands:5 () in
      report.Rabia_cluster.agreement_ok && report.Rabia_cluster.live)

let suite =
  [
    Alcotest.test_case "healthy cluster" `Quick test_healthy_cluster;
    Alcotest.test_case "minority crashes" `Quick test_tolerates_minority_crashes;
    Alcotest.test_case "majority crash stalls safely" `Quick
      test_majority_crash_stalls_safely;
    Alcotest.test_case "message loss" `Slow test_resilient_to_message_loss;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "submit dedup" `Quick test_submit_dedup;
    Alcotest.test_case "majority submission commits" `Quick test_majority_submission_commits;
    Alcotest.test_case "byzantine rejected" `Quick test_byzantine_rejected;
    Alcotest.test_case "mid-run crash" `Quick test_mid_run_crash;
    QCheck_alcotest.to_alcotest prop_agreement_under_random_crashes;
  ]
