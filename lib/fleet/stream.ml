type config = {
  seed : int;
  nodes : int;
  devices_per_node : int;
  window : float;
  batch : int;
  drift_every : int;
  drift_factor : float;
  base_afr_min : float;
  base_afr_max : float;
  dynamic : bool;
  tick_hours : float;
}

let default_config ?(dynamic = false) ~seed ~nodes () =
  {
    seed;
    nodes;
    devices_per_node = 256;
    window = 8766.;
    batch = max 1 (nodes / 4);
    drift_every = 5;
    drift_factor = 4.;
    base_afr_min = 0.01;
    base_afr_max = 0.08;
    dynamic;
    tick_hours = 336.;
  }

type event = {
  node : int;
  observation : Faultmodel.Telemetry.observation;
}

(* Dynamic mode: each node's degradation is a two-state on/off Markov
   process advanced lazily in simulated time. Up = nominal AFR; Down =
   AFR multiplied by [drift_factor]. Dwells are exponential, drawn from
   the node's private process stream, so advancing node [i] never
   perturbs node [j] and the whole fleet replays bit-identically. *)
type markov_state = {
  m_rng : Prob.Rng.t;
  mutable degraded : bool;
  mutable flip_at : float;  (* simulated hour of the next state flip *)
}

type t = {
  cfg : config;
  truth : float array; (* current ground-truth base AFR per node *)
  states : markov_state array; (* [||] unless dynamic *)
  mutable ticks : int;
}

(* Stable stream ids, disjoint by residue class mod 3: the initial
   truth draw, the drift schedule, and each (tick, node) telemetry
   report get independent derived streams, so adding ticks or nodes
   never perturbs earlier draws. The dynamic degradation processes
   reuse residue 0 at offsets [nodes + i], which the truth draws
   (offsets [i < nodes]) never reach. *)
let truth_stream seed i = Prob.Rng.of_pair seed (3 * i)
let drift_stream seed tick = Prob.Rng.of_pair seed ((3 * tick) + 1)
let process_stream cfg i = Prob.Rng.of_pair cfg.seed (3 * (cfg.nodes + i))

let report_stream cfg ~tick ~node =
  Prob.Rng.of_pair cfg.seed ((3 * ((tick * cfg.nodes) + node)) + 2)

(* Mean one-week-scale degradations: a node with base AFR [a] degrades
   at rate [a /. degradation_scale] per hour and recovers at
   [1 /. degradation_scale], so over a default 26-tick soak a typical
   fleet sees a handful of multi-tick degradation episodes — the same
   order of churn as the static step-drift schedule it replaces. *)
let degradation_scale = 1000.
let recover_rate = 1. /. degradation_scale
let degrade_rate afr = afr /. degradation_scale

let create cfg =
  if cfg.nodes <= 0 then invalid_arg "Stream.create: nodes must be positive";
  if cfg.batch <= 0 || cfg.batch > cfg.nodes then
    invalid_arg "Stream.create: batch must be in [1, nodes]";
  if cfg.window <= 0. then invalid_arg "Stream.create: window must be positive";
  if cfg.devices_per_node <= 0 then
    invalid_arg "Stream.create: devices_per_node must be positive";
  if not (cfg.base_afr_min > 0. && cfg.base_afr_max >= cfg.base_afr_min) then
    invalid_arg "Stream.create: bad AFR range";
  if cfg.dynamic && not (cfg.tick_hours > 0.) then
    invalid_arg "Stream.create: tick_hours must be positive";
  let log_min = log cfg.base_afr_min and log_max = log cfg.base_afr_max in
  let truth =
    Array.init cfg.nodes (fun i ->
        let u = Prob.Rng.float (truth_stream cfg.seed i) in
        exp (log_min +. (u *. (log_max -. log_min))))
  in
  let states =
    if not cfg.dynamic then [||]
    else
      Array.init cfg.nodes (fun i ->
          let m_rng = process_stream cfg i in
          {
            m_rng;
            degraded = false;
            flip_at = Prob.Rng.exponential m_rng (degrade_rate truth.(i));
          })
  in
  { cfg; truth; states; ticks = 0 }

let config t = t.cfg
let tick_count t = t.ticks
let ground_truth_afr t i = t.truth.(i)
let now t = float_of_int t.ticks *. t.cfg.tick_hours

let max_truth_afr = 0.6

let advance t node =
  let st = t.states.(node) in
  let now = now t in
  while st.flip_at <= now do
    st.degraded <- not st.degraded;
    let rate =
      if st.degraded then recover_rate else degrade_rate t.truth.(node)
    in
    st.flip_at <- st.flip_at +. Prob.Rng.exponential st.m_rng rate
  done

let effective_afr t node =
  let base = t.truth.(node) in
  if not t.cfg.dynamic then base
  else begin
    advance t node;
    if t.states.(node).degraded then
      Float.min max_truth_afr (base *. t.cfg.drift_factor)
    else base
  end

let ground_truth_degraded t i =
  t.cfg.dynamic
  && begin
       advance t i;
       t.states.(i).degraded
     end

let ground_truth_process t i =
  if t.cfg.dynamic then
    Faultmodel.Failure_process.Markov
      { fail_rate = degrade_rate t.truth.(i); recover_rate }
  else
    Faultmodel.Failure_process.Curve
      (Faultmodel.Fault_curve.of_afr t.truth.(i))

let tick t =
  let cfg = t.cfg in
  t.ticks <- t.ticks + 1;
  if
    (not cfg.dynamic)
    && cfg.drift_every > 0
    && t.ticks mod cfg.drift_every = 0
  then begin
    let rng = drift_stream cfg.seed t.ticks in
    let victim = Prob.Rng.int rng cfg.nodes in
    t.truth.(victim) <- Float.min max_truth_afr (t.truth.(victim) *. cfg.drift_factor)
  end;
  let start = (t.ticks - 1) * cfg.batch mod cfg.nodes in
  List.init cfg.batch (fun k -> (start + k) mod cfg.nodes)
  |> List.sort_uniq compare
  |> List.map (fun node ->
         let rng = report_stream cfg ~tick:t.ticks ~node in
         let curve = Faultmodel.Fault_curve.of_afr (effective_afr t node) in
         let observation =
           Faultmodel.Telemetry.observe rng curve
             ~devices:cfg.devices_per_node ~window:cfg.window
         in
         { node; observation })

let replace t i ~afr =
  if afr <= 0. then invalid_arg "Stream.replace: afr must be positive";
  t.truth.(i) <- afr;
  if t.cfg.dynamic then begin
    let st = t.states.(i) in
    st.degraded <- false;
    st.flip_at <- now t +. Prob.Rng.exponential st.m_rng (degrade_rate afr)
  end
