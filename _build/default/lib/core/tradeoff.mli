(** The hidden safety/liveness trade-off (the paper's E6 analysis).

    Under the f-threshold model a 4-node and a 5-node PBFT both
    "tolerate one fault", so the fifth node looks useless. Under the
    probabilistic model the 5-node system's larger quorums buy a
    42-60x reduction in unsafety for a 1.67x increase in unliveness.
    This module computes those ratios for arbitrary pairs of
    deployments. *)

type comparison = {
  base : Analysis.result;
  alt : Analysis.result;
  safety_improvement : float;
      (** unsafety(base) / unsafety(alt): how many times less likely
          the alternative is to violate safety. [infinity] when the
          alternative is perfectly safe. *)
  liveness_degradation : float;
      (** unliveness(alt) / unliveness(base): the liveness price paid. *)
}

val compare_deployments :
  ?at:float -> Protocol.t * Faultmodel.Fleet.t -> Protocol.t * Faultmodel.Fleet.t -> comparison

val pbft_node_count : p:float -> n_base:int -> n_alt:int -> comparison
(** Compare default-parameter PBFT at two cluster sizes under uniform
    Byzantine fault probability [p]. *)

val pbft_sweep : ps:float list -> n_base:int -> n_alt:int -> (float * comparison) list
(** The E6 sweep: safety-improvement and liveness-degradation ratios
    across fault probabilities. *)

val pp_comparison : Format.formatter -> comparison -> unit
