examples/committee_sampling.ml: Faultmodel Format List Prob Probnative Quorum String
