lib/pbft/pbft_cluster.ml: Array Dessim List Option Pbft_node Pbft_types
