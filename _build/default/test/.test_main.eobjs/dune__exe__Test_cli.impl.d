test/test_cli.ml: Alcotest List Printf String Sys
