(* The DST harness: shrinker laws on a cheap synthetic system (qcheck),
   repro artifact codec totality, simulator soak/round-trip coverage,
   the seeded-bug end-to-end acceptance (find -> shrink -> bounds ->
   deterministic replay), and the committed corpus under repro/. *)

let qtest t = QCheck_alcotest.to_alcotest t

(* --- A synthetic system: fast, deterministic, failure-rich ------------- *)

(* A case fails "has_seven" when fault 7 survives, else "ops_heavy"
   when the op total exceeds 60 — two distinct invariants, so shrinking
   must preserve which one it is reducing toward. *)
type syn = { faults : int list; ops : int list; knob : float }

let syn_run c =
  if List.mem 7 c.faults then
    Dst.Harness.Fail { invariant = "has_seven"; detail = "fault 7 armed" }
  else if List.fold_left ( + ) 0 c.ops > 60 then
    Dst.Harness.Fail { invariant = "ops_heavy"; detail = "op total > 60" }
  else Dst.Harness.Pass

let syn_size c =
  {
    Dst.Harness.units = List.length c.faults + List.length c.ops;
    weight = c.knob;
  }

let drop_nth lst n = List.filteri (fun i _ -> i <> n) lst

let syn_candidates c =
  List.init (List.length c.faults) (fun i ->
      { c with faults = drop_nth c.faults i })
  @ List.init (List.length c.ops) (fun i -> { c with ops = drop_nth c.ops i })
  @ (if c.knob > 0.01 then [ { c with knob = c.knob /. 2. } ] else [])

let syn_generate rng =
  {
    faults = List.init (1 + Prob.Rng.int rng 6) (fun _ -> Prob.Rng.int rng 10);
    ops = List.init (Prob.Rng.int rng 8) (fun _ -> Prob.Rng.int rng 30);
    knob = Prob.Rng.float rng;
  }

let ints_json l = Obs.Json.List (List.map (fun i -> Obs.Json.Int i) l)

let ints_of_json doc =
  match Obs.Json.to_list doc with
  | None -> Error "not a list"
  | Some l ->
      List.fold_left
        (fun acc d ->
          Result.bind acc (fun acc ->
              match d with
              | Obs.Json.Int i -> Ok (i :: acc)
              | _ -> Error "not an int"))
        (Ok []) l
      |> Result.map List.rev

let syn_system : syn Dst.Harness.system =
  {
    name = "synthetic";
    generate = syn_generate;
    run = syn_run;
    candidates = syn_candidates;
    size = syn_size;
    encode =
      (fun c ->
        {
          Dst.Repro.scenario =
            Obs.Json.Obj [ ("knob", Obs.Json.number c.knob) ];
          plan = Obs.Json.Obj [ ("faults", ints_json c.faults) ];
          ops = ints_json c.ops;
        });
    decode =
      (fun { Dst.Repro.scenario; plan; ops } ->
        let ( let* ) = Result.bind in
        let* knob =
          match
            Option.bind (Obs.Json.member "knob" scenario) Obs.Json.to_float
          with
          | Some v -> Ok v
          | None -> Error "missing knob"
        in
        let* faults =
          match Obs.Json.member "faults" plan with
          | Some l -> ints_of_json l
          | None -> Error "missing faults"
        in
        let* ops = ints_of_json ops in
        Ok { faults; ops; knob });
  }

let syn_failure seed =
  (* Drive soak until it finds a violation; the generator plants fault
     7 often enough that a few hundred episodes always hit one. *)
  match
    Dst.Harness.soak ~shrink:false syn_system ~seed ~episodes:500
  with
  | Dst.Harness.Found { failure; _ } -> failure
  | Dst.Harness.All_passed _ ->
      Alcotest.fail "synthetic generator produced no failure in 500 episodes"

(* --- Shrinker laws (qcheck) -------------------------------------------- *)

let prop_steps_same_invariant =
  QCheck.Test.make ~count:60 ~name:"every accepted reduction fails the same invariant"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let failure = syn_failure seed in
      let shrunk = Dst.Harness.shrink syn_system failure in
      List.for_all
        (fun step ->
          match syn_run step with
          | Dst.Harness.Fail { invariant; _ } ->
              invariant = failure.Dst.Harness.invariant
          | Dst.Harness.Pass -> false)
        shrunk.Dst.Harness.steps)

let prop_monotone =
  QCheck.Test.make ~count:60 ~name:"measures strictly decrease along the shrink chain"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let failure = syn_failure seed in
      let shrunk = Dst.Harness.shrink syn_system failure in
      let chain = failure.Dst.Harness.case :: shrunk.Dst.Harness.steps in
      let rec decreasing = function
        | a :: (b :: _ as rest) ->
            Dst.Harness.smaller (syn_size b) (syn_size a) && decreasing rest
        | _ -> true
      in
      decreasing chain)

let prop_shrink_deterministic =
  QCheck.Test.make ~count:60 ~name:"shrink twice = identical minimal case"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let failure = syn_failure seed in
      let a = Dst.Harness.shrink syn_system failure in
      let b = Dst.Harness.shrink syn_system failure in
      a.Dst.Harness.final = b.Dst.Harness.final
      && a.Dst.Harness.attempts = b.Dst.Harness.attempts)

let prop_minimal_has_seven =
  QCheck.Test.make ~count:60
    ~name:"has_seven failures shrink to a single armed fault"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let failure = syn_failure seed in
      QCheck.assume (failure.Dst.Harness.invariant = "has_seven");
      let shrunk = Dst.Harness.shrink syn_system failure in
      shrunk.Dst.Harness.final.faults = [ 7 ]
      && shrunk.Dst.Harness.final.ops = [])

let prop_repro_roundtrip =
  QCheck.Test.make ~count:60 ~name:"repro artifact JSON round-trips"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let failure = syn_failure seed in
      let shrunk = Dst.Harness.shrink syn_system failure in
      let repro =
        Dst.Harness.to_repro syn_system ~seed ~elapsed_seconds:0.5 failure
          (Some shrunk)
      in
      match Dst.Repro.of_string (Obs.Json.to_string (Dst.Repro.to_json repro)) with
      | Error msg -> QCheck.Test.fail_reportf "round-trip failed: %s" msg
      | Ok back ->
          back = repro
          && Dst.Harness.replay syn_system back |> Result.is_ok)

(* --- Repro codec rejections -------------------------------------------- *)

let base_repro () =
  let failure = syn_failure 1 in
  let shrunk = Dst.Harness.shrink syn_system failure in
  Dst.Harness.to_repro syn_system ~seed:1 ~elapsed_seconds:0.25 failure
    (Some shrunk)

let rejects name mutate () =
  let doc = Dst.Repro.to_json (base_repro ()) in
  let fields = match doc with Obs.Json.Obj f -> f | _ -> assert false in
  match Dst.Repro.of_json (Obs.Json.Obj (mutate fields)) with
  | Ok _ -> Alcotest.failf "decoder accepted a %s artifact" name
  | Error _ -> ()

let drop key fields = List.filter (fun (k, _) -> k <> key) fields
let set key v fields = (key, v) :: drop key fields

let repro_rejections () =
  rejects "schema-less" (drop "schema") ();
  rejects "wrong-schema" (set "schema" (Obs.Json.String "probcons-repro/9")) ();
  rejects "seed-less" (drop "seed") ();
  rejects "plan-less" (drop "plan") ();
  rejects "invariant-less" (drop "invariant") ();
  rejects "ops-less" (drop "ops") ();
  rejects "non-finite elapsed"
    (set "elapsed_seconds" (Obs.Json.Float Float.infinity))
    ();
  rejects "negative elapsed" (set "elapsed_seconds" (Obs.Json.Float (-1.))) ();
  rejects "bad expect" (set "expect" (Obs.Json.String "maybe")) ()

let with_expect_flips () =
  let r = base_repro () in
  let flipped = Dst.Repro.with_expect `Pass r in
  Alcotest.(check bool) "expect flipped" true (flipped.Dst.Repro.expect = `Pass);
  Alcotest.(check string)
    "rest unchanged" r.Dst.Repro.invariant flipped.Dst.Repro.invariant

(* --- Simulator systems -------------------------------------------------- *)

let sim_soak_passes () =
  (* Generated faults stay within each protocol's tolerance, so a
     correct implementation must survive every episode. *)
  List.iter
    (fun proto ->
      let sys = Dst.Sim_case.system proto in
      match Dst.Harness.soak sys ~seed:42 ~episodes:3 with
      | Dst.Harness.All_passed _ -> ()
      | Dst.Harness.Found { failure; _ } ->
          Alcotest.failf "%s episode %d violated %s: %s"
            (Dst.Sim_case.system_name proto)
            failure.Dst.Harness.episode failure.Dst.Harness.invariant
            failure.Dst.Harness.detail)
    [ Dst.Sim_case.Raft; Dst.Sim_case.Pbft; Dst.Sim_case.Benor;
      Dst.Sim_case.Rabia ]

let prop_sim_case_roundtrip =
  QCheck.Test.make ~count:40 ~name:"sim cases survive encode/decode"
    QCheck.(
      pair
        (oneofl
           [ Dst.Sim_case.Raft; Dst.Sim_case.Pbft; Dst.Sim_case.Benor;
             Dst.Sim_case.Rabia ])
        (int_range 0 100_000))
    (fun (proto, seed) ->
      let sys = Dst.Sim_case.system proto in
      let case = sys.Dst.Harness.generate (Prob.Rng.create seed) in
      match sys.Dst.Harness.decode (sys.Dst.Harness.encode case) with
      | Ok back -> back = case
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

let sim_decode_rejects () =
  let sys = Dst.Sim_case.system Dst.Sim_case.Raft in
  let case = sys.Dst.Harness.generate (Prob.Rng.create 7) in
  let parts = sys.Dst.Harness.encode case in
  let bad_scenario scenario = { parts with Dst.Repro.scenario } in
  let check name parts =
    match sys.Dst.Harness.decode parts with
    | Ok _ -> Alcotest.failf "sim decoder accepted %s" name
    | Error _ -> ()
  in
  check "byzantine on raft"
    {
      parts with
      Dst.Repro.plan =
        Obs.Json.Obj
          [
            ( "faults",
              Obs.Json.List
                [
                  Obs.Json.Obj
                    [
                      ("node", Obs.Json.Int 0);
                      ("kind", Obs.Json.String "byzantine");
                      ("at", Obs.Json.Int 0);
                    ];
                ] );
          ];
    };
  check "oversized n"
    (bad_scenario
       (Obs.Json.Obj
          [
            ("protocol", Obs.Json.String "raft");
            ("n", Obs.Json.Int 99);
            ("cluster_seed", Obs.Json.Int 1);
            ("drop_probability", Obs.Json.Int 0);
            ("horizon", Obs.Json.Int 60000);
          ]));
  check "plan without faults"
    { parts with Dst.Repro.plan = Obs.Json.Obj [] }

(* --- The seeded-bug acceptance path ------------------------------------- *)

(* The PR-5 'id: 0' regression, re-armed behind Wire.seeded_bug_id0:
   the harness must find it, shrink it under the acceptance bounds
   (<= 3 faults, <= 10 ops), and replay the artifact deterministically.
   Episode 9 of seed 42 is the known first failure; starting from its
   derived seed directly keeps the test to one failing episode. *)
let seeded_bug_found_shrunk_replayed () =
  let service = Dst.Service_case.system ~wire:2 ~seeded_bug:true () in
  let eseed = Dst.Harness.episode_seed ~seed:42 ~episode:9 in
  let case = service.Dst.Harness.generate (Prob.Rng.create eseed) in
  match service.Dst.Harness.run case with
  | Dst.Harness.Pass ->
      Alcotest.fail "seeded id:0 bug was not detected by the known episode"
  | Dst.Harness.Fail { invariant; detail } ->
      let failure =
        {
          Dst.Harness.episode = 9; episode_seed = eseed; case; invariant;
          detail;
        }
      in
      let shrunk = Dst.Harness.shrink service failure in
      let final = shrunk.Dst.Harness.final in
      Alcotest.(check bool)
        "within 3 faults" true
        (Dst.Service_case.active_faults final.Dst.Service_case.plan <= 3);
      Alcotest.(check bool)
        "within 10 ops" true
        (List.length final.Dst.Service_case.ops <= 10);
      let repro =
        Dst.Harness.to_repro service ~seed:42 ~elapsed_seconds:1.0 failure
          (Some shrunk)
      in
      let replay () =
        match Dst.Registry.replay repro with
        | Ok msg -> msg
        | Error msg -> Alcotest.failf "replay diverged: %s" msg
      in
      (* Deterministic across two replays: identical confirmation,
         including the failure detail baked into the message. *)
      Alcotest.(check string) "replay deterministic" (replay ()) (replay ())

let process_fault_rejects () =
  let fault_plan kind_fields =
    Obs.Json.Obj
      [
        ( "faults",
          Obs.Json.List
            [
              Obs.Json.Obj
                (("node", Obs.Json.Int 0)
                :: (kind_fields @ [ ("at", Obs.Json.Int 0) ]));
            ] );
      ]
  in
  let process_fields fail_rate recover_rate =
    [
      ("kind", Obs.Json.String "process");
      ("fail_rate", Obs.Json.Float fail_rate);
      ("recover_rate", Obs.Json.Float recover_rate);
    ]
  in
  let check protocol name plan =
    let sys = Dst.Sim_case.system protocol in
    let parts =
      sys.Dst.Harness.encode (sys.Dst.Harness.generate (Prob.Rng.create 7))
    in
    match sys.Dst.Harness.decode { parts with Dst.Repro.plan } with
    | Ok _ -> Alcotest.failf "sim decoder accepted %s" name
    | Error _ -> ()
  in
  (* Process schedules model crash/recover churn, not equivocation:
     only the CFT protocols with restart support take them. *)
  check Dst.Sim_case.Pbft "process fault on pbft"
    (fault_plan (process_fields 1e-4 1e-3));
  check Dst.Sim_case.Benor "process fault on benor"
    (fault_plan (process_fields 1e-4 1e-3));
  check Dst.Sim_case.Raft "zero fail_rate" (fault_plan (process_fields 0. 1e-3));
  check Dst.Sim_case.Raft "negative recover_rate"
    (fault_plan (process_fields 1e-4 (-1.)));
  check Dst.Sim_case.Raft "nan fail_rate"
    (fault_plan (process_fields Float.nan 1e-3))

let process_repro_recovery_dependence () =
  (* The pinned artifact's liveness pass must genuinely hinge on the
     process-faulted node recovering: two permanent crashes leave 2 of
     5, below the majority the liveness invariant demands, so the
     obligation set only reaches 3 because node 4's sampled outages all
     close by the midpoint. *)
  let path =
    let dir =
      List.find_opt Sys.file_exists [ "repro"; "test/repro" ]
      |> Option.value ~default:"repro"
    in
    Filename.concat dir "sim_raft_process_recovery.json"
  in
  match Dst.Repro.read ~path with
  | Error msg -> Alcotest.failf "pinned process repro unreadable: %s" msg
  | Ok r -> (
      Alcotest.(check string) "system" "sim-raft" r.Dst.Repro.system;
      Alcotest.(check string) "invariant" "liveness" r.Dst.Repro.invariant;
      Alcotest.(check bool) "expect pass" true (r.Dst.Repro.expect = `Pass);
      let sys = Dst.Sim_case.system Dst.Sim_case.Raft in
      match sys.Dst.Harness.decode r.Dst.Repro.parts with
      | Error msg -> Alcotest.failf "pinned case does not decode: %s" msg
      | Ok case ->
          Alcotest.(check (list int))
            "liveness depends on node 4 recovering" [ 4 ]
            (Dst.Sim_case.recovered_nodes case);
          let crashed =
            List.filter_map
              (fun f ->
                match f.Dst.Sim_case.kind with
                | Dst.Sim_case.Crash -> Some f.Dst.Sim_case.node
                | _ -> None)
              case.Dst.Sim_case.faults
          in
          Alcotest.(check int)
            "crashes alone leave a minority"
            (case.Dst.Sim_case.n - 3)
            (List.length crashed))

(* --- The committed corpus ----------------------------------------------- *)

let corpus_files () =
  (* cwd is test/ under dune runtest, the repo root under dune exec. *)
  let dir =
    List.find_opt Sys.file_exists [ "repro"; "test/repro" ]
    |> Option.value ~default:"repro"
  in
  match Sys.readdir dir with
  | exception Sys_error _ ->
      Alcotest.fail "test/repro corpus directory is missing"
  | entries ->
      let files =
        Array.to_list entries
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.sort compare
        |> List.map (Filename.concat dir)
      in
      if files = [] then Alcotest.fail "test/repro corpus is empty";
      files

let corpus_replays () =
  List.iter
    (fun path ->
      match Dst.Registry.replay_file path with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "corpus artifact diverged: %s" msg)
    (corpus_files ())

let corpus_validates () =
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Dst.Repro.of_string contents with
      | Ok r ->
          Alcotest.(check string)
            (path ^ " schema") Dst.Repro.schema "probcons-repro/1";
          if r.Dst.Repro.shrunk_units > r.Dst.Repro.original_units then
            Alcotest.failf "%s: shrunk larger than original" path
      | Error msg -> Alcotest.failf "%s: %s" path msg)
    (corpus_files ())

let suite =
  [
    qtest prop_steps_same_invariant;
    qtest prop_monotone;
    qtest prop_shrink_deterministic;
    qtest prop_minimal_has_seven;
    qtest prop_repro_roundtrip;
    Alcotest.test_case "repro decoder rejects malformed artifacts" `Quick
      repro_rejections;
    Alcotest.test_case "with_expect flips only the expectation" `Quick
      with_expect_flips;
    Alcotest.test_case "sim soak: all protocols pass within tolerance" `Slow
      sim_soak_passes;
    qtest prop_sim_case_roundtrip;
    Alcotest.test_case "sim decoder rejects out-of-envelope cases" `Quick
      sim_decode_rejects;
    Alcotest.test_case "sim decoder rejects bad process faults" `Quick
      process_fault_rejects;
    Alcotest.test_case "process repro: liveness depends on recovery" `Quick
      process_repro_recovery_dependence;
    Alcotest.test_case "seeded id:0 bug: found, shrunk small, replays" `Slow
      seeded_bug_found_shrunk_replayed;
    Alcotest.test_case "corpus: every artifact validates" `Quick
      corpus_validates;
    Alcotest.test_case "corpus: every artifact meets its expectation" `Slow
      corpus_replays;
  ]
