type t = {
  window : int;
  intervals : float Queue.t;
  mutable last_heartbeat : float option;
  mutable sum : float;
  mutable sum_sq : float;
}

let create ?(window = 128) () =
  if window < 2 then invalid_arg "Failure_detector.create: window too small";
  { window; intervals = Queue.create (); last_heartbeat = None; sum = 0.; sum_sq = 0. }

let heartbeat t ~now =
  (match t.last_heartbeat with
  | Some last ->
      if now < last then invalid_arg "Failure_detector.heartbeat: time went backwards";
      let interval = now -. last in
      Queue.push interval t.intervals;
      t.sum <- t.sum +. interval;
      t.sum_sq <- t.sum_sq +. (interval *. interval);
      if Queue.length t.intervals > t.window then begin
        let evicted = Queue.pop t.intervals in
        t.sum <- t.sum -. evicted;
        t.sum_sq <- t.sum_sq -. (evicted *. evicted)
      end
  | None -> ());
  t.last_heartbeat <- Some now

let samples t = Queue.length t.intervals

let mean_interval t =
  let n = Queue.length t.intervals in
  if n = 0 then None else Some (t.sum /. float_of_int n)

let stddev t =
  let n = float_of_int (Queue.length t.intervals) in
  if n < 1. then None
  else begin
    let mean = t.sum /. n in
    let variance = Float.max 0. ((t.sum_sq /. n) -. (mean *. mean)) in
    (* Floor the deviation at a tenth of the mean so a perfectly regular
       simulated heartbeat stream does not make phi a step function. *)
    Some (Float.max (sqrt variance) (0.1 *. mean))
  end

let phi t ~now =
  match (t.last_heartbeat, mean_interval t, stddev t) with
  | Some last, Some mean, Some sd when Queue.length t.intervals >= 1 ->
      let elapsed = now -. last in
      if elapsed <= mean then 0.
      else begin
        (* Exponential approximation of the normal tail, following the
           phi-accrual construction: P ~ exp (-(elapsed - mean) / sd')
           with sd' scaled so phi grows one unit per ln 10 * sd'. *)
        let y = (elapsed -. mean) /. sd in
        y /. Float.log 10.
      end
  | _ -> 0.

let suspect ?(threshold = 8.) t ~now = phi t ~now > threshold
