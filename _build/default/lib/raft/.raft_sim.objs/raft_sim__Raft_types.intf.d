lib/raft/raft_types.mli: Format
