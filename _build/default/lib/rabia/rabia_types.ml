type msg =
  | Proposal of { slot : int; command : int; from : int }
  | Report of { slot : int; round : int; value : int; from : int }
  | Vote of { slot : int; round : int; value : int option; from : int }
  | Decision of { slot : int; value : int; command : int option; from : int }

let pp_msg fmt = function
  | Proposal { slot; command; from } ->
      Format.fprintf fmt "Proposal(s=%d, cmd=%d, from=%d)" slot command from
  | Report { slot; round; value; from } ->
      Format.fprintf fmt "Report(s=%d, r=%d, v=%d, from=%d)" slot round value from
  | Vote { slot; round; value; from } ->
      Format.fprintf fmt "Vote(s=%d, r=%d, v=%s, from=%d)" slot round
        (match value with Some v -> string_of_int v | None -> "_")
        from
  | Decision { slot; value; command; from } ->
      Format.fprintf fmt "Decision(s=%d, v=%d, cmd=%s, from=%d)" slot value
        (match command with Some c -> string_of_int c | None -> "_")
        from
