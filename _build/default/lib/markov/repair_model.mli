(** Storage-style reliability metrics for consensus clusters.

    Applies the storage community's method (the paper's §2): a
    birth-death CTMC whose states count failed nodes, with per-node
    failure rate [lambda] and repair rate [mu], yields MTTF (mean time
    until the cluster first loses its quorum), MTBF, steady-state
    availability, and MTTDL (mean time until committed data is lost).

    Rates are per hour; results are in hours. *)

type spec = {
  n : int;  (** Cluster size. *)
  quorum : int;  (** Nodes needed for progress (e.g. majority). *)
  lambda : float;  (** Per-node failure rate (1/MTTF_node). *)
  mu : float;  (** Per-node repair rate (1/MTTR_node); parallel repair. *)
}

val of_afr : n:int -> quorum:int -> afr:float -> mttr_hours:float -> spec
(** Build a spec from the fleet metrics operators actually track. *)

val availability_chain : spec -> Ctmc.t
(** Birth-death chain over [0..n] failed nodes, repairs enabled
    everywhere (for steady-state availability). *)

val mttf : spec -> float
(** Mean time, starting from an all-healthy cluster, until fewer than
    [quorum] nodes are alive — loss of liveness. Repairs operate in the
    transient states. *)

val mttr_cluster : spec -> float
(** Mean time from quorum-loss back to a quorum. *)

val mtbf : spec -> float
(** MTTF + cluster MTTR. *)

val availability : spec -> float
(** Steady-state fraction of time a quorum is alive. *)

val mttdl : spec -> float
(** Mean time to data loss: data is replicated on [quorum] nodes; a
    failed holder is re-replicated at rate [mu]; data is lost when all
    holders are simultaneously failed (the RAID-style computation, with
    k = quorum copies). *)

val nines_of_availability : spec -> float
