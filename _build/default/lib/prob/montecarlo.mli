(** Monte-Carlo estimation with confidence intervals.

    Used when the exact engines do not apply: correlated failure models,
    very large clusters, and validating executed protocols (experiment
    E8) against the closed-form analysis. *)

type estimate = {
  mean : float;
  trials : int;
  successes : int;
  ci_low : float;  (** 95% Wilson interval, lower bound. *)
  ci_high : float;  (** 95% Wilson interval, upper bound. *)
}

val estimate_bool : ?trials:int -> Rng.t -> (Rng.t -> bool) -> estimate
(** [estimate_bool rng f] estimates P(f = true) over independent trials
    (default 100_000). Each trial receives the shared stream. *)

val wilson_interval : successes:int -> trials:int -> float * float
(** 95% Wilson score interval for a binomial proportion. *)

val within : estimate -> float -> bool
(** [within e p] is true when [p] lies inside the 95% interval. *)

val pp : Format.formatter -> estimate -> unit
