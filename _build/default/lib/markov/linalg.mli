(** Small dense linear algebra for Markov-chain analysis.

    The chains in this toolkit have at most a few hundred states
    (cluster sizes), so dense Gaussian elimination with partial
    pivoting is exact enough and dependency-free. *)

type matrix = float array array
(** Row-major; [m.(i).(j)]. *)

val make : int -> int -> matrix
val identity : int -> matrix
val copy : matrix -> matrix
val transpose : matrix -> matrix
val mat_vec : matrix -> float array -> float array

val solve : matrix -> float array -> float array
(** [solve a b] returns [x] with [a x = b]. Raises [Failure] on a
    (numerically) singular system. The inputs are not modified. *)

val solve_normalized_nullspace : matrix -> float array
(** [solve_normalized_nullspace q] finds the probability vector [pi]
    with [pi q = 0] and [sum pi = 1] — the stationary distribution of
    the CTMC with generator [q]. Implemented by replacing one column of
    the transposed system with the normalization constraint. *)
