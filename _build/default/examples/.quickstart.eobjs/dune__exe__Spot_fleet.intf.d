examples/spot_fleet.mli:
