(** The long-running reliability-query server.

    Architecture (one box per module):

    {v
      accept loop ── reader thread per connection ── bounded queue ──
        worker lanes (Parallel.Pool domains) ── Router ── Cache ── reply
    v}

    - {b Transport}: Unix-domain and/or TCP (loopback) listeners; one
      reader thread per connection parses newline-delimited requests.
    - {b Backpressure}: a bounded request queue. When it is full the
      reader replies [overloaded] {e immediately} — load is shed with a
      structured error, never by hanging the client. Requests that wait
      in the queue longer than the configured deadline are answered
      [deadline_exceeded] without being computed.
    - {b Self-protection}: a connection that stays silent longer than
      [idle_timeout_seconds] is closed and its reader thread released —
      an abandoned or black-holed socket cannot pin server resources.
      Accepts beyond [max_connections] are answered with a single
      [overloaded] error line and closed. [ping] requests are answered
      by the reader thread without entering the queue, so health checks
      stay honest under overload and during drains. SIGPIPE is ignored
      process-wide, and reader handles of finished connections are
      pruned on the accept path so long fault-injection soaks do not
      accumulate dead threads.
    - {b Workers}: [workers] lanes hosted on one {!Parallel.Pool.map}
      call, so each lane is a real domain (analyses run in parallel
      across requests) while nested analysis parallelism degrades to
      sequential per lane — deterministic engine strings, no domain
      oversubscription.
    - {b Cache}: replies for cacheable queries are memoized by
      canonical key ({!Cache}); identical requests get byte-identical
      responses whether computed or replayed.
    - {b Shutdown}: {!stop} (or SIGINT/SIGTERM under {!run}) stops
      accepting, drains queued work, answers late arrivals with
      [shutting_down], then closes connections — a graceful drain.

    Everything is instrumented under the ["service"] metrics family:
    request/response/rejection counters, queue-depth gauge, queue-wait
    and handler-latency histograms, cache hits/misses. *)

type config = {
  socket_path : string option;  (** Unix-domain listener path. *)
  tcp_port : int option;  (** TCP listener on 127.0.0.1. *)
  workers : int;  (** Worker lanes; clamped to [1 ..]. *)
  queue_depth : int;  (** Bounded queue capacity; clamped to [1 ..]. *)
  cache_capacity : int;  (** LRU entries; [0] disables caching. *)
  deadline_seconds : float;  (** Per-request queue deadline. *)
  idle_timeout_seconds : float;
      (** Close a connection after this long with no readable bytes;
          [<= 0] disables the timeout. *)
  max_connections : int;
      (** Live-connection cap; clamped to [1 ..]. Accepts beyond it are
          answered [overloaded] and closed. *)
}

val default_config : config
(** No listeners configured (callers must set at least one);
    [workers = Parallel.Pool.default ()], queue depth 64, cache 1024
    entries, 5 s deadline, 300 s idle timeout, 1024 connections. *)

type t

val start : config -> t
(** Bind listeners, spawn the accept loop and worker lanes, and return
    immediately. Raises [Invalid_argument] when no listener is
    configured; [Unix.Unix_error] when binding fails. *)

val stop : t -> unit
(** Graceful drain as described above. Idempotent; blocks until every
    thread and worker domain has joined. *)

val connection_count : t -> int
(** Live connections (each owns one reader thread). The chaos soak's
    leak check: after clients disconnect this must return to zero. *)

val run : config -> unit
(** [start], then block until SIGINT or SIGTERM, then [stop]. Installs
    the signal handlers (and ignores SIGPIPE) for the duration. *)
