(* Cross-cutting property tests: invariants that must hold across the
   whole analysis stack, on randomized instances. *)

open Probcons

let random_fleet rng ~n ~max_p ~byz =
  Faultmodel.Fleet.of_nodes
    (List.init n (fun id ->
         Faultmodel.Node.make ~id
           ~byz_fraction:(if byz then Prob.Rng.float rng else 0.)
           (Faultmodel.Fault_curve.constant (Prob.Rng.float rng *. max_p))))

let prop_conjunction_bounded =
  QCheck.Test.make ~count:40 ~name:"P(safe&live) <= min(P(safe), P(live))"
    QCheck.(pair (int_range 3 9) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let fleet = random_fleet rng ~n ~max_p:0.3 ~byz:true in
      let proto =
        if n >= 4 && Prob.Rng.bool rng 0.5 then Pbft_model.protocol (Pbft_model.default n)
        else Raft_model.protocol (Raft_model.default n)
      in
      let r = Analysis.run proto fleet in
      r.Analysis.p_safe_live <= r.Analysis.p_safe +. 1e-12
      && r.Analysis.p_safe_live <= r.Analysis.p_live +. 1e-12)

let prop_raft_reliability_monotone_in_n =
  QCheck.Test.make ~count:40 ~name:"raft S&L grows with odd cluster size"
    QCheck.(pair (int_range 1 5) (float_bound_inclusive 0.3))
    (fun (half, p) ->
      QCheck.assume (p < 0.5);
      let n = (2 * half) + 1 in
      Raft_model.safe_and_live_uniform ~n:(n + 2) ~p
      >= Raft_model.safe_and_live_uniform ~n ~p -. 1e-12)

let prop_engines_agree_on_random_pbft_quorums =
  QCheck.Test.make ~count:25 ~name:"count DP = enumeration on random PBFT quorums"
    QCheck.(pair (int_range 4 7) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let q () = 1 + Prob.Rng.int rng n in
      let q_vc = q () in
      let params =
        Pbft_model.make ~n ~q_eq:(q ()) ~q_per:(q ()) ~q_vc
          ~q_vc_t:(1 + Prob.Rng.int rng q_vc)
      in
      let fleet = random_fleet rng ~n ~max_p:0.4 ~byz:true in
      let proto = Pbft_model.protocol params in
      let dp = Analysis.run ~strategy:Analysis.Count_dp proto fleet in
      let enum = Analysis.run ~strategy:Analysis.Enumeration proto fleet in
      Float.abs (dp.Analysis.p_safe -. enum.Analysis.p_safe) < 1e-9
      && Float.abs (dp.Analysis.p_live -. enum.Analysis.p_live) < 1e-9
      && Float.abs (dp.Analysis.p_safe_live -. enum.Analysis.p_safe_live) < 1e-9)

let prop_durability_ordering_random_fleets =
  QCheck.Test.make ~count:40 ~name:"durability: worst <= random <= best"
    QCheck.(pair (int_range 4 10) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let fleet = random_fleet rng ~n ~max_p:0.5 ~byz:false in
      let size = 1 + Prob.Rng.int rng (n - 1) in
      let d placement = Durability.durability fleet placement ~size in
      d Durability.Worst_case <= d Durability.Random +. 1e-12
      && d Durability.Random <= d Durability.Best_case +. 1e-12)

let prop_formation_dependence_helps =
  QCheck.Test.make ~count:40 ~name:"shared-live-set intersection >= independent"
    QCheck.(triple (int_range 6 25) (float_bound_inclusive 0.4) (int_range 0 1000))
    (fun (n, p, seed) ->
      let rng = Prob.Rng.create seed in
      let k1 = 1 + Prob.Rng.int rng (n / 2) in
      let k2 = 1 + Prob.Rng.int rng (n / 2) in
      Quorum.Formation.intersection_given_live ~n ~p ~k1 ~k2
      >= Quorum.Formation.intersection_independent ~n ~k1 ~k2 -. 1e-12)

let prop_equivalence_minimal =
  QCheck.Test.make ~count:30 ~name:"min_raft_cluster is minimal"
    QCheck.(pair (float_bound_inclusive 0.2) (int_range 1 6))
    (fun (p, nines) ->
      QCheck.assume (p > 0.001);
      let target = Prob.Nines.to_prob (float_of_int nines) in
      match Equivalence.min_raft_cluster ~target ~p () with
      | None -> true
      | Some e ->
          e.Equivalence.p_safe_live >= target
          && (e.Equivalence.n <= 2
             || Equivalence.raft_reliability ~n:(e.Equivalence.n - 2) ~p < target))

let prop_upright_safety_between_raft_and_pbft =
  QCheck.Test.make ~count:30 ~name:"safety: raft <= upright(r=1) <= pbft"
    QCheck.(pair (int_range 4 9) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let fleet = random_fleet rng ~n ~max_p:0.2 ~byz:true in
      let results = Upright_model.compare_with_classics fleet in
      let get name = (List.assoc name results).Analysis.p_safe in
      get "raft" <= get "upright" +. 1e-12 && get "upright" <= get "pbft" +. 1e-12)

let prop_uniform_stake_equals_count_threshold =
  QCheck.Test.make ~count:30 ~name:"uniform stake model = count threshold"
    QCheck.(pair (int_range 3 10) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let fleet = random_fleet rng ~n ~max_p:0.3 ~byz:true in
      let stake = Stake_model.protocol (Stake_model.make (Array.make n 1.)) in
      (* The equivalent count model: safe iff byz/n < 1/3, live iff
         correct/n >= 2/3. *)
      let count =
        {
          Protocol.name = "count-equivalent";
          n;
          safe =
            Protocol.count_predicate ~n (fun ~byz ~crashed:_ ->
                3 * byz < n);
          live =
            Protocol.count_predicate ~n (fun ~byz ~crashed ->
                3 * (n - byz - crashed) >= 2 * n);
        }
      in
      let a = Analysis.run stake fleet in
      let b = Analysis.run count fleet in
      Float.abs (a.Analysis.p_safe -. b.Analysis.p_safe) < 1e-9
      && Float.abs (a.Analysis.p_live -. b.Analysis.p_live) < 1e-9)

(* --- Parallel determinism --------------------------------------------

   The chunked engines must be *bit-identical* across domain counts:
   exact engines because chunk boundaries and reduction order are fixed,
   Monte Carlo because chunk RNG streams depend only on (seed, chunk). *)

let identical_numbers a b =
  Float.equal a.Analysis.p_safe b.Analysis.p_safe
  && Float.equal a.Analysis.p_live b.Analysis.p_live
  && Float.equal a.Analysis.p_safe_live b.Analysis.p_safe_live

let random_identity_protocol rng ~n =
  (* Stake weights make the predicates node-identity-dependent, which
     forces the enumeration engine (binary or ternary depending on the
     fleet's fault mix). *)
  Stake_model.protocol
    (Stake_model.make (Array.init n (fun _ -> 1. +. Prob.Rng.float rng)))

let prop_enumeration_bit_stable_across_domains =
  QCheck.Test.make ~count:20 ~name:"enumeration: domains:1 = domains:4 bit-identical"
    QCheck.(triple (int_range 3 8) bool (int_range 0 100_000))
    (fun (n, ternary, seed) ->
      let rng = Prob.Rng.create seed in
      let fleet =
        (* byz:true with full byz_fraction mix -> ternary path; byz:false
           -> pure-crash binary path. *)
        random_fleet rng ~n ~max_p:0.3 ~byz:ternary
      in
      let proto = random_identity_protocol rng ~n in
      let seq = Analysis.run ~strategy:Analysis.Enumeration ~domains:1 proto fleet in
      let par = Analysis.run ~strategy:Analysis.Enumeration ~domains:4 proto fleet in
      identical_numbers seq par)

let prop_count_dp_bit_stable_across_domains =
  QCheck.Test.make ~count:15 ~name:"count-dp: domains:1 = domains:4 bit-identical"
    QCheck.(pair (int_range 3 9) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let fleet = random_fleet rng ~n ~max_p:0.3 ~byz:true in
      let proto =
        if n >= 4 && Prob.Rng.bool rng 0.5 then Pbft_model.protocol (Pbft_model.default n)
        else Raft_model.protocol (Raft_model.default n)
      in
      let seq = Analysis.run ~strategy:Analysis.Count_dp ~domains:1 proto fleet in
      let par = Analysis.run ~strategy:Analysis.Count_dp ~domains:4 proto fleet in
      identical_numbers seq par)

let prop_monte_carlo_seed_reproducible_across_domains =
  QCheck.Test.make ~count:10
    ~name:"monte carlo: same seed, domains:1 = domains:4 identical"
    QCheck.(triple (int_range 3 10) (int_range 0 100_000) (int_range 1 5))
    (fun (n, seed, k) ->
      let rng = Prob.Rng.create seed in
      let fleet = random_fleet rng ~n ~max_p:0.3 ~byz:true in
      let proto = random_identity_protocol rng ~n in
      let trials = k * 1000 in
      let seq =
        Analysis.run ~strategy:(Analysis.Monte_carlo trials) ~seed ~domains:1 proto fleet
      in
      let par =
        Analysis.run ~strategy:(Analysis.Monte_carlo trials) ~seed ~domains:4 proto fleet
      in
      identical_numbers seq par
      && seq.Analysis.ci_safe = par.Analysis.ci_safe
      && seq.Analysis.ci_live = par.Analysis.ci_live)

let prop_iter_subsets_range_partitions_space =
  QCheck.Test.make ~count:50 ~name:"iter_subsets_range partition covers the space"
    QCheck.(pair (int_range 1 12) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let total = (1 lsl n) in
      (* Random partition of [0, 2^n): 1-4 ordered cut points. *)
      let cuts =
        List.init (1 + Prob.Rng.int rng 4) (fun _ -> Prob.Rng.int rng (total + 1))
        |> List.sort_uniq compare
      in
      let bounds = (0 :: cuts) @ [ total ] in
      let from_ranges = ref [] in
      let rec walk = function
        | lo :: (hi :: _ as rest) ->
            Quorum.Subset.iter_subsets_range n ~lo ~hi (fun s ->
                from_ranges := s :: !from_ranges);
            walk rest
        | _ -> ()
      in
      walk bounds;
      let whole = ref [] in
      Quorum.Subset.iter_subsets n (fun s -> whole := s :: !whole);
      List.rev !from_ranges = List.rev !whole)

let prop_iter_ternary_range_partitions_space =
  QCheck.Test.make ~count:30 ~name:"iter_ternary_range partition covers the space"
    QCheck.(pair (int_range 1 6) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Prob.Rng.create seed in
      let total = Config.ternary_cardinality ~n in
      let mid = Prob.Rng.int rng (total + 1) in
      let collect f =
        let acc = ref [] in
        f (fun c -> acc := Array.to_list c :: !acc);
        List.rev !acc
      in
      let sliced =
        collect (fun f -> Config.iter_ternary_range ~n ~lo:0 ~hi:mid f)
        @ collect (fun f -> Config.iter_ternary_range ~n ~lo:mid ~hi:total f)
      in
      let whole = collect (fun f -> Config.iter_ternary ~n f) in
      sliced = whole)

let prop_nines_formatting_sane =
  QCheck.Test.make ~count:100 ~name:"percent_string stays within [0%,100%]"
    QCheck.(float_bound_inclusive 1.)
    (fun p ->
      let s = Prob.Nines.percent_string p in
      String.length s > 0
      && s.[String.length s - 1] = '%'
      &&
      match Prob.Nines.parse_percent s with
      | Some q -> q >= 0. && q <= 1.
      | None -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_conjunction_bounded;
    QCheck_alcotest.to_alcotest prop_raft_reliability_monotone_in_n;
    QCheck_alcotest.to_alcotest prop_engines_agree_on_random_pbft_quorums;
    QCheck_alcotest.to_alcotest prop_durability_ordering_random_fleets;
    QCheck_alcotest.to_alcotest prop_formation_dependence_helps;
    QCheck_alcotest.to_alcotest prop_equivalence_minimal;
    QCheck_alcotest.to_alcotest prop_upright_safety_between_raft_and_pbft;
    QCheck_alcotest.to_alcotest prop_uniform_stake_equals_count_threshold;
    QCheck_alcotest.to_alcotest prop_enumeration_bit_stable_across_domains;
    QCheck_alcotest.to_alcotest prop_count_dp_bit_stable_across_domains;
    QCheck_alcotest.to_alcotest prop_monte_carlo_seed_reproducible_across_domains;
    QCheck_alcotest.to_alcotest prop_iter_subsets_range_partitions_space;
    QCheck_alcotest.to_alcotest prop_iter_ternary_range_partitions_space;
    QCheck_alcotest.to_alcotest prop_nines_formatting_sane;
  ]
