lib/quorum/probabilistic.mli:
