type target = Unix_path of string | Tcp of int

type backoff = {
  seed : int;
  initial : float;
  multiplier : float;
  max_sleep : float;
  jitter : float;
}

let default_backoff =
  { seed = 0; initial = 0.005; multiplier = 2.0; max_sleep = 0.5; jitter = 0.5 }

(* --- Metrics ----------------------------------------------------------- *)

let m_reconnects = Obs.Metrics.counter ~family:"client" "reconnects_total"
let m_timeouts = Obs.Metrics.counter ~family:"client" "call_timeouts"
let m_retries = Obs.Metrics.counter ~family:"client" "call_retries"

type t = {
  target : target;
  wire : int;  (* 1 | 2 -> newline framing; 3 -> binary frames *)
  binary : bool;
  backoff : backoff;
  rng : Prob.Rng.t;
  timeout : float option;  (* default per-call budget *)
  mutable fd : Unix.file_descr option;
  lines : Linebuf.t;
  frames : Frame.decoder;
  chunk : Bytes.t;
}

(* Raised internally; both map to typed [Wire.error_code]s at the
   [call] boundary, never escape to callers. *)
exception Timed_out
exception Lost of string

let sockaddr = function
  | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

(* --- Connecting with jittered exponential backoff ---------------------- *)

(* Sleep grows [initial, initial*multiplier, ...] capped at [max_sleep],
   each draw shortened by up to [jitter * sleep] from the client's own
   seeded stream — deterministic per client, decorrelated across a
   fleet of clients hammering a recovering server. *)
let backoff_sleep t attempt =
  let b = t.backoff in
  let base = b.initial *. (b.multiplier ** float_of_int attempt) in
  let capped = Float.min b.max_sleep base in
  capped *. (1. -. (b.jitter *. Prob.Rng.float t.rng))

let connect_once t ~deadline =
  let domain, addr = sockaddr t.target in
  let rec attempt k =
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception
        Unix.Unix_error
          ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR
            | Unix.ECONNRESET ),
            _,
            _ )
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        let sleep =
          Float.min (backoff_sleep t k) (deadline -. Unix.gettimeofday ())
        in
        if sleep > 0. then Unix.sleepf sleep;
        attempt (k + 1)
    | exception e ->
        Unix.close fd;
        raise e
  in
  attempt 0

let disconnect t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  Linebuf.reset t.lines;
  Frame.reset t.frames

let reconnect t ~deadline =
  disconnect t;
  Obs.Metrics.incr m_reconnects;
  t.fd <- Some (connect_once t ~deadline)

let connect ?(wire = Wire.protocol_version) ?(retry_for = 0.)
    ?(backoff = default_backoff) ?timeout target =
  if wire < Wire.min_protocol_version || wire > Wire.protocol_version then
    invalid_arg (Printf.sprintf "Client.connect: unsupported wire version %d" wire);
  (* Writes to a dead peer must surface as EPIPE, not kill the
     process: same audit as the server side. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let t =
    {
      target;
      wire;
      binary = wire >= 3;
      backoff;
      rng = Prob.Rng.create backoff.seed;
      timeout;
      fd = None;
      lines = Linebuf.create ();
      frames = Frame.create ();
      chunk = Bytes.create 65536;
    }
  in
  t.fd <- Some (connect_once t ~deadline:(Unix.gettimeofday () +. retry_for));
  t

let wire_version t = t.wire

let fd_exn t =
  match t.fd with Some fd -> fd | None -> raise (Lost "not connected")

(* --- Deadline-bounded socket IO ---------------------------------------- *)

(* All reads and writes go through [select] first when a deadline is
   set, so no call ever parks in an unbounded [Unix.read]: a stalled or
   black-holed peer becomes [Timed_out] the moment the budget runs
   out. *)
let wait_io fd ~readable ~deadline =
  match deadline with
  | None -> ()
  | Some d ->
      let rec go () =
        let remaining = d -. Unix.gettimeofday () in
        if remaining <= 0. then raise Timed_out
        else
          let rs = if readable then [ fd ] else [] in
          let ws = if readable then [] else [ fd ] in
          match Unix.select rs ws [] remaining with
          | [], [], _ -> raise Timed_out
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      in
      go ()

let send_bytes_deadline t ~deadline s =
  let fd = fd_exn t in
  let len = String.length s in
  let rec go off =
    if off < len then begin
      wait_io fd ~readable:false ~deadline;
      match Unix.write_substring fd s off (len - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          raise (Lost "connection reset during send")
    end
  in
  go 0

(* Send one request body under the connection's framing. *)
let send_body_deadline t ~deadline body =
  send_bytes_deadline t ~deadline
    (if t.binary then Frame.encode body else body ^ "\n")

let read_chunk t ~deadline ~feed =
  let fd = fd_exn t in
  wait_io fd ~readable:true ~deadline;
  match Unix.read fd t.chunk 0 (Bytes.length t.chunk) with
  | 0 -> raise (Lost "connection closed by server")
  | k -> feed t.chunk k
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      raise (Lost "connection reset by server")

(* Receive one response body under the connection's framing. On a
   binary connection a framing violation (bad magic, bad version,
   oversized frame) means the stream can no longer be trusted — same
   treatment as a torn line: [Lost], and the caller rebuilds the
   connection. *)
let recv_body_deadline t ~deadline =
  if t.binary then
    let rec go () =
      match Frame.next t.frames with
      | Ok (Some body) -> body
      | Ok None ->
          read_chunk t ~deadline ~feed:(fun c k -> Frame.feed t.frames c k);
          go ()
      | Error e -> raise (Lost ("corrupted frame: " ^ Frame.error_message e))
    in
    go ()
  else
    let rec go () =
      match Linebuf.next t.lines with
      | Some line -> line
      | None ->
          if Linebuf.partial_length t.lines > Wire.max_line_bytes then
            raise (Lost "reply line exceeds the wire limit")
          else begin
            read_chunk t ~deadline ~feed:(fun c k -> Linebuf.feed t.lines c k);
            go ()
          end
    in
    go ()

(* --- Raw blocking framing (tests, pipelining, loadgen) ------------------ *)

let send_line t body = send_body_deadline t ~deadline:None body

(* Batched pipelined send: every body framed into one buffer, written
   with (usually) a single syscall. This is what makes deep pipelines
   pay off — the per-request cost on the send side drops to a blit. *)
let send_lines t bodies =
  match bodies with
  | [] -> ()
  | [ body ] -> send_line t body
  | _ ->
      let buf = Buffer.create 4096 in
      List.iter
        (fun body ->
          if t.binary then Buffer.add_string buf (Frame.encode body)
          else begin
            Buffer.add_string buf body;
            Buffer.add_char buf '\n'
          end)
        bodies;
      send_bytes_deadline t ~deadline:None (Buffer.contents buf)

let recv_line t =
  match recv_body_deadline t ~deadline:None with
  | body -> Some body
  | exception Lost _ -> None

let call_raw t body =
  send_line t body;
  recv_line t

let recv_line_timeout t ~timeout =
  match
    recv_body_deadline t ~deadline:(Some (Unix.gettimeofday () +. timeout))
  with
  | body -> Some body
  | exception (Timed_out | Lost _) -> None

(* --- Resilient calls --------------------------------------------------- *)

(* One attempt: send, then read bodies until one parses as a response
   carrying our id. Anything else on the stream — garbage bytes, a
   broken envelope, a foreign id — means the connection's framing can
   no longer be trusted, so the attempt dies as [Lost] and the retry
   path rebuilds it from a fresh socket. *)
let attempt_call t ~deadline ~id body =
  send_body_deadline t ~deadline body;
  let reply = recv_body_deadline t ~deadline in
  match Wire.parse_response reply with
  | Error msg -> raise (Lost ("corrupted response: " ^ msg))
  | Ok { Wire.rid; _ } ->
      if rid <> Some id then
        raise
          (Lost
             (Printf.sprintf "response id %s does not match request id %d"
                (match rid with Some i -> string_of_int i | None -> "<none>")
                id))
      else reply

let call_line ?timeout ?(max_attempts = 3) t ~id body =
  let timeout = match timeout with Some _ as s -> s | None -> t.timeout in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
  let time_left () =
    match deadline with None -> true | Some d -> Unix.gettimeofday () < d
  in
  let reconnect_deadline () =
    (* With no per-call deadline a reconnect still gets a bounded
       window, so a vanished server is a typed error, not a hang. *)
    Option.value deadline ~default:(Unix.gettimeofday () +. 1.)
  in
  let rec attempt k =
    match
      if t.fd = None then reconnect t ~deadline:(reconnect_deadline ());
      attempt_call t ~deadline ~id body
    with
    | reply -> Ok reply
    | exception Timed_out ->
        (* The reply may still arrive later; keeping the socket would
           let a stale reply answer the next call. Poisoned — drop it. *)
        Obs.Metrics.incr m_timeouts;
        disconnect t;
        Error (Wire.Timeout, "no reply within the per-call deadline")
    | exception Lost msg when k + 1 < max_attempts && time_left () -> (
        Obs.Metrics.incr m_retries;
        disconnect t;
        (* All wire queries are pure and re-answered byte-identically
           (reply cache), so retrying after a drop is safe even if the
           server already processed the first copy. *)
        match reconnect t ~deadline:(reconnect_deadline ()) with
        | () -> attempt (k + 1)
        | exception _ -> Error (Wire.Connection_lost, msg))
    | exception Lost msg ->
        disconnect t;
        Error (Wire.Connection_lost, msg)
    | exception Unix.Unix_error (e, _, _) ->
        disconnect t;
        Error (Wire.Connection_lost, Unix.error_message e)
  in
  attempt 0

let call ?timeout ?max_attempts t ~id query =
  match
    call_line ?timeout ?max_attempts t ~id
      (Wire.encode_request ~v:t.wire { Wire.id; query })
  with
  | Error e -> Error e
  | Ok reply -> (
      (* [call_line] validated the envelope, so this parse cannot
         fail; re-parsing just extracts the body. *)
      match Wire.parse_response reply with
      | Ok { Wire.body; _ } -> body
      | Error msg -> Error (Wire.Internal, "malformed response: " ^ msg))

let close t = disconnect t

(* --- Multi-endpoint failover ------------------------------------------- *)

let m_failovers = Obs.Metrics.counter ~family:"client" "endpoint_failovers"
let m_redirects = Obs.Metrics.counter ~family:"client" "leader_redirects"

let m_wire_downgrades =
  Obs.Metrics.counter ~family:"client" "wire_renegotiations"

module Multi = struct
  type client = t

  type t = {
    targets : target array;
    wires : int array;  (* negotiated framing, per endpoint *)
    confirmed : bool array;  (* endpoint has answered at wires.(i) *)
    timeout : float option;
    backoff : backoff;
    rng : Prob.Rng.t;
    max_attempts : int;
    mutable pinned : int;
    mutable conn : client option;  (* live connection to targets.(pinned) *)
  }

  let create ?(wire = Wire.protocol_version) ?(backoff = default_backoff)
      ?timeout ?max_attempts targets =
    if targets = [] then invalid_arg "Client.Multi.create: no endpoints";
    if wire < Wire.min_protocol_version || wire > Wire.protocol_version then
      invalid_arg
        (Printf.sprintf "Client.Multi.create: unsupported wire version %d" wire);
    let n = List.length targets in
    {
      targets = Array.of_list targets;
      wires = Array.make n wire;
      confirmed = Array.make n false;
      timeout;
      backoff;
      rng = Prob.Rng.create (backoff.seed + 0x6d75);
      max_attempts = (match max_attempts with Some k when k > 0 -> k | _ -> 6 * n);
      pinned = 0;
      conn = None;
    }

  let endpoints m = Array.length m.targets
  let current m = m.pinned
  let negotiated_wire m i = m.wires.(i)

  let drop m =
    (match m.conn with Some c -> close c | None -> ());
    m.conn <- None

  let pin m i =
    if i <> m.pinned then begin
      drop m;
      m.pinned <- i
    end

  let rotate m =
    Obs.Metrics.incr m_failovers;
    pin m ((m.pinned + 1) mod Array.length m.targets)

  (* Connect to the pinned endpoint at the framing {e that endpoint}
     negotiated — never the previous endpoint's. A mixed deployment
     (some replicas [--wire 2]) would otherwise see a failover from a
     binary replica greet a newline-only replica with frame magic and
     burn the whole retry budget on goodbyes. *)
  let ensure m =
    match m.conn with
    | Some c -> c
    | None ->
        let c =
          connect ~wire:m.wires.(m.pinned) ~backoff:m.backoff ?timeout:m.timeout
            ~retry_for:0.05 m.targets.(m.pinned)
        in
        m.conn <- Some c;
        c

  (* Jittered pause that grows per full rotation: tight the first time
     around the ring (a healthy replica is one hop away), backing off
     when the whole deployment is unreachable or leaderless. *)
  let pause m ~deadline k =
    let b = m.backoff in
    let round = k / Array.length m.targets in
    let base = b.initial *. (b.multiplier ** float_of_int round) in
    let capped = Float.min b.max_sleep base in
    let s = capped *. (1. -. (b.jitter *. Prob.Rng.float m.rng)) in
    let s =
      match deadline with
      | None -> s
      | Some d -> Float.min s (d -. Unix.gettimeofday ())
    in
    if s > 0. then Unix.sleepf s

  let call ?timeout m ~id query =
    let timeout = match timeout with Some _ as s -> s | None -> m.timeout in
    let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
    let time_left () =
      match deadline with None -> true | Some d -> Unix.gettimeofday () < d
    in
    let remaining () =
      Option.map (fun d -> Float.max 0.01 (d -. Unix.gettimeofday ())) deadline
    in
    let rec attempt k last_err =
      if k >= m.max_attempts then Error last_err
      else if not (time_left ()) then
        Error (Wire.Timeout, "failover budget exhausted")
      else begin
        if k > 0 then pause m ~deadline k;
        match ensure m with
        | exception _ ->
            rotate m;
            attempt (k + 1) (Wire.Connection_lost, "endpoint unreachable")
        | c -> (
            let body =
              Wire.encode_request ~v:(wire_version c) { Wire.id; query }
            in
            match call_line ?timeout:(remaining ()) ~max_attempts:1 c ~id body with
            | Error (Wire.Timeout, msg) ->
                (* The budget is spent; the connection is poisoned (a
                   late reply could answer a later call) — both reasons
                   not to fail over. *)
                drop m;
                Error (Wire.Timeout, msg)
            | Error (_, msg) ->
                drop m;
                (* Satellite fix: before failing over, re-validate this
                   endpoint's framing. A transport failure on an
                   endpoint that has never answered at the preferred
                   binary framing is indistinguishable from a
                   [unsupported_version] goodbye (the newline goodbye
                   reads as a corrupted frame), so renegotiate down and
                   retry the {e same} endpoint once. *)
                if (not m.confirmed.(m.pinned)) && m.wires.(m.pinned) >= 3 then begin
                  Obs.Metrics.incr m_wire_downgrades;
                  m.wires.(m.pinned) <- 2
                end
                else rotate m;
                attempt (k + 1) (Wire.Connection_lost, msg)
            | Ok reply -> (
                match Wire.parse_response reply with
                | Error msg ->
                    drop m;
                    rotate m;
                    attempt (k + 1) (Wire.Internal, msg)
                | Ok { Wire.body; rhint; _ } -> (
                    m.confirmed.(m.pinned) <- true;
                    match body with
                    | Ok payload -> Ok payload
                    | Error ((Wire.Not_leader, _) as e) ->
                        Obs.Metrics.incr m_redirects;
                        (match rhint with
                        | Some h
                          when h >= 0
                               && h < Array.length m.targets
                               && h <> m.pinned ->
                            pin m h
                        | _ -> rotate m);
                        attempt (k + 1) e
                    | Error
                        ((( Wire.Overloaded | Wire.Shutting_down
                          | Wire.Deadline_exceeded ),
                          _) as e) ->
                        (* Per-replica pressure: another replica can
                           serve the read (and a write retry is safe —
                           the command id dedups). *)
                        rotate m;
                        attempt (k + 1) e
                    | Error e ->
                        (* Semantic rejection; every replica answers
                           the same. *)
                        Error e)))
      end
    in
    attempt 0 (Wire.Connection_lost, "no endpoint reachable")

  let close m = drop m
end
