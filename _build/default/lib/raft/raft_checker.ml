type report = {
  agreement_ok : bool;
  election_safety_ok : bool;
  log_matching_ok : bool;
  live : bool;
  applied_counts : int array;
  violations : string list;
}

let prefix_compatible a b =
  let rec go = function
    | [], _ | _, [] -> true
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (a, b)

(* Log Matching: if two logs contain an entry with the same index and
   term, they are identical through that index. It suffices to find the
   highest common index with equal terms and require equality of the
   whole prefix up to it. *)
let logs_match (a : Raft_types.entry array) (b : Raft_types.entry array) =
  let common = min (Array.length a) (Array.length b) in
  let anchor = ref (-1) in
  for i = common - 1 downto 0 do
    if !anchor < 0 && a.(i).Raft_types.term = b.(i).Raft_types.term then anchor := i
  done;
  let ok = ref true in
  for i = 0 to !anchor do
    if a.(i) <> b.(i) then ok := false
  done;
  !ok

let check cluster ~expected ~correct =
  let n = Raft_cluster.size cluster in
  let applied = Array.init n (fun i -> Raft_cluster.committed cluster i) in
  let violations = ref [] in
  let agreement_ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (prefix_compatible applied.(i) applied.(j)) then begin
        agreement_ok := false;
        violations :=
          Printf.sprintf "nodes %d and %d applied divergent sequences" i j
          :: !violations
      end
    done
  done;
  (* Election safety: unique leader per term. *)
  let election_safety_ok = ref true in
  let leaders_by_term = Hashtbl.create 16 in
  List.iter
    (fun (e : Dessim.Trace.entry) ->
      if e.tag = "become-leader" then begin
        match Hashtbl.find_opt leaders_by_term e.detail with
        | Some other when other <> e.node ->
            election_safety_ok := false;
            violations :=
              Printf.sprintf "two leaders (%d and %d) in %s" other e.node e.detail
              :: !violations
        | Some _ -> ()
        | None -> Hashtbl.add leaders_by_term e.detail e.node
      end)
    (Dessim.Trace.entries (Raft_cluster.trace cluster));
  (* Log matching across raw logs. *)
  let log_matching_ok = ref true in
  let logs =
    Array.init n (fun i ->
        Array.of_list (Raft_node.log_entries (Raft_cluster.node cluster i)))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (logs_match logs.(i) logs.(j)) then begin
        log_matching_ok := false;
        violations :=
          Printf.sprintf "log matching violated between nodes %d and %d" i j
          :: !violations
      end
    done
  done;
  (* Liveness: every expected command applied at every correct node. *)
  let live = ref true in
  List.iter
    (fun node_id ->
      let got = applied.(node_id) in
      List.iter
        (fun cmd ->
          if not (List.mem cmd got) then begin
            live := false;
            violations :=
              Printf.sprintf "correct node %d never applied command %d" node_id cmd
              :: !violations
          end)
        expected)
    correct;
  {
    agreement_ok = !agreement_ok;
    election_safety_ok = !election_safety_ok;
    log_matching_ok = !log_matching_ok;
    live = !live;
    applied_counts = Array.map List.length applied;
    violations = List.rev !violations;
  }

let safe r = r.agreement_ok && r.election_safety_ok && r.log_matching_ok

let command_latencies cluster ~submissions ~horizon =
  let first_apply = Hashtbl.create 64 in
  List.iter
    (fun (e : Dessim.Trace.entry) ->
      if e.tag = "apply" then begin
        try
          Scanf.sscanf e.detail "index=%d cmd=%d term=%d" (fun _ cmd _ ->
              match Hashtbl.find_opt first_apply cmd with
              | Some t when t <= e.time -> ()
              | Some _ | None -> Hashtbl.replace first_apply cmd e.time)
        with Scanf.Scan_failure _ | End_of_file -> ()
      end)
    (Dessim.Trace.entries (Raft_cluster.trace cluster));
  List.map
    (fun (cmd, submitted) ->
      match Hashtbl.find_opt first_apply cmd with
      | Some t -> t -. submitted
      | None -> horizon -. submitted)
    submissions

let pp_report fmt r =
  Format.fprintf fmt
    "agreement=%b election-safety=%b log-matching=%b live=%b applied=[%s]%s"
    r.agreement_ok r.election_safety_ok r.log_matching_ok r.live
    (String.concat ";" (Array.to_list (Array.map string_of_int r.applied_counts)))
    (match r.violations with
    | [] -> ""
    | v -> "\n  " ^ String.concat "\n  " v)
