lib/prob/bounds.mli:
