(* Heterogeneous cluster: the paper's E5 scenario.

   A 7-node Raft on p=8% machines is 99.88% safe-and-live. Upgrading
   three of the seven to p=1% machines barely moves the protocol-level
   number — because Raft does not know which nodes are reliable, data
   may be persisted only on the flaky ones. Requiring the persistence
   quorum to include a reliable node (a fault-curve-aware placement)
   recovers the durability the upgrade paid for.

   Run with: dune exec examples/heterogeneous_cluster.exe *)

let () =
  let n = 7 in
  let quorum = 4 in

  (* All-flaky baseline. *)
  let flaky = Faultmodel.Fleet.uniform ~n ~p:0.08 () in
  let raft = Probcons.Raft_model.protocol (Probcons.Raft_model.default n) in
  let base = Probcons.Analysis.run raft flaky in
  Format.printf "7 nodes at p=8%%:           safe&live %s@."
    (Prob.Nines.percent_string base.Probcons.Analysis.p_safe_live);

  (* Upgrade three nodes to p=1%. Protocol-level reliability barely
     improves: a majority of flaky nodes can still go down. *)
  let mixed = Faultmodel.Fleet.mixed [ (4, 0.08); (3, 0.01) ] in
  let upgraded = Probcons.Analysis.run raft mixed in
  Format.printf "upgrade 3 nodes to p=1%%:   safe&live %s  (barely moved)@."
    (Prob.Nines.percent_string upgraded.Probcons.Analysis.p_safe_live);

  (* Where did the money go? Durability of a committed entry depends on
     WHERE the persistence quorum landed. *)
  let reliable_ids =
    (* Nodes 4, 5, 6 are the upgraded ones in the mixed fleet. *)
    [ 4; 5; 6 ]
  in
  Format.printf "@.Durability of a committed entry (persistence quorum of %d):@." quorum;
  let show label placement =
    Format.printf "  %-34s %s@." label
      (Prob.Nines.percent_string (Probcons.Durability.durability mixed placement ~size:quorum))
  in
  show "worst case (all-flaky quorum):" Probcons.Durability.Worst_case;
  show "random quorum:" Probcons.Durability.Random;
  show "must include 1 reliable node:"
    (Probcons.Durability.Constrained { reliable = reliable_ids; min_reliable = 1 });
  show "must include 2 reliable nodes:"
    (Probcons.Durability.Constrained { reliable = reliable_ids; min_reliable = 2 });
  show "best case (most reliable nodes):" Probcons.Durability.Best_case;

  (* The same story, quantified as storage-style MTTDL. *)
  Format.printf "@.Storage-style metrics (MTTR = 24h):@.";
  List.iter
    (fun (label, afr) ->
      let spec = Markov.Repair_model.of_afr ~n ~quorum ~afr ~mttr_hours:24. in
      Format.printf
        "  %-12s MTTF %.3g h   MTTDL %.3g h   availability %s@." label
        (Markov.Repair_model.mttf spec)
        (Markov.Repair_model.mttdl spec)
        (Prob.Nines.percent_string (Markov.Repair_model.availability spec)))
    [ ("p=8% fleet", 0.08); ("p=1% fleet", 0.01) ];

  (* Reliability-aware leader election on the mixed fleet: the leader's
     fault probability drops from the fleet average to the minimum. *)
  Format.printf "@.Leader fault probability on the mixed fleet:@.";
  Format.printf "  oblivious election:  %.4f@."
    (Probnative.Leader_reputation.leader_fault_probability mixed ~strategy:`Uniform);
  Format.printf "  reputation-based:    %.4f@."
    (Probnative.Leader_reputation.leader_fault_probability mixed ~strategy:`Reputation)
