(** The replicated state machine behind the Raft apply hook.

    Deterministic and idempotent: applying the same command id twice
    is a recorded no-op ([dedup_skips]), which is what makes safe
    client retry and crash-recovery re-apply (commit index restarts at
    0 after {!Raft_node.restore}) correct without distributed
    coordination. Thread-safe: the pump thread applies, server worker
    lanes read. *)

type t

type entry = {
  scenario : string;  (** Canonical scenario JSON, as put. *)
  nonce : int;
  seq : int;  (** The replicated command's sequence number. *)
}

val create : unit -> t

val apply : t -> seq:int -> Command.op -> id:string -> [ `Applied | `Duplicate ]
(** Apply one committed command. [`Duplicate] means the id was already
    applied and the state was left untouched (the idempotency seam the
    inter-replica chaos test asserts on). [Barrier] ops mutate nothing
    and are never duplicates. *)

val note_missing_payload : t -> unit
(** Record a committed sequence number whose command bytes were absent
    from the payload table — must stay 0 in every healthy run. *)

val seen : t -> string -> bool
(** Has this command id already been applied? *)

val get : t -> string -> entry option
val warm_lookup : t -> string -> string option

type counts = {
  applied : int;  (** Data entries applied (barriers included). *)
  store_size : int;
  warm_size : int;
  dedup_skips : int;
  missing_payloads : int;
  digest : int;  (** Order-sensitive digest of applied command ids. *)
}

val counts : t -> counts
