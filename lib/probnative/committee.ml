type committee = {
  members : int list;
  params : Probcons.Raft_model.params;
  p_safe_live : float;
}

let committee_of ?at fleet members =
  let nodes = Faultmodel.Fleet.nodes fleet in
  let sub =
    Faultmodel.Fleet.of_nodes (List.map (fun u -> nodes.(u)) members)
  in
  let params = Probcons.Raft_model.default (List.length members) in
  let result = Probcons.Analysis.run ?at (Probcons.Raft_model.protocol params) sub in
  { members; params; p_safe_live = result.Probcons.Analysis.p_safe_live }

let reliability_ranked ?at ~target fleet =
  let ranked = Faultmodel.Fleet.most_reliable ?at fleet in
  let n = Faultmodel.Fleet.size fleet in
  let rec go k =
    if k > n then None
    else begin
      let members = List.filteri (fun i _ -> i < k) ranked in
      let c = committee_of ?at fleet members in
      if c.p_safe_live >= target then Some c else go (k + 2)
    end
  in
  go 1

(* Reliability weighted against estimate uncertainty: score
   [(1 - p) / (1 + uncertainty)], best first. With zero uncertainty the
   score order is exactly the fault-probability order, and the
   secondary key keeps even score {e ties} resolved the same way
   [Fleet.most_reliable] resolves them — so the zero-uncertainty case
   reduces to {!reliability_ranked} member for member. *)
let weighted_order ~probs ~scores n =
  List.sort
    (fun a b ->
      match Float.compare scores.(b) scores.(a) with
      | 0 -> (
          match Float.compare probs.(a) probs.(b) with
          | 0 -> Int.compare a b
          | c -> c)
      | c -> c)
    (List.init n Fun.id)

let reliability_weighted ?at ~uncertainty ~target fleet =
  let n = Faultmodel.Fleet.size fleet in
  let probs = Faultmodel.Fleet.fault_probs ?at fleet in
  let scores =
    Array.init n (fun u ->
        let unc = uncertainty u in
        if not (Float.is_finite unc) || unc < 0. then
          invalid_arg "Committee.reliability_weighted: bad uncertainty";
        (1. -. probs.(u)) /. (1. +. unc))
  in
  let ranked = weighted_order ~probs ~scores n in
  let rec go k =
    if k > n then None
    else begin
      let members = List.filteri (fun i _ -> i < k) ranked in
      let c = committee_of ?at fleet members in
      if c.p_safe_live >= target then Some c else go (k + 2)
    end
  in
  go 1

let random_committee ?at rng ~size fleet =
  let n = Faultmodel.Fleet.size fleet in
  if size > n then invalid_arg "Committee.random_committee: size exceeds fleet";
  let members = Prob.Rng.sample_without_replacement rng size n in
  committee_of ?at fleet members

let vrf_committee ?at ~seed ~epoch ~size fleet =
  (* A fresh deterministic stream per (seed, epoch) stands in for the
     VRF output: public, unpredictable before the epoch, identical at
     every replica. *)
  let stream = Prob.Rng.create ((seed * 2_147_483_647) + epoch) in
  random_committee ?at stream ~size fleet

let diversified_ranked ?at ~target ~domains ~max_per_domain fleet =
  if max_per_domain < 1 then invalid_arg "Committee.diversified_ranked: bad cap";
  let domain_of u = List.find_opt (fun members -> List.mem u members) domains in
  let ranked = Faultmodel.Fleet.most_reliable ?at fleet in
  (* Greedy selection in reliability order, skipping nodes whose domain
     is already at the cap; grow odd sizes until the target is met. *)
  let admissible k =
    let counts = Hashtbl.create 8 in
    let rec pick chosen = function
      | [] -> List.rev chosen
      | u :: rest ->
          if List.length chosen >= k then List.rev chosen
          else begin
            let key = domain_of u in
            let used = Option.value (Hashtbl.find_opt counts key) ~default:0 in
            if key <> None && used >= max_per_domain then pick chosen rest
            else begin
              Hashtbl.replace counts key (used + 1);
              pick (u :: chosen) rest
            end
          end
    in
    let members = pick [] ranked in
    if List.length members = k then Some members else None
  in
  let n = Faultmodel.Fleet.size fleet in
  let rec go k =
    if k > n then None
    else begin
      match admissible k with
      | None -> None (* caps exhausted: larger committees are impossible too *)
      | Some members ->
          let c = committee_of ?at fleet members in
          if c.p_safe_live >= target then Some c else go (k + 2)
    end
  in
  go 1

let random_committee_size ?at ?(trials = 50) rng ~target fleet =
  let n = Faultmodel.Fleet.size fleet in
  let rec go k =
    if k > n then None
    else begin
      let total = ref 0. in
      for _ = 1 to trials do
        let c = random_committee ?at rng ~size:k fleet in
        total := !total +. c.p_safe_live
      done;
      if !total /. float_of_int trials >= target then Some k else go (k + 2)
    end
  in
  go 1
