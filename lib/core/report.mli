(** Plain-text table rendering for the analysis harness.

    The bench and CLI print the paper's tables; this keeps the
    alignment logic in one place. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val render : t -> string
(** Monospace-aligned table with a header separator line. *)

val to_csv : t -> string
(** RFC-4180-ish CSV: header row then data rows; cells containing
    commas, quotes or newlines are quoted with doubled quotes. *)

val print : ?title:string -> t -> unit
(** Render to stdout, with an optional underlined title. *)

val cell_percent : float -> string
(** Probability formatted the way the paper's tables print it. *)

val cell_float : ?decimals:int -> float -> string

val metrics_table : Obs.Metrics.snapshot -> t
(** Pretty-printable summary of a metrics snapshot: one row per
    sample; histograms show count and p50/p90/p99/max columns. *)
