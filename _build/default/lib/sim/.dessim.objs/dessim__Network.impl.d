lib/sim/network.ml: Array Engine List Prob
