type t = { id : int; label : string; curve : Fault_curve.t; byz_fraction : float }

let make ?label ?(byz_fraction = 0.) ~id curve =
  if byz_fraction < 0. || byz_fraction > 1. then
    invalid_arg "Node.make: byz_fraction must be in [0, 1]";
  let label = match label with Some l -> l | None -> Printf.sprintf "node-%d" id in
  { id; label; curve; byz_fraction }

let default_horizon = 8766. (* one year, in hours *)

let fault_probability ?(at = default_horizon) t = Fault_curve.eval t.curve at
let byz_probability ?at t = fault_probability ?at t *. t.byz_fraction
let crash_probability ?at t = fault_probability ?at t *. (1. -. t.byz_fraction)

let pp fmt t =
  Format.fprintf fmt "%s: %a (byz %.4f)" t.label Fault_curve.pp t.curve t.byz_fraction
