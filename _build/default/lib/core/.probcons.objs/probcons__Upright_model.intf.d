lib/core/upright_model.mli: Analysis Faultmodel Protocol
