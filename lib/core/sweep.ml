let pct = Prob.Nines.percent_string

let m_cells = Obs.Metrics.counter ~family:"sweep" "cells"
let m_cell_seconds = Obs.Metrics.histogram ~family:"sweep" "cell_seconds"

(* Every sweep row/cell funnels through this, so cells/sec is just
   [cells / Σ cell_seconds] from one snapshot. *)
let timed_cell f =
  Obs.Metrics.incr m_cells;
  Obs.Span.time m_cell_seconds f

(* Grid cells are independent Analysis.run instances: evaluate the
   flattened (row, col) cell list on the domain pool and reassemble the
   table in order. Cells force ~domains:1 on their inner analysis — the
   parallelism budget is spent across cells, and Pool makes nested
   calls sequential anyway. *)
let grid_cells ?domains ~rows ~cols cell =
  let n_rows = List.length rows and n_cols = List.length cols in
  let rows_a = Array.of_list rows and cols_a = Array.of_list cols in
  let flat =
    Parallel.Pool.map ?domains (n_rows * n_cols) (fun i ->
        timed_cell (fun () -> cell rows_a.(i / n_cols) cols_a.(i mod n_cols)))
  in
  List.init n_rows (fun r ->
      List.init n_cols (fun c -> flat.((r * n_cols) + c)))

let raft_grid ?domains ~ns ~ps () =
  let header = "N" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  let cells =
    grid_cells ?domains ~rows:ns ~cols:ps (fun n p ->
        pct (Raft_model.safe_and_live_uniform ~n ~p))
  in
  List.iter2
    (fun n row -> Report.add_row t (string_of_int n :: row))
    ns cells;
  t

let pbft_grid ?domains ~ns ~ps () =
  let header = "N" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  let cells =
    grid_cells ?domains ~rows:ns ~cols:ps (fun n p ->
        let proto = Pbft_model.protocol (Pbft_model.default n) in
        let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p () in
        pct (Analysis.run ~domains:1 proto fleet).Analysis.p_safe_live)
  in
  List.iter2
    (fun n row -> Report.add_row t (string_of_int n :: row))
    ns cells;
  t

let pbft_safety_liveness_grid ?domains ~ns ~p () =
  let t = Report.create ~header:[ "N"; "safe"; "live"; "safe&live"; "safe-or-accountable" ] in
  let rows =
    Parallel.Pool.map ?domains (List.length ns) (fun i ->
        timed_cell @@ fun () ->
        let n = List.nth ns i in
        let params = Pbft_model.default n in
        let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p () in
        let r = Analysis.run ~domains:1 (Pbft_model.protocol params) fleet in
        let forensic =
          Analysis.run ~domains:1 (Pbft_model.safe_or_accountable params) fleet
        in
        [
          string_of_int n;
          pct r.Analysis.p_safe;
          pct r.Analysis.p_live;
          pct r.Analysis.p_safe_live;
          pct forensic.Analysis.p_safe;
        ])
  in
  Array.iter (Report.add_row t) rows;
  t

let timeline ?domains fleet ~times =
  let n = Faultmodel.Fleet.size fleet in
  let proto = Raft_model.protocol (Raft_model.default n) in
  let t = Report.create ~header:[ "mission time (h)"; "safe&live"; "nines" ] in
  let rows =
    Parallel.Pool.map ?domains (List.length times) (fun i ->
        timed_cell @@ fun () ->
        let at = List.nth times i in
        let r = Analysis.run ~at ~domains:1 proto fleet in
        [
          Printf.sprintf "%.0f" at;
          pct r.Analysis.p_safe_live;
          Printf.sprintf "%.2f" (Prob.Nines.of_prob r.Analysis.p_safe_live);
        ])
  in
  Array.iter (Report.add_row t) rows;
  t

let min_cluster_frontier ?domains ~targets ~ps () =
  let header = "target" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  let cells =
    grid_cells ?domains ~rows:targets ~cols:ps (fun target p ->
        match Equivalence.min_raft_cluster ~target ~p () with
        | Some e -> string_of_int e.Equivalence.n
        | None -> "-")
  in
  List.iter2
    (fun target row -> Report.add_row t (pct target :: row))
    targets cells;
  t
