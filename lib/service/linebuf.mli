(** Incremental newline framing over a byte stream.

    Both ends of the wire assemble newline-delimited lines from
    arbitrarily fragmented reads. Doing that with string concatenation
    ([pending ^ chunk]) is O(n²) across fragments — under a chaos proxy
    that splits writes into single bytes, a 1 KiB line costs a thousand
    reallocations of the whole prefix. This module is the shared
    replacement: completed lines are cut {e while scanning the incoming
    chunk}, so total work is linear in bytes received.

    Not thread-safe; each connection owns one buffer. *)

type t

val create : unit -> t

val feed : t -> Bytes.t -> int -> unit
(** [feed t chunk len] consumes [chunk.[0 .. len-1]]. Completed lines
    (without their ['\n']) queue up for {!next}; a trailing fragment
    waits for the next feed. Amortized O(len). *)

val next : t -> string option
(** Oldest completed line not yet returned, in arrival order. *)

val partial_length : t -> int
(** Bytes buffered past the last newline — the length of the line
    still being assembled. Callers enforce [Wire.max_line_bytes]
    against this to bound memory per connection. *)

val reset : t -> unit
(** Drop all buffered lines and the partial fragment. *)
