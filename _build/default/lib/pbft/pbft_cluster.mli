(** A simulated PBFT deployment: replicas, network, client, faults. *)

type t

val create :
  ?seed:int ->
  ?latency:Dessim.Network.latency ->
  ?drop_probability:float ->
  ?q_eq:int ->
  ?q_per:int ->
  ?q_vc:int ->
  ?q_vc_t:int ->
  ?request_timeout:float ->
  n:int ->
  unit ->
  t

val engine : t -> Dessim.Engine.t
val trace : t -> Dessim.Trace.t
val node : t -> int -> Pbft_node.t
val size : t -> int

val submit_workload : t -> commands:int list -> start:float -> interval:float -> unit
(** Client broadcast: each command is sent to every replica (the PBFT
    retransmission case, which also lets backups start their
    view-change timers). *)

val inject : t -> Dessim.Fault_injector.plan -> unit
(** Supports both crash and Byzantine faults. *)

val partition_at : t -> time:float -> int list -> int list -> unit
(** Schedule a network partition between the two groups. *)

val heal_at : t -> time:float -> unit

val run : t -> until:float -> unit

val executed : t -> int -> int list

val message_stats : t -> int * int
(** [(sent, delivered)] network message counters — the communication
    cost the paper's related work (probabilistic quorums, committee
    sampling) trades against. *)
