(* Preemptive reconfiguration: replace nodes BEFORE they fail.

   The paper: "predictive models for node reliability enable preemptive
   reconfiguration, mitigating potential failures from jeopardizing
   safety or liveness". This example runs the whole loop on the
   simulator: wear-out fault curves predict rising risk, the policy
   swaps the riskiest member for a fresh spare through Raft's
   single-server membership changes, and the managed cluster outlives
   an identical unmanaged one.

   Run with: dune exec examples/preemptive_reconfig.exe *)

let () =
  (* Universe: three aging members (Weibull wear-out well inside the
     mission) and four fresh spares. One simulated ms = one hour. *)
  let aging = Faultmodel.Fault_curve.Weibull { shape = 4.; scale = 15_000. } in
  let fresh = Faultmodel.Fault_curve.Weibull { shape = 4.; scale = 80_000. } in
  let universe =
    Faultmodel.Fleet.of_nodes
      (List.init 7 (fun id ->
           Faultmodel.Node.make ~id
             ~label:(if id < 3 then Printf.sprintf "aging-%d" id
                     else Printf.sprintf "spare-%d" id)
             (if id < 3 then aging else fresh)))
  in

  (* The analytic view first: how does the 3-member cluster's
     next-1000h liveness decay as the members age? *)
  Format.printf "Window liveness of the unmanaged 3-member cluster, by age:@.";
  let members_fleet =
    Faultmodel.Fleet.of_nodes (List.init 3 (fun id -> Faultmodel.Node.make ~id aging))
  in
  List.iter
    (fun t ->
      Format.printf "  t = %6.0f h: next-window liveness %s@." t
        (Prob.Nines.percent_string
           (Probnative.Preemptive_reconfig.window_liveness members_fleet ~quorum:2
              ~start:t ~duration:1000.)))
    [ 0.; 5_000.; 10_000.; 12_000.; 14_000. ];

  (* Now execute: managed vs unmanaged, same sampled crash times. *)
  Format.printf "@.Executing 10 missions (30,000 h), same fault schedules per seed:@.";
  let managed_ok = ref 0 and unmanaged_ok = ref 0 and total_swaps = ref 0 in
  for seed = 1 to 10 do
    let managed =
      Probnative.Reconfig_executor.run ~seed ~universe ~initial_members:[ 0; 1; 2 ]
        ~target_live:0.999 ~review_interval:1000. ~horizon:30_000. ~commands:20 ()
    in
    let unmanaged =
      Probnative.Reconfig_executor.run_unmanaged ~seed ~universe
        ~initial_members:[ 0; 1; 2 ] ~horizon:30_000. ~commands:20 ()
    in
    if managed.Probnative.Reconfig_executor.managed_live then incr managed_ok;
    if unmanaged.Probnative.Reconfig_executor.managed_live then incr unmanaged_ok;
    total_swaps := !total_swaps + managed.Probnative.Reconfig_executor.swaps_completed;
    Format.printf "  seed %2d: managed %s (%d swaps, %d/20 cmds) | unmanaged %s@." seed
      (if managed.Probnative.Reconfig_executor.managed_live then "LIVE" else "dead")
      managed.Probnative.Reconfig_executor.swaps_completed
      managed.Probnative.Reconfig_executor.commands_committed
      (if unmanaged.Probnative.Reconfig_executor.managed_live then "LIVE" else "dead")
  done;
  Format.printf "@.managed: %d/10 missions live (%.1f swaps each); unmanaged: %d/10@."
    !managed_ok
    (float_of_int !total_swaps /. 10.)
    !unmanaged_ok
