lib/faultmodel/node.ml: Fault_curve Format Printf
