(** The [probcons-wire/3] binary framing codec.

    A frame is a fixed 6-byte header followed by the payload bytes:

    {v
      offset 0   magic byte 0xFB   (never a valid first byte of JSON
                                    or UTF-8 text, so a server can
                                    distinguish a wire/3 connection
                                    from a newline-JSON one on the
                                    first byte it reads)
      offset 1   version byte      (0x03 for wire/3)
      offset 2   u32 payload length, big-endian
      offset 6   payload           (the canonical JSON body — exactly
                                    the bytes a wire/2 line carries,
                                    minus the trailing newline)
    v}

    The payload stays the canonical JSON request/response body, so the
    reply cache, [Registry.analyze_json] and the byte-identity
    guarantee are untouched by the framing: the same query returns the
    same payload bytes whether it arrives as a line or as a frame.

    Decoding is total and incremental: bytes are fed in arbitrary
    splits (the chaos proxy's partial writes land here), the header is
    validated as soon as its 6 bytes are available — a bad magic, bad
    version, zero-length or oversized frame is a typed {!error} before
    any payload arrives — and a decoder that has errored stays errored:
    framing corruption is unrecoverable by design, the connection must
    be torn down. *)

val magic : char
(** [0xFB]. *)

val version : int
(** [3]. *)

val header_bytes : int
(** [6]. *)

val max_payload_bytes : int
(** Largest accepted payload — {!Wire.max_line_bytes}, so the two
    framings bound requests identically. *)

type error =
  | Bad_magic of int  (** First header byte, as a char code. *)
  | Bad_version of int
  | Zero_length  (** Empty frames are invalid: no message is empty. *)
  | Oversized of int  (** Declared payload length beyond the bound. *)

val error_message : error -> string

val encode : string -> string
(** [encode payload] is the full frame, header included. Raises
    [Invalid_argument] on an empty or oversized payload. *)

val header : payload_bytes:int -> string
(** Just the 6 header bytes for a payload of that length — lets a
    writer emit the header and splice the payload from the reply cache
    without concatenating them. Raises [Invalid_argument] outside
    [1 .. max_payload_bytes]. *)

type decoder

val create : unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d chunk len] consumes [chunk[0..len-1]]. Complete frames
    queue up for {!next}; a header violation latches the decoder into
    its error state (subsequent feeds are ignored). *)

val next : decoder -> (string option, error) result
(** Pop the next complete payload. [Ok None] means more bytes are
    needed. Queued frames decoded before a trailing corruption are
    still delivered first; then the latched error. *)

val buffered : decoder -> int
(** Bytes held for an incomplete frame — the backpressure bound a
    reader can check. *)

val reset : decoder -> unit
(** Drop buffered bytes, queued frames and any latched error. *)
