(** Incremental-update vs full-recompute micro-benchmark.

    The headline numbers behind BENCH_fleet.json: at each fleet size,
    time a window of sustained {!Prob.Incremental.update} calls (any
    drift-triggered refreshes that fire inside the window are included
    and counted) against from-scratch {!Prob.Poisson_binomial.pmf}
    recomputes of the same distribution. Probabilities are drawn in
    the realistic fleet band [0.001, 0.05]. Deterministic given the
    seed. *)

type row = {
  n : int;
  kernel : string;  (** ["incremental-update"] or ["full-recompute"]. *)
  ops : int;  (** Timed operations in the window. *)
  seconds : float;
  ns_per_op : float;
  ops_per_sec : float;
  refreshes : int;  (** Full-DP refreshes inside an incremental window. *)
}

val run : ?seed:int -> sizes:int list -> unit -> row list
(** Two rows (incremental, recompute) per size, in input order. *)

val ops_for : int -> int
(** The sustained-update window length used at fleet size [n]. *)

val to_json : seed:int -> row list -> Obs.Json.t
(** The [probcons-fleet-bench/1] artifact. *)

val row_to_json : row -> Obs.Json.t
