lib/prob/nines.mli: Format
