examples/spot_fleet.ml: Costmodel Format List Prob
