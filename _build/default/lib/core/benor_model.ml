type params = { n : int; f : int }

let make ~n ~f =
  if n <= 0 then invalid_arg "Benor_model.make: n must be positive";
  if f < 0 || 2 * f >= n then invalid_arg "Benor_model.make: requires 2f < n";
  { n; f }

let default n = make ~n ~f:((n - 1) / 2)

let protocol { n; f } =
  let safe = Protocol.count_predicate ~n (fun ~byz ~crashed:_ -> byz = 0) in
  let live =
    Protocol.count_predicate ~n (fun ~byz ~crashed -> byz = 0 && crashed <= f)
  in
  { Protocol.name = Printf.sprintf "ben-or(n=%d,f=%d)" n f; n; safe; live }
