lib/prob/distribution.mli: Rng
