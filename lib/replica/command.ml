type op =
  | Put_scenario of {
      name : string;
      scenario : Probcons.Scenario.t;
      nonce : int;
    }
  | Warm of { key : string; payload : string }
  | Barrier

let to_json = function
  | Put_scenario { name; scenario; nonce } ->
      Obs.Json.Obj
        (("op", Obs.Json.String "put")
        :: ("name", Obs.Json.String name)
        :: ("scenario", Probcons.Scenario.to_json scenario)
        :: (if nonce = 0 then [] else [ ("nonce", Obs.Json.Int nonce) ]))
  | Warm { key; payload } ->
      Obs.Json.Obj
        [
          ("op", Obs.Json.String "warm");
          ("key", Obs.Json.String key);
          ("payload", Obs.Json.String payload);
        ]
  | Barrier -> Obs.Json.Obj [ ("op", Obs.Json.String "barrier") ]

let to_string op = Obs.Json.to_string (to_json op)
let id = to_string

let ( let* ) = Result.bind

let string_of j name =
  match Obs.Json.member name j with
  | Some (Obs.Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "command: missing string field %S" name)

let valid_name name =
  let n = String.length name in
  n >= 1
  && n <= Service.Wire.max_store_name_bytes
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       name

let of_json j =
  let* kind = string_of j "op" in
  match kind with
  | "put" ->
      let* name = string_of j "name" in
      if not (valid_name name) then Error "command: invalid store name"
      else
        let* scenario =
          match Obs.Json.member "scenario" j with
          | Some sj -> Probcons.Scenario.of_json sj
          | None -> Error "command: put carries no scenario"
        in
        let nonce =
          match Obs.Json.member "nonce" j with
          | Some (Obs.Json.Int i) when i >= 0 -> i
          | _ -> 0
        in
        Ok (Put_scenario { name; scenario; nonce })
  | "warm" ->
      let* key = string_of j "key" in
      let* payload = string_of j "payload" in
      Ok (Warm { key; payload })
  | "barrier" -> Ok Barrier
  | k -> Error (Printf.sprintf "command: unknown op %S" k)

let of_string s =
  match Obs.Json.of_string s with
  | Error msg -> Error ("command: " ^ msg)
  | Ok j -> of_json j
