type protocol = Raft | Pbft | Benor | Rabia

type fault_kind =
  | Crash
  | Crash_restart of float
  | Byzantine
  | Process of { fail_rate : float; recover_rate : float }

type fault = { node : int; kind : fault_kind; at : float }

type t = {
  protocol : protocol;
  n : int;
  cluster_seed : int;
  drop_probability : float;
  faults : fault list;
  ops : int list;
  horizon : float;
}

let protocol_name = function
  | Raft -> "raft"
  | Pbft -> "pbft"
  | Benor -> "benor"
  | Rabia -> "rabia"

let protocol_of_name = function
  | "raft" -> Some Raft
  | "pbft" -> Some Pbft
  | "benor" -> Some Benor
  | "rabia" -> Some Rabia
  | _ -> None

let system_name p = "sim-" ^ protocol_name p

(* Bounds shared by the generator and the decoder: a hand-edited
   artifact gets the same sanity envelope as a generated case. *)
let max_n = 16
let max_ops = 64
let max_time = 1e7

(* --- Execution --------------------------------------------------------- *)

(* A process fault's actual fail/recover schedule: sampled from the
   node's own [Rng.of_pair (cluster_seed, node)] stream over the run's
   remaining horizon, shifted to start at the fault's [at]. Purely a
   function of the case, so the shrinker and the replayer see the same
   schedule the run executed. *)
let process_downtime t f ~fail_rate ~recover_rate =
  let rng = Prob.Rng.of_pair t.cluster_seed f.node in
  let horizon = Float.max 0. (t.horizon -. f.at) in
  List.map
    (fun (fail, back) -> (fail +. f.at, Option.map (( +. ) f.at) back))
    (Faultmodel.Failure_process.sample_downtime rng
       (Faultmodel.Failure_process.Markov { fail_rate; recover_rate })
       ~horizon)

let injector_plan t =
  List.concat_map
    (fun f ->
      match f.kind with
      | Crash -> [ (f.node, Dessim.Fault_injector.Crash_at f.at) ]
      | Crash_restart back_at ->
          [ (f.node, Dessim.Fault_injector.Crash_restart { at = f.at; back_at }) ]
      | Byzantine -> [ (f.node, Dessim.Fault_injector.Byzantine_from f.at) ]
      | Process { fail_rate; recover_rate } ->
          Dessim.Fault_injector.of_downtime f.node
            (process_downtime t f ~fail_rate ~recover_rate))
    t.faults

let faulted_nodes faults = List.map (fun f -> f.node) faults

(* Nodes with no fault at all: the set the liveness checkers demand
   progress from, and (with the honest set for PBFT) the agreement
   baseline. *)
let correct_nodes t =
  let faulted = faulted_nodes t.faults in
  List.filter (fun i -> not (List.mem i faulted)) (List.init t.n Fun.id)

(* A process-faulted node whose sampled schedule closes every outage by
   the run's midpoint is back for the whole second half — long enough
   for re-election and catch-up — so it counts toward the liveness
   majority. This is what makes recovery-dependent liveness assertable:
   dynamic faults can keep a cluster live that a static gate (which
   writes every faulted node off forever) would excuse. *)
let recovered_nodes t =
  List.filter_map
    (fun f ->
      match f.kind with
      | Process { fail_rate; recover_rate } ->
          let schedule = process_downtime t f ~fail_rate ~recover_rate in
          let back_by_midpoint = function
            | _, Some back -> back <= t.horizon /. 2.
            | _, None -> false
          in
          if List.for_all back_by_midpoint schedule then Some f.node else None
      | _ -> None)
    t.faults

let fail invariant detail = Harness.Fail { invariant; detail }

let check_violations pairs =
  match List.find_opt (fun (_, ok, _) -> not ok) pairs with
  | None -> Harness.Pass
  | Some (invariant, _, detail) -> fail invariant (detail ())

let run t =
  let correct = correct_nodes t in
  match t.protocol with
  | Raft ->
      let cluster =
        Raft_sim.Raft_cluster.create ~seed:t.cluster_seed
          ~drop_probability:t.drop_probability ~n:t.n ()
      in
      Raft_sim.Raft_cluster.inject cluster (injector_plan t);
      Raft_sim.Raft_cluster.submit_workload cluster ~commands:t.ops ~start:500.
        ~interval:100.;
      Raft_sim.Raft_cluster.run cluster ~until:t.horizon;
      (* Liveness is a guarantee while a majority never fails — or, with
         process faults, recovers for good by the midpoint. Recovered
         nodes join the set the checker demands progress from: they had
         the whole second half to re-elect and catch up. *)
      let live_set =
        List.sort_uniq compare (correct @ recovered_nodes t)
      in
      let r =
        Raft_sim.Raft_checker.check cluster ~expected:t.ops ~correct:live_set
      in
      let detail () = String.concat "; " r.Raft_sim.Raft_checker.violations in
      let live_expected = List.length live_set >= (t.n / 2) + 1 in
      check_violations
        [
          ("agreement", r.Raft_sim.Raft_checker.agreement_ok, detail);
          ("election_safety", r.Raft_sim.Raft_checker.election_safety_ok, detail);
          ("log_matching", r.Raft_sim.Raft_checker.log_matching_ok, detail);
          ( "liveness",
            (not live_expected) || r.Raft_sim.Raft_checker.live,
            detail );
        ]
  | Pbft ->
      let cluster =
        Pbft_sim.Pbft_cluster.create ~seed:t.cluster_seed
          ~drop_probability:t.drop_probability ~n:t.n ()
      in
      Pbft_sim.Pbft_cluster.inject cluster (injector_plan t);
      Pbft_sim.Pbft_cluster.submit_workload cluster ~commands:t.ops ~start:500.
        ~interval:100.;
      Pbft_sim.Pbft_cluster.run cluster ~until:t.horizon;
      let byz =
        List.filter_map
          (fun f -> match f.kind with Byzantine -> Some f.node | _ -> None)
          t.faults
      in
      let honest =
        List.filter (fun i -> not (List.mem i byz)) (List.init t.n Fun.id)
      in
      let r =
        Pbft_sim.Pbft_checker.check cluster ~expected:t.ops ~correct ~honest
      in
      let detail () = String.concat "; " r.Pbft_sim.Pbft_checker.violations in
      let f_max = (t.n - 1) / 3 in
      let live_expected = List.length t.faults <= f_max in
      check_violations
        [
          ("agreement", r.Pbft_sim.Pbft_checker.agreement_ok, detail);
          ("liveness", (not live_expected) || r.Pbft_sim.Pbft_checker.live, detail);
        ]
  | Benor ->
      let cluster =
        Benor_sim.Benor_cluster.create ~seed:t.cluster_seed
          ~drop_probability:t.drop_probability ~common_coin:t.cluster_seed
          ~initial_values:t.ops ()
      in
      Benor_sim.Benor_cluster.inject cluster (injector_plan t);
      Benor_sim.Benor_cluster.run cluster ~until:t.horizon;
      let r = Benor_sim.Benor_cluster.check cluster ~correct in
      let detail () =
        String.concat ", "
          (List.map
             (fun (node, d) ->
               Printf.sprintf "node %d: %s" node
                 (match d with Some v -> string_of_int v | None -> "undecided"))
             r.Benor_sim.Benor_cluster.decisions)
      in
      let tolerated = List.length t.faults <= (t.n - 1) / 2 in
      check_violations
        [
          ("agreement", r.Benor_sim.Benor_cluster.agreement_ok, detail);
          ("validity", r.Benor_sim.Benor_cluster.validity_ok, detail);
          ( "termination",
            (not tolerated) || r.Benor_sim.Benor_cluster.all_correct_decided,
            detail );
        ]
  | Rabia ->
      let cluster =
        Rabia_sim.Rabia_cluster.create ~seed:t.cluster_seed
          ~drop_probability:t.drop_probability ~n:t.n ()
      in
      Rabia_sim.Rabia_cluster.inject cluster (injector_plan t);
      Rabia_sim.Rabia_cluster.submit_workload cluster ~commands:t.ops ~start:500.
        ~interval:100.;
      Rabia_sim.Rabia_cluster.run cluster ~until:t.horizon;
      let live_set = List.sort_uniq compare (correct @ recovered_nodes t) in
      let r =
        Rabia_sim.Rabia_cluster.check cluster ~expected:t.ops ~correct:live_set
      in
      let detail () =
        Printf.sprintf "committed counts: %s; %d null slots"
          (String.concat ","
             (Array.to_list
                (Array.map string_of_int r.Rabia_sim.Rabia_cluster.committed_counts)))
          r.Rabia_sim.Rabia_cluster.null_slots
      in
      let live_expected = List.length live_set >= (t.n / 2) + 1 in
      check_violations
        [
          ("agreement", r.Rabia_sim.Rabia_cluster.agreement_ok, detail);
          ("liveness", (not live_expected) || r.Rabia_sim.Rabia_cluster.live, detail);
        ]

(* --- Generation -------------------------------------------------------- *)

let generate protocol rng =
  let n =
    match protocol with
    | Pbft -> 4 + Prob.Rng.int rng 4 (* 4..7: quorum defaults need n >= 4 *)
    | _ -> 3 + Prob.Rng.int rng 5 (* 3..7 *)
  in
  let f_max = match protocol with Pbft -> (n - 1) / 3 | _ -> (n - 1) / 2 in
  let fault_count = Prob.Rng.int rng (f_max + 1) in
  let nodes = Prob.Rng.sample_without_replacement rng fault_count n in
  let faults =
    List.map
      (fun node ->
        let at = Prob.Rng.float rng *. 3000. in
        let kind =
          match protocol with
          | Pbft ->
              (* The BFT system draws Byzantine conversions too. *)
              if Prob.Rng.bool rng 0.5 then Byzantine else Crash
          | Benor ->
              if Prob.Rng.bool rng 0.3 then
                Crash_restart (at +. 5000. +. (Prob.Rng.float rng *. 10_000.))
              else Crash
          | Raft | Rabia ->
              (* Crash-fault systems also draw process-driven fail/recover
                 schedules: short mean time to failure, shorter mean time
                 to recovery, so most schedules cycle within the run. *)
              let roll = Prob.Rng.float rng in
              if roll < 0.3 then
                Crash_restart (at +. 5000. +. (Prob.Rng.float rng *. 10_000.))
              else if roll < 0.55 then
                Process
                  {
                    fail_rate = 1. /. (3000. +. (Prob.Rng.float rng *. 9000.));
                    recover_rate = 1. /. (1500. +. (Prob.Rng.float rng *. 4500.));
                  }
              else Crash
        in
        { node; kind; at })
      nodes
  in
  let drop_probability =
    if Prob.Rng.bool rng 0.3 then Prob.Rng.float rng *. 0.02 else 0.
  in
  let ops =
    match protocol with
    | Benor -> List.init n (fun _ -> Prob.Rng.int rng 2)
    | _ -> List.init (1 + Prob.Rng.int rng 12) (fun i -> 1000 + i)
  in
  let horizon = match protocol with Benor -> 1e7 | _ -> 60_000. in
  {
    protocol;
    n;
    cluster_seed = Prob.Rng.int rng 1_000_000_000;
    drop_probability;
    faults;
    ops;
    horizon;
  }

(* --- Size and shrinking ------------------------------------------------- *)

let size t =
  let op_units =
    (* Ben-Or's ops are the fixed per-node inputs, not a trace. *)
    match t.protocol with Benor -> 0 | _ -> List.length t.ops
  in
  {
    Harness.units = List.length t.faults + op_units;
    weight =
      (t.drop_probability *. 100.)
      +. List.fold_left (fun acc f -> acc +. (f.at /. 1e6)) 0. t.faults;
  }

let drop_nth lst n = List.filteri (fun i _ -> i <> n) lst

let candidates t =
  let with_faults faults = { t with faults } in
  let with_ops ops = { t with ops } in
  let fault_drops =
    List.init (List.length t.faults) (fun i -> with_faults (drop_nth t.faults i))
  in
  let op_drops =
    match t.protocol with
    | Benor -> []
    | _ ->
        let len = List.length t.ops in
        let halves =
          if len >= 2 then [ with_ops (List.filteri (fun i _ -> i < len / 2) t.ops) ]
          else []
        in
        let singles =
          if len >= 1 && len <= 8 then
            List.init len (fun i -> with_ops (drop_nth t.ops i))
          else if len >= 2 then [ with_ops (drop_nth t.ops (len - 1)) ]
          else []
        in
        halves @ singles
    in
  let weight_cuts =
    (if t.drop_probability > 0. then [ { t with drop_probability = 0. } ] else [])
    @
    if List.exists (fun f -> f.at > 0.) t.faults then
      [
        {
          t with
          faults =
            List.map
              (fun f ->
                let kind =
                  match f.kind with
                  | Crash_restart back_at -> Crash_restart (back_at -. f.at)
                  | k -> k
                in
                { f with at = 0.; kind })
              t.faults;
        };
      ]
    else []
  in
  (* Structure first (halving before single drops), knobs last. *)
  (match t.protocol with
  | Benor -> fault_drops
  | _ ->
      (match op_drops with h :: _ -> [ h ] | [] -> [])
      @ fault_drops
      @ (match op_drops with _ :: rest -> rest | [] -> []))
  @ weight_cuts

(* --- JSON codec --------------------------------------------------------- *)

let kind_fields = function
  | Crash -> [ ("kind", Obs.Json.String "crash") ]
  | Crash_restart back_at ->
      [ ("kind", Obs.Json.String "crash_restart");
        ("back_at", Obs.Json.number back_at) ]
  | Byzantine -> [ ("kind", Obs.Json.String "byzantine") ]
  | Process { fail_rate; recover_rate } ->
      [ ("kind", Obs.Json.String "process");
        ("fail_rate", Obs.Json.number fail_rate);
        ("recover_rate", Obs.Json.number recover_rate) ]

let encode t =
  {
    Repro.scenario =
      Obs.Json.Obj
        [
          ("protocol", Obs.Json.String (protocol_name t.protocol));
          ("n", Obs.Json.Int t.n);
          ("cluster_seed", Obs.Json.Int t.cluster_seed);
          ("drop_probability", Obs.Json.number t.drop_probability);
          ("horizon", Obs.Json.number t.horizon);
        ];
    plan =
      Obs.Json.Obj
        [
          ( "faults",
            Obs.Json.List
              (List.map
                 (fun f ->
                   Obs.Json.Obj
                     ([ ("node", Obs.Json.Int f.node) ]
                     @ kind_fields f.kind
                     @ [ ("at", Obs.Json.number f.at) ]))
                 t.faults) );
        ];
    ops = Obs.Json.List (List.map (fun c -> Obs.Json.Int c) t.ops);
  }

let decode { Repro.scenario; plan; ops } =
  let ( let* ) = Result.bind in
  let int_of name doc =
    match Obs.Json.member name doc with
    | Some (Obs.Json.Int i) -> Ok i
    | _ -> Error ("missing integer " ^ name)
  in
  let finite_of name doc =
    match Option.bind (Obs.Json.member name doc) Obs.Json.to_float with
    | Some v when Float.is_finite v && v >= 0. -> Ok v
    | Some _ -> Error (name ^ " must be finite and non-negative")
    | None -> Error ("missing numeric " ^ name)
  in
  let* protocol =
    match
      Option.bind (Obs.Json.member "protocol" scenario) Obs.Json.to_string_opt
    with
    | Some name -> (
        match protocol_of_name name with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown protocol %S" name))
    | None -> Error "missing protocol"
  in
  let* n = int_of "n" scenario in
  let* () =
    if n >= 1 && n <= max_n then Ok ()
    else Error (Printf.sprintf "n must be in 1..%d" max_n)
  in
  let* cluster_seed = int_of "cluster_seed" scenario in
  let* drop_probability = finite_of "drop_probability" scenario in
  let* () =
    if drop_probability <= 1. then Ok ()
    else Error "drop_probability must be a probability"
  in
  let* horizon = finite_of "horizon" scenario in
  let* () =
    if horizon > 0. && horizon <= max_time then Ok ()
    else Error (Printf.sprintf "horizon must be in (0, %g]" max_time)
  in
  let* fault_docs =
    match Option.bind (Obs.Json.member "faults" plan) Obs.Json.to_list with
    | Some l -> Ok l
    | None -> Error "plan must carry a faults list"
  in
  let* faults =
    List.fold_left
      (fun acc doc ->
        let* acc = acc in
        let* node = int_of "node" doc in
        let* () =
          if node >= 0 && node < n then Ok ()
          else Error (Printf.sprintf "fault node %d out of range" node)
        in
        let* at = finite_of "at" doc in
        let* () =
          if at <= max_time then Ok () else Error "fault time out of range"
        in
        let* kind =
          match
            Option.bind (Obs.Json.member "kind" doc) Obs.Json.to_string_opt
          with
          | Some "crash" -> Ok Crash
          | Some "crash_restart" ->
              let* back_at = finite_of "back_at" doc in
              if back_at >= at && back_at <= max_time then Ok (Crash_restart back_at)
              else Error "back_at must lie in [at, horizon bound]"
          | Some "byzantine" ->
              if protocol = Pbft then Ok Byzantine
              else Error "byzantine faults are PBFT-only"
          | Some "process" ->
              if protocol <> Raft && protocol <> Rabia then
                Error "process faults apply to raft and rabia only"
              else
                let* fail_rate = finite_of "fail_rate" doc in
                let* recover_rate = finite_of "recover_rate" doc in
                if
                  fail_rate > 0. && fail_rate <= 1. && recover_rate > 0.
                  && recover_rate <= 1.
                then Ok (Process { fail_rate; recover_rate })
                else
                  Error
                    "process rates must be positive and at most 1 per time unit"
          | Some other -> Error (Printf.sprintf "unknown fault kind %S" other)
          | None -> Error "fault missing kind"
        in
        Ok ({ node; kind; at } :: acc))
      (Ok []) fault_docs
  in
  let faults = List.rev faults in
  let* () =
    let nodes = List.map (fun f -> f.node) faults in
    if List.length (List.sort_uniq compare nodes) = List.length nodes then Ok ()
    else Error "duplicate fault node"
  in
  let* op_docs =
    match Obs.Json.to_list ops with
    | Some l -> Ok l
    | None -> Error "ops must be a list"
  in
  let* ops =
    List.fold_left
      (fun acc doc ->
        let* acc = acc in
        match doc with
        | Obs.Json.Int i -> Ok (i :: acc)
        | _ -> Error "ops must be integers")
      (Ok []) op_docs
  in
  let ops = List.rev ops in
  let* () =
    match protocol with
    | Benor ->
        if List.length ops = n && List.for_all (fun v -> v = 0 || v = 1) ops then
          Ok ()
        else Error "benor ops must be n binary initial values"
    | _ ->
        if List.length ops <= max_ops then Ok ()
        else Error (Printf.sprintf "at most %d ops" max_ops)
  in
  Ok { protocol; n; cluster_seed; drop_probability; faults; ops; horizon }

let system protocol =
  {
    Harness.name = system_name protocol;
    generate = generate protocol;
    run;
    candidates;
    size;
    encode;
    decode;
  }
