test/test_cost.ml: Alcotest Array Costmodel Faultmodel List Machine Optimizer Option Prob Probcons
