type config = {
  nodes : int;
  seed : int;
  ticks : int;
  quorum : int;
  target_live : float;
  at : float;
  replacement_afr : float;
  drift_bound : float;
  resize_max_nodes : int;
  verify : bool;
  dynamic : bool;
  stream : Stream.config;
}

let default_config ?(seed = 42) ?(ticks = 26) ?(dynamic = false) ~nodes () =
  {
    nodes;
    seed;
    ticks;
    quorum = (nodes / 2) + 1;
    target_live = 0.999;
    at = 8766.;
    replacement_afr = 0.02;
    drift_bound = Prob.Incremental.default_drift_bound;
    resize_max_nodes = 64;
    verify = nodes <= 256;
    dynamic;
    stream = Stream.default_config ~dynamic ~seed ~nodes ();
  }

type action =
  | Resize of { q_per : int; q_vc : int; predicted_live : float }
  | Swap of { node : int; estimate : float; predicted_live : float }

type recommendation = { tick : int; p_live : float; action : action }

type outcome = {
  config : config;
  recommendations : recommendation list;
  final_quorum : int;
  final_p_live : float;
  final_expected_failures : float;
  observations : int;
  failures_seen : int;
  device_hours : float;
  engine_updates : int;
  engine_refreshes : int;
  max_divergence : float;
}

(* --- metrics -------------------------------------------------------- *)

let m_update_seconds = Obs.Metrics.histogram ~family:"fleet" "update_seconds"
let m_ticks = Obs.Metrics.counter ~family:"fleet" "ticks"
let m_observations = Obs.Metrics.counter ~family:"fleet" "observations"
let m_refreshes = Obs.Metrics.counter ~family:"fleet" "refreshes"
let m_recommendations = Obs.Metrics.counter ~family:"fleet" "recommendations"

(* --- the loop ------------------------------------------------------- *)

let validate cfg =
  if cfg.nodes <= 0 then invalid_arg "Controller.run: nodes must be positive";
  if cfg.ticks < 0 then invalid_arg "Controller.run: negative tick count";
  if cfg.quorum < 1 || cfg.quorum > cfg.nodes then
    invalid_arg "Controller.run: quorum must be in [1, nodes]";
  if not (cfg.target_live > 0. && cfg.target_live < 1.) then
    invalid_arg "Controller.run: target_live must be in (0, 1)";
  if cfg.at <= 0. then invalid_arg "Controller.run: horizon must be positive";
  if cfg.replacement_afr <= 0. then
    invalid_arg "Controller.run: replacement_afr must be positive";
  if cfg.stream.Stream.nodes <> cfg.nodes then
    invalid_arg "Controller.run: stream fleet size mismatch"

let estimate_fleet estimates =
  Faultmodel.Fleet.of_nodes
    (Array.to_list
       (Array.mapi
          (fun id p ->
            Faultmodel.Node.make ~id (Faultmodel.Fault_curve.constant p))
          estimates))

let argmax_estimate estimates =
  let best = ref 0 in
  Array.iteri (fun i p -> if p > estimates.(!best) then best := i) estimates;
  !best

(* Dynamic-mode swap target: lowest reliability-weighted score
   [(1 - estimate) / (1 + uncertainty)] — the same scoring
   {!Probnative.Committee.reliability_weighted} uses. A node that looks
   bad {e or} that we cannot trust ranks first; under time-varying
   ground truth a stale confident estimate is exactly as dangerous as a
   fresh bad one. *)
let argmin_weighted estimates uncertainty =
  let score i = (1. -. estimates.(i)) /. (1. +. uncertainty.(i)) in
  let best = ref 0 in
  Array.iteri
    (fun i _ -> if score i < score !best then best := i)
    estimates;
  !best

let run cfg =
  validate cfg;
  let stream = Stream.create cfg.stream in
  let prior =
    Faultmodel.Fault_curve.eval
      (Faultmodel.Fault_curve.of_afr cfg.replacement_afr)
      cfg.at
  in
  let replacement_p = prior in
  let estimates = Array.make cfg.nodes prior in
  (* 95%-CI half-width on each node's AFR from its latest observation;
     0.5 (maximal) until a node has reported. Only consulted by the
     dynamic-mode swap policy. *)
  let uncertainty = Array.make cfg.nodes 0.5 in
  let engine =
    Prob.Incremental.create ~drift_bound:cfg.drift_bound estimates
  in
  let quorum = ref cfg.quorum in
  let recommendations = ref [] in
  let observations = ref 0 in
  let failures_seen = ref 0 in
  let device_hours = ref 0. in
  let max_divergence = ref 0. in
  let p_live () = Prob.Incremental.cdf_le engine (cfg.nodes - !quorum) in
  let recommend tick live action =
    Obs.Metrics.incr m_recommendations;
    recommendations := { tick; p_live = live; action } :: !recommendations
  in
  for tick = 1 to cfg.ticks do
    Obs.Metrics.incr m_ticks;
    let events = Stream.tick stream in
    (* Refit every reporting node and fold the new estimates in as one
       O(n)-per-factor incremental batch. *)
    let updates =
      List.map
        (fun { Stream.node; observation } ->
          incr observations;
          Obs.Metrics.incr m_observations;
          failures_seen := !failures_seen + observation.Faultmodel.Telemetry.failures;
          device_hours :=
            !device_hours +. observation.Faultmodel.Telemetry.device_hours;
          let fitted = Faultmodel.Telemetry.fit_auto observation in
          let p = Faultmodel.Fault_curve.eval fitted cfg.at in
          estimates.(node) <- p;
          let lo, hi = Faultmodel.Telemetry.afr_confidence observation in
          uncertainty.(node) <- (hi -. lo) /. 2.;
          (node, p))
        events
    in
    let refreshes_before = Prob.Incremental.refresh_count engine in
    Obs.Span.time m_update_seconds (fun () ->
        Prob.Incremental.update_batch engine updates);
    Obs.Metrics.add m_refreshes
      (Prob.Incremental.refresh_count engine - refreshes_before);
    let live = p_live () in
    if live < cfg.target_live then begin
      (* First lever: a cheaper commit quorum from the structurally
         safe Flexible-Paxos family, if one meets the target. *)
      (if cfg.nodes <= cfg.resize_max_nodes then
         match
           Probnative.Dynamic_quorum.best_raft ~target_live:cfg.target_live
             (estimate_fleet estimates)
         with
         | Some choice when choice.Probnative.Dynamic_quorum.params.Probcons.Raft_model.q_per <> !quorum ->
             let params = choice.Probnative.Dynamic_quorum.params in
             recommend tick live
               (Resize
                  {
                    q_per = params.Probcons.Raft_model.q_per;
                    q_vc = params.Probcons.Raft_model.q_vc;
                    predicted_live = choice.Probnative.Dynamic_quorum.p_live;
                  });
             quorum := params.Probcons.Raft_model.q_per
         | _ -> ());
      (* Second lever: preemptively swap the riskiest node. Predicted
         effect comes from the engine itself — update the factor, read
         the distribution, and revert only if the swap would not
         help. *)
      let live = p_live () in
      if live < cfg.target_live then begin
        let riskiest =
          if cfg.dynamic then argmin_weighted estimates uncertainty
          else argmax_estimate estimates
        in
        let previous = estimates.(riskiest) in
        if previous > replacement_p then begin
          Prob.Incremental.update engine riskiest replacement_p;
          let predicted = p_live () in
          if predicted > live then begin
            estimates.(riskiest) <- replacement_p;
            uncertainty.(riskiest) <- 0.;
            Stream.replace stream riskiest ~afr:cfg.replacement_afr;
            recommend tick live
              (Swap { node = riskiest; estimate = previous; predicted_live = predicted })
          end
          else Prob.Incremental.update engine riskiest previous
        end
      end
    end;
    if cfg.verify then
      max_divergence :=
        Float.max !max_divergence
          (Prob.Incremental.sup_distance_from_scratch engine)
  done;
  {
    config = cfg;
    recommendations = List.rev !recommendations;
    final_quorum = !quorum;
    final_p_live = p_live ();
    final_expected_failures = Prob.Incremental.expectation engine;
    observations = !observations;
    failures_seen = !failures_seen;
    device_hours = !device_hours;
    engine_updates = Prob.Incremental.update_count engine;
    engine_refreshes = Prob.Incremental.refresh_count engine;
    max_divergence = !max_divergence;
  }

(* --- rendering ------------------------------------------------------ *)

let action_json = function
  | Resize { q_per; q_vc; predicted_live } ->
      [
        ("action", Obs.Json.String "resize");
        ("q_per", Obs.Json.Int q_per);
        ("q_vc", Obs.Json.Int q_vc);
        ("predicted_live", Obs.Json.number predicted_live);
      ]
  | Swap { node; estimate; predicted_live } ->
      [
        ("action", Obs.Json.String "swap");
        ("node", Obs.Json.Int node);
        ("estimate", Obs.Json.number estimate);
        ("predicted_live", Obs.Json.number predicted_live);
      ]

let recommendation_json r =
  Obs.Json.Obj
    (("tick", Obs.Json.Int r.tick)
    :: ("p_live", Obs.Json.number r.p_live)
    :: action_json r.action)

let base_fields o =
  (* [dynamic] is encoded only when true so every pre-existing payload
     byte stays identical. *)
  (if o.config.dynamic then [ ("dynamic", Obs.Json.Bool true) ] else [])
  @ [
    ("nodes", Obs.Json.Int o.config.nodes);
    ("seed", Obs.Json.Int o.config.seed);
    ("ticks", Obs.Json.Int o.config.ticks);
    ("observations", Obs.Json.Int o.observations);
    ("failures_seen", Obs.Json.Int o.failures_seen);
    ("device_hours", Obs.Json.number o.device_hours);
    ("engine_updates", Obs.Json.Int o.engine_updates);
    ("engine_refreshes", Obs.Json.Int o.engine_refreshes);
    ("max_divergence", Obs.Json.number o.max_divergence);
  ]

let payload o =
  Obs.Json.Obj
    (("subsystem", Obs.Json.String "fleet")
    :: base_fields o
    @ [
        ("quorum", Obs.Json.Int o.final_quorum);
        ("target_live", Obs.Json.number o.config.target_live);
        ("p_live", Obs.Json.number o.final_p_live);
        ("nines", Obs.Json.number (Prob.Nines.of_prob o.final_p_live));
        ("expected_failures", Obs.Json.number o.final_expected_failures);
        ( "recommendations",
          Obs.Json.List (List.map recommendation_json o.recommendations) );
      ])

let ingest_payload o =
  Obs.Json.Obj
    (("subsystem", Obs.Json.String "fleet_ingest")
    :: base_fields o
    @ [
        ("p_live", Obs.Json.number o.final_p_live);
        ("expected_failures", Obs.Json.number o.final_expected_failures);
      ])

let pp_action fmt = function
  | Resize { q_per; q_vc; predicted_live } ->
      Format.fprintf fmt "resize to q_per=%d q_vc=%d (predicted live %.6f)"
        q_per q_vc predicted_live
  | Swap { node; estimate; predicted_live } ->
      Format.fprintf fmt
        "swap node %d (estimate %.4f; predicted live %.6f)" node estimate
        predicted_live

let pp_outcome fmt o =
  Format.fprintf fmt
    "fleet: %d nodes, %d ticks, %d observations (%d device failures)@."
    o.config.nodes o.config.ticks o.observations o.failures_seen;
  Format.fprintf fmt
    "engine: %d incremental updates, %d refreshes, max divergence %.3e@."
    o.engine_updates o.engine_refreshes o.max_divergence;
  List.iter
    (fun r ->
      Format.fprintf fmt "tick %3d: p_live %.6f -> %a@." r.tick r.p_live
        pp_action r.action)
    o.recommendations;
  Format.fprintf fmt "final: quorum %d, p_live %.6f (%.2f nines), E[failures] %.3f"
    o.final_quorum o.final_p_live
    (Prob.Nines.of_prob o.final_p_live)
    o.final_expected_failures
