lib/quorum/formation.ml: Prob Probabilistic
