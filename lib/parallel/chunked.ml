let default_chunks = 64

let ranges ?(chunks = default_chunks) ~total () =
  if total <= 0 then [||]
  else begin
    let k = max 1 (min chunks total) in
    let base = total / k and extra = total mod k in
    Array.init k (fun i ->
        let lo = (i * base) + min i extra in
        let hi = lo + base + if i < extra then 1 else 0 in
        (lo, hi))
  end

let map_ranges ?domains ?chunks ~total f =
  let rs = ranges ?chunks ~total () in
  Pool.map ?domains (Array.length rs) (fun i ->
      let lo, hi = rs.(i) in
      f ~chunk:i ~lo ~hi)

let reduce_kahan partials extract =
  let acc = ref Prob.Math_utils.kahan_zero in
  Array.iter (fun p -> acc := Prob.Math_utils.kahan_add !acc (extract p)) partials;
  Prob.Math_utils.kahan_total !acc

let sum ?domains ?chunks ~total f =
  let partials = map_ranges ?domains ?chunks ~total (fun ~chunk:_ ~lo ~hi -> f ~lo ~hi) in
  reduce_kahan partials Fun.id

let sum3 ?domains ?chunks ~total f =
  let partials = map_ranges ?domains ?chunks ~total f in
  ( reduce_kahan partials (fun (a, _, _) -> a),
    reduce_kahan partials (fun (_, b, _) -> b),
    reduce_kahan partials (fun (_, _, c) -> c) )

let count3 ?domains ?chunks ~total f =
  let partials = map_ranges ?domains ?chunks ~total f in
  Array.fold_left
    (fun (a, b, c) (da, db, dc) -> (a + da, b + db, c + dc))
    (0, 0, 0) partials
