(** Raft wire messages and log entries.

    Client commands are integers (the experiments only need identity);
    configuration changes travel through the log as [Config] entries
    carrying the new member set, following the dissertation's
    single-server membership-change algorithm. Log indices are 1-based
    as in the Raft paper; index 0 is the empty-log sentinel with
    term 0. *)

type command =
  | Data of int  (** An ordinary state-machine command. *)
  | Config of int list
      (** New cluster membership; takes effect as soon as the entry is
          appended (not committed), per the Raft membership-change
          rule. *)

type entry = { term : int; index : int; command : command }

type msg =
  | Request_vote of {
      term : int;
      candidate_id : int;
      last_log_index : int;
      last_log_term : int;
    }
  | Request_vote_reply of { term : int; voter_id : int; granted : bool }
  | Append_entries of {
      term : int;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : entry list;
      leader_commit : int;
    }
  | Append_entries_reply of {
      term : int;
      follower_id : int;
      success : bool;
      match_index : int;
    }
  | Timeout_now of { term : int }
      (** Leadership transfer (Raft §3.10): the leader tells a caught-up
          follower to start an election immediately, without waiting for
          its randomized timeout. *)

val pp_msg : Format.formatter -> msg -> unit
val pp_command : Format.formatter -> command -> unit
