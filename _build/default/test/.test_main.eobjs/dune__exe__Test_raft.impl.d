test/test_raft.ml: Alcotest Array Dessim Fun List Printf Prob QCheck QCheck_alcotest Raft_checker Raft_cluster Raft_node Raft_sim
