let pct = Prob.Nines.percent_string

let raft_grid ~ns ~ps =
  let header = "N" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  List.iter
    (fun n ->
      Report.add_row t
        (string_of_int n
        :: List.map (fun p -> pct (Raft_model.safe_and_live_uniform ~n ~p)) ps))
    ns;
  t

let pbft_grid ~ns ~ps =
  let header = "N" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  List.iter
    (fun n ->
      let proto = Pbft_model.protocol (Pbft_model.default n) in
      Report.add_row t
        (string_of_int n
        :: List.map
             (fun p ->
               let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p () in
               pct (Analysis.run proto fleet).Analysis.p_safe_live)
             ps))
    ns;
  t

let pbft_safety_liveness_grid ~ns ~p =
  let t = Report.create ~header:[ "N"; "safe"; "live"; "safe&live"; "safe-or-accountable" ] in
  List.iter
    (fun n ->
      let params = Pbft_model.default n in
      let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p () in
      let r = Analysis.run (Pbft_model.protocol params) fleet in
      let forensic = Analysis.run (Pbft_model.safe_or_accountable params) fleet in
      Report.add_row t
        [
          string_of_int n;
          pct r.Analysis.p_safe;
          pct r.Analysis.p_live;
          pct r.Analysis.p_safe_live;
          pct forensic.Analysis.p_safe;
        ])
    ns;
  t

let timeline fleet ~times =
  let n = Faultmodel.Fleet.size fleet in
  let proto = Raft_model.protocol (Raft_model.default n) in
  let t = Report.create ~header:[ "mission time (h)"; "safe&live"; "nines" ] in
  List.iter
    (fun at ->
      let r = Analysis.run ~at proto fleet in
      Report.add_row t
        [
          Printf.sprintf "%.0f" at;
          pct r.Analysis.p_safe_live;
          Printf.sprintf "%.2f" (Prob.Nines.of_prob r.Analysis.p_safe_live);
        ])
    times;
  t

let min_cluster_frontier ~targets ~ps =
  let header = "target" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  List.iter
    (fun target ->
      Report.add_row t
        (pct target
        :: List.map
             (fun p ->
               match Equivalence.min_raft_cluster ~target ~p () with
               | Some e -> string_of_int e.Equivalence.n
               | None -> "-")
             ps))
    targets;
  t
