lib/core/sweep.mli: Faultmodel Report
