lib/raft/raft_cluster.mli: Dessim Raft_node
