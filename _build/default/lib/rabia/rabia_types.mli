(** Rabia-style randomized state machine replication — wire messages.

    Rabia (SOSP'21, cited by the paper as the modern "beyond quorums"
    design) replicates a log without leaders or intersecting quorums:
    per slot, replicas exchange proposals, and a randomized binary
    agreement decides whether the slot commits the majority proposal or
    a null operation (retrying the commands later). This is a faithful
    simplification: proposal exchange + per-slot Ben-Or with a shared
    coin + decision dissemination. *)

type msg =
  | Proposal of { slot : int; command : int; from : int }
      (** The sender's candidate command for the slot. *)
  | Report of { slot : int; round : int; value : int; from : int }
      (** Binary-agreement phase 1 (value 0 = commit null, 1 = commit
          the majority proposal). *)
  | Vote of { slot : int; round : int; value : int option; from : int }
      (** Binary-agreement phase 2. *)
  | Decision of { slot : int; value : int; command : int option; from : int }
      (** Decided outcome; carries the committed command when the
          outcome is 1 so laggards can adopt it. *)

val pp_msg : Format.formatter -> msg -> unit
