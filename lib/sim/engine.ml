let m_events = Obs.Metrics.counter ~family:"engine" "events_executed"
let m_queue_depth = Obs.Metrics.gauge ~family:"engine" "queue_depth"

type event = { callback : unit -> unit; mutable cancelled : bool }

type cancel = event

type t = {
  mutable clock : float;
  queue : event Event_queue.t;
  rng : Prob.Rng.t;
  mutable executed : int;
  mutable stopped : bool;
}

let create ?(seed = 1) () =
  { clock = 0.; queue = Event_queue.create (); rng = Prob.Rng.create seed;
    executed = 0; stopped = false }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time callback =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  let event = { callback; cancelled = false } in
  Event_queue.push t.queue ~time event;
  event

let schedule t ~delay callback =
  if delay < 0. || Float.is_nan delay then
    invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) callback

let cancel event = event.cancelled <- true

let run ?(until = infinity) ?(max_events = 10_000_000) t =
  t.stopped <- false;
  let rec loop () =
    if (not t.stopped) && t.executed < max_events then begin
      match Event_queue.peek_time t.queue with
      | None -> ()
      | Some time when time > until -> ()
      | Some _ -> (
          match Event_queue.pop t.queue with
          | None -> ()
          | Some (time, event) ->
              t.clock <- Float.max t.clock time;
              if not event.cancelled then begin
                t.executed <- t.executed + 1;
                Obs.Metrics.incr m_events;
                Obs.Metrics.set m_queue_depth (Event_queue.size t.queue);
                event.callback ()
              end;
              loop ())
    end
  in
  loop ()

let events_executed t = t.executed

let stop t = t.stopped <- true
