type report = {
  system : Quorum_system.t;
  min_quorum : int;
  load : float;
  capacity : float;
  availability : float;
  failure_probability : float;
}

let evaluate system probs =
  let load = Quorum_system.uniform_strategy_load system in
  let availability = Quorum_system.availability system probs in
  {
    system;
    min_quorum = Quorum_system.min_quorum_size system;
    load;
    capacity = (if load > 0. then 1. /. load else infinity);
    availability;
    failure_probability = 1. -. availability;
  }

let evaluate_uniform system ~p =
  evaluate system (Array.make (Quorum_system.size system) p)

type rw_report = {
  n : int;
  r : int;
  w : int;
  consistent : bool;
  write_serial : bool;
  read_availability : float;
  write_availability : float;
}

let evaluate_rw ~n ~r ~w ~p =
  if r < 1 || r > n || w < 1 || w > n then invalid_arg "Metrics.evaluate_rw";
  let availability k = Prob.Distribution.binomial_cdf ~n ~p (n - k) in
  {
    n;
    r;
    w;
    consistent = r + w > n;
    write_serial = 2 * w > n;
    read_availability = availability r;
    write_availability = availability w;
  }

let pp_rw_report fmt t =
  Format.fprintf fmt
    "R=%d W=%d of %d: consistent=%b, reads %s, writes %s" t.r t.w t.n t.consistent
    (Prob.Nines.percent_string t.read_availability)
    (Prob.Nines.percent_string t.write_availability)

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%a:@ min quorum %d, load %.4f, capacity %.2f, availability %a@]"
    Quorum_system.pp r.system r.min_quorum r.load r.capacity
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.availability
