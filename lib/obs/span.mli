(** Wall-clock spans feeding a histogram of elapsed seconds.

    A span reads the clock only when its histogram is {!Metrics.live},
    so instrumented code pays one branch when metrics are off. Spans
    are plain values — store one per lexical scope or per worker lane;
    they are not reentrant. *)

type t

val start : Metrics.histogram -> t
(** Begin timing into [h]. When the registry is disabled this records
    nothing and {!stop} is free. *)

val stop : t -> unit
(** Record elapsed seconds since {!start} into the histogram. *)

val time : Metrics.histogram -> (unit -> 'a) -> 'a
(** [time h f] runs [f ()] inside a span; the elapsed time is recorded
    even if [f] raises. *)
