(* Shard selection: domain ids are small monotonically increasing
   integers; masking them into a fixed shard set keeps the array small
   while spreading concurrent writers. Two domains landing on the same
   shard is a contention issue, never a correctness one — every shard
   cell is an [Atomic.t]. *)
let num_shards = 8

let shard_index () = (Domain.self () :> int) land (num_shards - 1)

(* --- Log-scale buckets --------------------------------------------- *)

(* Quarter powers of two: bucket k (for k in [k_min, k_max]) covers
   (2^((k-1)/4), 2^(k/4)], represented by the geometric midpoint
   2^((k-0.5)/4). Worst-case relative error of any bucket-derived
   statistic is 2^(1/8) - 1 ≈ 9%. Bucket 0 holds zero, negative and
   NaN observations. *)
let k_min = -120
let k_max = 120
let num_buckets = 2 + (k_max - k_min)

let bucket_of_value v =
  if not (v > 0.) then 0 (* zero, negative, or NaN *)
  else if not (Float.is_finite v) then num_buckets - 1
  else begin
    let k = int_of_float (Float.ceil (4. *. Float.log2 v)) in
    let k = if k < k_min then k_min else if k > k_max then k_max else k in
    1 + (k - k_min)
  end

let representative bucket =
  if bucket = 0 then 0.
  else Float.exp2 ((float_of_int (bucket - 1 + k_min) -. 0.5) /. 4.)

(* --- Instruments --------------------------------------------------- *)

type counter = { c_on : bool Atomic.t; c_shards : int Atomic.t array }

type gauge = { g_on : bool Atomic.t; g_shards : int Atomic.t array }

(* [min_int] marks a never-written gauge shard. *)
let gauge_unset = min_int

type histogram = { h_on : bool Atomic.t; h_shards : int Atomic.t array array }

type metric =
  | Reg_counter of counter
  | Reg_gauge of gauge
  | Reg_histogram of histogram

type t = {
  on : bool Atomic.t;
  lock : Mutex.t;
  table : (string * string, metric) Hashtbl.t;
}

let create ?(enabled = false) () =
  { on = Atomic.make enabled; lock = Mutex.create (); table = Hashtbl.create 64 }

let default = create ()

let set_enabled ?(registry = default) flag = Atomic.set registry.on flag
let enabled ?(registry = default) () = Atomic.get registry.on

let atomic_array n = Array.init n (fun _ -> Atomic.make 0)

let with_lock registry f =
  Mutex.lock registry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry.lock) f

let kind_name = function
  | Reg_counter _ -> "counter"
  | Reg_gauge _ -> "gauge"
  | Reg_histogram _ -> "histogram"

let register registry ~family ~name make =
  if family = "" || name = "" then
    invalid_arg "Metrics: family and name must be non-empty";
  with_lock registry (fun () ->
      match Hashtbl.find_opt registry.table (family, name) with
      | Some existing -> existing
      | None ->
          let metric = make () in
          Hashtbl.add registry.table (family, name) metric;
          metric)

let counter ?(registry = default) ~family name =
  match
    register registry ~family ~name (fun () ->
        Reg_counter { c_on = registry.on; c_shards = atomic_array num_shards })
  with
  | Reg_counter c -> c
  | other ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %s.%s already registered as a %s" family
           name (kind_name other))

let gauge ?(registry = default) ~family name =
  match
    register registry ~family ~name (fun () ->
        Reg_gauge
          {
            g_on = registry.on;
            g_shards = Array.init num_shards (fun _ -> Atomic.make gauge_unset);
          })
  with
  | Reg_gauge g -> g
  | other ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %s.%s already registered as a %s" family name
           (kind_name other))

let histogram ?(registry = default) ~family name =
  match
    register registry ~family ~name (fun () ->
        Reg_histogram
          {
            h_on = registry.on;
            h_shards = Array.init num_shards (fun _ -> atomic_array num_buckets);
          })
  with
  | Reg_histogram h -> h
  | other ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %s.%s already registered as a %s" family
           name (kind_name other))

let incr c =
  if Atomic.get c.c_on then
    ignore (Atomic.fetch_and_add c.c_shards.(shard_index ()) 1)

let add c k =
  if Atomic.get c.c_on then
    ignore (Atomic.fetch_and_add c.c_shards.(shard_index ()) k)

let set g v =
  if Atomic.get g.g_on then
    Atomic.set g.g_shards.(shard_index ()) (if v = gauge_unset then v + 1 else v)

let observe h v =
  if Atomic.get h.h_on then
    ignore (Atomic.fetch_and_add h.h_shards.(shard_index ()).(bucket_of_value v) 1)

let live h = Atomic.get h.h_on

let reset ?(registry = default) () =
  with_lock registry (fun () ->
      Hashtbl.iter
        (fun _ metric ->
          match metric with
          | Reg_counter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
          | Reg_gauge g -> Array.iter (fun a -> Atomic.set a gauge_unset) g.g_shards
          | Reg_histogram h ->
              Array.iter (Array.iter (fun a -> Atomic.set a 0)) h.h_shards)
        registry.table)

(* --- Snapshots ----------------------------------------------------- *)

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value = Counter of int | Gauge of int | Histogram of hist_summary

type sample = { family : string; name : string; value : value }

type snapshot = sample list

let counter_total c =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards

let gauge_value g =
  Array.fold_left
    (fun acc a ->
      let v = Atomic.get a in
      if v = gauge_unset then acc else max acc v)
    0 g.g_shards

let hist_summary h =
  (* Merge shards into one bucket array; everything below derives from
     the merged view. *)
  let merged = Array.make num_buckets 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun b a -> merged.(b) <- merged.(b) + Atomic.get a) shard)
    h.h_shards;
  let count = Array.fold_left ( + ) 0 merged in
  if count = 0 then
    { count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }
  else begin
    let sum = ref 0. and min_b = ref (-1) and max_b = ref 0 in
    Array.iteri
      (fun b n ->
        if n > 0 then begin
          sum := !sum +. (float_of_int n *. representative b);
          if !min_b < 0 then min_b := b;
          max_b := b
        end)
      merged;
    let percentile q =
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
      let cum = ref 0 and b = ref 0 and result = ref 0. in
      let found = ref false in
      while not !found do
        cum := !cum + merged.(!b);
        if !cum >= rank then begin
          result := representative !b;
          found := true
        end
        else b := !b + 1
      done;
      !result
    in
    {
      count;
      sum = !sum;
      min = representative !min_b;
      max = representative !max_b;
      p50 = percentile 0.50;
      p90 = percentile 0.90;
      p99 = percentile 0.99;
    }
  end

let snapshot ?(registry = default) () =
  let entries =
    with_lock registry (fun () ->
        Hashtbl.fold (fun key metric acc -> (key, metric) :: acc) registry.table [])
  in
  entries
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun ((family, name), metric) ->
         let value =
           match metric with
           | Reg_counter c -> Counter (counter_total c)
           | Reg_gauge g -> Gauge (gauge_value g)
           | Reg_histogram h -> Histogram (hist_summary h)
         in
         { family; name; value })

let find snapshot ~family ~name =
  List.find_map
    (fun s -> if s.family = family && s.name = name then Some s.value else None)
    snapshot

let families snapshot =
  List.sort_uniq compare (List.map (fun s -> s.family) snapshot)

(* --- JSON ---------------------------------------------------------- *)

let sample_to_json { family; name; value } =
  let base = [ ("family", Json.String family); ("name", Json.String name) ] in
  Json.Obj
    (match value with
    | Counter v -> base @ [ ("kind", Json.String "counter"); ("value", Json.Int v) ]
    | Gauge v -> base @ [ ("kind", Json.String "gauge"); ("value", Json.Int v) ]
    | Histogram h ->
        base
        @ [
            ("kind", Json.String "histogram");
            ("count", Json.Int h.count);
            ("sum", Json.number h.sum);
            ("min", Json.number h.min);
            ("max", Json.number h.max);
            ("p50", Json.number h.p50);
            ("p90", Json.number h.p90);
            ("p99", Json.number h.p99);
          ])

let sample_of_json json =
  let str key = Option.bind (Json.member key json) Json.to_string_opt in
  let int key = Option.bind (Json.member key json) Json.to_int in
  let num key = Option.bind (Json.member key json) Json.to_float in
  match (str "family", str "name", str "kind") with
  | Some family, Some name, Some kind -> (
      let make value = Ok { family; name; value } in
      match kind with
      | "counter" -> (
          match int "value" with
          | Some v -> make (Counter v)
          | None -> Error "counter sample without integer value")
      | "gauge" -> (
          match int "value" with
          | Some v -> make (Gauge v)
          | None -> Error "gauge sample without integer value")
      | "histogram" -> (
          match
            (int "count", num "sum", num "min", num "max", num "p50", num "p90",
             num "p99")
          with
          | Some count, Some sum, Some min, Some max, Some p50, Some p90, Some p99
            -> make (Histogram { count; sum; min; max; p50; p90; p99 })
          | _ -> Error "histogram sample with missing summary fields")
      | other -> Error (Printf.sprintf "unknown sample kind %S" other))
  | _ -> Error "sample without family/name/kind"

let to_json snapshot = Json.List (List.map sample_to_json snapshot)

let of_json json =
  match Json.to_list json with
  | None -> Error "snapshot is not a JSON list"
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            match sample_of_json item with
            | Ok sample -> go (sample :: acc) rest
            | Error _ as e -> e)
      in
      go [] items

let to_jsonl snapshot =
  String.concat ""
    (List.map (fun s -> Json.to_string (sample_to_json s) ^ "\n") snapshot)

let of_jsonl text =
  let lines =
    List.filter
      (fun line -> String.trim line <> "")
      (String.split_on_char '\n' text)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.of_string line with
        | Error _ as e -> e
        | Ok json -> (
            match sample_of_json json with
            | Ok sample -> go (sample :: acc) rest
            | Error _ as e -> e))
  in
  go [] lines

let write_jsonl ~path snapshot =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl snapshot))

let pp_value fmt = function
  | Counter v -> Format.fprintf fmt "%d" v
  | Gauge v -> Format.fprintf fmt "%d" v
  | Histogram h ->
      Format.fprintf fmt "count=%d p50=%.3g p90=%.3g p99=%.3g max=%.3g" h.count
        h.p50 h.p90 h.p99 h.max
