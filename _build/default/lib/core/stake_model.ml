type params = {
  stakes : float array;
  byz_stake_bound : float;
  live_stake_bound : float;
}

let make ?(byz_stake_bound = 1. /. 3.) ?(live_stake_bound = 2. /. 3.) stakes =
  if Array.length stakes = 0 then invalid_arg "Stake_model.make: empty stakes";
  Array.iter
    (fun s -> if s <= 0. then invalid_arg "Stake_model.make: stakes must be positive")
    stakes;
  if byz_stake_bound <= 0. || byz_stake_bound > 1. then
    invalid_arg "Stake_model.make: byz bound out of range";
  if live_stake_bound <= 0. || live_stake_bound > 1. then
    invalid_arg "Stake_model.make: live bound out of range";
  { stakes; byz_stake_bound; live_stake_bound }

let total params = Prob.Math_utils.kahan_sum params.stakes

let stake_of params pred config =
  let acc = ref 0. in
  Array.iteri (fun u status -> if pred status then acc := !acc +. params.stakes.(u)) config;
  !acc

let byz_stake_fraction params config =
  stake_of params (fun s -> s = Config.Byzantine) config /. total params

let correct_stake_fraction params config =
  stake_of params (fun s -> s = Config.Correct) config /. total params

let protocol params =
  let n = Array.length params.stakes in
  let safe =
    Protocol.full_predicate (fun config ->
        byz_stake_fraction params config < params.byz_stake_bound)
  in
  let live =
    Protocol.full_predicate (fun config ->
        correct_stake_fraction params config >= params.live_stake_bound)
  in
  { Protocol.name = Printf.sprintf "stake(n=%d)" n; n; safe; live }

let nakamoto_coefficient params =
  let sorted = Array.copy params.stakes in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let threshold = params.byz_stake_bound *. total params in
  let rec go i acc =
    if i >= Array.length sorted then Array.length sorted
    else begin
      let acc = acc +. sorted.(i) in
      if acc >= threshold then i + 1 else go (i + 1) acc
    end
  in
  go 0 0.
