lib/core/protocol.mli: Config
