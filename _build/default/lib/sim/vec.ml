type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let capacity = max 8 (2 * Array.length t.data) in
    let fresh = Array.make capacity x in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate";
  t.len <- n

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let to_list t = List.init t.len (fun i -> t.data.(i))

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done
