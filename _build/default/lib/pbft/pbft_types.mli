(** PBFT wire messages.

    Digests and signatures are elided: the simulator's adversary is the
    protocol-level one the paper's theorems reason about (equivocating
    primaries, vote-stuffing view-changers, silent replicas), not a
    cryptographic forger. A [prepared_cert] stands in for the
    view-change message's P set: the slots the sender had prepared,
    with the view each was prepared in. *)

type prepared_cert = { seq : int; view : int; command : int }

type msg =
  | Request of { command : int }
      (** Client request, relayed to every replica. *)
  | Pre_prepare of { view : int; seq : int; command : int }
  | Prepare of { view : int; seq : int; command : int; replica : int }
  | Commit of { view : int; seq : int; command : int; replica : int }
  | View_change of { new_view : int; replica : int; prepared : prepared_cert list }
  | New_view of { view : int; pre_prepares : (int * int) list }
      (** [(seq, command)] slots the new primary re-proposes. *)
  | Status of { exec_next : int; replica : int }
      (** Periodic gossip of execution progress; peers that are ahead
          answer with {!State_transfer}. *)
  | State_transfer of { entries : (int * int) list; replica : int }
      (** Committed [(seq, command)] pairs for a lagging replica. A
          receiver only adopts an entry once [q_vc_t] distinct replicas
          vouch for it (the checkpoint-certificate analogue: enough
          vouchers that one is correct). *)

val pp_msg : Format.formatter -> msg -> unit
