type result = {
  clients : int;
  requests_total : int;
  ok : int;
  errors : int;
  mismatches : int;
  elapsed_seconds : float;
  throughput_rps : float;
  latency : Obs.Metrics.hist_summary;
  server_stats : Obs.Json.t option;
  cache_hit_rate : float option;
}

(* Cheap, pairwise-distinct analysis queries: small odd fleets with
   distinct fault probabilities, so each pool slot is its own cache
   entry but no slot costs more than a count-DP over n <= 11. Requests
   are built from real scenarios and encoded through
   [Scenario.to_json], so the generator exercises the server's actual
   cache-key canonicalization, not a hand-built string. *)
let query_pool distinct =
  Array.init distinct (fun i ->
      let mix = [ ((2 * (i mod 5)) + 3, 0.01 +. (0.001 *. float_of_int i)) ] in
      match Probcons.Scenario.make ~protocol:"raft" ~mix () with
      | Ok scenario -> Wire.Analyze { scenario }
      | Error msg -> invalid_arg ("Loadgen.query_pool: " ^ msg))

let json_field name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let run ?(clients = 4) ?(requests = 200) ?(distinct = 8) ~target () =
  let clients = max 1 clients
  and requests = max 1 requests
  and distinct = max 1 distinct in
  let pool = query_pool distinct in
  let registry = Obs.Metrics.create ~enabled:true () in
  let m_latency =
    Obs.Metrics.histogram ~registry ~family:"loadgen" "latency_seconds"
  in
  let ok = Atomic.make 0
  and errors = Atomic.make 0
  and mismatches = Atomic.make 0 in
  (* First full response line seen for each pool slot; every later
     reply for that slot must match it byte for byte. *)
  let expected = Array.make distinct None in
  let expected_mutex = Mutex.create () in
  let check_identical slot line =
    Mutex.lock expected_mutex;
    (match expected.(slot) with
    | None -> expected.(slot) <- Some line
    | Some first -> if not (String.equal first line) then Atomic.incr mismatches);
    Mutex.unlock expected_mutex
  in
  let client_loop k =
    let c = Client.connect ~retry_for:5. target in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        for r = 0 to requests - 1 do
          let slot = (k + r) mod distinct in
          let line = Wire.encode_request { Wire.id = slot; query = pool.(slot) } in
          let t0 = Unix.gettimeofday () in
          match Client.call_raw c line with
          | None -> Atomic.incr errors
          | Some reply -> (
              Obs.Metrics.observe m_latency (Unix.gettimeofday () -. t0);
              match Wire.parse_response reply with
              | Ok { Wire.body = Ok _; _ } ->
                  Atomic.incr ok;
                  check_identical slot reply
              | Ok { Wire.body = Error _; _ } | Error _ -> Atomic.incr errors)
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun k -> Thread.create client_loop k) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let server_stats =
    match
      let c = Client.connect ~retry_for:1. target in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> Client.call c ~id:0 Wire.Stats)
    with
    | Ok payload -> Some payload
    | Error _ | (exception _) -> None
  in
  let cache_hit_rate =
    Option.bind server_stats (fun stats ->
        match Option.bind (json_field "cache" stats) (json_field "hit_rate") with
        | Some (Obs.Json.Float f) -> Some f
        | Some (Obs.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
  in
  let latency =
    match
      Obs.Metrics.find
        (Obs.Metrics.snapshot ~registry ())
        ~family:"loadgen" ~name:"latency_seconds"
    with
    | Some (Obs.Metrics.Histogram h) -> h
    | _ ->
        { Obs.Metrics.count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.;
          p90 = 0.; p99 = 0. }
  in
  let requests_total = clients * requests in
  {
    clients;
    requests_total;
    ok = Atomic.get ok;
    errors = Atomic.get errors;
    mismatches = Atomic.get mismatches;
    elapsed_seconds = elapsed;
    throughput_rps =
      (if elapsed > 0. then float_of_int requests_total /. elapsed else 0.);
    latency;
    server_stats;
    cache_hit_rate;
  }

let print_report r =
  Printf.printf "loadgen: %d clients x %d requests in %.3fs (%.0f req/s)\n"
    r.clients
    (r.requests_total / r.clients)
    r.elapsed_seconds r.throughput_rps;
  Printf.printf "  ok %d, errors %d, byte-identity mismatches %d\n" r.ok
    r.errors r.mismatches;
  Printf.printf "  latency: p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms\n"
    (1e3 *. r.latency.Obs.Metrics.p50)
    (1e3 *. r.latency.Obs.Metrics.p90)
    (1e3 *. r.latency.Obs.Metrics.p99)
    (1e3 *. r.latency.Obs.Metrics.max);
  match r.cache_hit_rate with
  | Some rate -> Printf.printf "  server cache hit-rate: %.1f%%\n" (100. *. rate)
  | None -> Printf.printf "  server cache hit-rate: unavailable\n"

let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "probcons-loadgen/1");
      ("wire", Obs.Json.String Wire.protocol_name);
      ("clients", Obs.Json.Int r.clients);
      ("requests_total", Obs.Json.Int r.requests_total);
      ("ok", Obs.Json.Int r.ok);
      ("errors", Obs.Json.Int r.errors);
      ("mismatches", Obs.Json.Int r.mismatches);
      ("elapsed_seconds", Obs.Json.number r.elapsed_seconds);
      ("throughput_rps", Obs.Json.number r.throughput_rps);
      ( "latency_seconds",
        Obs.Json.Obj
          [
            ("count", Obs.Json.Int r.latency.Obs.Metrics.count);
            ("p50", Obs.Json.number r.latency.Obs.Metrics.p50);
            ("p90", Obs.Json.number r.latency.Obs.Metrics.p90);
            ("p99", Obs.Json.number r.latency.Obs.Metrics.p99);
            ("min", Obs.Json.number r.latency.Obs.Metrics.min);
            ("max", Obs.Json.number r.latency.Obs.Metrics.max);
          ] );
      ( "cache_hit_rate",
        match r.cache_hit_rate with
        | Some f -> Obs.Json.number f
        | None -> Obs.Json.Null );
      ( "server_stats",
        match r.server_stats with Some s -> s | None -> Obs.Json.Null );
    ]
