lib/core/raft_model.ml: Printf Prob Protocol
