(* Schema check for CI-archived JSON artifacts, dispatched on the
   top-level schema tag:

   - probcons-bench/2    the bench harness's --json artifact
   - probcons-loadgen/1  the service load generator's --json artifact
     (legacy; current runs emit /3)
   - probcons-loadgen/2  loadgen with a per-error-code breakdown
   - probcons-loadgen/3  loadgen with wire version, pipeline depth and
     a warmup/measured-window split; the measured window must be at
     least one second, so a throughput number can never come from a
     sub-second burst
   - probcons-chaos/1    the chaos soak harness: fault plan + injection
     counts + the embedded loadgen report + the drain check
   - probcons-service-bench/1  the servebench wire/2-vs-wire/3
     comparison: two loadgen/3 rows on one server, wire/3 strictly
     faster
   - probcons-repro/1    the DST harness's minimal-reproduction
     artifact: seeds, system tag, scenario, fault plan, op trace,
     violated invariant, expectation, shrink statistics
   - probcons-fleet-bench/1  the incremental Poisson-binomial engine's
     update-vs-recompute comparison: paired rows per fleet size, and at
     every size >= 10^4 the incremental kernel must beat the full
     recompute by at least 10x

   CI runs this against each before archiving; a non-zero exit fails
   the workflow rather than shipping a malformed artifact. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let str key doc = Option.bind (Obs.Json.member key doc) Obs.Json.to_string_opt
let num key doc = Option.bind (Obs.Json.member key doc) Obs.Json.to_float
let int_field key doc =
  match Obs.Json.member key doc with Some (Obs.Json.Int i) -> Some i | _ -> None

(* --- probcons-bench/2 -------------------------------------------------- *)

(* Rows may reference the committed scenario file they were driven by
   (repo-relative, e.g. "bench/scenarios/p2_sim.json"). Each referenced
   file must exist — resolved against the cwd, falling back to the
   artifact's own directory — and parse under [Probcons.Scenario.of_string],
   so a bench artifact can't ship pointing at a stale or malformed spec.
   Results are memoized: artifacts reference the same few files many
   times. *)
let scenario_cache : (string, unit) Hashtbl.t = Hashtbl.create 8

let check_scenario_ref artifact_path i ref_path =
  if not (Hashtbl.mem scenario_cache ref_path) then begin
    let candidates =
      [ ref_path; Filename.concat (Filename.dirname artifact_path) ref_path ]
    in
    let resolved =
      match List.find_opt Sys.file_exists candidates with
      | Some p -> p
      | None -> fail "row %d: scenario file %S not found" i ref_path
    in
    (match Probcons.Scenario.of_string (read_file resolved) with
    | Ok _ -> ()
    | Error msg -> fail "row %d: scenario %S: %s" i ref_path msg);
    Hashtbl.add scenario_cache ref_path ()
  end

let check_row artifact_path i row =
  (match str "kernel" row with
  | Some _ -> ()
  | None -> fail "row %d: missing kernel" i);
  (match Obs.Json.member "scenario" row with
  | None -> ()
  | Some (Obs.Json.String ref_path) ->
      check_scenario_ref artifact_path i ref_path
  | Some _ -> fail "row %d: scenario must be a string path" i);
  match num "ns_per_run" row with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "row %d: ns_per_run not finite and positive (%g)" i v
  | None -> fail "row %d: missing numeric ns_per_run" i

let validate_bench path doc =
  let rows =
    match Option.bind (Obs.Json.member "rows" doc) Obs.Json.to_list with
    | Some [] -> fail "rows is empty"
    | Some rows -> rows
    | None -> fail "missing rows list"
  in
  List.iteri (check_row path) rows;
  match Obs.Json.member "metrics" doc with
  | None -> fail "missing metrics snapshot"
  | Some metrics -> (
      match Obs.Metrics.of_json metrics with
      | Error msg -> fail "metrics snapshot: %s" msg
      | Ok [] -> fail "metrics snapshot is empty"
      | Ok samples ->
          Printf.printf "%s: OK (%d rows, %d metric samples, %d scenario refs)\n"
            path (List.length rows) (List.length samples)
            (Hashtbl.length scenario_cache))

(* --- probcons-loadgen/1 and /2 ----------------------------------------- *)

(* v2 adds errors_by_code: an object of non-negative per-code counts
   that must sum to the errors total — the soak harness keys its
   pass/fail decision on which codes appear, so a malformed breakdown
   is a schema failure, not a cosmetic one. *)
let check_errors_by_code doc errors =
  match Obs.Json.member "errors_by_code" doc with
  | Some (Obs.Json.Obj fields) ->
      let sum =
        List.fold_left
          (fun acc (name, v) ->
            match v with
            | Obs.Json.Int n when n > 0 -> acc + n
            | Obs.Json.Int n ->
                fail "errors_by_code.%s must be positive, got %d" name n
            | _ -> fail "errors_by_code.%s must be an integer" name)
          0 fields
      in
      if sum <> errors then
        fail "errors_by_code sums to %d but errors is %d" sum errors
  | Some _ -> fail "errors_by_code must be an object"
  | None -> fail "missing errors_by_code"

let validate_loadgen ?(version = 1) path doc =
  let require_int key =
    match int_field key doc with
    | Some i when i >= 0 -> i
    | Some i -> fail "%s must be non-negative, got %d" key i
    | None -> fail "missing integer %s" key
  in
  (match str "wire" doc with
  | Some _ -> ()
  | None -> fail "missing wire protocol name");
  let clients = require_int "clients" in
  let total = require_int "requests_total" in
  let ok = require_int "ok" in
  let errors = require_int "errors" in
  let mismatches = require_int "mismatches" in
  if clients < 1 then fail "clients must be positive";
  if total < 1 then fail "requests_total must be positive";
  if ok + errors <> total then
    fail "ok (%d) + errors (%d) does not account for requests_total (%d)" ok
      errors total;
  if version >= 2 then check_errors_by_code doc errors;
  if version >= 3 then begin
    (match int_field "wire_version" doc with
    | Some v when v >= 1 && v <= 3 -> ()
    | Some v -> fail "wire_version must be 1..3, got %d" v
    | None -> fail "missing integer wire_version");
    (match int_field "pipeline" doc with
    | Some p when p >= 1 -> ()
    | Some p -> fail "pipeline must be positive, got %d" p
    | None -> fail "missing integer pipeline");
    (match num "warmup_seconds" doc with
    | Some v when Float.is_finite v && v >= 0. -> ()
    | Some v -> fail "warmup_seconds not finite and non-negative (%g)" v
    | None -> fail "missing numeric warmup_seconds");
    (* Throughput claims need a real measurement window behind them. *)
    match num "elapsed_seconds" doc with
    | Some v when Float.is_finite v && v >= 1.0 -> ()
    | Some v -> fail "elapsed_seconds must be at least 1.0s, got %g" v
    | None -> fail "missing numeric elapsed_seconds"
  end;
  (match num "throughput_rps" doc with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "throughput_rps not finite and positive (%g)" v
  | None -> fail "missing numeric throughput_rps");
  let latency =
    match Obs.Json.member "latency_seconds" doc with
    | Some (Obs.Json.Obj _ as l) -> l
    | Some _ -> fail "latency_seconds must be an object"
    | None -> fail "missing latency_seconds"
  in
  List.iter
    (fun key ->
      match num key latency with
      | Some v when Float.is_finite v && v >= 0. -> ()
      | Some v -> fail "latency_seconds.%s not finite (%g)" key v
      | None -> fail "missing numeric latency_seconds.%s" key)
    [ "p50"; "p90"; "p99"; "max" ];
  Printf.printf "%s: OK (%d clients, %d requests, %d errors, %d mismatches)\n"
    path clients total errors mismatches

(* --- probcons-chaos/1 --------------------------------------------------- *)

let validate_chaos path doc =
  let chaos =
    match Obs.Json.member "chaos" doc with
    | Some (Obs.Json.Obj _ as c) -> c
    | Some _ -> fail "chaos must be an object"
    | None -> fail "missing chaos report"
  in
  (match Obs.Json.member "plan" chaos with
  | None -> fail "missing chaos.plan"
  | Some plan -> (
      match Service.Chaos.plan_of_json plan with
      | Ok _ -> ()
      | Error msg -> fail "chaos.plan: %s" msg));
  let fault_count =
    match Obs.Json.member "counts" chaos with
    | Some (Obs.Json.Obj fields) ->
        List.iter
          (fun (name, v) ->
            match v with
            | Obs.Json.Int n when n >= 0 -> ()
            | Obs.Json.Int n ->
                fail "chaos.counts.%s must be non-negative, got %d" name n
            | _ -> fail "chaos.counts.%s must be an integer" name)
          fields;
        List.length fields
    | Some _ -> fail "chaos.counts must be an object"
    | None -> fail "missing chaos.counts"
  in
  (match Obs.Json.member "drained" doc with
  | Some (Obs.Json.Bool _) -> ()
  | Some _ -> fail "drained must be a boolean"
  | None -> fail "missing drained flag");
  (match int_field "connections_after" doc with
  | Some n when n >= 0 -> ()
  | Some n -> fail "connections_after must be non-negative, got %d" n
  | None -> fail "missing integer connections_after");
  let loadgen =
    match Obs.Json.member "loadgen" doc with
    | Some l -> l
    | None -> fail "missing embedded loadgen report"
  in
  (match str "schema" loadgen with
  | Some "probcons-loadgen/2" -> validate_loadgen ~version:2 (path ^ "#loadgen") loadgen
  | Some "probcons-loadgen/3" -> validate_loadgen ~version:3 (path ^ "#loadgen") loadgen
  | Some other ->
      fail "embedded loadgen has schema %S, want probcons-loadgen/2 or /3" other
  | None -> fail "embedded loadgen is missing its schema tag");
  Printf.printf "%s: OK (chaos soak, %d fault counters)\n" path fault_count

(* --- probcons-service-bench/1 ------------------------------------------- *)

(* Two loadgen/3 rows measured against the same in-process server:
   wire/2 serial lines first, wire/3 pipelined frames second. The
   artifact is a performance claim, so the claim is checked: both rows
   clean (no errors, no byte-identity mismatches), and wire/3 strictly
   faster than wire/2. *)
let validate_service_bench path doc =
  let rows =
    match Option.bind (Obs.Json.member "rows" doc) Obs.Json.to_list with
    | Some ([ _; _ ] as rows) -> rows
    | Some rows -> fail "want exactly 2 rows (wire/2, wire/3), got %d" (List.length rows)
    | None -> fail "missing rows list"
  in
  let check_row want_wire row =
    (match str "schema" row with
    | Some "probcons-loadgen/3" -> ()
    | Some other -> fail "row has schema %S, want probcons-loadgen/3" other
    | None -> fail "row is missing its schema tag");
    (match int_field "wire_version" row with
    | Some v when v = want_wire -> ()
    | Some v -> fail "row has wire_version %d, want %d" v want_wire
    | None -> fail "row is missing wire_version");
    (match int_field "errors" row with
    | Some 0 -> ()
    | _ -> fail "wire/%d row is not clean (errors != 0)" want_wire);
    (match int_field "mismatches" row with
    | Some 0 -> ()
    | _ -> fail "wire/%d row has byte-identity mismatches" want_wire);
    validate_loadgen ~version:3
      (Printf.sprintf "%s#wire%d" path want_wire)
      row;
    match num "throughput_rps" row with Some v -> v | None -> 0.
  in
  let r2, r3 =
    match rows with [ a; b ] -> (check_row 2 a, check_row 3 b) | _ -> assert false
  in
  (match num "speedup" doc with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "speedup not finite and positive (%g)" v
  | None -> fail "missing numeric speedup");
  if not (r3 > r2) then
    fail "wire/3 (%.0f req/s) is not strictly faster than wire/2 (%.0f req/s)" r3 r2;
  Printf.printf "%s: OK (wire/3 %.0f req/s vs wire/2 %.0f req/s, %.2fx)\n" path
    r3 r2 (r3 /. r2)

(* --- probcons-repro/1 ---------------------------------------------------- *)

(* The schema lives with the harness: [Dst.Repro.of_json] is total and
   rejects a wrong tag, missing seed/plan/invariant/ops fields, and
   non-finite timings — validating here with the same decoder the
   replay path uses means an artifact this tool accepts is one
   [tools/replay.exe] can actually load. *)
let validate_repro path doc =
  match Dst.Repro.of_json doc with
  | Error msg -> fail "%s" msg
  | Ok r ->
      if r.Dst.Repro.shrunk_units > r.Dst.Repro.original_units then
        fail "shrunk_units (%d) exceeds original_units (%d)"
          r.Dst.Repro.shrunk_units r.Dst.Repro.original_units;
      (match Dst.Registry.expand r.Dst.Repro.system with
      | Ok _ -> ()
      | Error msg -> fail "%s" msg);
      Printf.printf
        "%s: OK (repro: system %s, invariant %s, expect %s, %d -> %d units \
         in %d shrink attempts)\n"
        path r.Dst.Repro.system r.Dst.Repro.invariant
        (match r.Dst.Repro.expect with `Fail -> "fail" | `Pass -> "pass")
        r.Dst.Repro.original_units r.Dst.Repro.shrunk_units
        r.Dst.Repro.shrink_attempts

(* --- probcons-fleet-bench/1 ---------------------------------------------- *)

(* Paired rows per fleet size: an "incremental-update" row (sustained
   O(n) engine updates, drift refreshes included and counted) and a
   "full-recompute" row (from-scratch O(n^2) DP). The artifact is a
   performance claim — the whole point of the incremental engine — so
   the claim is checked: at every size >= 10^4 the incremental kernel
   must be at least 10x faster per operation. *)
let fleet_speedup_floor = 10.
let fleet_speedup_min_n = 10_000

let validate_fleet_bench path doc =
  (match num "drift_bound" doc with
  | Some v when Float.is_finite v && v >= 0. -> ()
  | Some v -> fail "drift_bound not finite and non-negative (%g)" v
  | None -> fail "missing numeric drift_bound");
  let rows =
    match Option.bind (Obs.Json.member "rows" doc) Obs.Json.to_list with
    | Some [] -> fail "rows is empty"
    | Some rows -> rows
    | None -> fail "missing rows list"
  in
  let per_size = Hashtbl.create 8 in
  List.iteri
    (fun i row ->
      let n =
        match int_field "n" row with
        | Some n when n >= 1 -> n
        | Some n -> fail "row %d: n must be positive, got %d" i n
        | None -> fail "row %d: missing integer n" i
      in
      let kernel =
        match str "kernel" row with
        | Some ("incremental-update" | "full-recompute") as k -> Option.get k
        | Some other -> fail "row %d: unknown kernel %S" i other
        | None -> fail "row %d: missing kernel" i
      in
      (match int_field "ops" row with
      | Some ops when ops >= 1 -> ()
      | _ -> fail "row %d: ops must be a positive integer" i);
      (match int_field "refreshes" row with
      | Some r when r >= 0 -> ()
      | _ -> fail "row %d: refreshes must be a non-negative integer" i);
      let ns =
        match num "ns_per_op" row with
        | Some v when Float.is_finite v && v > 0. -> v
        | Some v -> fail "row %d: ns_per_op not finite and positive (%g)" i v
        | None -> fail "row %d: missing numeric ns_per_op" i
      in
      (match num "ops_per_sec" row with
      | Some v when Float.is_finite v && v > 0. -> ()
      | Some v -> fail "row %d: ops_per_sec not finite and positive (%g)" i v
      | None -> fail "row %d: missing numeric ops_per_sec" i);
      if Hashtbl.mem per_size (n, kernel) then
        fail "row %d: duplicate (%d, %s) row" i n kernel;
      Hashtbl.replace per_size (n, kernel) ns)
    rows;
  let sizes =
    Hashtbl.fold (fun (n, _) _ acc -> if List.mem n acc then acc else n :: acc)
      per_size []
    |> List.sort compare
  in
  let checked =
    List.map
      (fun n ->
        let lookup kernel =
          match Hashtbl.find_opt per_size (n, kernel) with
          | Some ns -> ns
          | None -> fail "n=%d: missing %S row" n kernel
        in
        let inc = lookup "incremental-update" in
        let full = lookup "full-recompute" in
        let speedup = full /. inc in
        if n >= fleet_speedup_min_n && speedup < fleet_speedup_floor then
          fail
            "n=%d: incremental (%.0f ns/op) is only %.1fx the full recompute \
             (%.0f ns/op); the floor is %.0fx"
            n inc speedup full fleet_speedup_floor;
        (n, speedup))
      sizes
  in
  Printf.printf "%s: OK (fleet bench, %d sizes: %s)\n" path (List.length sizes)
    (String.concat ", "
       (List.map
          (fun (n, s) -> Printf.sprintf "n=%d %.0fx" n s)
          checked))

(* --- probcons-dynamic-bench/1 -------------------------------------------- *)

(* Paired rows per fleet size: a "horizon-exact" row (from-scratch DP
   every trajectory round) and a "horizon-incremental" row (changed
   rounds through the incremental Poisson-binomial engine). Two claims
   are archived and both are checked: at every size >= 100 the
   incremental kernel is at least 5x faster per round, and its
   trajectory never deviates from the exact one by more than 1e-9 in
   p_live. *)
let dynamic_speedup_floor = 5.
let dynamic_speedup_min_n = 100
let dynamic_max_diff = 1e-9

let validate_dynamic_bench path doc =
  (match num "horizon" doc with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "horizon not finite and positive (%g)" v
  | None -> fail "missing numeric horizon");
  let rows =
    match Option.bind (Obs.Json.member "rows" doc) Obs.Json.to_list with
    | Some [] -> fail "rows is empty"
    | Some rows -> rows
    | None -> fail "missing rows list"
  in
  let per_size = Hashtbl.create 8 in
  List.iteri
    (fun i row ->
      let n =
        match int_field "n" row with
        | Some n when n >= 1 -> n
        | Some n -> fail "row %d: n must be positive, got %d" i n
        | None -> fail "row %d: missing integer n" i
      in
      let kernel =
        match str "kernel" row with
        | Some ("horizon-exact" | "horizon-incremental") as k -> Option.get k
        | Some other -> fail "row %d: unknown kernel %S" i other
        | None -> fail "row %d: missing kernel" i
      in
      (match int_field "rounds" row with
      | Some r when r >= 1 -> ()
      | _ -> fail "row %d: rounds must be a positive integer" i);
      let ms =
        match num "ms_per_round" row with
        | Some v when Float.is_finite v && v > 0. -> v
        | Some v ->
            fail "row %d: ms_per_round not finite and positive (%g)" i v
        | None -> fail "row %d: missing numeric ms_per_round" i
      in
      (match num "rounds_per_sec" row with
      | Some v when Float.is_finite v && v > 0. -> ()
      | Some v ->
          fail "row %d: rounds_per_sec not finite and positive (%g)" i v
      | None -> fail "row %d: missing numeric rounds_per_sec" i);
      (match num "max_diff" row with
      | Some v when Float.is_finite v && v >= 0. && v <= dynamic_max_diff -> ()
      | Some v ->
          fail
            "row %d: max_diff %g outside [0, %g] — the incremental \
             trajectory drifted from the exact one"
            i v dynamic_max_diff
      | None -> fail "row %d: missing numeric max_diff" i);
      if Hashtbl.mem per_size (n, kernel) then
        fail "row %d: duplicate (%d, %s) row" i n kernel;
      Hashtbl.replace per_size (n, kernel) ms)
    rows;
  let sizes =
    Hashtbl.fold (fun (n, _) _ acc -> if List.mem n acc then acc else n :: acc)
      per_size []
    |> List.sort compare
  in
  let checked =
    List.map
      (fun n ->
        let lookup kernel =
          match Hashtbl.find_opt per_size (n, kernel) with
          | Some ms -> ms
          | None -> fail "n=%d: missing %S row" n kernel
        in
        let inc = lookup "horizon-incremental" in
        let exact = lookup "horizon-exact" in
        let speedup = exact /. inc in
        if n >= dynamic_speedup_min_n && speedup < dynamic_speedup_floor then
          fail
            "n=%d: incremental (%.3f ms/round) is only %.1fx the exact \
             kernel (%.3f ms/round); the floor is %.0fx"
            n inc speedup exact dynamic_speedup_floor;
        (n, speedup))
      sizes
  in
  Printf.printf "%s: OK (dynamic bench, %d sizes: %s)\n" path
    (List.length sizes)
    (String.concat ", "
       (List.map
          (fun (n, s) -> Printf.sprintf "n=%d %.0fx" n s)
          checked))

(* The replication-availability artifact (probcons replicate --measure):
   measured per-window success rates against the analytical prediction.
   The gate is the experiment's own tolerance — plus the absolute
   claim that no acknowledged write was lost. *)
let repl_avail_min_windows = 3

let validate_repl_avail path doc =
  (match int_field "replicas" doc with
  | Some n when n >= 1 && n <= 9 -> ()
  | Some n -> fail "replicas %d outside [1, 9]" n
  | None -> fail "missing integer replicas");
  (match Obs.Json.member "process" doc with
  | Some p -> (
      match Faultmodel.Failure_process.of_json p with
      | Ok _ -> ()
      | Error msg -> fail "bad process: %s" msg)
  | None -> fail "missing process");
  let tolerance =
    match num "tolerance" doc with
    | Some v when Float.is_finite v && v > 0. && v <= 1. -> v
    | Some v -> fail "tolerance not in (0, 1] (%g)" v
    | None -> fail "missing numeric tolerance"
  in
  let windows =
    match Option.bind (Obs.Json.member "windows" doc) Obs.Json.to_list with
    | Some l when List.length l >= repl_avail_min_windows -> l
    | Some l ->
        fail "only %d windows; need at least %d" (List.length l)
          repl_avail_min_windows
    | None -> fail "missing windows list"
  in
  List.iteri
    (fun i w ->
      let prob key =
        match num key w with
        | Some v when Float.is_finite v && v >= 0. && v <= 1. -> v
        | Some v -> fail "window %d: %s %g outside [0, 1]" i key v
        | None -> fail "window %d: missing numeric %s" i key
      in
      ignore (prob "measured");
      ignore (prob "predicted");
      match (int_field "ok" w, int_field "total" w) with
      | Some ok, Some total when ok >= 0 && ok <= total && total >= 1 -> ()
      | _ -> fail "window %d: need integers 0 <= ok <= total" i)
    windows;
  let abs_error =
    match num "abs_error" doc with
    | Some v when Float.is_finite v && v >= 0. -> v
    | Some v -> fail "abs_error not finite and non-negative (%g)" v
    | None -> fail "missing numeric abs_error"
  in
  if abs_error > tolerance then
    fail
      "measured availability diverged from the prediction: abs_error %.4f > \
       tolerance %g"
      abs_error tolerance;
  (match int_field "writes_acked" doc with
  | Some n when n >= 1 -> ()
  | Some n -> fail "writes_acked %d — the run never acknowledged a write" n
  | None -> fail "missing integer writes_acked");
  (match int_field "writes_lost" doc with
  | Some 0 -> ()
  | Some n -> fail "%d acknowledged writes lost" n
  | None -> fail "missing integer writes_lost");
  (match int_field "kills" doc with
  | Some n when n >= 1 -> ()
  | Some n -> fail "kills %d — the schedule never exercised a failure" n
  | None -> fail "missing integer kills");
  Printf.printf "%s: OK (repl-avail, %d windows, abs_error %.4f <= %g)\n" path
    (List.length windows) abs_error tolerance

(* --- Dispatch ----------------------------------------------------------- *)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: validate_bench FILE.json";
        exit 2
  in
  let doc =
    match Obs.Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: %s" path msg
  in
  match str "schema" doc with
  | Some "probcons-bench/2" -> validate_bench path doc
  | Some "probcons-loadgen/1" -> validate_loadgen ~version:1 path doc
  | Some "probcons-loadgen/2" -> validate_loadgen ~version:2 path doc
  | Some "probcons-loadgen/3" -> validate_loadgen ~version:3 path doc
  | Some "probcons-chaos/1" -> validate_chaos path doc
  | Some "probcons-service-bench/1" -> validate_service_bench path doc
  | Some "probcons-repro/1" -> validate_repro path doc
  | Some "probcons-fleet-bench/1" -> validate_fleet_bench path doc
  | Some "probcons-dynamic-bench/1" -> validate_dynamic_bench path doc
  | Some "probcons-repl-avail/1" -> validate_repl_avail path doc
  | Some other -> fail "unexpected schema %S" other
  | None -> fail "missing schema tag"
