lib/prob/math_utils.mli:
