let kl_bernoulli a p =
  if a < 0. || a > 1. || p <= 0. || p >= 1. then
    invalid_arg "Bounds.kl_bernoulli: arguments out of range";
  let term x y = if x = 0. then 0. else x *. log (x /. y) in
  term a p +. term (1. -. a) (1. -. p)

let hoeffding_tail_ge ~n ~p ~k =
  let a = float_of_int k /. float_of_int n in
  if a <= p then 1.
  else exp (-2. *. float_of_int n *. ((a -. p) ** 2.))

let chernoff_kl_tail_ge ~n ~p ~k =
  let a = float_of_int k /. float_of_int n in
  if a <= p then 1. else exp (-.float_of_int n *. kl_bernoulli a p)

type comparison = {
  exact : float;
  chernoff : float;
  hoeffding : float;
  chernoff_ratio : float;
  hoeffding_ratio : float;
}

let compare_tail ~n ~p ~k =
  let exact = Distribution.binomial_tail_ge ~n ~p k in
  let chernoff = chernoff_kl_tail_ge ~n ~p ~k in
  let hoeffding = hoeffding_tail_ge ~n ~p ~k in
  let ratio bound = if exact = 0. then infinity else bound /. exact in
  {
    exact;
    chernoff;
    hoeffding;
    chernoff_ratio = ratio chernoff;
    hoeffding_ratio = ratio hoeffding;
  }
