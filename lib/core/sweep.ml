let pct = Prob.Nines.percent_string

let m_cells = Obs.Metrics.counter ~family:"sweep" "cells"
let m_cell_seconds = Obs.Metrics.histogram ~family:"sweep" "cell_seconds"

(* Every sweep row/cell funnels through this, so cells/sec is just
   [cells / Σ cell_seconds] from one snapshot. *)
let timed_cell f =
  Obs.Metrics.incr m_cells;
  Obs.Span.time m_cell_seconds f

(* Grid cells are independent Analysis.run instances: evaluate the
   flattened (row, col) cell list on the domain pool and reassemble the
   table in order. Cells force ~domains:1 on their inner analysis — the
   parallelism budget is spent across cells, and Pool makes nested
   calls sequential anyway. *)
let grid_cells ?domains ~rows ~cols cell =
  let n_rows = List.length rows and n_cols = List.length cols in
  let rows_a = Array.of_list rows and cols_a = Array.of_list cols in
  let flat =
    Parallel.Pool.map ?domains (n_rows * n_cols) (fun i ->
        timed_cell (fun () -> cell rows_a.(i / n_cols) cols_a.(i mod n_cols)))
  in
  List.init n_rows (fun r ->
      List.init n_cols (fun c -> flat.((r * n_cols) + c)))

(* Sweep cells answer through the registry — the same
   scenario-to-result path the CLI and the query service use — so a
   grid cell and a served reply for the same scenario are the same
   number by construction. Cells that fail model validation (e.g. a
   PBFT column at n=3) render as "-". *)
let run_cell s =
  match Registry.analyze ~domains:1 s with
  | Ok r -> r
  | Error msg -> invalid_arg ("Sweep: " ^ msg)

let scenario_grid ?domains ?(row_label = "scenario") ~base ~rows ~cols () =
  let header = row_label :: List.map fst cols in
  let t = Report.create ~header in
  let cells =
    grid_cells ?domains ~rows ~cols (fun (_, row) (_, col) ->
        match Registry.analyze ~domains:1 (col (row base)) with
        | Ok r -> pct r.Analysis.p_safe_live
        | Error _ -> "-")
  in
  List.iter2
    (fun (label, _) row -> Report.add_row t (label :: row))
    rows cells;
  t

let uniform_axes ~ns ~ps =
  ( List.map
      (fun n -> (string_of_int n, Scenario.with_mix [ (n, 0.01) ]))
      ns,
    List.map (fun p -> (Printf.sprintf "p=%g" p, Scenario.with_p p)) ps )

let raft_grid ?domains ~ns ~ps () =
  let rows, cols = uniform_axes ~ns ~ps in
  let base = Scenario.uniform ~protocol:"raft" ~n:3 ~p:0.01 () in
  scenario_grid ?domains ~row_label:"N" ~base ~rows ~cols ()

let pbft_grid ?domains ~ns ~ps () =
  let rows, cols = uniform_axes ~ns ~ps in
  let base = Scenario.uniform ~protocol:"pbft" ~n:4 ~p:0.01 () in
  scenario_grid ?domains ~row_label:"N" ~base ~rows ~cols ()

let pbft_safety_liveness_grid ?domains ~ns ~p () =
  let t = Report.create ~header:[ "N"; "safe"; "live"; "safe&live"; "safe-or-accountable" ] in
  let rows =
    Parallel.Pool.map ?domains (List.length ns) (fun i ->
        timed_cell @@ fun () ->
        let n = List.nth ns i in
        let s = Scenario.uniform ~protocol:"pbft" ~n ~p () in
        let r = run_cell s in
        let forensic = run_cell (Scenario.with_protocol "pbft-forensics" s) in
        [
          string_of_int n;
          pct r.Analysis.p_safe;
          pct r.Analysis.p_live;
          pct r.Analysis.p_safe_live;
          pct forensic.Analysis.p_safe;
        ])
  in
  Array.iter (Report.add_row t) rows;
  t

let timeline ?domains fleet ~times =
  let n = Faultmodel.Fleet.size fleet in
  let proto = Raft_model.protocol (Raft_model.default n) in
  let t = Report.create ~header:[ "mission time (h)"; "safe&live"; "nines" ] in
  let rows =
    Parallel.Pool.map ?domains (List.length times) (fun i ->
        timed_cell @@ fun () ->
        let at = List.nth times i in
        let r = Analysis.run ~at ~domains:1 proto fleet in
        [
          Printf.sprintf "%.0f" at;
          pct r.Analysis.p_safe_live;
          Printf.sprintf "%.2f" (Prob.Nines.of_prob r.Analysis.p_safe_live);
        ])
  in
  Array.iter (Report.add_row t) rows;
  t

(* Time-axis grid: one row per scenario variant, one column per horizon
   round, each cell the round's P(live) from the registry's trajectory
   path — so a sweep cell and a served horizon reply are the same
   number by construction. *)
let horizon_grid ?domains ?(row_label = "scenario") ~base ~rows () =
  let horizon =
    match Scenario.horizon base with
    | Some h -> h
    | None -> invalid_arg "Sweep.horizon_grid: base scenario has no horizon"
  in
  let rounds =
    Option.value (Scenario.rounds base) ~default:Scenario.default_rounds
  in
  let times = Analysis.horizon_times ~horizon ~rounds in
  let header =
    row_label :: List.map (fun at -> Printf.sprintf "t=%.0fh" at) times
  in
  let t = Report.create ~header in
  let rows_a = Array.of_list rows in
  let cells =
    Parallel.Pool.map ?domains (Array.length rows_a) (fun i ->
        timed_cell @@ fun () ->
        let _, row = rows_a.(i) in
        match Registry.analyze_horizon ~domains:1 (row base) with
        | Ok points ->
            List.map
              (fun (hp : Analysis.horizon_point) ->
                pct hp.Analysis.result.Analysis.p_live)
              points
        | Error _ -> List.map (fun _ -> "-") times)
  in
  Array.iteri
    (fun i row -> Report.add_row t (fst rows_a.(i) :: row))
    cells;
  t

let min_cluster_frontier ?domains ~targets ~ps () =
  let header = "target" :: List.map (fun p -> Printf.sprintf "p=%g" p) ps in
  let t = Report.create ~header in
  let cells =
    grid_cells ?domains ~rows:targets ~cols:ps (fun target p ->
        match Equivalence.min_raft_cluster ~target ~p () with
        | Some e -> string_of_int e.Equivalence.n
        | None -> "-")
  in
  List.iter2
    (fun target row -> Report.add_row t (pct target :: row))
    targets cells;
  t
