(* Tests for the faultmodel library: curves, nodes, fleets, correlated
   failures, telemetry estimation. *)

open Faultmodel

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let hours_per_year = 8766.

(* --- Fault_curve ---------------------------------------------------- *)

let test_constant_clamp () =
  check_float "clamped high" 1. (Fault_curve.eval (Fault_curve.constant 2.) 5.);
  check_float "clamped low" 0. (Fault_curve.eval (Fault_curve.constant (-1.)) 5.);
  check_float "time-invariant" 0.25 (Fault_curve.eval (Fault_curve.constant 0.25) 1e9)

let test_exponential_curve () =
  let curve = Fault_curve.Exponential { rate = 1e-4 } in
  check_float "at zero" 0. (Fault_curve.eval curve 0.);
  check_float ~eps:1e-12 "one mean" (1. -. exp (-1.)) (Fault_curve.eval curve 1e4);
  Alcotest.(check bool) "monotone" true
    (Fault_curve.eval curve 100. < Fault_curve.eval curve 200.)

let test_afr_roundtrip () =
  List.iter
    (fun afr ->
      check_float ~eps:1e-12 (Printf.sprintf "afr %g" afr) afr
        (Fault_curve.afr (Fault_curve.of_afr afr)))
    [ 0.01; 0.04; 0.08; 0.5 ]

let test_bathtub_piecewise () =
  let curve =
    Fault_curve.Bathtub
      {
        infant = Fault_curve.constant 0.3;
        useful = Fault_curve.constant 0.01;
        wearout = Fault_curve.constant 0.6;
        t1 = 100.;
        t2 = 1000.;
      }
  in
  check_float "infant region" 0.3 (Fault_curve.eval curve 50.);
  check_float "useful region" 0.01 (Fault_curve.eval curve 500.);
  check_float "wearout region" 0.6 (Fault_curve.eval curve 2000.)

let test_empirical_interpolation () =
  let curve = Fault_curve.Empirical [| (0., 0.); (10., 0.5); (20., 1.) |] in
  check_float "below range" 0. (Fault_curve.eval curve (-5.));
  check_float "above range" 1. (Fault_curve.eval curve 100.);
  check_float "exact point" 0.5 (Fault_curve.eval curve 10.);
  check_float "interpolated" 0.25 (Fault_curve.eval curve 5.);
  check_float "interpolated upper" 0.75 (Fault_curve.eval curve 15.)

let test_empirical_empty_and_degenerate () =
  check_float "empty" 0. (Fault_curve.eval (Fault_curve.Empirical [||]) 5.);
  (* Duplicate time points must not divide by zero. *)
  let dup = Fault_curve.Empirical [| (5., 0.2); (5., 0.8) |] in
  let v = Fault_curve.eval dup 5. in
  Alcotest.(check bool) "degenerate segment" true (v = 0.2 || v = 0.8)

let test_scaled_curve () =
  let base = Fault_curve.constant 0.4 in
  check_float "scaled" 0.2 (Fault_curve.eval (Fault_curve.Scaled { factor = 0.5; curve = base }) 1.);
  check_float "scaled clamped" 1.
    (Fault_curve.eval (Fault_curve.Scaled { factor = 10.; curve = base }) 1.)

let test_shifted_curve () =
  let curve =
    Fault_curve.Shifted { offset = 100.; curve = Fault_curve.Exponential { rate = 0.01 } }
  in
  check_float "before install" 0. (Fault_curve.eval curve 50.);
  check_float ~eps:1e-12 "age restarts"
    (Fault_curve.eval (Fault_curve.Exponential { rate = 0.01 }) 30.)
    (Fault_curve.eval curve 130.)

let test_hazard_exponential_constant () =
  let curve = Fault_curve.Exponential { rate = 3e-5 } in
  check_float "hazard is the rate" 3e-5 (Fault_curve.hazard_rate curve 0.);
  check_float "hazard time-invariant" 3e-5 (Fault_curve.hazard_rate curve 5000.)

let test_hazard_numeric_matches_analytic () =
  (* The generic central-difference path on a Scaled exponential must
     approximate the analytic hazard of the underlying curve. *)
  let rate = 1e-4 in
  let curve = Fault_curve.Scaled { factor = 1.0; curve = Exponential { rate } } in
  let h = Fault_curve.hazard_rate curve 1000. in
  Alcotest.(check bool) "within 1%" true (Float.abs (h -. rate) /. rate < 0.01)

let test_window_probability () =
  let curve = Fault_curve.Exponential { rate = 1e-3 } in
  (* Memorylessness: window probability is independent of the start. *)
  let w1 = Fault_curve.window_probability curve ~start:0. ~duration:100. in
  let w2 = Fault_curve.window_probability curve ~start:5000. ~duration:100. in
  Alcotest.(check bool) "memoryless" true (Float.abs (w1 -. w2) < 1e-9);
  check_float ~eps:1e-12 "value" (1. -. exp (-0.1)) w1;
  (* A dead node fails in every window. *)
  check_float "already failed" 1.
    (Fault_curve.window_probability (Fault_curve.constant 1.) ~start:0. ~duration:1.)

(* --- Node ----------------------------------------------------------- *)

let test_node_byz_split () =
  let node = Node.make ~id:0 ~byz_fraction:0.25 (Fault_curve.constant 0.08) in
  check_float "fault" 0.08 (Node.fault_probability node);
  check_float "byz" 0.02 (Node.byz_probability node);
  check_float "crash" 0.06 (Node.crash_probability node);
  check_float ~eps:1e-12 "split sums" (Node.fault_probability node)
    (Node.byz_probability node +. Node.crash_probability node)

let test_node_validation () =
  Alcotest.check_raises "bad byz fraction"
    (Invalid_argument "Node.make: byz_fraction must be in [0, 1]") (fun () ->
      ignore (Node.make ~id:0 ~byz_fraction:1.5 (Fault_curve.constant 0.1)))

let test_node_default_label () =
  let node = Node.make ~id:3 (Fault_curve.constant 0.1) in
  Alcotest.(check string) "label" "node-3" node.Node.label

(* --- Fleet ----------------------------------------------------------- *)

let test_fleet_uniform () =
  let fleet = Fleet.uniform ~n:5 ~p:0.02 () in
  Alcotest.(check int) "size" 5 (Fleet.size fleet);
  Array.iter (fun p -> check_float "prob" 0.02 p) (Fleet.fault_probs fleet);
  check_float ~eps:1e-12 "expected failures" 0.1 (Fleet.expected_failures fleet)

let test_fleet_mixed_order () =
  let fleet = Fleet.mixed [ (2, 0.08); (3, 0.01) ] in
  Alcotest.(check int) "size" 5 (Fleet.size fleet);
  let probs = Fleet.fault_probs fleet in
  check_float "first group" 0.08 probs.(0);
  check_float "first group end" 0.08 probs.(1);
  check_float "second group" 0.01 probs.(2)

let test_fleet_reindexes () =
  let nodes = [ Node.make ~id:99 (Fault_curve.constant 0.1) ] in
  let fleet = Fleet.of_nodes nodes in
  Alcotest.(check int) "reindexed" 0 (Fleet.node fleet 0).Node.id

let test_fleet_most_reliable () =
  let fleet = Fleet.mixed [ (2, 0.08); (2, 0.01); (1, 0.04) ] in
  Alcotest.(check (list int)) "sorted by reliability" [ 2; 3; 4; 0; 1 ]
    (Fleet.most_reliable fleet)

let test_fleet_empty_raises () =
  Alcotest.check_raises "empty mixed" (Invalid_argument "Fleet.mixed: empty fleet")
    (fun () -> ignore (Fleet.mixed []));
  Alcotest.check_raises "uniform zero"
    (Invalid_argument "Fleet.uniform: n must be positive") (fun () ->
      ignore (Fleet.uniform ~n:0 ~p:0.1 ()))

let test_fleet_byz_probs () =
  let fleet = Fleet.uniform ~byz_fraction:1.0 ~n:3 ~p:0.05 () in
  Array.iter (fun p -> check_float "all byz" 0.05 p) (Fleet.byz_probs fleet);
  Array.iter (fun p -> check_float "no crash" 0. p) (Fleet.crash_probs fleet)

(* --- Correlation ------------------------------------------------------ *)

let test_independent_marginal () =
  let fleet = Fleet.uniform ~n:4 ~p:0.3 () in
  check_float "marginal" 0.3 (Correlation.marginal_probability Correlation.Independent fleet 2)

let test_domain_marginal_formula () =
  let fleet = Fleet.uniform ~n:4 ~p:0.1 () in
  let model =
    Correlation.Domains
      [ { members = [ 0; 1 ]; shock_probability = 0.2; conditional_failure = 0.5; byzantine_shock = false } ]
  in
  (* Node 0: survives iff own fault misses (0.9) and shock-kill misses
     (1 - 0.2*0.5 = 0.9): p_fail = 1 - 0.81. *)
  check_float ~eps:1e-12 "covered node" (1. -. 0.81)
    (Correlation.marginal_probability model fleet 0);
  check_float "uncovered node" 0.1 (Correlation.marginal_probability model fleet 3)

let test_domain_sampling_matches_marginal () =
  let fleet = Fleet.uniform ~n:4 ~p:0.1 () in
  let model =
    Correlation.Domains
      [ { members = [ 0; 1 ]; shock_probability = 0.2; conditional_failure = 1.0; byzantine_shock = false } ]
  in
  let rng = Prob.Rng.create 31 in
  let trials = 40_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    if (Correlation.sample model fleet rng).(0) then incr hits
  done;
  let empirical = float_of_int !hits /. float_of_int trials in
  let expected = Correlation.marginal_probability model fleet 0 in
  Alcotest.(check bool) "within 1.5%" true (Float.abs (empirical -. expected) < 0.015)

let test_correlation_positive_under_shock () =
  let fleet = Fleet.uniform ~n:4 ~p:0.05 () in
  let model =
    Correlation.Domains
      [ { members = [ 0; 1 ]; shock_probability = 0.3; conditional_failure = 1.0; byzantine_shock = false } ]
  in
  let rng = Prob.Rng.create 32 in
  let rho = Correlation.pairwise_correlation model fleet rng 0 1 in
  Alcotest.(check bool) "strongly positive" true (rho > 0.5)

let test_correlation_zero_independent () =
  let fleet = Fleet.uniform ~n:4 ~p:0.2 () in
  let rng = Prob.Rng.create 33 in
  let rho = Correlation.pairwise_correlation Correlation.Independent fleet rng 0 1 in
  Alcotest.(check bool) "near zero" true (Float.abs rho < 0.05)

let test_mixture_marginal () =
  let fleet = Fleet.uniform ~n:3 ~p:0.1 () in
  let model = Correlation.Mixture [ (0.5, 1.0); (0.5, 3.0) ] in
  (* Expected marginal: 0.5*0.1 + 0.5*0.3 = 0.2. *)
  check_float ~eps:1e-12 "mixture marginal" 0.2
    (Correlation.marginal_probability model fleet 0);
  let rng = Prob.Rng.create 34 in
  let trials = 40_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    if (Correlation.sample model fleet rng).(0) then incr hits
  done;
  Alcotest.(check bool) "sampling agrees" true
    (Float.abs ((float_of_int !hits /. float_of_int trials) -. 0.2) < 0.015)

(* --- Telemetry --------------------------------------------------------- *)

let test_observe_counts () =
  let rng = Prob.Rng.create 41 in
  let curve = Fault_curve.of_afr 0.5 in
  let obs = Telemetry.observe rng curve ~devices:1000 ~window:hours_per_year in
  Alcotest.(check bool) "some failures" true (obs.Telemetry.failures > 300);
  Alcotest.(check bool) "not all failed" true (obs.Telemetry.failures < 700);
  Alcotest.(check int) "lifetimes recorded" obs.Telemetry.failures
    (Array.length obs.Telemetry.lifetimes);
  Alcotest.(check bool) "exposure bounded" true
    (obs.Telemetry.device_hours <= 1000. *. hours_per_year +. 1e-6)

let test_afr_estimation_accuracy () =
  let rng = Prob.Rng.create 42 in
  let truth = 0.08 in
  let curve = Fault_curve.of_afr truth in
  let obs = Telemetry.observe rng curve ~devices:20_000 ~window:hours_per_year in
  let estimate = Telemetry.afr_of_observation obs in
  Alcotest.(check bool) "estimate within 10% relative" true
    (Float.abs (estimate -. truth) /. truth < 0.1);
  let low, high = Telemetry.afr_confidence obs in
  Alcotest.(check bool) "truth in CI" true (truth >= low && truth <= high)

let test_fit_exponential_censored () =
  (* With a short window most lifetimes are censored; the
     failures/device-hours estimator must stay unbiased. *)
  let rng = Prob.Rng.create 43 in
  let rate = 1e-5 in
  let curve = Fault_curve.Exponential { rate } in
  let obs = Telemetry.observe rng curve ~devices:50_000 ~window:2000. in
  match Telemetry.fit_exponential obs with
  | Fault_curve.Exponential { rate = fitted } ->
      Alcotest.(check bool) "rate within 15%" true
        (Float.abs (fitted -. rate) /. rate < 0.15)
  | _ -> Alcotest.fail "expected exponential"

let test_fit_auto_prefers_weibull_when_aging () =
  let rng = Prob.Rng.create 44 in
  let curve = Fault_curve.Weibull { shape = 3.; scale = 4000. } in
  (* Long window: nearly all lifetimes observed, so the shape is
     identifiable. *)
  let obs = Telemetry.observe rng curve ~devices:3000 ~window:30_000. in
  (match Telemetry.fit_auto obs with
  | Fault_curve.Weibull { shape; _ } ->
      Alcotest.(check bool) "shape recovered" true (Float.abs (shape -. 3.) < 0.3)
  | other ->
      Alcotest.failf "expected weibull, got %a" Fault_curve.pp other)

let test_fit_auto_prefers_exponential_when_memoryless () =
  let rng = Prob.Rng.create 45 in
  let curve = Fault_curve.Exponential { rate = 1e-3 } in
  let obs = Telemetry.observe rng curve ~devices:3000 ~window:30_000. in
  match Telemetry.fit_auto obs with
  | Fault_curve.Exponential _ -> ()
  | other -> Alcotest.failf "expected exponential, got %a" Fault_curve.pp other

let test_sample_lifetime_constant_curve () =
  let rng = Prob.Rng.create 46 in
  (* A constant curve samples as its memoryless equivalent. *)
  let curve = Fault_curve.constant 0.5 in
  let n = 20_000 in
  let within = ref 0 in
  for _ = 1 to n do
    if Telemetry.sample_lifetime rng curve < hours_per_year then incr within
  done;
  let fraction = float_of_int !within /. float_of_int n in
  Alcotest.(check bool) "one-year failure fraction ~0.5" true
    (Float.abs (fraction -. 0.5) < 0.02)

let test_sample_lifetime_numeric_inversion () =
  let rng = Prob.Rng.create 47 in
  (* A monotone empirical CDF exercises the inverse-transform fallback
     (no closed-form sampler); samples' empirical CDF must match it. *)
  let curve =
    Fault_curve.Empirical [| (0., 0.); (1000., 0.3); (5000., 0.8); (10_000., 1.) |]
  in
  let n = 10_000 in
  List.iter
    (fun probe ->
      let expected = Fault_curve.eval curve probe in
      let within = ref 0 in
      for _ = 1 to n do
        if Telemetry.sample_lifetime rng curve < probe then incr within
      done;
      let fraction = float_of_int !within /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "CDF matches at t=%g" probe)
        true
        (Float.abs (fraction -. expected) < 0.02))
    [ 500.; 1000.; 3000.; 8000. ]

let test_censored_weibull_fit () =
  (* Ground truth wear-out Weibull(3, 20000h) observed for only 8000h:
     ~94% of lifetimes are censored. The censoring-aware fit must
     recover the shape; the naive fit on failures alone is badly biased
     (it only sees the early-failure tail). *)
  let rng = Prob.Rng.create 49 in
  let truth = Fault_curve.Weibull { shape = 3.; scale = 20_000. } in
  let obs = Telemetry.observe rng truth ~devices:20_000 ~window:8_000. in
  Alcotest.(check bool) "mostly censored" true
    (obs.Telemetry.failures < obs.Telemetry.devices / 2);
  (match Telemetry.fit_weibull obs with
  | Fault_curve.Weibull { shape; scale } ->
      Alcotest.(check bool)
        (Printf.sprintf "shape %.2f ~ 3" shape)
        true
        (Float.abs (shape -. 3.) < 0.25);
      Alcotest.(check bool)
        (Printf.sprintf "scale %.0f ~ 20000" scale)
        true
        (Float.abs (scale -. 20_000.) /. 20_000. < 0.1)
  | other -> Alcotest.failf "expected weibull, got %a" Fault_curve.pp other);
  (* The uncensored fit underestimates the scale dramatically. *)
  match Telemetry.fit_weibull_uncensored obs with
  | Fault_curve.Weibull { scale; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "naive scale %.0f is biased low" scale)
        true (scale < 12_000.)
  | other -> Alcotest.failf "expected weibull, got %a" Fault_curve.pp other

let test_censored_fit_reduces_to_uncensored () =
  (* Long window (nothing censored): both fits coincide. *)
  let rng = Prob.Rng.create 50 in
  let truth = Fault_curve.Weibull { shape = 2.; scale = 1_000. } in
  let obs = Telemetry.observe rng truth ~devices:5_000 ~window:1e7 in
  Alcotest.(check int) "all failed" obs.Telemetry.devices obs.Telemetry.failures;
  match (Telemetry.fit_weibull obs, Telemetry.fit_weibull_uncensored obs) with
  | Fault_curve.Weibull a, Fault_curve.Weibull b ->
      check_float ~eps:1e-6 "same shape" b.shape a.shape;
      check_float ~eps:1e-3 "same scale" b.scale a.scale
  | _ -> Alcotest.fail "expected weibull fits"

(* --- End-to-end telemetry pipeline ------------------------------------- *)

let test_telemetry_to_analysis_pipeline () =
  (* The full loop a production deployment would run: observe device
     telemetry, fit per-class curves, build the fleet from the fitted
     curves, analyze. The analysis on fitted curves must closely match
     the analysis on ground truth. *)
  let rng = Prob.Rng.create 48 in
  let truth_reliable = Fault_curve.of_afr 0.01 in
  let truth_flaky = Fault_curve.of_afr 0.08 in
  let fit truth =
    let obs = Telemetry.observe rng truth ~devices:30_000 ~window:hours_per_year in
    Telemetry.fit_exponential obs
  in
  let fitted_reliable = fit truth_reliable and fitted_flaky = fit truth_flaky in
  let fleet_of reliable flaky =
    Faultmodel.Fleet.of_nodes
      (List.init 7 (fun id ->
           Faultmodel.Node.make ~id (if id < 4 then flaky else reliable)))
  in
  let analyze fleet =
    (Probcons.Analysis.run
       (Probcons.Raft_model.protocol (Probcons.Raft_model.default 7))
       fleet).Probcons.Analysis.p_safe_live
  in
  let on_truth = analyze (fleet_of truth_reliable truth_flaky) in
  let on_fitted = analyze (fleet_of fitted_reliable fitted_flaky) in
  (* 30k device-years pin the AFR tightly; the resulting nines agree to
     ~the third significant digit of the failure probability. *)
  Alcotest.(check bool)
    (Printf.sprintf "fitted %.6f vs truth %.6f" on_fitted on_truth)
    true
    (Float.abs (on_fitted -. on_truth) < 0.1 *. (1. -. on_truth))

let suite =
  [
    Alcotest.test_case "constant clamp" `Quick test_constant_clamp;
    Alcotest.test_case "exponential curve" `Quick test_exponential_curve;
    Alcotest.test_case "afr roundtrip" `Quick test_afr_roundtrip;
    Alcotest.test_case "bathtub piecewise" `Quick test_bathtub_piecewise;
    Alcotest.test_case "empirical interpolation" `Quick test_empirical_interpolation;
    Alcotest.test_case "empirical degenerate" `Quick test_empirical_empty_and_degenerate;
    Alcotest.test_case "scaled curve" `Quick test_scaled_curve;
    Alcotest.test_case "shifted curve" `Quick test_shifted_curve;
    Alcotest.test_case "hazard exponential" `Quick test_hazard_exponential_constant;
    Alcotest.test_case "hazard numeric fallback" `Quick test_hazard_numeric_matches_analytic;
    Alcotest.test_case "window probability" `Quick test_window_probability;
    Alcotest.test_case "node byz split" `Quick test_node_byz_split;
    Alcotest.test_case "node validation" `Quick test_node_validation;
    Alcotest.test_case "node default label" `Quick test_node_default_label;
    Alcotest.test_case "fleet uniform" `Quick test_fleet_uniform;
    Alcotest.test_case "fleet mixed order" `Quick test_fleet_mixed_order;
    Alcotest.test_case "fleet reindexes" `Quick test_fleet_reindexes;
    Alcotest.test_case "fleet most reliable" `Quick test_fleet_most_reliable;
    Alcotest.test_case "fleet validation" `Quick test_fleet_empty_raises;
    Alcotest.test_case "fleet byz probs" `Quick test_fleet_byz_probs;
    Alcotest.test_case "independent marginal" `Quick test_independent_marginal;
    Alcotest.test_case "domain marginal formula" `Quick test_domain_marginal_formula;
    Alcotest.test_case "domain sampling vs marginal" `Slow test_domain_sampling_matches_marginal;
    Alcotest.test_case "correlation positive under shock" `Slow
      test_correlation_positive_under_shock;
    Alcotest.test_case "correlation zero independent" `Slow test_correlation_zero_independent;
    Alcotest.test_case "mixture marginal" `Slow test_mixture_marginal;
    Alcotest.test_case "telemetry observe" `Quick test_observe_counts;
    Alcotest.test_case "afr estimation" `Slow test_afr_estimation_accuracy;
    Alcotest.test_case "censored exponential fit" `Slow test_fit_exponential_censored;
    Alcotest.test_case "fit_auto weibull" `Slow test_fit_auto_prefers_weibull_when_aging;
    Alcotest.test_case "fit_auto exponential" `Slow test_fit_auto_prefers_exponential_when_memoryless;
    Alcotest.test_case "sample constant lifetime" `Slow test_sample_lifetime_constant_curve;
    Alcotest.test_case "sample via inversion" `Slow test_sample_lifetime_numeric_inversion;
    Alcotest.test_case "censored weibull fit" `Slow test_censored_weibull_fit;
    Alcotest.test_case "censored fit reduces to uncensored" `Slow
      test_censored_fit_reduces_to_uncensored;
    Alcotest.test_case "telemetry-to-analysis pipeline" `Slow
      test_telemetry_to_analysis_pipeline;
  ]
