lib/pbft/pbft_node.mli: Dessim Pbft_types
