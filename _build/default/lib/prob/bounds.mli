(** Classical tail bounds, for comparison against exact computation.

    The paper notes that once quorums must {e intersect}, "traditional
    tools like Chernoff bounds no longer apply" — and even where they
    do apply, they are loose in exactly the few-nodes / few-nines
    regime consensus deployments live in. These bounds make that
    looseness measurable against the exact binomial tail. *)

val hoeffding_tail_ge : n:int -> p:float -> k:int -> float
(** Hoeffding upper bound on P(X >= k), X ~ Binomial(n, p):
    [exp (-2 n (k/n - p)^2)] for [k/n > p], else 1. *)

val chernoff_kl_tail_ge : n:int -> p:float -> k:int -> float
(** The tightest exponential (Chernoff–Cramér) bound:
    [exp (-n KL(k/n || p))] for [k/n > p], else 1. *)

val kl_bernoulli : float -> float -> float
(** [kl_bernoulli a p] = KL divergence between Bernoulli(a) and
    Bernoulli(p), in nats. *)

type comparison = {
  exact : float;
  chernoff : float;
  hoeffding : float;
  chernoff_ratio : float;  (** chernoff / exact — 1.0 would be tight. *)
  hoeffding_ratio : float;
}

val compare_tail : n:int -> p:float -> k:int -> comparison
(** How many extra "nines of pessimism" the bounds cost relative to
    the exact tail P(X >= k). *)
