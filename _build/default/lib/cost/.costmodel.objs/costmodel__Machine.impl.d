lib/cost/machine.ml: Faultmodel Format
