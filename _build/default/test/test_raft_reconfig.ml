(* Tests for Raft dynamic membership (single-server configuration
   changes): the substrate preemptive reconfiguration executes on. *)

open Raft_sim

let all n = List.init n Fun.id

let test_add_server_catches_up () =
  let c = Raft_cluster.create ~n:5 ~seed:2 ~initial_members:[ 0; 1; 2 ] () in
  let engine = Raft_cluster.engine c in
  Raft_cluster.submit_workload c ~commands:[ 1; 2; 3 ] ~start:1000. ~interval:100.;
  let accepted = ref false in
  ignore
    (Dessim.Engine.schedule_at engine ~time:3000. (fun () ->
         accepted := Raft_cluster.add_server c 3));
  Raft_cluster.submit_workload c ~commands:[ 4; 5 ] ~start:5000. ~interval:100.;
  Raft_cluster.run c ~until:15_000.;
  Alcotest.(check bool) "change accepted" true !accepted;
  (* The new server is a member, caught up, and agrees. *)
  Alcotest.(check bool) "node 3 member" true (Raft_node.is_member (Raft_cluster.node c 3));
  Alcotest.(check (list int)) "node 3 caught up" [ 1; 2; 3; 4; 5 ]
    (Raft_cluster.committed c 3);
  (* The untouched spare stays idle. *)
  Alcotest.(check bool) "node 4 spare" false (Raft_node.is_member (Raft_cluster.node c 4));
  Alcotest.(check (list int)) "node 4 empty" [] (Raft_cluster.committed c 4);
  let report = Raft_checker.check c ~expected:[ 1; 2; 3; 4; 5 ] ~correct:[ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live" true report.Raft_checker.live

let test_spares_never_campaign () =
  let c = Raft_cluster.create ~n:5 ~seed:3 ~initial_members:[ 0; 1; 2 ] () in
  Raft_cluster.run c ~until:10_000.;
  List.iter
    (fun (e : Dessim.Trace.entry) ->
      if e.tag = "candidate" && (e.node = 3 || e.node = 4) then
        Alcotest.failf "spare %d campaigned" e.node)
    (Dessim.Trace.entries (Raft_cluster.trace c));
  (* And leadership settles among the members. *)
  match Raft_cluster.current_leader c with
  | Some leader -> Alcotest.(check bool) "leader is a member" true (leader < 3)
  | None -> Alcotest.fail "no leader"

let test_remove_follower () =
  let c = Raft_cluster.create ~n:4 ~seed:4 ~initial_members:[ 0; 1; 2; 3 ] () in
  let engine = Raft_cluster.engine c in
  Raft_cluster.submit_workload c ~commands:[ 1; 2 ] ~start:1000. ~interval:100.;
  let removed = ref (-1) in
  ignore
    (Dessim.Engine.schedule_at engine ~time:3000. (fun () ->
         (* Remove some follower (never the leader). *)
         match Raft_cluster.current_leader c with
         | Some leader ->
             let victim = List.find (fun u -> u <> leader) [ 0; 1; 2; 3 ] in
             if Raft_cluster.remove_server c victim then removed := victim
         | None -> ()));
  ignore
    (Dessim.Engine.schedule_at engine ~time:5000. (fun () ->
         if !removed >= 0 then Raft_node.set_down (Raft_cluster.node c !removed) true));
  Raft_cluster.submit_workload c ~commands:[ 3; 4 ] ~start:6000. ~interval:100.;
  Raft_cluster.run c ~until:20_000.;
  Alcotest.(check bool) "a follower was removed" true (!removed >= 0);
  (match Raft_cluster.members_view c with
  | Some members ->
      Alcotest.(check int) "three members left" 3 (List.length members);
      Alcotest.(check bool) "victim gone" false (List.mem !removed members)
  | None -> Alcotest.fail "no leader at end");
  let correct = List.filter (fun u -> u <> !removed) (all 4) in
  let report = Raft_checker.check c ~expected:[ 1; 2; 3; 4 ] ~correct in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live for remaining members" true report.Raft_checker.live

let test_leader_cannot_remove_itself () =
  let c = Raft_cluster.create ~n:3 ~seed:5 ~initial_members:[ 0; 1; 2 ] () in
  Raft_cluster.run c ~until:3000.;
  match Raft_cluster.current_leader c with
  | Some leader ->
      Alcotest.(check bool) "refused" false (Raft_cluster.remove_server c leader)
  | None -> Alcotest.fail "no leader"

let test_single_server_change_rule () =
  let c = Raft_cluster.create ~n:6 ~seed:6 ~initial_members:[ 0; 1; 2 ] () in
  Raft_cluster.run c ~until:3000.;
  match Raft_cluster.current_leader c with
  | None -> Alcotest.fail "no leader"
  | Some leader ->
      let node = Raft_cluster.node c leader in
      let members = Raft_node.members node in
      (* Adding two servers at once violates the single-change rule. *)
      Alcotest.(check bool) "two adds refused" false
        (Raft_node.submit_config node (4 :: 5 :: members));
      (* Empty config refused. *)
      Alcotest.(check bool) "empty refused" false (Raft_node.submit_config node []);
      (* Out-of-universe refused. *)
      Alcotest.(check bool) "out of universe refused" false
        (Raft_node.submit_config node (9 :: members));
      (* A single add is fine. *)
      Alcotest.(check bool) "single add ok" true
        (Raft_node.submit_config node (4 :: members))

let test_static_mode_rejects_config () =
  let c = Raft_cluster.create ~n:3 ~seed:7 () in
  Raft_cluster.run c ~until:3000.;
  match Raft_cluster.current_leader c with
  | Some leader ->
      Alcotest.(check bool) "static refuses" false
        (Raft_node.submit_config (Raft_cluster.node c leader) [ 0; 1 ])
  | None -> Alcotest.fail "no leader"

let test_shrunk_cluster_quorum () =
  (* After shrinking 5 -> 3 members, a single crash must still be
     tolerated (majority of 3 is 2). *)
  let c = Raft_cluster.create ~n:5 ~seed:8 ~initial_members:(all 5) () in
  let engine = Raft_cluster.engine c in
  let shrunk = ref false in
  ignore
    (Dessim.Engine.schedule_at engine ~time:2000. (fun () ->
         ignore (Raft_cluster.remove_server c 4)));
  ignore
    (Dessim.Engine.schedule_at engine ~time:4000. (fun () ->
         ignore (Raft_cluster.remove_server c 3)));
  ignore
    (Dessim.Engine.schedule_at engine ~time:6000. (fun () ->
         match Raft_cluster.members_view c with
         | Some members when List.length members = 3 ->
             shrunk := true;
             Raft_node.set_down (Raft_cluster.node c 3) true;
             Raft_node.set_down (Raft_cluster.node c 4) true;
             (* Crash one of the three remaining members. *)
             (match Raft_cluster.current_leader c with
             | Some leader ->
                 let victim = List.find (fun u -> u <> leader) members in
                 Raft_node.set_down (Raft_cluster.node c victim) true
             | None -> ())
         | Some _ | None -> ()));
  Raft_cluster.submit_workload c ~commands:[ 7; 8; 9 ] ~start:8000. ~interval:100.;
  Raft_cluster.run c ~until:25_000.;
  Alcotest.(check bool) "shrank to three" true !shrunk;
  (* Two live members of the 3-node config still commit. *)
  let report = Raft_checker.check c ~expected:[] ~correct:[] in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  match Raft_cluster.current_leader c with
  | Some leader ->
      let committed = Raft_cluster.committed c leader in
      List.iter
        (fun cmd -> Alcotest.(check bool) "committed after crash" true (List.mem cmd committed))
        [ 7; 8; 9 ]
  | None -> Alcotest.fail "no leader after shrink + crash"

let test_swap_under_load () =
  (* Continuous workload across an add+remove swap: safety and
     liveness must hold throughout. *)
  let c = Raft_cluster.create ~n:4 ~seed:9 ~initial_members:[ 0; 1; 2 ] () in
  let engine = Raft_cluster.engine c in
  let cmds = List.init 30 (fun i -> 100 + i) in
  Raft_cluster.submit_workload c ~commands:cmds ~start:1000. ~interval:150.;
  ignore
    (Dessim.Engine.schedule_at engine ~time:2000. (fun () ->
         ignore (Raft_cluster.add_server c 3)));
  let removed = ref (-1) in
  ignore
    (Dessim.Engine.schedule_at engine ~time:3500. (fun () ->
         match Raft_cluster.current_leader c with
         | Some leader ->
             let victim = List.find (fun u -> u <> leader && u <> 3) [ 0; 1; 2 ] in
             if Raft_cluster.remove_server c victim then begin
               removed := victim;
               Raft_cluster.retire_at c ~time:5000. victim
             end
         | None -> ()));
  Raft_cluster.run c ~until:30_000.;
  Alcotest.(check bool) "swap completed" true (!removed >= 0);
  let correct = List.filter (fun u -> u <> !removed) (all 4) in
  let report = Raft_checker.check c ~expected:cmds ~correct in
  Alcotest.(check bool) "safe across swap" true (Raft_checker.safe report);
  Alcotest.(check bool) "live across swap" true report.Raft_checker.live

let test_leadership_transfer () =
  let c = Raft_cluster.create ~n:3 ~seed:10 ~initial_members:[ 0; 1; 2 ] () in
  let engine = Raft_cluster.engine c in
  Raft_cluster.submit_workload c ~commands:[ 1; 2 ] ~start:1000. ~interval:100.;
  let old_leader = ref (-1) and target = ref (-1) and accepted = ref false in
  ignore
    (Dessim.Engine.schedule_at engine ~time:3000. (fun () ->
         match Raft_cluster.current_leader c with
         | Some leader ->
             old_leader := leader;
             target := List.find (fun u -> u <> leader) [ 0; 1; 2 ];
             accepted := Raft_cluster.transfer_leadership c !target
         | None -> ()));
  Raft_cluster.run c ~until:10_000.;
  Alcotest.(check bool) "transfer accepted" true !accepted;
  (match Raft_cluster.current_leader c with
  | Some leader -> Alcotest.(check int) "target leads" !target leader
  | None -> Alcotest.fail "no leader after transfer");
  let report = Raft_checker.check c ~expected:[ 1; 2 ] ~correct:(all 3) in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live" true report.Raft_checker.live

let test_transfer_then_remove_old_leader () =
  (* The rotation the reconfiguration policy needs: hand off, then
     remove the previous leader from the configuration. *)
  let c = Raft_cluster.create ~n:4 ~seed:11 ~initial_members:[ 0; 1; 2; 3 ] () in
  let engine = Raft_cluster.engine c in
  let old_leader = ref (-1) in
  ignore
    (Dessim.Engine.schedule_at engine ~time:2000. (fun () ->
         match Raft_cluster.current_leader c with
         | Some leader ->
             old_leader := leader;
             ignore
               (Raft_cluster.transfer_leadership c
                  (List.find (fun u -> u <> leader) [ 0; 1; 2; 3 ]))
         | None -> ()));
  let removed = ref false in
  ignore
    (Dessim.Engine.schedule_at engine ~time:4000. (fun () ->
         removed := Raft_cluster.remove_server c !old_leader));
  Raft_cluster.run c ~until:15_000.;
  Alcotest.(check bool) "old leader removed" true !removed;
  match Raft_cluster.members_view c with
  | Some members ->
      Alcotest.(check bool) "config excludes old leader" false
        (List.mem !old_leader members)
  | None -> Alcotest.fail "no leader"

let test_transfer_validation () =
  let c = Raft_cluster.create ~n:3 ~seed:12 () in
  Raft_cluster.run c ~until:3000.;
  match Raft_cluster.current_leader c with
  | Some leader ->
      Alcotest.(check bool) "self transfer refused" false
        (Raft_node.transfer_leadership (Raft_cluster.node c leader) leader);
      let follower = List.find (fun u -> u <> leader) [ 0; 1; 2 ] in
      Alcotest.(check bool) "follower cannot transfer" false
        (Raft_node.transfer_leadership (Raft_cluster.node c follower) leader)
  | None -> Alcotest.fail "no leader"

let suite =
  [
    Alcotest.test_case "add server catches up" `Quick test_add_server_catches_up;
    Alcotest.test_case "leadership transfer" `Quick test_leadership_transfer;
    Alcotest.test_case "transfer then remove old leader" `Quick
      test_transfer_then_remove_old_leader;
    Alcotest.test_case "transfer validation" `Quick test_transfer_validation;
    Alcotest.test_case "spares never campaign" `Quick test_spares_never_campaign;
    Alcotest.test_case "remove follower" `Quick test_remove_follower;
    Alcotest.test_case "leader cannot remove itself" `Quick test_leader_cannot_remove_itself;
    Alcotest.test_case "single-change rule" `Quick test_single_server_change_rule;
    Alcotest.test_case "static mode rejects config" `Quick test_static_mode_rejects_config;
    Alcotest.test_case "shrunk cluster quorum" `Quick test_shrunk_cluster_quorum;
    Alcotest.test_case "swap under load" `Quick test_swap_under_load;
  ]
