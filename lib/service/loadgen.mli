(** Closed-loop load generator for the query server.

    Spawns [clients] threads, each with its own connection, issuing
    [requests] queries drawn round-robin from a pool of [distinct]
    cheap analysis queries. Because every request's id is its pool
    index, the full response line for a given pool slot must be
    byte-identical across clients and repetitions — the generator
    verifies this on every reply and counts violations.

    Latency is recorded per request into a private {!Obs.Metrics}
    histogram; the report carries its percentile summary. After the
    run one extra [stats] request asks the server for its cache
    hit-rate, so the acceptance criterion (>90% hits on repeated
    queries) is measured server-side, not inferred. *)

val query_pool : int -> Wire.query array
(** The request corpus: [query_pool distinct] builds that many
    pairwise-distinct analyze scenarios (encoded via
    [Probcons.Scenario.to_json] — the real canonical encoder, so the
    server's cache-key canonicalization is what gets load-tested).
    Exposed for tests. *)

type result = {
  clients : int;
  requests_total : int;  (** Issued across all clients. *)
  ok : int;
  errors : int;  (** Structured error responses (any code). *)
  mismatches : int;  (** Byte-identity violations. *)
  elapsed_seconds : float;
  throughput_rps : float;
  latency : Obs.Metrics.hist_summary;
  server_stats : Obs.Json.t option;
      (** The server's [stats] payload, when it answered. *)
  cache_hit_rate : float option;  (** Extracted from [server_stats]. *)
}

val run :
  ?clients:int ->
  ?requests:int ->
  ?distinct:int ->
  target:Client.target ->
  unit ->
  result
(** Defaults: 4 clients, 200 requests per client, 8 distinct queries. *)

val print_report : result -> unit
(** Human-readable summary on stdout. *)

val to_json : result -> Obs.Json.t
(** Schema ["probcons-loadgen/1"] — validated by [tools/validate_bench]. *)
