(** Seeded synthetic telemetry stream for the fleet controller.

    Every node carries a hidden ground-truth fault curve; each tick a
    round-robin batch of nodes reports a right-censored telemetry
    window drawn from its current truth via {!Faultmodel.Telemetry}.
    Ground truth drifts: periodically one node's AFR is multiplied by
    a degradation factor, so the fleet the controller believes in
    slowly stops being the fleet that exists — exactly the gap the
    refit loop is there to close.

    Everything is derived from [(seed, tick, node)] through split RNG
    streams, so a stream replays bit-identically: same seed, same
    events, same drift — the determinism the DST invariants and the
    wire cache both rely on.

    In {e dynamic} mode ([dynamic = true]) the ad-hoc step-drift
    schedule is replaced by a first-class ground truth: each node's
    degradation is an independent two-state on/off Markov process
    ({!Faultmodel.Failure_process.Markov}) advanced in simulated time
    ([tick_hours] per tick). A degraded node's effective AFR is its
    base AFR times [drift_factor]; recovery brings it back — so the
    fleet the controller chases both worsens {e and heals}, and tests
    can score the controller against the exact process via
    {!ground_truth_process}. *)

type config = {
  seed : int;
  nodes : int;
  devices_per_node : int;  (** Device cohort observed per node report. *)
  window : float;  (** Telemetry window per report, hours. *)
  batch : int;  (** Nodes reporting per tick (round-robin). *)
  drift_every : int;  (** A degradation event every this many ticks. *)
  drift_factor : float;  (** AFR multiplier applied to the victim. *)
  base_afr_min : float;  (** Ground-truth AFR range, log-uniform. *)
  base_afr_max : float;
  dynamic : bool;  (** Markov ground truth instead of step drift. *)
  tick_hours : float;  (** Simulated hours per tick (dynamic mode). *)
}

val default_config : ?dynamic:bool -> seed:int -> nodes:int -> unit -> config
(** 256 devices/node over a one-year window, a quarter of the fleet
    reporting per tick, one 4x degradation every 5 ticks, AFRs
    log-uniform in [0.01, 0.08]. [?dynamic] (default [false]) switches
    to Markov ground truth at two weeks ([336.] hours) per tick. *)

type event = {
  node : int;
  observation : Faultmodel.Telemetry.observation;
}

type t

val create : config -> t
val config : t -> config
val tick_count : t -> int

val ground_truth_afr : t -> int -> float
(** The hidden per-node {e base} AFR — tests and drift checks only;
    the controller never reads it. In dynamic mode this is the Up-state
    AFR; degradation multiplies it transiently. *)

val ground_truth_process : t -> int -> Faultmodel.Failure_process.t
(** The node's ground-truth failure process: in dynamic mode the
    two-state degradation Markov process (fail at [base_afr / 1000]
    per hour, recover at [1 / 1000] per hour); otherwise the constant
    AFR curve. Tests and reliability-weighted selection only. *)

val ground_truth_degraded : t -> int -> bool
(** Whether the node's degradation process is currently in the Down
    state (always [false] in static mode). Advances the node's lazy
    Markov state to the current tick time. *)

val tick : t -> event list
(** Advance one tick: apply any scheduled degradation, then draw the
    reporting batch's observations. Events are in ascending node
    order. *)

val replace : t -> int -> afr:float -> unit
(** Swap the node's hardware: reset its ground truth to [afr] — the
    stream-side effect of a controller-applied preemptive
    reconfiguration. *)
