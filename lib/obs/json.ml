type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let number v = if Float.is_finite v then Float v else Null

(* --- Printing ------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v ->
      if Float.is_finite v then Buffer.add_string buf (Printf.sprintf "%.17g" v)
      else Buffer.add_string buf "null"
  | String s -> escape_into buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_string buf ", ";
          escape_into buf key;
          Buffer.add_string buf ": ";
          write buf value)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* --- Parsing ------------------------------------------------------- *)

exception Parse_error of int * string

let parse_error i msg = raise (Parse_error (i, msg))

let default_max_depth = 512

let of_string ?(max_depth = default_max_depth) s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_error !pos (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  (* \uXXXX escapes decode to UTF-8; unpaired surrogates are kept as
     the replacement character rather than rejected. *)
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error !pos "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then parse_error !pos "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
            | 'b' -> Buffer.add_char buf '\b'; go ()
            | 'f' -> Buffer.add_char buf '\012'; go ()
            | 'n' -> Buffer.add_char buf '\n'; go ()
            | 'r' -> Buffer.add_char buf '\r'; go ()
            | 't' -> Buffer.add_char buf '\t'; go ()
            | 'u' ->
                if !pos + 4 > n then parse_error !pos "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                pos := !pos + 4;
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 0xD800 || code > 0xDFFF -> add_utf8 buf code
                | Some _ -> add_utf8 buf 0xFFFD
                | None -> parse_error !pos "invalid \\u escape");
                go ()
            | _ -> parse_error !pos "unknown escape")
        | c -> Buffer.add_char buf c; go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some v -> Float v
      | None -> parse_error start "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer literal too large for [int]: fall back to float. *)
          match float_of_string_opt text with
          | Some v -> Float v
          | None -> parse_error start "malformed number")
  in
  (* [depth] counts open containers. Untrusted input (wire requests)
     must not drive the recursive parser into a stack overflow, so
     crossing [max_depth] is a structured parse error like any other. *)
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        if depth >= max_depth then parse_error !pos "nesting too deep";
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        if depth >= max_depth then parse_error !pos "nesting too deep";
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value (depth + 1) in
            (key, value)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error !pos (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then parse_error !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (i, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" i msg)

(* --- Accessors ----------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float v -> Some v
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float v
    when Float.is_integer v && Float.abs v <= 9007199254740992. (* 2^53 *) ->
      Some (int_of_float v)
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
