type result = {
  clients : int;
  wire : int;
  pipeline : int;
  requests_total : int;
  ok : int;
  errors : int;
  errors_by_code : (string * int) list;
  mismatches : int;
  warmup_seconds : float;
  elapsed_seconds : float;
  throughput_rps : float;
  latency : Obs.Metrics.hist_summary;
  server_stats : Obs.Json.t option;
  cache_hit_rate : float option;
}

(* Cheap, pairwise-distinct queries, so each pool slot is its own
   cache entry but no slot costs more than a count-DP over n <= 11 or
   a few fleet-controller ticks over n <= 9. Two analysis slots to
   every fleet slot: analyses are built from real scenarios and
   encoded through [Scenario.to_json], fleet slots run the controller
   closed loop (alternating recommend/ingest, distinct seeds), so the
   generator — and with it the chaos soak, under both framings —
   exercises the server's actual cache-key canonicalization across
   every cacheable subsystem. *)
let query_pool distinct =
  Array.init distinct (fun i ->
      if i mod 3 = 2 then
        let params =
          {
            Wire.nodes = 5 + (2 * (i mod 3));
            ticks = 4 + (i mod 5);
            seed = 1 + i;
            quorum = None;
            target_nines = 3.;
            dynamic = false;
          }
        in
        if i mod 6 = 5 then Wire.Fleet_ingest params
        else Wire.Fleet_recommend params
      else
        let mix = [ ((2 * (i mod 5)) + 3, 0.01 +. (0.001 *. float_of_int i)) ] in
        match Probcons.Scenario.make ~protocol:"raft" ~mix () with
        | Ok scenario -> Wire.Analyze { scenario }
        | Error msg -> invalid_arg ("Loadgen.query_pool: " ^ msg))

let json_field name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

(* Outstanding pipelined request: pool slot (== request id) and send
   time. *)
type inflight = { slot : int; sent_at : float }

let run ?(clients = 4) ?(requests = 200) ?(distinct = 8) ?timeout ?duration
    ?(warmup = 0.5) ?(pipeline = 1) ?(wire = Wire.protocol_version)
    ?expected_from ~target () =
  let clients = max 1 clients
  and requests = max 1 requests
  and distinct = max 1 distinct
  and pipeline = max 1 pipeline in
  let warmup = match duration with Some _ -> Float.max 0. warmup | None -> 0. in
  let pool = query_pool distinct in
  let bodies =
    Array.init distinct (fun slot ->
        Wire.encode_request ~v:wire { Wire.id = slot; query = pool.(slot) })
  in
  let registry = Obs.Metrics.create ~enabled:true () in
  let m_latency =
    Obs.Metrics.histogram ~registry ~family:"loadgen" "latency_seconds"
  in
  let ok = Atomic.make 0
  and errors = Atomic.make 0
  and mismatches = Atomic.make 0 in
  (* In duration mode clients run a warmup window first: connections
     settle and the server's cache fills before [recording] flips on
     and outcomes start counting. Fixed-request mode records from the
     first request (legacy behavior). *)
  let recording = Atomic.make (duration = None) in
  let stop = Atomic.make false in
  (* The reference response body for each pool slot; every reply for
     that slot must match it byte for byte — replies carry the same
     body bytes under every framing, so the baseline is framing-
     independent. Seeded from a clean direct connection when
     [expected_from] is given (so a proxy between loadgen and server
     cannot corrupt the baseline itself), otherwise from the first
     full reply seen. Identity is checked during warmup too:
     correctness does not wait for the measurement window. *)
  let expected = Array.make distinct None in
  let expected_mutex = Mutex.create () in
  (match expected_from with
  | None -> ()
  | Some direct ->
      let c = Client.connect ~wire ~retry_for:5. direct in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Array.iteri
            (fun slot body ->
              match Client.call_line c ~id:slot body with
              | Ok reply -> expected.(slot) <- Some reply
              | Error (code, msg) ->
                  invalid_arg
                    (Printf.sprintf
                       "Loadgen.run: baseline fetch for slot %d failed: %s: %s"
                       slot (Wire.code_string code) msg))
            bodies));
  let check_identical slot body =
    Mutex.lock expected_mutex;
    (match expected.(slot) with
    | None -> expected.(slot) <- Some body
    | Some first -> if not (String.equal first body) then Atomic.incr mismatches);
    Mutex.unlock expected_mutex
  in
  let by_code : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let by_code_mutex = Mutex.create () in
  let record_error code =
    if Atomic.get recording then begin
      Atomic.incr errors;
      let name = Wire.code_string code in
      Mutex.lock by_code_mutex;
      Hashtbl.replace by_code name
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_code name));
      Mutex.unlock by_code_mutex
    end
  in
  let record_ok slot reply latency =
    check_identical slot reply;
    if Atomic.get recording then begin
      Atomic.incr ok;
      Obs.Metrics.observe m_latency latency
    end
  in
  let keep_going sent =
    if Atomic.get stop then false
    else match duration with Some _ -> true | None -> sent < requests
  in
  (* One resilient call at a time: the chaos-soak path, where typed
     error classification and retry semantics matter more than
     throughput. *)
  let serial_loop k =
    let backoff = { Client.default_backoff with seed = k } in
    let c = Client.connect ~wire ~retry_for:5. ~backoff ?timeout target in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        let sent = ref 0 in
        while keep_going !sent do
          let slot = (k + !sent) mod distinct in
          incr sent;
          let t0 = Unix.gettimeofday () in
          match Client.call_line c ~id:slot bodies.(slot) with
          | Error (code, _) -> record_error code
          | Ok reply -> (
              match Wire.parse_response reply with
              | Ok { Wire.body = Ok _; _ } ->
                  record_ok slot reply (Unix.gettimeofday () -. t0)
              | Ok { Wire.body = Error (code, _); _ } -> record_error code
              | Error _ -> record_error Wire.Parse_error)
        done)
  in
  (* Pipelined: keep up to [pipeline] requests outstanding on one
     connection, matching replies to the oldest in-flight request with
     that id (same-id replies are byte-identical, so FIFO-per-id is
     exact). Raw framing with a bounded receive — a dead or silent
     connection costs the whole window as [connection_lost] and a
     reconnect, never a hang. *)
  let pipelined_loop k =
    let recv_budget = Option.value timeout ~default:30. in
    let backoff = { Client.default_backoff with seed = k } in
    let connect () = Client.connect ~wire ~retry_for:5. ~backoff target in
    let c = ref (connect ()) in
    let window = ref [] in
    (* FIFO, oldest first *)
    let sent = ref 0 in
    let fail_window code =
      List.iter (fun _ -> record_error code) !window;
      window := []
    in
    let lost () =
      fail_window Wire.Connection_lost;
      Client.close !c;
      match connect () with
      | fresh -> c := fresh
      | exception _ -> Atomic.set stop true
    in
    let take_inflight rid =
      let rec go acc = function
        | [] -> None
        | (e : inflight) :: rest when e.slot = rid ->
            window := List.rev_append acc rest;
            Some e
        | e :: rest -> go (e :: acc) rest
      in
      go [] !window
    in
    (* Steady-state fast path: on the clean cached path every reply
       for a slot is byte-identical to that slot's baseline, and ids
       render at a fixed offset ({"v": 3, "id": N, ...). Scan the id,
       compare bytes, and skip JSON parsing entirely — the parse is
       pure overhead once identity holds, and the client threads share
       the runtime lock with everything else in-process. Anything
       unexpected falls back to the full parse-and-classify path. *)
    let id_prefix = "{\"v\": 3, \"id\": " in
    let id_at = String.length id_prefix in
    let fast_rid reply =
      let len = String.length reply in
      if len > id_at && String.sub reply 0 id_at = id_prefix then begin
        let i = ref id_at and n = ref 0 in
        while !i < len && reply.[!i] >= '0' && reply.[!i] <= '9' do
          n := (!n * 10) + (Char.code reply.[!i] - Char.code '0');
          incr i
        done;
        if !i > id_at then Some !n else None
      end
      else None
    in
    let recv_fast reply =
      match fast_rid reply with
      | Some rid when rid >= 0 && rid < distinct -> (
          (* Unsynchronized read of [expected]: slots are written once
             and then stable; a stale [None] just takes the slow
             path. *)
          match expected.(rid) with
          | Some first when String.equal first reply -> (
              match take_inflight rid with
              | Some e ->
                  (* Byte-equal to an ok baseline: it is an ok reply,
                     and identity already held, so skip the re-check. *)
                  if Atomic.get recording then begin
                    Atomic.incr ok;
                    Obs.Metrics.observe m_latency
                      (Unix.gettimeofday () -. e.sent_at)
                  end;
                  true
              | None -> false)
          | _ -> false)
      | _ -> false
    in
    let recv_one () =
      match Client.recv_line_timeout !c ~timeout:recv_budget with
      | None -> lost ()
      | Some reply -> (
          if not (recv_fast reply) then
          match Wire.parse_response reply with
          | Ok { Wire.rid = Some rid; body; _ } -> (
              match take_inflight rid with
              | None -> lost () (* foreign id: framing untrustworthy *)
              | Some e -> (
                  match body with
                  | Ok _ ->
                      record_ok e.slot reply (Unix.gettimeofday () -. e.sent_at)
                  | Error (code, _) -> record_error code))
          | Ok { Wire.rid = None; _ } | Error _ -> lost ())
    in
    while keep_going !sent do
      (* Fill the window: frame every missing request into one batch
         and send it with a single syscall. *)
      let batch = ref [] and entries = ref [] in
      let missing = ref (pipeline - List.length !window) in
      while !missing > 0 && keep_going !sent do
        let slot = (k + !sent) mod distinct in
        incr sent;
        decr missing;
        batch := bodies.(slot) :: !batch;
        entries := { slot; sent_at = 0. } :: !entries
      done;
      if !batch <> [] then begin
        let now = Unix.gettimeofday () in
        let stamped =
          List.rev_map (fun e -> { e with sent_at = now }) !entries
        in
        match Client.send_lines !c (List.rev !batch) with
        | () -> window := !window @ stamped
        | exception _ -> lost ()
      end;
      (* ...then complete at least one slot before refilling. *)
      if !window <> [] then recv_one ()
    done;
    (* Fixed-request mode drains the tail; duration mode abandons
       whatever is in flight when the window closes. *)
    if duration = None then
      while !window <> [] && not (Atomic.get stop) do
        recv_one ()
      done;
    Client.close !c
  in
  let client_loop k = if pipeline > 1 then pipelined_loop k else serial_loop k in
  let t0 = Unix.gettimeofday () in
  let measured_start = ref t0 in
  let measured_end = ref t0 in
  let threads = List.init clients (fun k -> Thread.create client_loop k) in
  (match duration with
  | None -> ()
  | Some d ->
      if warmup > 0. then Unix.sleepf warmup;
      measured_start := Unix.gettimeofday ();
      Atomic.set recording true;
      Unix.sleepf (Float.max 0.01 d);
      !measured_end |> ignore;
      measured_end := Unix.gettimeofday ();
      Atomic.set stop true);
  List.iter Thread.join threads;
  let elapsed =
    match duration with
    | Some _ -> !measured_end -. !measured_start
    | None -> Unix.gettimeofday () -. t0
  in
  let stats_target = Option.value expected_from ~default:target in
  let server_stats =
    match
      let c = Client.connect ~wire ~retry_for:1. stats_target in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> Client.call c ~id:0 Wire.Stats)
    with
    | Ok payload -> Some payload
    | Error _ | (exception _) -> None
  in
  let cache_hit_rate =
    Option.bind server_stats (fun stats ->
        match Option.bind (json_field "cache" stats) (json_field "hit_rate") with
        | Some (Obs.Json.Float f) -> Some f
        | Some (Obs.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
  in
  let latency =
    match
      Obs.Metrics.find
        (Obs.Metrics.snapshot ~registry ())
        ~family:"loadgen" ~name:"latency_seconds"
    with
    | Some (Obs.Metrics.Histogram h) -> h
    | _ ->
        { Obs.Metrics.count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.;
          p90 = 0.; p99 = 0. }
  in
  let errors_by_code =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) by_code []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let requests_total = Atomic.get ok + Atomic.get errors in
  {
    clients;
    wire;
    pipeline;
    requests_total;
    ok = Atomic.get ok;
    errors = Atomic.get errors;
    errors_by_code;
    mismatches = Atomic.get mismatches;
    warmup_seconds = warmup;
    elapsed_seconds = elapsed;
    throughput_rps =
      (if elapsed > 0. then float_of_int requests_total /. elapsed else 0.);
    latency;
    server_stats;
    cache_hit_rate;
  }

let print_report r =
  Printf.printf
    "loadgen: %d clients (wire/%d, pipeline %d), %d requests in %.3fs (%.0f \
     req/s)\n"
    r.clients r.wire r.pipeline r.requests_total r.elapsed_seconds
    r.throughput_rps;
  Printf.printf "  ok %d, errors %d, byte-identity mismatches %d\n" r.ok
    r.errors r.mismatches;
  if r.errors_by_code <> [] then begin
    Printf.printf "  errors by code:";
    List.iter (fun (name, n) -> Printf.printf " %s=%d" name n) r.errors_by_code;
    print_newline ()
  end;
  Printf.printf "  latency: p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms\n"
    (1e3 *. r.latency.Obs.Metrics.p50)
    (1e3 *. r.latency.Obs.Metrics.p90)
    (1e3 *. r.latency.Obs.Metrics.p99)
    (1e3 *. r.latency.Obs.Metrics.max);
  match r.cache_hit_rate with
  | Some rate -> Printf.printf "  server cache hit-rate: %.1f%%\n" (100. *. rate)
  | None -> Printf.printf "  server cache hit-rate: unavailable\n"

let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "probcons-loadgen/3");
      ("wire", Obs.Json.String (Printf.sprintf "probcons-wire/%d" r.wire));
      ("wire_version", Obs.Json.Int r.wire);
      ("pipeline", Obs.Json.Int r.pipeline);
      ("clients", Obs.Json.Int r.clients);
      ("requests_total", Obs.Json.Int r.requests_total);
      ("ok", Obs.Json.Int r.ok);
      ("errors", Obs.Json.Int r.errors);
      ( "errors_by_code",
        Obs.Json.Obj
          (List.map (fun (name, n) -> (name, Obs.Json.Int n)) r.errors_by_code)
      );
      ("mismatches", Obs.Json.Int r.mismatches);
      ("warmup_seconds", Obs.Json.number r.warmup_seconds);
      ("elapsed_seconds", Obs.Json.number r.elapsed_seconds);
      ("throughput_rps", Obs.Json.number r.throughput_rps);
      ( "latency_seconds",
        Obs.Json.Obj
          [
            ("count", Obs.Json.Int r.latency.Obs.Metrics.count);
            ("p50", Obs.Json.number r.latency.Obs.Metrics.p50);
            ("p90", Obs.Json.number r.latency.Obs.Metrics.p90);
            ("p99", Obs.Json.number r.latency.Obs.Metrics.p99);
            ("min", Obs.Json.number r.latency.Obs.Metrics.min);
            ("max", Obs.Json.number r.latency.Obs.Metrics.max);
          ] );
      ( "cache_hit_rate",
        match r.cache_hit_rate with
        | Some f -> Obs.Json.number f
        | None -> Obs.Json.Null );
      ( "server_stats",
        match r.server_stats with Some s -> s | None -> Obs.Json.Null );
    ]
