let disjoint_probability ~n ~k1 ~k2 =
  if k1 + k2 > n then 0.
  else if k1 = 0 || k2 = 0 then 1.
  else
    exp (Prob.Math_utils.log_choose (n - k1) k2 -. Prob.Math_utils.log_choose n k2)

let intersection_probability ~n ~k1 ~k2 =
  Prob.Math_utils.clamp_prob (1. -. disjoint_probability ~n ~k1 ~k2)

let epsilon_intersecting_size ~n ~epsilon =
  if epsilon <= 0. then invalid_arg "Probabilistic.epsilon_intersecting_size";
  let rec go k =
    if k > n then n
    else if disjoint_probability ~n ~k1:k ~k2:k <= epsilon then k
    else go (k + 1)
  in
  go 1

let contains_correct ~n ~k ~p =
  if k > n then invalid_arg "Probabilistic.contains_correct: k > n";
  (* Each member of a uniform random subset is faulty with probability
     p independently of the choice of subset, so the k members are all
     faulty with probability p^k. *)
  Prob.Math_utils.clamp_prob (1. -. (p ** float_of_int k))

let quorum_size_for_correct ~p ~target =
  if target >= 1. || p >= 1. then invalid_arg "Probabilistic.quorum_size_for_correct";
  if p <= 0. then 1
  else begin
    (* p^k <= 1 - target  =>  k >= log(1-target)/log p. *)
    let k = int_of_float (Float.ceil (log (1. -. target) /. log p)) in
    max 1 k
  end

let expected_intersection ~n ~k1 ~k2 =
  float_of_int (k1 * k2) /. float_of_int n
