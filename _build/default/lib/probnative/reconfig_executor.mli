(** Preemptive reconfiguration, executed.

    {!Preemptive_reconfig} computes {e what} a predictive policy would
    do; this module actually does it: it drives a dynamic-membership
    Raft cluster on the simulator, reviews the members' predicted
    window risks on a schedule, and swaps the riskiest member for a
    fresh spare {e before} it fails — one single-server change at a
    time, leader never removed, removed servers retired.

    Time convention: one simulated millisecond is treated as one hour
    of mission time when evaluating fault curves, so protocol dynamics
    (elections in hundreds of ms) and reliability dynamics (wear-out
    over thousands of hours) coexist in one run. Node lifetimes are
    sampled from the same curves and injected as crashes, which is what
    makes the managed/unmanaged comparison meaningful. *)

type outcome = {
  swaps_completed : int;
      (** Add+remove pairs that both committed. *)
  reviews : int;
  managed_live : bool;
      (** The managed cluster committed the entire workload at all
          final members that never crashed. *)
  final_members : int list option;
  commands_committed : int;
      (** Commands committed at the final leader (0 if leaderless). *)
}

val run :
  ?seed:int ->
  universe:Faultmodel.Fleet.t ->
  initial_members:int list ->
  target_live:float ->
  review_interval:float ->
  horizon:float ->
  commands:int ->
  unit ->
  outcome
(** Universe nodes not in [initial_members] form the spare pool. Every
    universe node's crash time is sampled from its fault curve;
    reviews run every [review_interval] until [horizon]. *)

val run_unmanaged :
  ?seed:int ->
  universe:Faultmodel.Fleet.t ->
  initial_members:int list ->
  horizon:float ->
  commands:int ->
  unit ->
  outcome
(** The control arm: same lifetimes, same workload, no reconfiguration. *)
