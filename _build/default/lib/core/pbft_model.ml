type params = { n : int; q_eq : int; q_per : int; q_vc : int; q_vc_t : int }

let default n =
  if n < 4 then invalid_arg "Pbft_model.default: PBFT needs n >= 4";
  let f = (n - 1) / 3 in
  { n; q_eq = n - f; q_per = n - f; q_vc = n - f; q_vc_t = f + 1 }

let make ~n ~q_eq ~q_per ~q_vc ~q_vc_t =
  if n <= 0 then invalid_arg "Pbft_model.make: n must be positive";
  let check label q =
    if q < 1 || q > n then
      invalid_arg (Printf.sprintf "Pbft_model.make: %s out of range" label)
  in
  check "q_eq" q_eq;
  check "q_per" q_per;
  check "q_vc" q_vc;
  check "q_vc_t" q_vc_t;
  { n; q_eq; q_per; q_vc; q_vc_t }

let safe_given_byz { n; q_eq; q_per; q_vc; _ } byz =
  byz < (2 * q_eq) - n && byz < q_per + q_vc - n

let live_given { q_eq; q_per; q_vc; q_vc_t; _ } ~byz ~correct =
  byz <= q_vc - q_vc_t
  && correct >= max q_eq (max q_per q_vc)
  && byz < q_vc_t

let protocol params =
  let n = params.n in
  let safe =
    Protocol.count_predicate ~n (fun ~byz ~crashed:_ -> safe_given_byz params byz)
  in
  let live =
    Protocol.count_predicate ~n (fun ~byz ~crashed ->
        live_given params ~byz ~correct:(n - byz - crashed))
  in
  {
    Protocol.name =
      Printf.sprintf "pbft(n=%d,qeq=%d,qper=%d,qvc=%d,qvct=%d)" n params.q_eq
        params.q_per params.q_vc params.q_vc_t;
    n;
    safe;
    live;
  }

let max_byz_safe params =
  let rec go b = if b <= -1 then -1 else if safe_given_byz params b then b else go (b - 1) in
  go params.n

let accountable_given_byz params byz =
  let f = params.n - params.q_eq in
  byz <= 2 * f

let safe_or_accountable params =
  let base = protocol params in
  let n = params.n in
  let safe =
    Protocol.count_predicate ~n (fun ~byz ~crashed:_ ->
        safe_given_byz params byz || accountable_given_byz params byz)
  in
  { base with Protocol.name = base.Protocol.name ^ "+forensics"; safe }
