type deployment = {
  machine : Machine.t;
  n : int;
  reliability : float;
  hourly_cost : float;
  annual_carbon : float;
}

type objective = Cost | Carbon

let deployment_of machine n =
  {
    machine;
    n;
    reliability =
      Probcons.Raft_model.safe_and_live_uniform ~n ~p:machine.Machine.fault_probability;
    hourly_cost = Machine.cluster_hourly_cost machine n;
    annual_carbon = Machine.cluster_annual_carbon machine n;
  }

let min_cluster machine ~target ?(max_n = 99) () =
  let rec go n =
    if n > max_n then None
    else begin
      let d = deployment_of machine n in
      if d.reliability >= target then Some d else go (n + 2)
    end
  in
  go 1

let objective_value objective d =
  match objective with Cost -> d.hourly_cost | Carbon -> d.annual_carbon

let optimize ?(objective = Cost) ?(catalog = Machine.default_catalog) ~target
    ?max_n () =
  List.fold_left
    (fun best machine ->
      match min_cluster machine ~target ?max_n () with
      | None -> best
      | Some d -> (
          match best with
          | None -> Some d
          | Some b ->
              if objective_value objective d < objective_value objective b then Some d
              else best))
    None catalog

let savings_vs ~baseline d =
  if d.hourly_cost = 0. then infinity else baseline.hourly_cost /. d.hourly_cost

let pp_deployment fmt d =
  Format.fprintf fmt "%d x %s: reliability %s, $%.2f/h, %.0f kgCO2e/yr" d.n
    d.machine.Machine.name
    (Prob.Nines.percent_string d.reliability)
    d.hourly_cost d.annual_carbon
