examples/distributed_trust.mli:
