lib/probnative/leader_reputation.ml: Array Faultmodel Float List Prob
