(* Tests for Ben-Or randomized consensus: the executable protocol and
   its analytical reliability model. *)

open Benor_sim

let all n = List.init n Fun.id

let run ?(seed = 7) ?f ?(crash = []) ?(until = 1e7) initial_values =
  let cluster = Benor_cluster.create ~seed ?f ~initial_values () in
  if crash <> [] then
    Benor_cluster.inject cluster (Dessim.Fault_injector.of_failed_nodes ~at:1. crash);
  Benor_cluster.run cluster ~until;
  let n = List.length initial_values in
  let correct = List.filter (fun i -> not (List.mem i crash)) (all n) in
  (cluster, Benor_cluster.check cluster ~correct)

let test_unanimous_decides_first_round () =
  let cluster, report = run [ 1; 1; 1; 1; 1 ] in
  Alcotest.(check bool) "agreement" true report.Benor_cluster.agreement_ok;
  Alcotest.(check bool) "validity" true report.Benor_cluster.validity_ok;
  Alcotest.(check bool) "all decided" true report.Benor_cluster.all_correct_decided;
  Alcotest.(check int) "one round" 1 report.Benor_cluster.max_round;
  for i = 0 to 4 do
    Alcotest.(check (option int)) "decided 1" (Some 1)
      (Benor_node.decision (Benor_cluster.node cluster i))
  done

let test_unanimous_zero () =
  let _, report = run ~seed:8 [ 0; 0; 0 ] in
  Alcotest.(check bool) "all decided" true report.Benor_cluster.all_correct_decided;
  List.iter
    (fun (_, d) -> Alcotest.(check (option int)) "decided 0" (Some 0) d)
    report.Benor_cluster.decisions

let test_split_inputs_terminate_and_agree () =
  let _, report = run ~seed:9 [ 0; 1; 0; 1; 0 ] in
  Alcotest.(check bool) "agreement" true report.Benor_cluster.agreement_ok;
  Alcotest.(check bool) "validity" true report.Benor_cluster.validity_ok;
  Alcotest.(check bool) "all decided" true report.Benor_cluster.all_correct_decided

let test_tolerates_f_crashes () =
  let _, report = run ~seed:10 ~crash:[ 0; 1 ] [ 0; 1; 1; 0; 1 ] in
  Alcotest.(check bool) "agreement" true report.Benor_cluster.agreement_ok;
  Alcotest.(check bool) "correct nodes decided" true report.Benor_cluster.all_correct_decided

let test_too_many_crashes_stall_safely () =
  (* 3 of 5 crashed: n - f = 3 > 2 survivors, so no collection
     completes — no termination, but no disagreement either. *)
  let _, report = run ~seed:11 ~crash:[ 0; 1; 2 ] ~until:100_000. [ 0; 1; 1; 0; 1 ] in
  Alcotest.(check bool) "agreement trivially holds" true report.Benor_cluster.agreement_ok;
  Alcotest.(check bool) "not all decided" false report.Benor_cluster.all_correct_decided

let test_determinism () =
  let decide seed =
    let _, report = run ~seed [ 0; 1; 1; 0; 0 ] in
    report.Benor_cluster.decisions
  in
  Alcotest.(check bool) "same seed, same run" true (decide 21 = decide 21)

let test_mid_run_crash () =
  let cluster = Benor_cluster.create ~seed:12 ~initial_values:[ 0; 1; 0; 1; 1 ] () in
  Benor_cluster.inject cluster [ (0, Dessim.Fault_injector.Crash_at 15.) ];
  Benor_cluster.run cluster ~until:1e7;
  let report = Benor_cluster.check cluster ~correct:[ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "agreement" true report.Benor_cluster.agreement_ok;
  Alcotest.(check bool) "survivors decided" true report.Benor_cluster.all_correct_decided

let test_byzantine_injection_rejected () =
  (* The injector schedules the fault; the rejection surfaces when the
     event executes. *)
  let cluster = Benor_cluster.create ~seed:13 ~initial_values:[ 0; 1; 0 ] () in
  Benor_cluster.inject cluster [ (0, Dessim.Fault_injector.Byzantine_from 0.) ];
  Alcotest.check_raises "crash-only"
    (Invalid_argument "Ben-Or (this variant) is crash-fault tolerant only") (fun () ->
      Benor_cluster.run cluster ~until:10.)

let test_config_validation () =
  Alcotest.check_raises "2f < n" (Invalid_argument "Benor_node.create: requires 2f < n")
    (fun () -> ignore (run ~f:2 [ 0; 1; 0 ]));
  let cluster = Benor_cluster.create ~seed:1 ~initial_values:[ 1 ] () in
  Alcotest.(check int) "singleton ok" 1 (Benor_cluster.size cluster)

let prop_agreement_and_validity_always =
  QCheck.Test.make ~count:15 ~name:"random inputs and crashes: agreement + validity"
    QCheck.(pair (int_range 0 31) (int_range 0 1000))
    (fun (input_bits, seed) ->
      let inputs = List.init 5 (fun i -> (input_bits lsr i) land 1) in
      let rng = Prob.Rng.create seed in
      let crash = Prob.Rng.sample_without_replacement rng (Prob.Rng.int rng 3) 5 in
      let _, report = run ~seed ~crash inputs in
      report.Benor_cluster.agreement_ok && report.Benor_cluster.validity_ok
      && report.Benor_cluster.all_correct_decided)

let mean_rounds ?common_coin n trials =
  let total = ref 0 in
  for seed = 1 to trials do
    let cluster =
      Benor_cluster.create ~seed ?common_coin
        ~initial_values:(List.init n (fun i -> i mod 2))
        ()
    in
    Benor_cluster.run cluster ~until:1e8;
    let report = Benor_cluster.check cluster ~correct:(all n) in
    if not (report.Benor_cluster.agreement_ok && report.Benor_cluster.all_correct_decided)
    then Alcotest.fail "run failed";
    total := !total + report.Benor_cluster.max_round
  done;
  float_of_int !total /. float_of_int trials

let test_common_coin_correct () =
  let cluster =
    Benor_cluster.create ~seed:5 ~common_coin:42 ~initial_values:[ 0; 1; 0; 1; 1 ] ()
  in
  Benor_cluster.inject cluster (Dessim.Fault_injector.of_failed_nodes ~at:1. [ 0 ]);
  Benor_cluster.run cluster ~until:1e7;
  let report = Benor_cluster.check cluster ~correct:[ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "agreement" true report.Benor_cluster.agreement_ok;
  Alcotest.(check bool) "validity" true report.Benor_cluster.validity_ok;
  Alcotest.(check bool) "all decided" true report.Benor_cluster.all_correct_decided

let test_common_coin_collapses_rounds () =
  (* With a shared per-round coin all undecided nodes flip the same
     way, so expected rounds are O(1) instead of growing with n. *)
  let local = mean_rounds 9 25 in
  let common = mean_rounds ~common_coin:42 9 25 in
  Alcotest.(check bool)
    (Printf.sprintf "common %.1f < local %.1f" common local)
    true (common < local);
  Alcotest.(check bool) "common coin is O(1)-ish" true (common < 4.)

(* --- Analytical model ------------------------------------------------ *)

let test_model_validation () =
  Alcotest.check_raises "2f < n" (Invalid_argument "Benor_model.make: requires 2f < n")
    (fun () -> ignore (Probcons.Benor_model.make ~n:4 ~f:2));
  let p = Probcons.Benor_model.default 7 in
  Alcotest.(check int) "f" 3 p.Probcons.Benor_model.f

let test_model_crashes_never_break_safety () =
  let proto = Probcons.Benor_model.protocol (Probcons.Benor_model.default 5) in
  let all_crashed = Array.make 5 Probcons.Config.Crashed in
  Alcotest.(check bool) "safe under total crash" true
    (proto.Probcons.Protocol.safe.Probcons.Protocol.full all_crashed);
  let one_byz = [| Probcons.Config.Byzantine; Correct; Correct; Correct; Correct |] in
  Alcotest.(check bool) "byz voids safety" false
    (proto.Probcons.Protocol.safe.Probcons.Protocol.full one_byz)

let test_model_liveness_matches_raft_majority () =
  (* Odd n: Ben-Or's f = (n-1)/2 equals Raft's crash tolerance, so the
     liveness probabilities coincide on a crash-only fleet. *)
  let fleet = Faultmodel.Fleet.uniform ~n:5 ~p:0.05 () in
  let benor =
    Probcons.Analysis.run (Probcons.Benor_model.protocol (Probcons.Benor_model.default 5)) fleet
  in
  let raft =
    Probcons.Analysis.run (Probcons.Raft_model.protocol (Probcons.Raft_model.default 5)) fleet
  in
  Alcotest.(check (float 1e-12)) "same liveness" raft.Probcons.Analysis.p_live
    benor.Probcons.Analysis.p_live;
  (* But Ben-Or's safety is immune to crash counts (certain here). *)
  Alcotest.(check (float 1e-12)) "safety certain" 1. benor.Probcons.Analysis.p_safe

let test_simulation_matches_model_liveness () =
  (* Crash probability 30%: run many sampled configurations and compare
     the termination rate against the analytical liveness. *)
  let n = 5 and p = 0.3 in
  let fleet = Faultmodel.Fleet.uniform ~n ~p () in
  let analytical =
    Probcons.Analysis.run (Probcons.Benor_model.protocol (Probcons.Benor_model.default n)) fleet
  in
  let rng = Prob.Rng.create 55 in
  let trials = 60 in
  let live = ref 0 in
  for seed = 1 to trials do
    let crash = ref [] in
    for u = 0 to n - 1 do
      if Prob.Rng.bool rng p then crash := u :: !crash
    done;
    let _, report = run ~seed ~crash:!crash [ 0; 1; 1; 0; 1 ] in
    if report.Benor_cluster.all_correct_decided && !crash <> all n then incr live
    else if !crash = all n then incr live (* vacuously live *)
  done;
  let low, high = Prob.Montecarlo.wilson_interval ~successes:!live ~trials in
  Alcotest.(check bool)
    (Printf.sprintf "analytical %.3f in [%.3f, %.3f]" analytical.Probcons.Analysis.p_live
       low high)
    true
    (analytical.Probcons.Analysis.p_live >= low -. 0.02
    && analytical.Probcons.Analysis.p_live <= high +. 0.02)

let suite =
  [
    Alcotest.test_case "unanimous decides round 1" `Quick test_unanimous_decides_first_round;
    Alcotest.test_case "unanimous zero" `Quick test_unanimous_zero;
    Alcotest.test_case "split inputs" `Quick test_split_inputs_terminate_and_agree;
    Alcotest.test_case "tolerates f crashes" `Quick test_tolerates_f_crashes;
    Alcotest.test_case "too many crashes stall safely" `Quick
      test_too_many_crashes_stall_safely;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "mid-run crash" `Quick test_mid_run_crash;
    Alcotest.test_case "byzantine rejected" `Quick test_byzantine_injection_rejected;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    QCheck_alcotest.to_alcotest prop_agreement_and_validity_always;
    Alcotest.test_case "common coin correct" `Quick test_common_coin_correct;
    Alcotest.test_case "common coin collapses rounds" `Slow
      test_common_coin_collapses_rounds;
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "model safety under crashes" `Quick
      test_model_crashes_never_break_safety;
    Alcotest.test_case "model liveness = raft majority" `Quick
      test_model_liveness_matches_raft_majority;
    Alcotest.test_case "simulation matches model" `Slow test_simulation_matches_model_liveness;
  ]
