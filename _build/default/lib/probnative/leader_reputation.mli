(** Reliability-aware leader selection (paper §4, second direction).

    "Probabilistic approaches can choose leaders among the most
    reliable nodes, avoiding more failure-prone nodes." In
    timeout-based elections (Raft) the knob is each node's election
    timeout: scaling a node's timeout by its reliability rank makes the
    most reliable live node overwhelmingly likely to win the race. *)

val timeout_multipliers : ?at:float -> ?spread:float -> Faultmodel.Fleet.t -> float array
(** Per-node multipliers in [1, 1+spread] (default spread 2): the most
    reliable node gets 1, the least reliable 1+spread. Feed to
    [Raft_cluster.create ~timeout_multipliers]. *)

val leader_fault_probability :
  ?at:float -> Faultmodel.Fleet.t -> strategy:[ `Uniform | `Reputation ] -> float
(** Probability that the elected leader suffers a fault during the
    mission window: a fault-curve-oblivious election picks uniformly
    (expected fault probability = fleet average), a reputation-based
    one picks the most reliable node (= fleet minimum). The gap is the
    tail-latency/reconfiguration saving the paper points at. *)

val expected_reelections :
  ?at:float -> Faultmodel.Fleet.t -> strategy:[ `Uniform | `Reputation ] -> horizon:float -> float
(** Expected number of leader changes over a mission window: the sum
    over time steps of the chosen leader's hazard. A coarse model — one
    re-election per leader fault — sufficient to rank strategies. *)
