(** Quorum-placement durability analysis (the paper's E5 scenario).

    Raft is oblivious to fault curves: committed data may land on
    whichever [|Q_per|] nodes answered first — possibly the least
    reliable ones. This module quantifies the durability of a committed
    operation (the probability that at least one holder of the data
    survives) under different placement policies, including the
    paper's proposal of requiring quorums to contain a reliable node. *)

type placement =
  | Worst_case
      (** Adversarial scheduling: the quorum is the [size] most
          failure-prone nodes — what a fault-curve-oblivious protocol
          must assume. *)
  | Best_case  (** The [size] most reliable nodes. *)
  | Random
      (** Uniformly random quorum — the expected behaviour of an
          oblivious protocol with symmetric load. *)
  | Constrained of { reliable : int list; min_reliable : int }
      (** Quorums must include at least [min_reliable] nodes from
          [reliable]; evaluated at the worst quorum satisfying the
          constraint — the paper's fault-curve-aware fix. *)

val data_loss_probability :
  ?at:float -> Faultmodel.Fleet.t -> placement -> size:int -> float
(** Probability that every member of the placed persistence quorum
    fails (committed data is lost). For [Random] this is the exact
    average over all [C(n, size)] quorums, via elementary symmetric
    polynomials. *)

val durability : ?at:float -> Faultmodel.Fleet.t -> placement -> size:int -> float
(** [1 - data_loss_probability]. *)

val quorum_for : ?at:float -> Faultmodel.Fleet.t -> placement -> size:int -> int list
(** The concrete quorum the deterministic policies evaluate (raises
    [Invalid_argument] for [Random], which averages instead). *)
