lib/core/stake_model.mli: Config Protocol
