(** Write-ahead persistence for one replica process.

    Exactly what the Raft paper puts on stable storage — current term,
    vote, and the log — plus the payload table mapping sequence
    numbers to command bytes. The {!Node} pump persists a dirty
    snapshot {e before} flushing outbound replies, so a follower's
    success reply never leaves the process ahead of the log it
    acknowledges; on restart the snapshot is loaded into
    {!Raft_sim.Raft_node.restore} and committed entries are re-applied
    idempotently. Writes are atomic (temp file, fsync, rename). *)

val schema : string
(** ["probcons-replica-durable/1"]. *)

type snapshot = {
  term : int;
  voted_for : int option;
  log : Raft_sim.Raft_types.entry list;
  payloads : (int * string) list;
      (** Sequence number to canonical command bytes. *)
}

val path : dir:string -> string
(** The snapshot file inside a replica's state directory. *)

val save : dir:string -> snapshot -> unit
(** Atomic replace. Raises [Unix.Unix_error] on I/O failure. *)

val load : dir:string -> (snapshot option, string) result
(** [Ok None] when no snapshot exists; [Error] on a corrupt file
    (a replica must not silently boot empty over damaged state). *)

val to_json : snapshot -> Obs.Json.t
val of_json : Obs.Json.t -> (snapshot, string) result
