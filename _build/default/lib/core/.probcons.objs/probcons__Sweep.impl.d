lib/core/sweep.ml: Analysis Equivalence Faultmodel List Pbft_model Printf Prob Raft_model Report
