lib/cost/machine.mli: Faultmodel Format
