examples/quickstart.ml: Faultmodel Format List Prob Probcons Probnative
