lib/markov/ctmc.ml: Array Linalg List Prob
