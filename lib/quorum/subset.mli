(** Bitmask subsets of a small universe [0..n-1].

    Failure configurations and quorums over clusters of up to 62 nodes
    are represented as [int] bitmasks; these helpers keep the
    enumeration engines branch-light. *)

type t = int
(** Bit [u] set iff element [u] is in the subset. *)

val empty : t
val full : int -> t
val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val cardinal : t -> int
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val of_list : int list -> t
val to_list : t -> int list
val complement : int -> t -> t
(** [complement n s] relative to universe size [n]. *)

val max_enumeration : int
(** Largest universe size the exhaustive iterators accept (24). *)

val iter_subsets : int -> (t -> unit) -> unit
(** Apply to all [2^n] subsets of [0..n-1]. Raises [Invalid_argument]
    when [n > 24] — beyond that use sampling. *)

val iter_subsets_range : int -> lo:t -> hi:t -> (t -> unit) -> unit
(** [iter_subsets_range n ~lo ~hi f] applies [f] to the bitmasks
    [lo, lo+1, ..., hi-1], in order — the contiguous slice of
    {!iter_subsets}' sequence that chunked parallel enumeration hands
    to one worker. Requires [0 <= lo <= hi <= 2^n]. Concatenating the
    ranges of any partition of [0, 2^n) reproduces {!iter_subsets}
    exactly. *)

val iter_ksubsets : int -> int -> (t -> unit) -> unit
(** Apply to all size-[k] subsets of [0..n-1], in Gosper order. *)

val fold_subsets : int -> init:'a -> f:('a -> t -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
