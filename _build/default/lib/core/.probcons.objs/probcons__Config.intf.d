lib/core/config.mli: Format Prob Quorum
