lib/core/upright_model.ml: Analysis Faultmodel Pbft_model Printf Protocol Raft_model
