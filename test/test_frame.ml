(* The wire/3 binary framing codec: encode/decode round-trips, fuzzed
   incremental decoding at every split point, typed rejection of
   malformed headers, and the cross-framing byte-identity contract. *)

open Service

let frame_error =
  Alcotest.testable (Fmt.of_to_string Frame.error_message) ( = )

(* Decode a whole byte string by feeding it in the given chunk sizes,
   collecting every complete frame. *)
let decode_chunked ~chunk bytes =
  let d = Frame.create () in
  let len = String.length bytes in
  let buf = Bytes.of_string bytes in
  let frames = ref [] in
  let err = ref None in
  let drain () =
    let rec go () =
      match Frame.next d with
      | Ok (Some body) ->
          frames := body :: !frames;
          go ()
      | Ok None -> ()
      | Error e -> if !err = None then err := Some e
    in
    go ()
  in
  let off = ref 0 in
  while !off < len && !err = None do
    let k = min chunk (len - !off) in
    Frame.feed d (Bytes.sub buf !off k) k;
    off := !off + k;
    drain ()
  done;
  (List.rev !frames, !err)

let test_header_layout () =
  let f = Frame.encode "abc" in
  Alcotest.(check int) "total length" (Frame.header_bytes + 3) (String.length f);
  Alcotest.(check char) "magic" Frame.magic f.[0];
  Alcotest.(check int) "version byte" Frame.version (Char.code f.[1]);
  (* u32 big-endian length *)
  Alcotest.(check int) "length prefix" 3
    ((Char.code f.[2] lsl 24) lor (Char.code f.[3] lsl 16)
    lor (Char.code f.[4] lsl 8) lor Char.code f.[5]);
  Alcotest.(check string) "payload verbatim" "abc"
    (String.sub f Frame.header_bytes 3);
  (* The magic can never open a JSON body — that is what makes
     per-connection framing detection sound. *)
  Alcotest.(check bool) "magic is not printable JSON" true
    (Char.code Frame.magic > 0x7F)

let test_roundtrip_simple () =
  List.iter
    (fun body ->
      let frames, err = decode_chunked ~chunk:4096 (Frame.encode body) in
      Alcotest.(check (option frame_error)) "no error" None err;
      Alcotest.(check (list string)) "round-trips" [ body ] frames)
    [ "x"; "{\"v\": 3}"; String.make 100_000 'q'; "\x00\xff\xfb binary ok" ]

let test_multiple_frames_one_buffer () =
  let bodies = [ "one"; "two"; "{\"three\": 3}"; "4" ] in
  let stream = String.concat "" (List.map Frame.encode bodies) in
  let frames, err = decode_chunked ~chunk:4096 stream in
  Alcotest.(check (option frame_error)) "no error" None err;
  Alcotest.(check (list string)) "all frames out" bodies frames

(* Incremental decoding must be split-invariant: feeding the stream
   byte by byte — or at any chunk size — yields exactly the same
   frames. This is the property the reactor relies on, since the
   kernel hands it arbitrary read boundaries. *)
let test_split_at_every_byte () =
  let bodies = [ "alpha"; "{\"v\": 3, \"id\": 7}"; "z" ] in
  let stream = String.concat "" (List.map Frame.encode bodies) in
  for chunk = 1 to String.length stream do
    let frames, err = decode_chunked ~chunk stream in
    if err <> None || frames <> bodies then
      Alcotest.failf "chunk size %d broke decoding" chunk
  done

let test_bad_magic () =
  let frames, err = decode_chunked ~chunk:1 "{\"v\": 3}" in
  Alcotest.(check (list string)) "no frames" [] frames;
  (match err with
  | Some (Frame.Bad_magic b) ->
      Alcotest.(check int) "offending byte" (Char.code '{') b
  | other ->
      Alcotest.failf "expected Bad_magic, got %s"
        (match other with
        | None -> "no error"
        | Some e -> Frame.error_message e))

let test_bad_version () =
  let f = Bytes.of_string (Frame.encode "body") in
  Bytes.set f 1 '\x02';
  let frames, err = decode_chunked ~chunk:4096 (Bytes.to_string f) in
  Alcotest.(check (list string)) "no frames" [] frames;
  Alcotest.(check (option frame_error)) "typed error"
    (Some (Frame.Bad_version 2)) err

let test_zero_length () =
  let b = Bytes.create Frame.header_bytes in
  Bytes.set b 0 Frame.magic;
  Bytes.set b 1 (Char.chr Frame.version);
  Bytes.set_int32_be b 2 0l;
  let frames, err = decode_chunked ~chunk:4096 (Bytes.to_string b) in
  Alcotest.(check (list string)) "no frames" [] frames;
  Alcotest.(check (option frame_error)) "typed error" (Some Frame.Zero_length)
    err

let test_oversized () =
  let b = Bytes.create Frame.header_bytes in
  Bytes.set b 0 Frame.magic;
  Bytes.set b 1 (Char.chr Frame.version);
  Bytes.set_int32_be b 2 (Int32.of_int (Frame.max_payload_bytes + 1));
  let frames, err = decode_chunked ~chunk:4096 (Bytes.to_string b) in
  Alcotest.(check (list string)) "no frames" [] frames;
  (match err with
  | Some (Frame.Oversized n) ->
      Alcotest.(check int) "reported size" (Frame.max_payload_bytes + 1) n
  | other ->
      Alcotest.failf "expected Oversized, got %s"
        (match other with
        | None -> "no error"
        | Some e -> Frame.error_message e));
  (* The declared size is rejected from the header alone — no payload
     bytes were needed (the attack this bound exists for is a 4 GiB
     allocation from a 6-byte header). *)
  match Frame.encode (String.make (Frame.max_payload_bytes + 1) 'x') with
  | _ -> Alcotest.fail "encode must refuse oversized payloads"
  | exception Invalid_argument _ -> ()

let test_error_latches () =
  (* After a framing error the decoder stays dead: feeding more bytes
     cannot resurrect a corrupted stream. *)
  let d = Frame.create () in
  let junk = Bytes.of_string "junk" in
  Frame.feed d junk (Bytes.length junk);
  (match Frame.next d with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "junk should be Bad_magic");
  let good = Bytes.of_string (Frame.encode "fine") in
  Frame.feed d good (Bytes.length good);
  (match Frame.next d with
  | Error (Frame.Bad_magic _) -> ()
  | _ -> Alcotest.fail "error must latch");
  (* [reset] is the only way back. *)
  Frame.reset d;
  Frame.feed d good (Bytes.length good);
  match Frame.next d with
  | Ok (Some "fine") -> ()
  | _ -> Alcotest.fail "reset decoder must decode again"

(* Cross-framing contract: a wire/3 frame's payload is byte-identical
   to the wire/2 line minus its trailing newline — for requests and
   for rendered replies. *)
let test_wire2_vs_wire3_bytes () =
  let body =
    Wire.encode_request
      {
        Wire.id = 11;
        query =
          Wire.Markov { n = 5; quorum = None; afr = 0.04; mttr_hours = 24. };
      }
  in
  let line = body ^ "\n" in
  let frame = Frame.encode body in
  Alcotest.(check string) "frame payload == line minus newline"
    (String.sub line 0 (String.length line - 1))
    (String.sub frame Frame.header_bytes
       (String.length frame - Frame.header_bytes));
  let reply = Wire.encode_ok ~id:11 ~payload:{|{"x": 1}|} in
  Alcotest.(check string) "reply assembles from prefix/suffix"
    (Wire.ok_prefix ~id:11 ^ {|{"x": 1}|} ^ Wire.ok_suffix)
    reply

(* QCheck: decode ∘ encode = Ok for arbitrary payloads, across
   arbitrary chunk sizes. *)
let prop_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame decode∘encode = Ok"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 8)
           (string_of_size (Gen.int_range 1 300)))
        (int_range 1 64))
    (fun (bodies, chunk) ->
      let bodies = List.filter (fun b -> String.length b > 0) bodies in
      let stream = String.concat "" (List.map Frame.encode bodies) in
      let frames, err = decode_chunked ~chunk stream in
      err = None && frames = bodies)

let suite =
  [
    Alcotest.test_case "header layout" `Quick test_header_layout;
    Alcotest.test_case "round-trip" `Quick test_roundtrip_simple;
    Alcotest.test_case "multiple frames per buffer" `Quick
      test_multiple_frames_one_buffer;
    Alcotest.test_case "split at every byte" `Quick test_split_at_every_byte;
    Alcotest.test_case "bad magic" `Quick test_bad_magic;
    Alcotest.test_case "bad version" `Quick test_bad_version;
    Alcotest.test_case "zero length" `Quick test_zero_length;
    Alcotest.test_case "oversized" `Quick test_oversized;
    Alcotest.test_case "error latches until reset" `Quick test_error_latches;
    Alcotest.test_case "wire/2 vs wire/3 byte identity" `Quick
      test_wire2_vs_wire3_bytes;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
