lib/markov/linalg.ml: Array Float
