lib/core/protocol.ml: Config
