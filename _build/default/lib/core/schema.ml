type requirement =
  | Correct_intersection of string * string
  | Node_intersection of string * string
  | Correct_member of string
  | Trigger_slack of { trigger : string; full : string }

type t = {
  name : string;
  n : int;
  quorums : (string * int) list;
  byzantine_faults : bool;
  safety : requirement list;
  liveness_steps : string list;
  liveness : requirement list;
}

let quorum_size schema step =
  match List.assoc_opt step schema.quorums with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Schema: unknown step %S" step)

let validate schema =
  if schema.n <= 0 then invalid_arg "Schema: n must be positive";
  List.iter
    (fun (step, q) ->
      if q < 1 || q > schema.n then
        invalid_arg (Printf.sprintf "Schema: quorum %S out of range" step))
    schema.quorums;
  let check_step step = ignore (quorum_size schema step) in
  let check_requirement = function
    | Correct_intersection (a, b) | Node_intersection (a, b) ->
        check_step a;
        check_step b
    | Correct_member s -> check_step s
    | Trigger_slack { trigger; full } ->
        check_step trigger;
        check_step full
  in
  List.iter check_requirement schema.safety;
  List.iter check_requirement schema.liveness;
  List.iter check_step schema.liveness_steps

(* A requirement holds in a configuration with [byz] Byzantine nodes
   when the worst-case placement of those nodes cannot break it. *)
let requirement_holds schema ~byz = function
  | Correct_intersection (a, b) ->
      byz < quorum_size schema a + quorum_size schema b - schema.n
  | Node_intersection (a, b) ->
      quorum_size schema a + quorum_size schema b > schema.n
  | Correct_member s -> byz < quorum_size schema s
  | Trigger_slack { trigger; full } ->
      byz <= quorum_size schema full - quorum_size schema trigger

let protocol schema =
  validate schema;
  let n = schema.n in
  let safe =
    (* A CFT schema has no argument against Byzantine nodes at all. *)
    Protocol.count_predicate ~n (fun ~byz ~crashed:_ ->
        (schema.byzantine_faults || byz = 0)
        && List.for_all (requirement_holds schema ~byz) schema.safety)
  in
  let liveness_need =
    List.fold_left (fun acc step -> max acc (quorum_size schema step)) 0
      schema.liveness_steps
  in
  let live =
    Protocol.count_predicate ~n (fun ~byz ~crashed ->
        n - byz - crashed >= liveness_need
        && List.for_all (requirement_holds schema ~byz) schema.liveness)
  in
  { Protocol.name = Printf.sprintf "schema:%s" schema.name; n; safe; live }

let raft n =
  let majority = (n / 2) + 1 in
  {
    name = Printf.sprintf "raft(n=%d)" n;
    n;
    quorums = [ ("per", majority); ("vc", majority) ];
    byzantine_faults = false;
    safety = [ Node_intersection ("per", "vc"); Node_intersection ("vc", "vc") ];
    liveness_steps = [ "per"; "vc" ];
    liveness = [];
  }

let pbft n =
  let f = (n - 1) / 3 in
  let q = n - f in
  {
    name = Printf.sprintf "pbft(n=%d)" n;
    n;
    quorums = [ ("eq", q); ("per", q); ("vc", q); ("vc_t", f + 1) ];
    byzantine_faults = true;
    safety = [ Correct_intersection ("eq", "eq"); Correct_intersection ("per", "vc") ];
    liveness_steps = [ "eq"; "per"; "vc" ];
    liveness =
      [ Trigger_slack { trigger = "vc_t"; full = "vc" }; Correct_member "vc_t" ];
  }
