examples/distributed_trust.ml: Faultmodel Format List Printf Prob Probcons Probnative String
