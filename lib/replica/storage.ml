let schema = "probcons-replica-durable/1"
let file = "durable.json"

type snapshot = {
  term : int;
  voted_for : int option;
  log : Raft_sim.Raft_types.entry list;
  payloads : (int * string) list;
}

let path ~dir = Filename.concat dir file

let to_json s =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String schema);
      ("term", Obs.Json.Int s.term);
      ( "voted_for",
        match s.voted_for with
        | None -> Obs.Json.Null
        | Some v -> Obs.Json.Int v );
      ("log", Obs.Json.List (List.map Raft_sim.Raft_codec.entry_to_json s.log));
      ( "payloads",
        Obs.Json.List
          (List.map
             (fun (seq, bytes) ->
               Obs.Json.List [ Obs.Json.Int seq; Obs.Json.String bytes ])
             s.payloads) );
    ]

let ( let* ) = Result.bind

let of_json j =
  match Obs.Json.member "schema" j with
  | Some (Obs.Json.String s) when s = schema ->
      let* term =
        match Obs.Json.member "term" j with
        | Some (Obs.Json.Int t) when t >= 0 -> Ok t
        | _ -> Error "storage: missing term"
      in
      let* voted_for =
        match Obs.Json.member "voted_for" j with
        | Some Obs.Json.Null | None -> Ok None
        | Some (Obs.Json.Int v) when v >= 0 -> Ok (Some v)
        | _ -> Error "storage: bad voted_for"
      in
      let* log =
        match Obs.Json.member "log" j with
        | Some (Obs.Json.List entries) ->
            List.fold_left
              (fun acc ej ->
                let* acc = acc in
                let* e = Raft_sim.Raft_codec.entry_of_json ej in
                Ok (e :: acc))
              (Ok []) entries
            |> Result.map List.rev
        | _ -> Error "storage: missing log"
      in
      let* payloads =
        match Obs.Json.member "payloads" j with
        | Some (Obs.Json.List pairs) ->
            List.fold_left
              (fun acc pj ->
                let* acc = acc in
                match pj with
                | Obs.Json.List [ Obs.Json.Int seq; Obs.Json.String bytes ]
                  when seq >= 0 ->
                    Ok ((seq, bytes) :: acc)
                | _ -> Error "storage: bad payload pair")
              (Ok []) pairs
            |> Result.map List.rev
        | _ -> Error "storage: missing payloads"
      in
      Ok { term; voted_for; log; payloads }
  | _ -> Error "storage: wrong or missing schema"

(* Durability contract: the bytes are complete on disk (fsync) before
   the rename makes them visible, so a crash leaves either the old
   snapshot or the new one, never a torn file. *)
let save ~dir s =
  let final = path ~dir in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let bytes = Bytes.of_string (Obs.Json.to_string (to_json s)) in
      let n = Bytes.length bytes in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd bytes !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp final

let load ~dir =
  let p = path ~dir in
  if not (Sys.file_exists p) then Ok None
  else
    let ic = open_in_bin p in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.of_string contents with
    | Error msg -> Error ("storage: " ^ msg)
    | Ok j -> Result.map Option.some (of_json j)
