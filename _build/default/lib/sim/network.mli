(** Simulated message network.

    Point-to-point messaging between node ids with configurable
    latency, loss, partitions, and per-node up/down state. Delivery
    order between distinct pairs is whatever the latency samples
    dictate — the adversarial schedules consensus must tolerate. *)

type latency =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Lognormal_ish of { base : float; mean_extra : float }
      (** [base] propagation delay plus an exponential queueing tail
          with the given mean — a decent stand-in for datacenter RPC
          latency. *)

type 'msg t

val create :
  engine:Engine.t -> n:int -> ?latency:latency -> ?drop_probability:float -> unit -> 'msg t
(** Default latency [Uniform {lo = 1.; hi = 10.}] (milliseconds, by
    convention), no drops. *)

val set_handler : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Install node [i]'s receive callback. Must be set before delivery. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message; it is silently dropped if either endpoint is down
    at delivery time, the pair is partitioned, or the loss coin fires.
    Self-sends are delivered (with latency) like any other message. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** Send to every node except [src]. *)

val set_down : 'msg t -> int -> bool -> unit
(** Mark a node crashed/recovered. Messages already in flight to a
    down node are dropped at delivery time. *)

val is_down : 'msg t -> int -> bool

val partition : 'msg t -> int list -> int list -> unit
(** Cut connectivity between the two groups (both directions). *)

val heal : 'msg t -> unit
(** Remove all partitions. *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int
val size : 'msg t -> int
