(* Tests for the observability layer: metrics registry semantics,
   histogram percentile accuracy, snapshot JSON round-trips, and the
   domain-sharding merge invariant. *)

open Probcons

let find_exn snap ~family ~name =
  match Obs.Metrics.find snap ~family ~name with
  | Some v -> v
  | None -> Alcotest.failf "metric %s/%s missing from snapshot" family name

let counter_value = function
  | Obs.Metrics.Counter n -> n
  | _ -> Alcotest.fail "expected counter"

let gauge_value = function
  | Obs.Metrics.Gauge n -> n
  | _ -> Alcotest.fail "expected gauge"

let hist_value = function
  | Obs.Metrics.Histogram h -> h
  | _ -> Alcotest.fail "expected histogram"

(* --- Registry basics ------------------------------------------------------- *)

let test_counter_and_gauge () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r ~family:"t" "hits" in
  let g = Obs.Metrics.gauge ~registry:r ~family:"t" "depth" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Obs.Metrics.set g 7;
  Obs.Metrics.set g 3;
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "counter sums" 42
    (counter_value (find_exn snap ~family:"t" ~name:"hits"));
  (* Within a shard a gauge is last-write-wins; the max-over-shards
     merge only arbitrates between domains. *)
  Alcotest.(check int)
    "gauge keeps last written value" 3
    (gauge_value (find_exn snap ~family:"t" ~name:"depth"));
  (* Re-requesting the same metric returns the same cell. *)
  let c' = Obs.Metrics.counter ~registry:r ~family:"t" "hits" in
  Obs.Metrics.incr c';
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "idempotent registration" 43
    (counter_value (find_exn snap ~family:"t" ~name:"hits"));
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics.gauge: t.hits already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge ~registry:r ~family:"t" "hits"))

let test_disabled_registry_records_nothing () =
  let r = Obs.Metrics.create ~enabled:false () in
  let c = Obs.Metrics.counter ~registry:r ~family:"t" "hits" in
  let h = Obs.Metrics.histogram ~registry:r ~family:"t" "lat" in
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 1.5;
  Alcotest.(check bool) "histogram reports dead" false (Obs.Metrics.live h);
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "counter untouched" 0
    (counter_value (find_exn snap ~family:"t" ~name:"hits"));
  Alcotest.(check int) "histogram untouched" 0
    (hist_value (find_exn snap ~family:"t" ~name:"lat")).count;
  Obs.Metrics.set_enabled ~registry:r true;
  Obs.Metrics.incr c;
  let snap = Obs.Metrics.snapshot ~registry:r () in
  Alcotest.(check int) "records after enable" 1
    (counter_value (find_exn snap ~family:"t" ~name:"hits"))

(* --- Histogram accuracy ---------------------------------------------------- *)

let test_histogram_percentiles () =
  let r = Obs.Metrics.create ~enabled:true () in
  let h = Obs.Metrics.histogram ~registry:r ~family:"t" "lat" in
  for v = 1 to 1000 do
    Obs.Metrics.observe h (float_of_int v)
  done;
  let s = hist_value (find_exn (Obs.Metrics.snapshot ~registry:r ()) ~family:"t" ~name:"lat") in
  Alcotest.(check int) "count" 1000 s.count;
  (* Every summary statistic is reconstructed from bucket
     representatives; quarter-power-of-two buckets guarantee
     <= 2^(1/8)-1 ~ 9% relative error. Check against exact answers. *)
  let rel_ok name got expect =
    let rel = Float.abs (got -. expect) /. expect in
    if rel > 0.10 then
      Alcotest.failf "%s: %g vs exact %g (rel err %.3f)" name got expect rel
  in
  rel_ok "min" s.min 1.;
  rel_ok "max" s.max 1000.;
  rel_ok "sum" s.sum 500500.;
  rel_ok "p50" s.p50 500.;
  rel_ok "p90" s.p90 900.;
  rel_ok "p99" s.p99 990.

let test_histogram_extremes () =
  let r = Obs.Metrics.create ~enabled:true () in
  let h = Obs.Metrics.histogram ~registry:r ~family:"t" "lat" in
  Obs.Metrics.observe h 0.;
  Obs.Metrics.observe h (-3.);
  Obs.Metrics.observe h Float.nan;
  Obs.Metrics.observe h 1e40;
  Obs.Metrics.observe h 1e-40;
  let s = hist_value (find_exn (Obs.Metrics.snapshot ~registry:r ()) ~family:"t" ~name:"lat") in
  Alcotest.(check int) "all observations bucketed" 5 s.count;
  Alcotest.(check bool) "summary stays finite" true
    (Float.is_finite s.p50 && Float.is_finite s.p99)

(* --- JSON round-trip ------------------------------------------------------- *)

let test_snapshot_jsonl_roundtrip () =
  let r = Obs.Metrics.create ~enabled:true () in
  let c = Obs.Metrics.counter ~registry:r ~family:"sim" "events" in
  let g = Obs.Metrics.gauge ~registry:r ~family:"sim" "queue" in
  let h = Obs.Metrics.histogram ~registry:r ~family:"net" "latency" in
  Obs.Metrics.add c 123;
  Obs.Metrics.set g 17;
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.25; 80.; 1000.5 ];
  let snap = Obs.Metrics.snapshot ~registry:r () in
  match Obs.Metrics.of_jsonl (Obs.Metrics.to_jsonl snap) with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok snap' ->
      Alcotest.(check int) "same cardinality" (List.length snap)
        (List.length snap');
      List.iter2
        (fun (a : Obs.Metrics.sample) (b : Obs.Metrics.sample) ->
          Alcotest.(check string) "family" a.family b.family;
          Alcotest.(check string) "name" a.name b.name;
          match (a.value, b.value) with
          | Counter x, Counter y -> Alcotest.(check int) "counter" x y
          | Gauge x, Gauge y -> Alcotest.(check int) "gauge" x y
          | Histogram x, Histogram y ->
              Alcotest.(check int) "count" x.count y.count;
              Alcotest.(check (float 1e-9)) "sum" x.sum y.sum;
              Alcotest.(check (float 1e-9)) "p99" x.p99 y.p99
          | _ -> Alcotest.fail "kind changed across round-trip")
        snap snap'

let test_json_parser_rejects_garbage () =
  (match Obs.Json.of_string "{\"a\": [1, 2,]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing comma accepted");
  (match Obs.Json.of_string "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Obs.Json.of_string "{\"x\": -1.5e3, \"y\": \"\\u00e9\"}" with
  | Error msg -> Alcotest.failf "valid doc rejected: %s" msg
  | Ok doc ->
      Alcotest.(check (option (float 1e-9))) "number" (Some (-1500.))
        (Option.bind (Obs.Json.member "x" doc) Obs.Json.to_float);
      Alcotest.(check (option string)) "unicode escape" (Some "\xc3\xa9")
        (Option.bind (Obs.Json.member "y" doc) Obs.Json.to_string_opt)

(* [to_int] feeds wire validation (counts, n, rows/cols), so a Float
   outside the exactly-representable integer range must be rejected
   rather than converted to an unspecified int. *)
let test_json_to_int_range () =
  Alcotest.(check (option int)) "int passthrough" (Some 42)
    (Obs.Json.to_int (Obs.Json.Int 42));
  Alcotest.(check (option int)) "integral float" (Some (-7))
    (Obs.Json.to_int (Obs.Json.Float (-7.)));
  Alcotest.(check (option int)) "2^53 is exact" (Some 9007199254740992)
    (Obs.Json.to_int (Obs.Json.Float 9007199254740992.));
  Alcotest.(check (option int)) "non-integral" None
    (Obs.Json.to_int (Obs.Json.Float 1.5));
  Alcotest.(check (option int)) "1e30 rejected" None
    (Obs.Json.to_int (Obs.Json.Float 1e30));
  Alcotest.(check (option int)) "-1e30 rejected" None
    (Obs.Json.to_int (Obs.Json.Float (-1e30)));
  Alcotest.(check (option int)) "infinity rejected" None
    (Obs.Json.to_int (Obs.Json.Float Float.infinity));
  Alcotest.(check (option int)) "nan rejected" None
    (Obs.Json.to_int (Obs.Json.Float Float.nan))

(* Wire payloads carry user-provided strings, so the printer must
   escape every control character (U+0000–U+001F), quotes and
   backslashes into valid JSON that parses back to the same bytes. *)
let test_json_string_escaping () =
  let roundtrip s =
    let rendered = Obs.Json.to_string (Obs.Json.String s) in
    String.iter
      (fun c ->
        if Char.code c < 0x20 then
          Alcotest.failf "raw control byte 0x%02x leaked into %S" (Char.code c)
            rendered)
      rendered;
    match Obs.Json.of_string rendered with
    | Error msg -> Alcotest.failf "escaped %S does not re-parse: %s" rendered msg
    | Ok (Obs.Json.String s') ->
        Alcotest.(check string) (Printf.sprintf "round-trip of %S" s) s s'
    | Ok _ -> Alcotest.fail "string re-parsed as non-string"
  in
  (* Every control character, one at a time and embedded mid-string. *)
  for code = 0 to 0x1F do
    let c = Char.chr code in
    roundtrip (String.make 1 c);
    roundtrip (Printf.sprintf "a%cb" c)
  done;
  roundtrip "quote\" backslash\\ slash/ tab\t newline\n";
  roundtrip "\xc3\xa9 utf-8 passes through";
  (* The short forms are used where JSON defines them. *)
  Alcotest.(check string) "short escapes" "\"\\b\\f\\n\\r\\t\""
    (Obs.Json.to_string (Obs.Json.String "\b\012\n\r\t"));
  Alcotest.(check string) "\\u form for other controls" "\"\\u0000\\u001f\""
    (Obs.Json.to_string (Obs.Json.String "\x00\x1f"));
  (* Object keys are escaped the same way. *)
  match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Obj [ ("k\n\"", Obs.Json.Int 1) ])) with
  | Ok (Obs.Json.Obj [ (k, _) ]) -> Alcotest.(check string) "escaped key" "k\n\"" k
  | Ok _ | Error _ -> Alcotest.fail "escaped object key did not round-trip"

(* Untrusted socket input: nesting past the limit must come back as a
   structured [Error], never a stack overflow. *)
let test_json_depth_limit () =
  let nested d = String.make d '[' ^ String.make d ']' in
  (match Obs.Json.of_string (nested (Obs.Json.default_max_depth + 1)) with
  | Ok _ -> Alcotest.fail "input past the limit accepted"
  | Error _ -> ());
  (match Obs.Json.of_string (nested Obs.Json.default_max_depth) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "input at the limit rejected: %s" msg);
  (* A hostile megabyte of open brackets parses to an error, fast. *)
  (match Obs.Json.of_string (String.make 1_000_000 '[') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbounded nesting accepted");
  match Obs.Json.of_string ~max_depth:2 "[[1]]" with
  | Ok _ -> (
      match Obs.Json.of_string ~max_depth:1 "[[1]]" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "max_depth:1 accepted depth-2 input")
  | Error msg -> Alcotest.failf "max_depth:2 rejected depth-2 input: %s" msg

(* Fuzz: the parser must never raise, whatever bytes arrive. *)
let prop_parser_never_raises =
  QCheck.Test.make ~count:2000 ~name:"of_string never raises on arbitrary bytes"
    QCheck.(string_gen Gen.(char_range '\x00' '\xff'))
    (fun s ->
      match Obs.Json.of_string s with
      | Ok _ | Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "of_string %S raised %s" s (Printexc.to_string e))

(* Fuzz: printing any generated tree and parsing it back yields the
   same tree. Numbers normalize Int/Float (integral floats re-parse as
   Int), so equality is up to that identification. *)
let json_gen =
  let open QCheck.Gen in
  let any_string = string_size ~gen:(char_range '\x00' '\xff') (int_bound 12) in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Obs.Json.Null;
            map (fun b -> Obs.Json.Bool b) bool;
            map (fun i -> Obs.Json.Int i) int;
            map (fun v -> Obs.Json.Float v) (float_bound_inclusive 1e6);
            map (fun s -> Obs.Json.String s) any_string;
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 1,
              map (fun l -> Obs.Json.List l)
                (list_size (int_bound 4) (self (n / 2))) );
            ( 1,
              map (fun kvs -> Obs.Json.Obj kvs)
                (list_size (int_bound 4) (pair any_string (self (n / 2)))) );
          ])

let rec json_equal a b =
  let open Obs.Json in
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Obj x, Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
           x y
  | _ -> false

let prop_json_roundtrip =
  QCheck.Test.make ~count:500 ~name:"to_string/of_string round-trips trees"
    (QCheck.make ~print:(fun t -> Obs.Json.to_string t) json_gen)
    (fun tree ->
      match Obs.Json.of_string (Obs.Json.to_string tree) with
      | Ok tree' -> json_equal tree tree'
      | Error msg ->
          QCheck.Test.fail_reportf "rendered %S failed to parse: %s"
            (Obs.Json.to_string tree) msg)

(* --- Domain sharding ------------------------------------------------------- *)

(* Four domains hammering one counter must merge to the serial total:
   increments land in per-domain shards and only meet at snapshot
   time, so nothing may be lost or double-counted. *)
let prop_sharded_counter_merge =
  QCheck.Test.make ~count:20 ~name:"4-domain counter merge = serial total"
    QCheck.(quad (int_range 1 500) (int_range 1 500) (int_range 1 500) (int_range 1 500))
    (fun (a, b, c, d) ->
      let r = Obs.Metrics.create ~enabled:true () in
      let cnt = Obs.Metrics.counter ~registry:r ~family:"t" "n" in
      let worker k = Domain.spawn (fun () ->
          for _ = 1 to k do Obs.Metrics.incr cnt done)
      in
      let doms = List.map worker [ a; b; c; d ] in
      List.iter Domain.join doms;
      let snap = Obs.Metrics.snapshot ~registry:r () in
      counter_value (find_exn snap ~family:"t" ~name:"n") = a + b + c + d)

(* The analysis engine's counters must not depend on the worker count:
   chunk boundaries are fixed by the instance, so a 1-domain and a
   4-domain run account the same number of configurations. *)
let test_analysis_counters_domain_invariant () =
  let run domains =
    Obs.Metrics.reset ();
    Obs.Metrics.set_enabled true;
    let n = 10 in
    let proto = Raft_model.protocol (Raft_model.default n) in
    let fleet = Faultmodel.Fleet.uniform ~n ~p:0.01 () in
    ignore (Analysis.run ~strategy:Analysis.Enumeration ~domains proto fleet);
    let snap = Obs.Metrics.snapshot () in
    let v = counter_value (find_exn snap ~family:"analysis" ~name:"configs_evaluated") in
    Obs.Metrics.set_enabled false;
    Obs.Metrics.reset ();
    v
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check int) "1-domain vs 4-domain totals" serial parallel;
  Alcotest.(check int) "full enumeration" 1024 serial

let suite =
  [
    Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
    Alcotest.test_case "disabled registry" `Quick test_disabled_registry_records_nothing;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram extremes" `Quick test_histogram_extremes;
    Alcotest.test_case "snapshot jsonl round-trip" `Quick test_snapshot_jsonl_roundtrip;
    Alcotest.test_case "json parser strictness" `Quick test_json_parser_rejects_garbage;
    Alcotest.test_case "json to_int range" `Quick test_json_to_int_range;
    Alcotest.test_case "json string escaping" `Quick test_json_string_escaping;
    Alcotest.test_case "json depth limit" `Quick test_json_depth_limit;
    QCheck_alcotest.to_alcotest prop_parser_never_raises;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_sharded_counter_merge;
    Alcotest.test_case "analysis counters domain-invariant" `Quick
      test_analysis_counters_domain_invariant;
  ]
