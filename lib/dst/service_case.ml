type t = {
  wire : int;
  deadline : float;
  seeded_bug : bool;
  distinct : int;
  plan : Service.Chaos.plan;
  ops : int list;
}

let system_name = "service"

(* The grace the PR-5 deadline property allows on top of a call's
   budget (reconnect backoff, scheduling). *)
let deadline_grace = 0.75

let allowed_codes =
  [ Service.Wire.Timeout; Service.Wire.Connection_lost; Service.Wire.Overloaded;
    Service.Wire.Deadline_exceeded ]

let plan_probs (p : Service.Chaos.plan) =
  [
    p.Service.Chaos.delay_p; p.Service.Chaos.partial_write_p;
    p.Service.Chaos.truncate_p; p.Service.Chaos.garbage_p;
    p.Service.Chaos.reset_p; p.Service.Chaos.blackhole_p;
  ]

let active_faults plan =
  List.length (List.filter (fun p -> p > 0.) (plan_probs plan))

(* --- Execution --------------------------------------------------------- *)

let temp_socket tag =
  let path = Filename.temp_file ("probcons-dst-" ^ tag) ".sock" in
  Sys.remove path;
  path

let quick_config socket =
  {
    Service.Server.default_config with
    Service.Server.socket_path = Some socket;
    workers = 1;
    queue_depth = 16;
    cache_capacity = 64;
    idle_timeout_seconds = 30.;
  }

let fail invariant fmt =
  Printf.ksprintf (fun detail -> Harness.Fail { invariant; detail }) fmt

let run case =
  let pool = Service.Loadgen.query_pool case.distinct in
  let saved = !Service.Wire.seeded_bug_id0 in
  Service.Wire.seeded_bug_id0 := case.seeded_bug;
  Fun.protect
    ~finally:(fun () -> Service.Wire.seeded_bug_id0 := saved)
    (fun () ->
      let server_sock = temp_socket "server" in
      let server = Service.Server.start (quick_config server_sock) in
      Fun.protect
        ~finally:(fun () -> Service.Server.stop server)
        (fun () ->
          (* The byte-identity baseline comes from the clean direct
             path, before any fault is injected — the proxy cannot
             corrupt the reference. *)
          let expected =
            let c =
              Service.Client.connect ~wire:case.wire ~retry_for:5.
                (Service.Client.Unix_path server_sock)
            in
            Fun.protect
              ~finally:(fun () -> Service.Client.close c)
              (fun () ->
                Array.init case.distinct (fun k ->
                    let body =
                      Service.Wire.encode_request ~v:case.wire
                        { Service.Wire.id = k; query = pool.(k) }
                    in
                    match Service.Client.call_line c ~id:k body with
                    | Ok line -> line
                    | Error (code, msg) ->
                        failwith
                          (Printf.sprintf "dst baseline call %d failed: %s (%s)"
                             k
                             (Service.Wire.code_string code)
                             msg)))
          in
          let proxy_sock = temp_socket "proxy" in
          let proxy =
            Service.Chaos.start ~plan:case.plan
              ~listen:(Service.Client.Unix_path proxy_sock)
              ~upstream:(Service.Client.Unix_path server_sock)
          in
          let soak_outcome =
            Fun.protect
              ~finally:(fun () -> Service.Chaos.stop proxy)
              (fun () ->
                let c =
                  Service.Client.connect ~wire:case.wire ~retry_for:5.
                    ~timeout:case.deadline
                    ~backoff:
                      {
                        Service.Client.default_backoff with
                        seed = case.plan.Service.Chaos.seed;
                      }
                    (Service.Client.Unix_path proxy_sock)
                in
                Fun.protect
                  ~finally:(fun () -> Service.Client.close c)
                  (fun () ->
                    let rec issue index = function
                      | [] -> Harness.Pass
                      | slot :: rest -> (
                          let body =
                            Service.Wire.encode_request ~v:case.wire
                              { Service.Wire.id = slot; query = pool.(slot) }
                          in
                          let t0 = Unix.gettimeofday () in
                          let outcome =
                            Service.Client.call_line c ~id:slot body
                          in
                          let elapsed = Unix.gettimeofday () -. t0 in
                          if elapsed > case.deadline +. deadline_grace then
                            fail "call_outlives_deadline"
                              "op %d (slot %d) took %.3fs against a %gs deadline"
                              index slot elapsed case.deadline
                          else
                            match outcome with
                            | Ok line when String.equal line expected.(slot) ->
                                issue (index + 1) rest
                            | Ok line ->
                                fail "reply_integrity"
                                  "op %d (slot %d): corrupted bytes surfaced \
                                   as Ok (%d bytes, want %d)"
                                  index slot (String.length line)
                                  (String.length expected.(slot))
                            | Error (code, _) when List.mem code allowed_codes
                              ->
                                issue (index + 1) rest
                            | Error (code, msg) ->
                                fail "typed_errors_only"
                                  "op %d (slot %d): forbidden error %s (%s) \
                                   reached the client"
                                  index slot
                                  (Service.Wire.code_string code)
                                  msg)
                    in
                    issue 0 case.ops))
          in
          match soak_outcome with
          | Harness.Fail _ as f -> f
          | Harness.Pass ->
              (* Leak check: with the proxy (and its upstream legs) torn
                 down, the reactor's connection table must drain. *)
              let rec drain tries =
                let n = Service.Server.connection_count server in
                if n = 0 then Harness.Pass
                else if tries = 0 then
                  fail "leak_free_drain"
                    "server still holds %d connections after the proxy died" n
                else begin
                  Unix.sleepf 0.05;
                  drain (tries - 1)
                end
              in
              drain 100))

(* --- Generation -------------------------------------------------------- *)

let generate ~wire ~seeded_bug rng =
  let channel p_max = if Prob.Rng.bool rng 0.55 then Prob.Rng.float rng *. p_max else 0. in
  let plan =
    {
      Service.Chaos.seed = Prob.Rng.int rng 1_000_000_000;
      delay_p = channel 0.3;
      max_delay = 0.02;
      partial_write_p = channel 0.25;
      truncate_p = channel 0.15;
      garbage_p = channel 0.3;
      reset_p = channel 0.15;
      blackhole_p = channel 0.1;
    }
  in
  let distinct = 4 in
  let ops =
    List.init (2 + Prob.Rng.int rng 15) (fun _ -> Prob.Rng.int rng distinct)
  in
  { wire; deadline = 0.6; seeded_bug; distinct; plan; ops }

(* --- Size and shrinking ------------------------------------------------- *)

let size case =
  {
    Harness.units = active_faults case.plan + List.length case.ops;
    weight =
      List.fold_left ( +. ) 0. (plan_probs case.plan)
      +. case.plan.Service.Chaos.max_delay;
  }

let drop_nth lst n = List.filteri (fun i _ -> i <> n) lst

let candidates case =
  let plan = case.plan in
  let with_plan plan = { case with plan } in
  let zero_channels =
    List.filter_map
      (fun (p, set) -> if p > 0. then Some (with_plan (set 0.)) else None)
      [
        (plan.Service.Chaos.delay_p, fun v -> { plan with Service.Chaos.delay_p = v });
        (plan.Service.Chaos.partial_write_p, fun v -> { plan with Service.Chaos.partial_write_p = v });
        (plan.Service.Chaos.truncate_p, fun v -> { plan with Service.Chaos.truncate_p = v });
        (plan.Service.Chaos.garbage_p, fun v -> { plan with Service.Chaos.garbage_p = v });
        (plan.Service.Chaos.reset_p, fun v -> { plan with Service.Chaos.reset_p = v });
        (plan.Service.Chaos.blackhole_p, fun v -> { plan with Service.Chaos.blackhole_p = v });
      ]
  in
  let len = List.length case.ops in
  let op_halves =
    if len >= 2 then
      [ { case with ops = List.filteri (fun i _ -> i < len / 2) case.ops } ]
    else []
  in
  let op_singles =
    if len >= 1 && len <= 8 then
      List.init len (fun i -> { case with ops = drop_nth case.ops i })
    else if len >= 2 then [ { case with ops = drop_nth case.ops (len - 1) } ]
    else []
  in
  let narrow_delay =
    (* Narrow the latency window: meaningful only while delays fire. *)
    if plan.Service.Chaos.max_delay > 0.001 && plan.Service.Chaos.delay_p > 0.
    then
      [
        with_plan { plan with Service.Chaos.max_delay = plan.Service.Chaos.max_delay /. 2. };
      ]
    else []
  in
  op_halves @ zero_channels @ op_singles @ narrow_delay

(* --- JSON codec --------------------------------------------------------- *)

let encode case =
  {
    Repro.scenario =
      Obs.Json.Obj
        [
          ("wire", Obs.Json.Int case.wire);
          ("deadline", Obs.Json.number case.deadline);
          ("seeded_bug", Obs.Json.Bool case.seeded_bug);
          ("distinct", Obs.Json.Int case.distinct);
        ];
    plan = Service.Chaos.plan_to_json case.plan;
    ops = Obs.Json.List (List.map (fun s -> Obs.Json.Int s) case.ops);
  }

let decode { Repro.scenario; plan; ops } =
  let ( let* ) = Result.bind in
  let* wire =
    match Obs.Json.member "wire" scenario with
    | Some (Obs.Json.Int v)
      when v >= Service.Wire.min_protocol_version
           && v <= Service.Wire.protocol_version ->
        Ok v
    | Some (Obs.Json.Int v) -> Error (Printf.sprintf "wire %d out of range" v)
    | _ -> Error "missing integer wire"
  in
  let* deadline =
    match Option.bind (Obs.Json.member "deadline" scenario) Obs.Json.to_float with
    | Some v when Float.is_finite v && v > 0. && v <= 30. -> Ok v
    | Some _ -> Error "deadline must be in (0, 30]"
    | None -> Error "missing numeric deadline"
  in
  let* seeded_bug =
    match Obs.Json.member "seeded_bug" scenario with
    | Some (Obs.Json.Bool b) -> Ok b
    | Some _ -> Error "seeded_bug must be a boolean"
    | None -> Ok false
  in
  let* distinct =
    match Obs.Json.member "distinct" scenario with
    | Some (Obs.Json.Int d) when d >= 1 && d <= 8 -> Ok d
    | Some _ -> Error "distinct must be in 1..8"
    | None -> Error "missing integer distinct"
  in
  let* plan = Service.Chaos.plan_of_json plan in
  let* op_docs =
    match Obs.Json.to_list ops with
    | Some l when List.length l <= 64 -> Ok l
    | Some _ -> Error "at most 64 ops"
    | None -> Error "ops must be a list"
  in
  let* ops =
    List.fold_left
      (fun acc doc ->
        let* acc = acc in
        match doc with
        | Obs.Json.Int s when s >= 0 && s < distinct -> Ok (s :: acc)
        | Obs.Json.Int s -> Error (Printf.sprintf "op slot %d out of range" s)
        | _ -> Error "ops must be integers")
      (Ok []) op_docs
  in
  Ok { wire; deadline; seeded_bug; distinct; plan; ops = List.rev ops }

let system ?(wire = Service.Wire.protocol_version) ?(seeded_bug = false) () =
  {
    Harness.name = system_name;
    generate = generate ~wire ~seeded_bug;
    run;
    candidates;
    size;
    encode;
    decode;
  }
