(* Tests for the executable Raft implementation: elections, replication,
   fault tolerance, flexible quorums, and safety-violation visibility
   under deliberately broken sizings. *)

open Raft_sim

let all n = List.init n Fun.id

let run_cluster ?q_vote ?q_replicate ?(n = 5) ?(seed = 7) ?(commands = 10)
    ?(crash = []) ?(until = 30_000.) () =
  let cluster = Raft_cluster.create ~n ~seed ?q_vote ?q_replicate () in
  let cmds = List.init commands (fun i -> 1000 + i) in
  Raft_cluster.inject cluster (Dessim.Fault_injector.of_failed_nodes crash);
  Raft_cluster.submit_workload cluster ~commands:cmds ~start:500. ~interval:100.;
  Raft_cluster.run cluster ~until;
  let correct = List.filter (fun i -> not (List.mem i crash)) (all n) in
  (cluster, Raft_checker.check cluster ~expected:cmds ~correct)

let test_healthy_cluster_commits_everything () =
  let cluster, report = run_cluster () in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live" true report.Raft_checker.live;
  (* All five logs fully caught up. *)
  Array.iter
    (fun count -> Alcotest.(check int) "all applied" 10 count)
    report.Raft_checker.applied_counts;
  (* Exactly one leader stands at the end. *)
  Alcotest.(check int) "single leader" 1 (List.length (Raft_cluster.leader_ids cluster))

let test_identical_logs () =
  let cluster, _ = run_cluster ~seed:8 () in
  let reference = Raft_cluster.committed cluster 0 in
  for i = 1 to 4 do
    Alcotest.(check (list int)) "same log" reference (Raft_cluster.committed cluster i)
  done

let test_minority_crash_still_live () =
  let _, report = run_cluster ~crash:[ 0; 1 ] ~seed:9 () in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live" true report.Raft_checker.live

let test_majority_crash_not_live_but_safe () =
  let _, report = run_cluster ~crash:[ 0; 1; 2 ] ~seed:10 () in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "not live" false report.Raft_checker.live

let test_leader_crash_failover () =
  (* Let a leader emerge, kill it, and require continued progress. *)
  let n = 5 in
  let cluster = Raft_cluster.create ~n ~seed:11 () in
  let cmds = List.init 10 (fun i -> 2000 + i) in
  (* Find and crash the leader at t=2000 via a scheduled probe. *)
  let crashed = ref (-1) in
  ignore
    (Dessim.Engine.schedule_at (Raft_cluster.engine cluster) ~time:2000. (fun () ->
         match Raft_cluster.leader_ids cluster with
         | leader :: _ ->
             crashed := leader;
             Raft_node.set_down (Raft_cluster.node cluster leader) true
         | [] -> ()));
  Raft_cluster.submit_workload cluster ~commands:cmds ~start:2500. ~interval:100.;
  Raft_cluster.run cluster ~until:40_000.;
  Alcotest.(check bool) "a leader was crashed" true (!crashed >= 0);
  let correct = List.filter (fun i -> i <> !crashed) (all n) in
  let report = Raft_checker.check cluster ~expected:cmds ~correct in
  Alcotest.(check bool) "safe after failover" true (Raft_checker.safe report);
  Alcotest.(check bool) "live after failover" true report.Raft_checker.live

let test_crash_restart_catches_up () =
  let n = 3 in
  let cluster = Raft_cluster.create ~n ~seed:12 () in
  let cmds = List.init 8 (fun i -> 3000 + i) in
  Raft_cluster.inject cluster
    [ (2, Dessim.Fault_injector.Crash_restart { at = 100.; back_at = 5000. }) ];
  Raft_cluster.submit_workload cluster ~commands:cmds ~start:1000. ~interval:100.;
  Raft_cluster.run cluster ~until:40_000.;
  let report = Raft_checker.check cluster ~expected:cmds ~correct:[ 0; 1 ] in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  (* The restarted node must catch up on the log committed while it was
     down (heartbeats repair it). *)
  Alcotest.(check (list int)) "node 2 caught up"
    (Raft_cluster.committed cluster 0)
    (Raft_cluster.committed cluster 2)

let test_unsafe_vote_quorum_split_brain () =
  (* q_vote=2 of 4 violates 2|Qvc| > N; under a partition both halves
     elect, which the election-safety checker must flag. (Seed pinned:
     violations are possibilities, not certainties.) *)
  let cluster = Raft_cluster.create ~n:4 ~seed:5 ~q_vote:2 ~q_replicate:2 () in
  Raft_cluster.partition_at cluster ~time:50. [ 0; 1 ] [ 2; 3 ];
  Raft_cluster.submit_workload cluster
    ~commands:(List.init 10 (fun i -> i))
    ~start:2000. ~interval:100.;
  Raft_cluster.run cluster ~until:30_000.;
  let report = Raft_checker.check cluster ~expected:[] ~correct:(all 4) in
  Alcotest.(check bool) "election safety violated" false
    report.Raft_checker.election_safety_ok;
  Alcotest.(check bool) "violations reported" true (report.Raft_checker.violations <> [])

let test_safe_quorums_survive_partition () =
  (* Same partition, majority quorums: the minority side stalls instead
     of splitting. *)
  let cluster = Raft_cluster.create ~n:4 ~seed:5 () in
  Raft_cluster.partition_at cluster ~time:50. [ 0; 1 ] [ 2; 3 ];
  Raft_cluster.submit_workload cluster
    ~commands:(List.init 10 (fun i -> i))
    ~start:2000. ~interval:100.;
  Raft_cluster.run cluster ~until:30_000.;
  let report = Raft_checker.check cluster ~expected:[] ~correct:(all 4) in
  Alcotest.(check bool) "still safe" true (Raft_checker.safe report)

let test_flexible_quorums_structurally_safe () =
  (* q_replicate=2, q_vote=4 on n=5 satisfies Theorem 3.2; with one
     crash it must stay safe and live (4 nodes can still vote). *)
  let _, report =
    run_cluster ~q_vote:4 ~q_replicate:2 ~crash:[ 4 ] ~seed:13 ~until:60_000. ()
  in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live" true report.Raft_checker.live

let test_flexible_quorums_vote_liveness_limit () =
  (* The same sizing dies (but stays safe) once only 3 voters remain. *)
  let _, report = run_cluster ~q_vote:4 ~q_replicate:2 ~crash:[ 3; 4 ] ~seed:14 () in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "not live" false report.Raft_checker.live

let test_resilient_to_message_loss () =
  (* 10% of messages dropped: retries (election timeouts, heartbeat
     resends, log repair) must still commit everything. *)
  let cluster = Raft_cluster.create ~n:5 ~seed:3 ~drop_probability:0.1 () in
  let cmds = List.init 10 (fun i -> 100 + i) in
  Raft_cluster.submit_workload cluster ~commands:cmds ~start:1000. ~interval:200.;
  Raft_cluster.run cluster ~until:60_000.;
  let report = Raft_checker.check cluster ~expected:cmds ~correct:(all 5) in
  Alcotest.(check bool) "safe" true (Raft_checker.safe report);
  Alcotest.(check bool) "live despite loss" true report.Raft_checker.live

let test_determinism_same_seed () =
  let c1, _ = run_cluster ~seed:20 () in
  let c2, _ = run_cluster ~seed:20 () in
  for i = 0 to 4 do
    Alcotest.(check (list int))
      (Printf.sprintf "node %d identical" i)
      (Raft_cluster.committed c1 i)
      (Raft_cluster.committed c2 i)
  done

let test_submit_rejected_by_followers () =
  let cluster = Raft_cluster.create ~n:3 ~seed:21 () in
  (* Before any election nobody accepts. *)
  Alcotest.(check bool) "no leader yet" true
    (not (Raft_node.submit (Raft_cluster.node cluster 0) 1));
  Raft_cluster.run cluster ~until:5000.;
  (* After stabilization exactly the leader accepts. *)
  let acceptors = ref 0 in
  for i = 0 to 2 do
    if Raft_node.submit (Raft_cluster.node cluster i) 42 then incr acceptors
  done;
  Alcotest.(check int) "only leader accepts" 1 !acceptors

let test_terms_monotone_under_churn () =
  let cluster = Raft_cluster.create ~n:3 ~seed:22 () in
  Raft_cluster.inject cluster
    [ (0, Dessim.Fault_injector.Crash_restart { at = 1000.; back_at = 3000. });
      (1, Dessim.Fault_injector.Crash_restart { at = 4000.; back_at = 6000. }) ];
  Raft_cluster.run cluster ~until:20_000.;
  (* All nodes end within one term of each other and nonnegative. *)
  let terms = List.map (fun i -> Raft_node.current_term (Raft_cluster.node cluster i)) (all 3) in
  List.iter (fun t -> Alcotest.(check bool) "term nonnegative" true (t >= 0)) terms

let prop_random_minority_crashes_keep_raft_safe_and_live =
  QCheck.Test.make ~count:8 ~name:"random minority crash sets: safe and live"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Prob.Rng.create seed in
      let crash = Prob.Rng.sample_without_replacement rng 2 5 in
      let _, report = run_cluster ~crash ~seed ~commands:5 ~until:40_000. () in
      Raft_checker.safe report && report.Raft_checker.live)

let prop_any_crash_set_is_safe =
  QCheck.Test.make ~count:8 ~name:"arbitrary crash sets never break safety"
    QCheck.(pair (int_range 0 10_000) (int_range 0 4))
    (fun (seed, k) ->
      let rng = Prob.Rng.create seed in
      let crash = Prob.Rng.sample_without_replacement rng k 5 in
      let _, report = run_cluster ~crash ~seed ~commands:5 ~until:20_000. () in
      Raft_checker.safe report)

let suite =
  [
    Alcotest.test_case "healthy cluster" `Quick test_healthy_cluster_commits_everything;
    Alcotest.test_case "identical logs" `Quick test_identical_logs;
    Alcotest.test_case "minority crash live" `Quick test_minority_crash_still_live;
    Alcotest.test_case "majority crash safe, dead" `Quick
      test_majority_crash_not_live_but_safe;
    Alcotest.test_case "leader crash failover" `Quick test_leader_crash_failover;
    Alcotest.test_case "crash-restart catch-up" `Quick test_crash_restart_catches_up;
    Alcotest.test_case "unsafe quorum split brain" `Quick test_unsafe_vote_quorum_split_brain;
    Alcotest.test_case "safe quorums under partition" `Quick
      test_safe_quorums_survive_partition;
    Alcotest.test_case "flexible quorums safe+live" `Quick
      test_flexible_quorums_structurally_safe;
    Alcotest.test_case "flexible quorum liveness limit" `Quick
      test_flexible_quorums_vote_liveness_limit;
    Alcotest.test_case "resilient to message loss" `Quick test_resilient_to_message_loss;
    Alcotest.test_case "determinism" `Quick test_determinism_same_seed;
    Alcotest.test_case "submit routing" `Quick test_submit_rejected_by_followers;
    Alcotest.test_case "terms under churn" `Quick test_terms_monotone_under_churn;
    QCheck_alcotest.to_alcotest prop_random_minority_crashes_keep_raft_safe_and_live;
    QCheck_alcotest.to_alcotest prop_any_crash_set_is_safe;
  ]
