(* Counter totals must not depend on how many domains executed the
   chunks: everything below is incremented per-chunk or per-config with
   chunk boundaries fixed by [Parallel.Chunked], so 1-domain and
   N-domain runs merge to identical totals. *)
let m_runs = Obs.Metrics.counter ~family:"analysis" "runs"
let m_configs = Obs.Metrics.counter ~family:"analysis" "configs_evaluated"
let m_chunks = Obs.Metrics.counter ~family:"analysis" "chunks"
let m_chunk_seconds = Obs.Metrics.histogram ~family:"analysis" "chunk_seconds"
let m_workers = Obs.Metrics.gauge ~family:"analysis" "workers"
let m_mc_trials = Obs.Metrics.counter ~family:"analysis" "mc_trials"
let m_mc_safe = Obs.Metrics.counter ~family:"analysis" "mc_safe_hits"
let m_mc_live = Obs.Metrics.counter ~family:"analysis" "mc_live_hits"
let m_mc_both = Obs.Metrics.counter ~family:"analysis" "mc_both_hits"

type strategy =
  | Auto
  | Count_dp
  | Enumeration
  | Monte_carlo of int

type result = {
  protocol : string;
  p_safe : float;
  p_live : float;
  p_safe_live : float;
  engine : string;
  ci_safe : (float * float) option;
  ci_live : (float * float) option;
  ci_safe_live : (float * float) option;
}

(* "enumeration-binary/8d": the engine name records how many domains
   produced the numbers (no suffix when sequential). *)
let engine_tag ~workers base =
  if workers > 1 then Printf.sprintf "%s/%dd" base workers else base

let no_ci protocol ~engine ~p_safe ~p_live ~p_safe_live =
  {
    protocol;
    p_safe = Prob.Math_utils.clamp_prob p_safe;
    p_live = Prob.Math_utils.clamp_prob p_live;
    p_safe_live = Prob.Math_utils.clamp_prob p_safe_live;
    engine;
    ci_safe = None;
    ci_live = None;
    ci_safe_live = None;
  }

let run_count_dp (protocol : Protocol.t) ~crash_probs ~byz_probs =
  let safe_count, live_count =
    match (protocol.safe.by_count, protocol.live.by_count) with
    | Some s, Some l -> (s, l)
    | _ -> invalid_arg "Analysis: count engine needs count predicates"
  in
  let dist = Config.joint_count_distribution ~crash_probs ~byz_probs in
  let n = Array.length crash_probs in
  let open Prob.Math_utils in
  let p_safe = ref kahan_zero
  and p_live = ref kahan_zero
  and p_both = ref kahan_zero
  and mass = ref kahan_zero in
  for b = 0 to n do
    for c = 0 to n - b do
      let p = dist.(b).(c) in
      if p > 0. then begin
        mass := kahan_add !mass p;
        let safe = safe_count ~byz:b ~crashed:c in
        let live = live_count ~byz:b ~crashed:c in
        if safe then p_safe := kahan_add !p_safe p;
        if live then p_live := kahan_add !p_live p;
        if safe && live then p_both := kahan_add !p_both p
      end
    done
  done;
  (* The DP's total mass is 1 up to float rounding; normalizing removes
     the drift so structurally certain predicates report exactly 1. *)
  let mass = kahan_total !mass in
  let normalize k =
    let p = kahan_total k in
    if mass > 0. then p /. mass else p
  in
  no_ci protocol.name ~engine:"count-dp" ~p_safe:(normalize !p_safe)
    ~p_live:(normalize !p_live) ~p_safe_live:(normalize !p_both)

(* Per-chunk Kahan-compensated partial sums over a configuration
   iterator slice. Chunk boundaries and per-chunk float order are fixed
   by Chunked, so the totals are bit-identical across domain counts. *)
let eval_range (protocol : Protocol.t) ~crash_probs ~byz_probs iter_range ~lo ~hi =
  let open Prob.Math_utils in
  let span = Obs.Span.start m_chunk_seconds in
  let s = ref kahan_zero and l = ref kahan_zero and b = ref kahan_zero in
  iter_range ~lo ~hi (fun config ->
      let p = Config.probability ~crash_probs ~byz_probs config in
      if p > 0. then begin
        let safe = protocol.safe.full config and live = protocol.live.full config in
        if safe then s := kahan_add !s p;
        if live then l := kahan_add !l p;
        if safe && live then b := kahan_add !b p
      end);
  Obs.Metrics.incr m_chunks;
  Obs.Metrics.add m_configs (hi - lo);
  Obs.Span.stop span;
  (kahan_total !s, kahan_total !l, kahan_total !b)

let run_enumeration ?domains (protocol : Protocol.t) ~crash_probs ~byz_probs =
  let n = Array.length crash_probs in
  let all_zero a = Array.for_all (fun p -> p = 0.) a in
  let binary =
    if all_zero byz_probs && n <= Quorum.Subset.max_enumeration then Some false
    else if all_zero crash_probs && n <= Quorum.Subset.max_enumeration then
      Some true
    else None
  in
  let total, base_engine, iter_range =
    match binary with
    | Some byzantine ->
        ( Quorum.Subset.full n + 1,
          "enumeration-binary",
          fun ~lo ~hi f -> Config.iter_binary_range ~n ~byzantine ~lo ~hi f )
    | None ->
        ( Config.ternary_cardinality ~n,
          "enumeration-ternary",
          fun ~lo ~hi f -> Config.iter_ternary_range ~n ~lo ~hi f )
  in
  let workers =
    Parallel.Pool.effective ?domains
      ~tasks:(min Parallel.Chunked.default_chunks total) ()
  in
  Obs.Metrics.set m_workers workers;
  let p_safe, p_live, p_both =
    Parallel.Chunked.sum3 ?domains ~total (fun ~chunk:_ ~lo ~hi ->
        eval_range protocol ~crash_probs ~byz_probs iter_range ~lo ~hi)
  in
  no_ci protocol.name
    ~engine:(engine_tag ~workers base_engine)
    ~p_safe ~p_live ~p_safe_live:p_both

let mc_result (protocol : Protocol.t) ~engine ~trials (safe_hits, live_hits, both_hits)
    =
  let proportion hits = float_of_int hits /. float_of_int trials in
  {
    protocol = protocol.name;
    p_safe = proportion safe_hits;
    p_live = proportion live_hits;
    p_safe_live = proportion both_hits;
    engine;
    ci_safe = Some (Prob.Montecarlo.wilson_interval ~successes:safe_hits ~trials);
    ci_live = Some (Prob.Montecarlo.wilson_interval ~successes:live_hits ~trials);
    ci_safe_live = Some (Prob.Montecarlo.wilson_interval ~successes:both_hits ~trials);
  }

(* Monte-Carlo trials run in chunks, each on its own stream derived
   from (seed, chunk index): the estimate depends only on the seed and
   trial count, never on how many domains executed the chunks. *)
let mc_chunked ?domains ~trials ~seed sample_outcome =
  Parallel.Chunked.count3 ?domains ~total:trials (fun ~chunk ~lo ~hi ->
      let span = Obs.Span.start m_chunk_seconds in
      let rng = Prob.Rng.of_pair seed chunk in
      let safe_hits = ref 0 and live_hits = ref 0 and both_hits = ref 0 in
      for _ = lo to hi - 1 do
        let safe, live = sample_outcome rng in
        if safe then incr safe_hits;
        if live then incr live_hits;
        if safe && live then incr both_hits
      done;
      Obs.Metrics.incr m_chunks;
      Obs.Metrics.add m_mc_trials (hi - lo);
      Obs.Metrics.add m_mc_safe !safe_hits;
      Obs.Metrics.add m_mc_live !live_hits;
      Obs.Metrics.add m_mc_both !both_hits;
      Obs.Span.stop span;
      (!safe_hits, !live_hits, !both_hits))

let run_monte_carlo ?domains (protocol : Protocol.t) ~crash_probs ~byz_probs
    ~trials ~seed =
  Obs.Metrics.set m_workers
    (Parallel.Pool.effective ?domains
       ~tasks:(min Parallel.Chunked.default_chunks trials) ());
  let hits =
    mc_chunked ?domains ~trials ~seed (fun rng ->
        let config = Config.sample ~crash_probs ~byz_probs rng in
        (protocol.safe.full config, protocol.live.full config))
  in
  let workers =
    Parallel.Pool.effective ?domains
      ~tasks:(min Parallel.Chunked.default_chunks trials) ()
  in
  let engine = engine_tag ~workers (Printf.sprintf "monte-carlo(%d)" trials) in
  mc_result protocol ~engine ~trials hits

(* The one strategy dispatch, shared by [run] (which derives the
   probability vectors from a fleet) and [run_horizon] (which re-enters
   it per round on marginals it controls) — so a horizon point computed
   "the exact way" is bit-identical to a standalone [run] at that
   mission time. *)
let run_on_probs ?(strategy = Auto) ?(seed = 42) ?domains
    (protocol : Protocol.t) ~crash_probs ~byz_probs =
  Obs.Metrics.incr m_runs;
  let n = Array.length crash_probs in
  let has_counts =
    protocol.safe.by_count <> None && protocol.live.by_count <> None
  in
  match strategy with
  | Count_dp -> run_count_dp protocol ~crash_probs ~byz_probs
  | Enumeration -> run_enumeration ?domains protocol ~crash_probs ~byz_probs
  | Monte_carlo trials ->
      run_monte_carlo ?domains protocol ~crash_probs ~byz_probs ~trials ~seed
  | Auto ->
      if has_counts then run_count_dp protocol ~crash_probs ~byz_probs
      else if n <= 13 || (n <= Quorum.Subset.max_enumeration
                          && (Array.for_all (fun p -> p = 0.) byz_probs
                             || Array.for_all (fun p -> p = 0.) crash_probs))
      then run_enumeration ?domains protocol ~crash_probs ~byz_probs
      else
        run_monte_carlo ?domains protocol ~crash_probs ~byz_probs ~trials:200_000
          ~seed

let run ?at ?strategy ?seed ?domains (protocol : Protocol.t) fleet =
  let n = Faultmodel.Fleet.size fleet in
  if n <> protocol.n then
    invalid_arg
      (Printf.sprintf "Analysis.run: fleet size %d but protocol expects %d" n
         protocol.n);
  let crash_probs = Faultmodel.Fleet.crash_probs ?at fleet in
  let byz_probs = Faultmodel.Fleet.byz_probs ?at fleet in
  run_on_probs ?strategy ?seed ?domains protocol ~crash_probs ~byz_probs

(* --- Horizon trajectories ---------------------------------------------- *)

type horizon_point = { at : float; result : result }

let horizon_times ~horizon ~rounds =
  if rounds < 1 then invalid_arg "Analysis.horizon_times: rounds must be >= 1";
  if not (Float.is_finite horizon) || horizon <= 0. then
    invalid_arg "Analysis.horizon_times: horizon must be positive and finite";
  List.init rounds (fun k ->
      horizon *. float_of_int (k + 1) /. float_of_int rounds)

(* Sum the count distribution under the protocol's count predicates
   (byz fixed at 0), mass-normalized exactly like [run_count_dp]. *)
let result_of_pmf (protocol : Protocol.t) ~engine dist =
  let safe_count, live_count =
    match (protocol.safe.by_count, protocol.live.by_count) with
    | Some s, Some l -> (s, l)
    | _ -> invalid_arg "Analysis: count engine needs count predicates"
  in
  let open Prob.Math_utils in
  let p_safe = ref kahan_zero
  and p_live = ref kahan_zero
  and p_both = ref kahan_zero
  and mass = ref kahan_zero in
  Array.iteri
    (fun c p ->
      if p > 0. then begin
        mass := kahan_add !mass p;
        let safe = safe_count ~byz:0 ~crashed:c in
        let live = live_count ~byz:0 ~crashed:c in
        if safe then p_safe := kahan_add !p_safe p;
        if live then p_live := kahan_add !p_live p;
        if safe && live then p_both := kahan_add !p_both p
      end)
    dist;
  let mass = kahan_total !mass in
  let normalize k =
    let p = kahan_total k in
    if mass > 0. then p /. mass else p
  in
  no_ci protocol.name ~engine ~p_safe:(normalize !p_safe)
    ~p_live:(normalize !p_live) ~p_safe_live:(normalize !p_both)

let run_horizon ?(strategy = Auto) ?seed ?domains ~times (protocol : Protocol.t)
    fleet =
  let n = Faultmodel.Fleet.size fleet in
  if n <> protocol.n then
    invalid_arg
      (Printf.sprintf "Analysis.run_horizon: fleet size %d but protocol expects %d"
         n protocol.n);
  let has_counts =
    protocol.safe.by_count <> None && protocol.live.by_count <> None
  in
  let all_zero a = Array.for_all (fun p -> p = 0.) a in
  (* Incremental fast path: under Auto with count predicates and no
     Byzantine mass, later rounds reuse the previous round's
     Poisson-binomial distribution via O(n)-per-changed-node
     divide-out/multiply-in (PR 8) instead of the O(n^2) scratch DP.
     Round one is always computed by the exact shared dispatch, so a
     [Static]-only trajectory is bit-identical to [Analysis.run] at
     every round (the marginals never change and every round reuses the
     round-one result verbatim). *)
  let engine = ref None in
  let prev : (float array * float array * result) option ref = ref None in
  let exact ~crash_probs ~byz_probs =
    engine := None;
    run_on_probs ~strategy ?seed ?domains protocol ~crash_probs ~byz_probs
  in
  List.map
    (fun at ->
      let crash_probs = Faultmodel.Fleet.crash_probs ~at fleet in
      let byz_probs = Faultmodel.Fleet.byz_probs ~at fleet in
      let result =
        match !prev with
        | Some (pc, pb, r) when pc = crash_probs && pb = byz_probs -> r
        | stale ->
            let fast_ok =
              strategy = Auto && has_counts && all_zero byz_probs
              && stale <> None
            in
            if not fast_ok then exact ~crash_probs ~byz_probs
            else begin
              (match !engine with
              | Some eng ->
                  let updates = ref [] in
                  Array.iteri
                    (fun i p ->
                      if Prob.Incremental.prob eng i <> p then
                        updates := (i, p) :: !updates)
                    crash_probs;
                  Prob.Incremental.update_batch eng (List.rev !updates)
              | None -> engine := Some (Prob.Incremental.create crash_probs));
              let eng = Option.get !engine in
              result_of_pmf protocol ~engine:"incremental-pb"
                (Prob.Incremental.pmf eng)
            end
      in
      prev := Some (crash_probs, byz_probs, result);
      { at; result })
    times

let run_correlated ?at ?(trials = 200_000) ?(seed = 42) ?domains model
    (protocol : Protocol.t) fleet =
  let n = Faultmodel.Fleet.size fleet in
  if n <> protocol.n then
    invalid_arg "Analysis.run_correlated: fleet size mismatch";
  Obs.Metrics.incr m_runs;
  Obs.Metrics.set m_workers
    (Parallel.Pool.effective ?domains
       ~tasks:(min Parallel.Chunked.default_chunks trials) ());
  let hits =
    mc_chunked ?domains ~trials ~seed (fun rng ->
        let kinds = Faultmodel.Correlation.sample_kinds model fleet ?at rng in
        let config =
          Array.map
            (function
              | Faultmodel.Correlation.Ok -> Config.Correct
              | Faultmodel.Correlation.Crash -> Config.Crashed
              | Faultmodel.Correlation.Byz -> Config.Byzantine)
            kinds
        in
        (protocol.safe.full config, protocol.live.full config))
  in
  let workers =
    Parallel.Pool.effective ?domains
      ~tasks:(min Parallel.Chunked.default_chunks trials) ()
  in
  let engine =
    engine_tag ~workers (Printf.sprintf "monte-carlo-correlated(%d)" trials)
  in
  mc_result protocol ~engine ~trials hits

let pp_result fmt r =
  Format.fprintf fmt "@[<v>%s [%s]:@ safe %a, live %a, safe&live %a@]" r.protocol
    r.engine
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.p_safe
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.p_live
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.p_safe_live
