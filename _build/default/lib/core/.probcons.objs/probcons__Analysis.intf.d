lib/core/analysis.mli: Faultmodel Format Protocol
