let magic = '\xFB'
let version = 3
let header_bytes = 6

(* Same bound as the newline framing: the two wire versions must
   reject a request of the same size the same way. *)
let max_payload_bytes = 1 lsl 20

type error =
  | Bad_magic of int
  | Bad_version of int
  | Zero_length
  | Oversized of int

let error_message = function
  | Bad_magic b -> Printf.sprintf "bad frame magic 0x%02X" b
  | Bad_version v -> Printf.sprintf "unsupported frame version %d" v
  | Zero_length -> "zero-length frame"
  | Oversized n ->
      Printf.sprintf "frame payload of %d bytes exceeds the %d-byte limit" n
        max_payload_bytes

let check_length len =
  if len < 1 || len > max_payload_bytes then
    invalid_arg (Printf.sprintf "Frame: payload of %d bytes out of bounds" len)

let header ~payload_bytes =
  check_length payload_bytes;
  let h = Bytes.create header_bytes in
  Bytes.set h 0 magic;
  Bytes.set h 1 (Char.chr version);
  Bytes.set_int32_be h 2 (Int32.of_int payload_bytes);
  Bytes.unsafe_to_string h

let encode payload =
  let len = String.length payload in
  check_length len;
  let b = Bytes.create (header_bytes + len) in
  Bytes.set b 0 magic;
  Bytes.set b 1 (Char.chr version);
  Bytes.set_int32_be b 2 (Int32.of_int len);
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* Incremental decoder: a flat grow-and-compact byte window plus a
   queue of completed payloads. [feed] cuts every complete frame it
   can, so the window only ever holds one partial frame — [buffered]
   is bounded by header + max payload. *)
type decoder = {
  mutable buf : Bytes.t;
  mutable start : int;  (* first live byte *)
  mutable len : int;  (* live byte count *)
  frames : string Queue.t;
  mutable err : error option;
}

let create () =
  { buf = Bytes.create 4096; start = 0; len = 0; frames = Queue.create (); err = None }

let reset d =
  d.start <- 0;
  d.len <- 0;
  Queue.clear d.frames;
  d.err <- None

let buffered d = d.len

let ensure_room d extra =
  let need = d.len + extra in
  if d.start > 0 && Bytes.length d.buf - d.start < need then begin
    (* Compact before growing: the live window always starts at 0
       after this, so growth is driven by frame size, not history. *)
    Bytes.blit d.buf d.start d.buf 0 d.len;
    d.start <- 0
  end;
  if Bytes.length d.buf < need then begin
    let cap = ref (Bytes.length d.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf d.start bigger 0 d.len;
    d.buf <- bigger;
    d.start <- 0
  end

(* Validate each header byte the moment it arrives: corruption is
   reported as soon as it is visible — before waiting for the rest of
   the header, let alone the (possibly huge, possibly never-arriving)
   payload. Returns the declared payload length once all 6 bytes are
   in. *)
let parse_header d =
  let at i = Bytes.get d.buf (d.start + i) in
  if d.len >= 1 && at 0 <> magic then Error (Bad_magic (Char.code (at 0)))
  else if d.len >= 2 && Char.code (at 1) <> version then
    Error (Bad_version (Char.code (at 1)))
  else if d.len < header_bytes then Ok None
  else
    let len = Int32.to_int (Bytes.get_int32_be d.buf (d.start + 2)) in
    let len = len land 0xFFFFFFFF in
    if len = 0 then Error Zero_length
    else if len > max_payload_bytes then Error (Oversized len)
    else Ok (Some len)

let rec cut d =
  if d.err = None && d.len > 0 then
    match parse_header d with
    | Error e -> d.err <- Some e
    | Ok None -> ()  (* incomplete header, all bytes valid so far *)
    | Ok (Some payload_len) ->
        if d.len >= header_bytes + payload_len then begin
          Queue.push
            (Bytes.sub_string d.buf (d.start + header_bytes) payload_len)
            d.frames;
          d.start <- d.start + header_bytes + payload_len;
          d.len <- d.len - header_bytes - payload_len;
          if d.len = 0 then d.start <- 0;
          cut d
        end

let feed d chunk len =
  if d.err = None && len > 0 then begin
    ensure_room d len;
    Bytes.blit chunk 0 d.buf (d.start + d.len) len;
    d.len <- d.len + len;
    cut d
  end

let next d =
  match Queue.take_opt d.frames with
  | Some payload -> Ok (Some payload)
  | None -> ( match d.err with Some e -> Error e | None -> Ok None)
