(** Dependent quorum formation.

    The paper's §4 warns that sizing quorums probabilistically is "non
    trivial as quorums are not formed independently, but instead must
    intersect... traditional tools like Chernoff bounds no longer
    apply". This module computes the relevant probabilities exactly for
    the canonical dependence: quorums are drawn from the {e same} set
    of currently live nodes, not independently from the whole
    universe.

    It also provides the exact pieces of the paper's E7 computation:
    the probability that a batch of failures covers the one quorum
    that matters. *)

val intersection_independent : n:int -> k1:int -> k2:int -> float
(** Baseline: two uniform quorums drawn independently from the whole
    universe (re-export of {!Probabilistic.intersection_probability}). *)

val intersection_given_live : n:int -> p:float -> k1:int -> k2:int -> float
(** Two quorums drawn uniformly from the same live set, where each of
    the [n] nodes is down independently with probability [p]:
    conditioning on the live set couples the draws. Computed exactly by
    summing over the live-set size (conditional probability given that
    both quorums can form, i.e. at least [max k1 k2] nodes are live). *)

val dependence_gain : n:int -> p:float -> k1:int -> k2:int -> float
(** [P_dependent_miss / P_independent_miss]: how much more often the
    independent model thinks quorums miss each other. > 1 means naive
    independence is pessimistic about intersection. *)

val loss_given_failures : n:int -> k:int -> j:int -> float
(** P(a batch of exactly [j] uniformly-placed failures covers one
    specific [k]-node quorum): hypergeometric
    [C(n-k, j-k) / C(n, j)]; [0.] for [j < k]. *)

val expected_loss : n:int -> k:int -> p:float -> float
(** Unconditional probability that all [k] holders of a committed
    entry fail when every node fails independently with probability
    [p]. Equals [p^k]; provided for cross-checking the summed form
    [sum_j P(j failures) * loss_given_failures]. *)
