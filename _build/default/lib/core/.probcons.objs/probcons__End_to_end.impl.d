lib/core/end_to_end.ml: Format Markov Prob
