(** Deterministic fault-injecting TCP/Unix-socket proxy.

    Sits between a client and the query server and injects the faults
    real networks produce but an [f]-threshold model ignores: added
    latency, fragmented (partial) writes, byte truncation, garbage
    bytes spliced into the stream, abrupt connection resets, and
    black-holes that accept a connection and never forward a byte.

    Every decision is drawn from {!Prob.Rng} streams derived from
    [(plan.seed, connection index, direction)], so a soak run's fault
    schedule is reproducible from its plan alone: re-running with the
    same seed and the same connection arrival order replays the same
    per-connection faults. The plan round-trips through JSON
    ({!plan_to_json} / {!plan_of_json}) so a failing run's artifact
    carries everything needed to reproduce it, and {!report} adds the
    per-fault counts (also mirrored in the ["chaos"] metrics family).

    The proxy never parses the wire protocol — it corrupts {e bytes},
    which is exactly why it is a fair adversary for testing that the
    {!Client}/{!Server} pair upholds: every request ends in a
    byte-correct reply or a typed error within its deadline, never a
    hang or a silently corrupted payload. *)

type plan = {
  seed : int;  (** Root of every per-connection RNG stream. *)
  delay_p : float;  (** Per-chunk: sleep before forwarding. *)
  max_delay : float;  (** Upper bound of the injected sleep, seconds. *)
  partial_write_p : float;
      (** Per-chunk: forward in 1–8 byte fragments with tiny pauses. *)
  truncate_p : float;
      (** Per-chunk: forward only a strict prefix and drop the rest —
          the receiver sees a line that never completes. *)
  garbage_p : float;
      (** Per-chunk: splice 1–32 random bytes into the stream before
          the payload. *)
  reset_p : float;  (** Per-chunk: tear the connection down instead. *)
  blackhole_p : float;
      (** Per-connection: accept, read, and never forward anything. *)
}

val default_plan : ?seed:int -> unit -> plan
(** Modest probabilities of every fault kind (a few percent each),
    [max_delay] of 20 ms; [seed] defaults to 0. *)

val passthrough_plan : ?seed:int -> unit -> plan
(** All probabilities zero — the proxy forwards bytes untouched
    (transparency is itself worth a test). *)

val plan_to_json : plan -> Obs.Json.t
val plan_of_json : Obs.Json.t -> (plan, string) result
(** Total: missing or non-numeric fields are an [Error]. Probabilities
    must lie in [0,1] and [max_delay] must be non-negative. *)

type t

val start : plan:plan -> listen:Client.target -> upstream:Client.target -> t
(** Bind [listen], forward every accepted connection to [upstream],
    and return immediately. Each direction of each connection runs on
    its own pump thread. Raises [Unix.Unix_error] if binding fails. *)

val set_plan : t -> plan -> unit
(** Swap the fault plan on a running proxy. Per-chunk dice (delay,
    garbage, truncation, partial writes, resets) switch immediately on
    live flows; accept-time decisions (blackholing) roll per
    connection, so live connections are reset and the re-established
    ones roll against the new plan. This is how the inter-replica
    tests turn a healthy link into a black hole mid-append. *)

val stop : t -> unit
(** Close the listener and every live connection, then join all pump
    threads. Idempotent. *)

val counts : t -> (string * int) list
(** Per-fault injection counts since {!start}, sorted by name:
    [connections], [blackholed], [resets], [truncations],
    [garbage_injections], [delays], [partial_writes],
    [chunks_forwarded]. *)

val report : t -> Obs.Json.t
(** [{"plan": ..., "counts": {...}}] — the reproducibility artifact a
    failing soak run uploads. *)
