type t = {
  nodes : int;
  ticks : int;
  seed : int;
  quorum : int;
  target_nines : float;
  dynamic : bool;
}

let system_name = "fleet"

let max_nodes = 24
let max_ticks = 64

let config case =
  let cfg =
    Fleetctl.Controller.default_config ~seed:case.seed ~ticks:case.ticks
      ~dynamic:case.dynamic ~nodes:case.nodes ()
  in
  {
    cfg with
    Fleetctl.Controller.quorum = case.quorum;
    target_live = Prob.Nines.to_prob case.target_nines;
    verify = true;
  }

(* The scratch recompute the divergence check compares against carries
   its own rounding (an uncompensated O(n) convolution per
   coefficient), so the invariant allows the engine's drift bound plus
   that O(n eps) room. *)
let divergence_allowance case =
  Prob.Incremental.default_drift_bound
  +. (16. *. float_of_int case.nodes *. epsilon_float)

let fail invariant fmt =
  Printf.ksprintf (fun detail -> Harness.Fail { invariant; detail }) fmt

let run case =
  let cfg = config case in
  let first = Fleetctl.Controller.run cfg in
  let second = Fleetctl.Controller.run cfg in
  let bytes_of o = Obs.Json.to_string (Fleetctl.Controller.payload o) in
  let a = bytes_of first and b = bytes_of second in
  if not (String.equal a b) then
    fail "deterministic_recommendations"
      "two runs of (seed %d, %d nodes, %d ticks) rendered different payloads \
       (%d vs %d bytes)"
      case.seed case.nodes case.ticks (String.length a) (String.length b)
  else begin
    let allowed = divergence_allowance case in
    if first.Fleetctl.Controller.max_divergence > allowed then
      fail "incremental_divergence"
        "incremental distribution drifted %.3e from scratch recompute \
         (allowed %.3e) over %d ticks"
        first.Fleetctl.Controller.max_divergence allowed case.ticks
    else Harness.Pass
  end

(* --- Generation -------------------------------------------------------- *)

let generate rng =
  let nodes = 3 + Prob.Rng.int rng (max_nodes - 2) in
  let ticks = 1 + Prob.Rng.int rng 40 in
  let seed = Prob.Rng.int rng 1_000_000_000 in
  let quorum =
    (* Mostly majority — the controller's default — with a tail of
       tighter quorums that actually make the liveness target slip and
       the recommendation path run. *)
    if Prob.Rng.bool rng 0.5 then (nodes / 2) + 1
    else 1 + Prob.Rng.int rng nodes
  in
  let target_nines = 1. +. (Prob.Rng.float rng *. 4.) in
  (* A third of the soak runs against the Markov ground-truth
     processes: determinism and divergence invariants must hold
     whether the fleet drifts by steps or by process. *)
  let dynamic = Prob.Rng.bool rng (1. /. 3.) in
  { nodes; ticks; seed; quorum; target_nines; dynamic }

(* --- Size and shrinking ------------------------------------------------- *)

let size case =
  { Harness.units = case.ticks + case.nodes; weight = case.target_nines }

let clamp_quorum ~nodes q = max 1 (min q nodes)

let candidates case =
  let halve_ticks =
    if case.ticks >= 2 then [ { case with ticks = case.ticks / 2 } ] else []
  in
  let drop_tick =
    if case.ticks >= 1 then [ { case with ticks = case.ticks - 1 } ] else []
  in
  let shrink_nodes =
    if case.nodes > 3 then
      let nodes = case.nodes - 1 in
      [ { case with nodes; quorum = clamp_quorum ~nodes case.quorum } ]
    else []
  in
  let halve_nodes =
    if case.nodes > 6 then
      let nodes = case.nodes / 2 in
      [ { case with nodes; quorum = clamp_quorum ~nodes case.quorum } ]
    else []
  in
  let undynamic = if case.dynamic then [ { case with dynamic = false } ] else [] in
  undynamic @ halve_ticks @ halve_nodes @ shrink_nodes @ drop_tick

(* --- JSON codec --------------------------------------------------------- *)

let encode case =
  {
    Repro.scenario =
      Obs.Json.Obj
        ([
           ("nodes", Obs.Json.Int case.nodes);
           ("seed", Obs.Json.Int case.seed);
           ("quorum", Obs.Json.Int case.quorum);
           ("target_nines", Obs.Json.number case.target_nines);
         ]
        (* Encoded only when true: every pre-dynamic committed artifact
           keeps its exact bytes and decodes as a static-drift case. *)
        @ if case.dynamic then [ ("dynamic", Obs.Json.Bool true) ] else []);
    (* The fault plan is the telemetry stream's drift schedule — fully
       derived from the seed, so the plan records the derivation
       parameters the default config pins. *)
    plan =
      (let s =
         Fleetctl.Stream.default_config ~seed:case.seed ~nodes:case.nodes ()
       in
       Obs.Json.Obj
         [
           ("drift_every", Obs.Json.Int s.Fleetctl.Stream.drift_every);
           ("drift_factor", Obs.Json.number s.Fleetctl.Stream.drift_factor);
         ]);
    ops = Obs.Json.List (List.init case.ticks (fun i -> Obs.Json.Int (i + 1)));
  }

let decode { Repro.scenario; plan = _; ops } =
  let ( let* ) = Result.bind in
  let int_field name lo hi =
    match Obs.Json.member name scenario with
    | Some (Obs.Json.Int v) when v >= lo && v <= hi -> Ok v
    | Some (Obs.Json.Int v) ->
        Error (Printf.sprintf "%s %d out of [%d, %d]" name v lo hi)
    | _ -> Error (Printf.sprintf "missing integer %s" name)
  in
  let* nodes = int_field "nodes" 1 max_nodes in
  let* seed = int_field "seed" 0 max_int in
  let* quorum = int_field "quorum" 1 nodes in
  let* target_nines =
    match
      Option.bind (Obs.Json.member "target_nines" scenario) Obs.Json.to_float
    with
    | Some v when Float.is_finite v && v > 0. && v <= 12. -> Ok v
    | Some _ -> Error "target_nines must be in (0, 12]"
    | None -> Error "missing numeric target_nines"
  in
  let* ticks =
    match Obs.Json.to_list ops with
    | Some l when List.length l <= max_ticks -> Ok (List.length l)
    | Some _ -> Error (Printf.sprintf "at most %d ticks" max_ticks)
    | None -> Error "ops must be a list (the tick sequence)"
  in
  let* dynamic =
    match Obs.Json.member "dynamic" scenario with
    | None -> Ok false
    | Some (Obs.Json.Bool b) -> Ok b
    | Some _ -> Error "dynamic must be a boolean"
  in
  Ok { nodes; ticks; seed; quorum; target_nines; dynamic }

let system () =
  {
    Harness.name = system_name;
    generate;
    run;
    candidates;
    size;
    encode;
    decode;
  }
