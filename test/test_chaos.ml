(* The chaos-hardening layer: Linebuf framing, the fault-injecting
   proxy, the resilient client, and the server's self-protection
   (ping, idle timeout, connection cap). The headline property: no
   fault schedule may keep [Client.call_line] busy past its deadline
   or hand it corrupted bytes as a success. *)

open Service

let with_watchdog ?(timeout = 60.) f =
  let outcome = ref None in
  let th =
    Thread.create (fun () -> outcome := Some (try Ok (f ()) with e -> Error e)) ()
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    match !outcome with
    | Some (Ok ()) -> Thread.join th
    | Some (Error e) ->
        Thread.join th;
        raise e
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "test timed out after %gs" timeout
        else begin
          Thread.delay 0.02;
          wait ()
        end
  in
  wait ()

let temp_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "probcons-chaos-%d-%d.sock" (Unix.getpid ()) !counter)

let json_field name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

(* --- Linebuf ----------------------------------------------------------- *)

let feed_string buf s =
  let b = Bytes.of_string s in
  Linebuf.feed buf b (Bytes.length b)

let test_linebuf_reassembly () =
  let buf = Linebuf.create () in
  (* One chunk carrying several lines plus a tail fragment. *)
  feed_string buf "alpha\nbeta\ngam";
  Alcotest.(check (option string)) "first" (Some "alpha") (Linebuf.next buf);
  Alcotest.(check (option string)) "second" (Some "beta") (Linebuf.next buf);
  Alcotest.(check (option string)) "tail buffered" None (Linebuf.next buf);
  Alcotest.(check int) "partial length" 3 (Linebuf.partial_length buf);
  (* Byte-at-a-time delivery completes the buffered line. *)
  feed_string buf "m";
  feed_string buf "a";
  feed_string buf "\n";
  Alcotest.(check (option string)) "reassembled" (Some "gamma")
    (Linebuf.next buf);
  (* Empty lines are real lines; reset drops everything. *)
  feed_string buf "\n\npartial";
  Alcotest.(check (option string)) "empty line" (Some "") (Linebuf.next buf);
  Linebuf.reset buf;
  Alcotest.(check (option string)) "reset drops queued" None (Linebuf.next buf);
  Alcotest.(check int) "reset drops partial" 0 (Linebuf.partial_length buf)

let test_linebuf_linear_cost () =
  (* The O(n^2) [pending ^ chunk] bug this module replaced would take
     minutes here: a 4 MB line fed in 512-byte chunks. *)
  let buf = Linebuf.create () in
  let chunk = Bytes.make 512 'x' in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 8192 do
    Linebuf.feed buf chunk 512
  done;
  feed_string buf "\n";
  (match Linebuf.next buf with
  | Some line ->
      Alcotest.(check int) "line length" (8192 * 512) (String.length line)
  | None -> Alcotest.fail "line did not complete");
  Alcotest.(check bool) "linear-time assembly" true
    (Unix.gettimeofday () -. t0 < 5.)

(* --- Fault plan JSON ---------------------------------------------------- *)

let test_plan_roundtrip () =
  let plan = Chaos.default_plan ~seed:1234 () in
  (match Chaos.plan_of_json (Chaos.plan_to_json plan) with
  | Ok p -> Alcotest.(check bool) "round-trips" true (p = plan)
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg);
  let reject doc msg =
    match Chaos.plan_of_json doc with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail msg
  in
  reject (Obs.Json.Obj []) "empty plan must not parse";
  (match Chaos.plan_to_json plan with
  | Obs.Json.Obj fields ->
      reject
        (Obs.Json.Obj
           (List.map
              (fun (k, v) ->
                if k = "reset_p" then (k, Obs.Json.Float 1.5) else (k, v))
              fields))
        "out-of-range probability must not parse"
  | _ -> Alcotest.fail "plan_to_json must be an object")

(* --- End-to-end through the proxy --------------------------------------- *)

let quick_config socket =
  {
    Server.default_config with
    Server.socket_path = Some socket;
    workers = 1;
    queue_depth = 16;
    cache_capacity = 64;
  }

let with_server ?(config = quick_config) f =
  let socket = temp_socket () in
  let server = Server.start (config socket) in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server socket)

let with_proxy ~plan ~upstream f =
  let listen = temp_socket () in
  let proxy =
    Chaos.start ~plan
      ~listen:(Client.Unix_path listen)
      ~upstream:(Client.Unix_path upstream)
  in
  Fun.protect ~finally:(fun () -> Chaos.stop proxy) (fun () -> f proxy listen)

let query k =
  match
    Probcons.Scenario.make ~protocol:"raft" ~mix:[ (3 + (2 * k), 0.01) ] ()
  with
  | Ok scenario -> Wire.Analyze { scenario }
  | Error msg -> Alcotest.failf "bad test scenario: %s" msg

let baseline_lines socket n =
  let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      Array.init n (fun k ->
          match
            Client.call_line c ~id:k
              (Wire.encode_request { Wire.id = k; query = query k })
          with
          | Ok line -> line
          | Error (code, msg) ->
              Alcotest.failf "baseline call %d failed: %s (%s)" k
                (Wire.code_string code) msg))

let test_passthrough_transparent () =
  with_watchdog (fun () ->
      with_server (fun _server socket ->
          let expected = baseline_lines socket 3 in
          with_proxy ~plan:(Chaos.passthrough_plan ()) ~upstream:socket
            (fun proxy listen ->
              let c =
                Client.connect ~retry_for:5. ~timeout:10.
                  (Client.Unix_path listen)
              in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  for round = 0 to 5 do
                    let k = round mod 3 in
                    match
                      Client.call_line c ~id:k
                        (Wire.encode_request { Wire.id = k; query = query k })
                    with
                    | Ok line ->
                        Alcotest.(check string) "byte-identical via proxy"
                          expected.(k) line
                    | Error (code, msg) ->
                        Alcotest.failf "call failed through passthrough: %s (%s)"
                          (Wire.code_string code) msg
                  done);
              let counts = Chaos.counts proxy in
              let get name = List.assoc name counts in
              Alcotest.(check bool) "connections seen" true (get "connections" >= 1);
              Alcotest.(check bool) "chunks forwarded" true
                (get "chunks_forwarded" >= 1);
              List.iter
                (fun name ->
                  Alcotest.(check int) ("no " ^ name) 0 (get name))
                [
                  "blackholed"; "resets"; "truncations"; "garbage_injections";
                  "delays"; "partial_writes";
                ])))

let test_blackhole_times_out () =
  with_watchdog (fun () ->
      with_server (fun _server socket ->
          let plan = { (Chaos.passthrough_plan ()) with Chaos.blackhole_p = 1.0 } in
          with_proxy ~plan ~upstream:socket (fun proxy listen ->
              let c =
                Client.connect ~retry_for:5. ~timeout:0.4
                  (Client.Unix_path listen)
              in
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  let t0 = Unix.gettimeofday () in
                  (match Client.call c ~id:0 (query 0) with
                  | Error (Wire.Timeout, _) -> ()
                  | Ok _ -> Alcotest.fail "a black-holed call cannot succeed"
                  | Error (code, msg) ->
                      Alcotest.failf "want timeout, got %s (%s)"
                        (Wire.code_string code) msg);
                  let elapsed = Unix.gettimeofday () -. t0 in
                  Alcotest.(check bool) "returned near the deadline" true
                    (elapsed >= 0.35 && elapsed < 2.));
              Alcotest.(check bool) "counted as blackholed" true
                (List.assoc "blackholed" (Chaos.counts proxy) >= 1))))

(* The soak property, sized for CI: under an arbitrary seeded fault
   plan, every call returns within deadline + slack, and every [Ok] is
   byte-correct. One server/proxy pair per generated seed. *)
let prop_no_call_outlives_deadline =
  QCheck.Test.make ~count:6 ~name:"chaos: calls end typed and inside deadline"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      (* [fail_reportf] raises; the watchdog re-raises it on the main
         thread, and QCheck reports it with the seed for replay. *)
      with_watchdog ~timeout:90. (fun () ->
          with_server (fun _server socket ->
              let expected = baseline_lines socket 2 in
              let plan =
                {
                  (Chaos.default_plan ~seed ()) with
                  Chaos.delay_p = 0.3;
                  max_delay = 0.05;
                  truncate_p = 0.1;
                  garbage_p = 0.1;
                  reset_p = 0.1;
                  blackhole_p = 0.2;
                }
              in
              with_proxy ~plan ~upstream:socket (fun _proxy listen ->
                  let deadline = 0.6 in
                  let c =
                    Client.connect ~retry_for:5. ~timeout:deadline
                      ~backoff:{ Client.default_backoff with seed }
                      (Client.Unix_path listen)
                  in
                  Fun.protect
                    ~finally:(fun () -> Client.close c)
                    (fun () ->
                      for r = 0 to 9 do
                        let k = r mod 2 in
                        let t0 = Unix.gettimeofday () in
                        let outcome =
                          Client.call_line c ~id:k
                            (Wire.encode_request { Wire.id = k; query = query k })
                        in
                        let elapsed = Unix.gettimeofday () -. t0 in
                        if elapsed > deadline +. 0.5 then
                          QCheck.Test.fail_reportf
                            "call %d took %.3fs (deadline %.1fs, seed %d)" r
                            elapsed deadline seed;
                        match outcome with
                        | Ok line ->
                            if not (String.equal line expected.(k)) then
                              QCheck.Test.fail_reportf
                                "seed %d: corrupted bytes surfaced as Ok" seed
                        | Error ((Wire.Timeout | Wire.Connection_lost), _) -> ()
                        | Error (code, msg) ->
                            QCheck.Test.fail_reportf
                              "seed %d: untyped failure %s (%s)" seed
                              (Wire.code_string code) msg
                      done))));
      true)

(* Regression: a half-written request followed by an abrupt reset must
   not wedge the server or poison the reply cache for the request the
   fragment was a prefix of. *)
let test_half_written_request_reset () =
  with_watchdog (fun () ->
      with_server (fun server socket ->
          let expected = baseline_lines socket 1 in
          let full = Wire.encode_request { Wire.id = 0; query = query 0 } in
          let prefix = String.sub full 0 (String.length full / 2) in
          (* Raw socket: write half a request, then reset hard. *)
          let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let n =
            Unix.write_substring fd prefix 0 (String.length prefix)
          in
          Alcotest.(check int) "prefix written" (String.length prefix) n;
          Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
          Unix.close fd;
          (* The server keeps serving, and the cached reply for the
             sliced request is still byte-correct. *)
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match Client.call_line c ~id:0 full with
              | Ok line ->
                  Alcotest.(check string) "cache not poisoned" expected.(0) line
              | Error (code, msg) ->
                  Alcotest.failf "server wedged after reset: %s (%s)"
                    (Wire.code_string code) msg);
          (* The torn connection's reader is released. *)
          let rec wait tries =
            if Server.connection_count server = 0 then ()
            else if tries = 0 then
              Alcotest.failf "reader leaked: %d connections still live"
                (Server.connection_count server)
            else begin
              Thread.delay 0.05;
              wait (tries - 1)
            end
          in
          wait 100))

(* --- Server self-protection -------------------------------------------- *)

let test_ping () =
  with_watchdog (fun () ->
      with_server (fun _server socket ->
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match Client.call c ~id:7 Wire.Ping with
              | Error (code, msg) ->
                  Alcotest.failf "ping failed: %s (%s)" (Wire.code_string code)
                    msg
              | Ok payload ->
                  (match json_field "wire" payload with
                  | Some (Obs.Json.String w) ->
                      Alcotest.(check string) "wire name" Wire.protocol_name w
                  | _ -> Alcotest.fail "ping payload lacks wire");
                  (match
                     Option.bind (json_field "uptime_seconds" payload)
                       Obs.Json.to_float
                   with
                  | Some up -> Alcotest.(check bool) "uptime >= 0" true (up >= 0.)
                  | None -> Alcotest.fail "ping payload lacks uptime_seconds");
                  match
                    Option.bind (json_field "queue" payload)
                      (json_field "capacity")
                  with
                  | Some (Obs.Json.Int cap) ->
                      Alcotest.(check int) "queue capacity" 16 cap
                  | _ -> Alcotest.fail "ping payload lacks queue.capacity")))

let test_idle_timeout () =
  with_watchdog (fun () ->
      let config socket =
        { (quick_config socket) with Server.idle_timeout_seconds = 0.2 }
      in
      with_server ~config (fun server socket ->
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (* An active connection is not idle-closed mid-exchange. *)
              (match Client.call c ~id:0 (query 0) with
              | Ok _ -> ()
              | Error (code, msg) ->
                  Alcotest.failf "healthy call failed: %s (%s)"
                    (Wire.code_string code) msg);
              (* Now go silent: the server must close us, not wait
                 forever on a dead peer. *)
              (match Client.recv_line c with
              | None -> ()
              | Some line -> Alcotest.failf "unexpected line on idle: %s" line);
              let rec wait tries =
                if Server.connection_count server = 0 then ()
                else if tries = 0 then
                  Alcotest.fail "idle connection still held by the server"
                else begin
                  Thread.delay 0.05;
                  wait (tries - 1)
                end
              in
              wait 100)))

let test_max_connections () =
  with_watchdog (fun () ->
      let config socket =
        { (quick_config socket) with Server.max_connections = 1 }
      in
      with_server ~config (fun server socket ->
          let c1 = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c1)
            (fun () ->
              (* Ensure c1 is registered before probing the cap. *)
              (match Client.call c1 ~id:0 Wire.Ping with
              | Ok _ -> ()
              | Error (code, msg) ->
                  Alcotest.failf "ping failed: %s (%s)" (Wire.code_string code)
                    msg);
              Alcotest.(check int) "one live connection" 1
                (Server.connection_count server);
              (* The second accept is answered [overloaded] and closed —
                 a structured rejection, not a hang or a silent drop. *)
              (* A rejected connection never reveals its framing (no
                 byte was sent), so the server's goodbye is a legacy
                 line — read it with a wire/2 client. *)
              let c2 =
                Client.connect ~wire:2 ~retry_for:5. (Client.Unix_path socket)
              in
              Fun.protect
                ~finally:(fun () -> Client.close c2)
                (fun () ->
                  match Client.recv_line c2 with
                  | None -> Alcotest.fail "rejected connection got no error line"
                  | Some line -> (
                      match Wire.parse_response line with
                      | Ok { Wire.body = Error (Wire.Overloaded, _); _ } -> ()
                      | _ -> Alcotest.failf "want overloaded, got %s" line));
              (* The first connection is untouched by the rejection. *)
              match Client.call c1 ~id:1 Wire.Ping with
              | Ok _ -> ()
              | Error (code, msg) ->
                  Alcotest.failf "survivor broken: %s (%s)"
                    (Wire.code_string code) msg)))

let suite =
  [
    Alcotest.test_case "linebuf reassembly" `Quick test_linebuf_reassembly;
    Alcotest.test_case "linebuf linear cost" `Quick test_linebuf_linear_cost;
    Alcotest.test_case "fault plan json round-trip" `Quick test_plan_roundtrip;
    Alcotest.test_case "passthrough proxy is transparent" `Quick
      test_passthrough_transparent;
    Alcotest.test_case "blackhole yields typed timeout" `Quick
      test_blackhole_times_out;
    Alcotest.test_case "half-written request + reset" `Quick
      test_half_written_request_reset;
    Alcotest.test_case "ping" `Quick test_ping;
    Alcotest.test_case "idle timeout releases readers" `Quick test_idle_timeout;
    Alcotest.test_case "max connections rejects with overloaded" `Quick
      test_max_connections;
    QCheck_alcotest.to_alcotest prop_no_call_outlives_deadline;
  ]
