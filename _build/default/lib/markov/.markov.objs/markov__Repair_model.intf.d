lib/markov/repair_model.mli: Ctmc
