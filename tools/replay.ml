(* Re-execute committed probcons-repro/1 artifacts.

   Usage: dune exec tools/replay.exe -- FILE.json...

   Each artifact is decoded with the same total parser the harness
   emits through, dispatched on its recorded system tag, and re-run:
   an [expect: fail] artifact must fail the same invariant it records
   (the bug still reproduces), an [expect: pass] artifact must pass
   (the fix still holds). Exit status: 0 when every artifact meets its
   expectation, 1 when any replay mismatches, 2 on usage, IO or schema
   errors — CI treats both non-zero codes as a corpus failure, but the
   distinction tells you whether to fix the code or the artifact. *)

let () =
  (* A literal "--" separator reaches argv when the binary is invoked
     directly (dune exec swallows the first one). *)
  let paths =
    List.filter (fun a -> a <> "--") (List.tl (Array.to_list Sys.argv))
  in
  if paths = [] then begin
    prerr_endline "usage: replay FILE.json...";
    exit 2
  end;
  let mismatches = ref 0 and errors = ref 0 in
  List.iter
    (fun path ->
      match Dst.Repro.read ~path with
      | Error msg ->
          incr errors;
          Printf.eprintf "ERROR: %s: %s\n%!" path msg
      | Ok repro -> (
          match Dst.Registry.replay repro with
          | Ok msg -> Printf.printf "OK: %s: %s\n%!" path msg
          | Error msg ->
              incr mismatches;
              Printf.eprintf "FAIL: %s: %s\n%!" path msg))
    paths;
  if !errors > 0 then exit 2;
  if !mismatches > 0 then exit 1;
  Printf.printf "replayed %d artifact(s), all met their expectations\n"
    (List.length paths)
