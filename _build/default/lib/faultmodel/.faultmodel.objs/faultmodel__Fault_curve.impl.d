lib/faultmodel/fault_curve.ml: Array Float Format Prob
