type t = { n : int; q : Linalg.matrix }

let create n =
  if n <= 0 then invalid_arg "Ctmc.create: need at least one state";
  { n; q = Linalg.make n n }

let add_rate t ~src ~dst rate =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Ctmc.add_rate: state out of range";
  if src = dst then invalid_arg "Ctmc.add_rate: self-loop";
  if rate < 0. then invalid_arg "Ctmc.add_rate: negative rate";
  t.q.(src).(dst) <- t.q.(src).(dst) +. rate;
  t.q.(src).(src) <- t.q.(src).(src) -. rate

let size t = t.n

let generator t = Linalg.copy t.q

let steady_state t = Linalg.solve_normalized_nullspace t.q

let expected_time_to_absorption t ~absorbing ~start =
  if absorbing start then 0.
  else begin
    (* Over transient states: sum_j Q_ij h_j = -1, with h = 0 on the
       absorbing set. *)
    let transient = ref [] in
    for i = t.n - 1 downto 0 do
      if not (absorbing i) then transient := i :: !transient
    done;
    let transient = Array.of_list !transient in
    let index = Array.make t.n (-1) in
    Array.iteri (fun k i -> index.(i) <- k) transient;
    let m = Array.length transient in
    let a = Linalg.make m m and b = Array.make m (-1.) in
    for k = 0 to m - 1 do
      for kj = 0 to m - 1 do
        a.(k).(kj) <- t.q.(transient.(k)).(transient.(kj))
      done
    done;
    match Linalg.solve a b with
    | h -> h.(index.(start))
    | exception Failure _ -> infinity
  end

let absorption_probability t ~absorbing_a ~absorbing_b ~start =
  if absorbing_a start then 1.
  else if absorbing_b start then 0.
  else begin
    let transient = ref [] in
    for i = t.n - 1 downto 0 do
      if not (absorbing_a i || absorbing_b i) then transient := i :: !transient
    done;
    let transient = Array.of_list !transient in
    let index = Array.make t.n (-1) in
    Array.iteri (fun k i -> index.(i) <- k) transient;
    let m = Array.length transient in
    (* sum_{j transient} Q_ij u_j = - sum_{j in A} Q_ij. *)
    let a = Linalg.make m m and b = Array.make m 0. in
    for k = 0 to m - 1 do
      let i = transient.(k) in
      for kj = 0 to m - 1 do
        a.(k).(kj) <- t.q.(i).(transient.(kj))
      done;
      for j = 0 to t.n - 1 do
        if absorbing_a j then b.(k) <- b.(k) -. t.q.(i).(j)
      done
    done;
    match Linalg.solve a b with
    | u -> Prob.Math_utils.clamp_prob u.(index.(start))
    | exception Failure _ -> 0.
  end

let simulate t rng ~start ~horizon =
  let rec go time state acc =
    let total_rate = -.t.q.(state).(state) in
    if total_rate <= 0. then List.rev acc (* absorbing *)
    else begin
      let dwell = Prob.Rng.exponential rng total_rate in
      let time' = time +. dwell in
      if time' > horizon then List.rev acc
      else begin
        (* Pick the destination proportionally to its rate. *)
        let roll = Prob.Rng.float rng *. total_rate in
        let dst = ref state and acc_rate = ref 0. in
        (try
           for j = 0 to t.n - 1 do
             if j <> state && t.q.(state).(j) > 0. then begin
               acc_rate := !acc_rate +. t.q.(state).(j);
               if roll < !acc_rate then begin
                 dst := j;
                 raise Exit
               end
             end
           done
         with Exit -> ());
        go time' !dst ((time', !dst) :: acc)
      end
    end
  in
  go 0. start [ (0., start) ]
