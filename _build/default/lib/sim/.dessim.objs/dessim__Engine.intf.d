lib/sim/engine.mli: Prob
