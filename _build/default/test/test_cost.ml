(* Tests for the cost model and deployment optimizer. *)

open Costmodel

let test_catalog_sane () =
  let catalog = Machine.default_catalog in
  Alcotest.(check int) "four classes" 4 (List.length catalog);
  List.iter
    (fun m ->
      Alcotest.(check bool) "positive cost" true (m.Machine.hourly_cost > 0.);
      Alcotest.(check bool) "probability valid" true
        (m.Machine.fault_probability > 0. && m.Machine.fault_probability < 1.))
    catalog;
  (* The E3 arithmetic depends on spot being 10x cheaper than premium. *)
  let premium = List.hd catalog in
  let spot = List.nth catalog 3 in
  Alcotest.(check (float 1e-9)) "10x price gap" 10.
    (premium.Machine.hourly_cost /. spot.Machine.hourly_cost)

let test_fleet_construction () =
  let spot = List.nth Machine.default_catalog 3 in
  let fleet = Machine.fleet spot 9 in
  Alcotest.(check int) "size" 9 (Faultmodel.Fleet.size fleet);
  Alcotest.(check (float 1e-12)) "probability" spot.Machine.fault_probability
    (Faultmodel.Fleet.fault_probs fleet).(0)

let test_cost_accounting () =
  let premium = List.hd Machine.default_catalog in
  Alcotest.(check (float 1e-9)) "hourly" 1.5 (Machine.cluster_hourly_cost premium 3);
  Alcotest.(check bool) "carbon scales" true
    (Machine.cluster_annual_carbon premium 6 > Machine.cluster_annual_carbon premium 3)

let test_min_cluster_meets_target () =
  List.iter
    (fun machine ->
      match Optimizer.min_cluster machine ~target:0.999 () with
      | Some d ->
          Alcotest.(check bool) "meets target" true (d.Optimizer.reliability >= 0.999);
          Alcotest.(check bool) "odd size" true (d.Optimizer.n mod 2 = 1);
          (* Minimality: two fewer nodes must miss the target. *)
          if d.Optimizer.n > 1 then begin
            let smaller =
              Probcons.Raft_model.safe_and_live_uniform ~n:(d.Optimizer.n - 2)
                ~p:machine.Machine.fault_probability
            in
            Alcotest.(check bool) "minimal" true (smaller < 0.999)
          end
      | None -> Alcotest.fail "999 must be reachable")
    Machine.default_catalog

let test_optimize_picks_cheapest_feasible () =
  match Optimizer.optimize ~target:0.999 () with
  | Some best ->
      List.iter
        (fun machine ->
          match Optimizer.min_cluster machine ~target:0.999 () with
          | Some d ->
              Alcotest.(check bool) "no cheaper feasible deployment" true
                (best.Optimizer.hourly_cost <= d.Optimizer.hourly_cost +. 1e-9)
          | None -> ())
        Machine.default_catalog
  | None -> Alcotest.fail "optimization must succeed"

let test_e3_savings_band () =
  (* Spot vs premium at the 99.97% target: the paper promises ~3x.
     With integral cluster sizes the realized ratio is 2-3x. *)
  let premium = List.hd Machine.default_catalog in
  let baseline =
    match Optimizer.min_cluster premium ~target:0.9997 () with
    | Some d -> d
    | None -> Alcotest.fail "baseline"
  in
  match Optimizer.optimize ~target:0.9997 () with
  | Some best ->
      let savings = Optimizer.savings_vs ~baseline best in
      Alcotest.(check bool) "savings in [2, 3.5]" true (savings >= 2. && savings <= 3.5)
  | None -> Alcotest.fail "optimize"

let test_carbon_objective_differs () =
  (* Old hardware has lower embodied carbon but spot has the lower
     price: the two objectives must be able to disagree. *)
  let by_cost = Optimizer.optimize ~objective:Optimizer.Cost ~target:0.9997 () in
  let by_carbon = Optimizer.optimize ~objective:Optimizer.Carbon ~target:0.9997 () in
  match (by_cost, by_carbon) with
  | Some c, Some k ->
      Alcotest.(check bool) "different machines" true
        (c.Optimizer.machine.Machine.name <> k.Optimizer.machine.Machine.name)
  | _ -> Alcotest.fail "both objectives must be satisfiable"

let test_unreachable_target () =
  let spot = List.nth Machine.default_catalog 3 in
  Alcotest.(check bool) "12 nines out of reach at max_n 9" true
    (Optimizer.min_cluster spot ~target:(Prob.Nines.to_prob 12.) ~max_n:9 () = None)

let test_deployment_reliability_consistent_with_analysis () =
  (* The optimizer's quoted reliability must equal a direct analysis of
     the same fleet. *)
  let spot = List.nth Machine.default_catalog 3 in
  match Optimizer.min_cluster spot ~target:0.999 () with
  | Some d ->
      let fleet = Machine.fleet spot d.Optimizer.n in
      let direct =
        Probcons.Analysis.run
          (Probcons.Raft_model.protocol (Probcons.Raft_model.default d.Optimizer.n))
          fleet
      in
      Alcotest.(check (float 1e-12)) "consistent"
        direct.Probcons.Analysis.p_safe_live d.Optimizer.reliability
  | None -> Alcotest.fail "deployment must exist"

let test_savings_ratio_arithmetic () =
  let premium = List.hd Machine.default_catalog in
  let spot = List.nth Machine.default_catalog 3 in
  let b = Option.get (Optimizer.min_cluster premium ~target:0.99 ()) in
  let d = Option.get (Optimizer.min_cluster spot ~target:0.99 ()) in
  Alcotest.(check (float 1e-9)) "ratio is cost quotient"
    (b.Optimizer.hourly_cost /. d.Optimizer.hourly_cost)
    (Optimizer.savings_vs ~baseline:b d)

let suite =
  [
    Alcotest.test_case "catalog sane" `Quick test_catalog_sane;
    Alcotest.test_case "reliability consistent with analysis" `Quick
      test_deployment_reliability_consistent_with_analysis;
    Alcotest.test_case "savings arithmetic" `Quick test_savings_ratio_arithmetic;
    Alcotest.test_case "fleet construction" `Quick test_fleet_construction;
    Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
    Alcotest.test_case "min cluster meets target" `Quick test_min_cluster_meets_target;
    Alcotest.test_case "optimize picks cheapest" `Quick test_optimize_picks_cheapest_feasible;
    Alcotest.test_case "E3 savings band" `Quick test_e3_savings_band;
    Alcotest.test_case "carbon objective differs" `Quick test_carbon_objective_differs;
    Alcotest.test_case "unreachable target" `Quick test_unreachable_target;
  ]
