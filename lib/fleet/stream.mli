(** Seeded synthetic telemetry stream for the fleet controller.

    Every node carries a hidden ground-truth fault curve; each tick a
    round-robin batch of nodes reports a right-censored telemetry
    window drawn from its current truth via {!Faultmodel.Telemetry}.
    Ground truth drifts: periodically one node's AFR is multiplied by
    a degradation factor, so the fleet the controller believes in
    slowly stops being the fleet that exists — exactly the gap the
    refit loop is there to close.

    Everything is derived from [(seed, tick, node)] through split RNG
    streams, so a stream replays bit-identically: same seed, same
    events, same drift — the determinism the DST invariants and the
    wire cache both rely on. *)

type config = {
  seed : int;
  nodes : int;
  devices_per_node : int;  (** Device cohort observed per node report. *)
  window : float;  (** Telemetry window per report, hours. *)
  batch : int;  (** Nodes reporting per tick (round-robin). *)
  drift_every : int;  (** A degradation event every this many ticks. *)
  drift_factor : float;  (** AFR multiplier applied to the victim. *)
  base_afr_min : float;  (** Ground-truth AFR range, log-uniform. *)
  base_afr_max : float;
}

val default_config : seed:int -> nodes:int -> config
(** 256 devices/node over a one-year window, a quarter of the fleet
    reporting per tick, one 4x degradation every 5 ticks, AFRs
    log-uniform in [0.01, 0.08]. *)

type event = {
  node : int;
  observation : Faultmodel.Telemetry.observation;
}

type t

val create : config -> t
val config : t -> config
val tick_count : t -> int

val ground_truth_afr : t -> int -> float
(** The hidden per-node AFR — tests and drift checks only; the
    controller never reads it. *)

val tick : t -> event list
(** Advance one tick: apply any scheduled degradation, then draw the
    reporting batch's observations. Events are in ascending node
    order. *)

val replace : t -> int -> afr:float -> unit
(** Swap the node's hardware: reset its ground truth to [afr] — the
    stream-side effect of a controller-applied preemptive
    reconfiguration. *)
