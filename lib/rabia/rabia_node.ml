open Rabia_types

(* Typed run telemetry; [Trace] stays the source of truth for checkers. *)
let m_commits = Obs.Metrics.counter ~family:"protocol" "rabia.commits"
let m_null_commits = Obs.Metrics.counter ~family:"protocol" "rabia.null_commits"
let m_decisions = Obs.Metrics.counter ~family:"protocol" "rabia.decisions"

type config = {
  id : int;
  n : int;
  f : int;
  max_rounds_per_slot : int;
  retry_interval : float;
}

let default_config ~id ~n =
  if n < 1 then invalid_arg "Rabia_node.default_config: n must be positive";
  { id; n; f = (n - 1) / 2; max_rounds_per_slot = 200; retry_interval = 750. }

let null_command = -1

type phase = Proposing | Reporting | Voting | Settled

type slot_state = {
  proposals : int option array;  (* per sender *)
  mutable proposal_sent : bool;
  mutable candidate : int option;
  mutable phase : phase;
  mutable round : int;
  mutable my_value : int;
  reports : (int, int option array) Hashtbl.t;  (* round -> per-sender value *)
  votes : (int, int option option array) Hashtbl.t;  (* round -> per-sender vote *)
}

type t = {
  config : config;
  engine : Dessim.Engine.t;
  net : msg Dessim.Network.t;
  trace : Dessim.Trace.t;
  pending : int Queue.t;
  pending_set : (int, unit) Hashtbl.t;
  committed_set : (int, unit) Hashtbl.t;
  log : int Dessim.Vec.t;
  mutable slot : int;
  slots : (int, slot_state) Hashtbl.t;
  decisions : (int, int * int option) Hashtbl.t;  (* slot -> (value, command) *)
  announced : (int, unit) Hashtbl.t;  (* slots whose complete decision we broadcast *)
  announced_partial : (int, unit) Hashtbl.t;
      (* slots whose command-less decision we broadcast, so a candidate
         holder can complete it *)
  mutable max_seen_slot : int;  (* highest slot any message mentioned *)
  mutable down : bool;
}

let id t = t.config.id
let committed t = Dessim.Vec.to_list t.log
let current_slot t = t.slot
let alive t = not t.down

let record t tag detail =
  Dessim.Trace.record t.trace ~time:(Dessim.Engine.now t.engine) ~node:t.config.id
    ~tag ~detail

let slot_state t slot =
  match Hashtbl.find_opt t.slots slot with
  | Some s -> s
  | None ->
      let s =
        {
          proposals = Array.make t.config.n None;
          proposal_sent = false;
          candidate = None;
          phase = Proposing;
          round = 1;
          my_value = 0;
          reports = Hashtbl.create 4;
          votes = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.slots slot s;
      s

let round_slots table n round =
  match Hashtbl.find_opt table round with
  | Some a -> a
  | None ->
      let a = Array.make n None in
      Hashtbl.add table round a;
      a

let count_filled a =
  Array.fold_left (fun acc x -> if x <> None then acc + 1 else acc) 0 a

let next_proposal t =
  (* Head of the queue, skipping anything already committed. *)
  let rec go () =
    match Queue.peek_opt t.pending with
    | None -> null_command
    | Some cmd ->
        if Hashtbl.mem t.committed_set cmd then begin
          ignore (Queue.pop t.pending);
          Hashtbl.remove t.pending_set cmd;
          go ()
        end
        else cmd
  in
  go ()

(* --- Decision handling --------------------------------------------- *)

let rec note_decision t ~slot ~value ~command =
  let merged =
    match (Hashtbl.find_opt t.decisions slot, command) with
    | Some (v, Some c), _ -> (v, Some c)
    | Some (v, None), Some c -> (v, Some c)
    | Some (v, None), None -> (v, None)
    | None, _ -> (value, command)
  in
  Hashtbl.replace t.decisions slot merged;
  (* A holder of the candidate can complete a command-less decision. *)
  let merged =
    match merged with
    | 1, None -> (
        match (slot_state t slot).candidate with
        | Some c -> (1, Some c)
        | None -> merged)
    | other -> other
  in
  Hashtbl.replace t.decisions slot merged;
  let complete = match merged with 0, _ -> true | _, Some _ -> true | _, None -> false in
  if complete && not (Hashtbl.mem t.announced slot) then begin
    Hashtbl.replace t.announced slot ();
    let value, command = merged in
    Dessim.Network.broadcast t.net ~src:t.config.id
      (Decision { slot; value; command; from = t.config.id })
  end
  else if (not complete) && not (Hashtbl.mem t.announced_partial slot) then begin
    (* Ask the holders: whoever carries the candidate completes this
       and rebroadcasts with the command attached. *)
    Hashtbl.replace t.announced_partial slot ();
    Dessim.Network.broadcast t.net ~src:t.config.id
      (Decision { slot; value = 1; command = None; from = t.config.id })
  end;
  (slot_state t slot).phase <- Settled;
  try_advance_slot t

and try_advance_slot t =
  match Hashtbl.find_opt t.decisions t.slot with
  | Some (0, _) ->
      record t "commit-null" (Printf.sprintf "slot=%d" t.slot);
      Obs.Metrics.incr m_null_commits;
      t.slot <- t.slot + 1;
      try_advance_slot t
  | Some (1, Some c) ->
      if c <> null_command && not (Hashtbl.mem t.committed_set c) then begin
        Hashtbl.replace t.committed_set c ();
        Dessim.Vec.push t.log c;
        record t "commit" (Printf.sprintf "slot=%d cmd=%d" t.slot c);
        Obs.Metrics.incr m_commits
      end
      else if c = null_command then begin
        record t "commit-null" (Printf.sprintf "slot=%d" t.slot);
        Obs.Metrics.incr m_null_commits
      end;
      (* Drop the command from our own queue if we were holding it. *)
      if Hashtbl.mem t.pending_set c then begin
        let keep = Queue.create () in
        Queue.iter (fun x -> if x <> c then Queue.push x keep) t.pending;
        Queue.clear t.pending;
        Queue.transfer keep t.pending;
        Hashtbl.remove t.pending_set c
      end;
      t.slot <- t.slot + 1;
      try_advance_slot t
  | Some (1, None) -> () (* decided but command still unknown: wait *)
  | Some (_, _) | None -> try_start_slot t

(* --- Slot protocol -------------------------------------------------- *)

and try_start_slot t =
  if not t.down then begin
    let slot = t.slot in
    let s = slot_state t slot in
    if s.phase = Proposing && not s.proposal_sent then begin
      let have_work = next_proposal t <> null_command in
      let others_active = count_filled s.proposals > 0 in
      if have_work || others_active then send_proposal t slot
    end
  end

and send_proposal t slot =
  let s = slot_state t slot in
  if not s.proposal_sent then begin
    s.proposal_sent <- true;
    let command = next_proposal t in
    Dessim.Network.broadcast t.net ~src:t.config.id
      (Proposal { slot; command; from = t.config.id });
    note_proposal t ~slot ~command ~from:t.config.id
  end

and note_proposal t ~slot ~command ~from =
  let s = slot_state t slot in
  if s.proposals.(from) = None then begin
    s.proposals.(from) <- Some command;
    (* Participate as soon as the current slot sees traffic. *)
    if slot = t.slot && not s.proposal_sent then send_proposal t slot;
    check_proposals t ~slot
  end

and check_proposals t ~slot =
  let s = slot_state t slot in
  if s.phase = Proposing && s.proposal_sent
     && count_filled s.proposals >= t.config.n - t.config.f
  then begin
    (* Majority command over the WHOLE cluster becomes the candidate. *)
    let tally = Hashtbl.create 8 in
    Array.iter
      (function
        | Some c when c <> null_command ->
            Hashtbl.replace tally c (1 + Option.value (Hashtbl.find_opt tally c) ~default:0)
        | Some _ | None -> ())
      s.proposals;
    Hashtbl.iter
      (fun c count -> if 2 * count > t.config.n then s.candidate <- Some c)
      tally;
    s.my_value <- (if s.candidate <> None then 1 else 0);
    s.phase <- Reporting;
    broadcast_report t ~slot
  end

and broadcast_report t ~slot =
  let s = slot_state t slot in
  if s.round <= t.config.max_rounds_per_slot then begin
    Dessim.Network.broadcast t.net ~src:t.config.id
      (Report { slot; round = s.round; value = s.my_value; from = t.config.id });
    note_report t ~slot ~round:s.round ~value:s.my_value ~from:t.config.id
  end

and note_report t ~slot ~round ~value ~from =
  let s = slot_state t slot in
  let a = round_slots s.reports t.config.n round in
  if a.(from) = None then begin
    a.(from) <- Some value;
    check_reports t ~slot
  end

and check_reports t ~slot =
  let s = slot_state t slot in
  if s.phase = Reporting then begin
    let a = round_slots s.reports t.config.n s.round in
    if count_filled a >= t.config.n - t.config.f then begin
      let counts = [| 0; 0 |] in
      Array.iter
        (function Some v when v = 0 || v = 1 -> counts.(v) <- counts.(v) + 1 | _ -> ())
        a;
      let carried =
        if 2 * counts.(1) > t.config.n then Some 1
        else if 2 * counts.(0) > t.config.n then Some 0
        else None
      in
      s.phase <- Voting;
      Dessim.Network.broadcast t.net ~src:t.config.id
        (Vote { slot; round = s.round; value = carried; from = t.config.id });
      note_vote t ~slot ~round:s.round ~value:carried ~from:t.config.id
    end
  end

and note_vote t ~slot ~round ~value ~from =
  let s = slot_state t slot in
  let a = round_slots s.votes t.config.n round in
  if a.(from) = None then begin
    a.(from) <- Some value;
    check_votes t ~slot
  end

and check_votes t ~slot =
  let s = slot_state t slot in
  if s.phase = Voting then begin
    let a = round_slots s.votes t.config.n s.round in
    if count_filled a >= t.config.n - t.config.f then begin
      let supports = [| 0; 0 |] in
      Array.iter
        (function
          | Some (Some v) when v = 0 || v = 1 -> supports.(v) <- supports.(v) + 1
          | _ -> ())
        a;
      let threshold = t.config.f + 1 in
      if supports.(1) >= threshold then begin
        record t "decide" (Printf.sprintf "slot=%d value=1 round=%d" slot s.round);
        Obs.Metrics.incr m_decisions;
        note_decision t ~slot ~value:1 ~command:s.candidate
      end
      else if supports.(0) >= threshold then begin
        record t "decide" (Printf.sprintf "slot=%d value=0 round=%d" slot s.round);
        Obs.Metrics.incr m_decisions;
        note_decision t ~slot ~value:0 ~command:None
      end
      else begin
        (* Null-biased "coin" (as in Rabia): with no guidance, drift
           toward committing the null op. This keeps value 1 rooted in
           a genuine proposal majority — whenever 1 can be decided, a
           strict majority holds the candidate command, so at least one
           correct holder can complete any command-less decision. *)
        if supports.(1) >= 1 then s.my_value <- 1
        else if supports.(0) >= 1 then s.my_value <- 0
        else s.my_value <- 0;
        s.round <- s.round + 1;
        s.phase <- Reporting;
        broadcast_report t ~slot
      end
    end
  end

(* --- Retransmission --------------------------------------------------- *)

(* The phase machinery above is purely message-driven: a node acts only
   when a message arrives. Under a lossy network that is not enough —
   with exactly [n - f] participants alive, one dropped report or vote
   stalls the slot forever, because nobody will ever send anything for
   it again (found by the DST harness; the shrunk case lives in
   test/repro/sim_rabia_stall.json). So each node re-sends its own
   contributions for the slot it is stuck on at a fixed cadence.
   Receivers deduplicate per (round, sender), so retransmission cannot
   change what gets decided — it only makes the decision happen. *)

let resend_current_slot t =
  let slot = t.slot in
  let s = slot_state t slot in
  match Hashtbl.find_opt t.decisions slot with
  | Some (1, None) ->
      (* Decided, command still unknown: re-ask the candidate holders
         (the announce-once guard in [note_decision] only covers the
         first ask, which may have been dropped). *)
      Dessim.Network.broadcast t.net ~src:t.config.id
        (Decision { slot; value = 1; command = None; from = t.config.id })
  | Some _ -> ()
  | None ->
      if s.proposal_sent then begin
        (match s.proposals.(t.config.id) with
        | Some command ->
            Dessim.Network.broadcast t.net ~src:t.config.id
              (Proposal { slot; command; from = t.config.id })
        | None -> ());
        for round = 1 to s.round do
          (match Hashtbl.find_opt s.reports round with
          | Some a -> (
              match a.(t.config.id) with
              | Some value ->
                  Dessim.Network.broadcast t.net ~src:t.config.id
                    (Report { slot; round; value; from = t.config.id })
              | None -> ())
          | None -> ());
          match Hashtbl.find_opt s.votes round with
          | Some a -> (
              match a.(t.config.id) with
              | Some value ->
                  Dessim.Network.broadcast t.net ~src:t.config.id
                    (Vote { slot; round; value; from = t.config.id })
              | None -> ())
          | None -> ()
        done
      end
      else if next_proposal t <> null_command || t.max_seen_slot > t.slot then
        (* Nothing sent yet but there is work — or evidence the cluster
           is ahead of us (crash-restart laggard). A proposal for our
           slot is always safe, and stale-slot traffic prompts peers to
           re-send the decisions we missed. *)
        send_proposal t slot

(* --- API ------------------------------------------------------------- *)

let submit t cmd =
  if cmd = null_command then invalid_arg "Rabia_node.submit: reserved command id";
  if
    (not t.down)
    && (not (Hashtbl.mem t.committed_set cmd))
    && not (Hashtbl.mem t.pending_set cmd)
  then begin
    Queue.push cmd t.pending;
    Hashtbl.replace t.pending_set cmd ();
    try_start_slot t
  end

let handle_message t ~src msg =
  if not t.down then begin
    let seen slot = if slot > t.max_seen_slot then t.max_seen_slot <- slot in
    (* Traffic for a slot we have already finished means the sender
       missed one or more decisions (drops, or a crash-restart): re-send
       everything decided from that slot on, point-to-point, bypassing
       the announce-once guard. *)
    let answer_stale slot =
      for s = slot to t.slot - 1 do
        match Hashtbl.find_opt t.decisions s with
        | Some (value, command) when value = 0 || command <> None ->
            Dessim.Network.send t.net ~src:t.config.id ~dst:src
              (Decision { slot = s; value; command; from = t.config.id })
        | Some _ | None -> ()
      done
    in
    match msg with
    | Proposal { slot; command; from } ->
        seen slot;
        if slot >= t.slot then note_proposal t ~slot ~command ~from
        else answer_stale slot
    | Report { slot; round; value; from } ->
        seen slot;
        if slot >= t.slot then note_report t ~slot ~round ~value ~from
        else answer_stale slot
    | Vote { slot; round; value; from } ->
        seen slot;
        if slot >= t.slot then note_vote t ~slot ~round ~value ~from
        else answer_stale slot
    | Decision { slot; value; command; from = _ } ->
        seen slot;
        if not (Hashtbl.mem t.announced slot) then
          note_decision t ~slot ~value ~command
        else if value = 1 && command = None then
          (* A peer is re-asking for the command behind a decision we
             already announced: our complete announce must have been
             dropped on the way to it — answer directly. (A [0, None]
             decision is complete, not an ask: null slots carry no
             command, so answering one would just echo forever.) *)
          answer_stale slot
  end

let set_down t down =
  t.down <- down;
  Dessim.Network.set_down t.net t.config.id down;
  if down then record t "crash" ""
  else begin
    record t "restart" "";
    try_advance_slot t;
    (* Solicit: a proposal for our slot is always safe, and if the
       cluster has moved on, peers answer stale-slot traffic with the
       decisions we slept through. *)
    if not (slot_state t t.slot).proposal_sent then send_proposal t t.slot
  end

let create config ~engine ~net ~trace =
  if 2 * config.f >= config.n then invalid_arg "Rabia_node.create: requires 2f < n";
  let t =
    {
      config;
      engine;
      net;
      trace;
      pending = Queue.create ();
      pending_set = Hashtbl.create 16;
      committed_set = Hashtbl.create 64;
      log = Dessim.Vec.create ();
      slot = 1;
      slots = Hashtbl.create 32;
      decisions = Hashtbl.create 32;
      announced = Hashtbl.create 32;
      announced_partial = Hashtbl.create 8;
      max_seen_slot = 0;
      down = false;
    }
  in
  Dessim.Network.set_handler net config.id (fun ~src msg -> handle_message t ~src msg);
  if config.retry_interval > 0. then begin
    (* Staggered by id so the resends of a symmetric, fully-stuck
       cluster do not all land in the same engine timestamp. *)
    let rec tick () =
      if not t.down then resend_current_slot t;
      ignore (Dessim.Engine.schedule engine ~delay:config.retry_interval tick)
    in
    ignore
      (Dessim.Engine.schedule engine
         ~delay:(config.retry_interval +. float_of_int config.id)
         tick)
  end;
  t
