(* The OCaml 5 runtime supports at most 128 simultaneous domains,
   including the main one; stay comfortably below. *)
let max_workers = 126

let m_maps = Obs.Metrics.counter ~family:"parallel" "maps"
let m_tasks = Obs.Metrics.counter ~family:"parallel" "tasks"
let m_lane_busy = Obs.Metrics.histogram ~family:"parallel" "lane_busy_seconds"

(* Worker domains must never spawn further domains: a nested analysis
   (e.g. Analysis.run inside a Sweep cell) degrades to sequential
   instead of oversubscribing or hitting the runtime's domain cap. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let env_domains () =
  match Sys.getenv_opt "PROBCONS_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d -> Some (max 0 d)
      | None -> None)

let default_domains =
  lazy
    (match env_domains () with
    | Some d -> min d max_workers
    | None -> min max_workers (max 1 (Domain.recommended_domain_count () - 1)))

let default () = Lazy.force default_domains

let resolve domains =
  let d = match domains with Some d -> d | None -> default () in
  max 1 (min d max_workers)

let effective ?domains ~tasks () =
  if tasks <= 1 || Domain.DLS.get in_worker_key then 1
  else min (resolve domains) tasks

let map ?domains n f =
  let workers = effective ?domains ~tasks:n () in
  Obs.Metrics.incr m_maps;
  Obs.Metrics.add m_tasks n;
  if workers <= 1 then Obs.Span.time m_lane_busy (fun () -> Array.init n f)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let work () =
      let span = Obs.Span.start m_lane_busy in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f i with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set failure None (Some e))
      done;
      Obs.Span.stop span
    in
    let spawned =
      List.init (workers - 1) (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker_key true;
              work ()))
    in
    (* The calling domain is one of the lanes; while it works through
       tasks it counts as a worker too, so nested maps inside tasks
       degrade to sequential on every lane. *)
    let prev = Domain.DLS.get in_worker_key in
    Domain.DLS.set in_worker_key true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key prev) work;
    List.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
