(* Simulation validation: do executed protocols match the math?

   The paper computes P(live) by enumerating failure configurations.
   Here we close the loop (experiment E8): sample failure
   configurations from the fleet's fault probabilities, inject them
   into REAL Raft and PBFT implementations running on the
   discrete-event simulator, and compare the empirical liveness rate
   with the closed-form prediction.

   Run with: dune exec examples/simulation_validation.exe *)

let commands = List.init 5 (fun i -> 1000 + i)

let raft_trial seed plan =
  let cluster = Raft_sim.Raft_cluster.create ~n:5 ~seed () in
  Raft_sim.Raft_cluster.inject cluster plan;
  Raft_sim.Raft_cluster.submit_workload cluster ~commands ~start:500. ~interval:100.;
  Raft_sim.Raft_cluster.run cluster ~until:20_000.;
  let failed = List.map fst plan in
  let correct = List.filter (fun i -> not (List.mem i failed)) [ 0; 1; 2; 3; 4 ] in
  let report = Raft_sim.Raft_checker.check cluster ~expected:commands ~correct in
  (Raft_sim.Raft_checker.safe report, report.Raft_sim.Raft_checker.live)

let () =
  let n = 5 and p = 0.10 in
  let fleet = Faultmodel.Fleet.uniform ~n ~p () in
  let analytical =
    Probcons.Analysis.run (Probcons.Raft_model.protocol (Probcons.Raft_model.default n)) fleet
  in
  Format.printf "Raft n=%d, p=%g: analytical P(live) = %s@." n p
    (Prob.Nines.percent_string analytical.Probcons.Analysis.p_live);

  let trials = 300 in
  let rng = Prob.Rng.create 99 in
  let crash_probs = Faultmodel.Fleet.crash_probs fleet in
  let byz_probs = Array.make n 0. in
  let live_count = ref 0 and safe_count = ref 0 in
  for trial = 1 to trials do
    let plan = Dessim.Fault_injector.sample_plan rng ~crash_probs ~byz_probs in
    let safe, live = raft_trial trial plan in
    if live then incr live_count;
    if safe then incr safe_count
  done;
  let low, high = Prob.Montecarlo.wilson_interval ~successes:!live_count ~trials in
  Format.printf
    "simulated: %d/%d runs live (%.3f, 95%% CI [%.3f, %.3f]); all runs safe: %b@."
    !live_count trials
    (float_of_int !live_count /. float_of_int trials)
    low high
    (!safe_count = trials);
  let ok =
    analytical.Probcons.Analysis.p_live >= low && analytical.Probcons.Analysis.p_live <= high
  in
  Format.printf "analytical prediction inside the simulation CI: %b@.@." ok;

  (* PBFT under Byzantine primaries: with f=1 faults of any kind, a
     4-node PBFT must stay safe and (after view changes) live. *)
  Format.printf "PBFT n=4: injecting a Byzantine primary, 20 runs@.";
  let pbft_ok = ref 0 in
  for seed = 1 to 20 do
    let cluster = Pbft_sim.Pbft_cluster.create ~n:4 ~seed () in
    Pbft_sim.Pbft_cluster.inject cluster [ (0, Dessim.Fault_injector.Byzantine_from 0.) ];
    Pbft_sim.Pbft_cluster.submit_workload cluster ~commands ~start:200. ~interval:150.;
    Pbft_sim.Pbft_cluster.run cluster ~until:60_000.;
    let report =
      Pbft_sim.Pbft_checker.check cluster ~expected:commands ~correct:[ 1; 2; 3 ]
        ~honest:[ 1; 2; 3 ]
    in
    if report.Pbft_sim.Pbft_checker.agreement_ok && report.Pbft_sim.Pbft_checker.live then
      incr pbft_ok
  done;
  Format.printf "  safe and live in %d/20 runs@." !pbft_ok
