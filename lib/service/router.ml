let m_handled = Obs.Metrics.counter ~family:"service" "router_handled"

let fleet_of_groups ~byz_fraction groups =
  Faultmodel.Fleet.of_nodes
    (List.concat_map
       (fun (count, p) ->
         List.init count (fun _ ->
             Faultmodel.Node.make ~id:0 ~byz_fraction
               (Faultmodel.Fault_curve.constant p)))
       groups)

let nines p = ("nines", Obs.Json.number (Prob.Nines.of_prob p))


let availability ~system ~probs =
  let qs =
    match system with
    | Wire.Majority n -> Quorum.Quorum_system.majority n
    | Wire.Threshold { n; k } -> Quorum.Quorum_system.Threshold { n; k }
    | Wire.Wheel n -> Quorum.Quorum_system.wheel n
    | Wire.Grid { rows; cols } -> Quorum.Quorum_system.Grid { rows; cols }
  in
  let n = Quorum.Quorum_system.size qs in
  let probs =
    match probs with
    | Wire.Uniform p -> Array.make n p
    | Wire.Per_node ps -> Array.of_list ps
  in
  let a = Quorum.Quorum_system.availability qs probs in
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int n);
      ("min_quorum", Obs.Json.Int (Quorum.Quorum_system.min_quorum_size qs));
      ("availability", Obs.Json.number a);
      nines a;
    ]

let committee ~target_nines ~groups =
  let fleet = fleet_of_groups ~byz_fraction:0.0 groups in
  let target = Prob.Nines.to_prob target_nines in
  match Probnative.Committee.reliability_ranked ~target fleet with
  | None -> Obs.Json.Obj [ ("found", Obs.Json.Bool false) ]
  | Some c ->
      Obs.Json.Obj
        [
          ("found", Obs.Json.Bool true);
          ("members", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) c.members));
          ("q_per", Obs.Json.Int c.params.Probcons.Raft_model.q_per);
          ("q_vc", Obs.Json.Int c.params.Probcons.Raft_model.q_vc);
          ("p_safe_live", Obs.Json.number c.p_safe_live);
          nines c.p_safe_live;
        ]

let quorum_size ~target_live_nines ~groups =
  let fleet = fleet_of_groups ~byz_fraction:0.0 groups in
  let target_live = Prob.Nines.to_prob target_live_nines in
  match Probnative.Dynamic_quorum.best_raft ~target_live fleet with
  | None -> Obs.Json.Obj [ ("found", Obs.Json.Bool false) ]
  | Some c ->
      Obs.Json.Obj
        [
          ("found", Obs.Json.Bool true);
          ("n", Obs.Json.Int c.params.Probcons.Raft_model.n);
          ("q_per", Obs.Json.Int c.params.Probcons.Raft_model.q_per);
          ("q_vc", Obs.Json.Int c.params.Probcons.Raft_model.q_vc);
          ("p_live", Obs.Json.number c.p_live);
          ("p_safe_live", Obs.Json.number c.p_safe_live);
        ]

let markov ~n ~quorum ~afr ~mttr_hours =
  let quorum = match quorum with Some q -> q | None -> (n / 2) + 1 in
  let spec = Markov.Repair_model.of_afr ~n ~quorum ~afr ~mttr_hours in
  let a = Markov.Repair_model.availability spec in
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int n);
      ("quorum", Obs.Json.Int quorum);
      ("mttf_hours", Obs.Json.number (Markov.Repair_model.mttf spec));
      ("mtbf_hours", Obs.Json.number (Markov.Repair_model.mtbf spec));
      ("mttdl_hours", Obs.Json.number (Markov.Repair_model.mttdl spec));
      ("availability", Obs.Json.number a);
      nines a;
    ]

let plan ~target_nines ~groups =
  let fleet = fleet_of_groups ~byz_fraction:0.0 groups in
  let target = Prob.Nines.to_prob target_nines in
  match Probnative.Planner.plan ~target fleet with
  | None -> Obs.Json.Obj [ ("found", Obs.Json.Bool false) ]
  | Some p ->
      Obs.Json.Obj
        [
          ("found", Obs.Json.Bool true);
          ( "committee",
            Obs.Json.List (List.map (fun i -> Obs.Json.Int i) p.committee) );
          ("q_per", Obs.Json.Int p.quorums.Probcons.Raft_model.q_per);
          ("q_vc", Obs.Json.Int p.quorums.Probcons.Raft_model.q_vc);
          ( "timeout_multipliers",
            Obs.Json.List
              (Array.to_list (Array.map Obs.Json.number p.timeout_multipliers)) );
          ("p_live", Obs.Json.number p.p_live);
          ("p_safe_live", Obs.Json.number p.p_safe_live);
          nines p.p_safe_live;
        ]

(* One config builder for both fleet kinds — and the same derivation
   the [probcons fleet] command uses, which is what makes the CLI's
   [--json] output and both wire framings byte-identical. *)
let fleet_outcome (f : Wire.fleet_params) =
  let cfg =
    Fleetctl.Controller.default_config ~seed:f.Wire.seed ~ticks:f.Wire.ticks
      ~dynamic:f.Wire.dynamic ~nodes:f.Wire.nodes ()
  in
  let cfg =
    {
      cfg with
      Fleetctl.Controller.quorum =
        Option.value f.Wire.quorum ~default:cfg.Fleetctl.Controller.quorum;
      target_live = Prob.Nines.to_prob f.Wire.target_nines;
    }
  in
  Fleetctl.Controller.run cfg

let handle query =
  Obs.Metrics.incr m_handled;
  match query with
  | Wire.Stats -> Error (Wire.Internal, "stats is answered by the server")
  | Wire.Ping -> Error (Wire.Internal, "ping is answered by the server")
  | Wire.Scenario_put _ | Wire.Scenario_get _ | Wire.Replica_status ->
      (* Replica-plane queries need replicated state behind the server;
         a standalone [probcons serve] has none. The replica runtime
         overrides the server's handler to answer these. *)
      Error
        ( Wire.Bad_request,
          "this server is not a replica (start one with probcons replicate)" )
  | Wire.Analyze { scenario } -> (
      (* Dispatch through the protocol registry: the model's own
         byz_fraction default (overridable per scenario), the model's
         own bounds, and the registry's single payload renderer — the
         same bytes [probcons analyze --json] prints. Wire already
         validated the scenario at parse time, so an [Error] here is a
         registry-level rejection surfaced as [Bad_request]. *)
      match Probcons.Registry.analyze_json scenario with
      | Ok payload -> Ok payload
      | Error msg -> Error (Wire.Bad_request, msg)
      | exception e -> Error (Wire.Internal, Printexc.to_string e))
  | _ -> (
      match
        match query with
        | Wire.Analyze _ -> assert false
        | Wire.Availability { system; probs } -> availability ~system ~probs
        | Wire.Committee { target_nines; groups } -> committee ~target_nines ~groups
        | Wire.Quorum_size { target_live_nines; groups } ->
            quorum_size ~target_live_nines ~groups
        | Wire.Markov { n; quorum; afr; mttr_hours } ->
            markov ~n ~quorum ~afr ~mttr_hours
        | Wire.Plan { target_nines; groups } -> plan ~target_nines ~groups
        | Wire.Fleet_recommend f -> Fleetctl.Controller.payload (fleet_outcome f)
        | Wire.Fleet_ingest f ->
            Fleetctl.Controller.ingest_payload (fleet_outcome f)
        | Wire.Stats | Wire.Ping | Wire.Scenario_put _ | Wire.Scenario_get _
        | Wire.Replica_status ->
            assert false
      with
      | payload -> Ok payload
      | exception e -> Error (Wire.Internal, Printexc.to_string e))
