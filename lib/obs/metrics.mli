(** Sharded metrics registry: counters, gauges, log-scale histograms.

    Design goals, in order:

    - {b Domain-safe}: every mutation goes to one of a fixed set of
      per-domain shards chosen by [Domain.self ()], each an [Atomic.t].
      Worker domains spawned by [Parallel.Pool] record concurrently
      with no locks on the hot path; shards are merged only at
      {!snapshot} time.
    - {b Allocation-free hot path}: {!incr}, {!add}, {!set} and
      {!observe} allocate nothing — they are a flag load, a few float
      or integer operations, and one atomic read-modify-write.
    - {b Free when off}: every mutation first checks the registry's
      enabled flag (a single [Atomic.get]); with no sink attached the
      instrumented hot loops pay one predictable branch.

    Registration ({!counter} / {!gauge} / {!histogram}) is the cold
    path: it takes a mutex and is idempotent — re-registering the same
    [(family, name)] with the same kind returns the existing metric, so
    modules can register at initialization time. *)

type t
(** A registry. *)

val create : ?enabled:bool -> unit -> t
(** Fresh registry, disabled by default. *)

val default : t
(** The process-global registry every library-level metric lives in.
    Disabled until {!set_enabled}; [bin/main.exe --metrics FILE] and
    the bench harness switch it on. *)

val set_enabled : ?registry:t -> bool -> unit
val enabled : ?registry:t -> unit -> bool

val reset : ?registry:t -> unit -> unit
(** Zero every shard of every metric (registrations are kept). *)

(** {1 Instruments} *)

type counter

val counter : ?registry:t -> family:string -> string -> counter
(** Monotone event count. [family] groups related metrics in snapshots
    (e.g. ["engine"], ["protocol"], ["analysis"]). *)

val incr : counter -> unit
val add : counter -> int -> unit

type gauge

val gauge : ?registry:t -> family:string -> string -> gauge
(** Point-in-time level (queue depth, worker count). Each domain shard
    keeps its last written value; because last-writes from different
    domains cannot be ordered, a snapshot reports the {e maximum} over
    shards — a high-water mark. *)

val set : gauge -> int -> unit

type histogram

val histogram : ?registry:t -> family:string -> string -> histogram
(** Log-scale histogram over positive floats: buckets at quarter
    powers of two (ratio [2^0.25] between bucket bounds), covering
    [2^-30 .. 2^30] with under/overflow clamped to the end buckets and
    non-positive values in a dedicated zero bucket. Summaries computed
    from buckets (percentiles, min, max, mean) carry at most ~9%
    relative error. *)

val observe : histogram -> float -> unit

val live : histogram -> bool
(** Whether observations are currently being recorded — lets callers
    (e.g. {!Span}) skip reading the clock when the registry is off. *)

(** {1 Snapshots} *)

type hist_summary = {
  count : int;
  sum : float;  (** Bucket-resolution estimate, [Σ countᵢ·repᵢ]. *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value = Counter of int | Gauge of int | Histogram of hist_summary

type sample = { family : string; name : string; value : value }

type snapshot = sample list
(** Sorted by [(family, name)]; deterministic for a fixed registry. *)

val snapshot : ?registry:t -> unit -> snapshot
(** Merge all shards of all registered metrics. Registered-but-unused
    metrics appear with zero values, so a snapshot always exposes every
    metric family linked into the program. *)

val find : snapshot -> family:string -> name:string -> value option
val families : snapshot -> string list
(** Sorted, without duplicates. *)

(** {1 JSON encoding} *)

val sample_to_json : sample -> Json.t
val sample_of_json : Json.t -> (sample, string) result

val to_json : snapshot -> Json.t
(** A JSON list of sample objects. *)

val of_json : Json.t -> (snapshot, string) result

val to_jsonl : snapshot -> string
(** JSON-lines: one sample object per line. *)

val of_jsonl : string -> (snapshot, string) result

val write_jsonl : path:string -> snapshot -> unit
(** Write {!to_jsonl} to [path] (truncating). *)

val pp_value : Format.formatter -> value -> unit
