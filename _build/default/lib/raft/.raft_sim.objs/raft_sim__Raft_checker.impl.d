lib/raft/raft_checker.ml: Array Dessim Format Hashtbl List Printf Raft_cluster Raft_node Raft_types Scanf String
