type outcome = Pass | Fail of { invariant : string; detail : string }
type measure = { units : int; weight : float }

(* Lexicographic: fewer discrete pieces always wins; at equal piece
   count a smaller numeric weight (zeroed probability, narrowed
   latency window) still counts as progress. Acceptance on [smaller]
   is what makes the shrink loop monotone and terminating regardless
   of what a system's candidate list proposes. *)
let smaller a b = a.units < b.units || (a.units = b.units && a.weight < b.weight)

type 'case system = {
  name : string;
  generate : Prob.Rng.t -> 'case;
  run : 'case -> outcome;
  candidates : 'case -> 'case list;
  size : 'case -> measure;
  encode : 'case -> Repro.parts;
  decode : Repro.parts -> ('case, string) result;
}

type 'case failure = {
  episode : int;
  episode_seed : int;
  case : 'case;
  invariant : string;
  detail : string;
}

type 'case shrunk = {
  final : 'case;
  final_detail : string;
  steps : 'case list;
  attempts : int;
}

type 'case soak_outcome =
  | All_passed of { episodes : int }
  | Found of { failure : 'case failure; shrunk : 'case shrunk option }

(* Mix the episode index into its own SplitMix stream so episode k is
   replayable in isolation and inserting episodes never perturbs later
   ones. *)
let episode_seed ~seed ~episode =
  Int64.to_int (Prob.Rng.next_int64 (Prob.Rng.of_pair seed episode))

let run_episode sys ~seed ~episode =
  let eseed = episode_seed ~seed ~episode in
  let case = sys.generate (Prob.Rng.create eseed) in
  (case, sys.run case)

let no_log (_ : string) = ()

let shrink ?(max_attempts = 2000) ?(log = no_log) sys failure =
  let attempts = ref 0 in
  let rec fixpoint current detail steps =
    let cur_size = sys.size current in
    let rec try_candidates = function
      | [] -> { final = current; final_detail = detail; steps = List.rev steps;
                attempts = !attempts }
      | cand :: rest ->
          if !attempts >= max_attempts then
            { final = current; final_detail = detail; steps = List.rev steps;
              attempts = !attempts }
          else if not (smaller (sys.size cand) cur_size) then try_candidates rest
          else begin
            incr attempts;
            match sys.run cand with
            | Fail { invariant; detail = d } when invariant = failure.invariant ->
                let m = sys.size cand in
                log
                  (Printf.sprintf
                     "shrink: accepted reduction to %d units (weight %g) after \
                      %d attempts"
                     m.units m.weight !attempts);
                fixpoint cand d (cand :: steps)
            | _ -> try_candidates rest
          end
    in
    if !attempts >= max_attempts then
      { final = current; final_detail = detail; steps = List.rev steps;
        attempts = !attempts }
    else try_candidates (sys.candidates current)
  in
  fixpoint failure.case failure.detail []

let shrink_failure = shrink

let soak ?(shrink = true) ?max_attempts ?(log = no_log) sys ~seed ~episodes =
  let shrink_enabled = shrink in
  let rec go episode =
    if episode >= episodes then All_passed { episodes }
    else begin
      let eseed = episode_seed ~seed ~episode in
      let case = sys.generate (Prob.Rng.create eseed) in
      match sys.run case with
      | Pass ->
          log (Printf.sprintf "episode %d/%d: pass" (episode + 1) episodes);
          go (episode + 1)
      | Fail { invariant; detail } ->
          let m = sys.size case in
          log
            (Printf.sprintf
               "episode %d/%d: FAIL invariant %s (%d units, weight %g): %s"
               (episode + 1) episodes invariant m.units m.weight detail);
          let failure = { episode; episode_seed = eseed; case; invariant; detail } in
          let shrunk_result =
            if shrink_enabled then begin
              let s = shrink_failure ?max_attempts ~log sys failure in
              let fm = sys.size s.final in
              log
                (Printf.sprintf
                   "shrink: minimal case has %d units (weight %g) after %d \
                    candidate runs"
                   fm.units fm.weight s.attempts);
              Some s
            end
            else None
          in
          Found { failure; shrunk = shrunk_result }
    end
  in
  go 0

let to_repro sys ~seed ~elapsed_seconds failure shrunk =
  let original = sys.size failure.case in
  let final_case, final_detail, attempts =
    match shrunk with
    | Some s -> (s.final, s.final_detail, s.attempts)
    | None -> (failure.case, failure.detail, 0)
  in
  let final_size = sys.size final_case in
  {
    Repro.seed;
    episode = failure.episode;
    episode_seed = failure.episode_seed;
    system = sys.name;
    invariant = failure.invariant;
    detail = final_detail;
    expect = `Fail;
    parts = sys.encode final_case;
    shrink_attempts = attempts;
    original_units = original.units;
    original_weight = original.weight;
    shrunk_units = final_size.units;
    shrunk_weight = final_size.weight;
    elapsed_seconds;
  }

let replay sys (repro : Repro.t) =
  if repro.Repro.system <> sys.name then
    Error
      (Printf.sprintf "artifact is for system %S, not %S" repro.Repro.system
         sys.name)
  else
    match sys.decode repro.Repro.parts with
    | Error msg -> Error ("undecodable case: " ^ msg)
    | Ok case -> (
        match (sys.run case, repro.Repro.expect) with
        | Fail { invariant; detail }, `Fail
          when invariant = repro.Repro.invariant ->
            Ok
              (Printf.sprintf "reproduced: invariant %s still fails (%s)"
                 invariant detail)
        | Fail { invariant; detail }, `Fail ->
            Error
              (Printf.sprintf
                 "fails the wrong invariant: recorded %s, observed %s (%s)"
                 repro.Repro.invariant invariant detail)
        | Pass, `Fail ->
            Error
              (Printf.sprintf
                 "no longer reproduces: invariant %s held on replay"
                 repro.Repro.invariant)
        | Pass, `Pass ->
            Ok
              (Printf.sprintf "regression holds: invariant %s passes"
                 repro.Repro.invariant)
        | Fail { invariant; detail }, `Pass ->
            Error
              (Printf.sprintf
                 "regressed: invariant %s fails again (%s)" invariant detail))
