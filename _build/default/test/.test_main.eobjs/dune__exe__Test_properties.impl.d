test/test_properties.ml: Analysis Array Durability Equivalence Faultmodel Float List Pbft_model Prob Probcons Protocol QCheck QCheck_alcotest Quorum Raft_model Stake_model String Upright_model
