lib/faultmodel/fleet.mli: Format Node
