(* Distributed trust: TEEs, correlated vulnerabilities, mixed faults.

   The paper's §2 motivates fault curves beyond hardware: in a
   distributed-trust consortium (Azure Confidential Ledger, Signal's
   key recovery), nodes run in SGX/SEV enclaves. Most faults are
   crashes; Byzantine behaviour appears only when an enclave is
   compromised — and enclave vulnerabilities hit *every* node on the
   same TEE platform at once (correlated faults), with risk that can
   spike with the geopolitical context (scaled curves).

   Run with: dune exec examples/distributed_trust.exe *)

let () =
  (* A 7-member consortium. Four members run platform A enclaves, three
     run platform B. Hardware crash AFR 4%; enclave compromise turns a
     node Byzantine — rare (0.25% of faults) while no platform-wide
     vulnerability is known. *)
  let member platform id =
    Faultmodel.Node.make ~id
      ~label:(Printf.sprintf "org-%d(%s)" id platform)
      ~byz_fraction:0.0025
      (Faultmodel.Fault_curve.of_afr 0.04)
  in
  let fleet =
    Faultmodel.Fleet.of_nodes
      (List.init 7 (fun id -> member (if id < 4 then "A" else "B") id))
  in

  (* 1. Mixed faults: Raft gambles on zero Byzantine faults, PBFT pays
     full Byzantine quorums for every fault, Upright splits the budget
     (live with u faults of any kind, safe with <= 1 Byzantine). *)
  Format.printf "Mixed crash/Byzantine faults (crash AFR 4%%, byz fraction 0.25%%):@.";
  List.iter
    (fun (name, result) ->
      Format.printf "  %-8s safe %-12s live %-12s safe&live %s@." name
        (Prob.Nines.percent_string result.Probcons.Analysis.p_safe)
        (Prob.Nines.percent_string result.Probcons.Analysis.p_live)
        (Prob.Nines.percent_string result.Probcons.Analysis.p_safe_live))
    (Probcons.Upright_model.compare_with_classics fleet);

  (* 2. Correlated compromise: a vulnerability in platform A converts
     all four A-nodes to Byzantine at once with 2% annual probability.
     Independence is dangerously optimistic here. *)
  let vulnerability =
    Faultmodel.Correlation.Domains
      [ { members = [ 0; 1; 2; 3 ]; shock_probability = 0.02; conditional_failure = 1.0; byzantine_shock = true } ]
  in
  let pbft = Probcons.Pbft_model.protocol (Probcons.Pbft_model.default 7) in
  let independent = Probcons.Analysis.run pbft fleet in
  let correlated =
    Probcons.Analysis.run_correlated ~trials:400_000 vulnerability pbft fleet
  in
  Format.printf "@.PBFT safety, platform-A vulnerability shock (2%%/yr, hits 4 nodes):@.";
  Format.printf "  assuming independence: %s@."
    (Prob.Nines.percent_string independent.Probcons.Analysis.p_safe);
  Format.printf "  with the correlation:  %s  (the 2%% shock exceeds f=2)@."
    (Prob.Nines.percent_string correlated.Probcons.Analysis.p_safe);

  (* Splitting members across four platforms caps any one shock at
     f = 2 compromised nodes — the fault-curve-aware placement fix. *)
  let diversified_shock =
    Faultmodel.Correlation.Domains
      [
        { members = [ 0; 1 ]; shock_probability = 0.02; conditional_failure = 1.0; byzantine_shock = true };
        { members = [ 2; 3 ]; shock_probability = 0.02; conditional_failure = 1.0; byzantine_shock = true };
        { members = [ 4; 5 ]; shock_probability = 0.02; conditional_failure = 1.0; byzantine_shock = true };
        { members = [ 6 ]; shock_probability = 0.02; conditional_failure = 1.0; byzantine_shock = true };
      ]
  in
  let diversified =
    Probcons.Analysis.run_correlated ~trials:400_000 diversified_shock pbft fleet
  in
  Format.printf
    "  diversified platforms: %s  (single shock <= f; only coincident shocks hurt)@."
    (Prob.Nines.percent_string diversified.Probcons.Analysis.p_safe);

  (* 3. Geopolitical risk as a scaled curve: one member's fault
     probability triples during a tense period; reliability-aware
     leader selection and committee choice react. *)
  let tense =
    Faultmodel.Fleet.of_nodes
      (List.init 7 (fun id ->
           if id = 6 then
             Faultmodel.Node.make ~id ~label:"org-6(tense)"
               (Faultmodel.Fault_curve.Scaled
                  { factor = 3.; curve = Faultmodel.Fault_curve.of_afr 0.04 })
           else member "A" id))
  in
  Format.printf "@.Geopolitical spike on org-6 (fault probability x3):@.";
  Format.printf "  leader fault probability, oblivious: %.4f; reputation-based: %.4f@."
    (Probnative.Leader_reputation.leader_fault_probability tense ~strategy:`Uniform)
    (Probnative.Leader_reputation.leader_fault_probability tense ~strategy:`Reputation);
  (match Probnative.Committee.reliability_ranked ~target:0.995 tense with
  | Some c ->
      Format.printf "  committee for 99.5%%: [%s] -> the risky org is left out@."
        (String.concat "," (List.map string_of_int c.Probnative.Committee.members))
  | None -> Format.printf "  no committee meets the target@.");

  (* 4. And the platform-diversification fix, automated: cap any one
     TEE platform below the committee's fault tolerance. *)
  match
    Probnative.Committee.diversified_ranked ~target:0.99
      ~domains:[ [ 0; 1; 2; 3 ]; [ 4; 5; 6 ] ]
      ~max_per_domain:2 fleet
  with
  | Some c ->
      Format.printf
        "@.Diversified committee (max 2 per platform): [%s] -> no single TEE@ \
         vulnerability can reach a quorum@."
        (String.concat "," (List.map string_of_int c.Probnative.Committee.members))
  | None -> Format.printf "@.no diversified committee meets the target@."
