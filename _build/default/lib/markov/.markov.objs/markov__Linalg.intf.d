lib/markov/linalg.mli:
