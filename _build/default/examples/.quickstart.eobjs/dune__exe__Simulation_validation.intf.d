examples/simulation_validation.mli:
