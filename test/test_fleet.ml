(* The fleet controller: telemetry stream determinism, the closed
   loop's recommendations, canonical-payload byte identity across the
   CLI renderer and both wire framings, the DST system, and the
   incremental-vs-recompute bench rows. *)

open Fleetctl

let with_watchdog ?(timeout = 60.) f =
  let outcome = ref None in
  let th =
    Thread.create (fun () -> outcome := Some (try Ok (f ()) with e -> Error e)) ()
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    match !outcome with
    | Some (Ok ()) -> Thread.join th
    | Some (Error e) -> Thread.join th; raise e
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "test timed out after %gs" timeout
        else begin
          Thread.delay 0.02;
          wait ()
        end
  in
  wait ()

let temp_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "probcons-fleet-%d-%d.sock" (Unix.getpid ()) !counter)

(* The config the e2e and determinism tests share: a tight 7-of-9
   quorum under a 5-nines target fires both recommendation levers. *)
let tight_case () =
  let cfg = Controller.default_config ~seed:42 ~ticks:8 ~nodes:9 () in
  { cfg with Controller.quorum = 7; target_live = Prob.Nines.to_prob 5. }

(* --- Stream --------------------------------------------------------- *)

let test_stream_determinism () =
  let cfg = Stream.default_config ~seed:11 ~nodes:7 () in
  let run () =
    let s = Stream.create cfg in
    List.concat_map
      (fun _ ->
        List.map
          (fun { Stream.node; observation } ->
            ( node,
              observation.Faultmodel.Telemetry.failures,
              observation.Faultmodel.Telemetry.device_hours ))
          (Stream.tick s))
      [ (); (); (); (); () ]
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  List.iter2
    (fun (n1, f1, h1) (n2, f2, h2) ->
      Alcotest.(check int) "node" n1 n2;
      Alcotest.(check int) "failures" f1 f2;
      Alcotest.(check (float 0.)) "device_hours" h1 h2)
    a b

let test_stream_drift_and_replace () =
  let cfg =
    { (Stream.default_config ~seed:3 ~nodes:4 ()) with Stream.drift_every = 1 }
  in
  let s = Stream.create cfg in
  let before = Array.init 4 (Stream.ground_truth_afr s) in
  ignore (Stream.tick s);
  let after = Array.init 4 (Stream.ground_truth_afr s) in
  let drifted =
    Array.exists Fun.id (Array.map2 (fun a b -> a <> b) before after)
  in
  Alcotest.(check bool) "one node drifted" true drifted;
  Stream.replace s 0 ~afr:0.02;
  Alcotest.(check (float 0.)) "replace resets truth" 0.02
    (Stream.ground_truth_afr s 0)

let test_stream_dynamic_determinism () =
  (* Dynamic mode replaces step drift with per-node Markov degradation;
     the whole schedule must still be a pure function of the seed. *)
  let cfg = Stream.default_config ~dynamic:true ~seed:11 ~nodes:7 () in
  let run () =
    let s = Stream.create cfg in
    let events =
      List.concat_map
        (fun _ ->
          List.map
            (fun { Stream.node; observation } ->
              ( node,
                observation.Faultmodel.Telemetry.failures,
                observation.Faultmodel.Telemetry.device_hours ))
            (Stream.tick s))
        [ (); (); (); (); () ]
    in
    (events, List.init 7 (Stream.ground_truth_degraded s))
  in
  let a, da = run () and b, db = run () in
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  List.iter2
    (fun (n1, f1, h1) (n2, f2, h2) ->
      Alcotest.(check int) "node" n1 n2;
      Alcotest.(check int) "failures" f1 f2;
      Alcotest.(check (float 0.)) "device_hours" h1 h2)
    a b;
  Alcotest.(check (list bool)) "same degradation states" da db

let test_stream_ground_truth_process () =
  let static = Stream.create (Stream.default_config ~seed:5 ~nodes:3 ()) in
  (match Stream.ground_truth_process static 0 with
  | Faultmodel.Failure_process.Curve _ -> ()
  | p ->
      Alcotest.failf "static stream truth must be a curve, got %s"
        (Format.asprintf "%a" Faultmodel.Failure_process.pp p));
  let dynamic =
    Stream.create (Stream.default_config ~dynamic:true ~seed:5 ~nodes:3 ())
  in
  match Stream.ground_truth_process dynamic 0 with
  | Faultmodel.Failure_process.Markov { fail_rate; recover_rate } ->
      Alcotest.(check bool) "positive rates" true
        (fail_rate > 0. && recover_rate > 0.)
  | p ->
      Alcotest.failf "dynamic stream truth must be markov, got %s"
        (Format.asprintf "%a" Faultmodel.Failure_process.pp p)

(* --- Controller ----------------------------------------------------- *)

let payload_bytes o = Obs.Json.to_string (Controller.payload o)

let test_controller_deterministic () =
  let cfg = tight_case () in
  let a = payload_bytes (Controller.run cfg)
  and b = payload_bytes (Controller.run cfg) in
  Alcotest.(check string) "payloads byte-identical" a b

let test_controller_recommends () =
  let o = Controller.run (tight_case ()) in
  let resizes, swaps =
    List.partition
      (fun r ->
        match r.Controller.action with
        | Controller.Resize _ -> true
        | Controller.Swap _ -> false)
      o.Controller.recommendations
  in
  Alcotest.(check bool) "at least one resize" true (resizes <> []);
  Alcotest.(check bool) "at least one swap" true (swaps <> []);
  (* Recommendations fire only below target, and a swap must predict
     an improvement over the live probability that triggered it. *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "fired below target" true
        (r.Controller.p_live < (tight_case ()).Controller.target_live);
      match r.Controller.action with
      | Controller.Swap { predicted_live; _ } ->
          Alcotest.(check bool) "swap predicts improvement" true
            (predicted_live > r.Controller.p_live)
      | Controller.Resize _ -> ())
    o.Controller.recommendations

let test_controller_divergence_bounded () =
  let o = Controller.run (tight_case ()) in
  Alcotest.(check bool) "verified ticks stay within drift bound" true
    (o.Controller.max_divergence
    <= Prob.Incremental.default_drift_bound
       +. (16. *. 9. *. epsilon_float));
  Alcotest.(check bool) "verification actually ran" true
    ((tight_case ()).Controller.verify)

let test_controller_validates () =
  let cfg = tight_case () in
  Alcotest.check_raises "quorum out of range"
    (Invalid_argument "Controller.run: quorum must be in [1, nodes]")
    (fun () -> ignore (Controller.run { cfg with Controller.quorum = 10 }));
  Alcotest.check_raises "stream size mismatch"
    (Invalid_argument "Controller.run: stream fleet size mismatch")
    (fun () ->
      ignore
        (Controller.run
           {
             cfg with
             Controller.stream = Stream.default_config ~seed:42 ~nodes:5 ();
           }))

let contains ~affix s =
  let k = String.length affix and n = String.length s in
  let rec go i = i + k <= n && (String.sub s i k = affix || go (i + 1)) in
  go 0

let test_controller_dynamic_payload () =
  (* The legacy payload bytes are sacred: "dynamic" appears only when
     the mode is on. *)
  let static = payload_bytes (Controller.run (tight_case ())) in
  Alcotest.(check bool) "static payload has no dynamic key" false
    (contains ~affix:"dynamic" static);
  let dynamic_cfg =
    let cfg = Controller.default_config ~seed:42 ~ticks:8 ~dynamic:true ~nodes:9 () in
    { cfg with Controller.quorum = 7; target_live = Prob.Nines.to_prob 5. }
  in
  let o = Controller.run dynamic_cfg in
  let dynamic = payload_bytes o in
  Alcotest.(check bool) "dynamic payload flagged" true
    (contains ~affix:{|"dynamic": true|} dynamic);
  Alcotest.(check bool) "ingest payload flagged too" true
    (contains ~affix:{|"dynamic": true|}
       (Obs.Json.to_string (Controller.ingest_payload o)));
  (* And the dynamic run is itself deterministic. *)
  Alcotest.(check string) "dynamic run deterministic" dynamic
    (payload_bytes (Controller.run dynamic_cfg))

(* --- Wire parse/encode ---------------------------------------------- *)

let fleet_params nodes =
  {
    Service.Wire.nodes;
    ticks = 8;
    seed = 42;
    quorum = Some 7;
    target_nines = 5.;
    dynamic = false;
  }

let parse_ok body =
  match Service.Wire.parse_request body with
  | Ok r -> r
  | Error (_, code, msg) ->
      Alcotest.failf "parse failed: %s (%s)" (Service.Wire.code_string code) msg

let test_wire_roundtrip () =
  let q = Service.Wire.Fleet_recommend (fleet_params 9) in
  let r = parse_ok (Service.Wire.encode_request { Service.Wire.id = 5; query = q }) in
  Alcotest.(check int) "id" 5 r.Service.Wire.id;
  Alcotest.(check string) "canonical key survives the round-trip"
    (Service.Wire.canonical_key q)
    (Service.Wire.canonical_key r.Service.Wire.query);
  Alcotest.(check bool) "fleet queries are cacheable" true
    (Service.Wire.cacheable q)

let test_wire_normalizes () =
  (* Spelled-out defaults and the bare minimum must share a cache key;
     an explicit majority quorum normalizes away. *)
  let minimal =
    parse_ok {|{"v": 3, "id": 0, "kind": "fleet_recommend", "params": {"nodes": 9}}|}
  in
  let spelled =
    parse_ok
      {|{"v": 3, "id": 0, "kind": "fleet_recommend", "params": {"nodes": 9, "ticks": 26, "seed": 42, "quorum": 5, "target_nines": 3}}|}
  in
  Alcotest.(check string) "defaults normalize to one key"
    (Service.Wire.canonical_key minimal.Service.Wire.query)
    (Service.Wire.canonical_key spelled.Service.Wire.query)

let test_wire_bounds () =
  let reject params =
    match
      Service.Wire.parse_request
        (Printf.sprintf
           {|{"v": 3, "id": 0, "kind": "fleet_ingest", "params": %s}|} params)
    with
    | Error (_, Service.Wire.Bad_request, _) -> ()
    | Ok _ -> Alcotest.failf "params %s accepted" params
    | Error (_, code, msg) ->
        Alcotest.failf "params %s: wrong error %s (%s)" params
          (Service.Wire.code_string code) msg
  in
  reject {|{}|};
  reject {|{"nodes": 0}|};
  reject
    (Printf.sprintf {|{"nodes": %d}|} (Service.Wire.max_fleet_ctrl_nodes + 1));
  reject
    (Printf.sprintf {|{"nodes": 9, "ticks": %d}|}
       (Service.Wire.max_fleet_ticks + 1));
  reject {|{"nodes": 9, "quorum": 10}|};
  reject {|{"nodes": 9, "target_nines": 13}|}

let test_wire_dynamic () =
  (* Absent and false are the same wire state — one cache key, the
     legacy bytes — while true round-trips and keys separately. *)
  let off = Service.Wire.Fleet_recommend (fleet_params 9) in
  let on =
    Service.Wire.Fleet_recommend { (fleet_params 9) with Service.Wire.dynamic = true }
  in
  let parsed =
    parse_ok
      {|{"v": 3, "id": 0, "kind": "fleet_recommend", "params": {"nodes": 9, "ticks": 8, "quorum": 7, "target_nines": 5, "dynamic": true}}|}
  in
  Alcotest.(check string) "dynamic round-trips"
    (Service.Wire.canonical_key on)
    (Service.Wire.canonical_key parsed.Service.Wire.query);
  Alcotest.(check bool) "distinct cache keys" true
    (Service.Wire.canonical_key on <> Service.Wire.canonical_key off);
  Alcotest.(check bool) "legacy key has no dynamic field" false
    (contains ~affix:"dynamic" (Service.Wire.canonical_key off));
  let explicit_false =
    parse_ok
      {|{"v": 3, "id": 0, "kind": "fleet_recommend", "params": {"nodes": 9, "ticks": 8, "quorum": 7, "target_nines": 5, "dynamic": false}}|}
  in
  Alcotest.(check string) "explicit false normalizes to the legacy key"
    (Service.Wire.canonical_key off)
    (Service.Wire.canonical_key explicit_false.Service.Wire.query);
  match
    Service.Wire.parse_request
      {|{"v": 3, "id": 0, "kind": "fleet_recommend", "params": {"nodes": 9, "dynamic": 1}}|}
  with
  | Error (_, Service.Wire.Bad_request, _) -> ()
  | Ok _ -> Alcotest.fail "non-boolean dynamic accepted"
  | Error (_, code, msg) ->
      Alcotest.failf "wrong error %s (%s)" (Service.Wire.code_string code) msg

let test_router_dynamic_matches_controller () =
  let dynamic_cfg =
    let cfg = Controller.default_config ~seed:42 ~ticks:8 ~dynamic:true ~nodes:9 () in
    { cfg with Controller.quorum = 7; target_live = Prob.Nines.to_prob 5. }
  in
  let direct = payload_bytes (Controller.run dynamic_cfg) in
  let query =
    Service.Wire.Fleet_recommend { (fleet_params 9) with Service.Wire.dynamic = true }
  in
  match Service.Router.handle query with
  | Ok payload ->
      Alcotest.(check string) "router dynamic == controller renderer" direct
        (Obs.Json.to_string payload)
  | Error (code, msg) ->
      Alcotest.failf "router failed: %s (%s)" (Service.Wire.code_string code) msg

(* --- Router and e2e byte identity ------------------------------------ *)

let router_payload query =
  match Service.Router.handle query with
  | Ok payload -> Obs.Json.to_string payload
  | Error (code, msg) ->
      Alcotest.failf "router failed: %s (%s)" (Service.Wire.code_string code) msg

let test_router_matches_controller () =
  (* The wire handler and the CLI's --json path must render the same
     bytes from the same parameters — one canonical payload. *)
  let direct = payload_bytes (Controller.run (tight_case ())) in
  Alcotest.(check string) "router == controller renderer" direct
    (router_payload (Service.Wire.Fleet_recommend (fleet_params 9)));
  let ingest =
    Obs.Json.to_string (Controller.ingest_payload (Controller.run (tight_case ())))
  in
  Alcotest.(check string) "ingest payload matches too" ingest
    (router_payload (Service.Wire.Fleet_ingest (fleet_params 9)))

let test_e2e_both_framings () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      let server =
        Service.Server.start
          {
            Service.Server.default_config with
            Service.Server.socket_path = Some socket;
            workers = 2;
            queue_depth = 32;
            cache_capacity = 64;
          }
      in
      Fun.protect
        ~finally:(fun () -> Service.Server.stop server)
        (fun () ->
          let fetch wire query =
            let c =
              Service.Client.connect ~wire ~retry_for:5.
                (Service.Client.Unix_path socket)
            in
            Fun.protect
              ~finally:(fun () -> Service.Client.close c)
              (fun () ->
                match
                  Service.Client.call_line c ~id:3
                    (Service.Wire.encode_request ~v:wire
                       { Service.Wire.id = 3; query })
                with
                | Ok reply -> reply
                | Error (code, msg) ->
                    Alcotest.failf "wire/%d fleet call failed: %s (%s)" wire
                      (Service.Wire.code_string code) msg)
          in
          let q = Service.Wire.Fleet_recommend (fleet_params 9) in
          let r2 = fetch 2 q and r3 = fetch 3 q in
          Alcotest.(check string) "wire/2 body == wire/3 body" r3 r2;
          (* The served payload is byte-for-byte the CLI's --json
             output for the same parameters. *)
          let served = Service.Wire.encode_ok ~id:3 ~payload:(payload_bytes (Controller.run (tight_case ()))) in
          Alcotest.(check string) "served bytes == canonical payload" served r3))

(* --- DST system ------------------------------------------------------ *)

let test_dst_fleet_soak () =
  match
    Dst.Harness.soak (Dst.Fleet_case.system ()) ~seed:2025 ~episodes:8
  with
  | Dst.Harness.All_passed { episodes } ->
      Alcotest.(check int) "all episodes ran" 8 episodes
  | Dst.Harness.Found { failure; _ } ->
      Alcotest.failf "fleet invariant %S violated: %s"
        failure.Dst.Harness.invariant failure.Dst.Harness.detail

let test_dst_fleet_codec () =
  let sys = Dst.Fleet_case.system () in
  let rng = Prob.Rng.of_pair 99 0 in
  for _ = 1 to 20 do
    let case = sys.Dst.Harness.generate rng in
    match sys.Dst.Harness.decode (sys.Dst.Harness.encode case) with
    | Ok back ->
        if back <> case then Alcotest.fail "decode . encode is not the identity"
    | Error msg -> Alcotest.failf "generated case does not decode: %s" msg
  done

let test_dst_fleet_dynamic_codec () =
  let sys = Dst.Fleet_case.system () in
  let case =
    {
      Dst.Fleet_case.nodes = 9;
      ticks = 8;
      seed = 42;
      quorum = 7;
      target_nines = 5.;
      dynamic = true;
    }
  in
  let encoded = sys.Dst.Harness.encode case in
  Alcotest.(check bool) "dynamic encoded" true
    (contains ~affix:{|"dynamic": true|}
       (Obs.Json.to_string encoded.Dst.Repro.scenario));
  (match sys.Dst.Harness.decode encoded with
  | Ok back ->
      if back <> case then Alcotest.fail "dynamic decode . encode not identity"
  | Error msg -> Alcotest.failf "dynamic case does not decode: %s" msg);
  let static = { case with Dst.Fleet_case.dynamic = false } in
  Alcotest.(check bool) "static artifact keeps legacy bytes" false
    (contains ~affix:"dynamic"
       (Obs.Json.to_string (sys.Dst.Harness.encode static).Dst.Repro.scenario));
  (* Shrinking a failing dynamic case tries static first. *)
  match sys.Dst.Harness.candidates case with
  | first :: _ ->
      Alcotest.(check bool) "first shrink candidate disables dynamic" false
        first.Dst.Fleet_case.dynamic
  | [] -> Alcotest.fail "dynamic case must shrink"

let test_dst_fleet_registered () =
  Alcotest.(check bool) "fleet is a registry name" true
    (List.mem "fleet" Dst.Registry.names);
  match Dst.Registry.find "fleet" with
  | Ok (Dst.Registry.Packed sys) ->
      Alcotest.(check string) "system tag" "fleet" sys.Dst.Harness.name
  | Error msg -> Alcotest.fail msg

(* --- Bench ----------------------------------------------------------- *)

let test_bench_rows () =
  let rows = Bench.run ~seed:7 ~sizes:[ 300 ] () in
  Alcotest.(check int) "two rows per size" 2 (List.length rows);
  let inc = List.nth rows 0 and full = List.nth rows 1 in
  Alcotest.(check string) "incremental first" "incremental-update"
    inc.Bench.kernel;
  Alcotest.(check string) "recompute second" "full-recompute" full.Bench.kernel;
  Alcotest.(check int) "window length" (Bench.ops_for 300) inc.Bench.ops;
  List.iter
    (fun r ->
      Alcotest.(check bool) "positive timing" true
        (Float.is_finite r.Bench.ns_per_op && r.Bench.ns_per_op > 0.))
    rows;
  (* Even at 300 nodes the O(n) update beats the O(n^2) recompute —
     the committed artifact's 10x floor at n >= 10^4 has huge margin,
     so a modest 2x floor here keeps the test robust on slow CI. *)
  Alcotest.(check bool) "incremental faster" true
    (full.Bench.ns_per_op > 2. *. inc.Bench.ns_per_op);
  match Bench.to_json ~seed:7 rows with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "schema tag" true
        (List.assoc_opt "schema" fields
        = Some (Obs.Json.String "probcons-fleet-bench/1"))
  | _ -> Alcotest.fail "bench artifact must be an object"

let suite =
  [
    Alcotest.test_case "stream determinism" `Quick test_stream_determinism;
    Alcotest.test_case "stream drift and replace" `Quick
      test_stream_drift_and_replace;
    Alcotest.test_case "stream dynamic determinism" `Quick
      test_stream_dynamic_determinism;
    Alcotest.test_case "stream ground-truth process" `Quick
      test_stream_ground_truth_process;
    Alcotest.test_case "controller dynamic payload" `Quick
      test_controller_dynamic_payload;
    Alcotest.test_case "wire dynamic flag" `Quick test_wire_dynamic;
    Alcotest.test_case "router dynamic matches controller" `Quick
      test_router_dynamic_matches_controller;
    Alcotest.test_case "dst fleet dynamic codec" `Quick
      test_dst_fleet_dynamic_codec;
    Alcotest.test_case "controller deterministic" `Quick
      test_controller_deterministic;
    Alcotest.test_case "controller recommends" `Quick test_controller_recommends;
    Alcotest.test_case "controller divergence bounded" `Quick
      test_controller_divergence_bounded;
    Alcotest.test_case "controller validates config" `Quick
      test_controller_validates;
    Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire normalizes defaults" `Quick test_wire_normalizes;
    Alcotest.test_case "wire bounds" `Quick test_wire_bounds;
    Alcotest.test_case "router matches controller" `Quick
      test_router_matches_controller;
    Alcotest.test_case "e2e both framings byte-identical" `Quick
      test_e2e_both_framings;
    Alcotest.test_case "dst fleet soak" `Quick test_dst_fleet_soak;
    Alcotest.test_case "dst fleet codec" `Quick test_dst_fleet_codec;
    Alcotest.test_case "dst fleet registered" `Quick test_dst_fleet_registered;
    Alcotest.test_case "bench rows" `Quick test_bench_rows;
  ]
