lib/benor/benor_cluster.ml: Array Benor_node Benor_types Dessim List Option
