(** The probabilistic analysis engine.

    Computes P(safe), P(live) and P(safe and live) for a protocol model
    over a fleet, exactly as the paper's §3: sum the probabilities of
    the failure configurations the model classifies as safe (resp.
    live). Three engines, picked automatically:

    - {b Count DP}: when both predicates expose a count form, the joint
      (Byzantine, crashed) count distribution is computed by dynamic
      program — O(n^3), heterogeneous fleets included. Every cell of
      the paper's Tables 1 and 2 evaluates through this path.
    - {b Exact enumeration}: node-identity-dependent predicates, up to
      [2^24] binary or [3^13] ternary configurations.
    - {b Monte Carlo}: anything larger, and all correlated models;
      returns a 95% confidence interval.

    Enumeration and Monte Carlo run on the {!Parallel} domain pool:
    the configuration space (or trial budget) is split into chunks
    whose boundaries depend only on the instance, each chunk keeps a
    Kahan-compensated partial sum (or its own RNG stream derived from
    [(seed, chunk)]), and partials are reduced in chunk order — so
    exact engines are bit-identical and Monte Carlo estimates
    seed-reproducible across any [?domains] setting, including
    sequential. The default lane count honours [PROBCONS_DOMAINS]. *)

type strategy =
  | Auto
  | Count_dp
  | Enumeration
  | Monte_carlo of int  (** Number of trials. *)

type result = {
  protocol : string;
  p_safe : float;
  p_live : float;
  p_safe_live : float;
  engine : string;  (** Which engine produced the numbers. *)
  ci_safe : (float * float) option;  (** Monte Carlo only. *)
  ci_live : (float * float) option;
  ci_safe_live : (float * float) option;
}

val run :
  ?at:float ->
  ?strategy:strategy ->
  ?seed:int ->
  ?domains:int ->
  Protocol.t ->
  Faultmodel.Fleet.t ->
  result
(** [at] is the mission time at which fault curves are evaluated
    (default one year). [domains] caps the parallel lanes used by the
    enumeration and Monte-Carlo engines (default: the {!Parallel.Pool}
    default; [0]/[1] force sequential); results are identical for every
    value. When parallel lanes were used, the [engine] string records
    it, e.g. ["enumeration-binary/8d"]. Raises [Invalid_argument] when
    the fleet size does not match the protocol's [n], or when a forced
    strategy cannot handle the instance. *)

(** {1 Horizon trajectories}

    Dynamic failure processes make availability a function of mission
    time; a horizon run evaluates the fleet's marginals round by round
    and re-analyzes each round. *)

type horizon_point = { at : float; result : result }

val horizon_times : horizon:float -> rounds:int -> float list
(** The [rounds] evaluation times [horizon * k / rounds], k = 1..rounds.
    Raises [Invalid_argument] on a non-positive horizon or rounds. *)

val run_horizon :
  ?strategy:strategy ->
  ?seed:int ->
  ?domains:int ->
  times:float list ->
  Protocol.t ->
  Faultmodel.Fleet.t ->
  horizon_point list
(** Per-round availability trajectory: for each time in [times]
    (ascending), evaluate the fleet's crash/Byzantine marginals at that
    mission time and analyze them. The first round always goes through
    the same strategy dispatch as {!run}, so it is bit-identical to
    [run ~at]; a round whose marginals are unchanged from the previous
    round reuses the previous result verbatim — in particular a fleet
    of constant curves ([Static] processes) yields a trajectory of
    results each bit-identical to [run]. Rounds whose marginals did
    change take the incremental Poisson-binomial fast path (engine
    ["incremental-pb"], O(n) per changed node, PR 8's
    divide-out/multiply-in with its 1e-9 drift contract) when the
    strategy is [Auto], both predicates have count forms and there is
    no Byzantine mass; otherwise they recompute exactly. *)

val run_correlated :
  ?at:float ->
  ?trials:int ->
  ?seed:int ->
  ?domains:int ->
  Faultmodel.Correlation.t ->
  Protocol.t ->
  Faultmodel.Fleet.t ->
  result
(** Monte-Carlo analysis under a correlated failure model. Fault kinds
    follow [Correlation.sample_kinds]: a node's own fault is Byzantine
    with its [byz_fraction]; domain shocks carry their own
    [byzantine_shock] flag (a TEE vulnerability compromises, a rack
    power event crashes). *)

val pp_result : Format.formatter -> result -> unit
