test/test_rabia.ml: Alcotest Array Dessim Fun List Prob QCheck QCheck_alcotest Rabia_cluster Rabia_node Rabia_sim
