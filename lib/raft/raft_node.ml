open Raft_types

(* Typed run telemetry; [Trace] stays the source of truth for checkers. *)
let m_elections = Obs.Metrics.counter ~family:"protocol" "raft.elections"
let m_leader_elections = Obs.Metrics.counter ~family:"protocol" "raft.leader_elections"
let m_commits = Obs.Metrics.counter ~family:"protocol" "raft.commits"
let m_step_downs = Obs.Metrics.counter ~family:"protocol" "raft.step_downs"

type config = {
  id : int;
  n : int;
  q_vote : int;
  q_replicate : int;
  election_timeout_min : float;
  election_timeout_max : float;
  heartbeat_interval : float;
  timeout_multiplier : float;
  initial_members : int list option;
}

let default_config ~id ~n =
  {
    id;
    n;
    q_vote = (n / 2) + 1;
    q_replicate = (n / 2) + 1;
    election_timeout_min = 150.;
    election_timeout_max = 300.;
    heartbeat_interval = 50.;
    timeout_multiplier = 1.;
    initial_members = None;
  }

type role = Follower | Candidate | Leader

type t = {
  config : config;
  engine : Dessim.Engine.t;
  net : msg Dessim.Network.t;
  trace : Dessim.Trace.t;
  rng : Prob.Rng.t;
  mutable role : role;
  mutable term : int;
  mutable voted_for : int option;
  log : entry Dessim.Vec.t;
  mutable commit_index : int;
  applied : int Dessim.Vec.t;
  mutable applied_through : int;
      (** Log index up to which entries have been applied (data entries
          feed [applied]; config entries only affect membership). *)
  mutable votes : int list;
  next_index : int array;
  match_index : int array;
  mutable members : int list;
  mutable election_timer : Dessim.Engine.cancel option;
  mutable heartbeat_timer : Dessim.Engine.cancel option;
  mutable down : bool;
  mutable apply_hook : (entry -> unit) option;
  mutable leader_hint : int option;
}

let id t = t.config.id
let set_apply_hook t hook = t.apply_hook <- Some hook
let leader_hint t = if t.role = Leader && not t.down then Some t.config.id else t.leader_hint
let current_term t = t.term
let is_leader t = t.role = Leader && not t.down
let alive t = not t.down
let committed_commands t = Dessim.Vec.to_list t.applied
let log_entries t = Dessim.Vec.to_list t.log
let commit_index t = t.commit_index
let members t = t.members

let dynamic t = t.config.initial_members <> None

let is_member t = List.mem t.config.id t.members

let last_log_index t = Dessim.Vec.length t.log

let entry_term t index =
  if index = 0 then 0 else (Dessim.Vec.get t.log (index - 1)).term

let last_log_term t = entry_term t (last_log_index t)

(* Quorum sizes: configured in static mode, membership majorities in
   dynamic mode. *)
let quorum_vote t =
  if dynamic t then (List.length t.members / 2) + 1 else t.config.q_vote

let quorum_replicate t =
  if dynamic t then (List.length t.members / 2) + 1 else t.config.q_replicate

let record t tag detail =
  Dessim.Trace.record t.trace ~time:(Dessim.Engine.now t.engine) ~node:t.config.id
    ~tag ~detail

let cancel_election_timer t =
  (match t.election_timer with Some c -> Dessim.Engine.cancel c | None -> ());
  t.election_timer <- None

let cancel_heartbeat_timer t =
  (match t.heartbeat_timer with Some c -> Dessim.Engine.cancel c | None -> ());
  t.heartbeat_timer <- None

(* Membership is defined by the last Config entry in the log (appended,
   not necessarily committed), falling back to the initial set. *)
let recompute_members t =
  if dynamic t then begin
    let fallback = Option.value t.config.initial_members ~default:[] in
    let rec scan i =
      if i < 1 then fallback
      else begin
        match (Dessim.Vec.get t.log (i - 1)).command with
        | Config members -> members
        | Data _ -> scan (i - 1)
      end
    in
    let fresh = List.sort_uniq compare (scan (last_log_index t)) in
    if fresh <> t.members then begin
      t.members <- fresh;
      record t "membership"
        (String.concat "," (List.map string_of_int fresh))
    end
  end

(* Apply entries the commit index has passed. *)
let apply_committed t =
  while t.applied_through < t.commit_index do
    let index = t.applied_through + 1 in
    let entry = Dessim.Vec.get t.log (index - 1) in
    (match entry.command with
    | Data command ->
        Dessim.Vec.push t.applied command;
        record t "apply" (Printf.sprintf "index=%d cmd=%d term=%d" index command entry.term)
    | Config _ ->
        record t "apply-config" (Printf.sprintf "index=%d term=%d" index entry.term));
    t.applied_through <- index;
    match t.apply_hook with None -> () | Some hook -> hook entry
  done

let rec reset_election_timer t =
  cancel_election_timer t;
  if is_member t then begin
    let base =
      t.config.election_timeout_min
      +. (Prob.Rng.float t.rng
         *. (t.config.election_timeout_max -. t.config.election_timeout_min))
    in
    let timeout = base *. t.config.timeout_multiplier in
    t.election_timer <-
      Some (Dessim.Engine.schedule t.engine ~delay:timeout (fun () -> on_election_timeout t))
  end

and on_election_timeout t =
  if (not t.down) && t.role <> Leader && is_member t then start_election t
  else if not t.down then reset_election_timer t

and start_election t =
  t.term <- t.term + 1;
  t.role <- Candidate;
  t.voted_for <- Some t.config.id;
  t.votes <- [ t.config.id ];
  t.leader_hint <- None;
  record t "candidate" (Printf.sprintf "term=%d" t.term);
  Obs.Metrics.incr m_elections;
  Dessim.Network.broadcast t.net ~src:t.config.id
    (Request_vote
       {
         term = t.term;
         candidate_id = t.config.id;
         last_log_index = last_log_index t;
         last_log_term = last_log_term t;
       });
  reset_election_timer t;
  maybe_win_election t

and maybe_win_election t =
  (* Only members' votes count toward the quorum. *)
  let counted =
    if dynamic t then List.filter (fun v -> List.mem v t.members) t.votes else t.votes
  in
  if t.role = Candidate && List.length counted >= quorum_vote t then become_leader t

and become_leader t =
  t.role <- Leader;
  record t "become-leader" (Printf.sprintf "term=%d" t.term);
  Obs.Metrics.incr m_leader_elections;
  cancel_election_timer t;
  Array.fill t.next_index 0 t.config.n (last_log_index t + 1);
  Array.fill t.match_index 0 t.config.n 0;
  t.match_index.(t.config.id) <- last_log_index t;
  maybe_advance_commit t;
  send_heartbeats t;
  schedule_heartbeat t

and schedule_heartbeat t =
  cancel_heartbeat_timer t;
  t.heartbeat_timer <-
    Some
      (Dessim.Engine.schedule t.engine ~delay:t.config.heartbeat_interval (fun () ->
           if is_leader t then begin
             send_heartbeats t;
             schedule_heartbeat t
           end))

and send_heartbeats t =
  List.iter
    (fun peer -> if peer <> t.config.id then send_append_entries t peer)
    t.members

and send_append_entries t peer =
  let next = t.next_index.(peer) in
  let prev_log_index = next - 1 in
  let entries = ref [] in
  for i = last_log_index t downto next do
    entries := Dessim.Vec.get t.log (i - 1) :: !entries
  done;
  Dessim.Network.send t.net ~src:t.config.id ~dst:peer
    (Append_entries
       {
         term = t.term;
         leader_id = t.config.id;
         prev_log_index;
         prev_log_term = entry_term t prev_log_index;
         entries = !entries;
         leader_commit = t.commit_index;
       })

and maybe_advance_commit t =
  (* Largest index replicated on a replication quorum of members whose
     entry is from the current term (Raft's commitment rule, Fig. 8). *)
  let advanced = ref false in
  for index = t.commit_index + 1 to last_log_index t do
    if entry_term t index = t.term then begin
      let replicas = ref 0 in
      List.iter (fun m -> if t.match_index.(m) >= index then incr replicas) t.members;
      if !replicas >= quorum_replicate t then begin
        t.commit_index <- index;
        advanced := true
      end
    end
  done;
  if !advanced then begin
    record t "commit" (Printf.sprintf "index=%d term=%d" t.commit_index t.term);
    Obs.Metrics.incr m_commits;
    apply_committed t
  end

let step_down t new_term =
  if new_term > t.term then begin
    t.term <- new_term;
    t.voted_for <- None
  end;
  if t.role <> Follower then begin
    record t "step-down" (Printf.sprintf "term=%d" t.term);
    Obs.Metrics.incr m_step_downs
  end;
  t.role <- Follower;
  cancel_heartbeat_timer t;
  reset_election_timer t

let candidate_log_up_to_date t ~last_log_index:cand_index ~last_log_term:cand_term =
  cand_term > last_log_term t
  || (cand_term = last_log_term t && cand_index >= last_log_index t)

let handle_request_vote t ~term ~candidate_id ~last_log_index:cli ~last_log_term:clt =
  if term > t.term then step_down t term;
  let granted =
    term = t.term
    && (t.voted_for = None || t.voted_for = Some candidate_id)
    && candidate_log_up_to_date t ~last_log_index:cli ~last_log_term:clt
  in
  if granted then begin
    t.voted_for <- Some candidate_id;
    reset_election_timer t
  end;
  Dessim.Network.send t.net ~src:t.config.id ~dst:candidate_id
    (Request_vote_reply { term = t.term; voter_id = t.config.id; granted })

let handle_request_vote_reply t ~term ~voter_id ~granted =
  if term > t.term then step_down t term
  else if granted && t.role = Candidate && term = t.term then begin
    if not (List.mem voter_id t.votes) then t.votes <- voter_id :: t.votes;
    maybe_win_election t
  end

let truncate_from t index =
  (* Drop entries at [index] and beyond (1-based). *)
  Dessim.Vec.truncate t.log (index - 1);
  recompute_members t

let handle_append_entries t ~term ~leader_id ~prev_log_index ~prev_log_term ~entries
    ~leader_commit =
  if term < t.term then
    Dessim.Network.send t.net ~src:t.config.id ~dst:leader_id
      (Append_entries_reply
         { term = t.term; follower_id = t.config.id; success = false; match_index = 0 })
  else begin
    if term > t.term || t.role <> Follower then step_down t term
    else reset_election_timer t;
    t.leader_hint <- Some leader_id;
    let consistent =
      prev_log_index <= last_log_index t && entry_term t prev_log_index = prev_log_term
    in
    if not consistent then
      Dessim.Network.send t.net ~src:t.config.id ~dst:leader_id
        (Append_entries_reply
           { term = t.term; follower_id = t.config.id; success = false; match_index = 0 })
    else begin
      (* Append, resolving conflicts in favour of the leader. *)
      let membership_touched = ref false in
      List.iter
        (fun (entry : entry) ->
          let is_config = match entry.command with Config _ -> true | Data _ -> false in
          if entry.index <= last_log_index t then begin
            if entry_term t entry.index <> entry.term then begin
              truncate_from t entry.index;
              Dessim.Vec.push t.log entry;
              if is_config then membership_touched := true
            end
          end
          else begin
            Dessim.Vec.push t.log entry;
            if is_config then membership_touched := true
          end)
        entries;
      if !membership_touched then begin
        recompute_members t;
        (* Becoming a member arms the election timer; leaving disarms. *)
        reset_election_timer t
      end;
      let match_index = prev_log_index + List.length entries in
      if leader_commit > t.commit_index then begin
        t.commit_index <- min leader_commit (last_log_index t);
        apply_committed t
      end;
      Dessim.Network.send t.net ~src:t.config.id ~dst:leader_id
        (Append_entries_reply
           { term = t.term; follower_id = t.config.id; success = true; match_index })
    end
  end

let handle_append_entries_reply t ~term ~follower_id ~success ~match_index =
  if term > t.term then step_down t term
  else if t.role = Leader && term = t.term then begin
    if success then begin
      t.match_index.(follower_id) <- max t.match_index.(follower_id) match_index;
      t.next_index.(follower_id) <- t.match_index.(follower_id) + 1;
      maybe_advance_commit t
    end
    else begin
      t.next_index.(follower_id) <- max 1 (t.next_index.(follower_id) - 1);
      send_append_entries t follower_id
    end
  end

let handle_timeout_now t ~term =
  (* Campaign immediately, skipping the randomized wait. *)
  if term >= t.term && t.role <> Leader && is_member t then start_election t

let handle_message t ~src:_ msg =
  if not t.down then begin
    match msg with
    | Request_vote { term; candidate_id; last_log_index; last_log_term } ->
        handle_request_vote t ~term ~candidate_id ~last_log_index ~last_log_term
    | Request_vote_reply { term; voter_id; granted } ->
        handle_request_vote_reply t ~term ~voter_id ~granted
    | Append_entries { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit }
      ->
        handle_append_entries t ~term ~leader_id ~prev_log_index ~prev_log_term ~entries
          ~leader_commit
    | Append_entries_reply { term; follower_id; success; match_index } ->
        handle_append_entries_reply t ~term ~follower_id ~success ~match_index
    | Timeout_now { term } -> handle_timeout_now t ~term
  end

let append_as_leader t command =
  let entry = { term = t.term; index = last_log_index t + 1; command } in
  Dessim.Vec.push t.log entry;
  t.match_index.(t.config.id) <- entry.index;
  maybe_advance_commit t;
  send_heartbeats t;
  entry

let submit t command =
  if not (is_leader t) then false
  else begin
    let entry = append_as_leader t (Data command) in
    record t "propose" (Printf.sprintf "index=%d cmd=%d" entry.index command);
    true
  end

let transfer_leadership t target =
  if
    is_leader t && target <> t.config.id
    && List.mem target t.members
    && t.match_index.(target) = last_log_index t
  then begin
    record t "transfer-leadership" (Printf.sprintf "to=%d" target);
    Dessim.Network.send t.net ~src:t.config.id ~dst:target (Timeout_now { term = t.term });
    true
  end
  else false

let valid_config_change t proposal =
  let proposal = List.sort_uniq compare proposal in
  let current = t.members in
  let added = List.filter (fun u -> not (List.mem u current)) proposal in
  let removed = List.filter (fun u -> not (List.mem u proposal)) current in
  proposal <> []
  && List.mem t.config.id proposal
  && List.for_all (fun u -> u >= 0 && u < t.config.n) proposal
  && List.length added + List.length removed <= 1

let submit_config t proposal =
  if not (is_leader t && dynamic t) then false
  else if not (valid_config_change t proposal) then false
  else begin
    let proposal = List.sort_uniq compare proposal in
    let entry = append_as_leader t (Config proposal) in
    record t "propose-config"
      (Printf.sprintf "index=%d {%s}" entry.index
         (String.concat "," (List.map string_of_int proposal)));
    recompute_members t;
    (* Start replicating to a newly added member right away. *)
    send_heartbeats t;
    maybe_advance_commit t;
    true
  end

let persistent_state t = (t.term, t.voted_for, Dessim.Vec.to_list t.log)

let restore t ~term ~voted_for ~log =
  if last_log_index t > 0 || t.term > 0 then
    invalid_arg "Raft_node.restore: node has already made progress";
  t.term <- max 0 term;
  t.voted_for <- voted_for;
  List.iter (fun (entry : entry) -> Dessim.Vec.push t.log entry) log;
  recompute_members t;
  reset_election_timer t

let set_down t down =
  if down && not t.down then begin
    t.down <- true;
    Dessim.Network.set_down t.net t.config.id true;
    cancel_election_timer t;
    cancel_heartbeat_timer t;
    record t "crash" ""
  end
  else if (not down) && t.down then begin
    t.down <- false;
    Dessim.Network.set_down t.net t.config.id false;
    t.role <- Follower;
    t.votes <- [];
    record t "restart" "";
    reset_election_timer t
  end

let create config ~engine ~net ~trace =
  if config.n <= 0 then invalid_arg "Raft_node.create: n must be positive";
  if config.q_vote < 1 || config.q_vote > config.n then
    invalid_arg "Raft_node.create: q_vote out of range";
  if config.q_replicate < 1 || config.q_replicate > config.n then
    invalid_arg "Raft_node.create: q_replicate out of range";
  (match config.initial_members with
  | Some members ->
      if List.exists (fun u -> u < 0 || u >= config.n) members then
        invalid_arg "Raft_node.create: initial member outside the universe"
  | None -> ());
  let members =
    match config.initial_members with
    | Some members -> List.sort_uniq compare members
    | None -> List.init config.n Fun.id
  in
  let t =
    {
      config;
      engine;
      net;
      trace;
      rng = Prob.Rng.split (Dessim.Engine.rng engine);
      role = Follower;
      term = 0;
      voted_for = None;
      log = Dessim.Vec.create ();
      commit_index = 0;
      applied = Dessim.Vec.create ();
      applied_through = 0;
      votes = [];
      next_index = Array.make config.n 1;
      match_index = Array.make config.n 0;
      members;
      election_timer = None;
      heartbeat_timer = None;
      down = false;
      apply_hook = None;
      leader_hint = None;
    }
  in
  Dessim.Network.set_handler net config.id (fun ~src msg -> handle_message t ~src msg);
  reset_election_timer t;
  t
