(** Probabilistic (phi-accrual style) failure detector (paper §4).

    Instead of a binary suspect/trust verdict after a fixed timeout,
    accrual detectors output a suspicion level: phi = -log10 of the
    probability that the silence observed so far is consistent with the
    peer being alive, given its historical heartbeat inter-arrival
    distribution. Applications pick the threshold matching their own
    false-positive budget — guarantees in nines, end to end. *)

type t

val create : ?window:int -> unit -> t
(** [window] (default 128) bounds the history of inter-arrival times. *)

val heartbeat : t -> now:float -> unit
(** Record a heartbeat arrival. Times must be non-decreasing. *)

val phi : t -> now:float -> float
(** Current suspicion level. [0.] while fewer than two heartbeats have
    been seen, rising without bound as silence stretches. Uses the
    exponential-tail approximation of the normal survival function, as
    in the original phi-accrual paper. *)

val suspect : ?threshold:float -> t -> now:float -> bool
(** [threshold] defaults to 8 (a one-in-10^8 false positive). *)

val mean_interval : t -> float option
val samples : t -> int
