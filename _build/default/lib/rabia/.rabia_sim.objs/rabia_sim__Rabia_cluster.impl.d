lib/rabia/rabia_cluster.ml: Array Dessim List Rabia_node Rabia_types
