test/test_markov.ml: Alcotest Array Ctmc Float Linalg List Markov Printf Prob QCheck QCheck_alcotest Repair_model
