(** Deployment planner: from fault curves and an SLO to a complete
    probability-native deployment.

    This is the paper's §4 pieces composed into one decision: given a
    fleet (with individual fault curves) and a target number of nines,
    produce

    - the committee to run consensus on (smallest reliability-ranked
      subset meeting the target),
    - flexible quorum sizes on that committee (cheapest commit quorum
      whose liveness still meets the target),
    - a reliability-ordered leader preference, expressed as election
      timeout multipliers,
    - the achieved probabilistic guarantee, stated in nines.

    The plan is directly executable: {!execute} wires it into the
    simulated Raft implementation and checks the run. *)

type plan = {
  committee : int list;  (** Fleet node ids, most reliable first. *)
  quorums : Probcons.Raft_model.params;  (** Sized over the committee. *)
  timeout_multipliers : float array;
      (** Per committee member (same order as [committee]). *)
  p_live : float;
  p_safe_live : float;
}

val plan : ?at:float -> target:float -> Faultmodel.Fleet.t -> plan option
(** [None] when no committee of this fleet can meet the target. The
    quorum sizing is given one extra committee growth step to relax:
    if the minimal committee admits no flexible sizing at the target,
    majority quorums on that committee are used. *)

val committee_fleet : Faultmodel.Fleet.t -> plan -> Faultmodel.Fleet.t
(** The sub-fleet the plan runs on (committee members, re-indexed). *)

type execution = {
  safe : bool;
  live : bool;
  leader_was_most_reliable : bool;
      (** Whether the final leader is the plan's preferred node. *)
}

val execute :
  ?seed:int ->
  ?commands:int ->
  ?crash:int list ->
  Faultmodel.Fleet.t ->
  plan ->
  execution
(** Run the plan on the simulator: build a Raft cluster over the
    committee with the plan's quorum sizes and timeout multipliers,
    optionally crash the listed committee {e positions}, drive a
    client workload, and check safety/liveness. *)

val pp_plan : Format.formatter -> plan -> unit
