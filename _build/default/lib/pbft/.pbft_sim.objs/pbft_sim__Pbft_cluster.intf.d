lib/pbft/pbft_cluster.mli: Dessim Pbft_node
