let timeout_multipliers ?at ?(spread = 2.) fleet =
  if spread < 0. then invalid_arg "Leader_reputation.timeout_multipliers: negative spread";
  let ranked = Faultmodel.Fleet.most_reliable ?at fleet in
  let n = Faultmodel.Fleet.size fleet in
  let multipliers = Array.make n 1. in
  List.iteri
    (fun rank u ->
      let fraction = if n = 1 then 0. else float_of_int rank /. float_of_int (n - 1) in
      multipliers.(u) <- 1. +. (spread *. fraction))
    ranked;
  multipliers

let leader_fault_probability ?at fleet ~strategy =
  let probs = Faultmodel.Fleet.fault_probs ?at fleet in
  match strategy with
  | `Uniform ->
      Prob.Math_utils.kahan_sum probs /. float_of_int (Array.length probs)
  | `Reputation -> Array.fold_left Float.min 1. probs

let expected_reelections ?(at = 8766.) fleet ~strategy ~horizon =
  let nodes = Faultmodel.Fleet.nodes fleet in
  let steps = 100 in
  let dt = horizon /. float_of_int steps in
  let total = ref 0. in
  for step = 0 to steps - 1 do
    let t = at +. (float_of_int step *. dt) in
    let hazards =
      Array.map (fun node -> Faultmodel.Fault_curve.hazard_rate node.Faultmodel.Node.curve t) nodes
    in
    let leader_hazard =
      match strategy with
      | `Uniform ->
          Prob.Math_utils.kahan_sum hazards /. float_of_int (Array.length hazards)
      | `Reputation -> Array.fold_left Float.min infinity hazards
    in
    total := !total +. (leader_hazard *. dt)
  done;
  !total
