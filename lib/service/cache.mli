(** Bounded LRU memo for rendered response payloads.

    Hot queries cost one hash lookup instead of an O(2^N) re-analysis.
    Keys are canonical request encodings ({!Wire.canonical_key}), values
    are rendered JSON payload strings — caching the {e bytes} is what
    preserves the repo's determinism guarantee: a hit replays exactly
    what a miss computed.

    All operations are domain-safe (one mutex; the critical sections
    are pointer swaps). Two concurrent misses on the same key both
    compute and the second {!add} wins harmlessly — admission is
    idempotent because values for one key are identical by
    construction. *)

type t

val create : ?registry:Obs.Metrics.t -> capacity:int -> unit -> t
(** [capacity <= 0] disables the cache (every lookup misses, nothing is
    stored). Hit/miss/eviction counters and an entries gauge register
    in [registry] (default: the global registry) under the ["service"]
    family. *)

val capacity : t -> int

val find : t -> string -> string option
(** Promotes the entry to most-recently-used on a hit. *)

val add : t -> string -> string -> unit
(** Insert, evicting the least-recently-used entry when full. Re-adding
    an existing key refreshes its recency but keeps the first value. *)

val length : t -> int

val stats : t -> int * int * int
(** [(hits, misses, evictions)] since creation — counted locally so
    they are available even when the metrics registry is disabled. *)
