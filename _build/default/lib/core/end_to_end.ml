type t = {
  quorum_availability : float;
  failover_unavailability : float;
  availability : float;
  durability : float;
}

let failover_loss ~(spec : Markov.Repair_model.spec) ~failover_hours =
  (* The leader is one node failing at rate lambda; each failure costs
     one failover. *)
  spec.Markov.Repair_model.lambda *. failover_hours

let evaluate ~spec ~failover_hours ~mission_hours =
  if failover_hours < 0. then invalid_arg "End_to_end.evaluate: negative failover";
  if mission_hours <= 0. then invalid_arg "End_to_end.evaluate: mission must be positive";
  let quorum_availability = Markov.Repair_model.availability spec in
  let failover_unavailability = failover_loss ~spec ~failover_hours in
  let availability =
    Prob.Math_utils.clamp_prob (quorum_availability -. failover_unavailability)
  in
  let mttdl = Markov.Repair_model.mttdl spec in
  let durability =
    if mttdl = infinity then 1. else exp (-.mission_hours /. mttdl)
  in
  { quorum_availability; failover_unavailability; availability; durability }

let meets t ~availability_nines ~durability_nines =
  t.availability >= Prob.Nines.to_prob availability_nines
  && t.durability >= Prob.Nines.to_prob durability_nines

let required_failover_hours ~spec ~availability_nines =
  let target = Prob.Nines.to_prob availability_nines in
  let quorum_availability = Markov.Repair_model.availability spec in
  if quorum_availability < target then None
  else begin
    let slack = quorum_availability -. target in
    Some (slack /. spec.Markov.Repair_model.lambda)
  end

let pp fmt t =
  Format.fprintf fmt
    "quorum availability %s, failover loss %.2e -> availability %s (%.1f nines), \
     durability %s (%.1f nines)"
    (Prob.Nines.percent_string t.quorum_availability)
    t.failover_unavailability
    (Prob.Nines.percent_string t.availability)
    (Prob.Nines.of_prob t.availability)
    (Prob.Nines.percent_string t.durability)
    (Prob.Nines.of_prob t.durability)
