let of_prob p =
  if p >= 1. then infinity
  else if p <= 0. then 0.
  else -.(log10 (1. -. p))

let to_prob k = 1. -. (10. ** -.k)

(* The paper prints percentages with two decimals (99.97%, 99.88%) but,
   when that would round to an all-nines string, extends through the run
   of leading nines plus one significant digit of the failure
   probability (99.9990%, 99.995%, 99.99993%). [sig_nines] is the
   minimum number of decimals. *)
let percent_string ?(sig_nines = 2) p =
  let p = Math_utils.clamp_prob p in
  if p = 1. then "100%"
  else if p = 0. then "0%"
  else begin
    let fail_pct = (1. -. p) *. 100. in
    if fail_pct >= 1. then Printf.sprintf "%.*f%%" sig_nines (p *. 100.)
    else begin
      (* [lead] counts the nine-digits after the decimal point of the
         percentage; keep one further digit of the failure probability.
         If rounding at that precision would append another nine
         (misleadingly inflating the guarantee), extend the precision
         until a non-nine digit closes the string. *)
      let lead = int_of_float (Float.floor (-.log10 fail_pct)) in
      let rec render decimals =
        let s = Printf.sprintf "%.*f" decimals (p *. 100.) in
        if decimals < 12 && String.length s > 0 && s.[String.length s - 1] = '9' then
          render (decimals + 1)
        else s ^ "%"
      in
      render (max sig_nines (lead + 1))
    end
  end

let pp_percent ?sig_nines fmt p =
  Format.pp_print_string fmt (percent_string ?sig_nines p)

let pp_nines fmt p = Format.fprintf fmt "%.1f nines" (of_prob p)

let parse_percent s =
  let s = String.trim s in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '%' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  match float_of_string_opt s with
  | Some v when v >= 0. && v <= 100. -> Some (v /. 100.)
  | Some _ | None -> None
