(** Min-cost deployment search.

    Answers the operator's question the paper poses: given a target
    number of nines of safe-and-live Raft, which machine class and
    cluster size is cheapest (or lowest-carbon) with no reliability
    trade-off? *)

type deployment = {
  machine : Machine.t;
  n : int;
  reliability : float;  (** P(safe and live) of the resulting cluster. *)
  hourly_cost : float;
  annual_carbon : float;
}

type objective = Cost | Carbon

val min_cluster : Machine.t -> target:float -> ?max_n:int -> unit -> deployment option
(** Smallest (odd) Raft cluster of this class reaching the target
    reliability. *)

val optimize :
  ?objective:objective ->
  ?catalog:Machine.t list ->
  target:float ->
  ?max_n:int ->
  unit ->
  deployment option
(** Cheapest deployment over the catalog meeting the target. *)

val savings_vs :
  baseline:deployment -> deployment -> float
(** Cost ratio baseline/alternative (the paper's "3x reduction"). *)

val pp_deployment : Format.formatter -> deployment -> unit
