(* Tests for the probability-native components: dynamic quorum sizing,
   committee sampling, leader reputation, the phi-accrual failure
   detector, and preemptive reconfiguration. *)

open Probnative

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Dynamic quorums -------------------------------------------------------- *)

let test_raft_sizings_all_structurally_safe () =
  let fleet = Faultmodel.Fleet.uniform ~n:7 ~p:0.05 () in
  let sizings = Dynamic_quorum.raft_sizings fleet in
  Alcotest.(check int) "one per q_vc choice" 4 (List.length sizings);
  List.iter
    (fun (c : Dynamic_quorum.raft_choice) ->
      Alcotest.(check bool) "structurally safe" true
        (Probcons.Raft_model.structurally_safe c.params);
      Alcotest.(check bool) "probability sane" true (c.p_live >= 0. && c.p_live <= 1.))
    sizings;
  (* Sorted by ascending q_per; liveness grows with symmetric quorums. *)
  match sizings with
  | first :: _ ->
      Alcotest.(check int) "cheapest commit first" 1
        first.Dynamic_quorum.params.Probcons.Raft_model.q_per
  | [] -> Alcotest.fail "no sizings"

let test_best_raft_picks_cheapest_meeting_target () =
  let fleet = Faultmodel.Fleet.uniform ~n:9 ~p:0.02 () in
  (match Dynamic_quorum.best_raft ~target_live:0.999 fleet with
  | Some c ->
      Alcotest.(check bool) "meets target" true (c.Dynamic_quorum.p_live >= 0.999);
      (* Any cheaper commit quorum must miss the target. *)
      List.iter
        (fun (other : Dynamic_quorum.raft_choice) ->
          if
            other.params.Probcons.Raft_model.q_per
            < c.Dynamic_quorum.params.Probcons.Raft_model.q_per
          then Alcotest.(check bool) "cheaper misses" true (other.p_live < 0.999))
        (Dynamic_quorum.raft_sizings fleet)
  | None -> Alcotest.fail "target reachable");
  (* An impossible target yields None. *)
  Alcotest.(check bool) "impossible target" true
    (Dynamic_quorum.best_raft ~target_live:(Prob.Nines.to_prob 12.)
       (Faultmodel.Fleet.uniform ~n:3 ~p:0.2 ())
    = None)

let test_best_pbft_meets_targets () =
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:5 ~p:0.01 () in
  match Dynamic_quorum.best_pbft ~target_safe:0.999 ~target_live:0.99 fleet with
  | Some c ->
      Alcotest.(check bool) "safe target" true (c.Dynamic_quorum.p_safe >= 0.999);
      Alcotest.(check bool) "live target" true (c.Dynamic_quorum.p_live >= 0.99)
  | None -> Alcotest.fail "pbft sizing must exist for n=5 p=1%"

let test_best_pbft_impossible () =
  (* n=7 at p=2% cannot reach 4 nines of safety AND 3 nines of
     liveness simultaneously (verified by hand: safety needs q_eq=6
     quorums whose liveness then requires 6 of 7 up = 99.2%). *)
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:7 ~p:0.02 () in
  Alcotest.(check bool) "no sizing" true
    (Dynamic_quorum.best_pbft ~target_safe:0.9999 ~target_live:0.999 fleet = None)

(* --- Committee --------------------------------------------------------------- *)

let test_ranked_committee_prefix_of_most_reliable () =
  let fleet = Faultmodel.Fleet.mixed [ (3, 0.10); (3, 0.01) ] in
  match Committee.reliability_ranked ~target:0.999 fleet with
  | Some c ->
      (* Must pick among the reliable nodes 3,4,5 first. *)
      Alcotest.(check (list int)) "most reliable prefix" [ 3; 4; 5 ]
        (List.sort compare c.Committee.members);
      Alcotest.(check bool) "meets target" true (c.Committee.p_safe_live >= 0.999)
  | None -> Alcotest.fail "committee must exist"

let test_ranked_committee_grows_with_target () =
  let fleet = Faultmodel.Fleet.uniform ~n:21 ~p:0.05 () in
  let size target =
    match Committee.reliability_ranked ~target fleet with
    | Some c -> List.length c.Committee.members
    | None -> max_int
  in
  Alcotest.(check bool) "more nines, more members" true (size 0.999 <= size 0.99999);
  Alcotest.(check bool) "odd sizes" true (size 0.999 mod 2 = 1)

let test_random_committee_properties () =
  let fleet = Faultmodel.Fleet.uniform ~n:20 ~p:0.03 () in
  let rng = Prob.Rng.create 81 in
  let c = Committee.random_committee rng ~size:7 fleet in
  Alcotest.(check int) "size" 7 (List.length c.Committee.members);
  Alcotest.(check int) "distinct" 7
    (List.length (List.sort_uniq compare c.Committee.members));
  (* Uniform fleet: any 7-committee has the closed-form reliability. *)
  check_float ~eps:1e-12 "uniform reliability"
    (Probcons.Raft_model.safe_and_live_uniform ~n:7 ~p:0.03)
    c.Committee.p_safe_live

let test_diversified_committee_respects_domains () =
  (* 6 ultra-reliable nodes all on platform A, 3 good nodes elsewhere:
     capping platform A at 2 forces the committee to mix. *)
  let fleet = Faultmodel.Fleet.mixed [ (6, 0.001); (3, 0.01) ] in
  let domains = [ [ 0; 1; 2; 3; 4; 5 ] ] in
  (match Committee.diversified_ranked ~target:0.999 ~domains ~max_per_domain:2 fleet with
  | Some c ->
      let in_domain =
        List.length (List.filter (fun u -> u < 6) c.Committee.members)
      in
      Alcotest.(check bool) "cap respected" true (in_domain <= 2);
      Alcotest.(check bool) "meets target" true (c.Committee.p_safe_live >= 0.999)
  | None -> Alcotest.fail "diversified committee must exist");
  (* Without the cap the ranked committee would be all-platform-A. *)
  (match Committee.reliability_ranked ~target:0.999 fleet with
  | Some c ->
      Alcotest.(check bool) "unconstrained prefers the monoculture" true
        (List.for_all (fun u -> u < 6) c.Committee.members)
  | None -> Alcotest.fail "ranked committee must exist");
  (* Impossible caps yield None rather than a violating committee. *)
  Alcotest.(check bool) "unreachable target" true
    (Committee.diversified_ranked ~target:(Prob.Nines.to_prob 9.) ~domains
       ~max_per_domain:1 fleet
    = None)

let test_vrf_committee_deterministic_and_rotating () =
  let fleet = Faultmodel.Fleet.uniform ~n:20 ~p:0.03 () in
  let c1 = Committee.vrf_committee ~seed:9 ~epoch:1 ~size:7 fleet in
  let c2 = Committee.vrf_committee ~seed:9 ~epoch:1 ~size:7 fleet in
  Alcotest.(check (list int)) "same epoch, same committee" c1.Committee.members
    c2.Committee.members;
  let next = Committee.vrf_committee ~seed:9 ~epoch:2 ~size:7 fleet in
  Alcotest.(check bool) "rotates across epochs" true
    (next.Committee.members <> c1.Committee.members);
  let other_seed = Committee.vrf_committee ~seed:10 ~epoch:1 ~size:7 fleet in
  Alcotest.(check bool) "seed matters" true
    (other_seed.Committee.members <> c1.Committee.members)

let test_random_committee_size_at_least_ranked () =
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.005); (10, 0.02); (6, 0.08) ] in
  let target = 0.9999 in
  let rng = Prob.Rng.create 82 in
  match
    ( Committee.reliability_ranked ~target fleet,
      Committee.random_committee_size rng ~target fleet )
  with
  | Some ranked, Some random_size ->
      Alcotest.(check bool) "random needs at least as many" true
        (random_size >= List.length ranked.Committee.members)
  | _ -> Alcotest.fail "both must exist"

(* --- Leader reputation --------------------------------------------------------- *)

let test_timeout_multipliers_ordering () =
  let fleet = Faultmodel.Fleet.mixed [ (2, 0.08); (2, 0.01) ] in
  let m = Leader_reputation.timeout_multipliers ~spread:2. fleet in
  (* Most reliable node (id 2 or 3) gets multiplier 1. *)
  check_float "most reliable" 1. (Array.fold_left Float.min infinity m);
  check_float "least reliable" 3. (Array.fold_left Float.max 0. m);
  Alcotest.(check bool) "reliable beat flaky" true (m.(2) < m.(0) && m.(3) < m.(1));
  Alcotest.check_raises "negative spread"
    (Invalid_argument "Leader_reputation.timeout_multipliers: negative spread")
    (fun () -> ignore (Leader_reputation.timeout_multipliers ~spread:(-1.) fleet))

let test_leader_fault_probability_strategies () =
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.08); (3, 0.01) ] in
  let uniform = Leader_reputation.leader_fault_probability fleet ~strategy:`Uniform in
  let reputation = Leader_reputation.leader_fault_probability fleet ~strategy:`Reputation in
  check_float ~eps:1e-12 "uniform = fleet mean" (((4. *. 0.08) +. (3. *. 0.01)) /. 7.) uniform;
  check_float ~eps:1e-12 "reputation = fleet min" 0.01 reputation;
  Alcotest.(check bool) "reputation wins" true (reputation < uniform)

let test_expected_reelections_ranking () =
  let fleet =
    Faultmodel.Fleet.of_nodes
      [
        Faultmodel.Node.make ~id:0 (Faultmodel.Fault_curve.Exponential { rate = 1e-4 });
        Faultmodel.Node.make ~id:1 (Faultmodel.Fault_curve.Exponential { rate = 1e-5 });
      ]
  in
  let uniform =
    Leader_reputation.expected_reelections fleet ~strategy:`Uniform ~horizon:10_000.
  in
  let reputation =
    Leader_reputation.expected_reelections fleet ~strategy:`Reputation ~horizon:10_000.
  in
  Alcotest.(check bool) "fewer re-elections with reputation" true (reputation < uniform);
  (* Exponential hazards are constant, so the integral is closed-form. *)
  check_float ~eps:1e-6 "reputation closed form" 0.1 reputation;
  check_float ~eps:1e-6 "uniform closed form" ((1e-4 +. 1e-5) /. 2. *. 10_000.) uniform

(* --- Failure detector --------------------------------------------------------------- *)

let test_phi_zero_after_heartbeat () =
  let fd = Failure_detector.create () in
  for i = 0 to 10 do
    Failure_detector.heartbeat fd ~now:(float_of_int i *. 100.)
  done;
  check_float "phi right after beat" 0. (Failure_detector.phi fd ~now:1000.);
  Alcotest.(check bool) "phi within mean" true (Failure_detector.phi fd ~now:1050. = 0.)

let test_phi_grows_with_silence () =
  let fd = Failure_detector.create () in
  for i = 0 to 20 do
    Failure_detector.heartbeat fd ~now:(float_of_int i *. 100.)
  done;
  let p1 = Failure_detector.phi fd ~now:2300. in
  let p2 = Failure_detector.phi fd ~now:2600. in
  let p3 = Failure_detector.phi fd ~now:4000. in
  Alcotest.(check bool) "monotone growth" true (p1 < p2 && p2 < p3);
  Alcotest.(check bool) "not suspect early" false
    (Failure_detector.suspect fd ~now:2210.);
  Alcotest.(check bool) "suspect after long silence" true
    (Failure_detector.suspect fd ~now:10_000.)

let test_phi_tolerates_jitter () =
  (* Irregular heartbeats widen the deviation, so the same silence
     yields a lower phi than under a metronome. *)
  let regular = Failure_detector.create () in
  let jittery = Failure_detector.create () in
  let rng = Prob.Rng.create 91 in
  let time_r = ref 0. and time_j = ref 0. in
  for _ = 1 to 50 do
    time_r := !time_r +. 100.;
    Failure_detector.heartbeat regular ~now:!time_r;
    time_j := !time_j +. 50. +. (Prob.Rng.float rng *. 100.);
    Failure_detector.heartbeat jittery ~now:!time_j
  done;
  let phi_r = Failure_detector.phi regular ~now:(!time_r +. 400.) in
  let phi_j = Failure_detector.phi jittery ~now:(!time_j +. 400.) in
  Alcotest.(check bool) "jitter lowers suspicion" true (phi_j < phi_r)

let test_detector_bookkeeping () =
  let fd = Failure_detector.create ~window:4 () in
  Alcotest.(check int) "no samples" 0 (Failure_detector.samples fd);
  Alcotest.(check (option (float 0.))) "no mean" None (Failure_detector.mean_interval fd);
  for i = 0 to 9 do
    Failure_detector.heartbeat fd ~now:(float_of_int i *. 10.)
  done;
  Alcotest.(check int) "window bounds history" 4 (Failure_detector.samples fd);
  Alcotest.(check (option (float 1e-9))) "mean" (Some 10.)
    (Failure_detector.mean_interval fd);
  Alcotest.check_raises "time backwards"
    (Invalid_argument "Failure_detector.heartbeat: time went backwards") (fun () ->
      Failure_detector.heartbeat fd ~now:0.)

(* --- Preemptive reconfiguration --------------------------------------------------------- *)

let aging_curve = Faultmodel.Fault_curve.Weibull { shape = 3.; scale = 20_000. }

let aging_fleet n =
  Faultmodel.Fleet.of_nodes (List.init n (fun id -> Faultmodel.Node.make ~id aging_curve))

let test_window_liveness_basics () =
  (* Exponential nodes with a 1% one-year AFR: the one-year window from
     t=0 must match the closed-form majority computation. (A Constant
     curve would have zero *conditional* window risk by construction.) *)
  let curve = Faultmodel.Fault_curve.of_afr 0.01 in
  let fleet =
    Faultmodel.Fleet.of_nodes (List.init 5 (fun id -> Faultmodel.Node.make ~id curve))
  in
  let live =
    Preemptive_reconfig.window_liveness fleet ~quorum:3 ~start:0. ~duration:8766.
  in
  Alcotest.(check bool) "in unit interval" true (live >= 0. && live <= 1.);
  Alcotest.(check bool) "close to closed form" true
    (Float.abs (live -. Probcons.Raft_model.safe_and_live_uniform ~n:5 ~p:0.01) < 1e-9);
  (* And a Constant fleet indeed reports zero conditional window risk. *)
  let const_fleet = Faultmodel.Fleet.uniform ~n:5 ~p:0.01 () in
  Alcotest.(check (float 1e-12)) "constant curve has no window risk" 1.
    (Preemptive_reconfig.window_liveness const_fleet ~quorum:3 ~start:0. ~duration:8766.)

let test_policy_swaps_aging_nodes () =
  let outcome =
    Preemptive_reconfig.simulate_policy ~fleet:(aging_fleet 5)
      ~replacement_curve:aging_curve ~target_live:0.99999 ~horizon:50_000.
      ~review_interval:1000.
  in
  Alcotest.(check bool) "swaps happened" true (List.length outcome.Preemptive_reconfig.swaps > 0);
  Alcotest.(check int) "reviews" 50 outcome.Preemptive_reconfig.reviews;
  (* Every swap must strictly improve the window guarantee. *)
  List.iter
    (fun (s : Preemptive_reconfig.swap) ->
      Alcotest.(check bool) "swap improves" true
        (s.cluster_live_after > s.cluster_live_before))
    outcome.Preemptive_reconfig.swaps;
  (* The managed fleet ends the mission with a better final window than
     the unmanaged one. *)
  let final_live =
    Preemptive_reconfig.window_liveness outcome.Preemptive_reconfig.final_fleet ~quorum:3
      ~start:49_000. ~duration:1000.
  in
  let unmanaged_live =
    Preemptive_reconfig.window_liveness (aging_fleet 5) ~quorum:3 ~start:49_000.
      ~duration:1000.
  in
  Alcotest.(check bool) "policy beats neglect" true (final_live > unmanaged_live)

let test_policy_idle_when_target_met () =
  let fresh = Faultmodel.Fleet.uniform ~n:5 ~p:0.0001 () in
  let outcome =
    Preemptive_reconfig.simulate_policy ~fleet:fresh
      ~replacement_curve:(Faultmodel.Fault_curve.constant 0.0001) ~target_live:0.999
      ~horizon:10_000. ~review_interval:1000.
  in
  Alcotest.(check int) "no swaps" 0 (List.length outcome.Preemptive_reconfig.swaps)

let test_policy_validation () =
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Preemptive_reconfig: review interval must be positive") (fun () ->
      ignore
        (Preemptive_reconfig.simulate_policy ~fleet:(aging_fleet 3)
           ~replacement_curve:aging_curve ~target_live:0.9 ~horizon:10.
           ~review_interval:0.))

(* --- Planner ----------------------------------------------------------------- *)

let planner_fleet = Faultmodel.Fleet.mixed [ (3, 0.001); (8, 0.02); (5, 0.10) ]

let test_planner_produces_consistent_plan () =
  match Planner.plan ~target:0.9999 planner_fleet with
  | Some plan ->
      (* Committee: most reliable nodes first (ids 0-2 are the premium
         ones). *)
      let sorted = List.sort compare plan.Planner.committee in
      Alcotest.(check bool) "premium nodes included" true
        (List.for_all (fun u -> List.mem u sorted) [ 0; 1; 2 ]
        || List.length plan.Planner.committee < 3);
      (* Quorums structurally safe over the committee. *)
      Alcotest.(check bool) "structurally safe" true
        (Probcons.Raft_model.structurally_safe plan.Planner.quorums);
      Alcotest.(check int) "quorums sized to committee"
        (List.length plan.Planner.committee)
        plan.Planner.quorums.Probcons.Raft_model.n;
      (* Guarantee meets the target. *)
      Alcotest.(check bool) "meets target" true (plan.Planner.p_live >= 0.9999);
      Alcotest.(check int) "one multiplier per member"
        (List.length plan.Planner.committee)
        (Array.length plan.Planner.timeout_multipliers)
  | None -> Alcotest.fail "plan must exist"

let test_planner_unattainable_target () =
  let junk = Faultmodel.Fleet.uniform ~n:3 ~p:0.4 () in
  Alcotest.(check bool) "no plan" true
    (Planner.plan ~target:(Prob.Nines.to_prob 9.) junk = None)

let test_planner_execution_healthy () =
  match Planner.plan ~target:0.9999 planner_fleet with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      let ok = ref 0 and preferred = ref 0 in
      for seed = 1 to 10 do
        let e = Planner.execute ~seed planner_fleet plan in
        if e.Planner.safe && e.Planner.live then incr ok;
        if e.Planner.leader_was_most_reliable then incr preferred
      done;
      Alcotest.(check int) "all runs safe and live" 10 !ok;
      Alcotest.(check bool)
        (Printf.sprintf "preferred leader won %d/10" !preferred)
        true (!preferred >= 6)

let test_planner_execution_with_crash () =
  match Planner.plan ~target:0.9999 planner_fleet with
  | None -> Alcotest.fail "plan must exist"
  | Some plan ->
      (* Crash the most reliable member (position 0): the plan must
         still be safe, and live if the committee tolerates one
         crash. *)
      let n = List.length plan.Planner.committee in
      let tolerates =
        n - max plan.Planner.quorums.Probcons.Raft_model.q_per
              plan.Planner.quorums.Probcons.Raft_model.q_vc
        >= 1
      in
      let e = Planner.execute ~seed:3 ~crash:[ 0 ] planner_fleet plan in
      Alcotest.(check bool) "safe under crash" true e.Planner.safe;
      if tolerates then Alcotest.(check bool) "live under crash" true e.Planner.live

(* --- Reconfiguration executor ---------------------------------------------------- *)

let wearout_universe =
  let aging = Faultmodel.Fault_curve.Weibull { shape = 4.; scale = 15_000. } in
  let fresh = Faultmodel.Fault_curve.Weibull { shape = 4.; scale = 80_000. } in
  Faultmodel.Fleet.of_nodes
    (List.init 7 (fun id -> Faultmodel.Node.make ~id (if id < 3 then aging else fresh)))

let test_reconfig_executor_beats_neglect () =
  (* Members wear out within the mission; the policy must swap them for
     spares in time while the unmanaged control loses its quorum. *)
  let managed = ref 0 and unmanaged = ref 0 and swaps = ref 0 in
  for seed = 1 to 5 do
    let m =
      Reconfig_executor.run ~seed ~universe:wearout_universe ~initial_members:[ 0; 1; 2 ]
        ~target_live:0.999 ~review_interval:1000. ~horizon:30_000. ~commands:15 ()
    in
    let u =
      Reconfig_executor.run_unmanaged ~seed ~universe:wearout_universe
        ~initial_members:[ 0; 1; 2 ] ~horizon:30_000. ~commands:15 ()
    in
    if m.Reconfig_executor.managed_live then incr managed;
    if u.Reconfig_executor.managed_live then incr unmanaged;
    swaps := !swaps + m.Reconfig_executor.swaps_completed
  done;
  Alcotest.(check int) "managed survives all missions" 5 !managed;
  Alcotest.(check int) "unmanaged loses every mission" 0 !unmanaged;
  Alcotest.(check bool) "swaps actually happened" true (!swaps >= 5)

let test_reconfig_executor_idle_on_healthy_fleet () =
  (* Fresh fleet over a short mission: no swaps needed. *)
  let fresh = Faultmodel.Fleet.of_nodes
      (List.init 5 (fun id ->
           Faultmodel.Node.make ~id (Faultmodel.Fault_curve.Exponential { rate = 1e-9 })))
  in
  let m =
    Reconfig_executor.run ~seed:3 ~universe:fresh ~initial_members:[ 0; 1; 2 ]
      ~target_live:0.999 ~review_interval:1000. ~horizon:10_000. ~commands:10 ()
  in
  Alcotest.(check int) "no swaps" 0 m.Reconfig_executor.swaps_completed;
  Alcotest.(check bool) "live" true m.Reconfig_executor.managed_live;
  Alcotest.(check int) "all commands" 10 m.Reconfig_executor.commands_committed

let test_reconfig_executor_validation () =
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Reconfig_executor.run: bad review interval") (fun () ->
      ignore
        (Reconfig_executor.run ~universe:wearout_universe ~initial_members:[ 0; 1; 2 ]
           ~target_live:0.9 ~review_interval:0. ~horizon:1000. ~commands:1 ()))

(* --- Reputation-driven elections in the simulator -------------------------------------- *)

let flap_plan nodes =
  List.concat_map
    (fun node ->
      List.init 5 (fun k ->
          let at = 3000. +. (float_of_int k *. 6000.) +. (float_of_int node *. 700.) in
          (node, Dessim.Fault_injector.Crash_restart { at; back_at = at +. 1200. })))
    nodes

let latency_run ~multipliers ~seed =
  let horizon = 40_000. in
  let cluster =
    Raft_sim.Raft_cluster.create ~n:5 ~seed ?timeout_multipliers:multipliers ()
  in
  Raft_sim.Raft_cluster.inject cluster (flap_plan [ 0; 1; 2; 3 ]);
  let commands = List.init 60 (fun i -> 10_000 + i) in
  let submissions =
    List.mapi (fun i cmd -> (cmd, 2000. +. (float_of_int i *. 500.))) commands
  in
  Raft_sim.Raft_cluster.submit_workload cluster ~commands ~start:2000. ~interval:500.;
  Raft_sim.Raft_cluster.run cluster ~until:horizon;
  Raft_sim.Raft_checker.command_latencies cluster ~submissions ~horizon

let test_reputation_improves_tail_latency () =
  (* Flaky nodes flap; a reputation-weighted election keeps the stable
     node in charge, so the tail of client latency collapses. *)
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.08); (1, 0.002) ] in
  let multipliers = Probnative.Leader_reputation.timeout_multipliers ~spread:4. fleet in
  let gather multipliers =
    let all = ref [] in
    for seed = 1 to 3 do
      all := latency_run ~multipliers ~seed @ !all
    done;
    let a = Array.of_list !all in
    Array.sort compare a;
    a
  in
  let uniform = gather None in
  let reputation = gather (Some multipliers) in
  let p99 a = a.(Array.length a - 1 - (Array.length a / 100)) in
  Alcotest.(check bool)
    (Printf.sprintf "reputation p99 %.0f < uniform p99 %.0f" (p99 reputation) (p99 uniform))
    true
    (p99 reputation < p99 uniform)

let test_reputation_multipliers_bias_elections () =
  (* Feed reputation multipliers into the executable Raft: across
     seeds, the most reliable node (shortest timeouts) must win the
     first election far more often than chance. *)
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.08); (1, 0.005) ] in
  let multipliers = Leader_reputation.timeout_multipliers ~spread:4. fleet in
  let reliable_wins = ref 0 in
  let total = 20 in
  for seed = 1 to total do
    let cluster =
      Raft_sim.Raft_cluster.create ~n:5 ~seed ~timeout_multipliers:multipliers ()
    in
    Raft_sim.Raft_cluster.run cluster ~until:5000.;
    match Raft_sim.Raft_cluster.leader_ids cluster with
    | [ leader ] -> if leader = 4 then incr reliable_wins
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "reliable node led %d/%d" !reliable_wins total)
    true
    (!reliable_wins >= 15)

(* --- Uncertainty-weighted selection ---------------------------------------- *)

let uncertainty_case_gen =
  (* A small mixed fleet plus a per-node uncertainty (confidence-interval
     half-width, 0..1) for each of its nodes. *)
  let open QCheck.Gen in
  let prob = map (fun k -> float_of_int k /. 500.) (int_range 1 60) in
  let* groups = list_size (int_range 1 3) (pair (int_range 2 5) prob) in
  let n = List.fold_left (fun acc (count, _) -> acc + count) 0 groups in
  let* unc =
    list_repeat n (map (fun k -> float_of_int k /. 10.) (int_range 0 10))
  in
  return (groups, Array.of_list unc)

let uncertainty_case_arb =
  QCheck.make
    ~print:(fun (groups, unc) ->
      Printf.sprintf "mix=%s unc=%s"
        (QCheck.Print.(list (pair int float)) groups)
        (QCheck.Print.(array float) unc))
    uncertainty_case_gen

let prop_weighted_committee_zero_is_ranked =
  QCheck.Test.make ~count:100
    ~name:"reliability_weighted with zero uncertainty = reliability_ranked"
    uncertainty_case_arb
    (fun (groups, _) ->
      let fleet = Faultmodel.Fleet.mixed groups in
      let target = 0.99 in
      match
        ( Committee.reliability_ranked ~target fleet,
          Committee.reliability_weighted
            ~uncertainty:(fun _ -> 0.)
            ~target fleet )
      with
      | None, None -> true
      | Some a, Some b -> a.Committee.members = b.Committee.members
      | _ -> false)

let prop_weighted_committee_meets_target =
  QCheck.Test.make ~count:100
    ~name:"reliability_weighted meets target, never undercuts ranked size"
    uncertainty_case_arb
    (fun (groups, unc) ->
      let fleet = Faultmodel.Fleet.mixed groups in
      let target = 0.99 in
      match
        Committee.reliability_weighted
          ~uncertainty:(fun id -> unc.(id))
          ~target fleet
      with
      | None -> true
      | Some c -> (
          c.Committee.p_safe_live >= target
          &&
          (* The unweighted ranking is the optimal order for any k, so
             discounting can only need at least as many members. *)
          match Committee.reliability_ranked ~target fleet with
          | None -> false
          | Some best ->
              List.length c.Committee.members
              >= List.length best.Committee.members))

let prop_weighted_raft_zero_is_best =
  QCheck.Test.make ~count:100
    ~name:"best_raft_weighted with zero uncertainty = best_raft"
    uncertainty_case_arb
    (fun (groups, _) ->
      let fleet = Faultmodel.Fleet.mixed groups in
      let target_live = 0.99 in
      match
        ( Dynamic_quorum.best_raft ~target_live fleet,
          Dynamic_quorum.best_raft_weighted
            ~uncertainty:(fun _ -> 0.)
            ~target_live fleet )
      with
      | None, None -> true
      | Some a, Some b ->
          a.Dynamic_quorum.params = b.Dynamic_quorum.params
          && a.Dynamic_quorum.p_live = b.Dynamic_quorum.p_live
      | _ -> false)

let prop_weighted_raft_attainable_implies_unweighted =
  QCheck.Test.make ~count:100
    ~name:"best_raft_weighted attainable => best_raft attainable"
    uncertainty_case_arb
    (fun (groups, unc) ->
      let fleet = Faultmodel.Fleet.mixed groups in
      let target_live = 0.99 in
      match
        Dynamic_quorum.best_raft_weighted
          ~uncertainty:(fun id -> unc.(id))
          ~target_live fleet
      with
      | None -> true
      | Some c ->
          (* Discounted reliabilities are pessimistic: a target met
             under them is met under the truth. *)
          c.Dynamic_quorum.p_live >= target_live
          && Dynamic_quorum.best_raft ~target_live fleet <> None)

(* --- The weighted selectors as registry protocols ----------------------- *)

let test_weighted_registry_entries () =
  (* Registered at link time: the registry dispatches both names. *)
  Alcotest.(check bool) "raft-weighted registered" true
    (Probcons.Registry.find "raft-weighted" <> None);
  Alcotest.(check bool) "committee-weighted registered" true
    (Probcons.Registry.find "committee-weighted" <> None);
  let s name = Probcons.Scenario.uniform ~protocol:name ~n:5 ~p:0.01 () in
  (match Probcons.Registry.analyze (s "raft-weighted") with
  | Ok r ->
      Alcotest.(check bool) "meets the default 3-nines target" true
        (r.Probcons.Analysis.p_live >= Prob.Nines.to_prob 3.)
  | Error e -> Alcotest.fail e);
  match Probcons.Registry.analyze (s "committee-weighted") with
  | Ok r ->
      Alcotest.(check bool) "committee protocol named" true
        (String.length r.Probcons.Analysis.protocol > 0
        && String.sub r.Probcons.Analysis.protocol 0 9 = "committee");
      Alcotest.(check bool) "meets the default target" true
        (r.Probcons.Analysis.p_live >= Prob.Nines.to_prob 3.)
  | Error e -> Alcotest.fail e

let test_weighted_registry_overrides () =
  (* target_nines is the one quorum override; unknown keys and
     unattainable targets are typed errors, and a scenario file
     carrying the override parses through the normal codec. *)
  let mk ?(quorums = []) ?(target = None) name =
    let quorums =
      match target with Some t -> ("target_nines", t) :: quorums | None -> quorums
    in
    Probcons.Scenario.make ~protocol:name ~mix:[ (5, 0.01) ] ~quorums ()
  in
  let ok = function Ok s -> s | Error e -> Alcotest.fail e in
  (match Probcons.Registry.validate (ok (mk ~target:(Some 2) "raft-weighted")) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Probcons.Registry.validate
       (ok (mk ~quorums:[ ("q_per", 3) ] "raft-weighted"))
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown override key accepted");
  (match
     Probcons.Registry.analyze (ok (mk ~target:(Some 9) "committee-weighted"))
   with
  | Error msg ->
      Alcotest.(check bool) "unattainable target names the protocol" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "9 nines from a p=0.01 fleet of 5 accepted");
  (* Round-trip through the scenario JSON codec. *)
  let json =
    Probcons.Scenario.to_json (ok (mk ~target:(Some 4) "committee-weighted"))
  in
  match Probcons.Scenario.of_json json with
  | Ok s ->
      Alcotest.(check (option int)) "override survives the codec" (Some 4)
        (Probcons.Scenario.quorum s "target_nines")
  | Error e -> Alcotest.fail e

let test_weighted_registry_dynamic_uncertainty () =
  (* A Markov-process fleet with [at] set gives the selectors a real
     uncertainty signal: the spread of the marginal over the mission
     window. The committee choice under uncertainty can only be more
     conservative (never smaller) than the static-marginal choice. *)
  let process =
    match
      Faultmodel.Failure_process.markov ~fail_rate:0.2 ~recover_rate:1.5
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let scenario =
    match
      Probcons.Scenario.make ~protocol:"committee-weighted"
        ~mix:[ (7, 0.05) ]
        ~processes:(List.init 7 (fun _ -> process))
        ~quorums:[ ("target_nines", 2) ]
        ~at:2.0 ()
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Probcons.Registry.analyze scenario with
  | Ok r ->
      Alcotest.(check bool) "dynamic analysis meets 2 nines" true
        (r.Probcons.Analysis.p_live >= Prob.Nines.to_prob 2.)
  | Error e -> Alcotest.fail e

let test_weighted_validation () =
  let fleet = Faultmodel.Fleet.uniform ~n:5 ~p:0.02 () in
  Alcotest.check_raises "committee negative uncertainty"
    (Invalid_argument "Committee.reliability_weighted: bad uncertainty")
    (fun () ->
      ignore
        (Committee.reliability_weighted
           ~uncertainty:(fun _ -> -0.5)
           ~target:0.99 fleet));
  Alcotest.check_raises "raft nan uncertainty"
    (Invalid_argument "Dynamic_quorum.best_raft_weighted: bad uncertainty")
    (fun () ->
      ignore
        (Dynamic_quorum.best_raft_weighted
           ~uncertainty:(fun _ -> Float.nan)
           ~target_live:0.99 fleet))

let test_weighted_prefers_trusted_node () =
  (* Node 0 is nominally the most reliable but its estimate has a wide
     confidence interval; the weighted selection passes it over for a
     slightly worse, well-measured node. *)
  let fleet = Faultmodel.Fleet.mixed [ (1, 0.010); (4, 0.012) ] in
  let unc = [| 0.9; 0.; 0.; 0.; 0. |] in
  let members = function
    | None -> Alcotest.fail "target attainable"
    | Some c -> c.Committee.members
  in
  Alcotest.(check (list int)) "unweighted takes node 0" [ 0 ]
    (members (Committee.reliability_ranked ~target:0.9 fleet));
  Alcotest.(check (list int)) "weighted passes it over" [ 1 ]
    (members
       (Committee.reliability_weighted
          ~uncertainty:(fun id -> unc.(id))
          ~target:0.9 fleet))

let suite =
  [
    Alcotest.test_case "raft sizings structural" `Quick test_raft_sizings_all_structurally_safe;
    Alcotest.test_case "best raft minimal" `Quick test_best_raft_picks_cheapest_meeting_target;
    Alcotest.test_case "best pbft targets" `Slow test_best_pbft_meets_targets;
    Alcotest.test_case "best pbft impossible" `Slow test_best_pbft_impossible;
    Alcotest.test_case "ranked committee prefix" `Quick
      test_ranked_committee_prefix_of_most_reliable;
    Alcotest.test_case "ranked committee grows" `Quick test_ranked_committee_grows_with_target;
    Alcotest.test_case "random committee" `Quick test_random_committee_properties;
    Alcotest.test_case "diversified committee" `Quick
      test_diversified_committee_respects_domains;
    Alcotest.test_case "vrf committee" `Quick test_vrf_committee_deterministic_and_rotating;
    Alcotest.test_case "random >= ranked size" `Slow test_random_committee_size_at_least_ranked;
    Alcotest.test_case "timeout multipliers" `Quick test_timeout_multipliers_ordering;
    Alcotest.test_case "leader fault probability" `Quick test_leader_fault_probability_strategies;
    Alcotest.test_case "expected re-elections" `Quick test_expected_reelections_ranking;
    Alcotest.test_case "phi zero after beat" `Quick test_phi_zero_after_heartbeat;
    Alcotest.test_case "phi grows with silence" `Quick test_phi_grows_with_silence;
    Alcotest.test_case "phi tolerates jitter" `Quick test_phi_tolerates_jitter;
    Alcotest.test_case "detector bookkeeping" `Quick test_detector_bookkeeping;
    Alcotest.test_case "window liveness" `Quick test_window_liveness_basics;
    Alcotest.test_case "policy swaps aging nodes" `Quick test_policy_swaps_aging_nodes;
    Alcotest.test_case "policy idle when met" `Quick test_policy_idle_when_target_met;
    Alcotest.test_case "policy validation" `Quick test_policy_validation;
    Alcotest.test_case "reconfig beats neglect" `Slow test_reconfig_executor_beats_neglect;
    Alcotest.test_case "reconfig idle when healthy" `Quick
      test_reconfig_executor_idle_on_healthy_fleet;
    Alcotest.test_case "reconfig validation" `Quick test_reconfig_executor_validation;
    Alcotest.test_case "planner consistent plan" `Quick test_planner_produces_consistent_plan;
    Alcotest.test_case "planner unattainable" `Quick test_planner_unattainable_target;
    Alcotest.test_case "planner execution healthy" `Slow test_planner_execution_healthy;
    Alcotest.test_case "planner execution with crash" `Quick
      test_planner_execution_with_crash;
    Alcotest.test_case "reputation biases elections" `Slow
      test_reputation_multipliers_bias_elections;
    Alcotest.test_case "reputation improves tail latency" `Slow
      test_reputation_improves_tail_latency;
    QCheck_alcotest.to_alcotest prop_weighted_committee_zero_is_ranked;
    QCheck_alcotest.to_alcotest prop_weighted_committee_meets_target;
    QCheck_alcotest.to_alcotest prop_weighted_raft_zero_is_best;
    QCheck_alcotest.to_alcotest prop_weighted_raft_attainable_implies_unweighted;
    Alcotest.test_case "weighted registry entries" `Quick
      test_weighted_registry_entries;
    Alcotest.test_case "weighted registry overrides" `Quick
      test_weighted_registry_overrides;
    Alcotest.test_case "weighted registry dynamic uncertainty" `Quick
      test_weighted_registry_dynamic_uncertainty;
    Alcotest.test_case "weighted validation" `Quick test_weighted_validation;
    Alcotest.test_case "weighted prefers trusted node" `Quick
      test_weighted_prefers_trusted_node;
  ]
