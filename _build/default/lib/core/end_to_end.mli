(** End-to-end guarantees: from consensus metrics to application SLOs.

    The paper's §4: "applications care about end-to-end reliability
    guarantees, where consensus is a small part of the system", and a
    live consensus protocol "might not be able to meet the availability
    requirements if its recovery or reconfiguration is intolerably
    slow". This module composes the pieces:

    - steady-state quorum availability from the Markov repair model,
    - amortized leader-failover downtime (a live protocol still stalls
      for the election timeout whenever its leader dies),
    - mission durability from MTTDL.

    Results are expressed the way applications state SLOs: nines of
    availability and nines of durability. *)

type t = {
  quorum_availability : float;
      (** Fraction of time at least a quorum is up (Markov steady
          state). *)
  failover_unavailability : float;
      (** Expected fraction of time lost to leader re-elections:
          leader failure rate x failover duration. *)
  availability : float;  (** End-to-end: quorum availability minus failover loss. *)
  durability : float;
      (** P(no committed data lost over the mission):
          [exp (-mission / MTTDL)]. *)
}

val evaluate :
  spec:Markov.Repair_model.spec ->
  failover_hours:float ->
  mission_hours:float ->
  t
(** [failover_hours] is the per-incident recovery time (election
    timeout + catch-up), e.g. [0.01] for ~36 seconds. *)

val meets : t -> availability_nines:float -> durability_nines:float -> bool

val required_failover_hours :
  spec:Markov.Repair_model.spec -> availability_nines:float -> float option
(** Largest per-incident failover time compatible with the target —
    [None] when even instantaneous failover cannot reach it (quorum
    availability is already below target). Inverts the availability
    composition; this is the "recovery must be fast enough" budget the
    paper points at. *)

val pp : Format.formatter -> t -> unit
