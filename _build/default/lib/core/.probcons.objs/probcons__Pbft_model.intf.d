lib/core/pbft_model.mli: Protocol
