type outcome = {
  swaps_completed : int;
  reviews : int;
  managed_live : bool;
  final_members : int list option;
  commands_committed : int;
}

let sample_crash_plan ~seed universe ~horizon =
  (* Lifetimes depend only on [seed], so the managed and unmanaged arms
     face identical fault schedules. *)
  let rng = Prob.Rng.create ((seed * 7919) + 13) in
  let nodes = Faultmodel.Fleet.nodes universe in
  Array.to_list nodes
  |> List.filter_map (fun node ->
         let lifetime = Faultmodel.Telemetry.sample_lifetime rng node.Faultmodel.Node.curve in
         if lifetime < horizon then
           Some (node.Faultmodel.Node.id, Dessim.Fault_injector.Crash_at lifetime)
         else None)

let member_risk universe cluster ~now ~duration u =
  if not (Raft_sim.Raft_node.alive (Raft_sim.Raft_cluster.node cluster u)) then 1.
  else begin
    let node = Faultmodel.Fleet.node universe u in
    Faultmodel.Fault_curve.window_probability node.Faultmodel.Node.curve ~start:now
      ~duration
  end

let window_live risks =
  let n = Array.length risks in
  let majority = (n / 2) + 1 in
  Prob.Poisson_binomial.cdf_le risks (n - majority)

let evaluate_outcome cluster ~commands ~crashed ~swaps ~reviews =
  let final_members = Raft_sim.Raft_cluster.members_view cluster in
  let expected = List.init commands (fun i -> 9000 + i) in
  let managed_live =
    match final_members with
    | None -> false
    | Some members ->
        List.for_all
          (fun m ->
            List.mem m crashed
            || List.for_all
                 (fun cmd -> List.mem cmd (Raft_sim.Raft_cluster.committed cluster m))
                 expected)
          members
  in
  let commands_committed =
    match Raft_sim.Raft_cluster.current_leader cluster with
    | Some leader ->
        List.length
          (List.filter
             (fun cmd -> List.mem cmd (Raft_sim.Raft_cluster.committed cluster leader))
             expected)
    | None -> 0
  in
  { swaps_completed = swaps; reviews; managed_live; final_members; commands_committed }

let setup ~seed ~universe ~initial_members ~horizon ~commands =
  let n = Faultmodel.Fleet.size universe in
  let cluster = Raft_sim.Raft_cluster.create ~n ~seed ~initial_members () in
  let crash_plan = sample_crash_plan ~seed universe ~horizon in
  Raft_sim.Raft_cluster.inject cluster crash_plan;
  let expected = List.init commands (fun i -> 9000 + i) in
  let interval = Float.max 100. ((horizon -. 2000.) /. float_of_int (max commands 1)) in
  Raft_sim.Raft_cluster.submit_workload cluster ~commands:expected ~start:1000. ~interval;
  (cluster, List.map fst crash_plan)

let run ?(seed = 5) ~universe ~initial_members ~target_live ~review_interval ~horizon
    ~commands () =
  if review_interval <= 0. then invalid_arg "Reconfig_executor.run: bad review interval";
  let cluster, crashed = setup ~seed ~universe ~initial_members ~horizon ~commands in
  let engine = Raft_sim.Raft_cluster.engine cluster in
  let spares =
    ref
      (List.filter
         (fun u -> not (List.mem u initial_members))
         (List.init (Faultmodel.Fleet.size universe) Fun.id))
  in
  let pending_removal = ref None in
  let swaps = ref 0 and reviews = ref 0 in
  let review () =
    incr reviews;
    let now = Dessim.Engine.now engine in
    match !pending_removal with
    | Some victim ->
        if Raft_sim.Raft_cluster.remove_server cluster victim then begin
          pending_removal := None;
          incr swaps;
          Raft_sim.Raft_cluster.retire_at cluster
            ~time:(now +. (review_interval /. 2.))
            victim
        end
    | None -> (
        match
          ( Raft_sim.Raft_cluster.members_view cluster,
            Raft_sim.Raft_cluster.current_leader cluster )
        with
        | Some members, Some leader ->
            let risks =
              Array.of_list
                (List.map
                   (member_risk universe cluster ~now ~duration:review_interval)
                   members)
            in
            if window_live risks < target_live && !spares <> [] then begin
              (* Victim: the riskiest non-leader member; spare: the
                 healthiest alive spare. *)
              let candidates = List.filter (fun u -> u <> leader) members in
              let risk_of u = member_risk universe cluster ~now ~duration:review_interval u in
              let victim =
                List.fold_left
                  (fun best u ->
                    match best with
                    | None -> Some u
                    | Some b -> if risk_of u > risk_of b then Some u else best)
                  None candidates
              in
              let alive_spares =
                List.filter
                  (fun u -> Raft_sim.Raft_node.alive (Raft_sim.Raft_cluster.node cluster u))
                  !spares
              in
              let spare =
                List.fold_left
                  (fun best u ->
                    match best with
                    | None -> Some u
                    | Some b -> if risk_of u < risk_of b then Some u else best)
                  None alive_spares
              in
              match (victim, spare) with
              | Some victim, Some spare ->
                  if Raft_sim.Raft_cluster.add_server cluster spare then begin
                    spares := List.filter (fun u -> u <> spare) !spares;
                    pending_removal := Some victim
                  end
              | _, _ -> ()
            end
        | _, _ -> ())
  in
  let time = ref review_interval in
  while !time < horizon do
    ignore (Dessim.Engine.schedule_at engine ~time:!time review);
    time := !time +. review_interval
  done;
  Raft_sim.Raft_cluster.run cluster ~until:horizon;
  evaluate_outcome cluster ~commands ~crashed ~swaps:!swaps ~reviews:!reviews

let run_unmanaged ?(seed = 5) ~universe ~initial_members ~horizon ~commands () =
  let cluster, crashed = setup ~seed ~universe ~initial_members ~horizon ~commands in
  Raft_sim.Raft_cluster.run cluster ~until:horizon;
  evaluate_outcome cluster ~commands ~crashed ~swaps:0 ~reviews:0
