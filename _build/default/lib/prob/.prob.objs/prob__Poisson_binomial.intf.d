lib/prob/poisson_binomial.mli:
