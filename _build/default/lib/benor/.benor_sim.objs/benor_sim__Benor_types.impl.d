lib/benor/benor_types.ml: Format
