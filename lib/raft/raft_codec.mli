(** JSON codec for Raft messages and log entries.

    The simulator delivers typed messages in memory; the replicated
    service ({!Replica}) carries the same messages between OS processes
    over TCP. This codec is that wire form: total decoders (untrusted
    socket input parses to [Error], never an exception) and an encoding
    that round-trips every constructor bit-exactly. *)

val command_to_json : Raft_types.command -> Obs.Json.t
val command_of_json : Obs.Json.t -> (Raft_types.command, string) result

val entry_to_json : Raft_types.entry -> Obs.Json.t
val entry_of_json : Obs.Json.t -> (Raft_types.entry, string) result

val msg_to_json : Raft_types.msg -> Obs.Json.t
val msg_of_json : Obs.Json.t -> (Raft_types.msg, string) result
