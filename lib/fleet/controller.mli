(** The fleet controller: telemetry in, reconfiguration advice out.

    Each tick the controller pulls a batch of telemetry from a seeded
    {!Stream}, refits the reporting nodes' fault curves
    ({!Faultmodel.Telemetry.fit_auto}), folds the new estimates into a
    live Poisson-binomial failure distribution as an O(n)
    {!Prob.Incremental} batch update, and checks the fleet's liveness
    probability against its target. When the guarantee slips it first
    tries a quorum resize ({!Probnative.Dynamic_quorum.best_raft});
    when no structurally safe sizing restores the target it recommends
    — and applies — a preemptive swap of the riskiest node, the
    replacement's predicted effect computed by temporarily updating
    the incremental engine and reverting (two O(n) passes, no
    recompute).

    Runs are pure functions of the config: same seed, same
    recommendations, bit for bit. {!payload} is the one canonical JSON
    rendering, shared by the CLI and both wire framings. *)

type config = {
  nodes : int;
  seed : int;
  ticks : int;
  quorum : int;  (** Nodes that must be live; liveness = P(failures <= n - quorum). *)
  target_live : float;
  at : float;  (** Horizon (hours) at which fitted curves are evaluated. *)
  replacement_afr : float;  (** AFR of the hardware swaps install. *)
  drift_bound : float;  (** Incremental-engine refresh trigger. *)
  resize_max_nodes : int;
      (** Fleet size cap for the dynamic-quorum search (it runs a full
          analysis per candidate sizing). *)
  verify : bool;
      (** Check the incremental distribution against a from-scratch
          recompute every tick (O(n^2) — tests and small fleets). *)
  dynamic : bool;
      (** Time-varying ground truth: the stream runs its Markov
          degradation processes and the swap policy scores nodes by
          reliability weighted against estimate uncertainty,
          [(1 - estimate) / (1 + uncertainty)], instead of raw
          worst-estimate — under drift, confidence decays and the
          controller prefers replacing what it can no longer trust. *)
  stream : Stream.config;
}

val default_config :
  ?seed:int -> ?ticks:int -> ?dynamic:bool -> nodes:int -> unit -> config
(** Majority quorum, 3-nines liveness target, one-year horizon, 2% AFR
    replacements, verification on up to 256 nodes. Default seed 42,
    26 ticks, [dynamic] off (threads through to the stream config). *)

type action =
  | Resize of { q_per : int; q_vc : int; predicted_live : float }
      (** Adopt this structurally safe Raft sizing; liveness tracking
          switches to the new commit quorum. *)
  | Swap of { node : int; estimate : float; predicted_live : float }
      (** Replace the named node (its fitted fault probability is
          [estimate]); applied to stream and engine immediately. *)

type recommendation = { tick : int; p_live : float; action : action }

type outcome = {
  config : config;
  recommendations : recommendation list;
  final_quorum : int;
  final_p_live : float;
  final_expected_failures : float;
  observations : int;  (** Telemetry reports consumed. *)
  failures_seen : int;  (** Device failures across all reports. *)
  device_hours : float;  (** Observed uptime across all reports. *)
  engine_updates : int;
  engine_refreshes : int;
  max_divergence : float;
      (** Largest incremental-vs-scratch pmf distance seen at any
          verified tick; 0 when [verify] is off. *)
}

val run : config -> outcome
(** Deterministic closed loop over [config.ticks] ticks. *)

val payload : outcome -> Obs.Json.t
(** Canonical JSON rendering — the fleet analogue of
    [Registry.payload]: CLI [--json], wire/2 and wire/3 all emit these
    exact bytes. *)

val ingest_payload : outcome -> Obs.Json.t
(** Telemetry-and-refit summary of the same run (no recommendations):
    the [fleet_ingest] wire payload. *)

val pp_outcome : Format.formatter -> outcome -> unit
