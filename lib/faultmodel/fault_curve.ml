type t =
  | Constant of float
  | Exponential of { rate : float }
  | Weibull of { shape : float; scale : float }
  | Bathtub of { infant : t; useful : t; wearout : t; t1 : float; t2 : float }
  | Empirical of (float * float) array
  | Scaled of { factor : float; curve : t }
  | Shifted of { offset : float; curve : t }
  | Markov_onoff of { fail_rate : float; recover_rate : float }

let hours_per_year = 8766.

let rec eval curve t =
  let p =
    match curve with
    | Constant p -> p
    | Exponential { rate } -> -.Float.expm1 (-.rate *. Float.max 0. t)
    | Weibull { shape; scale } ->
        1. -. Prob.Distribution.weibull_survival ~shape ~scale (Float.max 0. t)
    | Bathtub { infant; useful; wearout; t1; t2 } ->
        if t < t1 then eval infant t
        else if t < t2 then eval useful t
        else eval wearout t
    | Empirical points -> eval_empirical points t
    | Scaled { factor; curve } -> factor *. eval curve t
    | Shifted { offset; curve } -> if t < offset then 0. else eval curve (t -. offset)
    | Markov_onoff { fail_rate; recover_rate } ->
        (* Two-state CTMC started Up: exact transient occupancy of Down,
           p(t) = pi * (1 - exp (-(lambda+mu) t)) with pi = lambda/(lambda+mu). *)
        let total = fail_rate +. recover_rate in
        if total <= 0. then 0.
        else
          let pi = fail_rate /. total in
          -.(pi *. Float.expm1 (-.total *. Float.max 0. t))
  in
  Prob.Math_utils.clamp_prob p

and eval_empirical points t =
  let n = Array.length points in
  if n = 0 then 0.
  else begin
    let t0, p0 = points.(0) and tn, pn = points.(n - 1) in
    if t <= t0 then p0
    else if t >= tn then pn
    else begin
      (* Binary search for the segment containing t. *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if fst points.(mid) <= t then lo := mid else hi := mid
      done;
      let ta, pa = points.(!lo) and tb, pb = points.(!hi) in
      if tb = ta then pa else pa +. ((pb -. pa) *. (t -. ta) /. (tb -. ta))
    end
  end

let constant p = Constant (Prob.Math_utils.clamp_prob p)

let of_afr afr =
  let afr = Prob.Math_utils.clamp_prob afr in
  if afr >= 1. then Exponential { rate = 1e3 }
  else Exponential { rate = -.Float.log1p (-.afr) /. hours_per_year }

let afr curve = eval curve hours_per_year

let rec hazard_rate curve t =
  match curve with
  | Exponential { rate } -> rate
  | Weibull { shape; scale } -> Prob.Distribution.weibull_hazard ~shape ~scale t
  | Shifted { offset; curve } ->
      if t < offset then 0. else hazard_rate curve (t -. offset)
  | Constant _ | Bathtub _ | Empirical _ | Scaled _ | Markov_onoff _ ->
      (* h(t) = f(t) / S(t), with f estimated by a central difference. *)
      let dt = Float.max 1e-6 (Float.abs t *. 1e-6) in
      let p_lo = eval curve (Float.max 0. (t -. dt)) in
      let p_hi = eval curve (t +. dt) in
      let survival = 1. -. eval curve t in
      if survival <= 0. then infinity
      else Float.max 0. ((p_hi -. p_lo) /. (2. *. dt)) /. survival

let window_probability curve ~start ~duration =
  let p_start = eval curve start in
  let p_end = eval curve (start +. duration) in
  let survival = 1. -. p_start in
  if survival <= 0. then 1.
  else Prob.Math_utils.clamp_prob ((p_end -. p_start) /. survival)

let rec pp fmt = function
  | Constant p -> Format.fprintf fmt "constant(%g)" p
  | Exponential { rate } -> Format.fprintf fmt "exp(rate=%g/h)" rate
  | Weibull { shape; scale } -> Format.fprintf fmt "weibull(k=%g, lambda=%g)" shape scale
  | Bathtub { t1; t2; _ } -> Format.fprintf fmt "bathtub(t1=%g, t2=%g)" t1 t2
  | Empirical points -> Format.fprintf fmt "empirical(%d points)" (Array.length points)
  | Scaled { factor; curve } -> Format.fprintf fmt "%g*%a" factor pp curve
  | Shifted { offset; curve } -> Format.fprintf fmt "%a@@+%gh" pp curve offset
  | Markov_onoff { fail_rate; recover_rate } ->
      Format.fprintf fmt "markov(fail=%g/h, recover=%g/h)" fail_rate recover_rate
