(** A Rabia-style deployment in one simulator instance. *)

type t

val create :
  ?seed:int ->
  ?latency:Dessim.Network.latency ->
  ?drop_probability:float ->
  ?f:int ->
  n:int ->
  unit ->
  t

val engine : t -> Dessim.Engine.t
val trace : t -> Dessim.Trace.t
val node : t -> int -> Rabia_node.t
val size : t -> int

val submit_workload : t -> commands:int list -> start:float -> interval:float -> unit
(** Client broadcast: each command reaches every replica's queue. *)

val inject : t -> Dessim.Fault_injector.plan -> unit
(** Crash plans only. *)

val run : t -> until:float -> unit

type report = {
  agreement_ok : bool;  (** Committed sequences are prefix-compatible. *)
  live : bool;  (** Every expected command committed at every correct node. *)
  committed_counts : int array;
  null_slots : int;  (** Total null commits observed in the trace. *)
}

val check : t -> expected:int list -> correct:int list -> report

val message_stats : t -> int * int
(** [(sent, delivered)] network message counters — the communication
    cost the paper's related work (probabilistic quorums, committee
    sampling) trades against. *)
