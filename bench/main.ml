(* Reproduction harness: regenerates every table and quantitative claim
   of "Real Life Is Uncertain. Consensus Should Be Too!" (HotOS 2025),
   then micro-benchmarks the analysis kernels with Bechamel.

   One section per experiment in DESIGN.md's index (T1, T2, E3-E10).
   Absolute latencies are machine-dependent; the reproduced tables are
   deterministic. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let pct = Prob.Nines.percent_string

(* ------------------------------------------------- JSON perf trail *)

(* Rows for --json FILE: a machine-readable perf trajectory that future
   changes can diff against. *)
type json_row = {
  kernel : string;
  n : int;
  engine : string;
  domains : int;
  ns_per_run : float;
  scenario : string option;
      (* Repo-relative path of the committed scenario file that drove
         the kernel, when there is one — what makes the row
         reproducible from the artifact alone. *)
}

let json_rows : json_row list ref = ref []

let record_row ?scenario ~kernel ~n ~engine ~domains ~ns_per_run () =
  json_rows := { kernel; n; engine; domains; ns_per_run; scenario } :: !json_rows

(* ------------------------------------------------- scenario files *)

(* The P1-P3 workloads are committed scenarios, not hardcoded
   literals: the bench loads them through the same [Scenario.of_json]
   parser as the CLI and the wire, and the artifact rows carry the
   file path (validated by tools/validate_bench). *)
let scenario_dir () =
  match
    List.find_opt
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "bench/scenarios"; "../bench/scenarios"; "../../bench/scenarios" ]
  with
  | Some d -> d
  | None ->
      failwith
        "bench/scenarios not found: run the bench from the repository root"

let load_scenario name =
  let path = Filename.concat (scenario_dir ()) name in
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Probcons.Scenario.of_string contents with
  | Ok s -> ("bench/scenarios/" ^ name, s)
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

(* Schema "probcons-bench/2": an object with perf rows plus the metrics
   snapshot of the whole reproduction run, so CI can hold a line on both
   timings and telemetry (tools/validate_bench checks the shape). *)
let write_json path =
  let row { kernel; n; engine; domains; ns_per_run; scenario } =
    Obs.Json.Obj
      ([
         ("kernel", Obs.Json.String kernel);
         ("n", Obs.Json.Int n);
         ("engine", Obs.Json.String engine);
         ("domains", Obs.Json.Int domains);
         ("ns_per_run", Obs.Json.number (Float.round ns_per_run));
       ]
      @
      match scenario with
      | None -> []
      | Some path -> [ ("scenario", Obs.Json.String path) ])
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "probcons-bench/2");
        ("rows", Obs.Json.List (List.rev_map row !json_rows));
        ("metrics", Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "\nwrote %d benchmark rows to %s\n" (List.length !json_rows) path

(* ---------------------------------------------------------------- T1 *)

let table1 () =
  section "T1. Table 1: PBFT reliability, uniform p_u = 1%";
  let t =
    Probcons.Report.create
      ~header:[ "N"; "|Qeq|"; "|Qper|"; "|Qvc|"; "|Qvc_t|"; "Safe"; "Live"; "Safe&Live" ]
  in
  List.iter
    (fun n ->
      let params = Probcons.Pbft_model.default n in
      let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p:0.01 () in
      let r = Probcons.Analysis.run (Probcons.Pbft_model.protocol params) fleet in
      Probcons.Report.add_row t
        [
          string_of_int n;
          string_of_int params.Probcons.Pbft_model.q_eq;
          string_of_int params.Probcons.Pbft_model.q_per;
          string_of_int params.Probcons.Pbft_model.q_vc;
          string_of_int params.Probcons.Pbft_model.q_vc_t;
          pct r.Probcons.Analysis.p_safe;
          pct r.Probcons.Analysis.p_live;
          pct r.Probcons.Analysis.p_safe_live;
        ])
    [ 4; 5; 7; 8 ];
  print_string (Probcons.Report.render t);
  print_endline
    "paper: safe 99.94/99.9990/99.997/99.99993, live 99.94/99.90/99.997/99.995"

(* ---------------------------------------------------------------- T2 *)

let table2 () =
  section "T2. Table 2: Raft reliability for uniform node failure p_u";
  let t =
    Probcons.Report.create
      ~header:[ "N"; "|Qper|"; "|Qvc|"; "S&L p=1%"; "S&L p=2%"; "S&L p=4%"; "S&L p=8%" ]
  in
  List.iter
    (fun n ->
      let params = Probcons.Raft_model.default n in
      Probcons.Report.add_row t
        ([
           string_of_int n;
           string_of_int params.Probcons.Raft_model.q_per;
           string_of_int params.Probcons.Raft_model.q_vc;
         ]
        @ List.map
            (fun p -> pct (Probcons.Raft_model.safe_and_live_uniform ~n ~p))
            [ 0.01; 0.02; 0.04; 0.08 ]))
    [ 3; 5; 7; 9 ];
  print_string (Probcons.Report.render t);
  print_endline
    "paper row N=3: 99.97 / 99.88 / 99.53 / 98.18 (all rows match to printed digits)"

(* ---------------------------------------------------------------- E3 *)

let e3_equivalence () =
  section "E3. Cheaper fleets with equal nines (3 nodes @1% vs 9 @8%)";
  let target = Probcons.Equivalence.raft_reliability ~n:3 ~p:0.01 in
  Printf.printf "target: Raft n=3, p=1%% -> %s safe-and-live\n" (pct target);
  List.iter
    (fun p ->
      match
        Probcons.Equivalence.min_raft_cluster ~target ~p ~tolerance:5e-5 ()
      with
      | Some e ->
          Printf.printf "  p=%-4g -> n=%-2d (%s)\n" p e.Probcons.Equivalence.n
            (pct e.Probcons.Equivalence.p_safe_live)
      | None -> Printf.printf "  p=%-4g -> unattainable\n" p)
    [ 0.01; 0.02; 0.04; 0.08 ];
  (* The cost consequence, over the synthetic catalog. *)
  let premium = List.hd Costmodel.Machine.default_catalog in
  let baseline =
    Option.get (Costmodel.Optimizer.min_cluster premium ~target:0.9997 ())
  in
  (match Costmodel.Optimizer.optimize ~target:0.9997 () with
  | Some best ->
      Printf.printf
        "cost: baseline %d x %s at $%.2f/h; cheapest %d x %s at $%.2f/h -> %.1fx cheaper\n"
        baseline.Costmodel.Optimizer.n baseline.machine.Costmodel.Machine.name
        baseline.Costmodel.Optimizer.hourly_cost best.Costmodel.Optimizer.n
        best.machine.Costmodel.Machine.name best.Costmodel.Optimizer.hourly_cost
        (Costmodel.Optimizer.savings_vs ~baseline best)
  | None -> ());
  print_endline "paper: same 99.97% from 9 nodes at p=8%; ~3x cost reduction"

(* ---------------------------------------------------------------- E4 *)

let e4_vc_trigger () =
  section "E4. Random view-change trigger quorums (N=100, p=1%)";
  List.iter
    (fun k ->
      let p = Quorum.Probabilistic.contains_correct ~n:100 ~k ~p:0.01 in
      Printf.printf "  |Qvc_t| = %2d -> contains a correct node w.p. %s (%.1f nines)\n" k
        (pct p) (Prob.Nines.of_prob p))
    [ 2; 3; 5; 34 ];
  Printf.printf "  smallest k for ten nines: %d\n"
    (Quorum.Probabilistic.quorum_size_for_correct ~p:0.01 ~target:(1. -. 1e-10));
  print_endline "paper: 5 random nodes already give ten nines; f-threshold insists on 34"

(* ---------------------------------------------------------------- E5 *)

let e5_heterogeneous () =
  section "E5. Heterogeneous 7-node cluster (4 @8% + 3 @1%)";
  let raft = Probcons.Raft_model.protocol (Probcons.Raft_model.default 7) in
  let flaky = Faultmodel.Fleet.uniform ~n:7 ~p:0.08 () in
  let mixed = Faultmodel.Fleet.mixed [ (4, 0.08); (3, 0.01) ] in
  let base = Probcons.Analysis.run raft flaky in
  let upgraded = Probcons.Analysis.run raft mixed in
  Printf.printf "  all-flaky:              S&L %s   (paper: 99.88%%)\n"
    (pct base.Probcons.Analysis.p_safe_live);
  Printf.printf "  3 nodes upgraded to 1%%: S&L %s   (paper: ~99.98%%)\n"
    (pct upgraded.Probcons.Analysis.p_safe_live);
  let dur placement = Probcons.Durability.durability mixed placement ~size:4 in
  Printf.printf "  durability, worst-case placement:        %s\n"
    (pct (dur Probcons.Durability.Worst_case));
  Printf.printf "  durability, quorum must hold 1 reliable: %s  (paper: 99.994%%)\n"
    (pct (dur (Probcons.Durability.Constrained { reliable = [ 4; 5; 6 ]; min_reliable = 1 })));
  Printf.printf "  durability, best-case placement:         %s\n"
    (pct (dur Probcons.Durability.Best_case))

(* ---------------------------------------------------------------- E6 *)

let e6_tradeoff () =
  section "E6. Hidden safety/liveness trade-off (PBFT 4 vs 5 vs 7 nodes)";
  List.iter
    (fun p ->
      let c = Probcons.Tradeoff.pbft_node_count ~p ~n_base:4 ~n_alt:5 in
      Printf.printf "  p=%-6g safety x%-6.1f liveness /%.2f\n" p
        c.Probcons.Tradeoff.safety_improvement c.Probcons.Tradeoff.liveness_degradation)
    [ 0.01; 0.0125; 0.014 ];
  let pbft n =
    Probcons.Analysis.run
      (Probcons.Pbft_model.protocol (Probcons.Pbft_model.default n))
      (Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n ~p:0.01 ())
  in
  let five = pbft 5 and seven = pbft 7 in
  Printf.printf "  5-node safety %s vs 7-node safety %s -> 5-node %s safer, 40%% cheaper\n"
    (pct five.Probcons.Analysis.p_safe)
    (pct seven.Probcons.Analysis.p_safe)
    (if five.Probcons.Analysis.p_safe > seven.Probcons.Analysis.p_safe then "is"
     else "is NOT");
  print_endline "paper: 42-60x safety gain, 1.67x liveness cost; 5-node safer than 7-node"

(* ---------------------------------------------------------------- E7 *)

let e7_large_cluster () =
  section "E7. 100-node cluster, |Qper| = 10, p = 10%";
  let p_ten_faults = Prob.Distribution.binomial_tail_ge ~n:100 ~p:0.1 10 in
  Printf.printf "  P(at least 10 faults):                    %.2f   (paper: ~50%%)\n"
    p_ten_faults;
  let p_exact_overlap = 0.1 ** 10. in
  Printf.printf "  P(faults hit one specific 10-node quorum): %.1e (paper: 1 in 10 billion)\n"
    p_exact_overlap;
  (* And the E7 framing end-to-end: expected loss probability if the
     quorum was placed uniformly at random. *)
  let fleet = Faultmodel.Fleet.uniform ~n:100 ~p:0.1 () in
  Printf.printf "  random-quorum data-loss probability:       %.1e\n"
    (Probcons.Durability.data_loss_probability fleet Probcons.Durability.Random ~size:10);
  (* Conditional view: even GIVEN exactly 10 failures, covering the one
     quorum that matters is hypergeometrically unlikely. *)
  Printf.printf "  P(loss | exactly 10 failures):             %.1e\n"
    (Quorum.Formation.loss_given_failures ~n:100 ~k:10 ~j:10);
  (* The paper's dependence caveat, quantified: two quorums drawn from
     the same live set intersect more often than independence says. *)
  Printf.printf
    "  quorum-intersection miss, independent model vs shared-live-set: %.1e vs %.1e (%.1fx)\n"
    (1. -. Quorum.Formation.intersection_independent ~n:100 ~k1:10 ~k2:10)
    (1. -. Quorum.Formation.intersection_given_live ~n:100 ~p:0.1 ~k1:10 ~k2:10)
    (Quorum.Formation.dependence_gain ~n:100 ~p:0.1 ~k1:10 ~k2:10)

(* ---------------------------------------------------------------- E8 *)

let e8_simulation () =
  section "E8. Analytical liveness vs executed protocols (Monte Carlo)";
  (* Raft: sample failure configurations, execute, compare. *)
  let n = 5 and p = 0.10 in
  let fleet = Faultmodel.Fleet.uniform ~n ~p () in
  let analytical =
    Probcons.Analysis.run (Probcons.Raft_model.protocol (Probcons.Raft_model.default n)) fleet
  in
  let commands = List.init 5 (fun i -> 1000 + i) in
  let trials = 200 in
  let rng = Prob.Rng.create 99 in
  let crash_probs = Faultmodel.Fleet.crash_probs fleet in
  let byz_probs = Array.make n 0. in
  let live_count = ref 0 and safe_count = ref 0 in
  for trial = 1 to trials do
    let plan = Dessim.Fault_injector.sample_plan rng ~crash_probs ~byz_probs in
    let cluster = Raft_sim.Raft_cluster.create ~n ~seed:trial () in
    Raft_sim.Raft_cluster.inject cluster plan;
    Raft_sim.Raft_cluster.submit_workload cluster ~commands ~start:500. ~interval:100.;
    Raft_sim.Raft_cluster.run cluster ~until:20_000.;
    let failed = List.map fst plan in
    let correct = List.filter (fun i -> not (List.mem i failed)) (List.init n Fun.id) in
    let report = Raft_sim.Raft_checker.check cluster ~expected:commands ~correct in
    if report.Raft_sim.Raft_checker.live then incr live_count;
    if Raft_sim.Raft_checker.safe report then incr safe_count
  done;
  let low, high = Prob.Montecarlo.wilson_interval ~successes:!live_count ~trials in
  Printf.printf "  Raft n=%d p=%g: analytical P(live) = %s\n" n p
    (pct analytical.Probcons.Analysis.p_live);
  Printf.printf "  simulated: %d/%d live, 95%% CI [%.3f, %.3f]; prediction inside: %b\n"
    !live_count trials low high
    (analytical.Probcons.Analysis.p_live >= low
    && analytical.Probcons.Analysis.p_live <= high);
  Printf.printf "  all %d executed runs safe: %b\n" trials (!safe_count = trials);
  (* PBFT: Byzantine primary, safety and recovery. *)
  let pbft_ok = ref 0 in
  let pbft_trials = 10 in
  for seed = 1 to pbft_trials do
    let cluster = Pbft_sim.Pbft_cluster.create ~n:4 ~seed () in
    Pbft_sim.Pbft_cluster.inject cluster [ (0, Dessim.Fault_injector.Byzantine_from 0.) ];
    Pbft_sim.Pbft_cluster.submit_workload cluster ~commands ~start:200. ~interval:150.;
    Pbft_sim.Pbft_cluster.run cluster ~until:60_000.;
    let report =
      Pbft_sim.Pbft_checker.check cluster ~expected:commands ~correct:[ 1; 2; 3 ]
        ~honest:[ 1; 2; 3 ]
    in
    if report.Pbft_sim.Pbft_checker.agreement_ok && report.Pbft_sim.Pbft_checker.live then
      incr pbft_ok
  done;
  Printf.printf "  PBFT n=4 with Byzantine primary: safe and live in %d/%d runs\n" !pbft_ok
    pbft_trials

(* ---------------------------------------------------------------- E9 *)

let e9_probnative () =
  section "E9. Probability-native components: dynamic quorums and committees";
  let fleet9 = Faultmodel.Fleet.uniform ~n:9 ~p:0.02 () in
  print_endline "  flexible Raft sizings for 9 nodes at p=2%:";
  List.iter
    (fun (c : Probnative.Dynamic_quorum.raft_choice) ->
      Printf.printf "    qper=%d qvc=%d -> live %s\n"
        c.params.Probcons.Raft_model.q_per c.params.Probcons.Raft_model.q_vc
        (pct c.p_live))
    (Probnative.Dynamic_quorum.raft_sizings fleet9);
  let big = Faultmodel.Fleet.mixed [ (4, 0.005); (10, 0.02); (6, 0.08) ] in
  (match Probnative.Committee.reliability_ranked ~target:(Prob.Nines.to_prob 4.) big with
  | Some c ->
      Printf.printf "  ranked committee for 4 nines over 20 mixed nodes: %d members (%s)\n"
        (List.length c.Probnative.Committee.members)
        (pct c.Probnative.Committee.p_safe_live)
  | None -> ());
  let mixed = Faultmodel.Fleet.mixed [ (4, 0.08); (3, 0.01) ] in
  Printf.printf "  leader fault probability: oblivious %.3f vs reputation %.3f\n"
    (Probnative.Leader_reputation.leader_fault_probability mixed ~strategy:`Uniform)
    (Probnative.Leader_reputation.leader_fault_probability mixed ~strategy:`Reputation)

(* ---------------------------------------------------------------- E10 *)

let e10_markov () =
  section "E10. Storage-style Markov metrics for consensus clusters";
  let t =
    Probcons.Report.create
      ~header:[ "N"; "quorum"; "AFR"; "MTTF (h)"; "MTTDL (h)"; "availability" ]
  in
  List.iter
    (fun (n, afr) ->
      let quorum = (n / 2) + 1 in
      let spec = Markov.Repair_model.of_afr ~n ~quorum ~afr ~mttr_hours:24. in
      Probcons.Report.add_row t
        [
          string_of_int n;
          string_of_int quorum;
          Printf.sprintf "%g%%" (afr *. 100.);
          Printf.sprintf "%.3g" (Markov.Repair_model.mttf spec);
          Printf.sprintf "%.3g" (Markov.Repair_model.mttdl spec);
          pct (Markov.Repair_model.availability spec);
        ])
    [ (3, 0.04); (5, 0.04); (3, 0.08); (5, 0.08); (9, 0.08) ];
  print_string (Probcons.Report.render t)

(* ---------------------------------------------------------------- E11 *)

let e11_benor () =
  section "E11. Beyond quorums: Ben-Or randomized consensus";
  (* Decision-round distribution for split inputs, across seeds; local
     coins vs a Rabia-style shared coin. *)
  List.iter
    (fun n ->
      let initial = List.init n (fun i -> i mod 2) in
      let trials = 40 in
      let sweep ?common_coin () =
        let total_rounds = ref 0 and max_rounds = ref 0 and ok = ref 0 in
        for seed = 1 to trials do
          let cluster =
            Benor_sim.Benor_cluster.create ~seed ?common_coin ~initial_values:initial ()
          in
          Benor_sim.Benor_cluster.run cluster ~until:1e8;
          let report =
            Benor_sim.Benor_cluster.check cluster ~correct:(List.init n Fun.id)
          in
          if report.Benor_sim.Benor_cluster.agreement_ok
             && report.Benor_sim.Benor_cluster.all_correct_decided
          then incr ok;
          total_rounds := !total_rounds + report.Benor_sim.Benor_cluster.max_round;
          max_rounds := max !max_rounds report.Benor_sim.Benor_cluster.max_round
        done;
        (!ok, float_of_int !total_rounds /. float_of_int trials, !max_rounds)
      in
      let ok_l, mean_l, max_l = sweep () in
      let ok_c, mean_c, max_c = sweep ~common_coin:42 () in
      Printf.printf
        "  n=%-2d local coin: %d/%d ok, mean %.1f rounds (max %d); shared coin: %d/%d ok, \
         mean %.1f (max %d)\n"
        n ok_l trials mean_l max_l ok_c trials mean_c max_c)
    [ 3; 5; 7; 9 ];
  (* Analytical: quorum-free safety is immune to crash counts. *)
  let fleet = Faultmodel.Fleet.uniform ~n:5 ~p:0.3 () in
  let benor =
    Probcons.Analysis.run (Probcons.Benor_model.protocol (Probcons.Benor_model.default 5))
      fleet
  in
  let raft =
    Probcons.Analysis.run (Probcons.Raft_model.protocol (Probcons.Raft_model.default 5))
      fleet
  in
  Printf.printf
    "  crash p=30%%: Ben-Or safe %s / live %s; Raft safe %s / live %s\n"
    (pct benor.Probcons.Analysis.p_safe) (pct benor.Probcons.Analysis.p_live)
    (pct raft.Probcons.Analysis.p_safe) (pct raft.Probcons.Analysis.p_live);
  (* Rabia-style leaderless SMR on top of the same idea: full log
     replication with no leader and no intersecting quorums. *)
  let ok = ref 0 and trials = 20 in
  for seed = 1 to trials do
    let cluster = Rabia_sim.Rabia_cluster.create ~n:5 ~seed () in
    let cmds = List.init 10 (fun i -> 100 + i) in
    Rabia_sim.Rabia_cluster.inject cluster
      (Dessim.Fault_injector.of_failed_nodes ~at:300. [ seed mod 5; (seed + 2) mod 5 ]);
    Rabia_sim.Rabia_cluster.submit_workload cluster ~commands:cmds ~start:100.
      ~interval:80.;
    Rabia_sim.Rabia_cluster.run cluster ~until:60_000.;
    let correct =
      List.filter (fun i -> i <> seed mod 5 && i <> (seed + 2) mod 5) (List.init 5 Fun.id)
    in
    let r = Rabia_sim.Rabia_cluster.check cluster ~expected:cmds ~correct in
    if r.Rabia_sim.Rabia_cluster.agreement_ok && r.Rabia_sim.Rabia_cluster.live then
      incr ok
  done;
  Printf.printf
    "  Rabia-style SMR, 2 of 5 crashed: %d/%d runs replicate the full log leaderlessly\n"
    !ok trials;
  (* Message accounting: Rabia pays several all-to-all phases per slot
     but nothing when idle; Raft pays one leader round-trip per command
     plus continuous heartbeats. At this (low) load they come out
     comparable. *)
  let raft_cluster = Raft_sim.Raft_cluster.create ~n:5 ~seed:3 () in
  let cmds = List.init 20 (fun i -> 100 + i) in
  Raft_sim.Raft_cluster.submit_workload raft_cluster ~commands:cmds ~start:1000.
    ~interval:100.;
  Raft_sim.Raft_cluster.run raft_cluster ~until:10_000.;
  let raft_sent, _ = Raft_sim.Raft_cluster.message_stats raft_cluster in
  let rabia_cluster = Rabia_sim.Rabia_cluster.create ~n:5 ~seed:3 () in
  Rabia_sim.Rabia_cluster.submit_workload rabia_cluster ~commands:cmds ~start:1000.
    ~interval:100.;
  Rabia_sim.Rabia_cluster.run rabia_cluster ~until:10_000.;
  let rabia_sent, _ = Rabia_sim.Rabia_cluster.message_stats rabia_cluster in
  Printf.printf
    "  messages for 20 commands, n=5: Raft %d (incl. heartbeats), Rabia %d (idle-silent)\n"
    raft_sent rabia_sent

(* ---------------------------------------------------------------- E12 *)

let e12_mixed_faults () =
  section "E12. Mixed crash/Byzantine faults: Raft vs PBFT vs Upright";
  (* The paper's §2(4) numbers: ~4% AFR crashes, Byzantine corruption
     ~0.25% of faults. *)
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:0.0025 ~n:7 ~p:0.04 () in
  let t =
    Probcons.Report.create ~header:[ "protocol"; "safe"; "live"; "safe&live" ]
  in
  List.iter
    (fun (name, r) ->
      Probcons.Report.add_row t
        [
          name;
          pct r.Probcons.Analysis.p_safe;
          pct r.Probcons.Analysis.p_live;
          pct r.Probcons.Analysis.p_safe_live;
        ])
    (Probcons.Upright_model.compare_with_classics fleet);
  print_string (Probcons.Report.render t);
  print_endline
    "  (Raft gambles on zero Byzantine faults; PBFT pays for all-Byzantine;\n\
    \   the dual-threshold model prices the two classes separately)"

(* ---------------------------------------------------------------- E13 *)

let e13_bounds () =
  section "E13. Exact tails vs Chernoff/Hoeffding bounds";
  let t =
    Probcons.Report.create
      ~header:[ "n"; "p"; "k"; "exact"; "chernoff-KL"; "hoeffding"; "chern./exact" ]
  in
  List.iter
    (fun (n, p, k) ->
      let c = Prob.Bounds.compare_tail ~n ~p ~k in
      Probcons.Report.add_row t
        [
          string_of_int n;
          Printf.sprintf "%g" p;
          string_of_int k;
          Printf.sprintf "%.2e" c.Prob.Bounds.exact;
          Printf.sprintf "%.2e" c.Prob.Bounds.chernoff;
          Printf.sprintf "%.2e" c.Prob.Bounds.hoeffding;
          Printf.sprintf "%.1fx" c.Prob.Bounds.chernoff_ratio;
        ])
    [ (3, 0.01, 2); (5, 0.01, 3); (9, 0.08, 5); (100, 0.1, 20); (100, 0.01, 5) ];
  print_string (Probcons.Report.render t);
  print_endline
    "  (exponential bounds overstate the failure probability at cluster scale —\n\
    \   the regime where the paper computes tails exactly)"

(* ---------------------------------------------------------------- E14 *)

let e14_end_to_end () =
  section "E14. End-to-end SLOs: availability and durability nines";
  let spec afr = Markov.Repair_model.of_afr ~n:5 ~quorum:3 ~afr ~mttr_hours:24. in
  List.iter
    (fun (afr, failover_hours) ->
      let t =
        Probcons.End_to_end.evaluate ~spec:(spec afr) ~failover_hours
          ~mission_hours:87_660.
      in
      Format.printf "  AFR %g%%, failover %.2gh: %a@." (afr *. 100.) failover_hours
        Probcons.End_to_end.pp t)
    [ (0.04, 0.01); (0.04, 1.0); (0.08, 0.01) ];
  (match
     Probcons.End_to_end.required_failover_hours ~spec:(spec 0.04)
       ~availability_nines:5.
   with
  | Some budget ->
      Printf.printf "  failover budget for five nines at AFR 4%%: %.1f hours/incident\n"
        budget
  | None -> print_endline "  five nines unattainable");
  print_endline
    "  (a live protocol with slow recovery misses the availability SLO - paper s4)"

(* ---------------------------------------------------------------- E15 *)

let e15_planner () =
  section "E15. Probability-native deployment planner, plan -> execution";
  let fleet = Faultmodel.Fleet.mixed [ (3, 0.001); (8, 0.02); (5, 0.10) ] in
  Printf.printf "  fleet: 3 nodes at p=0.1%%, 8 at 2%%, 5 at 10%%\n";
  List.iter
    (fun nines ->
      let target = Prob.Nines.to_prob nines in
      match Probnative.Planner.plan ~target fleet with
      | Some plan ->
          Format.printf "  target %.0f nines: %a@." nines Probnative.Planner.pp_plan plan
      | None -> Printf.printf "  target %.0f nines: unattainable\n" nines)
    [ 3.; 4.; 5.; 6. ];
  (match Probnative.Planner.plan ~target:(Prob.Nines.to_prob 4.) fleet with
  | Some plan ->
      let ok = ref 0 and preferred = ref 0 in
      let runs = 20 in
      for seed = 1 to runs do
        let e = Probnative.Planner.execute ~seed fleet plan in
        if e.Probnative.Planner.safe && e.Probnative.Planner.live then incr ok;
        if e.Probnative.Planner.leader_was_most_reliable then incr preferred
      done;
      Printf.printf
        "  executing the 4-nines plan: %d/%d runs safe+live; preferred leader won %d/%d\n"
        !ok runs !preferred runs
  | None -> ())

(* ---------------------------------------------------------------- E16 *)

let e16_reconfig () =
  section "E16. Preemptive reconfiguration, executed (managed vs unmanaged)";
  (* Three wearing-out members (Weibull wear-out inside the mission),
     four fresh spares; node crash times are sampled from the same
     curves in both arms. One simulated ms = one mission hour. *)
  let aging = Faultmodel.Fault_curve.Weibull { shape = 4.; scale = 15_000. } in
  let fresh = Faultmodel.Fault_curve.Weibull { shape = 4.; scale = 80_000. } in
  let universe =
    Faultmodel.Fleet.of_nodes
      (List.init 7 (fun id -> Faultmodel.Node.make ~id (if id < 3 then aging else fresh)))
  in
  let runs = 10 in
  let managed = ref 0 and unmanaged = ref 0 and swaps = ref 0 in
  for seed = 1 to runs do
    let m =
      Probnative.Reconfig_executor.run ~seed ~universe ~initial_members:[ 0; 1; 2 ]
        ~target_live:0.999 ~review_interval:1000. ~horizon:30_000. ~commands:20 ()
    in
    let u =
      Probnative.Reconfig_executor.run_unmanaged ~seed ~universe
        ~initial_members:[ 0; 1; 2 ] ~horizon:30_000. ~commands:20 ()
    in
    if m.Probnative.Reconfig_executor.managed_live then incr managed;
    if u.Probnative.Reconfig_executor.managed_live then incr unmanaged;
    swaps := !swaps + m.Probnative.Reconfig_executor.swaps_completed
  done;
  Printf.printf
    "  managed (predictive swaps): %d/%d missions fully live (%.1f swaps/mission)\n"
    !managed runs
    (float_of_int !swaps /. float_of_int runs);
  Printf.printf "  unmanaged (f-threshold fatalism): %d/%d missions fully live\n"
    !unmanaged runs;
  print_endline
    "  (fault curves predict wear-out; reconfiguring BEFORE failure preserves the\n\
    \   quorum - the paper's preemptive-reconfiguration direction, executed)"

(* ---------------------------------------------------------------- E17 *)

let e17_failure_detector () =
  section "E17. Phi-accrual failure detection: threshold vs latency/false-positives";
  (* A monitored node heartbeats every 100ms through a jittery network
     (5ms base + exp(10ms) tail); it crashes at t=60s. For each phi
     threshold: false positives while healthy, detection delay after
     the crash. *)
  let run_one threshold =
    let engine = Dessim.Engine.create ~seed:31 () in
    let net =
      Dessim.Network.create ~engine ~n:2
        ~latency:(Dessim.Network.Lognormal_ish { base = 5.; mean_extra = 10. })
        ()
    in
    let detector = Probnative.Failure_detector.create () in
    let crash_time = 60_000. in
    let false_positives = ref 0 and detected_at = ref None in
    Dessim.Network.set_handler net 1 (fun ~src:_ () ->
        Probnative.Failure_detector.heartbeat detector ~now:(Dessim.Engine.now engine));
    (* Heartbeats until the crash. *)
    let t = ref 100. in
    while !t < crash_time do
      let time = !t in
      ignore
        (Dessim.Engine.schedule_at engine ~time (fun () ->
             Dessim.Network.send net ~src:0 ~dst:1 ()));
      t := !t +. 100.
    done;
    (* Poll the detector every 20ms through t=90s. *)
    let p = ref 20. in
    while !p < 90_000. do
      let time = !p in
      ignore
        (Dessim.Engine.schedule_at engine ~time (fun () ->
             let suspect =
               Probnative.Failure_detector.suspect ~threshold detector ~now:time
             in
             if suspect && time < crash_time then incr false_positives;
             if suspect && time >= crash_time && !detected_at = None then
               detected_at := Some (time -. crash_time)));
      p := !p +. 20.
    done;
    Dessim.Engine.run engine;
    (!false_positives, !detected_at)
  in
  List.iter
    (fun threshold ->
      let false_positives, detected = run_one threshold in
      Printf.printf "  phi > %-4g false positives: %-4d detection delay: %s\n" threshold
        false_positives
        (match detected with
        | Some d -> Printf.sprintf "%.0f ms" d
        | None -> "not detected"))
    [ 0.5; 1.; 2.; 4.; 8. ];
  print_endline
    "  (the threshold IS the guarantee: phi > k admits ~10^-k false-positive odds\n\
    \   per check, and detection delay grows with the required confidence)"

(* ---------------------------------------------------------------- E18 *)

let e18_stake () =
  section "E18. Stake-weighted consensus: concentration vs reliability";
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:9 ~p:0.03 () in
  let t =
    Probcons.Report.create
      ~header:[ "stake distribution"; "nakamoto"; "safe"; "live" ]
  in
  List.iter
    (fun (label, stakes) ->
      let params = Probcons.Stake_model.make stakes in
      let r = Probcons.Analysis.run (Probcons.Stake_model.protocol params) fleet in
      Probcons.Report.add_row t
        [
          label;
          string_of_int (Probcons.Stake_model.nakamoto_coefficient params);
          pct r.Probcons.Analysis.p_safe;
          pct r.Probcons.Analysis.p_live;
        ])
    [
      ("flat (1 each)", Array.make 9 1.);
      ("mild skew (3,2,2,1...)", [| 3.; 2.; 2.; 1.; 1.; 1.; 1.; 1.; 1. |]);
      ("whale (8,1,1,...)", Array.append [| 8. |] (Array.make 8 1.));
    ];
  print_string (Probcons.Report.render t);
  print_endline
    "  (same machines, same fault curves: stake concentration alone destroys the\n\
    \   guarantee - the probabilistic analysis prices decentralization directly)"

(* ---------------------------------------------------------------- E19 *)

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let e19_tail_latency () =
  section "E19. Reputation-based leader selection vs tail latency";
  (* 4 flaky nodes (periodic crash-restarts) + 1 stable node. With
     uniform timeouts the leadership keeps landing on flaky nodes and
     dying with them; reputation multipliers keep the stable node in
     charge. *)
  let fleet = Faultmodel.Fleet.mixed [ (4, 0.08); (1, 0.002) ] in
  let horizon = 60_000. in
  let run ~multipliers ~seed =
    let cluster =
      Raft_sim.Raft_cluster.create ~n:5 ~seed ?timeout_multipliers:multipliers ()
    in
    (* Each flaky node flaps every 6s, staggered, for 1.2s. *)
    let plan =
      List.concat_map
        (fun node ->
          List.filteri (fun i _ -> i < 9)
            (List.init 10 (fun k ->
                 let at = 3000. +. (float_of_int k *. 6000.) +. (float_of_int node *. 700.) in
                 (node, Dessim.Fault_injector.Crash_restart { at; back_at = at +. 1200. }))))
        [ 0; 1; 2; 3 ]
    in
    Raft_sim.Raft_cluster.inject cluster plan;
    let commands = List.init 100 (fun i -> 10_000 + i) in
    let submissions =
      List.mapi (fun i cmd -> (cmd, 2000. +. (float_of_int i *. 500.))) commands
    in
    Raft_sim.Raft_cluster.submit_workload cluster ~commands ~start:2000. ~interval:500.;
    Raft_sim.Raft_cluster.run cluster ~until:horizon;
    Raft_sim.Raft_checker.command_latencies cluster ~submissions ~horizon
  in
  let collect ~multipliers =
    let all = ref [] in
    for seed = 1 to 5 do
      all := run ~multipliers ~seed @ !all
    done;
    let a = Array.of_list !all in
    Array.sort compare a;
    a
  in
  let uniform = collect ~multipliers:None in
  let reputation =
    collect
      ~multipliers:(Some (Probnative.Leader_reputation.timeout_multipliers ~spread:4. fleet))
  in
  let report label a =
    Printf.printf "  %-22s p50 %6.0f ms   p99 %6.0f ms   max %6.0f ms\n" label
      (percentile a 0.50) (percentile a 0.99)
      a.(Array.length a - 1)
  in
  report "oblivious election:" uniform;
  report "reputation-based:" reputation;
  print_endline
    "  (the stable node keeps the lease; client latency stops paying for the\n\
    \   flaky nodes' elections - the paper's tail-latency argument for\n\
    \   reliability-aware leader choice)"

(* ---------------------------------------------------------------- E20 *)

let e20_engine_ablation () =
  section "E20. Ablation: analysis engine choice (count DP / enumeration / MC)";
  (* Identical instance through all three engines: same numbers, very
     different costs; the Monte-Carlo path is the only one that extends
     to correlated faults. *)
  let fleet = Faultmodel.Fleet.mixed [ (8, 0.08); (7, 0.01) ] in
  let proto = Probcons.Raft_model.protocol (Probcons.Raft_model.default 15) in
  let timed strategy =
    let started = Unix.gettimeofday () in
    let r = Probcons.Analysis.run ~strategy proto fleet in
    (r, (Unix.gettimeofday () -. started) *. 1e3)
  in
  let dp, dp_ms = timed Probcons.Analysis.Count_dp in
  let enum, enum_ms = timed Probcons.Analysis.Enumeration in
  let mc, mc_ms = timed (Probcons.Analysis.Monte_carlo 200_000) in
  Printf.printf "  count DP:     S&L %-12s %8.2f ms\n" (pct dp.Probcons.Analysis.p_safe_live) dp_ms;
  Printf.printf "  enumeration:  S&L %-12s %8.2f ms  (2^15 configurations)\n"
    (pct enum.Probcons.Analysis.p_safe_live) enum_ms;
  (match mc.Probcons.Analysis.ci_safe_live with
  | Some (low, high) ->
      Printf.printf "  monte carlo:  S&L %-12s %8.2f ms  (CI [%.4f, %.4f])\n"
        (pct mc.Probcons.Analysis.p_safe_live) mc_ms low high
  | None -> ());
  Printf.printf "  DP = enumeration to %.1e; the DP is %.0fx faster at n=15\n"
    (Float.abs (dp.Probcons.Analysis.p_safe_live -. enum.Probcons.Analysis.p_safe_live))
    (enum_ms /. Float.max dp_ms 1e-3);
  (* And the timeline view enabled by fault curves. *)
  let aging =
    Faultmodel.Fleet.of_nodes
      (List.init 5 (fun id ->
           Faultmodel.Node.make ~id
             (Faultmodel.Fault_curve.Bathtub
                {
                  infant = Weibull { shape = 0.5; scale = 200_000. };
                  useful = Exponential { rate = 1.2e-6 };
                  wearout =
                    Shifted
                      { offset = 30_000.; curve = Weibull { shape = 3.; scale = 30_000. } };
                  t1 = 2_000.;
                  t2 = 30_000.;
                })))
  in
  print_string
    (Probcons.Report.render
       (Probcons.Sweep.timeline aging ~times:[ 1_000.; 8_766.; 26_298.; 43_830.; 52_596. ]))

(* ---------------------------------------------------------------- P1 *)

let p1_parallel_engine ~quick =
  section "P1. Parallel analysis engine: domains sweep, bit-stable results";
  (* Identity-dependent predicate (stake weights) over an all-Byzantine
     fleet: the 2^N binary enumeration hot path. --quick loads the
     smaller committed scenario so the smoke run stays fast. The full
     scenario exceeds the registry's interactive stake bound on
     purpose — the bench drives the engine directly, with the fleet and
     stakes still coming from the scenario file. *)
  let scenario_path, scen =
    load_scenario
      (if quick then "p1_enumeration_quick.json" else "p1_enumeration.json")
  in
  let n = Probcons.Scenario.size scen in
  let stakes =
    Array.of_list (Option.get (Probcons.Scenario.stakes scen))
  in
  let proto = Probcons.Stake_model.protocol (Probcons.Stake_model.make stakes) in
  let fleet =
    Probcons.Scenario.fleet
      ~byz_fraction:
        (Option.value (Probcons.Scenario.byz_fraction scen) ~default:1.0)
      scen
  in
  let timed ?strategy domains =
    let started = Unix.gettimeofday () in
    let r = Probcons.Analysis.run ?strategy ~domains proto fleet in
    (r, (Unix.gettimeofday () -. started) *. 1e9)
  in
  Printf.printf "  machine: %d core(s) recommended by the runtime; pool default %d lane(s)\n"
    (Domain.recommended_domain_count ())
    (Parallel.Pool.default ());
  let enum = Some Probcons.Analysis.Enumeration in
  let baseline, base_ns = timed ?strategy:enum 1 in
  Printf.printf "  enumeration 2^%d, domains=1: %8.0f ms  [%s]\n" n (base_ns /. 1e6)
    baseline.Probcons.Analysis.engine;
  record_row ~scenario:scenario_path ~kernel:"analysis/enumeration-2^N" ~n
    ~engine:baseline.Probcons.Analysis.engine ~domains:1 ~ns_per_run:base_ns ();
  List.iter
    (fun domains ->
      let r, ns = timed ?strategy:enum domains in
      let identical =
        Float.equal r.Probcons.Analysis.p_safe baseline.Probcons.Analysis.p_safe
        && Float.equal r.Probcons.Analysis.p_live baseline.Probcons.Analysis.p_live
        && Float.equal r.Probcons.Analysis.p_safe_live
             baseline.Probcons.Analysis.p_safe_live
      in
      Printf.printf
        "  enumeration 2^%d, domains=%d: %8.0f ms  %5.2fx  bit-identical: %b  [%s]\n" n
        domains (ns /. 1e6) (base_ns /. ns) identical r.Probcons.Analysis.engine;
      record_row ~scenario:scenario_path ~kernel:"analysis/enumeration-2^N" ~n
        ~engine:r.Probcons.Analysis.engine ~domains ~ns_per_run:ns ())
    [ 2; 4; 8 ];
  (* Monte Carlo: per-chunk streams from (seed, chunk) keep the estimate
     seed-reproducible whatever the lane count. *)
  let trials = if quick then 100_000 else 1_000_000 in
  let mc = Some (Probcons.Analysis.Monte_carlo trials) in
  let mc1, mc1_ns = timed ?strategy:mc 1 in
  let mc8, mc8_ns = timed ?strategy:mc 8 in
  Printf.printf
    "  monte-carlo %d trials, domains=1: %6.0f ms; domains=8: %6.0f ms  %5.2fx  identical: %b\n"
    trials (mc1_ns /. 1e6) (mc8_ns /. 1e6) (mc1_ns /. mc8_ns)
    (Float.equal mc1.Probcons.Analysis.p_safe_live mc8.Probcons.Analysis.p_safe_live);
  record_row ~scenario:scenario_path ~kernel:"analysis/monte-carlo" ~n
    ~engine:mc1.Probcons.Analysis.engine ~domains:1 ~ns_per_run:mc1_ns ();
  record_row ~scenario:scenario_path ~kernel:"analysis/monte-carlo" ~n
    ~engine:mc8.Probcons.Analysis.engine ~domains:8 ~ns_per_run:mc8_ns ();
  (* Sweep grids fan cells out over the same pool. *)
  let sweep_timed domains =
    let started = Unix.gettimeofday () in
    ignore
      (Probcons.Sweep.pbft_grid ~domains ~ns:[ 4; 5; 7; 8; 10 ]
         ~ps:[ 0.005; 0.01; 0.02; 0.04; 0.08 ] ()
        : Probcons.Report.t);
    (Unix.gettimeofday () -. started) *. 1e9
  in
  let sweep1 = sweep_timed 1 and sweep8 = sweep_timed 8 in
  Printf.printf "  pbft sweep 5x5 grid, domains=1: %6.1f ms; domains=8: %6.1f ms  %5.2fx\n"
    (sweep1 /. 1e6) (sweep8 /. 1e6) (sweep1 /. sweep8);
  record_row ~kernel:"sweep/pbft-grid-5x5" ~n:10 ~engine:"count-dp-cells" ~domains:1
    ~ns_per_run:sweep1 ();
  record_row ~kernel:"sweep/pbft-grid-5x5" ~n:10 ~engine:"count-dp-cells" ~domains:8
    ~ns_per_run:sweep8 ();
  print_endline
    "  (chunk boundaries and reduction order are fixed by the instance, so every\n\
    \   domain count produces bit-identical exact results; wall-clock gains track\n\
    \   the machine's core count - a single-core host shows parity, not speedup)"

(* ---------------------------------------------------------------- P2 *)

let p2_obs_overhead ~quick =
  section "P2. Observability overhead: instrumented hot loops, sink off vs on";
  (* The raft simulation exercises every instrumented layer (engine
     events, network sends, protocol counters). With the registry
     disabled each record site costs one atomic load and a branch; the
     off/on rows land in the --json artifact so CI can watch the gap. *)
  let scenario_path, scen = load_scenario "p2_sim.json" in
  let sim_n = Probcons.Scenario.size scen in
  let sim_seed = Option.value (Probcons.Scenario.seed scen) ~default:7 in
  let run_sim () =
    let cluster = Raft_sim.Raft_cluster.create ~n:sim_n ~seed:sim_seed () in
    Raft_sim.Raft_cluster.submit_workload cluster
      ~commands:(List.init 20 (fun i -> 100 + i))
      ~start:500. ~interval:100.;
    Raft_sim.Raft_cluster.run cluster ~until:60_000.
  in
  let time_reps reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      run_sim ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  in
  let reps = if quick then 25 else 200 in
  let prev = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  ignore (time_reps 5);
  let off_ns = time_reps reps in
  Obs.Metrics.set_enabled true;
  ignore (time_reps 5);
  let on_ns = time_reps reps in
  Obs.Metrics.set_enabled prev;
  Printf.printf "  raft n=%d sim, metrics off: %8.0f us/run\n" sim_n (off_ns /. 1e3);
  Printf.printf "  raft n=%d sim, metrics on:  %8.0f us/run  (%+.1f%%)\n" sim_n
    (on_ns /. 1e3)
    ((on_ns -. off_ns) /. off_ns *. 100.);
  record_row ~scenario:scenario_path ~kernel:"obs/sim-raft-metrics-off" ~n:sim_n
    ~engine:"dessim" ~domains:1 ~ns_per_run:off_ns ();
  record_row ~scenario:scenario_path ~kernel:"obs/sim-raft-metrics-on" ~n:sim_n
    ~engine:"dessim" ~domains:1 ~ns_per_run:on_ns ()

(* ---------------------------------------------------------------- P3 *)

let p3_service ~quick =
  section "P3. Query service: wire parsing, reply cache, socket round-trips";
  (* Hot-path costs of the serving layer, end to end: parse a request
     line, derive its cache key, hit the LRU, and finally a full
     client->server->client round-trip over a Unix socket (cached, so
     the protocol overhead dominates, not the analysis). *)
  let scenario_path, scen = load_scenario "p3_service.json" in
  let svc_n = Probcons.Scenario.size scen in
  let query = Service.Wire.Analyze { scenario = scen } in
  let line = Service.Wire.encode_request { Service.Wire.id = 1; query } in
  let time_ns reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  in
  let reps = if quick then 20_000 else 200_000 in
  let parse_ns = time_ns reps (fun () -> ignore (Service.Wire.parse_request line)) in
  Printf.printf "  wire parse+validate:      %8.0f ns/req\n" parse_ns;
  record_row ~scenario:scenario_path ~kernel:"service/wire-parse" ~n:svc_n
    ~engine:"json" ~domains:1 ~ns_per_run:parse_ns ();
  let key_ns = time_ns reps (fun () -> ignore (Service.Wire.canonical_key query)) in
  Printf.printf "  canonical cache key:      %8.0f ns/req\n" key_ns;
  record_row ~scenario:scenario_path ~kernel:"service/canonical-key" ~n:svc_n
    ~engine:"json" ~domains:1 ~ns_per_run:key_ns ();
  let cache = Service.Cache.create ~capacity:1024 () in
  let key = Service.Wire.canonical_key query in
  Service.Cache.add cache key "{\"payload\": true}";
  let hit_ns = time_ns reps (fun () -> ignore (Service.Cache.find cache key)) in
  Printf.printf "  LRU cache hit:            %8.0f ns/req\n" hit_ns;
  record_row ~kernel:"service/cache-hit" ~n:1 ~engine:"lru" ~domains:1
    ~ns_per_run:hit_ns ();
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "probcons-bench-%d.sock" (Unix.getpid ()))
  in
  let server =
    Service.Server.start
      { Service.Server.default_config with
        Service.Server.socket_path = Some socket; workers = 2 }
  in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop server)
    (fun () ->
      let c = Service.Client.connect ~retry_for:5. (Service.Client.Unix_path socket) in
      Fun.protect
        ~finally:(fun () -> Service.Client.close c)
        (fun () ->
          ignore (Service.Client.call_raw c line);
          let rt_reps = if quick then 2_000 else 20_000 in
          let rt_ns = time_ns rt_reps (fun () -> ignore (Service.Client.call_raw c line)) in
          Printf.printf "  unix-socket round-trip:   %8.0f ns/req (%.0f req/s, cached)\n"
            rt_ns (1e9 /. rt_ns);
          record_row ~scenario:scenario_path ~kernel:"service/roundtrip-unix"
            ~n:svc_n ~engine:"unix-socket" ~domains:2 ~ns_per_run:rt_ns ()))

(* ------------------------------------------------- Bechamel kernels *)

let kernel_tests () =
  let open Bechamel in
  let raft9 = Probcons.Raft_model.protocol (Probcons.Raft_model.default 9) in
  let fleet9 = Faultmodel.Fleet.uniform ~n:9 ~p:0.02 () in
  let pbft7 = Probcons.Pbft_model.protocol (Probcons.Pbft_model.default 7) in
  let byz7 = Faultmodel.Fleet.uniform ~byz_fraction:1.0 ~n:7 ~p:0.01 () in
  let fleet15 = Faultmodel.Fleet.mixed [ (8, 0.08); (7, 0.01) ] in
  let raft15 = Probcons.Raft_model.protocol (Probcons.Raft_model.default 15) in
  let probs100 = Array.make 100 0.1 in
  [
    Test.make ~name:"analysis/raft-n9-count-dp"
      (Staged.stage (fun () ->
           Probcons.Analysis.run ~strategy:Probcons.Analysis.Count_dp raft9 fleet9));
    Test.make ~name:"analysis/pbft-n7-count-dp"
      (Staged.stage (fun () ->
           Probcons.Analysis.run ~strategy:Probcons.Analysis.Count_dp pbft7 byz7));
    Test.make ~name:"analysis/raft-n15-enumeration"
      (Staged.stage (fun () ->
           Probcons.Analysis.run ~strategy:Probcons.Analysis.Enumeration raft15 fleet15));
    Test.make ~name:"prob/poisson-binomial-n100"
      (Staged.stage (fun () -> Prob.Poisson_binomial.pmf probs100));
    Test.make ~name:"markov/mttdl-n9"
      (Staged.stage (fun () ->
           Markov.Repair_model.mttdl
             { Markov.Repair_model.n = 9; quorum = 5; lambda = 1e-5; mu = 0.04 }));
    Test.make ~name:"sim/raft-n5-healthy-run"
      (Staged.stage (fun () ->
           let cluster = Raft_sim.Raft_cluster.create ~n:5 ~seed:1 () in
           Raft_sim.Raft_cluster.submit_workload cluster ~commands:[ 1; 2; 3 ]
             ~start:500. ~interval:100.;
           Raft_sim.Raft_cluster.run cluster ~until:5000.));
    Test.make ~name:"sim/pbft-n4-healthy-run"
      (Staged.stage (fun () ->
           let cluster = Pbft_sim.Pbft_cluster.create ~n:4 ~seed:1 () in
           Pbft_sim.Pbft_cluster.submit_workload cluster ~commands:[ 1; 2; 3 ]
             ~start:200. ~interval:150.;
           Pbft_sim.Pbft_cluster.run cluster ~until:5000.));
    Test.make ~name:"probnative/committee-search"
      (Staged.stage (fun () ->
           Probnative.Committee.reliability_ranked ~target:0.9999
             (Faultmodel.Fleet.mixed [ (4, 0.005); (10, 0.02); (6, 0.08) ])));
    Test.make ~name:"sim/benor-n5-split-run"
      (Staged.stage (fun () ->
           let cluster =
             Benor_sim.Benor_cluster.create ~seed:1 ~initial_values:[ 0; 1; 0; 1; 1 ] ()
           in
           Benor_sim.Benor_cluster.run cluster ~until:1e7));
    Test.make ~name:"sim/rabia-n5-3cmd-run"
      (Staged.stage (fun () ->
           let cluster = Rabia_sim.Rabia_cluster.create ~n:5 ~seed:1 () in
           Rabia_sim.Rabia_cluster.submit_workload cluster ~commands:[ 1; 2; 3 ]
             ~start:100. ~interval:50.;
           Rabia_sim.Rabia_cluster.run cluster ~until:10_000.));
  ]

let run_kernels () =
  section "Microbenchmarks (Bechamel, OLS estimate per run)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let tests = Test.make_grouped ~name:"kernels" ~fmt:"%s/%s" (kernel_tests ()) in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] ->
          let unit, value =
            if est > 1e9 then ("s ", est /. 1e9)
            else if est > 1e6 then ("ms", est /. 1e6)
            else if est > 1e3 then ("us", est /. 1e3)
            else ("ns", est)
          in
          Printf.printf "  %-40s %10.2f %s/run\n" name value unit
      | Some _ | None -> Printf.printf "  %-40s (no estimate)\n" name)
    (List.sort compare rows)

let json_target () =
  let rec go i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  (* Collect run telemetry for the whole reproduction; the final
     snapshot is embedded in the --json artifact. P2 toggles the flag
     locally to measure the disabled-path overhead. *)
  Obs.Metrics.set_enabled true;
  (* Fail fast on an unwritable --json target rather than after the
     full run, which would lose every measurement. *)
  (match json_target () with
  | Some path -> (
      try close_out (open_out path)
      with Sys_error msg ->
        Printf.eprintf "error: cannot write --json target: %s\n" msg;
        exit 1)
  | None -> ());
  table1 ();
  table2 ();
  e3_equivalence ();
  e4_vc_trigger ();
  e5_heterogeneous ();
  e6_tradeoff ();
  e7_large_cluster ();
  if quick then print_endline "\n(E8 simulation sweep skipped: --quick)"
  else e8_simulation ();
  e9_probnative ();
  e10_markov ();
  if quick then print_endline "(E11 Ben-Or sweep skipped: --quick)" else e11_benor ();
  e12_mixed_faults ();
  e13_bounds ();
  e14_end_to_end ();
  if quick then print_endline "(E15 planner execution skipped: --quick)"
  else e15_planner ();
  if quick then print_endline "(E16 reconfiguration execution skipped: --quick)"
  else e16_reconfig ();
  if quick then print_endline "(E17 failure-detector calibration skipped: --quick)"
  else e17_failure_detector ();
  e18_stake ();
  if quick then print_endline "(E19 tail-latency comparison skipped: --quick)"
  else e19_tail_latency ();
  e20_engine_ablation ();
  p1_parallel_engine ~quick;
  p2_obs_overhead ~quick;
  p3_service ~quick;
  if quick then print_endline "(microbenchmarks skipped: --quick)" else run_kernels ();
  (match json_target () with Some path -> write_json path | None -> ());
  print_newline ()
