lib/raft/raft_types.ml: Format List String
