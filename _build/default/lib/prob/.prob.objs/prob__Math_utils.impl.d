lib/prob/math_utils.ml: Array Float
