lib/core/config.ml: Array Float Format Prob Quorum
