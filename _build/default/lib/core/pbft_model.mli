(** PBFT reliability model — Theorem 3.1 of the paper.

    For a failure configuration with Byzantine set [Byz] and correct
    set [Correct]:

    Safety holds iff
    {ol {- [|Byz| < 2 |Q_eq| - N] (non-equivocation quorums intersect in
           a correct node), and}
        {- [|Byz| < |Q_per| + |Q_vc| - N] (persistence and view-change
           quorums intersect in a correct node).}}

    Liveness holds iff
    {ol {- [|Byz| <= |Q_vc| - |Q_vc_t|],}
        {- [|Correct| >= max (|Q_eq|, |Q_per|, |Q_vc|)], and}
        {- [|Byz| < |Q_vc_t|] (Byzantine nodes alone cannot fabricate a
           view change).}}

    Note: the paper prints liveness condition (1) as
    [|Byz| <= |Q_vc_t| - |Q_vc|], which is negative for every row of its
    Table 1; the corrected orientation above reproduces the table
    exactly (see DESIGN.md, "Known paper erratum").

    Crashed nodes never endanger safety (they are silent) but count
    against [|Correct|] for liveness. *)

type params = {
  n : int;
  q_eq : int;  (** Non-equivocation quorum size. *)
  q_per : int;  (** Persistence quorum size. *)
  q_vc : int;  (** View-change quorum size. *)
  q_vc_t : int;  (** View-change trigger quorum size. *)
}

val default : int -> params
(** Castro–Liskov sizing: [f = (n-1)/3], quorums of [n - f], trigger of
    [f + 1] — the values in the paper's Table 1. *)

val make : n:int -> q_eq:int -> q_per:int -> q_vc:int -> q_vc_t:int -> params

val safe_given_byz : params -> int -> bool
(** Theorem 3.1 safety at a given [|Byz|]. *)

val live_given : params -> byz:int -> correct:int -> bool

val protocol : params -> Protocol.t

val max_byz_safe : params -> int
(** Largest [|Byz|] the configuration can carry while remaining safe;
    [-1] when even zero Byzantine nodes violate the structural
    conditions. *)

val accountable_given_byz : params -> int -> bool
(** BFT forensics (Sheng et al., CCS'21 — the paper's related work on
    analyses beyond [f] failures): when safety breaks with
    [f < |Byz| <= 2f] culprits are identifiable from the signed quorum
    certificates; beyond [2f] even accountability is lost. Here
    [f = n - q_eq]. *)

val safe_or_accountable : params -> Protocol.t
(** Protocol whose "safe" predicate is the weaker guarantee {e safe or
    accountable} (liveness unchanged) — the quantity the forensics
    literature argues deployments actually rely on. *)
