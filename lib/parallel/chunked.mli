(** Deterministic chunked map-reduce over index ranges.

    An index space [0..total-1] is split into contiguous chunks whose
    boundaries depend only on [total] (and the optional [chunks] count,
    default 64) — never on how many domains execute them. Each chunk is
    evaluated independently (possibly in parallel via {!Pool}), and the
    per-chunk partial results are reduced {e in chunk order} with
    Kahan-compensated summation. Consequently every result below is
    bit-identical across runs and across domain counts: [~domains:1]
    and [~domains:64] produce the same floats. *)

val default_chunks : int
(** Default chunk count (64): enough granularity to load-balance any
    plausible lane count without changing per-chunk float sums. *)

val ranges : ?chunks:int -> total:int -> unit -> (int * int) array
(** [ranges ~total ()] is the deterministic partition of [0..total-1]
    into [min chunks total] contiguous [(lo, hi)] half-open ranges of
    near-equal size, in ascending order. Empty when [total <= 0]. *)

val map_ranges :
  ?domains:int ->
  ?chunks:int ->
  total:int ->
  (chunk:int -> lo:int -> hi:int -> 'a) ->
  'a array
(** Evaluate one task per range, in parallel, returning per-chunk
    results in chunk order. [chunk] is the range's index — use it to
    derive per-chunk RNG streams. *)

val sum :
  ?domains:int -> ?chunks:int -> total:int -> (lo:int -> hi:int -> float) -> float
(** Kahan-reduced sum of per-chunk partial sums, in chunk order. *)

val sum3 :
  ?domains:int ->
  ?chunks:int ->
  total:int ->
  (chunk:int -> lo:int -> hi:int -> float * float * float) ->
  float * float * float
(** Component-wise {!sum} for triples (the analysis engines accumulate
    P(safe), P(live) and P(safe∧live) in one pass). *)

val count3 :
  ?domains:int ->
  ?chunks:int ->
  total:int ->
  (chunk:int -> lo:int -> hi:int -> int * int * int) ->
  int * int * int
(** Component-wise integer sum for hit counters (Monte Carlo); exact,
    hence trivially order-independent. *)
