(* t0 < 0 marks a span started while the registry was off; stop on
   such a span is a no-op even if metrics were enabled in between,
   which keeps recorded durations honest. *)
type t = { h : Metrics.histogram; t0 : float }

let start h =
  if Metrics.live h then { h; t0 = Unix.gettimeofday () } else { h; t0 = -1. }

let stop span =
  if span.t0 >= 0. && Metrics.live span.h then
    Metrics.observe span.h (Unix.gettimeofday () -. span.t0)

let time h f =
  let span = start h in
  Fun.protect ~finally:(fun () -> stop span) f
