type t = {
  protocol : string;
  mix : (int * float) list;
  byz_fraction : float option;
  quorums : (string * int) list;
  stakes : float list option;
  processes : Faultmodel.Failure_process.t list option;
  at : float option;
  seed : int option;
  horizon : float option;
  rounds : int option;
}

let max_fleet_nodes = 200
let max_quorum_value = 1000
let max_quorum_overrides = 8
let max_protocol_chars = 64
let max_rounds = 64
let default_rounds = 12

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let protocol s = s.protocol
let mix s = s.mix
let byz_fraction s = s.byz_fraction
let quorums s = s.quorums
let quorum s key = List.assoc_opt key s.quorums
let stakes s = s.stakes
let processes s = s.processes
let at s = s.at
let seed s = s.seed
let horizon s = s.horizon
let rounds s = s.rounds
let size s = List.fold_left (fun acc (c, _) -> acc + c) 0 s.mix

let effective_processes s =
  match s.processes with
  | Some ps -> ps
  | None ->
      List.concat_map
        (fun (count, p) ->
          List.init count (fun _ -> Faultmodel.Failure_process.Static p))
        s.mix

let is_dynamic s =
  match s.processes with
  | None -> false
  | Some ps ->
      not (List.for_all Faultmodel.Failure_process.is_static ps)

(* --- Validation -------------------------------------------------------- *)

let is_prob p = Float.is_finite p && p >= 0. && p <= 1.

let validate_mix groups =
  if groups = [] then Error "mix must be non-empty"
  else
    (* Bound each count before summing: with every count <=
       max_fleet_nodes the total below cannot wrap. *)
    let rec check = function
      | [] -> Ok ()
      | (count, _) :: _ when count < 1 || count > max_fleet_nodes ->
          errf "mix group counts must be in [1, %d]" max_fleet_nodes
      | (_, p) :: _ when not (is_prob p) ->
          Error "mix group probability must be a probability in [0,1]"
      | _ :: rest -> check rest
    in
    let* () = check groups in
    let total = List.fold_left (fun acc (c, _) -> acc + c) 0 groups in
    if total > max_fleet_nodes then
      errf "fleet of %d nodes exceeds the %d-node limit" total max_fleet_nodes
    else Ok ()

let validate_protocol name =
  let ok_char = function
    | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> true
    | _ -> false
  in
  if name = "" then Error "protocol must be non-empty"
  else if String.length name > max_protocol_chars then
    errf "protocol name exceeds %d characters" max_protocol_chars
  else if not (String.for_all ok_char name) then
    Error "protocol names use lowercase letters, digits, '-' and '_'"
  else Ok ()

let validate_quorums quorums =
  if List.length quorums > max_quorum_overrides then
    errf "at most %d quorum overrides" max_quorum_overrides
  else
    let rec check = function
      | [] -> Ok ()
      | (key, _) :: _ when key = "" || String.length key > 32 ->
          Error "quorum override keys must be 1..32 characters"
      | (_, v) :: _ when v < 0 || v > max_quorum_value ->
          errf "quorum override values must be in [0, %d]" max_quorum_value
      | (key, _) :: rest when List.mem_assoc key rest ->
          errf "duplicate quorum override %S" key
      | _ :: rest -> check rest
    in
    let* () = check quorums in
    Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) quorums)

let validate_stakes = function
  | None -> Ok ()
  | Some [] -> Error "stakes must be non-empty"
  | Some l when List.length l > max_fleet_nodes ->
      errf "stakes exceed the %d-node limit" max_fleet_nodes
  | Some l when not (List.for_all (fun v -> Float.is_finite v && v > 0.) l) ->
      Error "stakes must be finite and positive"
  | Some _ -> Ok ()

let validate_processes ~mix = function
  | None -> Ok ()
  | Some [] -> Error "processes must be non-empty"
  | Some ps ->
      let n = List.fold_left (fun acc (c, _) -> acc + c) 0 mix in
      if List.length ps <> n then
        errf "processes must list exactly one process per node (%d)" n
      else
        let rec check = function
          | [] -> Ok ()
          | p :: rest -> (
              match Faultmodel.Failure_process.validate p with
              | Ok _ -> check rest
              | Error msg -> Error msg)
        in
        check ps

let make ?byz_fraction ?(quorums = []) ?stakes ?processes ?at ?seed ?horizon
    ?rounds ~protocol ~mix () =
  let* () = validate_protocol protocol in
  let* () = validate_mix mix in
  let* () =
    match byz_fraction with
    | None -> Ok ()
    | Some b when is_prob b -> Ok ()
    | Some _ -> Error "byz_fraction must be a probability in [0,1]"
  in
  let* quorums = validate_quorums quorums in
  let* () = validate_stakes stakes in
  let* () = validate_processes ~mix processes in
  let* () =
    match at with
    | None -> Ok ()
    | Some t when Float.is_finite t && t > 0. -> Ok ()
    | Some _ -> Error "at must be a positive, finite mission time"
  in
  let* () =
    match horizon with
    | None -> Ok ()
    | Some h when Float.is_finite h && h > 0. -> Ok ()
    | Some _ -> Error "horizon must be a positive, finite mission time"
  in
  let* () =
    match rounds with
    | None -> Ok ()
    | Some _ when horizon = None -> Error "rounds requires horizon"
    | Some r when r >= 1 && r <= max_rounds -> Ok ()
    | Some _ -> errf "rounds must be in [1, %d]" max_rounds
  in
  Ok
    {
      protocol;
      mix;
      byz_fraction;
      quorums;
      stakes;
      processes;
      at;
      seed;
      horizon;
      rounds;
    }

let unsafe = function Ok s -> s | Error msg -> invalid_arg ("Scenario: " ^ msg)

let remake s =
  unsafe
    (make ?byz_fraction:s.byz_fraction ~quorums:s.quorums ?stakes:s.stakes
       ?processes:s.processes ?at:s.at ?seed:s.seed ?horizon:s.horizon
       ?rounds:s.rounds ~protocol:s.protocol ~mix:s.mix ())

let uniform ?byz_fraction ~protocol ~n ~p () =
  unsafe (make ?byz_fraction ~protocol ~mix:[ (n, p) ] ())

let with_protocol protocol s = remake { s with protocol }
let with_mix mix s = remake { s with mix }
let with_p p s = remake { s with mix = List.map (fun (c, _) -> (c, p)) s.mix }
let with_at at s = remake { s with at = Some at }
let with_processes processes s = remake { s with processes = Some processes }

let with_horizon ?rounds horizon s =
  remake { s with horizon = Some horizon; rounds }

(* --- Canonical encoding ------------------------------------------------ *)

let to_json s =
  let opt name render = function None -> [] | Some v -> [ (name, render v) ] in
  Obs.Json.Obj
    (("protocol", Obs.Json.String s.protocol)
     :: ( "mix",
          Obs.Json.List
            (List.map
               (fun (count, p) ->
                 Obs.Json.List [ Obs.Json.Int count; Obs.Json.number p ])
               s.mix) )
     :: (opt "byz_fraction" Obs.Json.number s.byz_fraction
        @ (if s.quorums = [] then []
           else
             [
               ( "quorums",
                 Obs.Json.Obj
                   (List.map (fun (k, v) -> (k, Obs.Json.Int v)) s.quorums) );
             ])
        @ opt "stakes"
            (fun l -> Obs.Json.List (List.map Obs.Json.number l))
            s.stakes
        @ opt "processes"
            (fun ps ->
              Obs.Json.List (List.map Faultmodel.Failure_process.to_json ps))
            s.processes
        @ opt "at" Obs.Json.number s.at
        @ opt "seed" (fun i -> Obs.Json.Int i) s.seed
        @ opt "horizon" Obs.Json.number s.horizon
        @ opt "rounds" (fun i -> Obs.Json.Int i) s.rounds))

let to_string s = Obs.Json.to_string (to_json s)

(* --- Parsing ----------------------------------------------------------- *)

let mix_of_params params =
  let groups =
    match Obs.Json.member "mix" params with
    | Some (Obs.Json.List []) -> Error "mix must be non-empty"
    | Some (Obs.Json.List items) ->
        let rec parse acc = function
          | [] -> Ok (List.rev acc)
          | Obs.Json.List [ count; p ] :: rest -> (
              match (Obs.Json.to_int count, Obs.Json.to_float p) with
              | Some count, Some p -> parse ((count, p) :: acc) rest
              | None, _ -> Error "mix group counts must be positive integers"
              | _, None -> Error "mix group probability must be a number")
          | _ -> Error "mix groups must be [count, probability] pairs"
        in
        parse [] items
    | Some _ -> Error "mix must be a list of [count, probability] pairs"
    | None -> (
        match (Obs.Json.member "n" params, Obs.Json.member "p" params) with
        | None, _ -> Error "missing n"
        | Some (Obs.Json.Int n), pj -> (
            if n < 1 then Error "n must be positive"
            else
              match Option.bind pj Obs.Json.to_float with
              | Some p -> Ok [ (n, p) ]
              | None -> Error "missing p")
        | Some _, _ -> Error "n must be an integer")
  in
  let* groups = groups in
  let* () = validate_mix groups in
  Ok groups

let opt_number name json =
  match Obs.Json.member name json with
  | None -> Ok None
  | Some j -> (
      match Obs.Json.to_float j with
      | Some v -> Ok (Some v)
      | None -> errf "%s must be a number" name)

let of_json json =
  match json with
  | Obs.Json.Obj _ ->
      let* protocol =
        match Obs.Json.member "protocol" json with
        | None -> Ok "raft"
        | Some (Obs.Json.String s) -> Ok s
        | Some _ -> Error "protocol must be a string"
      in
      let* mix = mix_of_params json in
      let* byz_fraction = opt_number "byz_fraction" json in
      let* quorums =
        match Obs.Json.member "quorums" json with
        | None -> Ok []
        | Some (Obs.Json.Obj fields) ->
            let rec parse acc = function
              | [] -> Ok (List.rev acc)
              | (key, v) :: rest -> (
                  match Obs.Json.to_int v with
                  | Some v -> parse ((key, v) :: acc) rest
                  | None -> errf "quorum override %S must be an integer" key)
            in
            parse [] fields
        | Some _ -> Error "quorums must be an object of integers"
      in
      let* stakes =
        match Obs.Json.member "stakes" json with
        | None -> Ok None
        | Some (Obs.Json.List items) ->
            let rec parse acc = function
              | [] -> Ok (Some (List.rev acc))
              | j :: rest -> (
                  match Obs.Json.to_float j with
                  | Some v -> parse (v :: acc) rest
                  | None -> Error "stakes must be numbers")
            in
            parse [] items
        | Some _ -> Error "stakes must be a list of numbers"
      in
      let* processes =
        match Obs.Json.member "processes" json with
        | None -> Ok None
        | Some (Obs.Json.List items) ->
            let rec parse acc = function
              | [] -> Ok (Some (List.rev acc))
              | j :: rest -> (
                  match Faultmodel.Failure_process.of_json j with
                  | Ok p -> parse (p :: acc) rest
                  | Error msg -> Error msg)
            in
            parse [] items
        | Some _ -> Error "processes must be a list of process objects"
      in
      let* at = opt_number "at" json in
      let* seed =
        match Obs.Json.member "seed" json with
        | None -> Ok None
        | Some j -> (
            match Obs.Json.to_int j with
            | Some v -> Ok (Some v)
            | None -> Error "seed must be an integer")
      in
      let* horizon = opt_number "horizon" json in
      let* rounds =
        match Obs.Json.member "rounds" json with
        | None -> Ok None
        | Some j -> (
            match Obs.Json.to_int j with
            | Some v -> Ok (Some v)
            | None -> Error "rounds must be an integer")
      in
      make ?byz_fraction ~quorums ?stakes ?processes ?at ?seed ?horizon ?rounds
        ~protocol ~mix ()
  | _ -> Error "scenario must be a JSON object"

let of_string s =
  match Obs.Json.of_string s with
  | Error msg -> Error msg
  | Ok json -> of_json json

(* --- Realization ------------------------------------------------------- *)

let fleet ~byz_fraction s =
  match s.processes with
  | None ->
      Faultmodel.Fleet.of_nodes
        (List.concat_map
           (fun (count, p) ->
             List.init count (fun _ ->
                 Faultmodel.Node.make ~id:0 ~byz_fraction
                   (Faultmodel.Fault_curve.constant p)))
           s.mix)
  | Some ps ->
      Faultmodel.Fleet.of_nodes
        (List.map
           (fun p ->
             Faultmodel.Node.make ~id:0 ~byz_fraction
               (Faultmodel.Failure_process.to_curve p))
           ps)

let equal (a : t) b = a = b
let pp ppf s = Format.pp_print_string ppf (to_string s)
