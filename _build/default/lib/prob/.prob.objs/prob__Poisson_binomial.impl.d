lib/prob/poisson_binomial.ml: Array Math_utils
