type comparison = {
  base : Analysis.result;
  alt : Analysis.result;
  safety_improvement : float;
  liveness_degradation : float;
}

let ratio num den = if den = 0. then infinity else num /. den

let compare_deployments ?at (proto_base, fleet_base) (proto_alt, fleet_alt) =
  let base = Analysis.run ?at proto_base fleet_base in
  let alt = Analysis.run ?at proto_alt fleet_alt in
  {
    base;
    alt;
    safety_improvement = ratio (1. -. base.p_safe) (1. -. alt.p_safe);
    liveness_degradation = ratio (1. -. alt.p_live) (1. -. base.p_live);
  }

let pbft_node_count ~p ~n_base ~n_alt =
  let deployment n =
    ( Pbft_model.protocol (Pbft_model.default n),
      Faultmodel.Fleet.uniform ~byz_fraction:1. ~n ~p () )
  in
  compare_deployments (deployment n_base) (deployment n_alt)

let pbft_sweep ~ps ~n_base ~n_alt =
  List.map (fun p -> (p, pbft_node_count ~p ~n_base ~n_alt)) ps

let pp_comparison fmt c =
  Format.fprintf fmt
    "@[<v>base: %a@ alt:  %a@ safety improvement %.1fx, liveness degradation %.2fx@]"
    Analysis.pp_result c.base Analysis.pp_result c.alt c.safety_improvement
    c.liveness_degradation
