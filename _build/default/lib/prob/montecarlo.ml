type estimate = {
  mean : float;
  trials : int;
  successes : int;
  ci_low : float;
  ci_high : float;
}

let z95 = 1.959963984540054

let wilson_interval ~successes ~trials =
  if trials = 0 then (0., 1.)
  else begin
    let n = float_of_int trials in
    let phat = float_of_int successes /. n in
    let z2 = z95 *. z95 in
    let denom = 1. +. (z2 /. n) in
    let center = (phat +. (z2 /. (2. *. n))) /. denom in
    let margin =
      z95 /. denom *. sqrt ((phat *. (1. -. phat) /. n) +. (z2 /. (4. *. n *. n)))
    in
    (Math_utils.clamp_prob (center -. margin), Math_utils.clamp_prob (center +. margin))
  end

let estimate_bool ?(trials = 100_000) rng f =
  let successes = ref 0 in
  for _ = 1 to trials do
    if f rng then incr successes
  done;
  let successes = !successes in
  let ci_low, ci_high = wilson_interval ~successes ~trials in
  { mean = float_of_int successes /. float_of_int trials; trials; successes; ci_low; ci_high }

let within e p = p >= e.ci_low && p <= e.ci_high

let pp fmt e =
  Format.fprintf fmt "%.6f [%.6f, %.6f] (%d/%d)" e.mean e.ci_low e.ci_high e.successes
    e.trials
