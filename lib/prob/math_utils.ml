(* Kahan–Babuška (Neumaier) compensation: unlike textbook Kahan, the
   correction also survives terms larger than the running sum, e.g.
   [1; 1e100; 1; -1e100]. *)
type kahan = { sum : float; comp : float }

let kahan_zero = { sum = 0.; comp = 0. }

let kahan_add k x =
  let t = k.sum +. x in
  let comp =
    if Float.abs k.sum >= Float.abs x then k.comp +. ((k.sum -. t) +. x)
    else k.comp +. ((x -. t) +. k.sum)
  in
  { sum = t; comp }

let kahan_total k = k.sum +. k.comp

let kahan_sum a =
  let acc = ref kahan_zero in
  for i = 0 to Array.length a - 1 do
    acc := kahan_add !acc a.(i)
  done;
  kahan_total !acc

let kahan_sum_list l = kahan_sum (Array.of_list l)

(* Exact log-factorials up to 255, then Stirling's series with the
   1/(12n) - 1/(360n^3) correction, which is accurate to ~1e-12 there. *)
let log_factorial_table =
  let t = Array.make 256 0. in
  for n = 2 to 255 do
    t.(n) <- t.(n - 1) +. log (float_of_int n)
  done;
  t

let log_factorial n =
  if n < 0 then invalid_arg "Math_utils.log_factorial: negative argument"
  else if n < 256 then log_factorial_table.(n)
  else
    let x = float_of_int n in
    ((x +. 0.5) *. log x) -. x
    +. (0.5 *. log (2. *. Float.pi))
    +. (1. /. (12. *. x))
    -. (1. /. (360. *. (x *. x *. x)))

let log_choose n k =
  if k < 0 || k > n || n < 0 then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose n k =
  if k < 0 || k > n || n < 0 then 0.
  else if k = 0 || k = n then 1.
  else exp (log_choose n k)

let log1mexp x =
  (* log (1 - e^x) for x < 0; split at log 2 per Maechler's note. *)
  if x >= 0. then nan
  else if x > -.Float.log 2. then log (-.Float.expm1 x)
  else Float.log1p (-.exp x)

let logsumexp a =
  let n = Array.length a in
  if n = 0 then neg_infinity
  else begin
    let m = Array.fold_left max neg_infinity a in
    if m = neg_infinity then neg_infinity
    else begin
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. exp (a.(i) -. m)
      done;
      m +. log !acc
    end
  end

let clamp_prob p = if Float.is_nan p then 0. else Float.max 0. (Float.min 1. p)

let approx_equal ?(tol = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= tol || diff <= tol *. Float.max (Float.abs a) (Float.abs b)
