lib/prob/montecarlo.ml: Format Math_utils
