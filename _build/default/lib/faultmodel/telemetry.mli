(** Synthetic telemetry and fault-curve estimation.

    The paper argues fault curves "can be computed using the large
    amount of telemetry that modern deployments track" (§1). Real
    telemetry is proprietary, so this module closes the loop
    synthetically: generate device lifetimes from a known ground-truth
    curve, observe them over a monitoring window, and fit a curve back
    — the estimation path a production deployment would run on its own
    fleet data. *)

type observation = {
  devices : int;  (** Devices under observation. *)
  device_hours : float;  (** Total observed uptime across the fleet. *)
  failures : int;  (** Devices that failed inside the window. *)
  lifetimes : float array;  (** Failure times of the failed devices. *)
  window : float;  (** Observation window length in hours. *)
}

val sample_lifetime : Prob.Rng.t -> Fault_curve.t -> float
(** Draw a lifetime (hours) from a curve by inverse-transform sampling
    (numeric inversion for shapes without a closed form). *)

val observe : Prob.Rng.t -> Fault_curve.t -> devices:int -> window:float -> observation
(** Simulate a fleet of identical devices watched for [window] hours;
    lifetimes beyond the window are right-censored into
    [device_hours]. *)

val afr_of_observation : observation -> float
(** Point AFR estimate: failures per device-year, converted to a
    one-year failure probability. *)

val afr_confidence : observation -> float * float
(** 95% interval on the AFR (normal approximation to the Poisson
    count, clamped to [0, 1]). *)

val fit_exponential : observation -> Fault_curve.t
(** Censoring-aware exponential MLE: rate = failures / device-hours. *)

val fit_weibull : observation -> Fault_curve.t
(** Censoring-aware Weibull MLE: surviving devices enter the
    likelihood as right-censored at the window, so short monitoring
    windows no longer bias the shape toward infant mortality.
    Requires >= 2 failures. *)

val fit_weibull_uncensored : observation -> Fault_curve.t
(** The naive fit on failed devices only — kept for comparison; badly
    biased when the window censors most lifetimes. *)

val fit_auto : observation -> Fault_curve.t
(** Picks exponential vs Weibull by the uncensored log-likelihood;
    falls back to exponential when there are too few failures. *)
