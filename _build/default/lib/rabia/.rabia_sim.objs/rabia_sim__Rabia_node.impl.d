lib/rabia/rabia_node.ml: Array Dessim Hashtbl Option Printf Queue Rabia_types
