lib/probnative/dynamic_quorum.mli: Faultmodel Probcons
