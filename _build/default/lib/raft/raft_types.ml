type command = Data of int | Config of int list

type entry = { term : int; index : int; command : command }

type msg =
  | Request_vote of {
      term : int;
      candidate_id : int;
      last_log_index : int;
      last_log_term : int;
    }
  | Request_vote_reply of { term : int; voter_id : int; granted : bool }
  | Append_entries of {
      term : int;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : int;
      entries : entry list;
      leader_commit : int;
    }
  | Append_entries_reply of {
      term : int;
      follower_id : int;
      success : bool;
      match_index : int;
    }
  | Timeout_now of { term : int }

let pp_command fmt = function
  | Data c -> Format.fprintf fmt "data(%d)" c
  | Config members ->
      Format.fprintf fmt "config({%s})"
        (String.concat "," (List.map string_of_int members))

let pp_msg fmt = function
  | Request_vote { term; candidate_id; _ } ->
      Format.fprintf fmt "RequestVote(t=%d, from=%d)" term candidate_id
  | Request_vote_reply { term; voter_id; granted } ->
      Format.fprintf fmt "VoteReply(t=%d, voter=%d, %b)" term voter_id granted
  | Append_entries { term; leader_id; entries; _ } ->
      Format.fprintf fmt "AppendEntries(t=%d, leader=%d, %d entries)" term leader_id
        (List.length entries)
  | Append_entries_reply { term; follower_id; success; _ } ->
      Format.fprintf fmt "AppendReply(t=%d, from=%d, %b)" term follower_id success
  | Timeout_now { term } -> Format.fprintf fmt "TimeoutNow(t=%d)" term
