lib/benor/benor_node.ml: Array Benor_types Dessim Int Map Printf Prob
