(** Deployment equivalence search (the paper's E3 claim).

    "One can run Raft on nine less-reliable nodes that suffer an 8%
    failure rate and obtain the same 99.97% safety and liveness" as
    three nodes at 1%. This module finds such equivalences: the
    smallest cluster of nodes at a given fault probability whose
    safe-and-live probability reaches a target. *)

type equivalent = {
  n : int;
  p : float;
  p_safe_live : float;
}

val raft_reliability : n:int -> p:float -> float
(** P(safe and live) of standard Raft on [n] uniform-[p] nodes. *)

val min_raft_cluster :
  target:float -> p:float -> ?max_n:int -> ?tolerance:float -> unit -> equivalent option
(** Smallest [n <= max_n] (default 99) whose Raft reliability reaches
    [target - tolerance]. Only odd sizes are considered: an even-sized
    majority cluster is never better than the odd cluster one node
    smaller. [tolerance] (default 0) expresses "equal at the quoted
    precision": the paper's E3 claim — 9 nodes at 8% match 3 nodes at
    1% — holds at its two-decimal rounding (99.9686% vs 99.9702%), i.e.
    with a tolerance of half a unit in the last printed digit. *)

val equivalents_table :
  target:float ->
  ps:float list ->
  ?max_n:int ->
  ?tolerance:float ->
  unit ->
  (float * equivalent option) list
(** One search per candidate fault probability — the data behind the
    paper's "larger networks of less reliable nodes can help". *)

val min_cluster_for :
  family:(int -> Protocol.t * Faultmodel.Fleet.t) ->
  target:float ->
  ?max_n:int ->
  unit ->
  equivalent option
(** Generic search over any indexed family of deployments; [p] in the
    result echoes the family index as a float-free marker (set to
    [nan]). *)
