(** Deterministic discrete-event simulation engine.

    A virtual clock plus an event queue of callbacks. Protocol code
    schedules work with {!schedule}; the engine executes events in
    timestamp order (FIFO within a timestamp), advancing the clock
    discontinuously. With a fixed seed every run is bit-identical,
    which the safety checkers and the analytical-vs-simulated
    comparison (experiment E8) rely on. *)

type t

type cancel
(** Handle to a scheduled event; cancelling is O(1) and idempotent. *)

val create : ?seed:int -> unit -> t
val now : t -> float
val rng : t -> Prob.Rng.t
(** The engine's root RNG stream; components that need isolation
    should [Prob.Rng.split] it at setup time. *)

val schedule : t -> delay:float -> (unit -> unit) -> cancel
(** Run the callback [delay] time units from now. Negative delays
    raise [Invalid_argument]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> cancel
(** Absolute-time variant; times before [now] raise. *)

val cancel : cancel -> unit

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue, stopping at [until] (virtual time), after
    [max_events] callbacks (default 10 million — a runaway-protocol
    backstop), or when no events remain. Events scheduled during the
    run are processed too. *)

val events_executed : t -> int

val stop : t -> unit
(** Make [run] return after the current callback. *)
