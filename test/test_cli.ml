(* CLI smoke tests: run the probcons binary end-to-end and check the
   shapes of its output. The binary is declared as a dune dependency,
   so these run against the freshly built executable. *)

let binary = "../bin/main.exe"

let run_capture args =
  let command = Printf.sprintf "%s %s > cli_output.txt 2>&1" binary args in
  let status = Sys.command command in
  let ic = open_in "cli_output.txt" in
  let size = in_channel_length ic in
  let contents = really_input_string ic size in
  close_in ic;
  (status, contents)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let check_contains args needles =
  let status, output = run_capture args in
  Alcotest.(check int) (args ^ " exits 0") 0 status;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%S in output of %s" needle args)
        true (contains output needle))
    needles

let test_tables () =
  check_contains "tables" [ "Table 1"; "Table 2"; "99.94%"; "99.97%"; "98.18%" ]

let test_analyze () =
  check_contains "analyze --protocol raft -n 3 -p 0.01" [ "safe"; "99.97%" ];
  check_contains "analyze --protocol pbft -n 7 -p 0.02" [ "pbft(n=7"; "count-dp" ];
  check_contains "analyze --protocol raft --mix 4x0.08,3x0.01" [ "raft(n=7" ]

let test_markov () =
  check_contains "markov -n 5 --afr 0.08" [ "MTTF"; "MTTDL"; "availability" ]

let test_simulate () =
  check_contains "simulate --protocol raft -n 5 --crash 0,1"
    [ "agreement=true"; "live=true" ]

let test_sweep_csv () =
  let status, output = run_capture "sweep --kind raft --csv" in
  Alcotest.(check int) "exits 0" 0 status;
  (* CSV shape: header + 5 rows, comma-separated. *)
  let lines = String.split_on_char '\n' (String.trim output) in
  Alcotest.(check int) "six lines" 6 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "has commas" true (String.contains line ','))
    lines

let test_plan () =
  check_contains "plan --target-nines 3 --mix 3x0.01,4x0.08"
    [ "committee"; "execution: safe=true" ]

let test_bad_command_fails () =
  let status, _ = run_capture "no-such-command" in
  Alcotest.(check bool) "nonzero exit" true (status <> 0)

let test_version () =
  check_contains "version" [ "probcons 1.0.0"; "probcons-wire/1" ];
  (* Every subcommand answers --version with the package version. *)
  List.iter
    (fun sub -> check_contains (sub ^ " --version") [ "1.0.0" ])
    [ "analyze"; "markov"; "sweep"; "serve"; "loadgen"; "version" ]

let test_serve_requires_listener () =
  let status, output = run_capture "serve" in
  Alcotest.(check bool) "nonzero exit" true (status <> 0);
  Alcotest.(check bool) "usage hint" true (contains output "--socket")

let suite =
  [
    Alcotest.test_case "tables" `Quick test_tables;
    Alcotest.test_case "analyze" `Quick test_analyze;
    Alcotest.test_case "markov" `Quick test_markov;
    Alcotest.test_case "simulate" `Quick test_simulate;
    Alcotest.test_case "sweep csv" `Quick test_sweep_csv;
    Alcotest.test_case "plan" `Quick test_plan;
    Alcotest.test_case "bad command fails" `Quick test_bad_command_fails;
    Alcotest.test_case "version" `Quick test_version;
    Alcotest.test_case "serve requires listener" `Quick test_serve_requires_listener;
  ]
