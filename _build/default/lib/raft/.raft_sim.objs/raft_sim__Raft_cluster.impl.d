lib/raft/raft_cluster.ml: Array Dessim List Option Raft_node Raft_types
