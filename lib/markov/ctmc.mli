(** Continuous-time Markov chains.

    The storage community quantifies reliability with Markov models —
    states are configurations (number of operational disks), and
    transitions carry failure rates (lambda) and repair rates (mu);
    MTTF and MTTDL fall out as absorption times (the paper's §2). This
    module provides exactly that machinery for consensus clusters. *)

type t
(** A CTMC over states [0 .. size-1]. *)

val create : int -> t
(** All-zero generator; add transitions with {!add_rate}. *)

val add_rate : t -> src:int -> dst:int -> float -> unit
(** Accumulate a transition rate; diagonal entries are maintained
    automatically. Rates must be nonnegative and [src <> dst]. *)

val size : t -> int

val generator : t -> Linalg.matrix
(** The generator matrix Q (rows sum to zero). *)

val steady_state : t -> float array
(** Stationary distribution; requires an irreducible chain. *)

val expected_time_to_absorption : t -> absorbing:(int -> bool) -> start:int -> float
(** Mean hitting time of the absorbing set from [start]; [0.] when
    [start] is itself absorbing, [infinity] when the set is
    unreachable. Solves the standard linear system over transient
    states. *)

val absorption_probability :
  t -> absorbing_a:(int -> bool) -> absorbing_b:(int -> bool) -> start:int -> float
(** Probability of hitting set A before set B. *)

val transient : t -> p0:float array -> t:float -> float array
(** [transient chain ~p0 ~t] is the state distribution at time [t]
    starting from distribution [p0], computed by uniformization
    (Poisson-weighted powers of the uniformized DTMC). Truncation error
    is below 1e-15 of total mass — far inside the 1e-9 tolerance the
    dynamic-failure cross-validation demands. Raises [Invalid_argument]
    on a size mismatch or a negative/non-finite time. *)

val simulate :
  t -> Prob.Rng.t -> start:int -> horizon:float -> (float * int) list
(** Jump-chain simulation up to the time horizon: list of
    [(entry_time, state)] pairs, first element [(0., start)]. Used to
    cross-validate the analytic solutions. *)
