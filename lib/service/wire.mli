(** The reliability-query wire protocol: versioned, newline-delimited
    JSON over a byte stream (Unix-domain or TCP socket).

    One request per line, one response per line, in order. A request is

    {v {"v": 2, "id": 7, "kind": "analyze", "params": {...}} v}

    and a response is either

    {v {"v": 2, "id": 7, "ok": <payload>} v}
    {v {"v": 2, "id": 7, "error": {"code": "overloaded", "msg": "..."}} v}

    [id] is an opaque client-chosen integer echoed back verbatim
    (default 0 when omitted). [v] must be between
    {!min_protocol_version} and {!protocol_version}; clients discover
    the server's version with [probcons version] or the [stats]
    request kind. Responses to identical requests are byte-identical —
    the toolkit's determinism guarantee extends across the wire —
    which is what makes the reply cache a pure win.

    Version 2 makes [analyze] params a full {!Probcons.Scenario}
    (protocol name dispatched through {!Probcons.Registry}, optional
    [byz_fraction], [quorums], [stakes], [at], [seed]), so the server
    answers every registered model. The compatibility rule: a wire/1
    request is accepted and internally {e upgraded} — its params are a
    subset of the scenario encoding, so it parses to the same query,
    hits the same cache entry, and returns a payload byte-identical to
    its wire/2 equivalent. Responses always carry the server's own
    version.

    Parsing is total: any byte string maps to a request or to a
    structured {!error_code}; the JSON layer bounds nesting depth, and
    {!max_line_bytes} bounds the line length the server will read. *)

type system =
  | Majority of int
  | Threshold of { n : int; k : int }
  | Wheel of int
  | Grid of { rows : int; cols : int }

type probs = Uniform of float | Per_node of float list

(** A parsed, validated query in normal form. [Analyze] carries a full
    deployment scenario; [groups] elsewhere is the heterogeneous-fleet
    normal form [(count, fault_probability) list]. The [n]/[p]
    shorthand in wire params parses to a single group, so semantically
    identical requests share one cache entry. *)
type query =
  | Analyze of { scenario : Probcons.Scenario.t }
  | Availability of { system : system; probs : probs }
  | Committee of { target_nines : float; groups : (int * float) list }
  | Quorum_size of { target_live_nines : float; groups : (int * float) list }
  | Markov of { n : int; quorum : int option; afr : float; mttr_hours : float }
  | Plan of { target_nines : float; groups : (int * float) list }
  | Stats  (** Server introspection; never cached. *)
  | Ping
      (** Health check: uptime, queue depth, live connections. Answered
          by the reader thread {e before} the request queue, so an
          overloaded or draining server still answers it — the probe a
          load balancer or the chaos harness can rely on. Never
          cached. *)

type error_code =
  | Parse_error  (** The line is not valid JSON. *)
  | Unsupported_version
      (** [v] missing or outside
          [{!min_protocol_version}..{!protocol_version}]. *)
  | Bad_request  (** Envelope or params malformed / out of bounds. *)
  | Unknown_kind
  | Overloaded
      (** Request queue full, or the connection cap was hit — explicit
          backpressure. *)
  | Deadline_exceeded  (** Queued past the server's deadline. *)
  | Shutting_down  (** Server draining; no new work accepted. *)
  | Internal
  | Timeout
      (** Client-side: the per-call deadline expired with no complete,
          well-formed reply. Never sent by the server — minted by
          {!Client} (and counted by {!Loadgen}) so a stalled socket
          surfaces as a typed error instead of a hang. *)
  | Connection_lost
      (** Client-side: the connection dropped (reset, EOF, corrupted
          framing) and the retry budget ran out. Never sent by the
          server. *)

val protocol_version : int
(** 2 — the version the server speaks and stamps on responses. *)

val min_protocol_version : int
(** 1 — oldest request version still accepted (and upgraded). *)

val protocol_name : string
(** ["probcons-wire/2"] — the negotiable protocol identifier. *)

val max_line_bytes : int
(** Longest request line a server reads before rejecting (1 MiB). *)

val max_fleet_nodes : int
(** Largest fleet any query may describe — re-exported from
    {!Probcons.Scenario.max_fleet_nodes}, the single mix validator. *)

val code_string : error_code -> string
val code_of_string : string -> error_code option

type request = { id : int; query : query }

val encode_request : request -> string
(** Canonical single-line encoding (no trailing newline). *)

val parse_request :
  string -> (request, int option * error_code * string) result
(** Total parser. The [int option] is the request id when the envelope
    was intact enough to recover it, so the error response can still be
    correlated. *)

val canonical_key : query -> string
(** Deterministic cache key: the query's kind plus its params in
    canonical field order and number formatting. Two requests with the
    same key are guaranteed the same response payload. *)

val cacheable : query -> bool
(** All compute queries are; [Stats] and [Ping] are not. *)

val encode_ok : id:int -> payload:string -> string
(** [payload] must be rendered JSON (it is spliced verbatim, which is
    what keeps cached responses byte-identical). *)

val encode_error : id:int option -> error_code -> string -> string
(** [id = None] (the request id could not be parsed) encodes as
    [id: null] — never a placeholder integer, which could collide with
    a real in-flight id and let a corruption-triggered error reply
    answer a healthy request. *)

type response = {
  rid : int option;  (** Echoed id; [None] on malformed responses. *)
  body : (Obs.Json.t, error_code * string) result;
}

val parse_response : string -> (response, string) result
(** Client side: [Error] only when the line is not a valid response
    envelope at all (transport corruption). *)
