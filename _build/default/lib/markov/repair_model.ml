type spec = { n : int; quorum : int; lambda : float; mu : float }

let of_afr ~n ~quorum ~afr ~mttr_hours =
  if afr <= 0. || afr >= 1. then invalid_arg "Repair_model.of_afr: afr must be in (0,1)";
  if mttr_hours <= 0. then invalid_arg "Repair_model.of_afr: mttr must be positive";
  let hours_per_year = 8766. in
  { n; quorum; lambda = -.Float.log1p (-.afr) /. hours_per_year; mu = 1. /. mttr_hours }

let validate { n; quorum; lambda; mu } =
  if n <= 0 || quorum <= 0 || quorum > n then invalid_arg "Repair_model: bad sizes";
  if lambda <= 0. || mu <= 0. then invalid_arg "Repair_model: rates must be positive"

(* States 0..n = number of failed nodes; failures at rate (n-k)*lambda,
   parallel repairs at rate k*mu. *)
let availability_chain spec =
  validate spec;
  let chain = Ctmc.create (spec.n + 1) in
  for k = 0 to spec.n - 1 do
    Ctmc.add_rate chain ~src:k ~dst:(k + 1) (float_of_int (spec.n - k) *. spec.lambda)
  done;
  for k = 1 to spec.n do
    Ctmc.add_rate chain ~src:k ~dst:(k - 1) (float_of_int k *. spec.mu)
  done;
  chain

let down_threshold spec = spec.n - spec.quorum + 1
(* Quorum lost once this many nodes have failed. *)

let mttf spec =
  let chain = availability_chain spec in
  Ctmc.expected_time_to_absorption chain
    ~absorbing:(fun k -> k >= down_threshold spec)
    ~start:0

let mttr_cluster spec =
  let chain = availability_chain spec in
  Ctmc.expected_time_to_absorption chain
    ~absorbing:(fun k -> k < down_threshold spec)
    ~start:(down_threshold spec)

let mtbf spec = mttf spec +. mttr_cluster spec

let availability spec =
  let chain = availability_chain spec in
  let pi = Ctmc.steady_state chain in
  let acc = ref 0. in
  for k = 0 to down_threshold spec - 1 do
    acc := !acc +. pi.(k)
  done;
  Prob.Math_utils.clamp_prob !acc

let mttdl spec =
  validate spec;
  (* Holders of one committed entry: quorum copies. Failed holders are
     re-replicated at rate mu each; all-holders-failed is absorbing. *)
  let copies = spec.quorum in
  let chain = Ctmc.create (copies + 1) in
  for k = 0 to copies - 1 do
    Ctmc.add_rate chain ~src:k ~dst:(k + 1) (float_of_int (copies - k) *. spec.lambda);
    if k > 0 then Ctmc.add_rate chain ~src:k ~dst:(k - 1) (float_of_int k *. spec.mu)
  done;
  Ctmc.expected_time_to_absorption chain ~absorbing:(fun k -> k >= copies) ~start:0

let nines_of_availability spec = Prob.Nines.of_prob (availability spec)
