(* The scenario spec and protocol registry: validation bounds, the
   canonical JSON encoding, parser totality (qcheck round-trips), and
   one named smoke test per registry entry — the CI registry-coverage
   gate greps for each protocol name as a string literal below. *)

open Probcons

let ok_exn = function
  | Ok s -> s
  | Error msg -> Alcotest.failf "unexpected scenario error: %s" msg

let scenario ?byz_fraction ?quorums ?stakes ?at ?seed ~protocol mix =
  ok_exn (Scenario.make ?byz_fraction ?quorums ?stakes ?at ?seed ~protocol ~mix ())

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected rejection" what
  | Error _ -> ()

(* --- Validation bounds ---------------------------------------------- *)

let test_make_bounds () =
  let make ?byz_fraction ?quorums ?stakes ?at ?seed ?(protocol = "raft") mix =
    Scenario.make ?byz_fraction ?quorums ?stakes ?at ?seed ~protocol ~mix ()
  in
  expect_error "empty mix" (make []);
  expect_error "zero count" (make [ (0, 0.1) ]);
  expect_error "negative count" (make [ (-3, 0.1) ]);
  expect_error "oversized group" (make [ (Scenario.max_fleet_nodes + 1, 0.1) ]);
  expect_error "oversized total"
    (make [ (Scenario.max_fleet_nodes, 0.1); (1, 0.1) ]);
  (* Per-group bound is checked before summing, so huge counts cannot
     wrap the total negative and slip past the fleet cap. *)
  expect_error "overflowing counts" (make [ (max_int / 2, 0.5); (2, 0.5) ]);
  expect_error "p above 1" (make [ (4, 1.5) ]);
  expect_error "p below 0" (make [ (4, -0.1) ]);
  expect_error "p nan" (make [ (4, Float.nan) ]);
  expect_error "byz above 1" (make ~byz_fraction:1.5 [ (4, 0.1) ]);
  expect_error "byz nan" (make ~byz_fraction:Float.nan [ (4, 0.1) ]);
  expect_error "empty protocol" (make ~protocol:"" [ (4, 0.1) ]);
  expect_error "protocol bad chars" (make ~protocol:"Raft!" [ (4, 0.1) ]);
  expect_error "protocol too long"
    (make ~protocol:(String.make 65 'a') [ (4, 0.1) ]);
  expect_error "quorum value bound"
    (make ~quorums:[ ("q_vc", Scenario.max_quorum_value + 1) ] [ (4, 0.1) ]);
  expect_error "quorum value negative"
    (make ~quorums:[ ("q_vc", -1) ] [ (4, 0.1) ]);
  expect_error "duplicate quorum key"
    (make ~quorums:[ ("q_vc", 3); ("q_vc", 4) ] [ (4, 0.1) ]);
  expect_error "too many quorum overrides"
    (make
       ~quorums:(List.init (Scenario.max_quorum_overrides + 1)
                   (fun i -> (Printf.sprintf "k%d" i, 1)))
       [ (4, 0.1) ]);
  expect_error "non-positive stake" (make ~stakes:[ 1.0; 0.0 ] [ (2, 0.1) ]);
  expect_error "at non-positive" (make ~at:0.0 [ (4, 0.1) ]);
  expect_error "at nan" (make ~at:Float.nan [ (4, 0.1) ]);
  (* And the happy path keeps everything it was given. *)
  let s =
    scenario ~byz_fraction:0.25 ~quorums:[ ("q_vc", 4); ("q_per", 3) ]
      ~at:8760. ~seed:7 ~protocol:"raft" [ (3, 0.01); (2, 0.08) ]
  in
  Alcotest.(check string) "protocol" "raft" (Scenario.protocol s);
  Alcotest.(check int) "size" 5 (Scenario.size s);
  Alcotest.(check (option (float 0.))) "byz" (Some 0.25)
    (Scenario.byz_fraction s);
  Alcotest.(check (list (pair string int)))
    "quorums sorted" [ ("q_per", 3); ("q_vc", 4) ] (Scenario.quorums s);
  Alcotest.(check (option int)) "quorum lookup" (Some 4)
    (Scenario.quorum s "q_vc");
  Alcotest.(check (option int)) "seed" (Some 7) (Scenario.seed s)

let test_shorthand_equals_mix () =
  (* The n/p shorthand and the explicit one-group mix are the same
     scenario — same value, same canonical bytes, so the service cache
     treats them as one entry. *)
  let from_shorthand =
    ok_exn (Scenario.of_string {|{"n": 5, "p": 0.01}|})
  in
  let from_mix =
    ok_exn (Scenario.of_string {|{"protocol": "raft", "mix": [[5, 0.01]]}|})
  in
  let made = scenario ~protocol:"raft" [ (5, 0.01) ] in
  Alcotest.(check bool) "shorthand = mix" true
    (Scenario.equal from_shorthand from_mix);
  Alcotest.(check bool) "parsed = constructed" true
    (Scenario.equal from_mix made);
  Alcotest.(check string) "canonical bytes"
    {|{"protocol": "raft", "mix": [[5, 0.01]]}|}
    (Scenario.to_string made)

let test_of_json_rejects () =
  List.iter
    (fun (what, s) -> expect_error what (Scenario.of_string s))
    [
      ("not an object", {|[1, 2]|});
      ("no fleet", {|{"protocol": "raft"}|});
      ("n without p", {|{"n": 5}|});
      ("n zero", {|{"n": 0, "p": 0.5}|});
      ("n not an int", {|{"n": 5.5, "p": 0.5}|});
      ("mix group shape", {|{"mix": [[5]]}|});
      ("mix huge count", {|{"mix": [[1e30, 0.5]]}|});
      ("quorums not ints", {|{"n": 5, "p": 0.1, "quorums": {"q": 1.5}}|});
      ("stakes not numbers", {|{"n": 2, "p": 0.1, "stakes": ["a", "b"]}|});
      ("bad json", {|{"n": 5,|});
    ]

let test_transformers () =
  let s = Scenario.uniform ~protocol:"raft" ~n:3 ~p:0.01 () in
  let s' = Scenario.with_protocol "pbft" (Scenario.with_mix [ (7, 0.02) ] s) in
  Alcotest.(check string) "protocol swapped" "pbft" (Scenario.protocol s');
  Alcotest.(check int) "mix swapped" 7 (Scenario.size s');
  let s'' = Scenario.with_p 0.5 s' in
  Alcotest.(check (list (pair int (float 0.))))
    "with_p keeps counts" [ (7, 0.5) ] (Scenario.mix s'');
  Alcotest.check_raises "transformers re-validate"
    (Invalid_argument "Scenario: mix group counts must be in [1, 200]")
    (fun () -> ignore (Scenario.with_mix [ (201, 0.01) ] s))

(* --- Failure processes and horizons ---------------------------------- *)

let test_process_fields () =
  let processes =
    [
      Faultmodel.Failure_process.Static 0.02;
      Faultmodel.Failure_process.Markov
        { fail_rate = 1e-4; recover_rate = 1e-2 };
      Faultmodel.Failure_process.Curve (Faultmodel.Fault_curve.Constant 0.05);
    ]
  in
  let s =
    ok_exn
      (Scenario.make ~processes ~horizon:8766. ~rounds:4 ~protocol:"raft"
         ~mix:[ (3, 0.02) ] ())
  in
  Alcotest.(check (option (float 0.))) "horizon" (Some 8766.)
    (Scenario.horizon s);
  Alcotest.(check (option int)) "rounds" (Some 4) (Scenario.rounds s);
  Alcotest.(check int) "processes kept" 3
    (List.length (Option.get (Scenario.processes s)));
  (* All three kinds survive the canonical encoding, value and bytes. *)
  let s' = ok_exn (Scenario.of_string (Scenario.to_string s)) in
  Alcotest.(check bool) "roundtrip equal" true (Scenario.equal s s');
  Alcotest.(check string) "canonical fixpoint" (Scenario.to_string s)
    (Scenario.to_string s');
  (* with_horizon after the fact is the same scenario as at birth. *)
  let grown =
    Scenario.with_horizon ~rounds:4
      8766.
      (ok_exn (Scenario.make ~processes ~protocol:"raft" ~mix:[ (3, 0.02) ] ()))
  in
  Alcotest.(check bool) "with_horizon = make" true (Scenario.equal s grown)

let test_legacy_bytes_without_processes () =
  (* The pre-process encoding is untouched: a scenario that doesn't use
     the new fields serializes to exactly the old bytes, with no
     processes/horizon/rounds keys for old parsers to trip on. *)
  let s = scenario ~protocol:"raft" [ (5, 0.01) ] in
  let bytes = Scenario.to_string s in
  Alcotest.(check string) "old bytes unchanged"
    {|{"protocol": "raft", "mix": [[5, 0.01]]}|} bytes;
  let contains key =
    let k = String.length key and n = String.length bytes in
    let rec go i = i + k <= n && (String.sub bytes i k = key || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) (Printf.sprintf "no %S key" key) false
        (contains key))
    [ "processes"; "horizon"; "rounds" ]

let test_process_rejects () =
  let make ?processes ?horizon ?rounds () =
    Scenario.make ?processes ?horizon ?rounds ~protocol:"raft"
      ~mix:[ (3, 0.02) ] ()
  in
  expect_error "process count mismatch"
    (make ~processes:[ Faultmodel.Failure_process.Static 0.5 ] ());
  expect_error "invalid process"
    (make
       ~processes:
         [
           Faultmodel.Failure_process.Static 0.5;
           Faultmodel.Failure_process.Markov
             { fail_rate = -1.; recover_rate = 0.1 };
           Faultmodel.Failure_process.Static 0.5;
         ]
       ());
  expect_error "rounds without horizon" (make ~rounds:4 ());
  expect_error "rounds above cap"
    (make ~horizon:100. ~rounds:(Scenario.max_rounds + 1) ());
  expect_error "rounds zero" (make ~horizon:100. ~rounds:0 ());
  expect_error "horizon non-positive" (make ~horizon:0. ());
  expect_error "horizon nan" (make ~horizon:Float.nan ());
  expect_error "markov bad rate in json"
    (Scenario.of_string
       {|{"protocol": "raft", "mix": [[1, 0.02]], "processes": [{"kind": "markov", "fail_rate": -1, "recover_rate": 0.1}]}|});
  expect_error "unknown process kind"
    (Scenario.of_string
       {|{"protocol": "raft", "mix": [[1, 0.02]], "processes": [{"kind": "weird"}]}|})

(* Each committed scenario file exercises one process kind; CI greps
   these filenames (and the kinds inside them) so every Failure_process
   constructor stays covered by a parsed-and-analyzed scenario. *)

let scenario_file name =
  let dir =
    match List.find_opt Sys.file_exists [ "scenarios"; "test/scenarios" ] with
    | Some d -> d
    | None -> Alcotest.fail "test scenario directory not found"
  in
  let path = Filename.concat dir name in
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  ok_exn (Scenario.of_string contents)

let process_kind = function
  | Faultmodel.Failure_process.Static _ -> "static"
  | Faultmodel.Failure_process.Curve _ -> "curve"
  | Faultmodel.Failure_process.Markov _ -> "markov"

let test_scenario_files () =
  List.iter
    (fun (file, kind) ->
      let s = scenario_file file in
      let processes = Option.get (Scenario.processes s) in
      Alcotest.(check int)
        (file ^ " process per node")
        (Scenario.size s) (List.length processes);
      List.iter
        (fun p -> Alcotest.(check string) (file ^ " kind") kind (process_kind p))
        processes;
      Alcotest.(check bool) (file ^ " has horizon") true
        (Scenario.horizon s <> None);
      (match Registry.validate s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s rejected by registry: %s" file msg);
      match Registry.analyze_json s with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s failed analysis: %s" file msg)
    [
      ("processes_static.json", "static");
      ("processes_markov.json", "markov");
      ("processes_curve.json", "curve");
    ]

(* --- qcheck round-trips --------------------------------------------- *)

let scenario_gen =
  let open QCheck.Gen in
  let prob = map (fun k -> float_of_int k /. 1000.) (int_range 0 1000) in
  let mix_gen =
    list_size (int_range 1 3) (pair (int_range 1 30) prob)
  in
  let quorums_gen =
    oneof
      [
        return [];
        map (fun v -> [ ("q_vc", v) ]) (int_range 1 20);
        map2 (fun a b -> [ ("q_per", a); ("q_vc", b) ])
          (int_range 1 20) (int_range 1 20);
      ]
  in
  let opt g = oneof [ return None; map Option.some g ] in
  let* protocol = oneofl [ "raft"; "pbft"; "upright"; "benor"; "stake" ] in
  let* mix = mix_gen in
  let* byz_fraction = opt prob in
  let* quorums = quorums_gen in
  let* stakes =
    opt (list_size (int_range 1 4) (map (fun k -> float_of_int k) (int_range 1 9)))
  in
  let* at = opt (map (fun k -> float_of_int k *. 10.) (int_range 1 10000)) in
  let* seed = opt (int_range 0 1000) in
  let* horizon =
    opt (map (fun k -> float_of_int k *. 100.) (int_range 1 100))
  in
  let* rounds =
    match horizon with
    | None -> return None
    | Some _ -> opt (int_range 1 Scenario.max_rounds)
  in
  let* processes =
    let expand kind =
      List.concat_map (fun (count, p) -> List.init count (fun _ -> kind p)) mix
    in
    oneofl
      [
        None;
        Some (expand (fun p -> Faultmodel.Failure_process.Static p));
        Some
          (expand (fun p ->
               Faultmodel.Failure_process.Curve
                 (Faultmodel.Fault_curve.Constant p)));
        Some
          (expand (fun _ ->
               Faultmodel.Failure_process.Markov
                 { fail_rate = 1e-4; recover_rate = 1e-2 }));
      ]
  in
  match
    Scenario.make ?byz_fraction ~quorums ?stakes ?processes ?at ?seed ?horizon
      ?rounds ~protocol ~mix ()
  with
  | Ok s -> return s
  | Error _ ->
      (* Only reachable via total-count overflow of the mix; shrink to
         the minimal valid scenario rather than discard. *)
      return (Scenario.uniform ~protocol ~n:3 ~p:0.01 ())

let scenario_arb =
  QCheck.make ~print:Scenario.to_string scenario_gen

let test_json_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"of_json (to_json s) = Ok s" ~count:500 scenario_arb
       (fun s ->
         match Scenario.of_json (Scenario.to_json s) with
         | Ok s' -> Scenario.equal s s'
         | Error _ -> false))

let test_string_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"of_string (to_string s) = Ok s" ~count:500
       scenario_arb (fun s ->
         match Scenario.of_string (Scenario.to_string s) with
         | Ok s' -> Scenario.equal s s' && Scenario.to_string s' = Scenario.to_string s
         | Error _ -> false))

(* --- Registry -------------------------------------------------------- *)

let analyze_name ?byz_fraction ?(n = 5) name =
  let s = Scenario.uniform ?byz_fraction ~protocol:name ~n ~p:0.01 () in
  match Registry.analyze s with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: %s" name msg

(* One smoke test per registry entry, each naming its protocol as a
   string literal: CI's registry-coverage step greps the test tree for
   every name printed by [probcons protocols --names]. *)

let test_registry_raft () =
  let r = analyze_name "raft" in
  Alcotest.(check bool) "raft analyzable" true (r.Analysis.p_safe_live > 0.9)

let test_registry_pbft () =
  let r = analyze_name ~n:7 "pbft" in
  Alcotest.(check bool) "pbft analyzable" true (r.Analysis.p_safe_live > 0.9)

let test_registry_pbft_forensics () =
  let r = analyze_name ~n:7 "pbft-forensics" in
  let plain = analyze_name ~n:7 "pbft" in
  (* Forensic support can only widen the acceptable outcomes. *)
  Alcotest.(check bool) "forensics >= pbft" true
    (r.Analysis.p_safe >= plain.Analysis.p_safe)

let test_registry_upright () =
  let r = analyze_name ~n:7 "upright" in
  Alcotest.(check bool) "upright analyzable" true (r.Analysis.p_safe_live > 0.9)

let test_registry_benor () =
  let r = analyze_name "benor" in
  Alcotest.(check bool) "benor analyzable" true (r.Analysis.p_safe_live > 0.9)

let test_registry_stake () =
  let r = analyze_name ~n:5 "stake" in
  Alcotest.(check bool) "stake analyzable" true (r.Analysis.p_safe_live > 0.)

let test_registry_quorum_availability () =
  let r = analyze_name "quorum-availability" in
  Alcotest.(check string) "synthetic engine" "quorum-availability"
    (r.Analysis.engine);
  Alcotest.(check (float 0.)) "pure availability" 1.0 r.Analysis.p_safe

let test_registry_rejects () =
  expect_error "unknown protocol"
    (Registry.validate (Scenario.uniform ~protocol:"paxos" ~n:3 ~p:0.01 ()));
  expect_error "unknown quorum key"
    (Registry.validate
       (scenario ~quorums:[ ("bogus", 2) ] ~protocol:"raft" [ (5, 0.01) ]));
  expect_error "stakes on non-stake model"
    (Registry.validate
       (scenario ~stakes:[ 1.; 1.; 1. ] ~protocol:"raft" [ (3, 0.01) ]));
  expect_error "enumeration cap"
    (Registry.validate (Scenario.uniform ~protocol:"stake" ~n:30 ~p:0.01 ()));
  Alcotest.(check bool) "find unknown" true (Registry.find "paxos" = None);
  Alcotest.(check int) "nine entries" 9 (List.length (Registry.names ()))

let test_registry_byz_default () =
  (* The registry resolves the scenario's optional byz_fraction against
     the model default: for raft the default is 0 (crash-only), so
     forcing every fault Byzantine must hurt safety. *)
  let default = analyze_name "raft" in
  let byz = analyze_name ~byz_fraction:1.0 "raft" in
  Alcotest.(check bool) "byz override hurts raft safety" true
    (byz.Analysis.p_safe < default.Analysis.p_safe);
  Alcotest.(check (float 1e-12)) "default is crash-only"
    default.Analysis.p_safe
    (analyze_name ~byz_fraction:0.0 "raft").Analysis.p_safe

let test_payload_shape () =
  let s = Scenario.uniform ~protocol:"raft" ~n:5 ~p:0.01 () in
  match Registry.analyze_json s with
  | Error msg -> Alcotest.failf "analyze_json: %s" msg
  | Ok (Obs.Json.Obj fields) ->
      Alcotest.(check (list string))
        "canonical payload field order"
        [ "protocol"; "n"; "engine"; "p_safe"; "p_live"; "p_safe_live"; "nines" ]
        (List.map fst fields)
  | Ok _ -> Alcotest.fail "payload not an object"

let test_horizon_payload_shape () =
  (* A scenario with a horizon dispatches to the trajectory payload —
     its field order is as load-bearing as the flat one's. *)
  let s =
    Scenario.with_horizon ~rounds:3 8766.
      (Scenario.uniform ~protocol:"raft" ~n:5 ~p:0.01 ())
  in
  match Registry.analyze_json s with
  | Error msg -> Alcotest.failf "analyze_json horizon: %s" msg
  | Ok (Obs.Json.Obj fields) -> (
      Alcotest.(check (list string))
        "canonical horizon payload field order"
        [ "protocol"; "n"; "horizon"; "rounds"; "min_p_live"; "trajectory" ]
        (List.map fst fields);
      match List.assoc "trajectory" fields with
      | Obs.Json.List points ->
          Alcotest.(check int) "one point per round" 3 (List.length points);
          List.iter
            (function
              | Obs.Json.Obj (("at", _) :: _) -> ()
              | _ -> Alcotest.fail "trajectory point must lead with at")
            points
      | _ -> Alcotest.fail "trajectory not a list")
  | Ok _ -> Alcotest.fail "payload not an object"

let suite =
  [
    Alcotest.test_case "make bounds" `Quick test_make_bounds;
    Alcotest.test_case "shorthand equals mix" `Quick test_shorthand_equals_mix;
    Alcotest.test_case "of_json rejects" `Quick test_of_json_rejects;
    Alcotest.test_case "transformers" `Quick test_transformers;
    Alcotest.test_case "process fields" `Quick test_process_fields;
    Alcotest.test_case "legacy bytes without processes" `Quick
      test_legacy_bytes_without_processes;
    Alcotest.test_case "process rejects" `Quick test_process_rejects;
    Alcotest.test_case "scenario files" `Quick test_scenario_files;
    test_json_roundtrip;
    test_string_roundtrip;
    Alcotest.test_case "registry raft" `Quick test_registry_raft;
    Alcotest.test_case "registry pbft" `Quick test_registry_pbft;
    Alcotest.test_case "registry pbft-forensics" `Quick
      test_registry_pbft_forensics;
    Alcotest.test_case "registry upright" `Quick test_registry_upright;
    Alcotest.test_case "registry benor" `Quick test_registry_benor;
    Alcotest.test_case "registry stake" `Quick test_registry_stake;
    Alcotest.test_case "registry quorum-availability" `Quick
      test_registry_quorum_availability;
    Alcotest.test_case "registry rejects" `Quick test_registry_rejects;
    Alcotest.test_case "registry byz default" `Quick test_registry_byz_default;
    Alcotest.test_case "payload shape" `Quick test_payload_shape;
    Alcotest.test_case "horizon payload shape" `Quick
      test_horizon_payload_shape;
  ]
