lib/prob/distribution.ml: Array Float Math_utils Rng
