let () =
  Alcotest.run "probcons"
    [
      ("prob", Test_prob.suite);
      ("parallel", Test_parallel.suite);
      ("faultmodel", Test_faultmodel.suite);
      ("quorum", Test_quorum.suite);
      ("core", Test_core.suite);
      ("scenario", Test_scenario.suite);
      ("markov", Test_markov.suite);
      ("cost", Test_cost.suite);
      ("sim", Test_sim.suite);
      ("raft", Test_raft.suite);
      ("raft-reconfig", Test_raft_reconfig.suite);
      ("pbft", Test_pbft.suite);
      ("probnative", Test_probnative.suite);
      ("benor", Test_benor.suite);
      ("properties", Test_properties.suite);
      ("rabia", Test_rabia.suite);
      ("obs", Test_obs.suite);
      ("frame", Test_frame.suite);
      ("service", Test_service.suite);
      ("chaos", Test_chaos.suite);
      ("cli", Test_cli.suite);
      ("dst", Test_dst.suite);
      ("fleet", Test_fleet.suite);
      ("replica", Test_replica.suite);
    ]
