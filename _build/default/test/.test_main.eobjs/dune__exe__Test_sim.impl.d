test/test_sim.ml: Alcotest Array Dessim Engine Event_queue Fault_injector Float List Network Prob Trace Vec
