(** DST system ["fleet"]: the fleet controller under the harness.

    A case is one seeded controller run (fleet size, tick count, seed,
    commit quorum, liveness target). Two invariants:

    - ["deterministic_recommendations"]: two runs of the same config
      render byte-identical canonical payloads — the property the wire
      cache and the replayable-recommendation guarantee rest on;
    - ["incremental_divergence"]: with per-tick verification on, the
      incremental failure distribution never drifts from a from-scratch
      recompute past the engine's drift bound (plus an O(n eps) scratch
      rounding allowance).

    Shrinking drops ticks and nodes; the op trace in a repro artifact
    is the tick sequence. A third of generated cases run with
    [dynamic = true] — Markov ground-truth degradation processes and
    the uncertainty-weighted swap policy — so both invariants soak
    against time-varying truth too; shrinking tries turning [dynamic]
    off first, and the artifact field is encoded only when true, so
    pre-dynamic repro artifacts keep their exact bytes. *)

type t = {
  nodes : int;
  ticks : int;
  seed : int;
  quorum : int;
  target_nines : float;
  dynamic : bool;
}

val system_name : string
(** ["fleet"]. *)

val divergence_allowance : t -> float
(** The invariant's bound: the engine drift bound plus the scratch
    recompute's own O(nodes eps) rounding room. *)

val system : unit -> t Harness.system
