lib/cost/optimizer.mli: Format Machine
