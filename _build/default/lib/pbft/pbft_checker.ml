type report = {
  agreement_ok : bool;
  live : bool;
  executed_counts : int array;
  view_changes : int;
  violations : string list;
}

let prefix_compatible a b =
  let rec go = function
    | [], _ | _, [] -> true
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (a, b)

let check cluster ~expected ~correct ~honest =
  let n = Pbft_cluster.size cluster in
  let executed = Array.init n (fun i -> Pbft_cluster.executed cluster i) in
  let violations = ref [] in
  let agreement_ok = ref true in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j && not (prefix_compatible executed.(i) executed.(j)) then begin
            agreement_ok := false;
            violations :=
              Printf.sprintf "honest nodes %d and %d executed divergent sequences" i j
              :: !violations
          end)
        honest)
    honest;
  let live = ref true in
  List.iter
    (fun node_id ->
      List.iter
        (fun cmd ->
          if not (List.mem cmd executed.(node_id)) then begin
            live := false;
            violations :=
              Printf.sprintf "correct node %d never executed command %d" node_id cmd
              :: !violations
          end)
        expected)
    correct;
  {
    agreement_ok = !agreement_ok;
    live = !live;
    executed_counts = Array.map List.length executed;
    view_changes = Dessim.Trace.count (Pbft_cluster.trace cluster) ~tag:"view-change";
    violations = List.rev !violations;
  }

let pp_report fmt r =
  Format.fprintf fmt "agreement=%b live=%b executed=[%s] view-changes=%d%s"
    r.agreement_ok r.live
    (String.concat ";" (Array.to_list (Array.map string_of_int r.executed_counts)))
    r.view_changes
    (match r.violations with
    | [] -> ""
    | v -> "\n  " ^ String.concat "\n  " v)
