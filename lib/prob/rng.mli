(** Deterministic, splittable pseudo-random number generator.

    SplitMix64: every simulation, Monte-Carlo estimate and sampled fault
    schedule in this toolkit is reproducible from a single [int] seed.
    The generator is a mutable stream; [split] derives an independent
    stream so concurrent components (e.g. per-node fault injectors) do
    not perturb each other's sequences when reordered. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val of_pair : int -> int -> t
(** [of_pair seed index] derives the [index]-th independent stream of
    [seed] deterministically and in O(1) — the streams chunked parallel
    Monte Carlo assigns to chunks, so estimates depend only on
    [(seed, chunking)], never on domain count or scheduling. *)

val copy : t -> t

val split : t -> t
(** Derive a statistically independent generator; advances [t] once. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); [rate] must be positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct ints from
    [0..n-1], in random order. Raises [Invalid_argument] if [k > n]. *)
