lib/prob/bounds.ml: Distribution
