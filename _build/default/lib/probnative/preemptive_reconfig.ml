type swap = {
  time : float;
  replaced : int;
  predicted_window_risk : float;
  cluster_live_before : float;
  cluster_live_after : float;
}

type outcome = {
  swaps : swap list;
  final_fleet : Faultmodel.Fleet.t;
  reviews : int;
}

let window_risks fleet ~start ~duration =
  Array.map
    (fun node ->
      Faultmodel.Fault_curve.window_probability node.Faultmodel.Node.curve ~start
        ~duration)
    (Faultmodel.Fleet.nodes fleet)

let window_liveness fleet ~quorum ~start ~duration =
  let risks = window_risks fleet ~start ~duration in
  let n = Array.length risks in
  Prob.Poisson_binomial.cdf_le risks (n - quorum)

let riskiest risks =
  let best = ref 0 in
  Array.iteri (fun u r -> if r > risks.(!best) then best := u) risks;
  !best

let replace_node fleet ~id ~curve ~time =
  let nodes = Array.copy (Faultmodel.Fleet.nodes fleet) in
  nodes.(id) <-
    Faultmodel.Node.make ~id
      ~label:(Printf.sprintf "replacement-%d@%.0fh" id time)
      (Faultmodel.Fault_curve.Shifted { offset = time; curve });
  Faultmodel.Fleet.of_nodes (Array.to_list nodes)

let simulate_policy ~fleet ~replacement_curve ~target_live ~horizon ~review_interval =
  if review_interval <= 0. then
    invalid_arg "Preemptive_reconfig: review interval must be positive";
  let n = Faultmodel.Fleet.size fleet in
  let quorum = (n / 2) + 1 in
  let current = ref fleet in
  let swaps = ref [] in
  let reviews = ref 0 in
  let time = ref 0. in
  while !time < horizon do
    incr reviews;
    (* Swap as long as the coming window misses the target and a swap
       still helps (each node can be replaced at most once per review). *)
    let budget = ref n in
    let continue_swapping = ref true in
    while !continue_swapping && !budget > 0 do
      let live = window_liveness !current ~quorum ~start:!time ~duration:review_interval in
      if live >= target_live then continue_swapping := false
      else begin
        let risks = window_risks !current ~start:!time ~duration:review_interval in
        let victim = riskiest risks in
        let updated = replace_node !current ~id:victim ~curve:replacement_curve ~time:!time in
        let live_after =
          window_liveness updated ~quorum ~start:!time ~duration:review_interval
        in
        if live_after > live then begin
          swaps :=
            {
              time = !time;
              replaced = victim;
              predicted_window_risk = risks.(victim);
              cluster_live_before = live;
              cluster_live_after = live_after;
            }
            :: !swaps;
          current := updated;
          decr budget
        end
        else continue_swapping := false
      end
    done;
    time := !time +. review_interval
  done;
  { swaps = List.rev !swaps; final_fleet = !current; reviews = !reviews }
