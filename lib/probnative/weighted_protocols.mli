(** The uncertainty-weighted selectors as registry protocols.

    [raft-weighted] sizes flexible Raft quorums with
    {!Dynamic_quorum.best_raft_weighted}; [committee-weighted] picks
    the smallest sufficient committee with
    {!Committee.reliability_weighted}. Both take one optional quorum
    override, [target_nines] (default 3), and derive each node's
    uncertainty from the spread of its failure process's marginal
    across the scenario's mission window — static fleets (or scenarios
    with no [at]/[horizon]) get zero uncertainty and reduce to the
    unweighted selectors.

    The entries {!Probcons.Registry.register} themselves when this
    module is linked (the library is built with [-linkall], so linking
    [probnative] suffices — the CLI, service and tests all see them). *)

val raft_weighted : Probcons.Registry.entry
val committee_weighted : Probcons.Registry.entry
