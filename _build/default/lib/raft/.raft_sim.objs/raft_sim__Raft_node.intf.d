lib/raft/raft_node.mli: Dessim Raft_types
