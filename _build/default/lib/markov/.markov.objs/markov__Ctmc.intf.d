lib/markov/ctmc.mli: Linalg Prob
