type t =
  | Static of float
  | Curve of Fault_curve.t
  | Markov of { fail_rate : float; recover_rate : float }

let hours_per_year = 8766.
let max_curve_depth = 8
let max_empirical_points = 64
let max_rate = 1e6
let max_downtime_events = 4096

let ( let* ) = Result.bind

let check name pred msg = if pred then Ok () else Error (name ^ ": " ^ msg)

let finite v = Float.is_finite v

let check_prob name p =
  check name (finite p && p >= 0. && p <= 1.) "must be a probability in [0, 1]"

let check_rate name r =
  check name (finite r && r >= 0. && r <= max_rate)
    (Printf.sprintf "must be a finite rate in [0, %g] per hour" max_rate)

let check_markov_rates ~fail_rate ~recover_rate =
  let* () = check_rate "fail_rate" fail_rate in
  let* () = check_rate "recover_rate" recover_rate in
  check "fail_rate + recover_rate" (fail_rate +. recover_rate > 0.)
    "must be positive"

let rec validate_curve depth curve =
  if depth > max_curve_depth then
    Error (Printf.sprintf "curve: nesting exceeds %d levels" max_curve_depth)
  else
    match curve with
    | Fault_curve.Constant p -> check_prob "constant p" p
    | Fault_curve.Exponential { rate } -> check_rate "exponential rate" rate
    | Fault_curve.Weibull { shape; scale } ->
        let* () =
          check "weibull shape" (finite shape && shape > 0. && shape <= 64.)
            "must be in (0, 64]"
        in
        check "weibull scale" (finite scale && scale > 0.) "must be positive"
    | Fault_curve.Bathtub { infant; useful; wearout; t1; t2 } ->
        let* () =
          check "bathtub t1" (finite t1 && t1 >= 0.) "must be non-negative"
        in
        let* () =
          check "bathtub t2" (finite t2 && t2 >= t1) "must be at least t1"
        in
        let* () = validate_curve (depth + 1) infant in
        let* () = validate_curve (depth + 1) useful in
        validate_curve (depth + 1) wearout
    | Fault_curve.Empirical points ->
        let n = Array.length points in
        let* () =
          check "empirical points" (n >= 1 && n <= max_empirical_points)
            (Printf.sprintf "need 1..%d points" max_empirical_points)
        in
        let rec go i =
          if i >= n then Ok ()
          else
            let t, p = points.(i) in
            let* () =
              check "empirical time" (finite t && t >= 0.) "must be non-negative"
            in
            let* () = check_prob "empirical p" p in
            let* () =
              if i = 0 then Ok ()
              else
                check "empirical times" (fst points.(i - 1) <= t)
                  "must be non-decreasing"
            in
            go (i + 1)
        in
        go 0
    | Fault_curve.Scaled { factor; curve } ->
        let* () =
          check "scaled factor" (finite factor && factor >= 0. && factor <= 1e3)
            "must be in [0, 1000]"
        in
        validate_curve (depth + 1) curve
    | Fault_curve.Shifted { offset; curve } ->
        let* () =
          check "shifted offset" (finite offset && offset >= 0.)
            "must be non-negative"
        in
        validate_curve (depth + 1) curve
    | Fault_curve.Markov_onoff { fail_rate; recover_rate } ->
        check_markov_rates ~fail_rate ~recover_rate

let validate = function
  | Static p as t ->
      let* () = check_prob "static p" p in
      Ok t
  | Curve c as t ->
      let* () = validate_curve 0 c in
      Ok t
  | Markov { fail_rate; recover_rate } as t ->
      let* () = check_markov_rates ~fail_rate ~recover_rate in
      Ok t

let static p = Static (Prob.Math_utils.clamp_prob p)
let of_curve c = validate (Curve c)
let markov ~fail_rate ~recover_rate = validate (Markov { fail_rate; recover_rate })

let to_curve = function
  | Static p -> Fault_curve.Constant p
  | Curve c -> c
  | Markov { fail_rate; recover_rate } ->
      Fault_curve.Markov_onoff { fail_rate; recover_rate }

let marginal t at = Fault_curve.eval (to_curve t) at

let is_static = function Static _ -> true | _ -> false

(* Canonical JSON. Field order is fixed and floats render via
   Obs.Json.to_string's %.17g, so encodings are byte-stable and usable
   as cache-key material. *)

let rec curve_to_json = function
  | Fault_curve.Constant p ->
      Obs.Json.Obj [ ("kind", Obs.Json.String "constant"); ("p", Obs.Json.number p) ]
  | Fault_curve.Exponential { rate } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "exponential"); ("rate", Obs.Json.number rate) ]
  | Fault_curve.Weibull { shape; scale } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "weibull");
          ("shape", Obs.Json.number shape);
          ("scale", Obs.Json.number scale) ]
  | Fault_curve.Bathtub { infant; useful; wearout; t1; t2 } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "bathtub");
          ("infant", curve_to_json infant);
          ("useful", curve_to_json useful);
          ("wearout", curve_to_json wearout);
          ("t1", Obs.Json.number t1);
          ("t2", Obs.Json.number t2) ]
  | Fault_curve.Empirical points ->
      let point (t, p) = Obs.Json.List [ Obs.Json.number t; Obs.Json.number p ] in
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "empirical");
          ("points", Obs.Json.List (Array.to_list points |> List.map point)) ]
  | Fault_curve.Scaled { factor; curve } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "scaled");
          ("factor", Obs.Json.number factor);
          ("curve", curve_to_json curve) ]
  | Fault_curve.Shifted { offset; curve } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "shifted");
          ("offset", Obs.Json.number offset);
          ("curve", curve_to_json curve) ]
  | Fault_curve.Markov_onoff { fail_rate; recover_rate } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "markov");
          ("fail_rate", Obs.Json.number fail_rate);
          ("recover_rate", Obs.Json.number recover_rate) ]

let to_json = function
  | Static p ->
      Obs.Json.Obj [ ("kind", Obs.Json.String "static"); ("p", Obs.Json.number p) ]
  | Markov { fail_rate; recover_rate } ->
      Obs.Json.Obj
        [ ("kind", Obs.Json.String "markov");
          ("fail_rate", Obs.Json.number fail_rate);
          ("recover_rate", Obs.Json.number recover_rate) ]
  | Curve c ->
      Obs.Json.Obj [ ("kind", Obs.Json.String "curve"); ("curve", curve_to_json c) ]

let float_field name json =
  match Obs.Json.member name json with
  | Some v -> (
      match Obs.Json.to_float v with
      | Some f -> Ok f
      | None -> Error (name ^ ": expected a number"))
  | None -> Error (name ^ ": missing field")

let rec curve_of_json json =
  let* kind =
    match Obs.Json.member "kind" json with
    | Some k -> (
        match Obs.Json.to_string_opt k with
        | Some s -> Ok s
        | None -> Error "curve kind: expected a string")
    | None -> Error "curve: missing kind"
  in
  match kind with
  | "constant" ->
      let* p = float_field "p" json in
      Ok (Fault_curve.Constant p)
  | "exponential" ->
      let* rate = float_field "rate" json in
      Ok (Fault_curve.Exponential { rate })
  | "weibull" ->
      let* shape = float_field "shape" json in
      let* scale = float_field "scale" json in
      Ok (Fault_curve.Weibull { shape; scale })
  | "bathtub" ->
      let sub name =
        match Obs.Json.member name json with
        | Some v -> curve_of_json v
        | None -> Error ("bathtub: missing " ^ name)
      in
      let* infant = sub "infant" in
      let* useful = sub "useful" in
      let* wearout = sub "wearout" in
      let* t1 = float_field "t1" json in
      let* t2 = float_field "t2" json in
      Ok (Fault_curve.Bathtub { infant; useful; wearout; t1; t2 })
  | "empirical" -> (
      match Obs.Json.member "points" json with
      | None -> Error "empirical: missing points"
      | Some pts -> (
          match Obs.Json.to_list pts with
          | None -> Error "empirical points: expected a list"
          | Some items ->
              let parse_point item =
                match Obs.Json.to_list item with
                | Some [ t; p ] -> (
                    match (Obs.Json.to_float t, Obs.Json.to_float p) with
                    | Some t, Some p -> Ok (t, p)
                    | _ -> Error "empirical point: expected [time, p]")
                | _ -> Error "empirical point: expected [time, p]"
              in
              let rec go acc = function
                | [] -> Ok (Fault_curve.Empirical (Array.of_list (List.rev acc)))
                | item :: rest ->
                    let* pt = parse_point item in
                    go (pt :: acc) rest
              in
              go [] items))
  | "scaled" ->
      let* factor = float_field "factor" json in
      let* curve =
        match Obs.Json.member "curve" json with
        | Some v -> curve_of_json v
        | None -> Error "scaled: missing curve"
      in
      Ok (Fault_curve.Scaled { factor; curve })
  | "shifted" ->
      let* offset = float_field "offset" json in
      let* curve =
        match Obs.Json.member "curve" json with
        | Some v -> curve_of_json v
        | None -> Error "shifted: missing curve"
      in
      Ok (Fault_curve.Shifted { offset; curve })
  | "markov" ->
      let* fail_rate = float_field "fail_rate" json in
      let* recover_rate = float_field "recover_rate" json in
      Ok (Fault_curve.Markov_onoff { fail_rate; recover_rate })
  | other -> Error ("curve: unknown kind '" ^ other ^ "'")

let of_json json =
  let* kind =
    match Obs.Json.member "kind" json with
    | Some k -> (
        match Obs.Json.to_string_opt k with
        | Some s -> Ok s
        | None -> Error "process kind: expected a string")
    | None -> Error "process: missing kind"
  in
  let* t =
    match kind with
    | "static" ->
        let* p = float_field "p" json in
        Ok (Static p)
    | "markov" ->
        let* fail_rate = float_field "fail_rate" json in
        let* recover_rate = float_field "recover_rate" json in
        Ok (Markov { fail_rate; recover_rate })
    | "curve" -> (
        match Obs.Json.member "curve" json with
        | Some v ->
            let* c = curve_of_json v in
            Ok (Curve c)
        | None -> Error "process: missing curve")
    | other -> Error ("process: unknown kind '" ^ other ^ "'")
  in
  validate t

(* Downtime sampling for the simulator: a seed-deterministic list of
   [(fail_time, recover_time option)] intervals within [0, horizon),
   sorted by fail time. [None] means the node never comes back. *)
let sample_downtime rng t ~horizon =
  match t with
  | Static p ->
      if p <= 0. then []
      else if p >= 1. then [ (0., None) ]
      else
        let rate = -.Float.log1p (-.p) /. hours_per_year in
        let fail = Prob.Rng.exponential rng rate in
        if fail < horizon then [ (fail, None) ] else []
  | Curve c ->
      let fail = Telemetry.sample_lifetime rng c in
      if fail < horizon then [ (fail, None) ] else []
  | Markov { fail_rate; recover_rate } ->
      if fail_rate <= 0. then []
      else
        let rec go now acc n =
          if n >= max_downtime_events then List.rev acc
          else
            let fail = now +. Prob.Rng.exponential rng fail_rate in
            if fail >= horizon then List.rev acc
            else if recover_rate <= 0. then List.rev ((fail, None) :: acc)
            else
              let back = fail +. Prob.Rng.exponential rng recover_rate in
              if back >= horizon then List.rev ((fail, None) :: acc)
              else go back ((fail, Some back) :: acc) (n + 1)
        in
        go 0. [] 0

let equal (a : t) (b : t) = a = b

let pp fmt = function
  | Static p -> Format.fprintf fmt "static(%g)" p
  | Curve c -> Format.fprintf fmt "curve(%a)" Fault_curve.pp c
  | Markov { fail_rate; recover_rate } ->
      Format.fprintf fmt "markov(fail=%g/h, recover=%g/h)" fail_rate recover_rate
