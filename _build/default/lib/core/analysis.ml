type strategy =
  | Auto
  | Count_dp
  | Enumeration
  | Monte_carlo of int

type result = {
  protocol : string;
  p_safe : float;
  p_live : float;
  p_safe_live : float;
  engine : string;
  ci_safe : (float * float) option;
  ci_live : (float * float) option;
  ci_safe_live : (float * float) option;
}

let no_ci protocol ~engine ~p_safe ~p_live ~p_safe_live =
  {
    protocol;
    p_safe = Prob.Math_utils.clamp_prob p_safe;
    p_live = Prob.Math_utils.clamp_prob p_live;
    p_safe_live = Prob.Math_utils.clamp_prob p_safe_live;
    engine;
    ci_safe = None;
    ci_live = None;
    ci_safe_live = None;
  }

let run_count_dp (protocol : Protocol.t) ~crash_probs ~byz_probs =
  let safe_count, live_count =
    match (protocol.safe.by_count, protocol.live.by_count) with
    | Some s, Some l -> (s, l)
    | _ -> invalid_arg "Analysis: count engine needs count predicates"
  in
  let dist = Config.joint_count_distribution ~crash_probs ~byz_probs in
  let n = Array.length crash_probs in
  let p_safe = ref 0. and p_live = ref 0. and p_both = ref 0. and mass = ref 0. in
  for b = 0 to n do
    for c = 0 to n - b do
      let p = dist.(b).(c) in
      if p > 0. then begin
        mass := !mass +. p;
        let safe = safe_count ~byz:b ~crashed:c in
        let live = live_count ~byz:b ~crashed:c in
        if safe then p_safe := !p_safe +. p;
        if live then p_live := !p_live +. p;
        if safe && live then p_both := !p_both +. p
      end
    done
  done;
  (* The DP's total mass is 1 up to float rounding; normalizing removes
     the drift so structurally certain predicates report exactly 1. *)
  let normalize p = if !mass > 0. then p /. !mass else p in
  no_ci protocol.name ~engine:"count-dp" ~p_safe:(normalize !p_safe)
    ~p_live:(normalize !p_live) ~p_safe_live:(normalize !p_both)

let accumulate_config (protocol : Protocol.t) ~crash_probs ~byz_probs
    (p_safe, p_live, p_both) config =
  let p = Config.probability ~crash_probs ~byz_probs config in
  if p > 0. then begin
    let safe = protocol.safe.full config and live = protocol.live.full config in
    ( (if safe then p_safe +. p else p_safe),
      (if live then p_live +. p else p_live),
      if safe && live then p_both +. p else p_both )
  end
  else (p_safe, p_live, p_both)

let run_enumeration (protocol : Protocol.t) ~crash_probs ~byz_probs =
  let n = Array.length crash_probs in
  let all_zero a = Array.for_all (fun p -> p = 0.) a in
  let acc = ref (0., 0., 0.) in
  let engine =
    if all_zero byz_probs && n <= Quorum.Subset.max_enumeration then begin
      Config.iter_binary ~n ~byzantine:false (fun config ->
          acc := accumulate_config protocol ~crash_probs ~byz_probs !acc config);
      "enumeration-binary"
    end
    else if all_zero crash_probs && n <= Quorum.Subset.max_enumeration then begin
      Config.iter_binary ~n ~byzantine:true (fun config ->
          acc := accumulate_config protocol ~crash_probs ~byz_probs !acc config);
      "enumeration-binary"
    end
    else begin
      Config.iter_ternary ~n (fun config ->
          acc := accumulate_config protocol ~crash_probs ~byz_probs !acc config);
      "enumeration-ternary"
    end
  in
  let p_safe, p_live, p_both = !acc in
  no_ci protocol.name ~engine ~p_safe ~p_live ~p_safe_live:p_both

let run_monte_carlo (protocol : Protocol.t) ~crash_probs ~byz_probs ~trials ~seed =
  let rng = Prob.Rng.create seed in
  let safe_hits = ref 0 and live_hits = ref 0 and both_hits = ref 0 in
  for _ = 1 to trials do
    let config = Config.sample ~crash_probs ~byz_probs rng in
    let safe = protocol.safe.full config and live = protocol.live.full config in
    if safe then incr safe_hits;
    if live then incr live_hits;
    if safe && live then incr both_hits
  done;
  let proportion hits = float_of_int hits /. float_of_int trials in
  {
    protocol = protocol.name;
    p_safe = proportion !safe_hits;
    p_live = proportion !live_hits;
    p_safe_live = proportion !both_hits;
    engine = Printf.sprintf "monte-carlo(%d)" trials;
    ci_safe = Some (Prob.Montecarlo.wilson_interval ~successes:!safe_hits ~trials);
    ci_live = Some (Prob.Montecarlo.wilson_interval ~successes:!live_hits ~trials);
    ci_safe_live = Some (Prob.Montecarlo.wilson_interval ~successes:!both_hits ~trials);
  }

let run ?at ?(strategy = Auto) ?(seed = 42) (protocol : Protocol.t) fleet =
  let n = Faultmodel.Fleet.size fleet in
  if n <> protocol.n then
    invalid_arg
      (Printf.sprintf "Analysis.run: fleet size %d but protocol expects %d" n
         protocol.n);
  let crash_probs = Faultmodel.Fleet.crash_probs ?at fleet in
  let byz_probs = Faultmodel.Fleet.byz_probs ?at fleet in
  let has_counts =
    protocol.safe.by_count <> None && protocol.live.by_count <> None
  in
  match strategy with
  | Count_dp -> run_count_dp protocol ~crash_probs ~byz_probs
  | Enumeration -> run_enumeration protocol ~crash_probs ~byz_probs
  | Monte_carlo trials -> run_monte_carlo protocol ~crash_probs ~byz_probs ~trials ~seed
  | Auto ->
      if has_counts then run_count_dp protocol ~crash_probs ~byz_probs
      else if n <= 13 || (n <= Quorum.Subset.max_enumeration
                          && (Array.for_all (fun p -> p = 0.) byz_probs
                             || Array.for_all (fun p -> p = 0.) crash_probs))
      then run_enumeration protocol ~crash_probs ~byz_probs
      else run_monte_carlo protocol ~crash_probs ~byz_probs ~trials:200_000 ~seed

let run_correlated ?at ?(trials = 200_000) ?(seed = 42) model (protocol : Protocol.t)
    fleet =
  let n = Faultmodel.Fleet.size fleet in
  if n <> protocol.n then
    invalid_arg "Analysis.run_correlated: fleet size mismatch";
  let rng = Prob.Rng.create seed in
  let safe_hits = ref 0 and live_hits = ref 0 and both_hits = ref 0 in
  for _ = 1 to trials do
    let kinds = Faultmodel.Correlation.sample_kinds model fleet ?at rng in
    let config =
      Array.map
        (function
          | Faultmodel.Correlation.Ok -> Config.Correct
          | Faultmodel.Correlation.Crash -> Config.Crashed
          | Faultmodel.Correlation.Byz -> Config.Byzantine)
        kinds
    in
    let safe = protocol.safe.full config and live = protocol.live.full config in
    if safe then incr safe_hits;
    if live then incr live_hits;
    if safe && live then incr both_hits
  done;
  let proportion hits = float_of_int hits /. float_of_int trials in
  {
    protocol = protocol.name;
    p_safe = proportion !safe_hits;
    p_live = proportion !live_hits;
    p_safe_live = proportion !both_hits;
    engine = Printf.sprintf "monte-carlo-correlated(%d)" trials;
    ci_safe = Some (Prob.Montecarlo.wilson_interval ~successes:!safe_hits ~trials);
    ci_live = Some (Prob.Montecarlo.wilson_interval ~successes:!live_hits ~trials);
    ci_safe_live = Some (Prob.Montecarlo.wilson_interval ~successes:!both_hits ~trials);
  }

let pp_result fmt r =
  Format.fprintf fmt "@[<v>%s [%s]:@ safe %a, live %a, safe&live %a@]" r.protocol
    r.engine
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.p_safe
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.p_live
    (Prob.Nines.pp_percent ?sig_nines:None)
    r.p_safe_live
