type fault =
  | Crash_at of float
  | Crash_restart of { at : float; back_at : float }
  | Byzantine_from of float

type plan = (int * fault) list

let apply ~engine ~set_down ~set_byzantine plan =
  List.iter
    (fun (node, fault) ->
      match fault with
      | Crash_at at ->
          ignore (Engine.schedule_at engine ~time:at (fun () -> set_down node true))
      | Crash_restart { at; back_at } ->
          if back_at < at then invalid_arg "Fault_injector: restart before crash";
          ignore (Engine.schedule_at engine ~time:at (fun () -> set_down node true));
          ignore
            (Engine.schedule_at engine ~time:back_at (fun () -> set_down node false))
      | Byzantine_from at ->
          ignore
            (Engine.schedule_at engine ~time:at (fun () -> set_byzantine node true)))
    plan

let of_failed_nodes ?(byzantine = false) ?(at = 0.) nodes =
  List.map
    (fun node -> (node, if byzantine then Byzantine_from at else Crash_at at))
    nodes

let sample_plan ?(byz_at = 0.) ?(crash_at = 0.) rng ~crash_probs ~byz_probs =
  let plan = ref [] in
  Array.iteri
    (fun u pc ->
      let pb = byz_probs.(u) in
      let roll = Prob.Rng.float rng in
      if roll < pb then plan := (u, Byzantine_from byz_at) :: !plan
      else if roll < pb +. pc then plan := (u, Crash_at crash_at) :: !plan)
    crash_probs;
  List.rev !plan
