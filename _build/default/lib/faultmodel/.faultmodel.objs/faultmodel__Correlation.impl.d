lib/faultmodel/correlation.ml: Array Fleet List Node Prob
