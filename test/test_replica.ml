(* The replicated deployment: command codec, durable storage, and
   in-process multi-replica clusters exercising leader redirects,
   failover, crash-restart catch-up, chaos-proxied links and the
   measurement harness helpers. *)

module Node = Replica.Node
module Command = Replica.Command
module State = Replica.State
module Storage = Replica.Storage
module Driver = Replica.Driver
module Wire = Service.Wire
module Client = Service.Client
module Raft_codec = Raft_sim.Raft_codec
module Raft_types = Raft_sim.Raft_types

let port_counter = ref 0

let fresh_base () =
  incr port_counter;
  44000 + (Unix.getpid () mod 100 * 400) + (!port_counter * 30)

let tmp_dir prefix =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !port_counter)
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  dir

let scenario_a = Probcons.Scenario.uniform ~protocol:"raft" ~n:3 ~p:0.01 ()
let scenario_b = Probcons.Scenario.uniform ~protocol:"pbft" ~n:4 ~p:0.02 ()

let poll ?(timeout = 15.) ?(every = 0.05) f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () > deadline then false
    else (
      Thread.delay every;
      go ())
  in
  go ()

(* ---- codecs and state machine ------------------------------------- *)

let test_command_codec () =
  let op = Command.Put_scenario { name = "alpha"; scenario = scenario_a; nonce = 0 } in
  let id1 = Command.id op in
  let id2 =
    Command.id
      (Command.Put_scenario { name = "alpha"; scenario = scenario_a; nonce = 0 })
  in
  Alcotest.(check string) "equal ops have equal ids" id1 id2;
  (match Command.of_string id1 with
  | Ok (Command.Put_scenario { name; nonce; _ }) ->
      Alcotest.(check string) "name round-trips" "alpha" name;
      Alcotest.(check int) "nonce defaults to 0" 0 nonce
  | _ -> Alcotest.fail "put did not round-trip");
  let nonced =
    Command.Put_scenario { name = "alpha"; scenario = scenario_a; nonce = 7 }
  in
  Alcotest.(check bool)
    "nonce distinguishes ids" false
    (Command.id nonced = id1);
  (match Command.of_string (Command.to_string Command.Barrier) with
  | Ok Command.Barrier -> ()
  | _ -> Alcotest.fail "barrier did not round-trip");
  (match Command.of_string {|{"op":"put","name":"bad name!","scenario":{}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalid store name accepted")

let test_raft_codec () =
  let entries =
    [
      { Raft_types.term = 2; index = 5; command = Raft_types.Data 17 };
      { Raft_types.term = 3; index = 6; command = Raft_types.Config [ 0; 1; 2 ] };
    ]
  in
  let msgs =
    [
      Raft_types.Request_vote
        { term = 4; candidate_id = 1; last_log_index = 6; last_log_term = 3 };
      Raft_types.Request_vote_reply { term = 4; voter_id = 2; granted = true };
      Raft_types.Append_entries
        {
          term = 4;
          leader_id = 1;
          prev_log_index = 4;
          prev_log_term = 2;
          entries;
          leader_commit = 5;
        };
      Raft_types.Append_entries_reply
        { term = 4; follower_id = 0; success = false; match_index = 3 };
      Raft_types.Timeout_now { term = 4 };
    ]
  in
  List.iter
    (fun msg ->
      match Raft_codec.msg_of_json (Raft_codec.msg_to_json msg) with
      | Ok decoded ->
          Alcotest.(check bool) "msg round-trips" true (decoded = msg)
      | Error e -> Alcotest.fail ("codec: " ^ e))
    msgs;
  (match Raft_codec.msg_of_json (Obs.Json.Obj [ ("type", Obs.Json.String "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown msg type accepted")

let test_transport_envelope () =
  let msg =
    Raft_types.Append_entries
      {
        term = 1;
        leader_id = 0;
        prev_log_index = 0;
        prev_log_term = 0;
        entries = [ { Raft_types.term = 1; index = 1; command = Data 1 } ];
        leader_commit = 0;
      }
  in
  let line =
    Replica.Transport.envelope_to_line ~src:0 ~dst:2 msg
      ~payloads:[ (1, {|{"op":"barrier"}|}) ]
  in
  match Replica.Transport.envelope_of_line line with
  | Ok (0, 2, decoded, [ (1, bytes) ]) ->
      Alcotest.(check bool) "msg survives" true (decoded = msg);
      Alcotest.(check string) "payload survives" {|{"op":"barrier"}|} bytes
  | Ok _ -> Alcotest.fail "wrong envelope fields"
  | Error e -> Alcotest.fail e

let test_state_dedup () =
  let st = State.create () in
  let op = Command.Put_scenario { name = "x"; scenario = scenario_a; nonce = 0 } in
  let id = Command.id op in
  Alcotest.(check bool) "first apply" true (State.apply st ~seq:1 op ~id = `Applied);
  Alcotest.(check bool)
    "second apply is a duplicate" true
    (State.apply st ~seq:2 op ~id = `Duplicate);
  let c = State.counts st in
  Alcotest.(check int) "one dedup skip" 1 c.State.dedup_skips;
  Alcotest.(check int) "store holds one entry" 1 c.State.store_size;
  (match State.get st "x" with
  | Some e -> Alcotest.(check int) "first seq wins" 1 e.State.seq
  | None -> Alcotest.fail "entry missing");
  (* Barriers are never duplicates and mutate nothing. *)
  Alcotest.(check bool)
    "barrier applies" true
    (State.apply st ~seq:3 Command.Barrier ~id:(Command.id Command.Barrier)
    = `Applied);
  Alcotest.(check bool)
    "barrier applies again" true
    (State.apply st ~seq:4 Command.Barrier ~id:(Command.id Command.Barrier)
    = `Applied)

let test_storage_roundtrip () =
  let dir = tmp_dir "probcons-replica-storage" in
  let snap =
    {
      Storage.term = 3;
      voted_for = Some 1;
      log =
        [
          { Raft_types.term = 1; index = 1; command = Raft_types.Data 1 };
          { Raft_types.term = 3; index = 2; command = Raft_types.Data 2 };
        ];
      payloads = [ (1, {|{"op":"barrier"}|}); (2, {|{"op":"barrier"}|}) ];
    }
  in
  Storage.save ~dir snap;
  (match Storage.load ~dir with
  | Ok (Some loaded) ->
      Alcotest.(check bool) "snapshot round-trips" true (loaded = snap)
  | Ok None -> Alcotest.fail "snapshot missing"
  | Error e -> Alcotest.fail e);
  (* Corrupt file must be an error, not an empty boot. *)
  let oc = open_out (Storage.path ~dir) in
  output_string oc "{\"schema\":\"nope\"}";
  close_out oc;
  (match Storage.load ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt snapshot accepted");
  Alcotest.(check bool)
    "absent dir loads None" true
    (Storage.load ~dir:(tmp_dir "probcons-replica-empty") = Ok None)

let test_wire_replica_kinds () =
  let roundtrip q =
    let body = Wire.encode_request { Wire.id = 9; query = q } in
    match Wire.parse_request body with
    | Ok { Wire.id = 9; query } ->
        Alcotest.(check bool) "query round-trips" true (query = q)
    | Ok _ -> Alcotest.fail "wrong id"
    | Error (_, code, msg) ->
        Alcotest.fail (Printf.sprintf "%s: %s" (Wire.code_string code) msg)
  in
  roundtrip (Wire.Scenario_put { name = "a.b-c_1"; scenario = scenario_a; nonce = 0 });
  roundtrip (Wire.Scenario_put { name = "z"; scenario = scenario_b; nonce = 12 });
  roundtrip (Wire.Scenario_get { name = "a"; linearizable = false });
  roundtrip (Wire.Scenario_get { name = "a"; linearizable = true });
  roundtrip Wire.Replica_status;
  List.iter
    (fun q ->
      Alcotest.(check bool) "replica-plane queries are not cacheable" false
        (Wire.cacheable q))
    [
      Wire.Scenario_put { name = "a"; scenario = scenario_a; nonce = 0 };
      Wire.Scenario_get { name = "a"; linearizable = false };
      Wire.Replica_status;
    ];
  (* A not_leader error carries its redirect hint through the wire. *)
  let line = Wire.encode_error ~hint:2 ~id:(Some 4) Wire.Not_leader "try 2" in
  match Wire.parse_response line with
  | Ok { Wire.rid = Some 4; body = Error (Wire.Not_leader, _); rhint = Some 2 } ->
      ()
  | Ok _ -> Alcotest.fail "hint did not round-trip"
  | Error e -> Alcotest.fail e

(* ---- in-process clusters ------------------------------------------ *)

let cluster_config ?chaos ?state_dir ?(wire_max = Wire.protocol_version) ~base
    ~n i =
  {
    (Node.default_config ~id:i ~n ~base_port:base
       ~service_port:(Driver.service_port ~base_port:base ~replicas:n i))
    with
    Node.chaos;
    wire_max;
    state_dir =
      (match state_dir with None -> None | Some root -> Some (Filename.concat root (string_of_int i)));
    workers = 2;
  }

let with_cluster ?chaos ?state_dir ?wire_max_of ~n f =
  let base = fresh_base () in
  let nodes =
    Array.init n (fun i ->
        let wire_max =
          match wire_max_of with None -> Wire.protocol_version | Some g -> g i
        in
        ref
          (Some
             (Node.start (cluster_config ?chaos ?state_dir ~wire_max ~base ~n i))))
  in
  let stop_all () =
    Array.iter
      (fun slot ->
        match !slot with
        | Some node ->
            slot := None;
            Node.stop node
        | None -> ())
      nodes
  in
  Fun.protect ~finally:stop_all (fun () -> f ~base ~nodes)

let live_nodes nodes =
  Array.to_list nodes |> List.filter_map (fun slot -> !slot)

let wait_leader nodes =
  Alcotest.(check bool)
    "a leader emerges" true
    (poll (fun () -> List.exists Node.is_leader (live_nodes nodes)));
  List.find Node.is_leader (live_nodes nodes)

let multi_of ?wire ~base ~n () =
  Client.Multi.create ?wire ~timeout:8.
    (List.init n (fun i ->
         Client.Tcp (Driver.service_port ~base_port:base ~replicas:n i)))

let expect_ok what = function
  | Ok j -> j
  | Error (code, msg) ->
      Alcotest.fail
        (Printf.sprintf "%s failed: %s: %s" what (Wire.code_string code) msg)

let test_e2e_put_get () =
  with_cluster ~n:3 (fun ~base ~nodes ->
      let _leader = wait_leader nodes in
      let multi = multi_of ~base ~n:3 () in
      Fun.protect ~finally:(fun () -> Client.Multi.close multi) @@ fun () ->
      let put =
        expect_ok "put"
          (Client.Multi.call multi ~id:1
             (Wire.Scenario_put { name = "alpha"; scenario = scenario_a; nonce = 0 }))
      in
      Alcotest.(check bool)
        "put acknowledged" true
        (Obs.Json.member "stored" put = Some (Obs.Json.Bool true));
      let got =
        expect_ok "linearizable get"
          (Client.Multi.call multi ~id:2
             (Wire.Scenario_get { name = "alpha"; linearizable = true }))
      in
      Alcotest.(check bool)
        "linearizable get finds the put" true
        (Obs.Json.member "found" got = Some (Obs.Json.Bool true));
      (match Obs.Json.member "scenario" got with
      | Some sj ->
          Alcotest.(check bool)
            "stored scenario round-trips" true
            (Probcons.Scenario.of_json sj = Ok scenario_a)
      | None -> Alcotest.fail "reply carries no scenario");
      let missing =
        expect_ok "get of missing name"
          (Client.Multi.call multi ~id:3
             (Wire.Scenario_get { name = "ghost"; linearizable = true }))
      in
      Alcotest.(check bool)
        "missing name reads as absent" true
        (Obs.Json.member "found" missing = Some (Obs.Json.Bool false));
      (* A duplicate put (same canonical bytes) is acknowledged without
         a second application. *)
      let dup =
        expect_ok "duplicate put"
          (Client.Multi.call multi ~id:4
             (Wire.Scenario_put { name = "alpha"; scenario = scenario_a; nonce = 0 }))
      in
      Alcotest.(check bool)
        "duplicate flagged" true
        (Obs.Json.member "duplicate" dup = Some (Obs.Json.Bool true));
      let status =
        expect_ok "status"
          (Client.Multi.call multi ~id:5 Wire.Replica_status)
      in
      Alcotest.(check bool)
        "status carries the schema" true
        (Obs.Json.member "schema" status
        = Some (Obs.Json.String "probcons-replica-status/1"));
      (* Followers converge to the same applied state. *)
      Alcotest.(check bool)
        "all replicas converge" true
        (poll (fun () ->
             match live_nodes nodes with
             | first :: rest ->
                 let d node = (Node.state_counts node).State.digest in
                 let s node = (Node.state_counts node).State.store_size in
                 List.for_all
                   (fun node -> d node = d first && s node = s first)
                   rest
                 && s first = 1
             | [] -> false)))

let test_failover_and_restart () =
  let root = tmp_dir "probcons-replica-failover" in
  with_cluster ~state_dir:root ~n:3 (fun ~base ~nodes ->
      let leader = wait_leader nodes in
      let leader_id = Node.id leader in
      let multi = multi_of ~base ~n:3 () in
      Fun.protect ~finally:(fun () -> Client.Multi.close multi) @@ fun () ->
      ignore
        (expect_ok "put a"
           (Client.Multi.call multi ~id:1
              (Wire.Scenario_put { name = "a"; scenario = scenario_a; nonce = 0 })));
      (* Kill the leader: the client must fail over to the new leader
         elected by the surviving majority. *)
      (match !(nodes.(leader_id)) with
      | Some node ->
          nodes.(leader_id) := None;
          Node.stop node
      | None -> Alcotest.fail "leader slot empty");
      ignore
        (expect_ok "put b after failover"
           (Client.Multi.call ~timeout:12. multi ~id:2
              (Wire.Scenario_put { name = "b"; scenario = scenario_b; nonce = 0 })));
      let survivor = wait_leader nodes in
      Alcotest.(check bool)
        "a different replica leads" true
        (Node.id survivor <> leader_id);
      (* Restart the killed replica from its durable state: it must
         catch up to both writes. *)
      nodes.(leader_id) :=
        Some
          (Node.start
             (cluster_config ~state_dir:root ~wire_max:Wire.protocol_version
                ~base ~n:3 leader_id));
      Alcotest.(check bool)
        "restarted replica catches up" true
        (poll ~timeout:20. (fun () ->
             match !(nodes.(leader_id)) with
             | Some node ->
                 let c = Node.state_counts node in
                 c.State.store_size = 2 && c.State.missing_payloads = 0
             | None -> false));
      (* No acknowledged write was lost anywhere. *)
      let got =
        expect_ok "read back a"
          (Client.Multi.call multi ~id:3
             (Wire.Scenario_get { name = "a"; linearizable = true }))
      in
      Alcotest.(check bool)
        "write a survived the failover" true
        (Obs.Json.member "found" got = Some (Obs.Json.Bool true)))

(* Satellite: a seeded chaos plan black-holing every outbound link of
   the leader mid-append must cost leadership, not consistency — a new
   leader emerges, the retried write lands exactly once, and after the
   link heals all replicas converge to identical state. *)
let test_chaos_blackhole_leader () =
  let passthrough = Service.Chaos.passthrough_plan ~seed:7 () in
  with_cluster ~chaos:passthrough ~n:3 (fun ~base ~nodes ->
      let leader = wait_leader nodes in
      let leader_id = Node.id leader in
      let multi = multi_of ~base ~n:3 () in
      Fun.protect ~finally:(fun () -> Client.Multi.close multi) @@ fun () ->
      ignore
        (expect_ok "put before the partition"
           (Client.Multi.call multi ~id:1
              (Wire.Scenario_put { name = "pre"; scenario = scenario_a; nonce = 0 })));
      (* Black-hole the leader's outbound links. *)
      Node.set_chaos_plan leader
        { passthrough with Service.Chaos.blackhole_p = 1.0 };
      ignore
        (expect_ok "put during the partition"
           (Client.Multi.call ~timeout:15. multi ~id:2
              (Wire.Scenario_put { name = "mid"; scenario = scenario_b; nonce = 0 })));
      let new_leader = wait_leader nodes in
      Alcotest.(check bool)
        "leadership moved off the black-holed replica" true
        (Node.id new_leader <> leader_id);
      (* Heal and require full convergence with no duplicate apply. *)
      Node.set_chaos_plan leader passthrough;
      Alcotest.(check bool)
        "replicas converge after healing" true
        (poll ~timeout:20. (fun () ->
             let counts = List.map Node.state_counts (live_nodes nodes) in
             match counts with
             | first :: rest ->
                 List.for_all
                   (fun (c : State.counts) ->
                     c.State.digest = first.State.digest
                     && c.State.store_size = first.State.store_size)
                   rest
                 && first.State.store_size = 2
                 && List.for_all
                      (fun (c : State.counts) -> c.State.missing_payloads = 0)
                      counts
             | [] -> false)))

(* Satellite: failing over onto a replica that only speaks newline
   framing must renegotiate that endpoint instead of assuming the
   previous endpoint's binary framing. *)
let test_multi_mixed_wire () =
  with_cluster
    ~wire_max_of:(fun i -> if i = 0 then 2 else Wire.protocol_version)
    ~n:3
    (fun ~base ~nodes ->
      ignore (wait_leader nodes);
      let multi = multi_of ~wire:3 ~base ~n:3 () in
      Fun.protect ~finally:(fun () -> Client.Multi.close multi) @@ fun () ->
      (* The first call lands on endpoint 0 (a --wire 2 replica): the
         binary-frame goodbye must downgrade that endpoint and retry it,
         not poison the call. *)
      let status =
        expect_ok "status through a wire-2 replica"
          (Client.Multi.call multi ~id:1 Wire.Replica_status)
      in
      Alcotest.(check bool)
        "status answered" true
        (Obs.Json.member "id" status <> None);
      Alcotest.(check int)
        "endpoint 0 renegotiated down to wire 2" 2
        (Client.Multi.negotiated_wire multi 0);
      (* Writes still reach the leader wherever it is. *)
      ignore
        (expect_ok "put through the mixed deployment"
           (Client.Multi.call ~timeout:12. multi ~id:2
              (Wire.Scenario_put { name = "mixed"; scenario = scenario_a; nonce = 0 }))))

(* ---- measurement harness helpers ---------------------------------- *)

let markov =
  match Faultmodel.Failure_process.markov ~fail_rate:1.0 ~recover_rate:2.0 with
  | Ok p -> p
  | Error e -> failwith e

let test_driver_schedule () =
  let mk seed =
    Driver.kill_schedule ~seed ~replicas:5 ~process:markov
      ~hours_per_second:0.125 ~duration_seconds:60.
  in
  let a = mk 42 and b = mk 42 and c = mk 43 in
  Alcotest.(check bool) "schedule is seed-deterministic" true (a = b);
  Alcotest.(check bool) "different seeds differ" true (a <> c);
  Alcotest.(check bool) "schedule is non-trivial" true (List.length a > 0);
  let sorted =
    List.for_all2
      (fun (x : Driver.event) (y : Driver.event) ->
        x.Driver.at_seconds <= y.Driver.at_seconds)
      (List.filteri (fun i _ -> i < List.length a - 1) a)
      (List.tl a)
  in
  Alcotest.(check bool) "events sorted by time" true sorted;
  List.iter
    (fun (e : Driver.event) ->
      Alcotest.(check bool)
        "events lie within the run" true
        (e.Driver.at_seconds >= 0. && e.Driver.at_seconds <= 60. /. 0.125 *. 8.))
    a

let test_driver_prediction_and_artifact () =
  let midpoints = [ 2.5; 7.5; 12.5; 17.5 ] in
  match
    Driver.predicted_windows ~replicas:3 ~process:markov ~hours_per_second:0.125
      ~midpoints_seconds:midpoints
  with
  | Error e -> Alcotest.fail e
  | Ok predictions ->
      Alcotest.(check int) "one prediction per window" 4 (List.length predictions);
      List.iter
        (fun p ->
          Alcotest.(check bool) "prediction is a probability" true
            (p >= 0. && p <= 1.))
        predictions;
      let windows =
        List.mapi
          (fun i p ->
            {
              Driver.index = i;
              t_mid_seconds = List.nth midpoints i;
              ok = 5;
              total = 6;
              predicted = p;
            })
          predictions
      in
      let cfg =
        {
          Driver.replicas = 3;
          base_port = 47100;
          seed = 42;
          process = markov;
          hours_per_second = 0.125;
          duration_seconds = 20.;
          window_seconds = 5.;
          probes_per_window = 6;
          tolerance = 0.25;
          chaos = None;
          wire = Wire.protocol_version;
          state_root = "/tmp/unused";
          child_argv = (fun ~id:_ -> [||]);
          log = ignore;
        }
      in
      let j =
        Driver.artifact cfg ~windows ~writes_acked:10 ~writes_lost:0 ~kills:3
          ~restarts:2
      in
      Alcotest.(check bool)
        "artifact carries the schema" true
        (Obs.Json.member "schema" j = Some (Obs.Json.String Driver.schema));
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (field ^ " present") true
            (Obs.Json.member field j <> None))
        [
          "replicas"; "process"; "windows"; "measured_mean"; "predicted_mean";
          "abs_error"; "tolerance"; "writes_acked"; "writes_lost"; "kills";
          "restarts";
        ]

let suite =
  [
    Alcotest.test_case "command codec" `Quick test_command_codec;
    Alcotest.test_case "raft message codec" `Quick test_raft_codec;
    Alcotest.test_case "transport envelope" `Quick test_transport_envelope;
    Alcotest.test_case "state machine dedup" `Quick test_state_dedup;
    Alcotest.test_case "durable storage round-trip" `Quick test_storage_roundtrip;
    Alcotest.test_case "wire replica query kinds" `Quick test_wire_replica_kinds;
    Alcotest.test_case "cluster put/get/linearizable" `Slow test_e2e_put_get;
    Alcotest.test_case "leader failover and crash restart" `Slow
      test_failover_and_restart;
    Alcotest.test_case "chaos blackhole costs leadership not consistency" `Slow
      test_chaos_blackhole_leader;
    Alcotest.test_case "multi-endpoint mixed wire renegotiation" `Slow
      test_multi_mixed_wire;
    Alcotest.test_case "kill schedule determinism" `Quick test_driver_schedule;
    Alcotest.test_case "prediction and artifact shape" `Quick
      test_driver_prediction_and_artifact;
  ]
