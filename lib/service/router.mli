(** Dispatch parsed wire queries onto the analysis libraries.

    Pure with respect to the request: for a fixed query the payload is
    deterministic (same tree, same field order, same ["%.17g"] float
    rendering), which is what lets {!Cache} replay responses byte for
    byte. Handlers run whatever engine the libraries pick — count DP,
    Poisson binomial, exact enumeration — all deterministic at the
    sizes {!Wire} admits.

    [Stats] and [Ping] are the queries the router cannot answer (they
    describe the {e server}, not the maths); {!Server} intercepts them
    before dispatch and this module returns [Internal] for them. *)

val handle : Wire.query -> (Obs.Json.t, Wire.error_code * string) result
(** Never raises: handler exceptions map to [Internal]. *)
