(** Stake-weighted (proof-of-stake style) reliability model.

    The paper's §2: "stake in blockchain systems captures a similar
    idea: nodes with higher stake have more to lose... and thus are
    considered more trustworthy", and its related work covers
    stake-based protocols that assume more than f {e stake} never
    fails. Here the threshold is over stake, not node count, so the
    predicate depends on {e which} nodes fail — this model exercises
    the analysis engine's exact-enumeration path rather than the count
    DP. *)

type params = {
  stakes : float array;  (** Per-node stake (positive). *)
  byz_stake_bound : float;
      (** Safety holds while Byzantine stake fraction is strictly below
          this bound (default 1/3). *)
  live_stake_bound : float;
      (** Liveness holds while correct stake fraction is at least this
          bound (default 2/3). *)
}

val make :
  ?byz_stake_bound:float -> ?live_stake_bound:float -> float array -> params
(** Validates positivity of stakes and bounds within (0, 1]. *)

val protocol : params -> Protocol.t

val byz_stake_fraction : params -> Config.t -> float
val correct_stake_fraction : params -> Config.t -> float

val nakamoto_coefficient : params -> int
(** Smallest number of nodes whose combined stake reaches the Byzantine
    bound — the usual decentralization metric: how few compromises
    break safety. *)
