(** A replica with its individual fault profile.

    Following the paper's §2(4), a node's faults are not all of one
    kind: most manifest as crashes, a small fraction (mercurial cores,
    TEE compromises) as Byzantine behaviour. [byz_fraction] splits the
    fault curve accordingly, so a BFT analysis can weight the two
    classes differently. *)

type t = {
  id : int;
  label : string;
  curve : Fault_curve.t;
  byz_fraction : float;
      (** Fraction of faults that are Byzantine rather than crashes;
          [0.] for a pure-crash node, [1.] for a fully adversarial
          model. The paper quotes ~0.01% corruption-execution errors vs
          4% AFR, i.e. a byz_fraction of ~0.0025. *)
}

val make : ?label:string -> ?byz_fraction:float -> id:int -> Fault_curve.t -> t
(** [byz_fraction] defaults to [0.]. Raises [Invalid_argument] if it is
    outside [0, 1]. *)

val fault_probability : ?at:float -> t -> float
(** Overall fault probability, by default at the one-year mark
    (matching AFR-style quotes). *)

val byz_probability : ?at:float -> t -> float
(** Probability of a Byzantine fault: [fault_probability * byz_fraction]. *)

val crash_probability : ?at:float -> t -> float

val pp : Format.formatter -> t -> unit
