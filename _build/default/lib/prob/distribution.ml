let binomial_pmf ~n ~p k =
  if k < 0 || k > n then 0.
  else if p <= 0. then (if k = 0 then 1. else 0.)
  else if p >= 1. then (if k = n then 1. else 0.)
  else
    exp
      (Math_utils.log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. Float.log1p (-.p)))

let binomial_cdf ~n ~p k =
  if k < 0 then 0.
  else if k >= n then 1.
  else begin
    (* Sum the side with fewer terms, then complement if needed. *)
    if k <= n / 2 then begin
      let acc = ref 0. in
      for i = 0 to k do
        acc := !acc +. binomial_pmf ~n ~p i
      done;
      Math_utils.clamp_prob !acc
    end
    else begin
      let acc = ref 0. in
      for i = k + 1 to n do
        acc := !acc +. binomial_pmf ~n ~p i
      done;
      Math_utils.clamp_prob (1. -. !acc)
    end
  end

let binomial_tail_ge ~n ~p k =
  if k <= 0 then 1. else if k > n then 0. else begin
    if n - k <= n / 2 then begin
      let acc = ref 0. in
      for i = k to n do
        acc := !acc +. binomial_pmf ~n ~p i
      done;
      Math_utils.clamp_prob !acc
    end
    else Math_utils.clamp_prob (1. -. binomial_cdf ~n ~p (k - 1))
  end

let binomial_sample rng ~n ~p =
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng p then incr count
  done;
  !count

let exponential_survival ~rate t = exp (-.rate *. t)

let weibull_survival ~shape ~scale t =
  if t <= 0. then 1. else exp (-.((t /. scale) ** shape))

let weibull_hazard ~shape ~scale t =
  if t <= 0. then (if shape < 1. then infinity else if shape = 1. then 1. /. scale else 0.)
  else shape /. scale *. ((t /. scale) ** (shape -. 1.))

let weibull_sample rng ~shape ~scale =
  let u = Rng.float rng in
  scale *. ((-.Float.log1p (-.u)) ** (1. /. shape))

let exponential_fit samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Distribution.exponential_fit: empty sample";
  let mean = Math_utils.kahan_sum samples /. float_of_int n in
  if mean <= 0. then invalid_arg "Distribution.exponential_fit: nonpositive mean";
  1. /. mean

(* Right-censored profile-likelihood MLE for Weibull shape k. With d
   observed failures t_i and censored survival times c_j, the profile
   score (all sums over failures AND censored unless noted) is
     g(k) = d/k + sum_{failures} ln t_i - d * sum(s^k ln s) / sum(s^k)
   with root found by bisection (g decreases in k), after which
     scale^k = sum(s^k) / d.
   The uncensored case reduces to the textbook equation. *)
let weibull_fit_censored ~failures ~censored =
  let d = Array.length failures in
  if d < 2 then invalid_arg "Distribution.weibull_fit: need >= 2 samples";
  Array.iter
    (fun x -> if x <= 0. then invalid_arg "Distribution.weibull_fit: nonpositive sample")
    failures;
  Array.iter
    (fun x ->
      if x <= 0. then invalid_arg "Distribution.weibull_fit: nonpositive censor time")
    censored;
  let df = float_of_int d in
  let sum_log_failures = Math_utils.kahan_sum (Array.map log failures) in
  let g k =
    let sxk = ref 0. and sxkl = ref 0. in
    let add x =
      let xk = x ** k in
      sxk := !sxk +. xk;
      sxkl := !sxkl +. (xk *. log x)
    in
    Array.iter add failures;
    Array.iter add censored;
    (df /. k) +. sum_log_failures -. (df *. !sxkl /. !sxk)
  in
  (* g is decreasing in k, positive for k -> 0+. *)
  let lo = ref 1e-3 and hi = ref 1. in
  while g !hi > 0. && !hi < 1e4 do
    hi := !hi *. 2.
  done;
  let k = ref ((!lo +. !hi) /. 2.) in
  for _ = 1 to 80 do
    if g !k > 0. then lo := !k else hi := !k;
    k := (!lo +. !hi) /. 2.
  done;
  let shape = !k in
  let sxk =
    Array.fold_left (fun acc x -> acc +. (x ** shape)) 0. failures
    +. Array.fold_left (fun acc x -> acc +. (x ** shape)) 0. censored
  in
  let scale = (sxk /. df) ** (1. /. shape) in
  (shape, scale)

let weibull_fit samples = weibull_fit_censored ~failures:samples ~censored:[||]
