(* Schema check for CI-archived JSON artifacts, dispatched on the
   top-level schema tag:

   - probcons-bench/2    the bench harness's --json artifact
   - probcons-loadgen/1  the service load generator's --json artifact

   CI runs this against both before archiving; a non-zero exit fails
   the workflow rather than shipping a malformed artifact. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("FAIL: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let str key doc = Option.bind (Obs.Json.member key doc) Obs.Json.to_string_opt
let num key doc = Option.bind (Obs.Json.member key doc) Obs.Json.to_float
let int_field key doc =
  match Obs.Json.member key doc with Some (Obs.Json.Int i) -> Some i | _ -> None

(* --- probcons-bench/2 -------------------------------------------------- *)

(* Rows may reference the committed scenario file they were driven by
   (repo-relative, e.g. "bench/scenarios/p2_sim.json"). Each referenced
   file must exist — resolved against the cwd, falling back to the
   artifact's own directory — and parse under [Probcons.Scenario.of_string],
   so a bench artifact can't ship pointing at a stale or malformed spec.
   Results are memoized: artifacts reference the same few files many
   times. *)
let scenario_cache : (string, unit) Hashtbl.t = Hashtbl.create 8

let check_scenario_ref artifact_path i ref_path =
  if not (Hashtbl.mem scenario_cache ref_path) then begin
    let candidates =
      [ ref_path; Filename.concat (Filename.dirname artifact_path) ref_path ]
    in
    let resolved =
      match List.find_opt Sys.file_exists candidates with
      | Some p -> p
      | None -> fail "row %d: scenario file %S not found" i ref_path
    in
    (match Probcons.Scenario.of_string (read_file resolved) with
    | Ok _ -> ()
    | Error msg -> fail "row %d: scenario %S: %s" i ref_path msg);
    Hashtbl.add scenario_cache ref_path ()
  end

let check_row artifact_path i row =
  (match str "kernel" row with
  | Some _ -> ()
  | None -> fail "row %d: missing kernel" i);
  (match Obs.Json.member "scenario" row with
  | None -> ()
  | Some (Obs.Json.String ref_path) ->
      check_scenario_ref artifact_path i ref_path
  | Some _ -> fail "row %d: scenario must be a string path" i);
  match num "ns_per_run" row with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "row %d: ns_per_run not finite and positive (%g)" i v
  | None -> fail "row %d: missing numeric ns_per_run" i

let validate_bench path doc =
  let rows =
    match Option.bind (Obs.Json.member "rows" doc) Obs.Json.to_list with
    | Some [] -> fail "rows is empty"
    | Some rows -> rows
    | None -> fail "missing rows list"
  in
  List.iteri (check_row path) rows;
  match Obs.Json.member "metrics" doc with
  | None -> fail "missing metrics snapshot"
  | Some metrics -> (
      match Obs.Metrics.of_json metrics with
      | Error msg -> fail "metrics snapshot: %s" msg
      | Ok [] -> fail "metrics snapshot is empty"
      | Ok samples ->
          Printf.printf "%s: OK (%d rows, %d metric samples, %d scenario refs)\n"
            path (List.length rows) (List.length samples)
            (Hashtbl.length scenario_cache))

(* --- probcons-loadgen/1 ------------------------------------------------ *)

let validate_loadgen path doc =
  let require_int key =
    match int_field key doc with
    | Some i when i >= 0 -> i
    | Some i -> fail "%s must be non-negative, got %d" key i
    | None -> fail "missing integer %s" key
  in
  (match str "wire" doc with
  | Some _ -> ()
  | None -> fail "missing wire protocol name");
  let clients = require_int "clients" in
  let total = require_int "requests_total" in
  let ok = require_int "ok" in
  let errors = require_int "errors" in
  let mismatches = require_int "mismatches" in
  if clients < 1 then fail "clients must be positive";
  if total < 1 then fail "requests_total must be positive";
  if ok + errors <> total then
    fail "ok (%d) + errors (%d) does not account for requests_total (%d)" ok
      errors total;
  (match num "throughput_rps" doc with
  | Some v when Float.is_finite v && v > 0. -> ()
  | Some v -> fail "throughput_rps not finite and positive (%g)" v
  | None -> fail "missing numeric throughput_rps");
  let latency =
    match Obs.Json.member "latency_seconds" doc with
    | Some (Obs.Json.Obj _ as l) -> l
    | Some _ -> fail "latency_seconds must be an object"
    | None -> fail "missing latency_seconds"
  in
  List.iter
    (fun key ->
      match num key latency with
      | Some v when Float.is_finite v && v >= 0. -> ()
      | Some v -> fail "latency_seconds.%s not finite (%g)" key v
      | None -> fail "missing numeric latency_seconds.%s" key)
    [ "p50"; "p90"; "p99"; "max" ];
  Printf.printf "%s: OK (%d clients, %d requests, %d errors, %d mismatches)\n"
    path clients total errors mismatches

(* --- Dispatch ----------------------------------------------------------- *)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        prerr_endline "usage: validate_bench FILE.json";
        exit 2
  in
  let doc =
    match Obs.Json.of_string (read_file path) with
    | Ok doc -> doc
    | Error msg -> fail "%s: %s" path msg
  in
  match str "schema" doc with
  | Some "probcons-bench/2" -> validate_bench path doc
  | Some "probcons-loadgen/1" -> validate_loadgen path doc
  | Some other -> fail "unexpected schema %S" other
  | None -> fail "missing schema tag"
