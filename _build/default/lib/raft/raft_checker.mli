(** Safety and liveness checkers for simulated Raft runs.

    These check the paper's §3 definitions on executed traces: a run is
    {e safe} when non-failed nodes agree on committed data, and {e
    live} when every submitted operation is eventually committed at
    every non-failed node. *)

type report = {
  agreement_ok : bool;
      (** Every pair of nodes' applied sequences are prefix-compatible
          (state-machine safety). Checked across {e all} nodes — a
          crashed node's already-applied prefix must still agree. *)
  election_safety_ok : bool;
      (** At most one leader per term, from the trace. *)
  log_matching_ok : bool;
      (** Raft's Log Matching property on the raw logs: if two logs
          hold an entry with the same index and term, the logs are
          identical through that index. *)
  live : bool;
      (** Every expected command applied at every correct node. *)
  applied_counts : int array;
  violations : string list;
}

val check : Raft_cluster.t -> expected:int list -> correct:int list -> report
(** [expected] are the client commands that must have been committed;
    [correct] the node ids that never failed during the run. *)

val safe : report -> bool
(** [agreement_ok && election_safety_ok && log_matching_ok]. *)

val pp_report : Format.formatter -> report -> unit

val command_latencies :
  Raft_cluster.t -> submissions:(int * float) list -> horizon:float -> float list
(** Client-perceived latency per command: from its submission time to
    the earliest apply at any node (from the trace); commands never
    applied count as [horizon - submission] (a client timeout). Used by
    the tail-latency experiments. *)
