(** A Rabia-style replica: leaderless, quorum-intersection-free SMR.

    Slots are decided sequentially. Per slot:

    + {b Proposal exchange}: every participant broadcasts the head of
      its pending-command queue (or a null marker when idle) and
      collects [n - f] proposals. A command proposed by a strict
      majority of the whole cluster becomes the local {e candidate}.
    + {b Binary agreement biased toward null} (Rabia's Weak-MVC
      insight): input 1 when a candidate was seen, else 0, and on
      no-guidance rounds drift to 0 — deciding the null op is always
      safe, and the bias guarantees that a decided 1 is rooted in a
      strict proposal majority (so the command is recoverable from a
      correct holder). Two conflicting candidates are impossible (two
      strict majorities would intersect); deciding 0 commits a null
      operation and the commands retry in later slots.
    + {b Decision dissemination}: deciders broadcast the outcome with
      the command attached, so replicas that never saw the majority
      proposal (or halted instances) adopt and catch up.

    Tolerates [f < n/2] crashes; terminates with probability 1. *)

type config = {
  id : int;
  n : int;
  f : int;
  max_rounds_per_slot : int;  (** Safety valve (default 200). *)
  retry_interval : float;
      (** Cadence at which a node re-sends its contributions for the
          slot it is stuck on (default 750.; [0.] disables). The slot
          machinery is purely message-driven, so under message loss a
          quorum-sized participant set stalls forever without
          retransmission; re-sends are deduplicated by receivers and
          cannot change what gets decided. *)
}

val default_config : id:int -> n:int -> config

type t

val create :
  config ->
  engine:Dessim.Engine.t ->
  net:Rabia_types.msg Dessim.Network.t ->
  trace:Dessim.Trace.t ->
  t

val id : t -> int
val submit : t -> int -> unit
(** Enqueue a client command (idempotent per command id). *)

val committed : t -> int list
(** Committed non-null commands, in slot order. *)

val current_slot : t -> int
val set_down : t -> bool -> unit
val alive : t -> bool
