lib/quorum/probabilistic.ml: Float Prob
