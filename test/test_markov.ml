(* Tests for the markov library: linear algebra, CTMCs, and the
   consensus repair model, cross-checked against closed forms. *)

open Markov

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Linalg ------------------------------------------------------------ *)

let test_solve_known_system () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let x = Linalg.solve a b in
  check_float ~eps:1e-12 "x0" 1. x.(0);
  check_float ~eps:1e-12 "x1" 3. x.(1);
  (* Inputs untouched. *)
  check_float "a intact" 2. a.(0).(0);
  check_float "b intact" 5. b.(0)

let test_solve_requires_pivoting () =
  (* Zero on the diagonal forces a row swap. *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linalg.solve a [| 2.; 3. |] in
  check_float "x0" 3. x.(0);
  check_float "x1" 2. x.(1)

let test_solve_singular () =
  let a = [| [| 1.; 1. |]; [| 2.; 2. |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix") (fun () ->
      ignore (Linalg.solve a [| 1.; 2. |]))

let test_matrix_helpers () =
  let m = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let t = Linalg.transpose m in
  check_float "transpose" 3. t.(0).(1);
  let v = Linalg.mat_vec m [| 1.; 1. |] in
  check_float "mat_vec" 3. v.(0);
  check_float "mat_vec row 2" 7. v.(1);
  let id = Linalg.identity 3 in
  check_float "identity diag" 1. id.(1).(1);
  check_float "identity off" 0. id.(0).(1);
  let c = Linalg.copy m in
  c.(0).(0) <- 99.;
  check_float "copy is deep" 1. m.(0).(0)

let test_nullspace_two_state () =
  (* Two-state chain: 0 -> 1 at rate 2, 1 -> 0 at rate 1.
     Stationary: pi = (1/3, 2/3). *)
  let q = [| [| -2.; 2. |]; [| 1.; -1. |] |] in
  let pi = Linalg.solve_normalized_nullspace q in
  check_float ~eps:1e-12 "pi0" (1. /. 3.) pi.(0);
  check_float ~eps:1e-12 "pi1" (2. /. 3.) pi.(1)

(* --- Ctmc --------------------------------------------------------------- *)

let test_ctmc_validation () =
  let chain = Ctmc.create 2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Ctmc.add_rate: self-loop")
    (fun () -> Ctmc.add_rate chain ~src:0 ~dst:0 1.);
  Alcotest.check_raises "negative rate" (Invalid_argument "Ctmc.add_rate: negative rate")
    (fun () -> Ctmc.add_rate chain ~src:0 ~dst:1 (-1.));
  Alcotest.check_raises "range" (Invalid_argument "Ctmc.add_rate: state out of range")
    (fun () -> Ctmc.add_rate chain ~src:0 ~dst:5 1.)

let test_ctmc_generator_rows_sum_zero () =
  let chain = Ctmc.create 3 in
  Ctmc.add_rate chain ~src:0 ~dst:1 2.;
  Ctmc.add_rate chain ~src:0 ~dst:2 3.;
  Ctmc.add_rate chain ~src:1 ~dst:0 1.;
  let q = Ctmc.generator chain in
  for i = 0 to 2 do
    check_float ~eps:1e-12
      (Printf.sprintf "row %d" i)
      0.
      (Array.fold_left ( +. ) 0. q.(i))
  done

let test_ctmc_birth_death_steady_state () =
  (* M/M/1/2 queue: arrivals 1, service 2. pi_k ~ (1/2)^k. *)
  let chain = Ctmc.create 3 in
  Ctmc.add_rate chain ~src:0 ~dst:1 1.;
  Ctmc.add_rate chain ~src:1 ~dst:2 1.;
  Ctmc.add_rate chain ~src:1 ~dst:0 2.;
  Ctmc.add_rate chain ~src:2 ~dst:1 2.;
  let pi = Ctmc.steady_state chain in
  let z = 1. +. 0.5 +. 0.25 in
  check_float ~eps:1e-12 "pi0" (1. /. z) pi.(0);
  check_float ~eps:1e-12 "pi1" (0.5 /. z) pi.(1);
  check_float ~eps:1e-12 "pi2" (0.25 /. z) pi.(2)

let test_ctmc_absorption_time_two_state () =
  (* Single transition at rate lambda: expected time 1/lambda. *)
  let chain = Ctmc.create 2 in
  Ctmc.add_rate chain ~src:0 ~dst:1 0.25;
  check_float ~eps:1e-12 "1/lambda" 4.
    (Ctmc.expected_time_to_absorption chain ~absorbing:(fun s -> s = 1) ~start:0);
  check_float "absorbing start" 0.
    (Ctmc.expected_time_to_absorption chain ~absorbing:(fun s -> s = 1) ~start:1)

let test_ctmc_absorption_time_pure_death () =
  (* Chain 0 -> 1 -> 2 with rates 2 then 4: E = 1/2 + 1/4. *)
  let chain = Ctmc.create 3 in
  Ctmc.add_rate chain ~src:0 ~dst:1 2.;
  Ctmc.add_rate chain ~src:1 ~dst:2 4.;
  check_float ~eps:1e-12 "sum of stage times" 0.75
    (Ctmc.expected_time_to_absorption chain ~absorbing:(fun s -> s = 2) ~start:0)

let test_ctmc_absorption_unreachable () =
  let chain = Ctmc.create 3 in
  Ctmc.add_rate chain ~src:0 ~dst:1 1.;
  Ctmc.add_rate chain ~src:1 ~dst:0 1.;
  (* State 2 unreachable: infinite expected time (singular system). *)
  Alcotest.(check bool) "infinite" true
    (Ctmc.expected_time_to_absorption chain ~absorbing:(fun s -> s = 2) ~start:0
     = infinity)

let test_ctmc_absorption_probability_race () =
  (* From 0: exit to A at rate 3, to B at rate 1 -> P(A first) = 3/4. *)
  let chain = Ctmc.create 3 in
  Ctmc.add_rate chain ~src:0 ~dst:1 3.;
  Ctmc.add_rate chain ~src:0 ~dst:2 1.;
  check_float ~eps:1e-12 "race" 0.75
    (Ctmc.absorption_probability chain ~absorbing_a:(fun s -> s = 1)
       ~absorbing_b:(fun s -> s = 2) ~start:0);
  check_float "already in A" 1.
    (Ctmc.absorption_probability chain ~absorbing_a:(fun s -> s = 1)
       ~absorbing_b:(fun s -> s = 2) ~start:1)

let test_ctmc_simulation_agrees_with_absorption () =
  let chain = Ctmc.create 2 in
  Ctmc.add_rate chain ~src:0 ~dst:1 0.5;
  let rng = Prob.Rng.create 61 in
  let total = ref 0. and n = 2000 in
  for _ = 1 to n do
    match List.rev (Ctmc.simulate chain rng ~start:0 ~horizon:1e9) with
    | (t, 1) :: _ -> total := !total +. t
    | _ -> Alcotest.fail "must absorb"
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean ~ 2" true (Float.abs (mean -. 2.) < 0.15)

let test_ctmc_transient_two_state_closed_form () =
  (* On/off chain, fail rate lambda, recover rate mu, started up:
     P(down at t) = pi_down * (1 - e^{-(lambda+mu) t}). *)
  let lambda = 2e-4 and mu = 5e-3 in
  let chain = Ctmc.create 2 in
  Ctmc.add_rate chain ~src:0 ~dst:1 lambda;
  Ctmc.add_rate chain ~src:1 ~dst:0 mu;
  List.iter
    (fun t ->
      let dist = Ctmc.transient chain ~p0:[| 1.; 0. |] ~t in
      let pi = lambda /. (lambda +. mu) in
      let expected = pi *. (1. -. exp (-.(lambda +. mu) *. t)) in
      check_float ~eps:1e-9 (Printf.sprintf "p_down at %g" t) expected dist.(1);
      check_float ~eps:1e-9
        (Printf.sprintf "mass conserved at %g" t)
        1.
        (dist.(0) +. dist.(1)))
    [ 0.; 1.; 100.; 8766.; 1e6 ]

let test_failure_process_markov_matches_ctmc () =
  (* The Failure_process Markov marginal is the analytic transient of
     the very same two-state CTMC — cross-validate the closed form in
     faultmodel against the matrix-exponential path in this library. *)
  List.iter
    (fun (fail_rate, recover_rate) ->
      let process =
        Faultmodel.Failure_process.Markov { fail_rate; recover_rate }
      in
      let chain = Ctmc.create 2 in
      Ctmc.add_rate chain ~src:0 ~dst:1 fail_rate;
      Ctmc.add_rate chain ~src:1 ~dst:0 recover_rate;
      List.iter
        (fun t ->
          let dist = Ctmc.transient chain ~p0:[| 1.; 0. |] ~t in
          check_float ~eps:1e-9
            (Printf.sprintf "marginal(%g,%g) at %g" fail_rate recover_rate t)
            dist.(1)
            (Faultmodel.Failure_process.marginal process t))
        [ 0.; 0.5; 24.; 720.; 8766.; 5e4 ])
    [ (2e-4, 5e-3); (1e-3, 1e-3); (5e-2, 1e-4); (1e-6, 1.) ]

(* --- Repair model --------------------------------------------------------- *)

let test_repair_single_node () =
  (* n=1, quorum=1: MTTF = 1/lambda, availability = mu/(lambda+mu). *)
  let spec = { Repair_model.n = 1; quorum = 1; lambda = 0.01; mu = 1. } in
  check_float ~eps:1e-9 "mttf" 100. (Repair_model.mttf spec);
  check_float ~eps:1e-9 "mttr" 1. (Repair_model.mttr_cluster spec);
  check_float ~eps:1e-9 "availability" (1. /. 1.01) (Repair_model.availability spec)

let test_repair_mttdl_raid1_closed_form () =
  (* Two copies: MTTDL = (3 lambda + mu) / (2 lambda^2). *)
  let lambda = 1e-4 and mu = 0.1 in
  let spec = { Repair_model.n = 3; quorum = 2; lambda; mu } in
  let expected = ((3. *. lambda) +. mu) /. (2. *. lambda *. lambda) in
  let actual = Repair_model.mttdl spec in
  Alcotest.(check bool) "closed form" true (Float.abs (actual -. expected) /. expected < 1e-9)

let test_repair_mttf_grows_with_n () =
  let spec n = { Repair_model.n; quorum = (n / 2) + 1; lambda = 1e-4; mu = 0.05 } in
  let m3 = Repair_model.mttf (spec 3) in
  let m5 = Repair_model.mttf (spec 5) in
  let m7 = Repair_model.mttf (spec 7) in
  Alcotest.(check bool) "3 < 5" true (m3 < m5);
  Alcotest.(check bool) "5 < 7" true (m5 < m7)

let test_repair_availability_improves_with_repair_rate () =
  let spec mu = { Repair_model.n = 3; quorum = 2; lambda = 1e-3; mu } in
  Alcotest.(check bool) "faster repair, higher availability" true
    (Repair_model.availability (spec 1.) > Repair_model.availability (spec 0.01))

let test_repair_of_afr () =
  let spec = Repair_model.of_afr ~n:5 ~quorum:3 ~afr:0.08 ~mttr_hours:24. in
  check_float ~eps:1e-12 "mu" (1. /. 24.) spec.Repair_model.mu;
  (* Lambda must invert to the AFR over a year. *)
  check_float ~eps:1e-9 "lambda inverts" 0.08
    (1. -. exp (-.spec.Repair_model.lambda *. 8766.));
  Alcotest.check_raises "bad afr"
    (Invalid_argument "Repair_model.of_afr: afr must be in (0,1)") (fun () ->
      ignore (Repair_model.of_afr ~n:3 ~quorum:2 ~afr:1.5 ~mttr_hours:24.))

let test_repair_mtbf_identity () =
  let spec = { Repair_model.n = 3; quorum = 2; lambda = 1e-3; mu = 0.1 } in
  check_float ~eps:1e-6 "mtbf = mttf + mttr"
    (Repair_model.mttf spec +. Repair_model.mttr_cluster spec)
    (Repair_model.mtbf spec)

let test_repair_mttdl_exceeds_mttf () =
  (* Losing all copies of committed data requires strictly more
     failures than losing the quorum. *)
  let spec = { Repair_model.n = 5; quorum = 3; lambda = 1e-4; mu = 0.05 } in
  Alcotest.(check bool) "mttdl > mttf" true
    (Repair_model.mttdl spec > Repair_model.mttf spec)

let prop_availability_in_unit_interval =
  QCheck.Test.make ~count:50 ~name:"availability in [0,1]"
    QCheck.(triple (int_range 1 4) (float_bound_inclusive 0.01) (float_bound_inclusive 1.))
    (fun (half, lambda, mu) ->
      QCheck.assume (lambda > 1e-6 && mu > 1e-3);
      let n = (2 * half) + 1 in
      let spec = { Repair_model.n; quorum = half + 1; lambda; mu } in
      let a = Repair_model.availability spec in
      a >= 0. && a <= 1.)

let suite =
  [
    Alcotest.test_case "solve known system" `Quick test_solve_known_system;
    Alcotest.test_case "solve with pivoting" `Quick test_solve_requires_pivoting;
    Alcotest.test_case "solve singular" `Quick test_solve_singular;
    Alcotest.test_case "matrix helpers" `Quick test_matrix_helpers;
    Alcotest.test_case "nullspace two-state" `Quick test_nullspace_two_state;
    Alcotest.test_case "ctmc validation" `Quick test_ctmc_validation;
    Alcotest.test_case "generator rows sum to zero" `Quick test_ctmc_generator_rows_sum_zero;
    Alcotest.test_case "birth-death steady state" `Quick test_ctmc_birth_death_steady_state;
    Alcotest.test_case "absorption two-state" `Quick test_ctmc_absorption_time_two_state;
    Alcotest.test_case "absorption pure death" `Quick test_ctmc_absorption_time_pure_death;
    Alcotest.test_case "absorption unreachable" `Quick test_ctmc_absorption_unreachable;
    Alcotest.test_case "absorption race" `Quick test_ctmc_absorption_probability_race;
    Alcotest.test_case "simulation agrees" `Slow test_ctmc_simulation_agrees_with_absorption;
    Alcotest.test_case "transient two-state closed form" `Quick
      test_ctmc_transient_two_state_closed_form;
    Alcotest.test_case "failure process matches ctmc" `Quick
      test_failure_process_markov_matches_ctmc;
    Alcotest.test_case "repair single node" `Quick test_repair_single_node;
    Alcotest.test_case "mttdl RAID1 closed form" `Quick test_repair_mttdl_raid1_closed_form;
    Alcotest.test_case "mttf grows with n" `Quick test_repair_mttf_grows_with_n;
    Alcotest.test_case "availability vs repair rate" `Quick
      test_repair_availability_improves_with_repair_rate;
    Alcotest.test_case "of_afr" `Quick test_repair_of_afr;
    Alcotest.test_case "mtbf identity" `Quick test_repair_mtbf_identity;
    Alcotest.test_case "mttdl exceeds mttf" `Quick test_repair_mttdl_exceeds_mttf;
    QCheck_alcotest.to_alcotest prop_availability_in_unit_interval;
  ]
