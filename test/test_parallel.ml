(* The domain pool and chunked map-reduce: ordering, determinism,
   error propagation, nested-call degradation. *)

let test_map_preserves_order () =
  let r = Parallel.Pool.map ~domains:4 100 (fun i -> i * i) in
  Alcotest.(check int) "length" 100 (Array.length r);
  Array.iteri (fun i v -> Alcotest.(check int) "cell" (i * i) v) r

let test_map_sequential_matches_parallel () =
  let f i = float_of_int (i + 1) ** 1.5 in
  let a = Parallel.Pool.map ~domains:1 64 f in
  let b = Parallel.Pool.map ~domains:4 64 f in
  Alcotest.(check bool) "bit-identical" true (a = b)

let test_map_empty_and_single () =
  Alcotest.(check int) "empty" 0 (Array.length (Parallel.Pool.map ~domains:4 0 Fun.id));
  Alcotest.(check bool) "single" true (Parallel.Pool.map ~domains:4 1 (fun i -> i = 0)).(0)

let test_map_propagates_exceptions () =
  Alcotest.check_raises "task failure surfaces" (Invalid_argument "boom") (fun () ->
      ignore (Parallel.Pool.map ~domains:3 16 (fun i -> if i = 7 then invalid_arg "boom" else i)))

let test_nested_map_degrades () =
  (* A task that itself calls Pool.map must see a sequential pool. *)
  let lanes =
    Parallel.Pool.map ~domains:4 8 (fun _ ->
        Parallel.Pool.effective ~domains:4 ~tasks:8 ())
  in
  Array.iter (fun l -> Alcotest.(check int) "nested lanes" 1 l) lanes

let test_effective_caps () =
  Alcotest.(check int) "single task" 1 (Parallel.Pool.effective ~domains:8 ~tasks:1 ());
  Alcotest.(check int) "task-bound" 3 (Parallel.Pool.effective ~domains:8 ~tasks:3 ());
  Alcotest.(check int) "zero domains = sequential" 1
    (Parallel.Pool.effective ~domains:0 ~tasks:100 ())

let test_ranges_partition () =
  List.iter
    (fun total ->
      let rs = Parallel.Chunked.ranges ~total () in
      let covered = ref 0 in
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "contiguous" true (lo <= hi);
          if i = 0 then Alcotest.(check int) "starts at 0" 0 lo
          else begin
            let _, prev_hi = rs.(i - 1) in
            Alcotest.(check int) "no gap" prev_hi lo
          end;
          covered := !covered + (hi - lo))
        rs;
      Alcotest.(check int) "covers everything" (max 0 total) !covered)
    [ 0; 1; 7; 64; 65; 1000; 1 lsl 20 ]

let test_chunked_sum_deterministic () =
  let f ~lo ~hi =
    let acc = ref Prob.Math_utils.kahan_zero in
    for i = lo to hi - 1 do
      acc := Prob.Math_utils.kahan_add !acc (1. /. float_of_int (i + 1))
    done;
    Prob.Math_utils.kahan_total !acc
  in
  let s1 = Parallel.Chunked.sum ~domains:1 ~total:100_000 f in
  let s4 = Parallel.Chunked.sum ~domains:4 ~total:100_000 f in
  Alcotest.(check bool) "bit-identical harmonic sum" true (Float.equal s1 s4);
  Alcotest.(check bool) "close to ln n + gamma" true
    (Float.abs (s1 -. (log 100_000. +. 0.5772156649)) < 1e-4)

let test_chunked_count3_exact () =
  let f ~chunk:_ ~lo ~hi = (hi - lo, 2 * (hi - lo), 0) in
  let a, b, c = Parallel.Chunked.count3 ~domains:4 ~total:12_345 f in
  Alcotest.(check int) "first" 12_345 a;
  Alcotest.(check int) "second" 24_690 b;
  Alcotest.(check int) "third" 0 c

let test_rng_of_pair_streams_distinct () =
  let draws index =
    let rng = Prob.Rng.of_pair 42 index in
    List.init 8 (fun _ -> Prob.Rng.next_int64 rng)
  in
  Alcotest.(check bool) "deterministic" true (draws 0 = draws 0);
  Alcotest.(check bool) "distinct streams" true (draws 0 <> draws 1)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map seq = parallel" `Quick test_map_sequential_matches_parallel;
    Alcotest.test_case "map edge sizes" `Quick test_map_empty_and_single;
    Alcotest.test_case "map propagates exceptions" `Quick test_map_propagates_exceptions;
    Alcotest.test_case "nested map degrades" `Quick test_nested_map_degrades;
    Alcotest.test_case "effective caps" `Quick test_effective_caps;
    Alcotest.test_case "ranges partition" `Quick test_ranges_partition;
    Alcotest.test_case "chunked sum deterministic" `Quick test_chunked_sum_deterministic;
    Alcotest.test_case "count3 exact" `Quick test_chunked_count3_exact;
    Alcotest.test_case "rng of_pair streams" `Quick test_rng_of_pair_streams_distinct;
  ]
