(** Naor–Wool quality measures for quorum systems.

    The paper's related-work section points at the classical measures —
    load, capacity, availability — while noting they assume homogeneous
    failure probabilities. We provide both the classical (uniform-p)
    and the heterogeneous variants so the difference is measurable. *)

type report = {
  system : Quorum_system.t;
  min_quorum : int;
  load : float;  (** Uniform-strategy load (upper bound on system load). *)
  capacity : float;  (** 1 / load. *)
  availability : float;  (** P(live set contains a quorum). *)
  failure_probability : float;  (** 1 - availability — Naor–Wool F_p. *)
}

val evaluate : Quorum_system.t -> float array -> report
(** Heterogeneous evaluation at the given per-node fault
    probabilities. *)

val evaluate_uniform : Quorum_system.t -> p:float -> report
(** Classical evaluation with every node failing with probability
    [p]. *)

val pp_report : Format.formatter -> report -> unit

type rw_report = {
  n : int;
  r : int;  (** Read quorum size. *)
  w : int;  (** Write quorum size. *)
  consistent : bool;  (** [r + w > n]: reads see the latest write. *)
  write_serial : bool;  (** [2 w > n]: writes are totally ordered. *)
  read_availability : float;
  write_availability : float;
}

val evaluate_rw : n:int -> r:int -> w:int -> p:float -> rw_report
(** Classic read/write quorum replication: the read-vs-write
    availability trade-off at uniform node fault probability [p]. Small
    read quorums favour read availability; the consistency condition
    then forces large, fragile write quorums — the same
    structure-vs-probability tension the paper exposes in consensus. *)

val pp_rw_report : Format.formatter -> rw_report -> unit
