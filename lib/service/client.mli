(** Blocking client for the reliability-query wire protocol.

    One socket, newline-delimited requests and responses. {!call} is
    the simple request/response form; {!send_line}/{!recv_line} expose
    the raw framing so tests and the load generator can pipeline
    requests or send deliberately malformed lines. Not thread-safe —
    use one client per thread. *)

type target = Unix_path of string | Tcp of int
(** [Tcp port] connects to 127.0.0.1. *)

type t

val connect : ?retry_for:float -> target -> t
(** [retry_for] (seconds, default 0): keep retrying refused/absent
    endpoints for that long before re-raising — lets tests connect to a
    server that is still binding its socket. *)

val send_line : t -> string -> unit
(** Write [line ^ "\n"]. *)

val recv_line : t -> string option
(** Next newline-terminated line, or [None] on EOF. *)

val call_raw : t -> string -> string option
(** [send_line] then [recv_line]. *)

val call : t -> id:int -> Wire.query -> (Obs.Json.t, Wire.error_code * string) result
(** Encode, send, receive, decode. Transport failures (EOF, malformed
    response) surface as [Error (Internal, _)]. *)

val close : t -> unit
