(** Upright-style dual-threshold reliability model.

    The paper's §2(4): faults cannot simply be treated as crashes or
    Byzantine — most faults are crashes, a small fraction (mercurial
    cores, TEE compromises) are Byzantine, and classical protocols
    force an all-or-nothing choice. Upright (SOSP'09) splits the
    budget: the system stays {e live} with up to [u] failures of any
    kind and {e safe} as long as at most [r] of them are Byzantine
    ([r <= u], [n >= 2u + r + 1]).

    Under the probabilistic model this is exactly the middle ground the
    paper asks for: with per-node crash and Byzantine probabilities
    (e.g. 4% AFR crashes vs 0.01% corruption-execution errors), the
    dual-threshold system buys nearly-CFT liveness at far lower cost
    than full BFT. *)

type params = {
  n : int;
  u : int;  (** Total failures tolerated for liveness. *)
  r : int;  (** Byzantine failures tolerated for safety. *)
}

val make : n:int -> u:int -> r:int -> params
(** Validates [0 <= r <= u] and [n >= 2u + r + 1]. *)

val max_params : n:int -> r:int -> params
(** Largest liveness budget for a given Byzantine budget:
    [u = (n - r - 1) / 2]. *)

val protocol : params -> Protocol.t
(** Safe iff [|Byz| <= r]; live iff [|Byz| <= r] and
    [|Byz| + |Crashed| <= u]. *)

val compare_with_classics :
  ?at:float ->
  Faultmodel.Fleet.t ->
  (string * Analysis.result) list
(** For a fleet with mixed crash/Byzantine probabilities: analyze Raft
    (CFT — Byzantine faults void safety), PBFT (full BFT — every fault
    spends the Byzantine budget) and Upright with [r = 1] on the same
    cluster size. The comparison behind "most nodes fail by crashing
    but from time to time exhibit malicious behaviour". *)
