lib/core/tradeoff.mli: Analysis Faultmodel Format Protocol
