(* The query service: wire protocol, LRU cache, router determinism,
   and an end-to-end server exercise over a real Unix-domain socket. *)

open Service

(* --- Helpers ------------------------------------------------------- *)

let fresh_cache ~capacity =
  (* A private registry keeps cache metrics out of the global one. *)
  Cache.create ~registry:(Obs.Metrics.create ()) ~capacity ()

(* [Cache.find] returns a rendering-capable entry; most assertions
   only care about the payload string. *)
let find_payload c key = Option.map Cache.payload (Cache.find c key)

(* Threaded tests must not be able to hang the whole suite: run the
   body on its own thread and fail loudly if it overruns. *)
let with_watchdog ?(timeout = 60.) f =
  let outcome = ref None in
  let th =
    Thread.create
      (fun () ->
        outcome := Some (try Ok (f ()) with e -> Error e))
      ()
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    match !outcome with
    | Some (Ok ()) -> Thread.join th
    | Some (Error e) -> Thread.join th; raise e
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "test timed out after %gs" timeout
        else begin
          Thread.delay 0.02;
          wait ()
        end
  in
  wait ()

let temp_socket =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "probcons-test-%d-%d.sock" (Unix.getpid ()) !counter)

let code = Alcotest.testable (Fmt.of_to_string Wire.code_string) ( = )

(* --- Wire ----------------------------------------------------------- *)

let scenario ?byz_fraction ?quorums ~protocol mix =
  match Probcons.Scenario.make ?byz_fraction ?quorums ~protocol ~mix () with
  | Ok s -> s
  | Error msg -> Alcotest.failf "bad test scenario: %s" msg

let analyze ?byz_fraction ?quorums ~protocol mix =
  Wire.Analyze { scenario = scenario ?byz_fraction ?quorums ~protocol mix }

let all_queries =
  [
    analyze ~protocol:"raft" [ (5, 0.01) ];
    analyze ~protocol:"pbft" [ (4, 0.02); (3, 0.08) ];
    analyze ~byz_fraction:0.5 ~quorums:[ ("q_vc", 4) ] ~protocol:"raft"
      [ (5, 0.01) ];
    analyze ~protocol:"upright" [ (7, 0.02) ];
    Wire.Availability
      { system = Wire.Majority 5; probs = Wire.Uniform 0.01 };
    Wire.Availability
      {
        system = Wire.Threshold { n = 7; k = 5 };
        probs = Wire.Per_node [ 0.01; 0.02; 0.03; 0.04; 0.05; 0.06; 0.07 ];
      };
    Wire.Availability { system = Wire.Wheel 6; probs = Wire.Uniform 0.05 };
    Wire.Availability
      { system = Wire.Grid { rows = 3; cols = 4 }; probs = Wire.Uniform 0.02 };
    Wire.Committee { target_nines = 4.; groups = [ (4, 0.005); (6, 0.08) ] };
    Wire.Quorum_size { target_live_nines = 3.; groups = [ (9, 0.02) ] };
    Wire.Markov { n = 5; quorum = None; afr = 0.04; mttr_hours = 24. };
    Wire.Markov { n = 7; quorum = Some 4; afr = 0.08; mttr_hours = 12. };
    Wire.Plan { target_nines = 3.; groups = [ (3, 0.001); (8, 0.02) ] };
    Wire.Stats;
    Wire.Ping;
  ]

let test_wire_roundtrip () =
  List.iteri
    (fun i query ->
      let line = Wire.encode_request { Wire.id = i; query } in
      match Wire.parse_request line with
      | Ok { Wire.id; query = parsed } ->
          Alcotest.(check int) "id echoes" i id;
          Alcotest.(check bool)
            (Printf.sprintf "query %d round-trips" i)
            true (parsed = query)
      | Error (_, c, msg) ->
          Alcotest.failf "query %d failed to parse: %s (%s)" i
            (Wire.code_string c) msg)
    all_queries

let test_wire_error_codes () =
  List.iter
    (fun c ->
      Alcotest.(check (option code))
        (Wire.code_string c) (Some c)
        (Wire.code_of_string (Wire.code_string c)))
    [
      Wire.Parse_error; Wire.Unsupported_version; Wire.Bad_request;
      Wire.Unknown_kind; Wire.Overloaded; Wire.Deadline_exceeded;
      Wire.Shutting_down; Wire.Internal; Wire.Timeout; Wire.Connection_lost;
    ];
  Alcotest.(check (option code)) "unknown" None (Wire.code_of_string "nope")

let expect_error line want ~id =
  match Wire.parse_request line with
  | Ok _ -> Alcotest.failf "%S should not parse" line
  | Error (got_id, got, _) ->
      Alcotest.check code (Printf.sprintf "code for %S" line) want got;
      Alcotest.(check (option int)) (Printf.sprintf "id for %S" line) id got_id

let test_wire_parse_errors () =
  expect_error "this is not json" Wire.Parse_error ~id:None;
  expect_error "[1, 2]" Wire.Bad_request ~id:None;
  expect_error {|{"id": 3, "kind": "analyze"}|} Wire.Unsupported_version
    ~id:(Some 3);
  expect_error {|{"v": 99, "id": 4, "kind": "stats"}|} Wire.Unsupported_version
    ~id:(Some 4);
  expect_error {|{"v": 1, "id": 9, "kind": "frobnicate"}|} Wire.Unknown_kind
    ~id:(Some 9);
  expect_error {|{"v": 1, "id": 5, "kind": "analyze", "params": {"n": 0, "p": 0.5}}|}
    Wire.Bad_request ~id:(Some 5);
  expect_error {|{"v": 1, "kind": "analyze", "params": {"n": 3, "p": 1.5}}|}
    Wire.Bad_request ~id:(Some 0);
  expect_error
    {|{"v": 1, "kind": "analyze", "params": {"n": 201, "p": 0.01}}|}
    Wire.Bad_request ~id:(Some 0);
  expect_error
    {|{"v": 1, "kind": "availability", "params": {"system": {"kind": "grid", "rows": 5, "cols": 5}, "p": 0.1}}|}
    Wire.Bad_request ~id:(Some 0);
  (* Huge group counts must be rejected per group: summing them first
     would wrap native ints negative and slip past the fleet bound. *)
  expect_error
    {|{"v": 1, "kind": "analyze", "params": {"mix": [[4611686018427387903, 0.5], [2, 0.5]]}}|}
    Wire.Bad_request ~id:(Some 0);
  expect_error
    {|{"v": 1, "kind": "analyze", "params": {"mix": [[1e30, 0.5]]}}|}
    Wire.Bad_request ~id:(Some 0);
  (* Grid dimensions are bounded individually so rows * cols cannot
     wrap past the enumeration limit. *)
  expect_error
    {|{"v": 1, "kind": "availability", "params": {"system": {"kind": "grid", "rows": 3037000500, "cols": 3037000500}, "p": 0.1}}|}
    Wire.Bad_request ~id:(Some 0);
  (* Scenario-level rejections happen at parse time, before a worker
     sees the request: unknown protocols and unknown quorum keys are
     bad_request under both wire versions. *)
  expect_error
    {|{"v": 2, "id": 6, "kind": "analyze", "params": {"protocol": "paxos", "n": 3, "p": 0.01}}|}
    Wire.Bad_request ~id:(Some 6);
  expect_error
    {|{"v": 2, "kind": "analyze", "params": {"n": 5, "p": 0.01, "quorums": {"bogus": 3}}}|}
    Wire.Bad_request ~id:(Some 0);
  expect_error
    {|{"v": 2, "kind": "analyze", "params": {"protocol": "stake", "n": 40, "p": 0.01}}|}
    Wire.Bad_request ~id:(Some 0);
  (* Over-long lines are rejected before JSON parsing. *)
  let huge = "{\"v\": 1, \"pad\": \"" ^ String.make Wire.max_line_bytes 'x' ^ "\"}" in
  expect_error huge Wire.Parse_error ~id:None

let parse_ok line =
  match Wire.parse_request line with
  | Ok r -> r
  | Error (_, c, msg) ->
      Alcotest.failf "%S: %s (%s)" line (Wire.code_string c) msg

let test_wire_canonical_key () =
  (* The n/p shorthand and the equivalent one-group mix share a key,
     so semantically identical requests hit one cache entry. *)
  let a =
    parse_ok {|{"v": 1, "kind": "analyze", "params": {"n": 5, "p": 0.01}}|}
  in
  let b =
    parse_ok {|{"v": 1, "id": 7, "kind": "analyze", "params": {"mix": [[5, 0.01]]}}|}
  in
  Alcotest.(check string)
    "shorthand and mix collapse" (Wire.canonical_key a.Wire.query)
    (Wire.canonical_key b.Wire.query);
  let c =
    parse_ok {|{"v": 1, "kind": "analyze", "params": {"n": 5, "p": 0.02}}|}
  in
  Alcotest.(check bool)
    "different p, different key" true
    (Wire.canonical_key a.Wire.query <> Wire.canonical_key c.Wire.query);
  Alcotest.(check bool) "stats not cacheable" false (Wire.cacheable Wire.Stats);
  Alcotest.(check bool) "analyze cacheable" true (Wire.cacheable a.Wire.query)

let test_wire_version_upgrade () =
  (* The compatibility rule: a wire/1 request parses to the same query
     value as its wire/2 scenario equivalent — same cache key, so the
     reply payload is byte-identical by construction. *)
  let v1 =
    parse_ok
      {|{"v": 1, "id": 3, "kind": "analyze", "params": {"n": 5, "p": 0.01}}|}
  in
  let v2 =
    parse_ok
      {|{"v": 2, "id": 3, "kind": "analyze", "params": {"protocol": "raft", "mix": [[5, 0.01]]}}|}
  in
  Alcotest.(check bool) "same query value" true (v1.Wire.query = v2.Wire.query);
  Alcotest.(check string) "same cache key"
    (Wire.canonical_key v1.Wire.query)
    (Wire.canonical_key v2.Wire.query);
  (* Round-tripping a v1 request re-encodes it at the server version. *)
  let line = Wire.encode_request v1 in
  Alcotest.(check string) "re-encoded at v3" "{\"v\": 3,"
    (String.sub line 0 8);
  (* The compatibility stamp: [?v] encodes a downlevel request that
     still parses to the same query. *)
  let down = Wire.encode_request ~v:2 v1 in
  Alcotest.(check string) "downlevel stamp" "{\"v\": 2," (String.sub down 0 8);
  (match Wire.parse_request down with
  | Ok { Wire.query; _ } ->
      Alcotest.(check bool) "downlevel parses to same query" true
        (query = v1.Wire.query)
  | Error (_, c, msg) ->
      Alcotest.failf "downlevel encode failed to parse: %s (%s)"
        (Wire.code_string c) msg);
  (* Non-analyze kinds are also accepted under both versions. *)
  let m1 =
    parse_ok
      {|{"v": 1, "kind": "markov", "params": {"n": 5, "afr": 0.04, "mttr_hours": 24}}|}
  in
  let m2 =
    parse_ok
      {|{"v": 2, "kind": "markov", "params": {"n": 5, "afr": 0.04, "mttr_hours": 24}}|}
  in
  Alcotest.(check bool) "markov upgrades" true (m1.Wire.query = m2.Wire.query)

let test_wire_responses () =
  let line = Wire.encode_ok ~id:7 ~payload:{|{"x": 1}|} in
  (match Wire.parse_response line with
  | Ok { Wire.rid = Some 7; body = Ok (Obs.Json.Obj [ ("x", Obs.Json.Int 1) ]); _ }
    ->
      ()
  | _ -> Alcotest.failf "unexpected decode of %S" line);
  let line = Wire.encode_error ~id:(Some 3) Wire.Overloaded "queue full" in
  (match Wire.parse_response line with
  | Ok { Wire.rid = Some 3; body = Error (Wire.Overloaded, "queue full"); _ } -> ()
  | _ -> Alcotest.failf "unexpected decode of %S" line);
  match Wire.parse_response {|{"v": 1, "id": 1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "neither ok nor error should not decode"

(* --- Cache ----------------------------------------------------------- *)

let test_cache_eviction_order () =
  let c = fresh_cache ~capacity:2 in
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  (* Touch [a] so [b] is now least recently used. *)
  Alcotest.(check (option string)) "a hits" (Some "1") (find_payload c "a");
  Cache.add c "c" "3";
  Alcotest.(check (option string)) "b evicted" None (find_payload c "b");
  Alcotest.(check (option string)) "a survives" (Some "1") (find_payload c "a");
  Alcotest.(check (option string)) "c present" (Some "3") (find_payload c "c");
  let _, _, evictions = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 evictions

let test_cache_capacity () =
  let c = fresh_cache ~capacity:3 in
  for i = 1 to 10 do
    Cache.add c (string_of_int i) (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 3 (Cache.length c);
  let _, _, evictions = Cache.stats c in
  Alcotest.(check int) "evictions" 7 evictions;
  (* The three most recent insertions survive. *)
  List.iter
    (fun k ->
      Alcotest.(check (option string)) ("key " ^ k) (Some k) (find_payload c k))
    [ "8"; "9"; "10" ]

let test_cache_hit_stats () =
  let c = fresh_cache ~capacity:4 in
  Alcotest.(check (option string)) "cold miss" None (find_payload c "k");
  Cache.add c "k" "v";
  Alcotest.(check (option string)) "hit" (Some "v") (find_payload c "k");
  Alcotest.(check (option string)) "hit again" (Some "v") (find_payload c "k");
  let hits, misses, evictions = Cache.stats c in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "evictions" 0 evictions

let test_cache_disabled () =
  let c = fresh_cache ~capacity:0 in
  Cache.add c "k" "v";
  Alcotest.(check (option string)) "never stores" None (find_payload c "k");
  Alcotest.(check int) "empty" 0 (Cache.length c);
  let hits, misses, _ = Cache.stats c in
  Alcotest.(check int) "no hits" 0 hits;
  Alcotest.(check int) "misses counted" 1 misses

let test_cache_rendered_memo () =
  let c = fresh_cache ~capacity:2 in
  Cache.add c "k" "payload";
  let e = Option.get (Cache.find c "k") in
  let calls = ref 0 in
  let render () =
    incr calls;
    "reply"
  in
  Alcotest.(check string) "renders once" "reply"
    (Cache.rendered e ~binary:false ~id:1 ~render);
  Alcotest.(check string) "memo hit" "reply"
    (Cache.rendered e ~binary:false ~id:1 ~render);
  Alcotest.(check int) "one render" 1 !calls;
  (* Each framing memoizes independently... *)
  ignore (Cache.rendered e ~binary:true ~id:1 ~render);
  Alcotest.(check int) "binary renders separately" 2 !calls;
  ignore (Cache.rendered e ~binary:false ~id:1 ~render);
  Alcotest.(check int) "line memo survives binary render" 2 !calls;
  (* ...and an id change re-renders, replacing the memo. *)
  ignore (Cache.rendered e ~binary:false ~id:2 ~render);
  Alcotest.(check int) "id change re-renders" 3 !calls

let test_cache_readd () =
  let c = fresh_cache ~capacity:2 in
  Cache.add c "k" "first";
  Cache.add c "other" "o";
  (* Re-adding keeps the first value but refreshes recency... *)
  Cache.add c "k" "second";
  Alcotest.(check (option string)) "first value wins" (Some "first")
    (find_payload c "k");
  (* ...so the next eviction takes [other], not [k]. *)
  Cache.add c "third" "t";
  Alcotest.(check (option string)) "other evicted" None (find_payload c "other");
  Alcotest.(check (option string)) "k survives" (Some "first") (find_payload c "k")

(* --- Router ----------------------------------------------------------- *)

let json_field name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let handle_ok query =
  match Router.handle query with
  | Ok payload -> payload
  | Error (c, msg) ->
      Alcotest.failf "router error: %s (%s)" (Wire.code_string c) msg

let test_router_matches_direct () =
  let payload = handle_ok (analyze ~protocol:"raft" [ (5, 0.02) ]) in
  let fleet = Faultmodel.Fleet.uniform ~byz_fraction:0.0 ~n:5 ~p:0.02 () in
  let direct =
    Probcons.Analysis.run
      (Probcons.Raft_model.protocol (Probcons.Raft_model.default 5))
      fleet
  in
  (match json_field "p_safe_live" payload with
  | Some j ->
      Alcotest.(check (float 0.))
        "p_safe_live matches direct Analysis.run"
        direct.Probcons.Analysis.p_safe_live
        (Option.get (Obs.Json.to_float j))
  | None -> Alcotest.fail "payload lacks p_safe_live");
  match json_field "engine" payload with
  | Some (Obs.Json.String e) ->
      Alcotest.(check string) "same engine" direct.Probcons.Analysis.engine e
  | _ -> Alcotest.fail "payload lacks engine"

let test_router_deterministic () =
  List.iter
    (fun query ->
      if query <> Wire.Stats && query <> Wire.Ping then
        let a = Obs.Json.to_string (handle_ok query) in
        let b = Obs.Json.to_string (handle_ok query) in
        Alcotest.(check string) "byte-identical payloads" a b)
    all_queries

let test_router_stats_rejected () =
  (match Router.handle Wire.Stats with
  | Error (Wire.Internal, _) -> ()
  | _ -> Alcotest.fail "stats must not be routed");
  match Router.handle Wire.Ping with
  | Error (Wire.Internal, _) -> ()
  | _ -> Alcotest.fail "ping must not be routed"

let test_router_all_models () =
  (* The service answers analyze for every registry entry, and the
     payload names the protocol it dispatched to. *)
  List.iter
    (fun name ->
      let payload =
        handle_ok
          (Wire.Analyze
             {
               scenario =
                 Probcons.Scenario.uniform ~protocol:name ~n:5 ~p:0.01 ();
             })
      in
      (match json_field "engine" payload with
      | Some (Obs.Json.String _) -> ()
      | _ -> Alcotest.failf "%s payload lacks engine" name);
      match json_field "p_safe_live" payload with
      | Some j when Obs.Json.to_float j <> None -> ()
      | _ -> Alcotest.failf "%s payload lacks p_safe_live" name)
    (Probcons.Registry.names ())

let test_router_byz_override () =
  (* byz_fraction is a scenario field now, not a hardcoded constant:
     overriding it must change the answer for a crash-tolerant model. *)
  let payload byz =
    handle_ok (analyze ?byz_fraction:byz ~protocol:"raft" [ (5, 0.05) ])
  in
  let p_safe payload =
    match Option.bind (json_field "p_safe" payload) Obs.Json.to_float with
    | Some v -> v
    | None -> Alcotest.fail "payload lacks p_safe"
  in
  Alcotest.(check (float 0.))
    "default byz matches explicit 0.0"
    (p_safe (payload None))
    (p_safe (payload (Some 0.0)));
  Alcotest.(check bool) "full-byz override hurts safety" true
    (p_safe (payload (Some 1.0)) < p_safe (payload None))

let test_router_markov_default_quorum () =
  let payload =
    handle_ok (Wire.Markov { n = 5; quorum = None; afr = 0.04; mttr_hours = 24. })
  in
  match json_field "quorum" payload with
  | Some (Obs.Json.Int q) -> Alcotest.(check int) "majority quorum" 3 q
  | _ -> Alcotest.fail "payload lacks quorum"

(* --- End to end -------------------------------------------------------- *)

let base_config socket =
  {
    Server.default_config with
    Server.socket_path = Some socket;
    workers = 2;
    queue_depth = 16;
    cache_capacity = 64;
  }

let test_e2e_server () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      let server = Server.start (base_config socket) in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let query k = analyze ~protocol:"raft" [ (3 + (2 * k), 0.01) ] in
          (* Concurrent clients, each comparing full response lines per
             slot: responses must be byte-identical across clients and
             repeats (computed or cached). *)
          let per_slot = Array.make 4 None in
          let slot_mutex = Mutex.create () in
          let failure = Atomic.make None in
          let client_loop _k =
            let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                for r = 0 to 19 do
                  let slot = r mod 4 in
                  let line =
                    Wire.encode_request { Wire.id = slot; query = query slot }
                  in
                  match Client.call_raw c line with
                  | None ->
                      Atomic.set failure (Some "connection closed mid-run")
                  | Some reply -> (
                      Mutex.lock slot_mutex;
                      (match per_slot.(slot) with
                      | None -> per_slot.(slot) <- Some reply
                      | Some first ->
                          if first <> reply then
                            Atomic.set failure (Some "response bytes diverged"));
                      Mutex.unlock slot_mutex;
                      match Wire.parse_response reply with
                      | Ok { Wire.body = Ok _; _ } -> ()
                      | _ -> Atomic.set failure (Some ("bad reply: " ^ reply)))
                done)
          in
          let threads = List.init 4 (fun k -> Thread.create client_loop k) in
          List.iter Thread.join threads;
          (match Atomic.get failure with
          | Some msg -> Alcotest.fail msg
          | None -> ());
          (* A malformed line gets a structured parse_error on the same
             connection, which stays usable afterwards. *)
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (match Client.call_raw c "this is { not json" with
              | Some reply -> (
                  match Wire.parse_response reply with
                  | Ok { Wire.body = Error (Wire.Parse_error, _); _ } -> ()
                  | _ -> Alcotest.failf "expected parse_error, got %s" reply)
              | None -> Alcotest.fail "no reply to malformed request");
              (match Client.call c ~id:1 (query 0) with
              | Ok _ -> ()
              | Error (c, msg) ->
                  Alcotest.failf "connection unusable after bad request: %s (%s)"
                    (Wire.code_string c) msg);
              (* Server-side stats confirm the cache did the repeats. *)
              match Client.call c ~id:2 Wire.Stats with
              | Ok stats -> (
                  match
                    Option.bind (json_field "cache" stats) (json_field "hits")
                  with
                  | Some (Obs.Json.Int hits) ->
                      Alcotest.(check bool)
                        "cache hits on repeated queries" true (hits > 0)
                  | _ -> Alcotest.fail "stats payload lacks cache.hits")
              | Error (c, msg) ->
                  Alcotest.failf "stats failed: %s (%s)" (Wire.code_string c) msg);
          (* Graceful stop: idempotent, unlinks the socket. *)
          Server.stop server;
          Server.stop server;
          Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)))

let test_e2e_overload () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      (* One worker, one queue slot, no cache: an expensive enumeration
         holds the worker while pipelined requests pile up, so at least
         one must be shed with [overloaded] — and nothing may hang. *)
      let server =
        Server.start
          {
            Server.default_config with
            Server.socket_path = Some socket;
            workers = 1;
            queue_depth = 1;
            cache_capacity = 0;
            deadline_seconds = 60.;
          }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let expensive =
            (* 2^20-subset enumeration: slow enough to occupy the worker. *)
            Wire.Availability
              {
                system = Wire.Grid { rows = 5; cols = 4 };
                probs = Wire.Uniform 0.02;
              }
          in
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              (* Pipeline 6 requests without reading any replies. *)
              for i = 0 to 5 do
                Client.send_line c
                  (Wire.encode_request { Wire.id = i; query = expensive })
              done;
              let ok = ref 0 and overloaded = ref 0 and other = ref 0 in
              for _ = 0 to 5 do
                match Client.recv_line c with
                | None -> Alcotest.fail "server closed mid-overload"
                | Some reply -> (
                    match Wire.parse_response reply with
                    | Ok { Wire.body = Ok _; _ } -> incr ok
                    | Ok { Wire.body = Error (Wire.Overloaded, _); _ } ->
                        incr overloaded
                    | _ -> incr other)
              done;
              Alcotest.(check int) "all six answered" 6 (!ok + !overloaded + !other);
              Alcotest.(check int) "no unexpected errors" 0 !other;
              Alcotest.(check bool) "load was shed" true (!overloaded >= 1);
              Alcotest.(check bool) "some work completed" true (!ok >= 1))))

(* Cross-framing identity: the same query over wire/1 lines, wire/2
   lines and wire/3 frames returns byte-identical response bodies (the
   server always stamps its own version) — and a wire/2 client against
   the wire/3-default server negotiates down transparently, since the
   server detects framing from the first byte. *)
let test_e2e_cross_framing () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      let server = Server.start (base_config socket) in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let q = analyze ~protocol:"raft" [ (5, 0.013) ] in
          let fetch wire =
            let c =
              Client.connect ~wire ~retry_for:5. (Client.Unix_path socket)
            in
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                match
                  Client.call_line c ~id:9
                    (Wire.encode_request ~v:wire { Wire.id = 9; query = q })
                with
                | Ok reply -> reply
                | Error (code, msg) ->
                    Alcotest.failf "wire/%d call failed: %s (%s)" wire
                      (Wire.code_string code) msg)
          in
          let r1 = fetch 1 and r2 = fetch 2 and r3 = fetch 3 in
          Alcotest.(check string) "wire/1 body == wire/2 body" r2 r1;
          Alcotest.(check string) "wire/2 body == wire/3 body" r3 r2;
          Alcotest.(check string) "server stamps v3" "{\"v\": 3,"
            (String.sub r3 0 8)))

(* Pipelining: many frames outstanding on one connection; every id is
   answered exactly once (completions may arrive out of order). *)
let test_e2e_pipelining () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      let server =
        Server.start
          {
            (base_config socket) with
            Server.queue_depth = 256;
            max_pipeline = 256;
          }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              let n = 64 in
              let bodies =
                Array.init n (fun i ->
                    Wire.encode_request
                      {
                        Wire.id = i;
                        query =
                          analyze ~protocol:"raft"
                            [ (3 + (2 * (i mod 4)), 0.01) ];
                      })
              in
              Array.iter (Client.send_line c) bodies;
              let seen = Array.make n 0 in
              for _ = 1 to n do
                match Client.recv_line c with
                | None -> Alcotest.fail "connection died mid-pipeline"
                | Some reply -> (
                    match Wire.parse_response reply with
                    | Ok { Wire.rid = Some rid; body = Ok _; _ } when rid < n ->
                        seen.(rid) <- seen.(rid) + 1
                    | _ -> Alcotest.failf "bad pipelined reply: %s" reply)
              done;
              Array.iteri
                (fun i k ->
                  Alcotest.(check int)
                    (Printf.sprintf "id %d answered exactly once" i)
                    1 k)
                seen)))

(* --wire 2 gate: binary framing refused with a typed goodbye while
   line clients are untouched. *)
let test_e2e_wire_gate () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      let server =
        Server.start { (base_config socket) with Server.max_wire = 2 }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let c2 =
            Client.connect ~wire:2 ~retry_for:5. (Client.Unix_path socket)
          in
          (match Client.call c2 ~id:0 Wire.Ping with
          | Ok _ -> ()
          | Error (c, m) ->
              Alcotest.failf "wire/2 ping failed: %s (%s)" (Wire.code_string c)
                m);
          Client.close c2;
          let c3 =
            Client.connect ~wire:3 ~retry_for:5. (Client.Unix_path socket)
          in
          Fun.protect
            ~finally:(fun () -> Client.close c3)
            (fun () ->
              match Client.call ~max_attempts:1 c3 ~id:0 Wire.Ping with
              | Error ((Wire.Connection_lost | Wire.Timeout), _) -> ()
              | Ok _ -> Alcotest.fail "binary framing should have been refused"
              | Error (c, m) ->
                  Alcotest.failf "unexpected error: %s (%s)"
                    (Wire.code_string c) m)))

let test_e2e_deadline () =
  with_watchdog (fun () ->
      let socket = temp_socket () in
      (* A negative deadline makes every dequeued job stale, so the
         deadline path is exercised deterministically. *)
      let server =
        Server.start
          {
            Server.default_config with
            Server.socket_path = Some socket;
            workers = 1;
            queue_depth = 4;
            cache_capacity = 0;
            deadline_seconds = -1.;
          }
      in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let c = Client.connect ~retry_for:5. (Client.Unix_path socket) in
          Fun.protect
            ~finally:(fun () -> Client.close c)
            (fun () ->
              match
                Client.call c ~id:0 (analyze ~protocol:"raft" [ (3, 0.01) ])
              with
              | Error (Wire.Deadline_exceeded, _) -> ()
              | Ok _ -> Alcotest.fail "expected deadline_exceeded, got ok"
              | Error (c, msg) ->
                  Alcotest.failf "expected deadline_exceeded, got %s (%s)"
                    (Wire.code_string c) msg)))

let suite =
  [
    Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire error codes" `Quick test_wire_error_codes;
    Alcotest.test_case "wire parse errors" `Quick test_wire_parse_errors;
    Alcotest.test_case "wire canonical key" `Quick test_wire_canonical_key;
    Alcotest.test_case "wire version upgrade" `Quick test_wire_version_upgrade;
    Alcotest.test_case "wire responses" `Quick test_wire_responses;
    Alcotest.test_case "cache eviction order" `Quick test_cache_eviction_order;
    Alcotest.test_case "cache capacity" `Quick test_cache_capacity;
    Alcotest.test_case "cache hit stats" `Quick test_cache_hit_stats;
    Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
    Alcotest.test_case "cache re-add" `Quick test_cache_readd;
    Alcotest.test_case "cache rendered memo" `Quick test_cache_rendered_memo;
    Alcotest.test_case "router matches direct run" `Quick test_router_matches_direct;
    Alcotest.test_case "router deterministic" `Quick test_router_deterministic;
    Alcotest.test_case "router rejects stats" `Quick test_router_stats_rejected;
    Alcotest.test_case "router all models" `Quick test_router_all_models;
    Alcotest.test_case "router byz override" `Quick test_router_byz_override;
    Alcotest.test_case "router markov default quorum" `Quick
      test_router_markov_default_quorum;
    Alcotest.test_case "e2e server" `Quick test_e2e_server;
    Alcotest.test_case "e2e overload" `Quick test_e2e_overload;
    Alcotest.test_case "e2e cross-framing identity" `Quick
      test_e2e_cross_framing;
    Alcotest.test_case "e2e pipelining" `Quick test_e2e_pipelining;
    Alcotest.test_case "e2e wire gate" `Quick test_e2e_wire_gate;
    Alcotest.test_case "e2e deadline" `Quick test_e2e_deadline;
  ]
