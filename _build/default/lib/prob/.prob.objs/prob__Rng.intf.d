lib/prob/rng.mli:
