(** The protocol registry: every analyzable protocol model as a
    first-class module, dispatchable by name.

    The model family keeps growing (the motivation papers alone span
    CFT, BFT, forensic, dual-threshold, randomized and stake-weighted
    protocols), so "which protocols exist" must be data, not a variant
    type spread over four entry points. A registry entry packages a
    protocol's name, its documentation, its per-model defaults (the
    crash/Byzantine split, node-count bound, quorum-override keys) and
    the function from a {!Scenario} to an analysis result. The CLI, the
    query service, sweeps and the bench all dispatch through {!find} —
    adding a protocol is one entry in {!all}.

    Payloads: {!analyze_json} is the {e single} renderer of analysis
    results, so a CLI [analyze --json], a service reply, and a bench
    row for the same scenario are byte-identical by construction. *)

module type Protocol_model = sig
  val name : string
  (** Registry key, as written in [Scenario.protocol]. *)

  val doc : string
  (** One-line description for [probcons protocols]. *)

  val default_byz_fraction : float
  (** Fault-class split used when the scenario leaves [byz_fraction]
      unset: the fraction of each node's fault probability treated as
      Byzantine rather than crash. CFT models default to 0 (their
      analysis assumes crashes), full-BFT models to 1 (every fault
      spends the Byzantine budget); Upright uses the paper's mixed
      figure. *)

  val max_nodes : int
  (** Largest fleet the model analyzes interactively (enumeration-path
      models cap below [Scenario.max_fleet_nodes]). *)

  val quorum_keys : string list
  (** Quorum-override keys the model accepts (e.g. ["q_per"; "q_vc"]
      for Raft, ["u"; "r"] for Upright); any other key in the scenario
      is rejected. *)

  val protocol_of : Scenario.t -> (Protocol.t, string) result
  (** The validated predicate model, for callers that drive the
      analysis engine directly (bench strategy comparisons). [Error]
      for models with no predicate form (quorum availability). *)

  val validate : Scenario.t -> (unit, string) result
  (** Full scenario-against-model validation without running anything:
      node bound, quorum keys and values, stakes applicability. *)

  val analyze :
    ?domains:int ->
    ?strategy:Analysis.strategy ->
    Scenario.t ->
    (Analysis.result, string) result
  (** Validate and run. Deterministic: equal scenarios yield equal
      results for every [?domains]. [?strategy] overrides the engine's
      automatic DP-vs-enumeration selection ([Analysis.Enumeration] is
      the [--exact] escape hatch; the quorum-availability model maps it
      to exact subset enumeration). *)

  val analyze_horizon :
    ?domains:int ->
    ?strategy:Analysis.strategy ->
    Scenario.t ->
    (Analysis.horizon_point list, string) result
  (** Validate and run the per-round availability trajectory. [Error]
      when the scenario carries no [horizon]. *)
end

type entry = (module Protocol_model)

val all : unit -> entry list
(** raft, pbft, pbft-forensics, upright, benor, stake,
    quorum-availability — in that order — followed by any
    {!register}ed entries in registration order. *)

val names : unit -> string list
val find : string -> entry option

val register : entry -> unit
(** Add a protocol model implemented outside this library (the
    uncertainty-weighted selectors live in [probnative], which depends
    on this library — so they register themselves at link time rather
    than appear in the builtin list). Raises [Invalid_argument] on a
    duplicate name. *)

(** {2 Building blocks for external entries}

    What the builtin entries are made of, exported so a {!register}ed
    model validates and analyzes exactly like a builtin one. *)

val check_common :
  name:string ->
  max_nodes:int ->
  quorum_keys:string list ->
  ?stakes_ok:bool ->
  Scenario.t ->
  (unit, string) result
(** Fleet-size bound, unknown quorum-override keys, stakes
    applicability — the shared validation every entry runs first. *)

val quorum_or : Scenario.t -> string -> int -> int
(** The scenario's override for a quorum key, or the default. *)

val analyze_predicate :
  default_byz:float ->
  ?domains:int ->
  ?strategy:Analysis.strategy ->
  Scenario.t ->
  Protocol.t ->
  (Analysis.result, string) result
(** Run the analysis engine on a validated predicate model with the
    scenario's fleet (resolving [byz_fraction] against the entry
    default) — the body of every builtin [analyze]. *)

val analyze_predicate_horizon :
  default_byz:float ->
  ?domains:int ->
  ?strategy:Analysis.strategy ->
  Scenario.t ->
  Protocol.t ->
  (Analysis.horizon_point list, string) result

val validate : Scenario.t -> (unit, string) result
(** Dispatch on the scenario's protocol name; unknown names are an
    [Error] listing the known ones. *)

val analyze :
  ?domains:int ->
  ?strategy:Analysis.strategy ->
  Scenario.t ->
  (Analysis.result, string) result

val analyze_horizon :
  ?domains:int ->
  ?strategy:Analysis.strategy ->
  Scenario.t ->
  (Analysis.horizon_point list, string) result
(** Dispatch {!Protocol_model.analyze_horizon} on the scenario's
    protocol; requires the scenario to carry a [horizon]. *)

val protocol_of : Scenario.t -> (Protocol.t, string) result

val fleet_of : Scenario.t -> (Faultmodel.Fleet.t, string) result
(** The scenario's fleet with the model-resolved [byz_fraction]. *)

val payload : n:int -> Analysis.result -> Obs.Json.t
(** The one canonical result rendering: [protocol], [n], [engine],
    [p_safe], [p_live], [p_safe_live], [nines] in that order. *)

val horizon_payload :
  protocol:string ->
  n:int ->
  horizon:float ->
  rounds:int ->
  Analysis.horizon_point list ->
  Obs.Json.t
(** Canonical trajectory rendering: [protocol], [n], [horizon],
    [rounds], [min_p_live], then [trajectory] — a list whose elements
    are exactly {!payload} with the round's ["at"] prepended. *)

val analyze_json :
  ?domains:int ->
  ?strategy:Analysis.strategy ->
  Scenario.t ->
  (Obs.Json.t, string) result
(** [analyze] composed with {!payload} — what the service, the CLI
    [--json] mode and the bench all emit. A scenario carrying a
    [horizon] renders {!horizon_payload} instead; either way the bytes
    are the same across CLI, wire/2 and wire/3 by construction. *)
