(** A Ben-Or deployment in one simulator instance. *)

type t

val create :
  ?seed:int ->
  ?latency:Dessim.Network.latency ->
  ?drop_probability:float ->
  ?f:int ->
  ?common_coin:int ->
  initial_values:int list ->
  unit ->
  t
(** One node per initial value (each 0 or 1); [f] defaults to the
    maximum tolerable [(n-1)/2]. [common_coin] enables the shared
    per-round coin with the given seed. *)

val engine : t -> Dessim.Engine.t
val trace : t -> Dessim.Trace.t
val node : t -> int -> Benor_node.t
val size : t -> int

val inject : t -> Dessim.Fault_injector.plan -> unit
(** Crash plans only (Ben-Or here is the crash-fault variant). *)

val run : t -> until:float -> unit

type report = {
  agreement_ok : bool;  (** All decided nodes decided the same value. *)
  validity_ok : bool;
      (** The decision (if any) was some node's initial value — for
          binary consensus, violated only if unanimous inputs yield the
          other value. *)
  all_correct_decided : bool;
  decisions : (int * int option) list;  (** (node, decision). *)
  max_round : int;  (** Largest decision round among deciders. *)
}

val check : t -> correct:int list -> report

val message_stats : t -> int * int
(** [(sent, delivered)] network message counters — the communication
    cost the paper's related work (probabilistic quorums, committee
    sampling) trades against. *)
