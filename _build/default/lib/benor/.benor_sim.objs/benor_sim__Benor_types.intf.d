lib/benor/benor_types.mli: Format
