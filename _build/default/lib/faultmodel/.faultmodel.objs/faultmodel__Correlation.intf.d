lib/faultmodel/correlation.mli: Fleet Prob
