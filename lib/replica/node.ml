module Raft_node = Raft_sim.Raft_node
module Raft_types = Raft_sim.Raft_types
module Wire = Service.Wire
module Server = Service.Server

type config = {
  id : int;
  n : int;
  base_port : int;
  service_port : int;
  seed : int;
  state_dir : string option;
  wire_max : int;
  workers : int;
  chaos : Service.Chaos.plan option;
  tick_seconds : float;
  staleness_budget_seconds : float;
  commit_timeout_seconds : float;
}

let default_config ~id ~n ~base_port ~service_port =
  {
    id;
    n;
    base_port;
    service_port;
    seed = 42;
    state_dir = None;
    wire_max = Wire.protocol_version;
    workers = 2;
    chaos = None;
    tick_seconds = 0.004;
    staleness_budget_seconds = 1.0;
    commit_timeout_seconds = 4.0;
  }

let raft_port cfg peer = cfg.base_port + peer

(* Link proxies live in a flat region above the raft listeners: the
   proxy replica [i] runs in front of its link to peer [j] listens on
   [base + n + i*n + j]. The proxy is owned by the source process, so
   killing a replica also kills its outbound links. *)
let link_port cfg ~src ~dst = cfg.base_port + cfg.n + (src * cfg.n) + dst

let link_plan plan ~src ~dst =
  { plan with Service.Chaos.seed = plan.Service.Chaos.seed + (src * 97) + dst }

type waiter = {
  w_mu : Mutex.t;
  mutable w_result : (Obs.Json.t, Server.reply_error) result option;
}

type status = {
  s_role : string;
  s_term : int;
  s_leader : int option;
  s_commit : int;
  s_last_contact : float;
}

type outboxed = { ob_dst : int; ob_line : string }

type t = {
  cfg : config;
  engine : Dessim.Engine.t;
  net : Raft_types.msg Dessim.Network.t;
  raft : Raft_node.t;
  state : State.t;
  payloads : (int, string) Hashtbl.t; (* pump thread only *)
  waiters : (int, waiter) Hashtbl.t; (* pump thread only *)
  submit_mu : Mutex.t;
  mutable submit_q : (Command.op * waiter option) list; (* newest first *)
  inbound_mu : Mutex.t;
  mutable inbound_q : (int * Raft_types.msg * (int * string) list) list;
  outbox : outboxed list ref; (* pump thread only, filled during Engine.run *)
  senders : Transport.Sender.t option array;
  mutable listener : Transport.Listener.t option;
  mutable proxies : Service.Chaos.t array;
  mutable proxy_ids : int array; (* proxies.(i) fronts the link to proxy_ids.(i) *)
  status_mu : Mutex.t;
  mutable status : status;
  mutable server : Server.t option;
  stop_flag : bool Atomic.t;
  mutable pump_thread : Thread.t option;
  start_wall : float;
  mutable next_seq : int;
  mutable leader_epoch : bool * int;
  mutable persisted_mark : (int * int option * int * int) option;
}

let resolve waiter result =
  Mutex.lock waiter.w_mu;
  if waiter.w_result = None then waiter.w_result <- Some result;
  Mutex.unlock waiter.w_mu

let read_status t =
  Mutex.lock t.status_mu;
  let s = t.status in
  Mutex.unlock t.status_mu;
  s

let not_leader_error t =
  let s = read_status t in
  let hint =
    match s.s_leader with Some l when l <> t.cfg.id -> Some l | _ -> None
  in
  Error
    {
      Server.code = Wire.Not_leader;
      msg = "not the leader";
      hint;
    }

(* ---- pump-thread internals ---------------------------------------- *)

let max_data_seq log =
  List.fold_left
    (fun acc (e : Raft_types.entry) ->
      match e.command with Data s -> max acc s | Config _ -> acc)
    0 log

let refresh_next_seq t =
  let epoch = (Raft_node.is_leader t.raft, Raft_node.current_term t.raft) in
  if epoch <> t.leader_epoch then (
    t.leader_epoch <- epoch;
    (* A fresh leader continues the dense sequence after everything in
       its log; the election restriction guarantees no committed
       sequence number can collide with the new assignments. *)
    if fst epoch then
      t.next_seq <-
        max t.next_seq (1 + max_data_seq (Raft_node.log_entries t.raft)))

let put_reply ~name ~seq ~duplicate =
  Ok
    (Obs.Json.Obj
       (("stored", Obs.Json.Bool true)
       :: ("name", Obs.Json.String name)
       :: ("command_seq", Obs.Json.Int seq)
       :: (if duplicate then [ ("duplicate", Obs.Json.Bool true) ] else [])))

let reply_for_op op ~seq ~duplicate =
  match op with
  | Command.Put_scenario { name; _ } -> put_reply ~name ~seq ~duplicate
  | Command.Warm _ ->
      Ok (Obs.Json.Obj [ ("warmed", Obs.Json.Bool true) ])
  | Command.Barrier ->
      Ok (Obs.Json.Obj [ ("barrier", Obs.Json.Bool true) ])

let on_apply t (entry : Raft_types.entry) =
  match entry.command with
  | Config _ -> ()
  | Data seq -> (
      t.next_seq <- max t.next_seq (seq + 1);
      match Hashtbl.find_opt t.payloads seq with
      | None -> State.note_missing_payload t.state
      | Some bytes -> (
          (match Command.of_string bytes with
          | Error _ -> State.note_missing_payload t.state
          | Ok op ->
              let outcome = State.apply t.state ~seq op ~id:bytes in
              let duplicate = outcome = `Duplicate in
              (match Hashtbl.find_opt t.waiters seq with
              | None -> ()
              | Some w -> resolve w (reply_for_op op ~seq ~duplicate)));
          Hashtbl.remove t.waiters seq))

let handle_submit t (op, waiter) =
  if not (Raft_node.is_leader t.raft) then
    Option.iter (fun w -> resolve w (not_leader_error t)) waiter
  else (
    refresh_next_seq t;
    let bytes = Command.id op in
    match op with
    | (Command.Put_scenario _ | Command.Warm _) when State.seen t.state bytes
      ->
        (* Already applied: answer from the state machine, no log
           traffic — the idempotency fast path for client retries. *)
        let seq =
          match op with
          | Command.Put_scenario { name; _ } -> (
              match State.get t.state name with
              | Some e -> e.State.seq
              | None -> 0)
          | _ -> 0
        in
        Option.iter
          (fun w -> resolve w (reply_for_op op ~seq ~duplicate:true))
          waiter
    | _ ->
        let seq = t.next_seq in
        Hashtbl.replace t.payloads seq bytes;
        if Raft_node.submit t.raft seq then (
          t.next_seq <- seq + 1;
          Option.iter (fun w -> Hashtbl.replace t.waiters seq w) waiter)
        else (
          Hashtbl.remove t.payloads seq;
          Option.iter (fun w -> resolve w (not_leader_error t)) waiter))

let fail_waiters_if_deposed t =
  if not (Raft_node.is_leader t.raft) && Hashtbl.length t.waiters > 0 then (
    let err = not_leader_error t in
    Hashtbl.iter (fun _ w -> resolve w err) t.waiters;
    Hashtbl.reset t.waiters)

let maybe_persist t =
  match t.cfg.state_dir with
  | None -> ()
  | Some dir ->
      let term, voted_for, log = Raft_node.persistent_state t.raft in
      let mark =
        match log with
        | [] -> (term, voted_for, 0, 0)
        | _ ->
            let last = List.nth log (List.length log - 1) in
            (term, voted_for, last.Raft_types.index, last.Raft_types.term)
      in
      if t.persisted_mark <> Some mark then (
        let payloads =
          Hashtbl.fold (fun seq bytes acc -> (seq, bytes) :: acc) t.payloads []
          |> List.sort compare
        in
        Storage.save ~dir { Storage.term; voted_for; log; payloads };
        t.persisted_mark <- Some mark)

let update_status t ~now ~had_inbound =
  let is_leader = Raft_node.is_leader t.raft in
  let hint = Raft_node.leader_hint t.raft in
  Mutex.lock t.status_mu;
  let last_contact =
    if is_leader || (had_inbound && hint <> None) then now
    else t.status.s_last_contact
  in
  t.status <-
    {
      s_role = (if is_leader then "leader" else "follower");
      s_term = Raft_node.current_term t.raft;
      s_leader = hint;
      s_commit = Raft_node.commit_index t.raft;
      s_last_contact = last_contact;
    };
  Mutex.unlock t.status_mu

let pump t =
  while not (Atomic.get t.stop_flag) do
    (* 1. Inject inbound raft traffic: payloads land in the table
       before the message that references them is processed. *)
    Mutex.lock t.inbound_mu;
    let inbound = List.rev t.inbound_q in
    t.inbound_q <- [];
    Mutex.unlock t.inbound_mu;
    List.iter
      (fun (src, msg, payloads) ->
        List.iter
          (fun (seq, bytes) -> Hashtbl.replace t.payloads seq bytes)
          payloads;
        if src >= 0 && src < t.cfg.n && src <> t.cfg.id then
          Dessim.Network.send t.net ~src ~dst:t.cfg.id msg)
      inbound;
    (* 2. Drain client submissions onto the log. *)
    Mutex.lock t.submit_mu;
    let submits = List.rev t.submit_q in
    t.submit_q <- [];
    Mutex.unlock t.submit_mu;
    List.iter (handle_submit t) submits;
    (* 3. Advance the virtual clock to wall-clock elapsed ms. *)
    let now = Unix.gettimeofday () in
    let until = (now -. t.start_wall) *. 1000. in
    if until > Dessim.Engine.now t.engine then
      Dessim.Engine.run ~until t.engine;
    fail_waiters_if_deposed t;
    (* 4. Persist dirty raft state BEFORE flushing outbound messages:
       a reply acknowledging an append never leaves the process ahead
       of the log bytes it promises. *)
    maybe_persist t;
    (* 5. Flush the outbox to the per-peer senders. *)
    let out = List.rev !(t.outbox) in
    t.outbox := [];
    List.iter
      (fun { ob_dst; ob_line } ->
        match t.senders.(ob_dst) with
        | Some sender -> Transport.Sender.send sender ob_line
        | None -> ())
      out;
    update_status t ~now ~had_inbound:(inbound <> []);
    Thread.delay t.cfg.tick_seconds
  done

(* ---- worker-lane handler ------------------------------------------ *)

let enqueue t op waiter =
  Mutex.lock t.submit_mu;
  t.submit_q <- (op, waiter) :: t.submit_q;
  Mutex.unlock t.submit_mu

let submit_and_wait t op =
  let w = { w_mu = Mutex.create (); w_result = None } in
  enqueue t op (Some w);
  let deadline = Unix.gettimeofday () +. t.cfg.commit_timeout_seconds in
  let rec wait () =
    Mutex.lock w.w_mu;
    let r = w.w_result in
    Mutex.unlock w.w_mu;
    match r with
    | Some r -> r
    | None ->
        if Unix.gettimeofday () > deadline then
          Error
            {
              Server.code = Wire.Deadline_exceeded;
              msg = "commit timed out";
              hint = None;
            }
        else (
          Thread.delay 0.002;
          wait ())
  in
  wait ()

let staleness_ms s =
  Float.max 0. ((Unix.gettimeofday () -. s.s_last_contact) *. 1000.)

let read_reply t name ~staleness =
  match State.get t.state name with
  | Some e ->
      let scenario_json =
        match Obs.Json.of_string e.State.scenario with
        | Ok j -> j
        | Error _ -> Obs.Json.Null
      in
      Ok
        (Obs.Json.Obj
           [
             ("found", Obs.Json.Bool true);
             ("name", Obs.Json.String name);
             ("scenario", scenario_json);
             ("nonce", Obs.Json.Int e.State.nonce);
             ("command_seq", Obs.Json.Int e.State.seq);
             ("staleness_ms", Obs.Json.number staleness);
           ])
  | None ->
      Ok
        (Obs.Json.Obj
           [
             ("found", Obs.Json.Bool false);
             ("name", Obs.Json.String name);
             ("staleness_ms", Obs.Json.number staleness);
           ])

let status_json t =
  let s = read_status t in
  let c = State.counts t.state in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "probcons-replica-status/1");
      ("id", Obs.Json.Int t.cfg.id);
      ("n", Obs.Json.Int t.cfg.n);
      ("role", Obs.Json.String s.s_role);
      ("term", Obs.Json.Int s.s_term);
      ( "leader_hint",
        match s.s_leader with
        | None -> Obs.Json.Null
        | Some l -> Obs.Json.Int l );
      ("commit_index", Obs.Json.Int s.s_commit);
      ("applied", Obs.Json.Int c.State.applied);
      ("store_size", Obs.Json.Int c.State.store_size);
      ("warm_size", Obs.Json.Int c.State.warm_size);
      ("dedup_skips", Obs.Json.Int c.State.dedup_skips);
      ("missing_payloads", Obs.Json.Int c.State.missing_payloads);
      ("digest", Obs.Json.Int c.State.digest);
      ("staleness_ms", Obs.Json.number (staleness_ms s));
    ]

let plain_get t name =
  let s = read_status t in
  let staleness = staleness_ms s in
  if
    s.s_role <> "leader"
    && staleness > t.cfg.staleness_budget_seconds *. 1000.
  then
    (* Too stale for the read contract: refuse and point at the
       leader rather than serve an unbounded-lag answer. *)
    match not_leader_error t with
    | Error e -> Error { e with Server.msg = "replica too stale for reads" }
    | Ok _ -> assert false
  else read_reply t name ~staleness

let handler t (query : Wire.query) :
    (Obs.Json.t, Server.reply_error) result =
  match query with
  | Wire.Replica_status -> Ok (status_json t)
  | Wire.Scenario_put { name; scenario; nonce } ->
      submit_and_wait t (Command.Put_scenario { name; scenario; nonce })
  | Wire.Scenario_get { name; linearizable = false } -> plain_get t name
  | Wire.Scenario_get { name; linearizable = true } -> (
      match submit_and_wait t Command.Barrier with
      | Error e -> Error e
      | Ok _ -> read_reply t name ~staleness:0.)
  | (Wire.Analyze _ | Wire.Fleet_ingest _) as q -> (
      let key = Wire.canonical_key q in
      match State.warm_lookup t.state key with
      | Some payload -> (
          match Obs.Json.of_string payload with
          | Ok j -> Ok j
          | Error _ -> Server.router_handler q)
      | None ->
          let r = Server.router_handler q in
          (match r with
          | Ok json when (read_status t).s_role = "leader" ->
              (* Fire-and-forget: warming is an optimization, not a
                 durability promise, so the reply does not wait for
                 the commit. *)
              enqueue t
                (Command.Warm { key; payload = Obs.Json.to_string json })
                None
          | _ -> ());
          r)
  | q -> Server.router_handler q

(* ---- lifecycle ---------------------------------------------------- *)

let start (cfg : config) =
  if cfg.n < 1 || cfg.id < 0 || cfg.id >= cfg.n then
    invalid_arg "Replica.Node.start: id out of range";
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    cfg.state_dir;
  let engine = Dessim.Engine.create ~seed:(cfg.seed + cfg.id) () in
  let net =
    Dessim.Network.create ~engine ~n:cfg.n ~latency:(Dessim.Network.Fixed 1.)
      ()
  in
  let trace = Dessim.Trace.create () in
  let raft =
    Raft_node.create
      (Raft_node.default_config ~id:cfg.id ~n:cfg.n)
      ~engine ~net ~trace
  in
  let t =
    {
      cfg;
      engine;
      net;
      raft;
      state = State.create ();
      payloads = Hashtbl.create 256;
      waiters = Hashtbl.create 16;
      submit_mu = Mutex.create ();
      submit_q = [];
      inbound_mu = Mutex.create ();
      inbound_q = [];
      outbox = ref [];
      senders = Array.make cfg.n None;
      listener = None;
      proxies = [||];
      proxy_ids = [||];
      status_mu = Mutex.create ();
      status =
        {
          s_role = "follower";
          s_term = 0;
          s_leader = None;
          s_commit = 0;
          s_last_contact = Unix.gettimeofday ();
        };
      server = None;
      stop_flag = Atomic.make false;
      pump_thread = None;
      start_wall = Unix.gettimeofday ();
      next_seq = 1;
      leader_epoch = (false, 0);
      persisted_mark = None;
    }
  in
  (* Crash recovery: load the durable snapshot before any message or
     timer has run; committed entries re-apply through the hook. *)
  (match cfg.state_dir with
  | None -> ()
  | Some dir -> (
      match Storage.load ~dir with
      | Error msg -> failwith ("replica " ^ string_of_int cfg.id ^ ": " ^ msg)
      | Ok None -> ()
      | Ok (Some snap) ->
          Raft_node.restore raft ~term:snap.Storage.term
            ~voted_for:snap.Storage.voted_for ~log:snap.Storage.log;
          List.iter
            (fun (seq, bytes) -> Hashtbl.replace t.payloads seq bytes)
            snap.Storage.payloads;
          t.next_seq <- 1 + max_data_seq snap.Storage.log));
  Raft_node.set_apply_hook raft (on_apply t);
  (* Outbound raft messages: collect into the pump-local outbox with
     command payloads piggybacked for any Data entries. *)
  for peer = 0 to cfg.n - 1 do
    if peer <> cfg.id then
      Dessim.Network.set_handler net peer (fun ~src:_ msg ->
          let payloads =
            match msg with
            | Raft_types.Append_entries { entries; _ } ->
                List.filter_map
                  (fun (e : Raft_types.entry) ->
                    match e.command with
                    | Data seq ->
                        Option.map
                          (fun bytes -> (seq, bytes))
                          (Hashtbl.find_opt t.payloads seq)
                    | Config _ -> None)
                  entries
            | _ -> []
          in
          t.outbox :=
            {
              ob_dst = peer;
              ob_line =
                Transport.envelope_to_line ~src:cfg.id ~dst:peer msg ~payloads;
            }
            :: !(t.outbox))
  done;
  (* Chaos proxies sit on this replica's outbound links only, so each
     ordered pair (src, dst) has exactly one fault-injecting hop owned
     by the source process. *)
  (match cfg.chaos with
  | None -> ()
  | Some plan ->
      let ids = ref [] and proxies = ref [] in
      for peer = 0 to cfg.n - 1 do
        if peer <> cfg.id then (
          let proxy =
            Service.Chaos.start
              ~plan:(link_plan plan ~src:cfg.id ~dst:peer)
              ~listen:(Service.Client.Tcp (link_port cfg ~src:cfg.id ~dst:peer))
              ~upstream:(Service.Client.Tcp (raft_port cfg peer))
          in
          ids := peer :: !ids;
          proxies := proxy :: !proxies)
      done;
      t.proxy_ids <- Array.of_list (List.rev !ids);
      t.proxies <- Array.of_list (List.rev !proxies));
  for peer = 0 to cfg.n - 1 do
    if peer <> cfg.id then
      let port =
        if cfg.chaos = None then raft_port cfg peer
        else link_port cfg ~src:cfg.id ~dst:peer
      in
      t.senders.(peer) <- Some (Transport.Sender.start ~port)
  done;
  t.listener <-
    Some
      (Transport.Listener.start ~port:(raft_port cfg cfg.id)
         ~deliver:(fun ~src ~dst msg ~payloads ->
           if dst = cfg.id then (
             Mutex.lock t.inbound_mu;
             t.inbound_q <- (src, msg, payloads) :: t.inbound_q;
             Mutex.unlock t.inbound_mu)));
  t.pump_thread <- Some (Thread.create pump t);
  t.server <-
    Some
      (Server.start
         {
           Server.default_config with
           tcp_port = Some cfg.service_port;
           workers = cfg.workers;
           max_wire = cfg.wire_max;
           handler = handler t;
         });
  t

let stop t =
  (match t.server with
  | Some server ->
      t.server <- None;
      Server.stop server
  | None -> ());
  Atomic.set t.stop_flag true;
  Option.iter Thread.join t.pump_thread;
  t.pump_thread <- None;
  Option.iter Transport.Listener.stop t.listener;
  t.listener <- None;
  Array.iteri
    (fun i sender ->
      Option.iter Transport.Sender.stop sender;
      t.senders.(i) <- None)
    t.senders;
  Array.iter Service.Chaos.stop t.proxies;
  t.proxies <- [||]

let set_chaos_plan t plan =
  Array.iter (fun proxy -> Service.Chaos.set_plan proxy plan) t.proxies

let set_chaos_plan_to t ~peer plan =
  Array.iteri
    (fun i p ->
      if t.proxy_ids.(i) = peer then Service.Chaos.set_plan p plan)
    t.proxies

let id t = t.cfg.id
let service_port t = t.cfg.service_port
let is_leader t = (read_status t).s_role = "leader"
let term t = (read_status t).s_term
let leader_hint t = (read_status t).s_leader
let state_counts t = State.counts t.state
