(** Safety and liveness checkers for simulated PBFT runs. *)

type report = {
  agreement_ok : bool;
      (** Executed command sequences of non-Byzantine nodes are
          prefix-compatible. Byzantine nodes are excluded: their local
          state is meaningless. *)
  live : bool;  (** Every expected command executed at every correct node. *)
  executed_counts : int array;
  view_changes : int;  (** Number of view-change announcements in the trace. *)
  violations : string list;
}

val check :
  Pbft_cluster.t -> expected:int list -> correct:int list -> honest:int list -> report
(** [correct] — nodes that neither crashed nor turned Byzantine (must
    be live); [honest] — nodes that are not Byzantine (crashed nodes
    included; their executed prefixes must still agree). *)

val pp_report : Format.formatter -> report -> unit
