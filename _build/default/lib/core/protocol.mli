(** Protocol reliability models.

    A protocol model classifies each failure configuration as safe
    and/or live, exactly as the paper's §3 does: "we deem a
    configuration safe if all of its system runs ensure agreement
    across non-failed nodes", and live if all runs commit all
    operations. The analysis engine then weights configurations by
    probability.

    A predicate always carries a [full] form over configurations; when
    its truth depends only on the number of Byzantine and crashed nodes
    (true of Theorems 3.1 and 3.2), the [by_count] fast path lets the
    engine use the joint-count dynamic program instead of enumerating
    [2^N] subsets. *)

type predicate = {
  full : Config.t -> bool;
  by_count : (byz:int -> crashed:int -> bool) option;
}

type t = {
  name : string;
  n : int;  (** Cluster size the model is specialized to. *)
  safe : predicate;
  live : predicate;
}

val count_predicate : n:int -> (byz:int -> crashed:int -> bool) -> predicate
(** Build both forms from a count function. *)

val full_predicate : (Config.t -> bool) -> predicate

val pred_and : predicate -> predicate -> predicate
val pred_or : predicate -> predicate -> predicate
val pred_not : predicate -> predicate

val always : n:int -> predicate
val never : n:int -> predicate
