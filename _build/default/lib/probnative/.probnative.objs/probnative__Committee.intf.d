lib/probnative/committee.mli: Faultmodel Prob Probcons
