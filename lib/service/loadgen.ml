type result = {
  clients : int;
  requests_total : int;
  ok : int;
  errors : int;
  errors_by_code : (string * int) list;
  mismatches : int;
  elapsed_seconds : float;
  throughput_rps : float;
  latency : Obs.Metrics.hist_summary;
  server_stats : Obs.Json.t option;
  cache_hit_rate : float option;
}

(* Cheap, pairwise-distinct analysis queries: small odd fleets with
   distinct fault probabilities, so each pool slot is its own cache
   entry but no slot costs more than a count-DP over n <= 11. Requests
   are built from real scenarios and encoded through
   [Scenario.to_json], so the generator exercises the server's actual
   cache-key canonicalization, not a hand-built string. *)
let query_pool distinct =
  Array.init distinct (fun i ->
      let mix = [ ((2 * (i mod 5)) + 3, 0.01 +. (0.001 *. float_of_int i)) ] in
      match Probcons.Scenario.make ~protocol:"raft" ~mix () with
      | Ok scenario -> Wire.Analyze { scenario }
      | Error msg -> invalid_arg ("Loadgen.query_pool: " ^ msg))

let json_field name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let run ?(clients = 4) ?(requests = 200) ?(distinct = 8) ?timeout
    ?expected_from ~target () =
  let clients = max 1 clients
  and requests = max 1 requests
  and distinct = max 1 distinct in
  let pool = query_pool distinct in
  let lines =
    Array.init distinct (fun slot ->
        Wire.encode_request { Wire.id = slot; query = pool.(slot) })
  in
  let registry = Obs.Metrics.create ~enabled:true () in
  let m_latency =
    Obs.Metrics.histogram ~registry ~family:"loadgen" "latency_seconds"
  in
  let ok = Atomic.make 0
  and errors = Atomic.make 0
  and mismatches = Atomic.make 0 in
  (* The reference response line for each pool slot; every reply for
     that slot must match it byte for byte. Seeded from a clean direct
     connection when [expected_from] is given (so a proxy between
     loadgen and server cannot corrupt the baseline itself), otherwise
     from the first full reply seen. *)
  let expected = Array.make distinct None in
  let expected_mutex = Mutex.create () in
  (match expected_from with
  | None -> ()
  | Some direct ->
      let c = Client.connect ~retry_for:5. direct in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Array.iteri
            (fun slot line ->
              match Client.call_line c ~id:slot line with
              | Ok reply -> expected.(slot) <- Some reply
              | Error (code, msg) ->
                  invalid_arg
                    (Printf.sprintf
                       "Loadgen.run: baseline fetch for slot %d failed: %s: %s"
                       slot (Wire.code_string code) msg))
            lines));
  let check_identical slot line =
    Mutex.lock expected_mutex;
    (match expected.(slot) with
    | None -> expected.(slot) <- Some line
    | Some first -> if not (String.equal first line) then Atomic.incr mismatches);
    Mutex.unlock expected_mutex
  in
  let by_code : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let by_code_mutex = Mutex.create () in
  let record_error code =
    Atomic.incr errors;
    let name = Wire.code_string code in
    Mutex.lock by_code_mutex;
    Hashtbl.replace by_code name
      (1 + Option.value ~default:0 (Hashtbl.find_opt by_code name));
    Mutex.unlock by_code_mutex
  in
  let client_loop k =
    let backoff = { Client.default_backoff with seed = k } in
    let c = Client.connect ~retry_for:5. ~backoff ?timeout target in
    Fun.protect
      ~finally:(fun () -> Client.close c)
      (fun () ->
        for r = 0 to requests - 1 do
          let slot = (k + r) mod distinct in
          let t0 = Unix.gettimeofday () in
          match Client.call_line c ~id:slot lines.(slot) with
          | Error (code, _) -> record_error code
          | Ok reply -> (
              Obs.Metrics.observe m_latency (Unix.gettimeofday () -. t0);
              match Wire.parse_response reply with
              | Ok { Wire.body = Ok _; _ } ->
                  Atomic.incr ok;
                  check_identical slot reply
              | Ok { Wire.body = Error (code, _); _ } -> record_error code
              | Error _ -> record_error Wire.Parse_error)
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun k -> Thread.create client_loop k) in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let stats_target = Option.value expected_from ~default:target in
  let server_stats =
    match
      let c = Client.connect ~retry_for:1. stats_target in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () -> Client.call c ~id:0 Wire.Stats)
    with
    | Ok payload -> Some payload
    | Error _ | (exception _) -> None
  in
  let cache_hit_rate =
    Option.bind server_stats (fun stats ->
        match Option.bind (json_field "cache" stats) (json_field "hit_rate") with
        | Some (Obs.Json.Float f) -> Some f
        | Some (Obs.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
  in
  let latency =
    match
      Obs.Metrics.find
        (Obs.Metrics.snapshot ~registry ())
        ~family:"loadgen" ~name:"latency_seconds"
    with
    | Some (Obs.Metrics.Histogram h) -> h
    | _ ->
        { Obs.Metrics.count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.;
          p90 = 0.; p99 = 0. }
  in
  let errors_by_code =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) by_code []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let requests_total = clients * requests in
  {
    clients;
    requests_total;
    ok = Atomic.get ok;
    errors = Atomic.get errors;
    errors_by_code;
    mismatches = Atomic.get mismatches;
    elapsed_seconds = elapsed;
    throughput_rps =
      (if elapsed > 0. then float_of_int requests_total /. elapsed else 0.);
    latency;
    server_stats;
    cache_hit_rate;
  }

let print_report r =
  Printf.printf "loadgen: %d clients x %d requests in %.3fs (%.0f req/s)\n"
    r.clients
    (r.requests_total / r.clients)
    r.elapsed_seconds r.throughput_rps;
  Printf.printf "  ok %d, errors %d, byte-identity mismatches %d\n" r.ok
    r.errors r.mismatches;
  if r.errors_by_code <> [] then begin
    Printf.printf "  errors by code:";
    List.iter (fun (name, n) -> Printf.printf " %s=%d" name n) r.errors_by_code;
    print_newline ()
  end;
  Printf.printf "  latency: p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms\n"
    (1e3 *. r.latency.Obs.Metrics.p50)
    (1e3 *. r.latency.Obs.Metrics.p90)
    (1e3 *. r.latency.Obs.Metrics.p99)
    (1e3 *. r.latency.Obs.Metrics.max);
  match r.cache_hit_rate with
  | Some rate -> Printf.printf "  server cache hit-rate: %.1f%%\n" (100. *. rate)
  | None -> Printf.printf "  server cache hit-rate: unavailable\n"

let to_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "probcons-loadgen/2");
      ("wire", Obs.Json.String Wire.protocol_name);
      ("clients", Obs.Json.Int r.clients);
      ("requests_total", Obs.Json.Int r.requests_total);
      ("ok", Obs.Json.Int r.ok);
      ("errors", Obs.Json.Int r.errors);
      ( "errors_by_code",
        Obs.Json.Obj
          (List.map (fun (name, n) -> (name, Obs.Json.Int n)) r.errors_by_code)
      );
      ("mismatches", Obs.Json.Int r.mismatches);
      ("elapsed_seconds", Obs.Json.number r.elapsed_seconds);
      ("throughput_rps", Obs.Json.number r.throughput_rps);
      ( "latency_seconds",
        Obs.Json.Obj
          [
            ("count", Obs.Json.Int r.latency.Obs.Metrics.count);
            ("p50", Obs.Json.number r.latency.Obs.Metrics.p50);
            ("p90", Obs.Json.number r.latency.Obs.Metrics.p90);
            ("p99", Obs.Json.number r.latency.Obs.Metrics.p99);
            ("min", Obs.Json.number r.latency.Obs.Metrics.min);
            ("max", Obs.Json.number r.latency.Obs.Metrics.max);
          ] );
      ( "cache_hit_rate",
        match r.cache_hit_rate with
        | Some f -> Obs.Json.number f
        | None -> Obs.Json.Null );
      ( "server_stats",
        match r.server_stats with Some s -> s | None -> Obs.Json.Null );
    ]
