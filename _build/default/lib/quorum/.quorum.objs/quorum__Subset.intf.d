lib/quorum/subset.mli: Format
