lib/sim/engine.ml: Event_queue Float Prob
