lib/probnative/failure_detector.mli:
