type reply_error = {
  code : Wire.error_code;
  msg : string;
  hint : int option;
}

type handler = Wire.query -> (Obs.Json.t, reply_error) result

(* The default worker dispatch: the pure router, no redirect hints. *)
let router_handler query =
  match Router.handle query with
  | Ok json -> Ok json
  | Error (code, msg) -> Error { code; msg; hint = None }

type config = {
  socket_path : string option;
  tcp_port : int option;
  workers : int;
  queue_depth : int;
  cache_capacity : int;
  deadline_seconds : float;
  idle_timeout_seconds : float;
  max_connections : int;
  max_pipeline : int;
  max_wire : int;
  handler : handler;
}

let default_config =
  {
    socket_path = None;
    tcp_port = None;
    workers = Parallel.Pool.default ();
    queue_depth = 64;
    cache_capacity = 1024;
    deadline_seconds = 5.;
    idle_timeout_seconds = 300.;
    max_connections = 1024;
    max_pipeline = 128;
    max_wire = Wire.protocol_version;
    handler = router_handler;
  }

(* A connection whose reply backlog exceeds this many bytes stops
   being read until the kernel drains it — the write-side backpressure
   bound that keeps a slow consumer from buffering the world. *)
let out_high_watermark = 256 * 1024

(* Reply slices below this size are coalesced into the reactor's
   scratch buffer so one syscall carries many small replies; larger
   slices (big payloads) are written directly from their own bytes. *)
let direct_write_threshold = 4096

let scratch_bytes = 64 * 1024

(* --- Metrics ----------------------------------------------------------- *)

let m_connections = Obs.Metrics.counter ~family:"service" "connections_total"
let m_requests = Obs.Metrics.counter ~family:"service" "requests_total"
let m_ok = Obs.Metrics.counter ~family:"service" "responses_ok"
let m_error = Obs.Metrics.counter ~family:"service" "responses_error"
let m_overload = Obs.Metrics.counter ~family:"service" "rejected_overload"
let m_deadline = Obs.Metrics.counter ~family:"service" "rejected_deadline"
let m_queue_depth = Obs.Metrics.gauge ~family:"service" "queue_depth"
let m_idle_closed = Obs.Metrics.counter ~family:"service" "connections_idle_closed"

let m_conn_rejected =
  Obs.Metrics.counter ~family:"service" "connections_rejected"
let m_queue_wait = Obs.Metrics.histogram ~family:"service" "queue_wait_seconds"
let m_handle = Obs.Metrics.histogram ~family:"service" "handle_seconds"

(* Reactor observability: loop turnover, how loaded each select wakeup
   is, how deep connections pipeline, and how often the write side hits
   kernel backpressure. *)
let m_loops = Obs.Metrics.counter ~family:"service" "reactor_loop_iterations"
let m_ready_fds = Obs.Metrics.histogram ~family:"service" "reactor_ready_fds"

let m_pipeline_depth =
  Obs.Metrics.histogram ~family:"service" "reactor_pipeline_depth"

let m_write_stalls =
  Obs.Metrics.counter ~family:"service" "reactor_write_stalls"

(* --- Connections -------------------------------------------------------- *)

(* Framing is detected per connection from the first byte received:
   the wire/3 frame magic can never open a JSON body, so binary and
   newline clients share one port and negotiate by just speaking. *)
type framing =
  | Undetected
  | Lines of Linebuf.t
  | Frames of Frame.decoder

type slice = { buf : string; mutable off : int }

(* Owned exclusively by the reactor thread — no locks. [key] is unique
   for the server's lifetime (never reused), so a completion arriving
   after the connection died looks up nothing and is dropped. *)
type conn = {
  fd : Unix.file_descr;
  key : int;
  mutable framing : framing;
  out : slice Queue.t;
  mutable out_bytes : int;
  mutable outstanding : int;  (* jobs dispatched, replies not yet queued *)
  mutable last_read : float;
  mutable throttled : bool;  (* read-throttle edge, for the stall count *)
}

type job = {
  conn_key : int;
  id : int;
  binary : bool;
  query : Wire.query;
  enqueued_at : float;
}

type queue = {
  jobs : job Queue.t;
  qm : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  mutable accepting : bool;
}

type t = {
  config : config;
  listeners : Unix.file_descr list;
  queue : queue;
  cache : Cache.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  completions : (int * string) Queue.t;  (* conn key, reply bytes *)
  completions_mutex : Mutex.t;
  mutable reactor_thread : Thread.t option;
  mutable worker_host : Thread.t option;
  conns : (int, conn) Hashtbl.t;  (* reactor-thread only *)
  (* Raw-request fast path, reactor-thread only: exact request body
     bytes -> full rendered reply bytes, one table per framing. A
     byte-identical request names the same query and id, and cacheable
     replies are deterministic, so the reply bytes can be replayed
     without parsing anything. Filled from the cache-hit path (which
     guarantees the entry is cacheable and already rendered); reset
     wholesale when full. *)
  raw_line : (string, string) Hashtbl.t;
  raw_frame : (string, string) Hashtbl.t;
  mutable next_conn : int;
  n_conns : int Atomic.t;
  started_at : float;
  stopped : bool Atomic.t;
  draining : bool Atomic.t;  (* stop requested: listeners close, queue drains *)
  finishing : bool Atomic.t;  (* workers joined: flush replies and exit *)
  scratch : Bytes.t;
  read_chunk : Bytes.t;
  (* Server-local tallies for the [stats] query: available even when
     the global metrics registry is disabled. *)
  n_requests : int Atomic.t;
  n_ok : int Atomic.t;
  n_error : int Atomic.t;
  n_overload : int Atomic.t;
  n_deadline : int Atomic.t;
  n_loops : int Atomic.t;
  n_write_stalls : int Atomic.t;
  max_pipeline_seen : int Atomic.t;
}

let connection_count t = Atomic.get t.n_conns

(* --- Queue -------------------------------------------------------------- *)

let try_push q job =
  Mutex.lock q.qm;
  let outcome =
    if not q.accepting then Error Wire.Shutting_down
    else if Queue.length q.jobs >= q.capacity then Error Wire.Overloaded
    else begin
      Queue.push job q.jobs;
      Obs.Metrics.set m_queue_depth (Queue.length q.jobs);
      Condition.signal q.nonempty;
      Ok ()
    end
  in
  Mutex.unlock q.qm;
  outcome

let pop q =
  Mutex.lock q.qm;
  while Queue.is_empty q.jobs && q.accepting do
    Condition.wait q.nonempty q.qm
  done;
  let job =
    if Queue.is_empty q.jobs then None
    else begin
      let j = Queue.pop q.jobs in
      Obs.Metrics.set m_queue_depth (Queue.length q.jobs);
      Some j
    end
  in
  Mutex.unlock q.qm;
  job

let close_queue q =
  Mutex.lock q.qm;
  q.accepting <- false;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.qm

(* --- Reply rendering ----------------------------------------------------- *)

(* One string per reply: [prefix payload suffix], frame-headed when the
   connection is binary. The cache memoizes the result per (framing,
   id), so an id-stable client pays this assembly once per cache entry
   and the write path gets a single preassembled slice afterwards. *)
let render_ok ~binary ~id payload =
  let prefix = Wire.ok_prefix ~id in
  let body_len =
    String.length prefix + String.length payload + String.length Wire.ok_suffix
  in
  let b =
    Buffer.create ((if binary then Frame.header_bytes else 1) + body_len)
  in
  if binary then Buffer.add_string b (Frame.header ~payload_bytes:body_len);
  Buffer.add_string b prefix;
  Buffer.add_string b payload;
  Buffer.add_string b Wire.ok_suffix;
  if not binary then Buffer.add_char b '\n';
  Buffer.contents b

let render_error ?hint ~binary ~id code msg =
  let body = Wire.encode_error ?hint ~id code msg in
  if binary then Frame.encode body else body ^ "\n"

(* --- Payloads ------------------------------------------------------------ *)

let reactor_stats t =
  Obs.Json.Obj
    [
      ("loop_iterations", Obs.Json.Int (Atomic.get t.n_loops));
      ("write_backpressure_stalls", Obs.Json.Int (Atomic.get t.n_write_stalls));
      ("max_pipeline_depth", Obs.Json.Int (Atomic.get t.max_pipeline_seen));
      ("connections", Obs.Json.Int (connection_count t));
    ]

let stats_payload t =
  let hits, misses, evictions = Cache.stats t.cache in
  let looked_up = hits + misses in
  let depth =
    Mutex.lock t.queue.qm;
    let d = Queue.length t.queue.jobs in
    Mutex.unlock t.queue.qm;
    d
  in
  Obs.Json.Obj
    [
      ("wire", Obs.Json.String Wire.protocol_name);
      ("workers", Obs.Json.Int t.config.workers);
      ( "requests",
        Obs.Json.Obj
          [
            ("total", Obs.Json.Int (Atomic.get t.n_requests));
            ("ok", Obs.Json.Int (Atomic.get t.n_ok));
            ("error", Obs.Json.Int (Atomic.get t.n_error));
            ("overloaded", Obs.Json.Int (Atomic.get t.n_overload));
            ("deadline_exceeded", Obs.Json.Int (Atomic.get t.n_deadline));
          ] );
      ( "queue",
        Obs.Json.Obj
          [
            ("capacity", Obs.Json.Int t.queue.capacity);
            ("depth", Obs.Json.Int depth);
          ] );
      ("reactor", reactor_stats t);
      ( "cache",
        Obs.Json.Obj
          [
            ("capacity", Obs.Json.Int (Cache.capacity t.cache));
            ("entries", Obs.Json.Int (Cache.length t.cache));
            ("hits", Obs.Json.Int hits);
            ("misses", Obs.Json.Int misses);
            ("evictions", Obs.Json.Int evictions);
            ( "hit_rate",
              Obs.Json.number
                (if looked_up = 0 then 0.
                 else float_of_int hits /. float_of_int looked_up) );
          ] );
    ]

(* The health-check payload: answered inline by the reactor without
   touching the queue, so it stays truthful precisely when the server
   is overloaded or draining. Deliberately cheap. *)
let ping_payload t =
  let depth, accepting =
    Mutex.lock t.queue.qm;
    let d = Queue.length t.queue.jobs and a = t.queue.accepting in
    Mutex.unlock t.queue.qm;
    (d, a)
  in
  Obs.Json.Obj
    [
      ("wire", Obs.Json.String Wire.protocol_name);
      ("uptime_seconds", Obs.Json.number (Unix.gettimeofday () -. t.started_at));
      ( "queue",
        Obs.Json.Obj
          [
            ("capacity", Obs.Json.Int t.queue.capacity);
            ("depth", Obs.Json.Int depth);
          ] );
      ("connections", Obs.Json.Int (connection_count t));
      ("accepting", Obs.Json.Bool accepting);
      ("reactor", reactor_stats t);
    ]

(* --- Reactor: write side ------------------------------------------------- *)

let enqueue_out conn bytes =
  Queue.push { buf = bytes; off = 0 } conn.out;
  conn.out_bytes <- conn.out_bytes + String.length bytes

(* Consume [n] written bytes off the front of the slice queue. *)
let consume_out conn n =
  conn.out_bytes <- conn.out_bytes - n;
  let remaining = ref n in
  while !remaining > 0 do
    let s = Queue.peek conn.out in
    let rem = String.length s.buf - s.off in
    if !remaining >= rem then begin
      ignore (Queue.pop conn.out);
      remaining := !remaining - rem
    end
    else begin
      s.off <- s.off + !remaining;
      remaining := 0
    end
  done

exception Conn_dead

(* Flush as much of [conn.out] as the kernel will take. Small slices
   are coalesced through the scratch buffer (one syscall carries many
   replies — the pipelining win); slices at or above the threshold are
   written directly from their own string, zero-copy from the reply
   cache. Raises [Conn_dead] when the peer is gone; returns when the
   queue is empty or the kernel pushes back. *)
let flush_conn t conn =
  let stalled () =
    Obs.Metrics.incr m_write_stalls;
    Atomic.incr t.n_write_stalls
  in
  let rec go () =
    if not (Queue.is_empty conn.out) then begin
      let front = Queue.peek conn.out in
      let front_rem = String.length front.buf - front.off in
      if front_rem >= direct_write_threshold then (
        match Unix.write_substring conn.fd front.buf front.off front_rem with
        | k ->
            consume_out conn k;
            if k = front_rem then go () else stalled ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            stalled ()
        | exception Unix.Unix_error _ -> raise Conn_dead)
      else begin
        (* Coalesce consecutive small slices into scratch. *)
        let filled = ref 0 in
        (try
           Queue.iter
             (fun s ->
               let rem = String.length s.buf - s.off in
               if
                 rem >= direct_write_threshold
                 || !filled + rem > scratch_bytes
               then raise Exit;
               Bytes.blit_string s.buf s.off t.scratch !filled rem;
               filled := !filled + rem)
             conn.out
         with Exit -> ());
        match Unix.write conn.fd t.scratch 0 !filled with
        | k ->
            consume_out conn k;
            if k = !filled then go () else stalled ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            stalled ()
        | exception Unix.Unix_error _ -> raise Conn_dead
      end
    end
  in
  go ()

(* --- Reactor: request handling ------------------------------------------ *)

let count_error t code =
  Obs.Metrics.incr m_error;
  Atomic.incr t.n_error;
  match code with
  | Wire.Overloaded ->
      Obs.Metrics.incr m_overload;
      Atomic.incr t.n_overload
  | Wire.Deadline_exceeded ->
      Obs.Metrics.incr m_deadline;
      Atomic.incr t.n_deadline
  | _ -> ()

let reply_error t conn ~binary ~id code msg =
  count_error t code;
  enqueue_out conn (render_error ~binary ~id code msg)

let reply_ok_json t conn ~binary ~id json =
  Obs.Metrics.incr m_ok;
  Atomic.incr t.n_ok;
  enqueue_out conn
    (render_ok ~binary ~id (Obs.Json.to_string json))

(* One parsed request body. Errors, [ping], [stats] and cache hits are
   answered inline on the reactor thread; only cache misses are
   dispatched to the worker lanes. *)
let raw_memo_capacity = 8192

let handle_body t conn ~binary body =
  Obs.Metrics.incr m_requests;
  Atomic.incr t.n_requests;
  let raw = if binary then t.raw_frame else t.raw_line in
  match Hashtbl.find_opt raw body with
  | Some reply ->
      Cache.count_hit t.cache;
      Obs.Metrics.incr m_ok;
      Atomic.incr t.n_ok;
      enqueue_out conn reply
  | None ->
  match Wire.parse_request body with
  | Error (id, code, msg) -> reply_error t conn ~binary ~id code msg
  | Ok { Wire.id; query = Wire.Ping } ->
      reply_ok_json t conn ~binary ~id (ping_payload t)
  | Ok { Wire.id; query = Wire.Stats } ->
      reply_ok_json t conn ~binary ~id (stats_payload t)
  | Ok { Wire.id; query } -> (
      let dispatch () =
        let job =
          { conn_key = conn.key; id; binary; query;
            enqueued_at = Unix.gettimeofday () }
        in
        match try_push t.queue job with
        | Ok () ->
            conn.outstanding <- conn.outstanding + 1;
            Obs.Metrics.observe m_pipeline_depth (float_of_int conn.outstanding);
            let rec bump () =
              let seen = Atomic.get t.max_pipeline_seen in
              if
                conn.outstanding > seen
                && not
                     (Atomic.compare_and_set t.max_pipeline_seen seen
                        conn.outstanding)
              then bump ()
            in
            bump ()
        | Error Wire.Overloaded ->
            reply_error t conn ~binary ~id:(Some id) Wire.Overloaded
              (Printf.sprintf "request queue full (%d deep)" t.queue.capacity)
        | Error code ->
            reply_error t conn ~binary ~id:(Some id) code "server draining"
      in
      if not (Wire.cacheable query) then dispatch ()
      else
        match Cache.find t.cache (Wire.canonical_key query) with
        | None -> dispatch ()
        | Some entry ->
            (* Hit: reply straight off the reactor, bypassing the
               worker lanes entirely. The memoized rendering makes the
               whole reply one preassembled slice for id-stable
               clients. *)
            Obs.Metrics.incr m_ok;
            Atomic.incr t.n_ok;
            let bytes =
              Cache.rendered entry ~binary ~id ~render:(fun () ->
                  render_ok ~binary ~id (Cache.payload entry))
            in
            if Hashtbl.length raw >= raw_memo_capacity then
              Hashtbl.reset raw;
            Hashtbl.replace raw body bytes;
            enqueue_out conn bytes)

(* Feed freshly read bytes through the connection's framing and handle
   every complete body. Returns [false] when the connection must die
   (framing violation or an over-long body — unrecoverable). *)
let ingest t conn chunk len =
  if conn.framing = Undetected && Bytes.get chunk 0 = Frame.magic
     && t.config.max_wire < 3
  then begin
    (* Binary framing gated off (--wire 2): a typed goodbye, then
       close. *)
    reply_error t conn ~binary:false ~id:None Wire.Unsupported_version
      "binary framing (wire/3) not enabled on this server";
    false
  end
  else begin
  if conn.framing = Undetected then
    conn.framing <-
      (if Bytes.get chunk 0 = Frame.magic then Frames (Frame.create ())
       else Lines (Linebuf.create ()));
  match conn.framing with
  | Undetected -> assert false
  | Lines lines ->
      Linebuf.feed lines chunk len;
      let rec drain () =
        match Linebuf.next lines with
        | Some line ->
            let line =
              (* Tolerate CRLF framing. *)
              let n = String.length line in
              if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
              else line
            in
            if String.trim line <> "" then
              handle_body t conn ~binary:false line;
            drain ()
        | None -> Linebuf.partial_length lines <= Wire.max_line_bytes
      in
      drain ()
  | Frames frames ->
      Frame.feed frames chunk len;
      let rec drain () =
        match Frame.next frames with
        | Ok (Some body) ->
            if String.length body > Wire.max_line_bytes then false
            else begin
              handle_body t conn ~binary:true body;
              drain ()
            end
        | Ok None -> true
        | Error e ->
            (* Framing is unrecoverable: answer with an unattributable
               typed error, flush what we can, and drop the
               connection. *)
            reply_error t conn ~binary:true ~id:None Wire.Parse_error
              (Frame.error_message e);
            false
      in
      drain ()
  end

(* --- Reactor: lifecycle -------------------------------------------------- *)

let close_conn t conn =
  Hashtbl.remove t.conns conn.key;
  Atomic.decr t.n_conns;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let drop_conn t conn = close_conn t conn

(* Over the cap: answer [overloaded] and close. The single small write
   cannot block on a fresh socket's empty buffer. Sent as a newline
   body — the legacy framing — because the client has not yet revealed
   which framing it speaks. *)
let reject_connection fd =
  Obs.Metrics.incr m_conn_rejected;
  let line =
    Wire.encode_error ~id:None Wire.Overloaded "connection limit reached" ^ "\n"
  in
  let len = String.length line in
  (try
     let rec go off =
       if off < len then go (off + Unix.write_substring fd line off (len - off))
     in
     go 0
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_ready t listener =
  let rec go () =
    match Unix.accept ~cloexec:true listener with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        if connection_count t >= t.config.max_connections then begin
          reject_connection fd;
          go ()
        end
        else begin
          Obs.Metrics.incr m_connections;
          Unix.set_nonblock fd;
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          let key = t.next_conn in
          t.next_conn <- key + 1;
          let conn =
            {
              fd;
              key;
              framing = Undetected;
              out = Queue.create ();
              out_bytes = 0;
              outstanding = 0;
              last_read = Unix.gettimeofday ();
              throttled = false;
            }
          in
          Hashtbl.replace t.conns key conn;
          Atomic.incr t.n_conns;
          go ()
        end
  in
  go ()

let drain_pipe fd =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read fd b 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* Deliver every queued worker completion to its connection (dropped
   silently when the connection died first). *)
let deliver_completions t =
  let batch =
    Mutex.lock t.completions_mutex;
    let q = Queue.create () in
    Queue.transfer t.completions q;
    Mutex.unlock t.completions_mutex;
    q
  in
  Queue.iter
    (fun (key, bytes) ->
      match Hashtbl.find_opt t.conns key with
      | None -> ()
      | Some conn ->
          conn.outstanding <- conn.outstanding - 1;
          enqueue_out conn bytes)
    batch

let read_conn t conn =
  match Unix.read conn.fd t.read_chunk 0 (Bytes.length t.read_chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn t conn
  | 0 -> drop_conn t conn
  | k -> (
      conn.last_read <- Unix.gettimeofday ();
      match ingest t conn t.read_chunk k with
      | true -> (
          (* Opportunistic flush: inline replies (hits, errors, pings)
             go out without waiting for another select round. *)
          try flush_conn t conn with Conn_dead -> drop_conn t conn)
      | false ->
          (* Unrecoverable framing: push out any last error bytes,
             then close. *)
          (try flush_conn t conn with Conn_dead -> ());
          if Hashtbl.mem t.conns conn.key then drop_conn t conn
      | exception _ -> drop_conn t conn)

(* Whether the reactor would read from this connection right now; the
   [throttled] edge counts transitions into backpressure. *)
let want_read t conn =
  let throttle =
    conn.outstanding >= t.config.max_pipeline
    || conn.out_bytes >= out_high_watermark
  in
  if throttle && not conn.throttled then begin
    conn.throttled <- true;
    Obs.Metrics.incr m_write_stalls;
    Atomic.incr t.n_write_stalls
  end
  else if not throttle then conn.throttled <- false;
  not throttle

let reactor_loop t =
  let listeners_closed = ref false in
  let flush_deadline = ref None in
  let rec loop () =
    Obs.Metrics.incr m_loops;
    Atomic.incr t.n_loops;
    let draining = Atomic.get t.draining in
    let finishing = Atomic.get t.finishing in
    if draining && not !listeners_closed then begin
      listeners_closed := true;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listeners
    end;
    if finishing && !flush_deadline = None then begin
      deliver_completions t;
      flush_deadline := Some (Unix.gettimeofday () +. 2.)
    end;
    let done_finishing () =
      finishing
      && (Hashtbl.fold (fun _ c acc -> acc && Queue.is_empty c.out) t.conns true
         || (match !flush_deadline with
            | Some d -> Unix.gettimeofday () > d
            | None -> false))
    in
    if done_finishing () then begin
      let live = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter (fun c -> close_conn t c) live
    end
    else begin
      let now = Unix.gettimeofday () in
      let idle = t.config.idle_timeout_seconds in
      (* Idle sweep: close connections silent past the budget with no
         replies in flight or pending. *)
      if idle > 0. then begin
        let stale =
          Hashtbl.fold
            (fun _ c acc ->
              if
                now -. c.last_read > idle
                && c.outstanding = 0
                && Queue.is_empty c.out
              then c :: acc
              else acc)
            t.conns []
        in
        List.iter
          (fun c ->
            Obs.Metrics.incr m_idle_closed;
            drop_conn t c)
          stale
      end;
      let reads = ref [ t.stop_r; t.wake_r ] in
      if not (draining || !listeners_closed) then
        reads := t.listeners @ !reads;
      let ready_conns = ref [] in
      let writes = ref [] in
      Hashtbl.iter
        (fun _ c ->
          if (not finishing) && want_read t c then begin
            reads := c.fd :: !reads;
            ready_conns := c :: !ready_conns
          end;
          if not (Queue.is_empty c.out) then writes := c :: !writes)
        t.conns;
      let timeout =
        if finishing then 0.05
        else if idle > 0. && Hashtbl.length t.conns > 0 then
          (* Wake for the next idle deadline; clamp to keep the sweep
             responsive without spinning. *)
          Float.max 0.05 (Float.min 30. (idle /. 4.))
        else -1.
      in
      match
        Unix.select !reads (List.map (fun c -> c.fd) !writes) [] timeout
      with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          (* A listener or pipe vanished under us mid-drain; take
             another turn and re-derive the sets. *)
          loop ()
      | readable, writable, _ ->
          Obs.Metrics.observe m_ready_fds
            (float_of_int (List.length readable + List.length writable));
          let stop_hit = List.mem t.stop_r readable in
          if stop_hit then drain_pipe t.stop_r;
          if List.mem t.wake_r readable then drain_pipe t.wake_r;
          deliver_completions t;
          if not (draining || !listeners_closed) then
            List.iter
              (fun l -> if List.mem l readable then accept_ready t l)
              t.listeners;
          List.iter
            (fun c ->
              if Hashtbl.mem t.conns c.key && List.mem c.fd readable then
                read_conn t c)
            !ready_conns;
          List.iter
            (fun c ->
              if Hashtbl.mem t.conns c.key && List.mem c.fd writable then
                try flush_conn t c with Conn_dead -> drop_conn t c)
            !writes;
          loop ()
    end
  in
  loop ();
  (* Exit: every connection is closed; drop whatever completions
     remain. *)
  Mutex.lock t.completions_mutex;
  Queue.clear t.completions;
  Mutex.unlock t.completions_mutex

(* --- Workers ------------------------------------------------------------- *)

let wake t =
  Mutex.lock t.completions_mutex;
  let first = Queue.is_empty t.completions in
  Mutex.unlock t.completions_mutex;
  ignore first;
  match Unix.write_substring t.wake_w "w" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* Pipe full: a wakeup is already pending. *)
      ()
  | exception Unix.Unix_error _ -> ()

let complete t ~conn_key bytes =
  Mutex.lock t.completions_mutex;
  Queue.push (conn_key, bytes) t.completions;
  Mutex.unlock t.completions_mutex;
  wake t

let process t (job : job) =
  let now = Unix.gettimeofday () in
  Obs.Metrics.observe m_queue_wait (now -. job.enqueued_at);
  let binary = job.binary in
  if now -. job.enqueued_at > t.config.deadline_seconds then begin
    count_error t Wire.Deadline_exceeded;
    complete t ~conn_key:job.conn_key
      (render_error ~binary ~id:(Some job.id) Wire.Deadline_exceeded
         (Printf.sprintf "queued longer than the %gs deadline"
            t.config.deadline_seconds))
  end
  else
    match Obs.Span.time m_handle (fun () -> t.config.handler job.query) with
    | Ok json ->
        let rendered = Obs.Json.to_string json in
        if Wire.cacheable job.query then
          Cache.add t.cache (Wire.canonical_key job.query) rendered;
        Obs.Metrics.incr m_ok;
        Atomic.incr t.n_ok;
        complete t ~conn_key:job.conn_key
          (render_ok ~binary ~id:job.id rendered)
    | Error { code; msg; hint } ->
        count_error t code;
        complete t ~conn_key:job.conn_key
          (render_error ?hint ~binary ~id:(Some job.id) code msg)

let worker_loop t =
  let rec go () =
    match pop t.queue with
    | None -> ()
    | Some job ->
        process t job;
        go ()
  in
  go ()

(* --- Lifecycle ----------------------------------------------------------- *)

let listen_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 64;
  fd

let start config =
  let config =
    {
      config with
      workers = max 1 config.workers;
      queue_depth = max 1 config.queue_depth;
      max_connections = max 1 config.max_connections;
      max_pipeline = max 1 config.max_pipeline;
      max_wire =
        (max Wire.min_protocol_version
           (min Wire.protocol_version config.max_wire));
    }
  in
  if config.socket_path = None && config.tcp_port = None then
    invalid_arg "Server.start: configure a socket path or a TCP port";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listeners =
    (match config.socket_path with Some p -> [ listen_unix p ] | None -> [])
    @ (match config.tcp_port with Some p -> [ listen_tcp p ] | None -> [])
  in
  List.iter Unix.set_nonblock listeners;
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Unix.set_nonblock stop_r;
  let t =
    {
      config;
      listeners;
      queue =
        {
          jobs = Queue.create ();
          qm = Mutex.create ();
          nonempty = Condition.create ();
          capacity = config.queue_depth;
          accepting = true;
        };
      cache = Cache.create ~capacity:config.cache_capacity ();
      stop_r;
      stop_w;
      wake_r;
      wake_w;
      completions = Queue.create ();
      completions_mutex = Mutex.create ();
      reactor_thread = None;
      worker_host = None;
      conns = Hashtbl.create 64;
      raw_line = Hashtbl.create 1024;
      raw_frame = Hashtbl.create 1024;
      next_conn = 0;
      n_conns = Atomic.make 0;
      started_at = Unix.gettimeofday ();
      stopped = Atomic.make false;
      draining = Atomic.make false;
      finishing = Atomic.make false;
      scratch = Bytes.create scratch_bytes;
      read_chunk = Bytes.create (64 * 1024);
      n_requests = Atomic.make 0;
      n_ok = Atomic.make 0;
      n_error = Atomic.make 0;
      n_overload = Atomic.make 0;
      n_deadline = Atomic.make 0;
      n_loops = Atomic.make 0;
      n_write_stalls = Atomic.make 0;
      max_pipeline_seen = Atomic.make 0;
    }
  in
  (* All worker lanes live inside one Pool.map call: each lane is a
     real domain running [worker_loop] until the queue drains at
     shutdown. Inside a lane the pool's nesting guard makes any
     Analysis-level parallelism sequential, so request-level
     parallelism is the only fan-out and engine labels stay
     deterministic. The lanes never touch sockets — they compute,
     render, and hand bytes back to the reactor. *)
  t.worker_host <-
    Some
      (Thread.create
         (fun () ->
           ignore
             (Parallel.Pool.map ~domains:config.workers config.workers (fun _ ->
                  worker_loop t)))
         ());
  t.reactor_thread <- Some (Thread.create (fun () -> reactor_loop t) ());
  t

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    (* 1. Drain phase: stop accepting connections and new work. The
       reactor closes the listeners; queued jobs keep flowing to the
       worker lanes; fresh requests are answered [shutting_down]. *)
    Atomic.set t.draining true;
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ());
    close_queue t.queue;
    Option.iter Thread.join t.worker_host;
    (* 2. Finish phase: every completion is in the queue; the reactor
       delivers them, flushes every connection (bounded), closes all
       sockets and exits. *)
    Atomic.set t.finishing true;
    (try ignore (Unix.write_substring t.stop_w "x" 0 1) with _ -> ());
    Option.iter Thread.join t.reactor_thread;
    (match t.config.socket_path with
    | Some path -> ( try Unix.unlink path with _ -> ())
    | None -> ());
    (try Unix.close t.stop_r with _ -> ());
    (try Unix.close t.stop_w with _ -> ());
    (try Unix.close t.wake_r with _ -> ());
    try Unix.close t.wake_w with _ -> ()
  end

let run config =
  let t = start config in
  let stop_requested = Atomic.make false in
  let previous =
    List.map
      (fun s ->
        ( s,
          Sys.signal s
            (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)) ))
      [ Sys.sigint; Sys.sigterm ]
  in
  while not (Atomic.get stop_requested) do
    try Unix.sleepf 0.2
    with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop t;
  List.iter (fun (s, h) -> try Sys.set_signal s h with _ -> ()) previous
