type row = {
  n : int;
  kernel : string;
  ops : int;
  seconds : float;
  ns_per_op : float;
  ops_per_sec : float;
  refreshes : int;
}

(* Window sizes chosen so every row does comparable total work: more
   sustained updates at small n, fewer at the million-node end where a
   single full recompute already takes minutes. *)
let ops_for n = min 20_000 (max 50 (20_000_000 / max 1 n))

let runs_for n = if n >= 100_000 then 1 else if n >= 10_000 then 3 else 10

let fleet_probs rng n =
  (* Realistic per-node fault probabilities: log-uniform over
     [0.001, 0.05], the band a one-year horizon over datacenter AFR
     curves actually produces. *)
  let log_min = log 0.001 and log_max = log 0.05 in
  Array.init n (fun _ ->
      exp (log_min +. (Prob.Rng.float rng *. (log_max -. log_min))))

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let make_row ~n ~kernel ~ops ~seconds ~refreshes =
  let seconds = Float.max seconds 1e-9 in
  {
    n;
    kernel;
    ops;
    seconds;
    ns_per_op = seconds *. 1e9 /. float_of_int ops;
    ops_per_sec = float_of_int ops /. seconds;
    refreshes;
  }

let bench_size ~seed n =
  let rng = Prob.Rng.of_pair seed n in
  let probs = fleet_probs rng n in
  let engine = Prob.Incremental.create probs in
  let ops = ops_for n in
  (* Pre-draw the update schedule so the timed window is all engine. *)
  let targets = Array.init ops (fun _ -> Prob.Rng.int rng n) in
  let fresh = fleet_probs rng ops in
  let refreshes_before = Prob.Incremental.refresh_count engine in
  let (), inc_seconds =
    time (fun () ->
        for k = 0 to ops - 1 do
          Prob.Incremental.update engine targets.(k) fresh.(k)
        done)
  in
  let inc_row =
    make_row ~n ~kernel:"incremental-update" ~ops ~seconds:inc_seconds
      ~refreshes:(Prob.Incremental.refresh_count engine - refreshes_before)
  in
  let runs = runs_for n in
  let final = Prob.Incremental.probs engine in
  let sink = ref 0. in
  let (), full_seconds =
    time (fun () ->
        for _ = 1 to runs do
          let dist = Prob.Poisson_binomial.pmf final in
          sink := !sink +. dist.(0)
        done)
  in
  ignore (Sys.opaque_identity !sink);
  let full_row =
    make_row ~n ~kernel:"full-recompute" ~ops:runs ~seconds:full_seconds
      ~refreshes:0
  in
  [ inc_row; full_row ]

let run ?(seed = 42) ~sizes () =
  List.concat_map (fun n -> bench_size ~seed n) sizes

let row_to_json r =
  Obs.Json.Obj
    [
      ("n", Obs.Json.Int r.n);
      ("kernel", Obs.Json.String r.kernel);
      ("ops", Obs.Json.Int r.ops);
      ("seconds", Obs.Json.number r.seconds);
      ("ns_per_op", Obs.Json.number r.ns_per_op);
      ("ops_per_sec", Obs.Json.number r.ops_per_sec);
      ("refreshes", Obs.Json.Int r.refreshes);
    ]

let to_json ~seed rows =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "probcons-fleet-bench/1");
      ("seed", Obs.Json.Int seed);
      ("drift_bound", Obs.Json.number Prob.Incremental.default_drift_bound);
      ("rows", Obs.Json.List (List.map row_to_json rows));
    ]
