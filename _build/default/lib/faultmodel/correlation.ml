type domain_spec = {
  members : int list;
  shock_probability : float;
  conditional_failure : float;
  byzantine_shock : bool;
}

type t =
  | Independent
  | Domains of domain_spec list
  | Mixture of (float * float) list

type kind = Ok | Crash | Byz

let own_kind rng probs byz_fracs u =
  if Prob.Rng.bool rng probs.(u) then
    if Prob.Rng.bool rng byz_fracs.(u) then Byz else Crash
  else Ok

let sample_kinds_independent rng probs byz_fracs =
  Array.init (Array.length probs) (own_kind rng probs byz_fracs)

let merge a b =
  match (a, b) with
  | Byz, _ | _, Byz -> Byz
  | Crash, _ | _, Crash -> Crash
  | Ok, Ok -> Ok

let byz_fractions fleet =
  Array.map (fun node -> node.Node.byz_fraction) (Fleet.nodes fleet)

let sample_kinds model fleet ?at rng =
  let probs = Fleet.fault_probs ?at fleet in
  let byz_fracs = byz_fractions fleet in
  match model with
  | Independent -> sample_kinds_independent rng probs byz_fracs
  | Domains specs ->
      let kinds = sample_kinds_independent rng probs byz_fracs in
      List.iter
        (fun { members; shock_probability; conditional_failure; byzantine_shock } ->
          if Prob.Rng.bool rng shock_probability then
            List.iter
              (fun u ->
                if u >= 0 && u < Array.length kinds
                   && Prob.Rng.bool rng conditional_failure
                then
                  kinds.(u) <-
                    merge kinds.(u) (if byzantine_shock then Byz else Crash))
              members)
        specs;
      kinds
  | Mixture envs ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. envs in
      let roll = Prob.Rng.float rng *. total in
      let rec pick acc = function
        | [] -> 1.
        | (w, factor) :: rest ->
            if roll < acc +. w then factor else pick (acc +. w) rest
      in
      let factor = pick 0. envs in
      let scaled = Array.map (fun p -> Prob.Math_utils.clamp_prob (p *. factor)) probs in
      sample_kinds_independent rng scaled byz_fracs

let sample model fleet ?at rng =
  Array.map (fun k -> k <> Ok) (sample_kinds model fleet ?at rng)

let marginal_probability model fleet ?at u =
  let probs = Fleet.fault_probs ?at fleet in
  let own = probs.(u) in
  match model with
  | Independent -> own
  | Domains specs ->
      (* Survive iff own fault doesn't fire and every covering shock
         either misses or spares this member. *)
      let survive = ref (1. -. own) in
      List.iter
        (fun { members; shock_probability; conditional_failure; _ } ->
          if List.mem u members then
            survive := !survive *. (1. -. (shock_probability *. conditional_failure)))
        specs;
      Prob.Math_utils.clamp_prob (1. -. !survive)
  | Mixture envs ->
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. envs in
      let acc =
        List.fold_left
          (fun acc (w, factor) ->
            acc +. (w /. total *. Prob.Math_utils.clamp_prob (own *. factor)))
          0. envs
      in
      Prob.Math_utils.clamp_prob acc

let pairwise_correlation model fleet ?at ?(trials = 20_000) rng u v =
  let sum_u = ref 0 and sum_v = ref 0 and sum_uv = ref 0 in
  for _ = 1 to trials do
    let failed = sample model fleet ?at rng in
    if failed.(u) then incr sum_u;
    if failed.(v) then incr sum_v;
    if failed.(u) && failed.(v) then incr sum_uv
  done;
  let n = float_of_int trials in
  let mu = float_of_int !sum_u /. n and mv = float_of_int !sum_v /. n in
  let cov = (float_of_int !sum_uv /. n) -. (mu *. mv) in
  let su = sqrt (mu *. (1. -. mu)) and sv = sqrt (mv *. (1. -. mv)) in
  if su = 0. || sv = 0. then 0. else cov /. (su *. sv)
