(** Probabilistic quorums (Malkhi–Reiter–Wright) and sampling bounds.

    Classical quorum systems guarantee intersection; probabilistic ones
    only guarantee it with probability 1-eps, in exchange for
    O(sqrt N)-sized quorums. The paper leans on exactly this relaxation
    for its probability-native vision (§4), and its E4 claim — a random
    5-node view-change trigger quorum at p=1% contains a correct node
    with ten nines — is the [contains_correct] computation here. *)

val disjoint_probability : n:int -> k1:int -> k2:int -> float
(** Probability that two independent uniformly random subsets of sizes
    [k1] and [k2] of an [n]-universe are disjoint:
    C(n-k1, k2) / C(n, k2). *)

val intersection_probability : n:int -> k1:int -> k2:int -> float
(** 1 - {!disjoint_probability}. *)

val epsilon_intersecting_size : n:int -> epsilon:float -> int
(** Smallest [k] such that two random [k]-subsets intersect with
    probability >= 1 - epsilon. Grows as O(sqrt (n ln (1/eps))). *)

val contains_correct : n:int -> k:int -> p:float -> float
(** Probability that a uniformly random [k]-subset contains at least
    one correct node when every node is independently faulty with
    probability [p]: [1 - p^k]. *)

val quorum_size_for_correct : p:float -> target:float -> int
(** Smallest [k] with [contains_correct >= target] — how big a
    view-change trigger quorum really needs to be (the paper: 5 nodes
    at p=1% already give ten nines, vs the f-threshold model's 34 of
    100). *)

val expected_intersection : n:int -> k1:int -> k2:int -> float
(** Expected overlap of two independent random subsets: k1*k2/n. *)
