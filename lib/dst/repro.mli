(** The versioned minimal-reproduction artifact, schema
    [probcons-repro/1].

    A failing soak episode — after shrinking — is emitted as one JSON
    object carrying everything a re-run needs: the root and
    per-episode seeds, the system tag, the system configuration
    ([scenario]), the fault [plan], the operation trace ([ops]), and
    the violated [invariant]. [dune exec tools/replay.exe FILE]
    re-executes it bit-for-bit; [tools/validate_bench] checks the
    schema (missing seed/plan/invariant fields or non-finite timings
    reject).

    Artifacts committed under [test/repro/] are permanent regression
    tests: [expect = `Fail] means the violation must still reproduce
    (an open, intentionally-seeded bug), [expect = `Pass] means a
    once-failing case must now pass (the fix must hold). *)

type parts = {
  scenario : Obs.Json.t;
      (** System configuration: protocol, cluster size, wire version,
          seeds — whatever the system needs besides faults and ops. *)
  plan : Obs.Json.t;  (** The fault plan (system-specific encoding). *)
  ops : Obs.Json.t;  (** The operation trace, a JSON list. *)
}

type expect = [ `Fail | `Pass ]

type t = {
  seed : int;  (** Root soak seed. *)
  episode : int;
  episode_seed : int;
  system : string;
  invariant : string;  (** The violated invariant's stable name. *)
  detail : string;
  expect : expect;
  parts : parts;
  shrink_attempts : int;
  original_units : int;
  original_weight : float;
  shrunk_units : int;
  shrunk_weight : float;
  elapsed_seconds : float;  (** Wall time of the failing soak. *)
}

val schema : string
(** ["probcons-repro/1"]. *)

val with_expect : expect -> t -> t
(** Flip the expectation — how a fixed bug's artifact becomes a
    must-now-pass regression test. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
(** Total: wrong schema tag, missing seed/plan/invariant/ops fields,
    or non-finite timings are [Error]s. *)

val of_string : string -> (t, string) result
val write : path:string -> t -> unit
val read : path:string -> (t, string) result
