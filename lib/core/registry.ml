module type Protocol_model = sig
  val name : string
  val doc : string
  val default_byz_fraction : float
  val max_nodes : int
  val quorum_keys : string list
  val protocol_of : Scenario.t -> (Protocol.t, string) result
  val validate : Scenario.t -> (unit, string) result

  val analyze :
    ?domains:int ->
    ?strategy:Analysis.strategy ->
    Scenario.t ->
    (Analysis.result, string) result

  val analyze_horizon :
    ?domains:int ->
    ?strategy:Analysis.strategy ->
    Scenario.t ->
    (Analysis.horizon_point list, string) result
end

type entry = (module Protocol_model)

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun msg -> Error msg) fmt

let wrap f =
  match f () with v -> Ok v | exception Invalid_argument msg -> Error msg

let quorum_or s key default =
  match Scenario.quorum s key with Some v -> v | None -> default

(* Checks shared by every model: fleet bound, override keys known,
   stakes only where they mean something. Value-range checks live in
   the model constructors ([Invalid_argument] mapped to [Error]). *)
let check_common ~name ~max_nodes ~quorum_keys ?(stakes_ok = false) s =
  let n = Scenario.size s in
  if n > max_nodes then
    errf "%s supports at most %d nodes (got %d)" name max_nodes n
  else
    match
      List.find_opt
        (fun (key, _) -> not (List.mem key quorum_keys))
        (Scenario.quorums s)
    with
    | Some (key, _) ->
        errf "%s takes no quorum override %S%s" name key
          (if quorum_keys = [] then ""
           else Printf.sprintf " (allowed: %s)" (String.concat ", " quorum_keys))
    | None ->
        if (not stakes_ok) && Scenario.stakes s <> None then
          errf "stakes only apply to the stake protocol (got %s)" name
        else Ok ()

let analyze_predicate ~default_byz ?domains ?strategy s proto =
  let byz_fraction =
    Option.value (Scenario.byz_fraction s) ~default:default_byz
  in
  let fleet = Scenario.fleet ~byz_fraction s in
  wrap (fun () ->
      Analysis.run ?at:(Scenario.at s) ?seed:(Scenario.seed s) ?strategy
        ?domains proto fleet)

let horizon_spec s =
  match Scenario.horizon s with
  | Some h -> Ok (h, Option.value (Scenario.rounds s) ~default:Scenario.default_rounds)
  | None -> Error "scenario has no horizon"

let analyze_predicate_horizon ~default_byz ?domains ?strategy s proto =
  let* h, rounds = horizon_spec s in
  let byz_fraction =
    Option.value (Scenario.byz_fraction s) ~default:default_byz
  in
  let fleet = Scenario.fleet ~byz_fraction s in
  wrap (fun () ->
      Analysis.run_horizon ?strategy ?seed:(Scenario.seed s) ?domains
        ~times:(Analysis.horizon_times ~horizon:h ~rounds)
        proto fleet)

(* Builds a standard entry from its defaults plus a scenario-to-model
   function; the closed-over [protocol_of] already performs the
   model-specific parameter validation. *)
let model ~name ~doc ~byz ?(max_nodes = Scenario.max_fleet_nodes)
    ?(stakes_ok = false) ~quorum_keys ~protocol_of () : entry =
  (module struct
    let name = name
    let doc = doc
    let default_byz_fraction = byz
    let max_nodes = max_nodes
    let quorum_keys = quorum_keys

    let protocol_of s =
      let* () = check_common ~name ~max_nodes ~quorum_keys ~stakes_ok s in
      protocol_of s

    let validate s = Result.map ignore (protocol_of s)

    let analyze ?domains ?strategy s =
      let* proto = protocol_of s in
      analyze_predicate ~default_byz:byz ?domains ?strategy s proto

    let analyze_horizon ?domains ?strategy s =
      let* proto = protocol_of s in
      analyze_predicate_horizon ~default_byz:byz ?domains ?strategy s proto
  end)

let raft =
  model ~name:"raft" ~doc:"Crash-fault Raft (Theorem 3.2)" ~byz:0.0
    ~quorum_keys:[ "q_per"; "q_vc" ]
    ~protocol_of:(fun s ->
      let n = Scenario.size s in
      wrap (fun () ->
          let d = Raft_model.default n in
          Raft_model.protocol
            (Raft_model.flexible ~n
               ~q_per:(quorum_or s "q_per" d.Raft_model.q_per)
               ~q_vc:(quorum_or s "q_vc" d.Raft_model.q_vc))))
    ()

let pbft_params s =
  let n = Scenario.size s in
  wrap (fun () ->
      let d = Pbft_model.default n in
      Pbft_model.make ~n
        ~q_eq:(quorum_or s "q_eq" d.Pbft_model.q_eq)
        ~q_per:(quorum_or s "q_per" d.Pbft_model.q_per)
        ~q_vc:(quorum_or s "q_vc" d.Pbft_model.q_vc)
        ~q_vc_t:(quorum_or s "q_vc_t" d.Pbft_model.q_vc_t))

let pbft_keys = [ "q_eq"; "q_per"; "q_vc"; "q_vc_t" ]

let pbft =
  model ~name:"pbft" ~doc:"Byzantine-fault PBFT (Theorem 3.1)" ~byz:1.0
    ~quorum_keys:pbft_keys
    ~protocol_of:(fun s -> Result.map Pbft_model.protocol (pbft_params s))
    ()

let pbft_forensics =
  model ~name:"pbft-forensics"
    ~doc:"PBFT counting safe-or-accountable as safe" ~byz:1.0
    ~quorum_keys:pbft_keys
    ~protocol_of:(fun s ->
      Result.map Pbft_model.safe_or_accountable (pbft_params s))
    ()

let upright =
  (* The paper's mixed-fault setting: most faults crash, a sliver
     (mercurial cores, TEE compromises) is Byzantine. *)
  model ~name:"upright" ~doc:"Dual-threshold Upright (u total, r Byzantine)"
    ~byz:0.0025
    ~quorum_keys:[ "u"; "r" ]
    ~protocol_of:(fun s ->
      let n = Scenario.size s in
      wrap (fun () ->
          let r = quorum_or s "r" (if n >= 4 then 1 else 0) in
          let u =
            quorum_or s "u" (Upright_model.max_params ~n ~r).Upright_model.u
          in
          Upright_model.protocol (Upright_model.make ~n ~u ~r)))
    ()

let benor =
  model ~name:"benor" ~doc:"Crash-fault Ben-Or randomized consensus" ~byz:0.0
    ~quorum_keys:[ "f" ]
    ~protocol_of:(fun s ->
      let n = Scenario.size s in
      wrap (fun () ->
          Benor_model.protocol
            (Benor_model.make ~n ~f:(quorum_or s "f" ((n - 1) / 2)))))
    ()

let stake =
  (* Identity-dependent predicate: exact enumeration, so the fleet is
     capped where 2^n stays interactive. *)
  model ~name:"stake" ~doc:"Stake-weighted thresholds (enumeration path)"
    ~byz:1.0 ~max_nodes:22 ~stakes_ok:true ~quorum_keys:[]
    ~protocol_of:(fun s ->
      let n = Scenario.size s in
      let stakes =
        match Scenario.stakes s with
        | Some l -> l
        | None -> List.init n (fun _ -> 1.0)
      in
      if List.length stakes <> n then
        errf "stakes has %d entries for a %d-node fleet" (List.length stakes) n
      else
        wrap (fun () ->
            Stake_model.protocol (Stake_model.make (Array.of_list stakes))))
    ()

let quorum_availability : entry =
  (module struct
    let name = "quorum-availability"
    let doc = "Availability of a k-of-n threshold quorum system"
    let default_byz_fraction = 0.0
    let max_nodes = Scenario.max_fleet_nodes
    let quorum_keys = [ "quorum" ]
    let protocol_of _ = Error "quorum-availability has no predicate form"

    let check s =
      let* () = check_common ~name ~max_nodes ~quorum_keys s in
      let n = Scenario.size s in
      let k = quorum_or s "quorum" ((n / 2) + 1) in
      if k < 1 || k > n then errf "quorum must be in [1, %d]" n else Ok (n, k)

    let validate s = Result.map ignore (check s)

    let result_at ?domains ?strategy ~n ~k fleet at =
      let probs =
        match at with
        | None -> Faultmodel.Fleet.fault_probs fleet
        | Some at -> Faultmodel.Fleet.fault_probs ~at fleet
      in
      (* Enumeration strategy maps to the exact-override path; every
         other strategy keeps the count DP. *)
      let exact = strategy = Some Analysis.Enumeration in
      let a =
        Quorum.Quorum_system.availability ?domains ~exact
          (Quorum.Quorum_system.Threshold { n; k })
          probs
      in
      {
        Analysis.protocol = Printf.sprintf "threshold(n=%d,k=%d)" n k;
        p_safe = 1.0;
        p_live = a;
        p_safe_live = a;
        engine = "quorum-availability";
        ci_safe = None;
        ci_live = None;
        ci_safe_live = None;
      }

    let analyze ?domains ?strategy s =
      let* n, k = check s in
      let fleet = Scenario.fleet ~byz_fraction:default_byz_fraction s in
      Ok (result_at ?domains ?strategy ~n ~k fleet (Scenario.at s))

    let analyze_horizon ?domains ?strategy s =
      let* n, k = check s in
      let* h, rounds = horizon_spec s in
      let fleet = Scenario.fleet ~byz_fraction:default_byz_fraction s in
      Ok
        (List.map
           (fun at ->
             {
               Analysis.at;
               result = result_at ?domains ?strategy ~n ~k fleet (Some at);
             })
           (Analysis.horizon_times ~horizon:h ~rounds))
  end)

let builtin : entry list =
  [ raft; pbft; pbft_forensics; upright; benor; stake; quorum_availability ]

(* Entries registered by downstream libraries (probnative's
   uncertainty-weighted selectors). The registry cannot depend on the
   libraries that implement them, so they self-register at link time. *)
let registered : entry list ref = ref []

let all () = builtin @ !registered

let names () = List.map (fun ((module M) : entry) -> M.name) (all ())

let register ((module M) : entry) =
  if List.exists (fun ((module E) : entry) -> String.equal E.name M.name) (all ())
  then
    invalid_arg
      (Printf.sprintf "Registry.register: protocol %S already registered" M.name)
  else registered := !registered @ [ (module M : Protocol_model) ]

let find name =
  List.find_opt (fun ((module M) : entry) -> String.equal M.name name) (all ())

let dispatch : 'a. Scenario.t -> (entry -> 'a) -> ((string -> 'a) -> 'a) =
 fun s found missing ->
  match find (Scenario.protocol s) with
  | Some entry -> found entry
  | None ->
      missing
        (Printf.sprintf "unknown protocol %S (known: %s)"
           (Scenario.protocol s) (String.concat ", " (names ())))

let validate s =
  dispatch s (fun (module M) -> M.validate s) (fun msg -> Error msg)

let analyze ?domains ?strategy s =
  dispatch s
    (fun (module M) -> M.analyze ?domains ?strategy s)
    (fun msg -> Error msg)

let analyze_horizon ?domains ?strategy s =
  dispatch s
    (fun (module M) -> M.analyze_horizon ?domains ?strategy s)
    (fun msg -> Error msg)

let protocol_of s =
  dispatch s (fun (module M) -> M.protocol_of s) (fun msg -> Error msg)

let fleet_of s =
  dispatch s
    (fun (module M) ->
      Ok
        (Scenario.fleet
           ~byz_fraction:
             (Option.value (Scenario.byz_fraction s)
                ~default:M.default_byz_fraction)
           s))
    (fun msg -> Error msg)

let payload ~n (r : Analysis.result) =
  Obs.Json.Obj
    [
      ("protocol", Obs.Json.String r.Analysis.protocol);
      ("n", Obs.Json.Int n);
      ("engine", Obs.Json.String r.Analysis.engine);
      ("p_safe", Obs.Json.number r.Analysis.p_safe);
      ("p_live", Obs.Json.number r.Analysis.p_live);
      ("p_safe_live", Obs.Json.number r.Analysis.p_safe_live);
      ("nines", Obs.Json.number (Prob.Nines.of_prob r.Analysis.p_safe_live));
    ]

(* One trajectory element is exactly the single-result payload with the
   round's mission time prepended — the renderer stays singular. *)
let trajectory_point ~n (hp : Analysis.horizon_point) =
  match payload ~n hp.Analysis.result with
  | Obs.Json.Obj fields ->
      Obs.Json.Obj (("at", Obs.Json.number hp.Analysis.at) :: fields)
  | j -> j

let horizon_payload ~protocol ~n ~horizon ~rounds points =
  let min_p_live =
    List.fold_left
      (fun acc (hp : Analysis.horizon_point) ->
        Float.min acc hp.Analysis.result.Analysis.p_live)
      1. points
  in
  Obs.Json.Obj
    [
      ("protocol", Obs.Json.String protocol);
      ("n", Obs.Json.Int n);
      ("horizon", Obs.Json.number horizon);
      ("rounds", Obs.Json.Int rounds);
      ("min_p_live", Obs.Json.number min_p_live);
      ("trajectory", Obs.Json.List (List.map (trajectory_point ~n) points));
    ]

let analyze_json ?domains ?strategy s =
  match Scenario.horizon s with
  | None ->
      let* r = analyze ?domains ?strategy s in
      Ok (payload ~n:(Scenario.size s) r)
  | Some horizon ->
      let rounds =
        Option.value (Scenario.rounds s) ~default:Scenario.default_rounds
      in
      let* points = analyze_horizon ?domains ?strategy s in
      Ok
        (horizon_payload ~protocol:(Scenario.protocol s) ~n:(Scenario.size s)
           ~horizon ~rounds points)
