lib/benor/benor_cluster.mli: Benor_node Dessim
