lib/core/report.mli:
