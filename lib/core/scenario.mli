(** The canonical deployment scenario: one typed description of
    "what is deployed", shared by every entry point.

    The paper's thesis is that reliability is a function of an explicit
    deployment description — a fleet of fault probabilities, a protocol,
    its quorum parameters, the analysis options. Before this module the
    repo had four drifting encodings of that description (CLI flags,
    wire params, sweep closures, bench hardcodes); a scenario is the one
    normal form they all parse into and print from.

    A scenario has {e one} canonical JSON encoding ({!to_json}, a fixed
    field order with ["%.17g"] floats) and {e one} total, bounds-checked
    parser ({!of_json}): the same object is a [--scenario FILE], the
    [params] of a wire [analyze] request, and the string inside a cache
    key, so byte-identity of results across layers reduces to equality
    of scenarios. Protocol {e names} are plain strings here; membership
    in the protocol registry is checked by {!Registry}, not by this
    module, so the spec type does not grow a case per protocol. *)

type t
(** Immutable, validated. Structural equality ({!equal}) coincides with
    canonical-encoding equality: [equal a b] iff
    [to_string a = to_string b]. *)

(** {1 Bounds}

    Shared with the wire layer: every scenario must analyze quickly,
    so fleets are capped where the count-DP engine stays O(n³). *)

val max_fleet_nodes : int
(** 200 — cap on the total node count of the mix. *)

val max_quorum_value : int
(** 1000 — cap on any quorum-override value (models tighten further). *)

val max_quorum_overrides : int
(** 8 — cap on the number of quorum overrides. *)

val max_rounds : int
(** 64 — cap on horizon-trajectory rounds. *)

val default_rounds : int
(** 12 — rounds used when [horizon] is set but [rounds] is not. *)

(** {1 Construction} *)

val make :
  ?byz_fraction:float ->
  ?quorums:(string * int) list ->
  ?stakes:float list ->
  ?processes:Faultmodel.Failure_process.t list ->
  ?at:float ->
  ?seed:int ->
  ?horizon:float ->
  ?rounds:int ->
  protocol:string ->
  mix:(int * float) list ->
  unit ->
  (t, string) result
(** The only constructor; every field is validated:
    - [mix]: non-empty [(count, fault_probability)] groups, each count
      in [1, {!max_fleet_nodes}], probabilities finite in [0,1], total
      count at most {!max_fleet_nodes};
    - [byz_fraction]: finite in [0,1] — the fraction of each node's
      fault probability that is Byzantine rather than crash. [None]
      means "use the protocol's registry default";
    - [quorums]: per-protocol quorum-size overrides (e.g. [("q_vc", 4)]
      for Raft, [("u", 2)] for Upright); keys deduplicated-checked and
      stored sorted so the encoding is canonical;
    - [stakes]: per-node stakes (positive, finite), meaningful only for
      the stake protocol;
    - [at]: mission time in hours (finite, positive; default one year
      downstream);
    - [seed]: PRNG seed for Monte-Carlo engines;
    - [processes]: optional per-node failure processes, exactly one per
      node of the mix, each validated by
      {!Faultmodel.Failure_process.validate}. Absent means every node is
      [Static p] with its mix group's probability — the pre-process
      semantics, bit-identical;
    - [horizon]: optional trajectory horizon in hours (finite,
      positive) — analyze availability at {!default_rounds} (or
      [rounds]) times spaced evenly over [(0, horizon]];
    - [rounds]: trajectory resolution in [1, {!max_rounds}]; only
      meaningful (and only accepted) with [horizon]. *)

val uniform :
  ?byz_fraction:float -> protocol:string -> n:int -> p:float -> unit -> t
(** [uniform ~protocol ~n ~p ()] — the paper's §3 setting as a scenario.
    Raises [Invalid_argument] on invalid inputs (trusted-caller
    convenience over {!make}). *)

(** {1 Accessors} *)

val protocol : t -> string
val mix : t -> (int * float) list
val byz_fraction : t -> float option
val quorums : t -> (string * int) list
(** Sorted by key. *)

val quorum : t -> string -> int option
(** Lookup one override. *)

val stakes : t -> float list option
val processes : t -> Faultmodel.Failure_process.t list option
val at : t -> float option
val seed : t -> int option
val horizon : t -> float option
val rounds : t -> int option

val size : t -> int
(** Total node count of the mix. *)

val effective_processes : t -> Faultmodel.Failure_process.t list
(** The per-node processes, expanding an absent [processes] field to
    [Static p] per mix group — the normal form every dynamic consumer
    (horizon analysis, the simulator, reliability weighting) works on. *)

val is_dynamic : t -> bool
(** True iff the scenario carries at least one non-[Static] process. *)

(** {1 Transformers}

    Functional updates for sweeps: a grid axis is a [t -> t]. All
    re-validate and raise [Invalid_argument] on violation (sweep axes
    are trusted code, not wire input). *)

val with_protocol : string -> t -> t
val with_mix : (int * float) list -> t -> t
val with_p : float -> t -> t
(** Replace every group's fault probability, keeping the counts. *)

val with_at : float -> t -> t
val with_processes : Faultmodel.Failure_process.t list -> t -> t

val with_horizon : ?rounds:int -> float -> t -> t
(** Set the trajectory horizon (and optionally its resolution). *)

(** {1 Validation building blocks}

    Exposed so the CLI [--mix] converter and [Wire.parse_groups] are
    the same code path as {!of_json} — one validator, no drift. *)

val validate_mix : (int * float) list -> (unit, string) result

val mix_of_params : Obs.Json.t -> ((int * float) list, string) result
(** Parse the fleet part of a params object: either an explicit
    ["mix": [[count, p], ...]] or the ["n"]/["p"] shorthand, both
    normalizing to a validated group list. *)

(** {1 Canonical encoding} *)

val to_json : t -> Obs.Json.t
(** Fixed field order — [protocol], [mix], then [byz_fraction],
    [quorums], [stakes], [processes], [at], [seed], [horizon],
    [rounds], each omitted when absent — so the encoding is canonical:
    one scenario, one byte string. Scenarios without the new optional
    fields encode byte-identically to the pre-process format
    (regression-tested). *)

val to_string : t -> string

val of_json : Obs.Json.t -> (t, string) result
(** Total parser; accepts the [n]/[p] shorthand for the mix. The
    identity [of_json (to_json s) = Ok s] holds for every [s]
    (qcheck-tested). *)

val of_string : string -> (t, string) result

(** {1 Realization} *)

val fleet : byz_fraction:float -> t -> Faultmodel.Fleet.t
(** Build the fleet the scenario describes, splitting each node's fault
    probability into crash/Byzantine by [byz_fraction] (the caller —
    normally {!Registry} — resolves the scenario's optional field
    against the protocol default). With [processes] present each node
    carries its process realized as a fault curve
    ({!Faultmodel.Failure_process.to_curve}), so time-dependent
    evaluation ([?at], horizons) works through the same fleet path. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
