lib/pbft/pbft_types.mli: Format
