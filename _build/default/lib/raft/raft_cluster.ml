type t = {
  engine : Dessim.Engine.t;
  net : Raft_types.msg Dessim.Network.t;
  nodes : Raft_node.t array;
  trace : Dessim.Trace.t;
}

let create ?(seed = 7) ?latency ?drop_probability ?q_vote ?q_replicate
    ?timeout_multipliers ?initial_members ~n () =
  let engine = Dessim.Engine.create ~seed () in
  let net = Dessim.Network.create ~engine ~n ?latency ?drop_probability () in
  let trace = Dessim.Trace.create () in
  let nodes =
    Array.init n (fun id ->
        let base = Raft_node.default_config ~id ~n in
        let config =
          {
            base with
            Raft_node.q_vote = Option.value q_vote ~default:base.Raft_node.q_vote;
            q_replicate = Option.value q_replicate ~default:base.Raft_node.q_replicate;
            timeout_multiplier =
              (match timeout_multipliers with
              | Some m -> m.(id)
              | None -> base.Raft_node.timeout_multiplier);
            initial_members;
          }
        in
        Raft_node.create config ~engine ~net ~trace)
  in
  { engine; net; nodes; trace }

let engine t = t.engine
let trace t = t.trace
let node t i = t.nodes.(i)
let size t = Array.length t.nodes

let try_submit t command =
  Array.exists (fun node -> Raft_node.submit node command) t.nodes

let submit_workload t ~commands ~start ~interval =
  List.iteri
    (fun i command ->
      let rec attempt () =
        if not (try_submit t command) then
          ignore (Dessim.Engine.schedule t.engine ~delay:interval attempt)
      in
      ignore
        (Dessim.Engine.schedule_at t.engine
           ~time:(start +. (float_of_int i *. interval))
           attempt))
    commands

let inject t plan =
  Dessim.Fault_injector.apply ~engine:t.engine
    ~set_down:(fun id down -> Raft_node.set_down t.nodes.(id) down)
    ~set_byzantine:(fun _ _ ->
      invalid_arg "Raft is crash-fault-tolerant only; use the PBFT cluster for Byzantine plans")
    plan

let partition_at t ~time group_a group_b =
  ignore
    (Dessim.Engine.schedule_at t.engine ~time (fun () ->
         Dessim.Network.partition t.net group_a group_b))

let heal_at t ~time =
  ignore
    (Dessim.Engine.schedule_at t.engine ~time (fun () -> Dessim.Network.heal t.net))

let run t ~until = Dessim.Engine.run ~until t.engine

let committed t i = Raft_node.committed_commands t.nodes.(i)

let leader_ids t =
  Array.to_list t.nodes
  |> List.filter_map (fun node ->
         if Raft_node.is_leader node then Some (Raft_node.id node) else None)

let current_leader t =
  List.fold_left
    (fun best id ->
      match best with
      | None -> Some id
      | Some other ->
          if Raft_node.current_term t.nodes.(id) > Raft_node.current_term t.nodes.(other)
          then Some id
          else best)
    None (leader_ids t)

let members_view t =
  Option.map (fun leader -> Raft_node.members t.nodes.(leader)) (current_leader t)

let add_server t server =
  match current_leader t with
  | None -> false
  | Some leader ->
      let node = t.nodes.(leader) in
      let proposal = List.sort_uniq compare (server :: Raft_node.members node) in
      Raft_node.submit_config node proposal

let remove_server t server =
  match current_leader t with
  | None -> false
  | Some leader ->
      let node = t.nodes.(leader) in
      let proposal = List.filter (fun u -> u <> server) (Raft_node.members node) in
      Raft_node.submit_config node proposal

let transfer_leadership t target =
  match current_leader t with
  | None -> false
  | Some leader -> Raft_node.transfer_leadership t.nodes.(leader) target

let retire_at t ~time server =
  ignore
    (Dessim.Engine.schedule_at t.engine ~time (fun () ->
         Raft_node.set_down t.nodes.(server) true))

let message_stats t =
  (Dessim.Network.messages_sent t.net, Dessim.Network.messages_delivered t.net)
