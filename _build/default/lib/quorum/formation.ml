let intersection_independent ~n ~k1 ~k2 =
  Probabilistic.intersection_probability ~n ~k1 ~k2

let intersection_given_live ~n ~p ~k1 ~k2 =
  if k1 > n || k2 > n then invalid_arg "Formation.intersection_given_live";
  let need = max k1 k2 in
  (* Condition on the live-set size m >= need; within a live set of
     size m the two draws are uniform over it. *)
  let weight_sum = ref 0. and hit_sum = ref 0. in
  for m = need to n do
    let w = Prob.Distribution.binomial_pmf ~n ~p:(1. -. p) m in
    if w > 0. then begin
      weight_sum := !weight_sum +. w;
      hit_sum := !hit_sum +. (w *. Probabilistic.intersection_probability ~n:m ~k1 ~k2)
    end
  done;
  if !weight_sum = 0. then 1. else Prob.Math_utils.clamp_prob (!hit_sum /. !weight_sum)

let dependence_gain ~n ~p ~k1 ~k2 =
  let miss_indep = 1. -. intersection_independent ~n ~k1 ~k2 in
  let miss_dep = 1. -. intersection_given_live ~n ~p ~k1 ~k2 in
  if miss_dep = 0. then infinity else miss_indep /. miss_dep

let loss_given_failures ~n ~k ~j =
  if k > n || j > n then invalid_arg "Formation.loss_given_failures";
  if j < k then 0.
  else
    exp (Prob.Math_utils.log_choose (n - k) (j - k) -. Prob.Math_utils.log_choose n j)

let expected_loss ~n:_ ~k ~p = p ** float_of_int k
