lib/prob/rng.ml: Array Float Int64
