(* Tests for the prob library: numeric substrate, distributions, RNG,
   Poisson binomial, Monte Carlo. *)

open Prob

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Math_utils ---------------------------------------------------- *)

let test_kahan_pathological () =
  (* Adding 10^6 terms of 1e-16 to 1.0 is invisible to naive float
     summation (each addition rounds away); Kahan recovers the 1e-10. *)
  let a = Array.make 1_000_001 1e-16 in
  a.(0) <- 1.;
  let naive = Array.fold_left ( +. ) 0. a in
  let kahan = Math_utils.kahan_sum a in
  check_float ~eps:0. "naive loses the mass" 1. naive;
  check_float ~eps:1e-16 "kahan keeps it" (1. +. 1e-10) kahan

let test_kahan_empty () =
  check_float "empty sum" 0. (Math_utils.kahan_sum [||]);
  check_float "list sum" 6. (Math_utils.kahan_sum_list [ 1.; 2.; 3. ])

let test_kahan_accumulator_adversarial () =
  (* The classic cancellation sequence: naive left-to-right summation of
     [1; 1e100; 1; -1e100] returns 0; compensated summation keeps the
     two units. The streaming accumulator backs every per-chunk partial
     sum in the parallel engines. *)
  let seq = [ 1.; 1e100; 1.; -1e100 ] in
  let naive = List.fold_left ( +. ) 0. seq in
  let kahan =
    Math_utils.kahan_total
      (List.fold_left Math_utils.kahan_add Math_utils.kahan_zero seq)
  in
  check_float ~eps:0. "naive cancels to 0" 0. naive;
  check_float ~eps:0. "kahan keeps both units" 2. kahan;
  (* Streaming accumulator and array form agree. *)
  check_float ~eps:0. "array form agrees" kahan
    (Math_utils.kahan_sum (Array.of_list seq));
  (* Peters' variant: the compensation must survive alternating signs. *)
  let alt = [ 1e16; 1.; -1e16; 1. ] in
  let streamed =
    Math_utils.kahan_total
      (List.fold_left Math_utils.kahan_add Math_utils.kahan_zero alt)
  in
  check_float ~eps:0. "alternating signs" 2. streamed

let test_log_factorial_small () =
  check_float "0!" 0. (Math_utils.log_factorial 0);
  check_float "1!" 0. (Math_utils.log_factorial 1);
  check_float "5!" (log 120.) (Math_utils.log_factorial 5);
  check_float ~eps:1e-8 "10!" (log 3628800.) (Math_utils.log_factorial 10)

let test_log_factorial_stirling_continuity () =
  (* The table/Stirling boundary at 256 must be seamless. *)
  let table_side = Math_utils.log_factorial 255 +. log 256. in
  let stirling_side = Math_utils.log_factorial 256 in
  check_float ~eps:1e-9 "continuity at 256" table_side stirling_side

let test_log_factorial_negative () =
  Alcotest.check_raises "negative raises"
    (Invalid_argument "Math_utils.log_factorial: negative argument") (fun () ->
      ignore (Math_utils.log_factorial (-1)))

let test_choose_basics () =
  check_float "C(5,2)" 10. (Math_utils.choose 5 2);
  check_float "C(10,0)" 1. (Math_utils.choose 10 0);
  check_float "C(10,10)" 1. (Math_utils.choose 10 10);
  check_float "C(4,7)=0" 0. (Math_utils.choose 4 7);
  check_float "C(4,-1)=0" 0. (Math_utils.choose 4 (-1));
  Alcotest.(check bool) "C(100,50) to 1e-10 relative" true
    (Math_utils.approx_equal ~tol:1e-10 1.0089134454556417e29
       (Math_utils.choose 100 50))

let test_log_choose_out_of_range () =
  Alcotest.(check bool) "neg_infinity" true (Math_utils.log_choose 3 5 = neg_infinity)

let test_logsumexp () =
  check_float "empty" neg_infinity (Math_utils.logsumexp [||]);
  check_float ~eps:1e-12 "two equal" (log 2.) (Math_utils.logsumexp [| 0.; 0. |]);
  check_float ~eps:1e-12 "dominated"
    (log (1. +. exp (-50.)))
    (Math_utils.logsumexp [| 0.; -50. |]);
  check_float "all -inf" neg_infinity
    (Math_utils.logsumexp [| neg_infinity; neg_infinity |])

let test_log1mexp () =
  check_float ~eps:1e-12 "log(1-e^-1)" (log (1. -. exp (-1.))) (Math_utils.log1mexp (-1.));
  check_float ~eps:1e-12 "tiny x" (log (-.Float.expm1 (-1e-10))) (Math_utils.log1mexp (-1e-10))

let test_clamp_prob () =
  check_float "below" 0. (Math_utils.clamp_prob (-0.5));
  check_float "above" 1. (Math_utils.clamp_prob 1.5);
  check_float "nan" 0. (Math_utils.clamp_prob nan);
  check_float "inside" 0.25 (Math_utils.clamp_prob 0.25)

let prop_choose_symmetry =
  QCheck.Test.make ~count:200 ~name:"choose symmetry C(n,k)=C(n,n-k)"
    QCheck.(pair (int_range 0 60) (int_range 0 60))
    (fun (n, k) ->
      QCheck.assume (k <= n);
      Math_utils.approx_equal ~tol:1e-9 (Math_utils.choose n k)
        (Math_utils.choose n (n - k)))

let prop_pascal =
  QCheck.Test.make ~count:200 ~name:"Pascal identity"
    QCheck.(pair (int_range 1 50) (int_range 1 50))
    (fun (n, k) ->
      QCheck.assume (k <= n - 1);
      Math_utils.approx_equal ~tol:1e-9
        (Math_utils.choose n k)
        (Math_utils.choose (n - 1) (k - 1) +. Math_utils.choose (n - 1) k))

let prop_logsumexp_bounds =
  QCheck.Test.make ~count:200 ~name:"logsumexp >= max element"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-50.) 50.))
    (fun l ->
      let a = Array.of_list l in
      let m = Array.fold_left max neg_infinity a in
      Math_utils.logsumexp a >= m -. 1e-9)

(* --- Nines --------------------------------------------------------- *)

let test_nines_roundtrip () =
  List.iter
    (fun k ->
      check_float ~eps:1e-6 (Printf.sprintf "%g nines" k) k
        (Nines.of_prob (Nines.to_prob k)))
    [ 1.; 2.; 3.; 4.5; 9. ]

let test_nines_edges () =
  Alcotest.(check bool) "p=1 is inf" true (Nines.of_prob 1. = infinity);
  check_float "p=0 is 0" 0. (Nines.of_prob 0.)

let test_percent_string_paper_cells () =
  (* The exact strings the paper's tables print. *)
  let cases =
    [
      (0.999702, "99.97%");
      (0.99882, "99.88%");
      (0.9953, "99.53%");
      (0.98177, "98.18%");
      (0.9999901495, "99.9990%");
      (0.99902, "99.90%");
      (0.9999664, "99.997%");
      (0.99994659, "99.995%");
      (1.0, "100%");
      (0.0, "0%");
    ]
  in
  List.iter
    (fun (p, expected) ->
      Alcotest.(check string) expected expected (Nines.percent_string p))
    cases

let test_parse_percent () =
  Alcotest.(check (option (float 1e-9))) "basic" (Some 0.9997) (Nines.parse_percent "99.97%");
  Alcotest.(check (option (float 1e-9))) "no sign" (Some 0.5) (Nines.parse_percent "50");
  Alcotest.(check (option (float 1e-9))) "garbage" None (Nines.parse_percent "abc%");
  Alcotest.(check (option (float 1e-9))) "out of range" None (Nines.parse_percent "150%")

let prop_percent_parse_roundtrip =
  QCheck.Test.make ~count:200 ~name:"percent_string parses back close"
    QCheck.(float_bound_inclusive 1.)
    (fun p ->
      match Nines.parse_percent (Nines.percent_string p) with
      | Some q -> Float.abs (p -. q) <= 0.005
      | None -> false)

(* --- Rng ------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_rng_float_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0. || x >= 1. then Alcotest.fail "float out of [0,1)"
  done

let test_rng_int_bounds () =
  let rng = Rng.create 8 in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.fail "int out of range";
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values reachable" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_split_independent () =
  let parent = Rng.create 5 in
  let child = Rng.split parent in
  (* Splitting must not alias: the two streams diverge. *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.next_int64 parent = Rng.next_int64 child then incr same
  done;
  Alcotest.(check bool) "child decorrelated" true (!same < 3)

let test_sample_without_replacement () =
  let rng = Rng.create 3 in
  let sample = Rng.sample_without_replacement rng 5 10 in
  Alcotest.(check int) "size" 5 (List.length sample);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare sample));
  List.iter (fun x -> Alcotest.(check bool) "in range" true (x >= 0 && x < 10)) sample;
  Alcotest.check_raises "k > n" (Invalid_argument "Rng.sample_without_replacement")
    (fun () -> ignore (Rng.sample_without_replacement rng 11 10))

let test_shuffle_preserves_elements () =
  let rng = Rng.create 4 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_exponential_mean () =
  let rng = Rng.create 9 in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng 2.
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean close to 1/rate" true (Float.abs (mean -. 0.5) < 0.01)

(* --- Distribution ---------------------------------------------------- *)

let test_binomial_pmf_closed_form () =
  check_float ~eps:1e-12 "pmf(3,0.5,1)" 0.375 (Distribution.binomial_pmf ~n:3 ~p:0.5 1);
  check_float ~eps:1e-12 "pmf k=0" (0.99 ** 10.)
    (Distribution.binomial_pmf ~n:10 ~p:0.01 0);
  check_float "out of range" 0. (Distribution.binomial_pmf ~n:3 ~p:0.5 4);
  check_float "degenerate p=0" 1. (Distribution.binomial_pmf ~n:5 ~p:0. 0);
  check_float "degenerate p=1" 1. (Distribution.binomial_pmf ~n:5 ~p:1. 5)

let test_binomial_pmf_sums_to_one () =
  List.iter
    (fun (n, p) ->
      let total = ref 0. in
      for k = 0 to n do
        total := !total +. Distribution.binomial_pmf ~n ~p k
      done;
      check_float ~eps:1e-12 (Printf.sprintf "sum n=%d p=%g" n p) 1. !total)
    [ (1, 0.3); (10, 0.01); (50, 0.5); (100, 0.99) ]

let test_binomial_cdf_tail_complement () =
  for k = -1 to 11 do
    let cdf = Distribution.binomial_cdf ~n:10 ~p:0.3 k in
    let tail = Distribution.binomial_tail_ge ~n:10 ~p:0.3 (k + 1) in
    check_float ~eps:1e-12 (Printf.sprintf "complement k=%d" k) 1. (cdf +. tail)
  done

let test_binomial_deep_tail () =
  (* P(X >= 5 | n=9, p=0.01) drives the paper's ten-nines cells; it must
     be accurate in the deep tail. *)
  let tail = Distribution.binomial_tail_ge ~n:9 ~p:0.01 5 in
  Alcotest.(check bool) "around 1.2e-8" true (tail > 1.1e-8 && tail < 1.3e-8)

let test_weibull_shape_one_is_exponential () =
  List.iter
    (fun t ->
      check_float ~eps:1e-12
        (Printf.sprintf "t=%g" t)
        (Distribution.exponential_survival ~rate:(1. /. 100.) t)
        (Distribution.weibull_survival ~shape:1. ~scale:100. t))
    [ 0.; 10.; 100.; 1000. ]

let test_weibull_hazard_shapes () =
  (* Infant mortality: decreasing hazard; wear-out: increasing. *)
  let h_infant t = Distribution.weibull_hazard ~shape:0.5 ~scale:100. t in
  let h_wearout t = Distribution.weibull_hazard ~shape:3. ~scale:100. t in
  Alcotest.(check bool) "infant decreasing" true (h_infant 10. > h_infant 100.);
  Alcotest.(check bool) "wearout increasing" true (h_wearout 10. < h_wearout 100.)

let test_exponential_fit_recovers_rate () =
  let rng = Rng.create 11 in
  let samples = Array.init 20_000 (fun _ -> Rng.exponential rng 0.01) in
  let rate = Distribution.exponential_fit samples in
  Alcotest.(check bool) "rate within 3%" true (Float.abs (rate -. 0.01) < 3e-4)

let test_weibull_fit_recovers_parameters () =
  let rng = Rng.create 12 in
  let samples =
    Array.init 20_000 (fun _ -> Distribution.weibull_sample rng ~shape:2. ~scale:500.)
  in
  let shape, scale = Distribution.weibull_fit samples in
  Alcotest.(check bool) "shape close" true (Float.abs (shape -. 2.) < 0.1);
  Alcotest.(check bool) "scale close" true (Float.abs (scale -. 500.) < 15.)

let test_fit_input_validation () =
  Alcotest.check_raises "empty exponential"
    (Invalid_argument "Distribution.exponential_fit: empty sample") (fun () ->
      ignore (Distribution.exponential_fit [||]));
  Alcotest.check_raises "weibull one sample"
    (Invalid_argument "Distribution.weibull_fit: need >= 2 samples") (fun () ->
      ignore (Distribution.weibull_fit [| 1. |]))

let prop_binomial_sample_within_range =
  QCheck.Test.make ~count:100 ~name:"binomial sample in [0,n]"
    QCheck.(pair (int_range 1 30) (float_bound_inclusive 1.))
    (fun (n, p) ->
      let rng = Rng.create (n + int_of_float (p *. 1000.)) in
      let k = Distribution.binomial_sample rng ~n ~p in
      k >= 0 && k <= n)

(* --- Poisson binomial ------------------------------------------------ *)

let test_poisson_binomial_uniform_is_binomial () =
  let probs = Array.make 8 0.2 in
  let pmf = Poisson_binomial.pmf probs in
  for k = 0 to 8 do
    check_float ~eps:1e-12
      (Printf.sprintf "k=%d" k)
      (Distribution.binomial_pmf ~n:8 ~p:0.2 k)
      pmf.(k)
  done

let test_poisson_binomial_sums_to_one () =
  let probs = [| 0.1; 0.9; 0.33; 0.5; 0.01 |] in
  let pmf = Poisson_binomial.pmf probs in
  check_float ~eps:1e-12 "total mass" 1. (Array.fold_left ( +. ) 0. pmf)

let test_poisson_binomial_expectation () =
  let probs = [| 0.1; 0.2; 0.3 |] in
  let pmf = Poisson_binomial.pmf probs in
  let mean = ref 0. in
  Array.iteri (fun k p -> mean := !mean +. (float_of_int k *. p)) pmf;
  check_float ~eps:1e-12 "mean = sum of probs" (Poisson_binomial.expectation probs) !mean

let brute_force_count_prob probs pred =
  (* Enumerate all outcomes directly. *)
  let n = Array.length probs in
  let total = ref 0. in
  for mask = 0 to (1 lsl n) - 1 do
    let p = ref 1. and count = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        p := !p *. probs.(i);
        incr count
      end
      else p := !p *. (1. -. probs.(i))
    done;
    if pred !count then total := !total +. !p
  done;
  !total

let prop_poisson_binomial_matches_enumeration =
  QCheck.Test.make ~count:60 ~name:"DP matches brute-force enumeration"
    QCheck.(pair (int_range 1 8) (int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let probs = Array.init n (fun _ -> Rng.float rng) in
      let k = if n = 0 then 0 else Rng.int rng (n + 1) in
      let dp = Poisson_binomial.tail_ge probs k in
      let brute = brute_force_count_prob probs (fun c -> c >= k) in
      Float.abs (dp -. brute) < 1e-9)

let test_cdf_tail_edges () =
  let probs = [| 0.5; 0.5 |] in
  check_float "cdf(-1)" 0. (Poisson_binomial.cdf_le probs (-1));
  check_float "cdf(2)" 1. (Poisson_binomial.cdf_le probs 2);
  check_float "tail(0)" 1. (Poisson_binomial.tail_ge probs 0);
  check_float "tail(3)" 0. (Poisson_binomial.tail_ge probs 3)

let test_sum_over () =
  let probs = [| 0.5; 0.5 |] in
  check_float ~eps:1e-12 "even counts" 0.5
    (Poisson_binomial.sum_over probs (fun k -> k mod 2 = 0))

(* --- Tail bounds ------------------------------------------------------ *)

let test_kl_bernoulli () =
  check_float "zero at a = p" 0. (Bounds.kl_bernoulli 0.3 0.3);
  Alcotest.(check bool) "positive off-diagonal" true (Bounds.kl_bernoulli 0.5 0.1 > 0.);
  Alcotest.check_raises "domain" (Invalid_argument "Bounds.kl_bernoulli: arguments out of range")
    (fun () -> ignore (Bounds.kl_bernoulli 0.5 0.))

let test_bounds_dominate_exact () =
  (* Valid upper bounds, with Chernoff-KL at least as tight as
     Hoeffding. *)
  List.iter
    (fun (n, p, k) ->
      let c = Bounds.compare_tail ~n ~p ~k in
      Alcotest.(check bool) "chernoff >= exact" true (c.Bounds.chernoff >= c.Bounds.exact);
      Alcotest.(check bool) "hoeffding >= chernoff" true
        (c.Bounds.hoeffding >= c.Bounds.chernoff -. 1e-15);
      Alcotest.(check bool) "bounds <= 1" true (c.Bounds.hoeffding <= 1.))
    [ (3, 0.01, 2); (9, 0.08, 5); (100, 0.1, 20); (7, 0.02, 4) ]

let test_bounds_loose_in_consensus_regime () =
  (* The motivating observation: at cluster scale the exponential
     bounds overestimate the failure probability by orders of
     magnitude — Table 2's N=3, p=1% cell would look ~20x worse under
     Chernoff. *)
  let c = Bounds.compare_tail ~n:3 ~p:0.01 ~k:2 in
  Alcotest.(check bool) "chernoff pessimistic (>2x)" true (c.Bounds.chernoff_ratio > 2.);
  Alcotest.(check bool) "hoeffding wildly pessimistic (>100x)" true
    (c.Bounds.hoeffding_ratio > 100.)

let test_bounds_trivial_below_mean () =
  check_float "k below mean" 1. (Bounds.hoeffding_tail_ge ~n:10 ~p:0.5 ~k:3);
  check_float "chernoff too" 1. (Bounds.chernoff_kl_tail_ge ~n:10 ~p:0.5 ~k:3)

(* --- Monte Carlo ----------------------------------------------------- *)

let test_wilson_interval_contains_phat () =
  let low, high = Montecarlo.wilson_interval ~successes:70 ~trials:100 in
  Alcotest.(check bool) "contains 0.7" true (low < 0.7 && high > 0.7);
  Alcotest.(check bool) "proper order" true (low < high)

let test_wilson_edges () =
  let low, high = Montecarlo.wilson_interval ~successes:0 ~trials:100 in
  check_float "zero successes lower bound" 0. low;
  Alcotest.(check bool) "zero successes upper > 0" true (high > 0.);
  let low1, high1 = Montecarlo.wilson_interval ~successes:100 ~trials:100 in
  check_float "all successes upper bound" 1. high1;
  Alcotest.(check bool) "all successes lower < 1" true (low1 < 1.);
  let low2, high2 = Montecarlo.wilson_interval ~successes:0 ~trials:0 in
  check_float "no trials low" 0. low2;
  check_float "no trials high" 1. high2

let test_estimate_bool_converges () =
  let rng = Rng.create 21 in
  let e = Montecarlo.estimate_bool ~trials:50_000 rng (fun rng -> Rng.bool rng 0.3) in
  Alcotest.(check bool) "estimate near 0.3" true (Float.abs (e.Montecarlo.mean -. 0.3) < 0.01);
  Alcotest.(check bool) "CI covers truth" true (Montecarlo.within e 0.3);
  Alcotest.(check int) "trials recorded" 50_000 e.Montecarlo.trials

(* --- Incremental Poisson binomial ---------------------------------- *)

let sup_distance a b =
  let worst = ref 0. in
  Array.iteri (fun i x -> worst := Float.max !worst (Float.abs (x -. b.(i)))) a;
  !worst

(* Factor generator that lands exactly on 0 and 1 often enough to
   exercise the degenerate divide-out paths, and hugs 0.5 (the worst
   conditioning for the recurrence) some of the time. *)
let gen_factor =
  QCheck.Gen.(
    frequency
      [
        (2, return 0.);
        (2, return 1.);
        (3, float_range 0.45 0.55);
        (10, float_bound_inclusive 1.);
      ])

let gen_incremental_case =
  QCheck.Gen.(
    int_range 1 40 >>= fun n ->
    array_repeat n gen_factor >>= fun probs ->
    list_size (int_range 0 30) (pair (int_range 0 (n - 1)) gen_factor)
    >>= fun updates -> return (probs, updates))

let arb_incremental_case =
  QCheck.make gen_incremental_case
    ~print:(fun (probs, updates) ->
      Printf.sprintf "probs=[%s] updates=[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_float probs)))
        (String.concat ";"
           (List.map (fun (i, p) -> Printf.sprintf "(%d,%f)" i p) updates)))

let prop_incremental_matches_scratch =
  QCheck.Test.make ~count:300
    ~name:"incremental updates match from-scratch DP to 1e-12"
    arb_incremental_case
    (fun (probs, updates) ->
      (* A drift bound below the tolerance makes the 1e-12 agreement a
         contract the engine must keep by refreshing, not luck. *)
      let t = Incremental.create ~drift_bound:1e-13 probs in
      List.iter (fun (i, p) -> Incremental.update t i p) updates;
      let scratch = Poisson_binomial.pmf (Incremental.probs t) in
      sup_distance (Incremental.pmf t) scratch <= 1e-12
      && Incremental.sup_distance_from_scratch t
         <= Incremental.drift_bound t +. 1e-13)

let prop_incremental_inverse_law =
  (* Divide-out then multiply-in of the same factor is the identity:
     perturbing factor i and restoring its original value must land
     back on the original distribution. *)
  QCheck.Test.make ~count:300 ~name:"divide-out/multiply-in inverse law"
    QCheck.(
      make
        Gen.(
          int_range 1 40 >>= fun n ->
          array_repeat n gen_factor >>= fun probs ->
          int_range 0 (n - 1) >>= fun i ->
          gen_factor >>= fun p -> return (probs, i, p)))
    (fun (probs, i, p) ->
      let t = Incremental.create ~drift_bound:1e-13 probs in
      let before = Incremental.pmf t in
      let original = Incremental.prob t i in
      Incremental.update t i p;
      Incremental.update t i original;
      sup_distance (Incremental.pmf t) before <= 1e-12)

let test_incremental_edge_factors () =
  (* Dead (p=1) and perfect (p=0) factors take the shift paths in the
     divide-out; toggling across them must stay exact. *)
  let t = Incremental.create [| 0.; 1.; 0.3; 1.; 0. |] in
  Alcotest.(check (float 0.)) "two certain failures" 0. (Incremental.cdf_le t 1);
  Incremental.update t 1 0.;
  Incremental.update t 3 0.25;
  Incremental.update t 0 1.;
  Incremental.update t 4 0.5;
  let scratch = Poisson_binomial.pmf (Incremental.probs t) in
  Alcotest.(check bool) "matches scratch after 0/1 toggles" true
    (sup_distance (Incremental.pmf t) scratch <= 1e-12);
  check_float ~eps:1e-12 "expectation" (1. +. 0.3 +. 0.25 +. 0.5)
    (Incremental.expectation t)

let test_incremental_forced_refresh () =
  (* drift_bound = 0 forces a full-DP refresh after every effective
     update; the refreshed state must equal a fresh create. *)
  let rng = Rng.create 11 in
  let probs = Array.init 25 (fun _ -> Rng.float rng) in
  let t = Incremental.create ~drift_bound:0. probs in
  for _ = 1 to 40 do
    Incremental.update t (Rng.int rng 25) (Rng.float rng)
  done;
  Alcotest.(check int) "every update refreshed" (Incremental.update_count t)
    (Incremental.refresh_count t);
  check_float ~eps:0. "drift reset" 0. (Incremental.drift t);
  let fresh = Incremental.create (Incremental.probs t) in
  check_float ~eps:0. "refreshed state equals fresh create" 0.
    (sup_distance (Incremental.pmf t) (Incremental.pmf fresh))

let test_incremental_drift_accounting () =
  let t = Incremental.create (Array.make 10 0.2) in
  check_float ~eps:0. "starts clean" 0. (Incremental.drift t);
  Incremental.update t 0 0.4;
  Alcotest.(check bool) "update accrues drift" true (Incremental.drift t > 0.);
  Incremental.update t 0 0.4;
  Alcotest.(check int) "no-op update skipped" 1 (Incremental.update_count t);
  let before = Incremental.drift t in
  Incremental.update_batch t [ (1, 0.9); (2, 0.); (3, 1.) ];
  Alcotest.(check int) "batch counted" 4 (Incremental.update_count t);
  Alcotest.(check bool) "batch accrues drift" true (Incremental.drift t > before);
  Incremental.refresh t;
  check_float ~eps:0. "refresh resets drift" 0. (Incremental.drift t);
  Alcotest.(check int) "refresh counted" 1 (Incremental.refresh_count t);
  check_float ~eps:0. "divergence after refresh" 0.
    (Incremental.sup_distance_from_scratch t)

let test_incremental_queries_match_reference () =
  let probs = [| 0.1; 0.5; 0.9; 0.02; 0.7 |] in
  let t = Incremental.create probs in
  for k = 0 to 5 do
    check_float ~eps:1e-14
      (Printf.sprintf "cdf_le %d" k)
      (Poisson_binomial.cdf_le probs k)
      (Incremental.cdf_le t k);
    check_float ~eps:1e-14
      (Printf.sprintf "tail_ge %d" k)
      (Poisson_binomial.tail_ge probs k)
      (Incremental.tail_ge t k)
  done;
  check_float ~eps:1e-14 "expectation"
    (Poisson_binomial.expectation probs)
    (Incremental.expectation t)

let suite =
  [
    Alcotest.test_case "kahan pathological" `Slow test_kahan_pathological;
    Alcotest.test_case "kahan empty/list" `Quick test_kahan_empty;
    Alcotest.test_case "kahan adversarial" `Quick test_kahan_accumulator_adversarial;
    Alcotest.test_case "log_factorial small" `Quick test_log_factorial_small;
    Alcotest.test_case "log_factorial continuity" `Quick test_log_factorial_stirling_continuity;
    Alcotest.test_case "log_factorial negative" `Quick test_log_factorial_negative;
    Alcotest.test_case "choose basics" `Quick test_choose_basics;
    Alcotest.test_case "log_choose out of range" `Quick test_log_choose_out_of_range;
    Alcotest.test_case "logsumexp" `Quick test_logsumexp;
    Alcotest.test_case "log1mexp" `Quick test_log1mexp;
    Alcotest.test_case "clamp_prob" `Quick test_clamp_prob;
    QCheck_alcotest.to_alcotest prop_choose_symmetry;
    QCheck_alcotest.to_alcotest prop_pascal;
    QCheck_alcotest.to_alcotest prop_logsumexp_bounds;
    Alcotest.test_case "nines roundtrip" `Quick test_nines_roundtrip;
    Alcotest.test_case "nines edges" `Quick test_nines_edges;
    Alcotest.test_case "percent_string paper cells" `Quick test_percent_string_paper_cells;
    Alcotest.test_case "parse_percent" `Quick test_parse_percent;
    QCheck_alcotest.to_alcotest prop_percent_parse_roundtrip;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "shuffle preserves elements" `Quick test_shuffle_preserves_elements;
    Alcotest.test_case "exponential sampler mean" `Slow test_exponential_mean;
    Alcotest.test_case "binomial pmf closed form" `Quick test_binomial_pmf_closed_form;
    Alcotest.test_case "binomial pmf sums to one" `Quick test_binomial_pmf_sums_to_one;
    Alcotest.test_case "binomial cdf/tail complement" `Quick test_binomial_cdf_tail_complement;
    Alcotest.test_case "binomial deep tail" `Quick test_binomial_deep_tail;
    Alcotest.test_case "weibull shape 1 = exponential" `Quick test_weibull_shape_one_is_exponential;
    Alcotest.test_case "weibull hazard shapes" `Quick test_weibull_hazard_shapes;
    Alcotest.test_case "exponential fit" `Slow test_exponential_fit_recovers_rate;
    Alcotest.test_case "weibull fit" `Slow test_weibull_fit_recovers_parameters;
    Alcotest.test_case "fit input validation" `Quick test_fit_input_validation;
    QCheck_alcotest.to_alcotest prop_binomial_sample_within_range;
    Alcotest.test_case "poisson-binomial uniform = binomial" `Quick
      test_poisson_binomial_uniform_is_binomial;
    Alcotest.test_case "poisson-binomial mass" `Quick test_poisson_binomial_sums_to_one;
    Alcotest.test_case "poisson-binomial expectation" `Quick test_poisson_binomial_expectation;
    QCheck_alcotest.to_alcotest prop_poisson_binomial_matches_enumeration;
    Alcotest.test_case "cdf/tail edges" `Quick test_cdf_tail_edges;
    Alcotest.test_case "sum_over" `Quick test_sum_over;
    Alcotest.test_case "kl bernoulli" `Quick test_kl_bernoulli;
    Alcotest.test_case "bounds dominate exact" `Quick test_bounds_dominate_exact;
    Alcotest.test_case "bounds loose at cluster scale" `Quick
      test_bounds_loose_in_consensus_regime;
    Alcotest.test_case "bounds trivial below mean" `Quick test_bounds_trivial_below_mean;
    Alcotest.test_case "wilson interval" `Quick test_wilson_interval_contains_phat;
    Alcotest.test_case "wilson edges" `Quick test_wilson_edges;
    Alcotest.test_case "estimate_bool converges" `Slow test_estimate_bool_converges;
    QCheck_alcotest.to_alcotest prop_incremental_matches_scratch;
    QCheck_alcotest.to_alcotest prop_incremental_inverse_law;
    Alcotest.test_case "incremental edge factors" `Quick test_incremental_edge_factors;
    Alcotest.test_case "incremental forced refresh" `Quick test_incremental_forced_refresh;
    Alcotest.test_case "incremental drift accounting" `Quick test_incremental_drift_accounting;
    Alcotest.test_case "incremental queries" `Quick test_incremental_queries_match_reference;
  ]
