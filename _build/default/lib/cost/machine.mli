(** Machine catalog: price, reliability and carbon per node class.

    The paper's economic argument (E3): if node reliability is
    proportional to price — spot instances, older hardware — a larger
    cluster of cheaper, flakier nodes can match the reliability of a
    small cluster of premium nodes at a fraction of the cost. Real
    price sheets are vendor-specific; this catalog is synthetic but
    ratio-accurate (spot ~10x cheaper, ~8x flakier), which is what the
    claims depend on. *)

type kind = On_demand | Spot | Old_gen

type t = {
  name : string;
  kind : kind;
  hourly_cost : float;  (** USD per node-hour. *)
  fault_probability : float;
      (** Mission (one-year) fault probability — the [p_u] the analysis
          consumes. *)
  carbon_kg_per_hour : float;
      (** Embodied+operational carbon, kgCO2e per node-hour. Old
          hardware amortizes embodied carbon, hence lower. *)
}

val default_catalog : t list
(** Four representative classes: premium on-demand (p=1%), standard
    (2%), old-generation (4%), spot (8%). Spot is 10x cheaper than
    premium, matching the paper's E3 arithmetic. *)

val fleet : t -> int -> Faultmodel.Fleet.t
(** A uniform fleet of [n] nodes of this class. *)

val cluster_hourly_cost : t -> int -> float
val cluster_annual_carbon : t -> int -> float

val pp : Format.formatter -> t -> unit
