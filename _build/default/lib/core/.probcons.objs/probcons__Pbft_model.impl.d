lib/core/pbft_model.ml: Printf Protocol
