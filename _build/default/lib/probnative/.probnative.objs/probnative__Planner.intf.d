lib/probnative/planner.mli: Faultmodel Format Probcons
