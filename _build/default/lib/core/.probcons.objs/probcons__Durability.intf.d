lib/core/durability.mli: Faultmodel
