(** The inter-replica TCP plane.

    Raft messages travel as newline-delimited JSON envelopes
    [{"src", "dst", "msg", "payloads"}]: the [msg] is
    {!Raft_sim.Raft_codec}'s encoding, and [payloads] piggybacks the
    canonical command bytes for any [Data seq] entries the message
    carries, keyed by sequence number — the Raft core replicates small
    integers while the real command bodies ride alongside and land in
    each replica's payload table before the message is processed.

    Links are deliberately lossy: a sender that cannot connect (or
    whose connection dies mid-write, e.g. reset by a chaos proxy)
    drops the queued batch and lets Raft's retries re-carry the state,
    which is the same message model the simulator's
    {!Dessim.Network} presents. *)

val max_line_bytes : int
(** Per-envelope byte bound on the reader side. *)

val envelope_to_line :
  src:int ->
  dst:int ->
  Raft_sim.Raft_types.msg ->
  payloads:(int * string) list ->
  string

val envelope_of_line :
  string ->
  (int * int * Raft_sim.Raft_types.msg * (int * string) list, string) result
(** Total decoder: [(src, dst, msg, payloads)]. *)

(** One outbound link to a peer (or to the chaos proxy in front of
    it). Owns a connect-on-demand socket and a dedicated flush
    thread. *)
module Sender : sig
  type t

  val start : port:int -> t
  (** Target is [127.0.0.1:port]; nothing is connected until the first
      {!send}. *)

  val send : t -> string -> unit
  (** Enqueue one envelope line. Never blocks the caller. *)

  val stop : t -> unit
end

(** The replica's inbound raft-plane listener. *)
module Listener : sig
  type t

  val start :
    port:int ->
    deliver:
      (src:int ->
      dst:int ->
      Raft_sim.Raft_types.msg ->
      payloads:(int * string) list ->
      unit) ->
    t
  (** Bind [127.0.0.1:port] and deliver every decoded envelope from a
      per-connection reader thread. A malformed or oversized line
      closes its connection (peers reconnect). Raises
      [Unix.Unix_error] when binding fails. *)

  val stop : t -> unit
  (** Close listener and live connections, join all threads. *)
end
