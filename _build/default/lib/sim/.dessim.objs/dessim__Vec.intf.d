lib/sim/vec.mli:
